// LDA end-to-end: the paper's LDA-N workload at laptop scale. Trains a
// topic model with split aggregation on a synthetic corpus whose
// hidden topics live in vocabulary bands, then shows the recovered
// topics concentrating in those bands.
//
//	go run ./examples/lda
package main

import (
	"fmt"
	"log"
	"time"

	"sparker/internal/data"
	"sparker/internal/mllib"
	"sparker/internal/rdd"
)

func main() {
	ctx, err := rdd.NewContext(rdd.Config{
		Name:             "lda",
		NumExecutors:     4,
		CoresPerExecutor: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ctx.Close()

	const hiddenTopics = 4
	const k = 8 // over-provisioned, standard for variational EM
	corpusSpec := data.CorpusSpec{
		Docs: 800, Vocab: 400, Topics: hiddenTopics, MeanDocLen: 40, Seed: 7,
	}
	docs := data.GenCorpus(corpusSpec)
	corpus := rdd.FromSlice(ctx, docs, ctx.TotalCores()).Cache()
	if _, err := rdd.Count(corpus); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LDA: %d docs, vocab %d, %d hidden topics, training K=%d\n",
		corpusSpec.Docs, corpusSpec.Vocab, hiddenTopics, k)
	fmt.Printf("per-iteration aggregator: K×V = %d doubles (%.1f KB)\n\n",
		k*corpusSpec.Vocab, float64(k*corpusSpec.Vocab*8)/1024)

	start := time.Now()
	model, err := mllib.TrainLDA(corpus, mllib.LDAConfig{
		K: k, Vocab: corpusSpec.Vocab, Iterations: 15,
		Strategy: mllib.StrategySplit, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained in %v; bound %.4f → %.4f\n\n",
		time.Since(start).Round(time.Millisecond), model.Bounds[0], model.Bounds[len(model.Bounds)-1])

	band := corpusSpec.Vocab / hiddenTopics
	dists := model.TopicDistributions()
	for topic := 0; topic < k; topic++ {
		mass := make([]float64, hiddenTopics)
		for w, p := range dists[topic] {
			mass[w/band] += p
		}
		best, bestMass := 0, 0.0
		for b, m := range mass {
			if m > bestMass {
				best, bestMass = b, m
			}
		}
		fmt.Printf("topic %d: %.0f%% of mass in hidden band %d, top terms %v\n",
			topic, 100*bestMass, best, model.TopTerms(topic, 6))
	}
}
