// Derived split aggregation: the paper's future-work idea (§6) —
// "generate split aggregation code without user-defined code" — in
// action. The aggregator is a struct of two arrays plus scalars
// (exactly Figure 7's shape); core.AutoSplitAggregate derives
// splitOp/reduceOp/concatOp from its structure by reflection, so the
// user writes only what treeAggregate already required.
//
//	go run ./examples/autosplit
package main

import (
	"fmt"
	"log"

	"sparker/internal/core"
	"sparker/internal/rdd"
)

// TrainingStats is a Figure-7-style aggregator: two arrays and two
// scalars. No split/merge/concat code anywhere in this file.
type TrainingStats struct {
	GradSum  []float64
	FeatSums []float64
	Loss     float64
	Count    int64
}

func main() {
	ctx, err := rdd.NewContext(rdd.Config{
		Name:             "autosplit",
		NumExecutors:     4,
		CoresPerExecutor: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ctx.Close()

	const dim = 4096
	samples := rdd.Generate(ctx, 32, func(part int) ([]int64, error) {
		out := make([]int64, 500)
		for i := range out {
			out[i] = int64(part*500 + i)
		}
		return out, nil
	})

	zero := func() TrainingStats {
		return TrainingStats{
			GradSum:  make([]float64, dim),
			FeatSums: make([]float64, dim/8),
		}
	}
	seqOp := func(s TrainingStats, v int64) TrainingStats {
		s.GradSum[int(v)%dim] += float64(v%13) - 6
		s.FeatSums[int(v)%(dim/8)] += 1
		s.Loss += float64(v%7) * 0.25
		s.Count++
		return s
	}

	stats, err := core.AutoSplitAggregate(samples, zero, seqOp, core.Options{Parallelism: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aggregated %d samples over the ring with derived callbacks\n", stats.Count)
	fmt.Printf("mean loss: %.4f\n", stats.Loss/float64(stats.Count))
	var gradMass, featMass float64
	for _, g := range stats.GradSum {
		gradMass += g
	}
	for _, f := range stats.FeatSums {
		featMass += f
	}
	fmt.Printf("gradient mass: %.0f, feature observations: %.0f\n", gradMass, featMass)

	if stats.Count != 16000 || featMass != 16000 {
		log.Fatal("aggregation lost samples!")
	}
	fmt.Println("derived split aggregation is exact ✓")
}
