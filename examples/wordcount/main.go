// Word count: the canonical Spark program on this engine — FlatMap,
// shuffle (ReduceByKey) and a collect — demonstrating that the
// substrate under split aggregation is a general dataflow engine, not
// just an allreduce harness.
//
//	go run ./examples/wordcount
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"sparker/internal/rdd"
)

var corpus = []string{
	"split aggregation lets spark reduce aggregators as segments",
	"tree aggregation reduces aggregators as opaque objects",
	"the ring moves segments between executors",
	"the driver merges opaque objects one by one",
	"segments scale and opaque objects do not",
}

func main() {
	ctx, err := rdd.NewContext(rdd.Config{
		Name:             "wordcount",
		NumExecutors:     3,
		CoresPerExecutor: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ctx.Close()

	lines := rdd.FromSlice(ctx, corpus, 5)
	words := rdd.FlatMap(lines, func(l string) []string { return strings.Fields(l) })
	pairs := rdd.KeyBy(words, func(w string) string { return w })
	counts, err := rdd.CountByKey(pairs)
	if err != nil {
		log.Fatal(err)
	}

	type wc struct {
		word string
		n    int64
	}
	sorted := make([]wc, 0, len(counts))
	for w, n := range counts {
		sorted = append(sorted, wc{w, n})
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].n != sorted[j].n {
			return sorted[i].n > sorted[j].n
		}
		return sorted[i].word < sorted[j].word
	})
	fmt.Printf("%d distinct words; top 8:\n", len(sorted))
	for _, e := range sorted[:8] {
		fmt.Printf("  %-12s %d\n", e.word, e.n)
	}
}
