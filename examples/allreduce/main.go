// Using the scalable communicator directly: a ring allreduce over
// REAL TCP loopback sockets, the collective Sparker's interface
// enables beyond the paper (reduce-scatter + allgather).
//
// Six "executors" each hold a gradient shard; after RingAllReduce all
// six hold the identical elementwise sum, moving only 2·(N-1)/N of the
// data per node — the bandwidth-optimal schedule.
//
//	go run ./examples/allreduce
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"sync"
	"time"

	"sparker/internal/collective"
	"sparker/internal/comm"
	"sparker/internal/transport"
)

const (
	executors   = 6
	parallelism = 2
	dim         = 1 << 18 // 256k floats = 2 MB per executor
)

func main() {
	net := transport.NewTCP() // real loopback sockets
	defer net.Close()

	eps, err := comm.NewGroup(net, "allreduce-demo", executors)
	if err != nil {
		log.Fatal(err)
	}
	defer comm.CloseGroup(eps)
	for _, e := range eps {
		if err := e.ConnectRing(parallelism); err != nil {
			log.Fatal(err)
		}
	}

	// Each executor contributes rank-dependent data, pre-split into
	// parallelism × executors segments (the PDR layout).
	nSegs := parallelism * executors
	inputs := make([][][]float64, executors)
	want := make([]float64, dim)
	for r := 0; r < executors; r++ {
		full := make([]float64, dim)
		for i := range full {
			full[i] = float64(r+1) * math.Sin(float64(i))
			want[i] += full[i]
		}
		segs := make([][]float64, nSegs)
		for s := 0; s < nSegs; s++ {
			lo, hi := s*dim/nSegs, (s+1)*dim/nSegs
			segs[s] = append([]float64(nil), full[lo:hi]...)
		}
		inputs[r] = segs
	}

	start := time.Now()
	results := make([][][]float64, executors)
	var wg sync.WaitGroup
	for _, ep := range eps {
		wg.Add(1)
		go func(ep *comm.Endpoint) {
			defer wg.Done()
			out, err := collective.RingAllReduce(context.Background(), ep, inputs[ep.Rank()], parallelism, collective.F64Ops())
			if err != nil {
				log.Fatalf("rank %d: %v", ep.Rank(), err)
			}
			results[ep.Rank()] = out
		}(ep)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Every rank must hold the identical elementwise sum.
	for r := 0; r < executors; r++ {
		flat := flatten(results[r])
		for i := range want {
			if math.Abs(flat[i]-want[i]) > 1e-9 {
				log.Fatalf("rank %d element %d: %v != %v", r, i, flat[i], want[i])
			}
		}
	}
	moved := float64(2*(executors-1)) / float64(executors) * dim * 8 / (1 << 20)
	fmt.Printf("allreduce of %d × %.1f MB over TCP loopback: %v\n",
		executors, float64(dim*8)/(1<<20), elapsed.Round(time.Millisecond))
	fmt.Printf("per-node traffic: %.1f MB (bandwidth-optimal 2(N-1)/N schedule)\n", moved)
	fmt.Println("all ranks agree ✓")
}

func flatten(segs [][]float64) []float64 {
	out := make([]float64, 0, dim)
	for _, s := range segs {
		out = append(out, s...)
	}
	return out
}
