// Quickstart: the split aggregation interface in five minutes.
//
// Builds an RDD of samples on a 4-executor in-process cluster, then
// aggregates a 64k-dimension vector through the unified core.Aggregate
// entry point three ways — Spark's treeAggregate, tree aggregation
// with in-memory merge, and Sparker's splitAggregate — verifying all
// three agree and printing their times.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"sparker/internal/core"
	"sparker/internal/rdd"
)

const dim = 1 << 16 // 64k-dimensional aggregator (512 KB)

func main() {
	ctx, err := rdd.NewContext(rdd.Config{
		Name:             "quickstart",
		NumExecutors:     4,
		CoresPerExecutor: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ctx.Close()

	// 64 partitions of synthetic samples, cached like a training set.
	samples := rdd.Generate(ctx, 64, func(part int) ([]int64, error) {
		out := make([]int64, 1000)
		for i := range out {
			out[i] = int64(part*1000 + i)
		}
		return out, nil
	}).Cache()
	if _, err := rdd.Count(samples); err != nil { // materialize the cache
		log.Fatal(err)
	}

	// The aggregation everyone writes: fold samples into a big vector.
	// One callback bundle serves every strategy; SplitOp/ReduceOp/
	// ConcatOp are only exercised by the ring-based strategies.
	fns := core.AggFuncs[int64, []float64, []float64]{
		Zero: func() []float64 { return make([]float64, dim) },
		SeqOp: func(acc []float64, v int64) []float64 {
			acc[int(v)%dim] += float64(v % 97)
			return acc
		},
		MergeOp:  core.AddF64,
		SplitOp:  core.SplitSliceCopy[float64],
		ReduceOp: core.AddF64,
		ConcatOp: core.ConcatSlices[float64],
	}

	run := func(name string, opts ...core.AggOption) []float64 {
		start := time.Now()
		out, err := core.Aggregate(context.Background(), samples, fns, opts...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %8v  checksum %.0f\n", name, time.Since(start).Round(time.Millisecond), sum(out))
		return out
	}

	tree := run("treeAggregate", core.WithStrategy(core.StrategyTree), core.WithDepth(2))
	imm := run("treeAggregate + IMM", core.WithStrategy(core.StrategyIMM))
	// The default strategy is splitAggregate; a per-step deadline turns
	// a hung peer into a classified error (and, unless disabled with
	// WithFallback(false), an automatic tree fallback) instead of a hang.
	split := run("splitAggregate",
		core.WithParallelism(4), core.WithDeadline(30*time.Second))

	if !equal(tree, imm) || !equal(tree, split) {
		log.Fatal("strategies disagree!")
	}
	fmt.Println("\nall three strategies produced identical aggregates ✓")
}

func sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

func equal(a, b []float64) bool {
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			return false
		}
	}
	return true
}
