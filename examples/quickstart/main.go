// Quickstart: the split aggregation interface in five minutes.
//
// Builds an RDD of samples on a 4-executor in-process cluster, then
// aggregates a 64k-dimension vector three ways — Spark's
// treeAggregate, tree aggregation with in-memory merge, and Sparker's
// splitAggregate — verifying all three agree and printing their times.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"sparker/internal/core"
	"sparker/internal/rdd"
)

const dim = 1 << 16 // 64k-dimensional aggregator (512 KB)

func main() {
	ctx, err := rdd.NewContext(rdd.Config{
		Name:             "quickstart",
		NumExecutors:     4,
		CoresPerExecutor: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ctx.Close()

	// 64 partitions of synthetic samples, cached like a training set.
	samples := rdd.Generate(ctx, 64, func(part int) ([]int64, error) {
		out := make([]int64, 1000)
		for i := range out {
			out[i] = int64(part*1000 + i)
		}
		return out, nil
	}).Cache()
	if _, err := rdd.Count(samples); err != nil { // materialize the cache
		log.Fatal(err)
	}

	// The aggregation everyone writes: fold samples into a big vector.
	zero := func() []float64 { return make([]float64, dim) }
	seqOp := func(acc []float64, v int64) []float64 {
		acc[int(v)%dim] += float64(v % 97)
		return acc
	}

	run := func(name string, f func() ([]float64, error)) []float64 {
		start := time.Now()
		out, err := f()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %8v  checksum %.0f\n", name, time.Since(start).Round(time.Millisecond), sum(out))
		return out
	}

	tree := run("treeAggregate", func() ([]float64, error) {
		return core.TreeAggregate(samples, zero, seqOp, core.AddF64, 2)
	})
	imm := run("treeAggregate + IMM", func() ([]float64, error) {
		return core.TreeAggregateIMM(samples, zero, seqOp, core.AddF64)
	})
	// splitAggregate needs two more callbacks: how to slice an
	// aggregator (splitOp) and how to reassemble slices (concatOp).
	split := run("splitAggregate", func() ([]float64, error) {
		return core.SplitAggregate(samples, zero, seqOp, core.AddF64,
			core.SplitSliceCopy[float64], core.AddF64, core.ConcatSlices[float64],
			core.Options{Parallelism: 4})
	})

	if !equal(tree, imm) || !equal(tree, split) {
		log.Fatal("strategies disagree!")
	}
	fmt.Println("\nall three strategies produced identical aggregates ✓")
}

func sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

func equal(a, b []float64) bool {
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			return false
		}
	}
	return true
}
