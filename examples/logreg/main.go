// Logistic regression end-to-end: the paper's LR-A workload at laptop
// scale, trained under all three aggregation strategies. The learned
// models must match bit-for-bit in loss trajectory; the strategies
// differ only in how the gradient reduction is executed.
//
//	go run ./examples/logreg
package main

import (
	"fmt"
	"log"
	"time"

	"sparker/internal/data"
	"sparker/internal/mllib"
	"sparker/internal/rdd"
)

func main() {
	ctx, err := rdd.NewContext(rdd.Config{
		Name:             "logreg",
		NumExecutors:     4,
		CoresPerExecutor: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ctx.Close()

	// avazu, scaled down 20000× (≈2250 samples × 2000 features).
	profile, err := data.ProfileByName("avazu")
	if err != nil {
		log.Fatal(err)
	}
	scaled := profile.Scaled(500)
	points := data.GenClassification(scaled.ClassificationSpec(42))
	train := rdd.FromSlice(ctx, points, ctx.TotalCores()).Cache()
	if _, err := rdd.Count(train); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LR on synthetic avazu: %d samples × %d features (aggregator %.1f KB)\n\n",
		scaled.Samples, scaled.Features, float64(scaled.Features*8)/1024)

	for _, s := range []mllib.Strategy{mllib.StrategyTree, mllib.StrategyTreeIMM, mllib.StrategySplit} {
		start := time.Now()
		m, err := mllib.TrainLogisticRegression(train, mllib.LogisticRegressionConfig{
			NumFeatures: scaled.Features,
			GD:          mllib.GDConfig{Iterations: 15, StepSize: 2, Strategy: s},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9v  %7v  first loss %.4f  final loss %.4f  accuracy %.3f\n",
			s, time.Since(start).Round(time.Millisecond),
			m.Losses[0], m.Losses[len(m.Losses)-1], m.Accuracy(points))
	}
}
