// Strategy shoot-out: all four aggregation strategies (tree, tree+IMM,
// split, allreduce) measured live on the in-process engine across
// three aggregator sizes — a functional miniature of the paper's
// Figure 16 plus this repo's allreduce extension. Every strategy is
// dispatched through the unified core.Aggregate entry point.
//
//	go run ./examples/strategies
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"sparker/internal/core"
	"sparker/internal/rdd"
)

func main() {
	ctx, err := rdd.NewContext(rdd.Config{
		Name:             "strategies",
		NumExecutors:     4,
		CoresPerExecutor: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ctx.Close()

	samples := rdd.Generate(ctx, 16, func(part int) ([]int64, error) {
		out := make([]int64, 64)
		for i := range out {
			out[i] = int64(part*64 + i)
		}
		return out, nil
	}).Cache()
	if _, err := rdd.Count(samples); err != nil {
		log.Fatal(err)
	}

	strategies := []core.Strategy{
		core.StrategyTree, core.StrategyIMM,
		core.StrategySplit, core.StrategyAllReduce,
	}
	fmt.Printf("%-12s", "aggregator")
	for _, s := range strategies {
		fmt.Printf("  %10v", s)
	}
	fmt.Println()

	for _, dim := range []int{1 << 12, 1 << 17, 1 << 20} { // 32KB, 1MB, 8MB
		fmt.Printf("%-12s", fmtBytes(dim*8))
		fns := core.AggFuncs[int64, []float64, []float64]{
			Zero: func() []float64 { return make([]float64, dim) },
			SeqOp: func(acc []float64, v int64) []float64 {
				acc[int(v)%dim]++
				return acc
			},
			MergeOp:  core.AddF64,
			SplitOp:  core.SplitSliceCopy[float64],
			ReduceOp: core.AddF64,
			ConcatOp: core.ConcatSlices[float64],
		}
		var reference []float64
		for _, s := range strategies {
			agg := func() ([]float64, error) {
				return core.Aggregate(context.Background(), samples, fns,
					core.WithStrategy(s), core.WithDepth(2), core.WithParallelism(4))
			}
			// Warm, then best-of-3.
			if _, err := agg(); err != nil {
				log.Fatal(err)
			}
			best := time.Hour
			var out []float64
			for i := 0; i < 3; i++ {
				start := time.Now()
				out, err = agg()
				if err != nil {
					log.Fatal(err)
				}
				if d := time.Since(start); d < best {
					best = d
				}
			}
			if reference == nil {
				reference = out
			} else if !equal(reference, out) {
				log.Fatalf("strategy %v disagrees with tree!", s)
			}
			fmt.Printf("  %10v", best.Round(100*time.Microsecond))
		}
		fmt.Println()
	}
	fmt.Println("\nall strategies produced identical aggregates ✓")
}

func fmtBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func equal(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
