package sparker

// Integration tests spanning the whole stack: engine + communicator +
// collectives + aggregation strategies + MLlib, over both transports,
// with fault injection.

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sparker/internal/core"
	"sparker/internal/data"
	"sparker/internal/eventlog"
	"sparker/internal/linalg"
	"sparker/internal/metrics"
	"sparker/internal/mllib"
	"sparker/internal/rdd"
	"sparker/internal/transport"
)

// TestTrainingOverRealTCP runs logistic regression end-to-end with the
// whole engine — task dispatch, shuffle blocks, ring reduce-scatter —
// over real loopback sockets, and checks tree and split produce the
// same model.
func TestTrainingOverRealTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp integration in -short mode")
	}
	net := transport.NewTCP()
	ctx, err := rdd.NewContext(rdd.Config{
		Name:             "itcp",
		NumExecutors:     3,
		CoresPerExecutor: 2,
		Network:          net,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()
	defer net.Close()

	spec := data.ClassificationSpec{Samples: 600, Features: 40, NNZPerSample: 8, Seed: 5}
	points := data.GenClassification(spec)
	train := rdd.FromSlice(ctx, points, 6).Cache()

	var models []*mllib.LinearModel
	for _, s := range []mllib.Strategy{mllib.StrategyTree, mllib.StrategySplit} {
		m, err := mllib.TrainLogisticRegression(train, mllib.LogisticRegressionConfig{
			NumFeatures: spec.Features,
			GD:          mllib.GDConfig{Iterations: 8, StepSize: 2, Strategy: s},
		})
		if err != nil {
			t.Fatalf("strategy %v over TCP: %v", s, err)
		}
		models = append(models, m)
	}
	for i := range models[0].Weights {
		if math.Abs(models[0].Weights[i]-models[1].Weights[i]) > 1e-8 {
			t.Fatalf("tree and split models diverge over TCP at weight %d", i)
		}
	}
	if acc := models[1].Accuracy(points); acc < 0.8 {
		t.Fatalf("accuracy %v < 0.8", acc)
	}
}

// TestTrainingSurvivesTaskFailures injects a failure into every
// iteration's aggregation stage; whole-stage retry must keep the final
// model identical to a failure-free run.
func TestTrainingSurvivesTaskFailures(t *testing.T) {
	run := func(inject bool) []float64 {
		ctx, err := rdd.NewContext(rdd.Config{
			Name:             fmt.Sprintf("ifault-%v", inject),
			NumExecutors:     2,
			CoresPerExecutor: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer ctx.Close()
		const dim, samples = 16, 200
		var fails int64
		train := rdd.Generate(ctx, 4, func(part int) ([]mllib.LabeledPoint, error) {
			out := make([]mllib.LabeledPoint, 0, samples/4)
			for i := part * samples / 4; i < (part+1)*samples/4; i++ {
				f0 := float64(i%13)/13 - 0.5
				sv, err := linalg.NewSparse(dim, []int32{0, 1}, []float64{f0, -f0 / 2})
				if err != nil {
					return nil, err
				}
				label := 0.0
				if f0 > 0 {
					label = 1
				}
				out = append(out, mllib.LabeledPoint{Label: label, Features: sv})
			}
			return out, nil
		}).Cache()

		zero := func() []float64 { return make([]float64, dim) }
		seqOp := func(acc []float64, p mllib.LabeledPoint) []float64 {
			if inject && atomic.AddInt64(&fails, 1) == 57 {
				panic("injected failure mid-aggregation")
			}
			linalg.Axpy(p.Label+0.5, p.Features, acc)
			return acc
		}
		got, err := core.SplitAggregate(train, zero, seqOp, core.AddF64,
			core.SplitSliceCopy[float64], core.AddF64, core.ConcatSlices[float64], core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	clean := run(false)
	faulty := run(true)
	for i := range clean {
		if math.Abs(clean[i]-faulty[i]) > 1e-9 {
			t.Fatalf("fault recovery changed the aggregate at %d: %v vs %v", i, clean[i], faulty[i])
		}
	}
}

// TestBroadcastDrivenIteration mimics MLlib's weight distribution: the
// driver broadcasts weights, tasks read them executor-side via the
// broadcast cache, and the aggregation consumes them.
func TestBroadcastDrivenIteration(t *testing.T) {
	ctx, err := rdd.NewContext(rdd.Config{
		Name:             "ibcast",
		NumExecutors:     3,
		CoresPerExecutor: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()

	const dim = 8
	base := rdd.Generate(ctx, 6, func(part int) ([]int64, error) {
		out := make([]int64, 50)
		for i := range out {
			out[i] = int64(part*50 + i)
		}
		return out, nil
	}).Cache()

	weights := make([]float64, dim)
	for iter := 0; iter < 3; iter++ {
		b, err := rdd.NewBroadcast(ctx, weights)
		if err != nil {
			t.Fatal(err)
		}
		// Tasks read the broadcast weights through the executor cache
		// and fold them into the aggregate.
		scored := rdd.MapPartitionsWithContext(base, func(ec *rdd.ExecContext, part int, in []int64) ([]int64, error) {
			w, err := b.Value(ec)
			if err != nil {
				return nil, err
			}
			out := make([]int64, len(in))
			for i, v := range in {
				out[i] = v + int64(w[int(v)%dim])
			}
			return out, nil
		})
		agg, err := core.SplitAggregate(scored,
			func() []float64 { return make([]float64, dim) },
			func(acc []float64, v int64) []float64 {
				acc[int(v)%dim]++
				return acc
			},
			core.AddF64, core.SplitSliceCopy[float64], core.AddF64, core.ConcatSlices[float64],
			core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for i := range weights {
			weights[i] += agg[i] / 100
			total += agg[i]
		}
		if total != 300 {
			t.Fatalf("iteration %d lost elements: %v", iter, total)
		}
		if err := b.Destroy(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestConcurrentJobsOneContext submits aggregations from multiple
// goroutines against one context; the scheduler must keep them
// isolated.
func TestConcurrentJobsOneContext(t *testing.T) {
	ctx, err := rdd.NewContext(rdd.Config{
		Name:             "iconc",
		NumExecutors:     2,
		CoresPerExecutor: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rdd.Generate(ctx, 4, func(part int) ([]int64, error) {
				out := make([]int64, 25)
				for i := range out {
					out[i] = int64(g) // every element is g
				}
				return out, nil
			})
			sum, err := rdd.TreeAggregate(r,
				func() int64 { return 0 },
				func(a int64, v int64) int64 { return a + v },
				func(a, b int64) int64 { return a + b },
				rdd.AggregateOptions{})
			if err != nil {
				t.Errorf("job %d: %v", g, err)
				return
			}
			if want := int64(g * 100); sum != want {
				t.Errorf("job %d: sum %d, want %d (cross-job contamination?)", g, sum, want)
			}
		}(g)
	}
	wg.Wait()
}

// TestAutoSplitTrainsModel drives the derived-callback path through a
// real gradient-descent-like loop.
func TestAutoSplitTrainsModel(t *testing.T) {
	ctx, err := rdd.NewContext(rdd.Config{
		Name:             "iauto",
		NumExecutors:     2,
		CoresPerExecutor: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()
	const dim = 6
	type agg struct {
		Grad  []float64
		Loss  float64
		Count int64
	}
	train := rdd.Generate(ctx, 4, func(part int) ([]int64, error) {
		out := make([]int64, 40)
		for i := range out {
			out[i] = int64(part*40 + i)
		}
		return out, nil
	}).Cache()

	w := make([]float64, dim)
	var lastLoss float64
	for iter := 0; iter < 12; iter++ {
		snapshot := append([]float64(nil), w...)
		res, err := core.AutoSplitAggregate(train,
			func() agg { return agg{Grad: make([]float64, dim)} },
			func(a agg, v int64) agg {
				x := float64(v%7) - 3
				pred := snapshot[int(v)%dim] * x
				diff := pred - x // target = x (identity weight 1)
				a.Grad[int(v)%dim] += diff * x
				a.Loss += diff * diff / 2
				a.Count++
				return a
			}, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != 160 {
			t.Fatalf("iteration %d counted %d samples", iter, res.Count)
		}
		for i := range w {
			w[i] -= 0.3 * res.Grad[i] / float64(res.Count)
		}
		loss := res.Loss / float64(res.Count)
		if iter > 0 && loss > lastLoss+1e-9 {
			t.Fatalf("loss increased: %v -> %v", lastLoss, loss)
		}
		lastLoss = loss
	}
	if lastLoss > 0.3 {
		t.Fatalf("final loss %v did not improve enough", lastLoss)
	}
}

// TestLibSVMFileToModel exercises the data path: write a libsvm file
// shape, read it back, train.
func TestLibSVMFileToModel(t *testing.T) {
	spec := data.ClassificationSpec{Samples: 300, Features: 20, NNZPerSample: 5, Seed: 2}
	pts := data.GenClassification(spec)

	ctx, err := rdd.NewContext(rdd.Config{Name: "ilibsvm", NumExecutors: 2, CoresPerExecutor: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()
	train := rdd.FromSlice(ctx, pts, 4).Cache()
	m, err := mllib.TrainSVM(train, mllib.SVMConfig{
		NumFeatures: spec.Features,
		GD:          mllib.GDConfig{Iterations: 25, StepSize: 2, Strategy: mllib.StrategySplit},
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(pts); acc < 0.75 {
		t.Fatalf("SVM accuracy %v < 0.75", acc)
	}
}

// TestHistoryLogAnalysis reproduces the paper's Section-2 methodology:
// train a model with event logging enabled, then analyze the history
// log to locate the aggregation phases — the analysis that revealed
// treeAggregate as MLlib's hot-spot.
func TestHistoryLogAnalysis(t *testing.T) {
	var logBuf bytes.Buffer
	logger := eventlog.New(&logBuf)
	ctx, err := rdd.NewContext(rdd.Config{
		Name:             "ihistory",
		NumExecutors:     2,
		CoresPerExecutor: 2,
		EventLog:         logger,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()

	spec := data.ClassificationSpec{Samples: 400, Features: 30, NNZPerSample: 6, Seed: 9}
	train := rdd.FromSlice(ctx, data.GenClassification(spec), 4).Cache()
	if _, err := mllib.TrainLogisticRegression(train, mllib.LogisticRegressionConfig{
		NumFeatures: spec.Features,
		GD:          mllib.GDConfig{Iterations: 6, Strategy: mllib.StrategyTree},
	}); err != nil {
		t.Fatal(err)
	}
	if err := logger.Flush(); err != nil {
		t.Fatal(err)
	}

	events, err := eventlog.Read(&logBuf)
	if err != nil {
		t.Fatal(err)
	}
	// 6 iterations × (agg-compute + agg-reduce) phases.
	if len(events) != 12 {
		t.Fatalf("got %d events, want 12", len(events))
	}
	b := eventlog.Analyze(events)
	if share := b.Share(metrics.PhaseAggCompute, metrics.PhaseAggReduce); share != 1.0 {
		t.Fatalf("aggregation share = %v (all logged phases are aggregation)", share)
	}
	if name, _ := b.Hotspot(); name != metrics.PhaseAggCompute && name != metrics.PhaseAggReduce {
		t.Fatalf("hotspot = %q, want an aggregation phase", name)
	}
}

// TestFunctionalAggregationShape measures the real implementations and
// asserts the paper's headline shape holds live: with a large
// aggregator, split aggregation beats tree aggregation by a wide
// margin because tree serializes one aggregator per task and merges
// serially in the driver. Margins are generous to stay robust on
// loaded machines.
func TestFunctionalAggregationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based test in -short mode")
	}
	ctx, err := rdd.NewContext(rdd.Config{
		Name:             "ishape",
		NumExecutors:     4,
		CoresPerExecutor: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()

	const dim = 1 << 20 // 8 MB aggregator
	samples := rdd.Generate(ctx, 16, func(part int) ([]int64, error) {
		out := make([]int64, 32)
		for i := range out {
			out[i] = int64(part*32 + i)
		}
		return out, nil
	}).Cache()
	if _, err := rdd.Count(samples); err != nil {
		t.Fatal(err)
	}
	seqOp := func(acc []float64, v int64) []float64 {
		acc[int(v)%dim]++
		return acc
	}
	timeIt := func(s mllib.Strategy) time.Duration {
		// Warm once, then take the best of 3 to shed scheduler noise.
		if _, err := mllib.AggregateF64(samples, dim, seqOp, s, 2, 4); err != nil {
			t.Fatal(err)
		}
		best := time.Duration(math.MaxInt64)
		for i := 0; i < 3; i++ {
			start := time.Now()
			if _, err := mllib.AggregateF64(samples, dim, seqOp, s, 2, 4); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	tree := timeIt(mllib.StrategyTree)
	split := timeIt(mllib.StrategySplit)
	t.Logf("8MB aggregator: tree=%v split=%v (%.1f×)", tree, split, float64(tree)/float64(split))
	if float64(split)*1.3 > float64(tree) {
		t.Errorf("expected split ≥ 1.3× faster than tree at 8MB aggregators; tree=%v split=%v", tree, split)
	}
}
