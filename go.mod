module sparker

go 1.22
