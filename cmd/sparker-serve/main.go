// Command sparker-serve runs the long-lived multi-tenant job server: a
// shared driver that trains models submitted over HTTP under weighted
// fair-share scheduling and serves them through a batched prediction
// endpoint.
//
// Usage:
//
//	sparker-serve -addr 127.0.0.1:8080 -executors 4 -cores 4
//	sparker-serve -model clicks=clicks.spkm -tenant gold=2 -tenant free=1:4
//	sparker-serve -smoke        # self-driving end-to-end check, then exit
//
// Submit and score with any HTTP client:
//
//	curl -X POST localhost:8080/api/v1/jobs -d '{"tenant":"gold","model":"lr"}'
//	curl localhost:8080/api/v1/jobs/job-1
//	curl -X POST localhost:8080/api/v1/models/job-1/predict -d '{"points":[[1,0.5,0]]}'
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sparker/internal/mllib"
	"sparker/internal/rdd"
	"sparker/internal/server"
)

// repeatedFlag collects repeatable -model / -tenant flags.
type repeatedFlag []string

func (f *repeatedFlag) String() string     { return strings.Join(*f, ",") }
func (f *repeatedFlag) Set(v string) error { *f = append(*f, v); return nil }

// authHeader is the Authorization value the process's own API clients
// (tenant bootstrap, smoke test) attach, matching -auth-token.
var authHeader string

func httpGet(url string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	if authHeader != "" {
		req.Header.Set("Authorization", authHeader)
	}
	return http.DefaultClient.Do(req)
}

func httpPostJSON(url string, body []byte) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if authHeader != "" {
		req.Header.Set("Authorization", authHeader)
	}
	return http.DefaultClient.Do(req)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	executors := flag.Int("executors", 4, "simulated executors")
	cores := flag.Int("cores", 4, "cores per executor")
	parallelism := flag.Int("parallelism", 4, "split-aggregation ring parallelism")
	maxJobs := flag.Int("max-jobs", 4, "max concurrently running training jobs")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain timeout")
	historyDir := flag.String("history-dir", "", "persist the event log and job outcomes to this directory and replay them on boot")
	authToken := flag.String("auth-token", os.Getenv("SPARKER_AUTH_TOKEN"),
		"bearer token required on /api/v1/* (default $SPARKER_AUTH_TOKEN; empty disables auth)")
	smoke := flag.Bool("smoke", false, "run an in-process end-to-end check and exit")
	var models, tenants repeatedFlag
	flag.Var(&models, "model", "preload a saved model: name=path (repeatable)")
	flag.Var(&tenants, "tenant", "preconfigure a tenant: name=weight[:maxslots] (repeatable)")
	flag.Parse()

	if *smoke {
		*addr = "127.0.0.1:0"
	}
	if *authToken != "" {
		authHeader = "Bearer " + *authToken
	}
	srv, err := server.New(server.Config{
		Addr: *addr,
		Cluster: rdd.Config{
			NumExecutors:     *executors,
			CoresPerExecutor: *cores,
			RingParallelism:  *parallelism,
		},
		MaxConcurrentJobs: *maxJobs,
		DrainTimeout:      *drain,
		HistoryDir:        *historyDir,
		AuthToken:         *authToken,
	})
	if err != nil {
		fail(err)
	}

	for _, spec := range models {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			fail(fmt.Errorf("bad -model %q (want name=path)", spec))
		}
		m, err := mllib.LoadModelFile(path)
		if err != nil {
			fail(err)
		}
		srv.RegisterModel(name, m)
		fmt.Printf("serving %s (%s, %d features) from %s\n", name, m.Kind(), m.NumFeatures(), path)
	}
	if err := configureTenants(srv.Addr(), tenants); err != nil {
		fail(err)
	}

	if *smoke {
		err := runSmoke(srv)
		if cerr := srv.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			fail(err)
		}
		fmt.Println("serve-demo PASS")
		return
	}

	fmt.Printf("sparker-serve listening on http://%s (%d executors × %d cores)\n",
		srv.Addr(), *executors, *cores)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down...")
	if err := srv.Close(); err != nil {
		fail(err)
	}
}

// configureTenants PUTs each name=weight[:maxslots] spec at the
// running server — same path an operator's curl would use.
func configureTenants(addr string, specs []string) error {
	for _, spec := range specs {
		name, rest, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("bad -tenant %q (want name=weight[:maxslots])", spec)
		}
		weightStr, slotStr, hasSlots := strings.Cut(rest, ":")
		weight, err := strconv.ParseFloat(weightStr, 64)
		if err != nil {
			return fmt.Errorf("bad -tenant %q weight: %v", spec, err)
		}
		cfg := map[string]any{"weight": weight}
		if hasSlots {
			slots, err := strconv.Atoi(slotStr)
			if err != nil {
				return fmt.Errorf("bad -tenant %q maxslots: %v", spec, err)
			}
			cfg["max_slots"] = slots
		}
		body, _ := json.Marshal(cfg)
		req, err := http.NewRequest(http.MethodPut,
			fmt.Sprintf("http://%s/api/v1/tenants/%s", addr, name), bytes.NewReader(body))
		if err != nil {
			return err
		}
		if authHeader != "" {
			req.Header.Set("Authorization", authHeader)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("configuring tenant %s: status %d", name, resp.StatusCode)
		}
		fmt.Printf("tenant %s: weight %v\n", name, weight)
	}
	return nil
}

// runSmoke drives the full client path against the live server: submit
// a job, poll it to completion, list models, predict, check tenants
// and metrics. Exercised by `make serve-demo`.
func runSmoke(srv *server.Server) error {
	base := "http://" + srv.Addr()
	post := func(url string, body any) (int, []byte, error) {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, nil, err
		}
		resp, err := httpPostJSON(url, b)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes(), nil
	}

	code, body, err := post(base+"/api/v1/jobs", map[string]any{
		"tenant": "smoke", "model": "lr", "scale": 60000, "iterations": 2, "save_as": "smoke-lr",
	})
	if err != nil || code != http.StatusAccepted {
		return fmt.Errorf("submit: code=%d err=%v body=%s", code, err, body)
	}
	var st struct {
		ID     string `json:"id"`
		State  string `json:"state"`
		Error  string `json:"error"`
		Result *struct {
			Features int `json:"features"`
		} `json:"result"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		return err
	}
	fmt.Printf("submitted %s\n", st.ID)

	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := httpGet(base + "/api/v1/jobs/" + st.ID)
		if err != nil {
			return err
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if st.State == "done" {
			break
		}
		if st.State == "failed" {
			return fmt.Errorf("job failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job stuck in state %s", st.State)
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("job %s done\n", st.ID)

	dim := st.Result.Features
	point := make([]float64, dim)
	point[0] = 1
	code, body, err = post(base+"/api/v1/models/smoke-lr/predict", map[string]any{"points": []any{point}})
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("predict: code=%d err=%v body=%s", code, err, body)
	}
	var pr struct {
		Predictions []float64 `json:"predictions"`
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		return err
	}
	if len(pr.Predictions) != 1 {
		return fmt.Errorf("predict returned %v", pr.Predictions)
	}
	fmt.Printf("prediction: %v\n", pr.Predictions[0])

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(buf.String(), "serve_predict_latency_ns") {
		return fmt.Errorf("/metrics missing serving series")
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sparker-serve:", err)
	os.Exit(1)
}
