// Command datagen writes synthetic datasets in the paper's input
// formats: libsvm text for the classification workloads and the UCI
// bag-of-words format for the LDA corpora. Profiles are the Table-2
// datasets, scaled down by -scale to stay laptop-sized.
//
// Usage:
//
//	datagen -profile avazu -scale 10000 -out avazu.libsvm
//	datagen -profile nytimes -scale 1000 -topics 20 -out nytimes.bow
package main

import (
	"flag"
	"fmt"
	"os"

	"sparker/internal/data"
)

func main() {
	profile := flag.String("profile", "avazu", "dataset profile (avazu, criteo, kdd10, kdd12, enron, nytimes)")
	scale := flag.Int("scale", 10000, "downscale factor applied to the paper-scale profile")
	topics := flag.Int("topics", 20, "hidden topic count for corpus generation")
	alpha := flag.Float64("alpha", 0, "power-law nnz shape for classification profiles (e.g. 1.5 for avazu-like row lengths and head-heavy features; 0 keeps the uniform-jitter generator)")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	p, err := data.ProfileByName(*profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	scaled := p.Scaled(*scale)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	switch p.Task {
	case data.TaskClassification:
		spec := scaled.ClassificationSpec(*seed)
		spec.NNZAlpha = *alpha
		pts := data.GenClassification(spec)
		if err := data.WriteLibSVM(w, pts); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		mode := "uniform nnz"
		if *alpha > 0 {
			mode = fmt.Sprintf("power-law nnz α=%.2f", *alpha)
		}
		fmt.Fprintf(os.Stderr, "wrote %d samples × %d features (libsvm, %s)\n", scaled.Samples, scaled.Features, mode)
	case data.TaskTopicModel:
		docs := data.GenCorpus(scaled.CorpusSpec(*topics, *seed))
		if err := data.WriteBagOfWords(w, docs, scaled.Features); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d docs, vocab %d (UCI bag-of-words)\n", scaled.Samples, scaled.Features)
	default:
		fmt.Fprintf(os.Stderr, "unknown task %q\n", p.Task)
		os.Exit(1)
	}
}
