// Command sparkerbench regenerates every table and figure of the
// Sparker paper's evaluation section from the calibrated cluster
// simulation.
//
// Usage:
//
//	sparkerbench              # all tables and figures, paper order
//	sparkerbench -only fig16  # one report (table1..3, fig1..4, fig12..18)
//	sparkerbench -list        # list report ids
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sparker/internal/bench"
)

func main() {
	only := flag.String("only", "", "render a single report (e.g. fig16, table2)")
	list := flag.Bool("list", false, "list available report ids")
	format := flag.String("format", "text", "output format: text or md")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON (reports or -verify claims)")
	verify := flag.Bool("verify", false, "run the reproduction checklist: every headline paper claim, PASS/FAIL")
	flag.Parse()

	render := func(r *bench.Report) string {
		if *jsonOut {
			return r.RenderJSON()
		}
		if *format == "md" {
			return r.RenderMarkdown()
		}
		return r.Render()
	}

	if *verify {
		claims, err := bench.VerifyClaims()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *jsonOut {
			b, err := json.MarshalIndent(claims, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(string(b))
		} else {
			fmt.Print(bench.RenderClaims(claims))
		}
		for _, c := range claims {
			if !c.Pass {
				os.Exit(1)
			}
		}
		return
	}
	if *list {
		fmt.Println("table1 table2 table3 fig1 fig2 fig3 fig4 fig12 fig13 fig14 fig15 fig16 fig17 fig18 fig12-aws fig13-aws fig16-aws ablation-imm ablation-algos ablation-allreduce engine-metrics pipeline sched compress compute serve elastic")
		return
	}
	if *only != "" {
		r, err := bench.ByID(*only)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(render(r))
		return
	}
	reports, err := bench.All()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *jsonOut {
		// One well-formed JSON array, not concatenated objects.
		fmt.Println(bench.RenderJSONReports(reports))
		return
	}
	for _, r := range reports {
		fmt.Println(render(r))
	}
}
