// Command sparker-train trains an MLlib-style model on the in-process
// engine with a chosen aggregation strategy, printing per-iteration
// losses and the aggregation phase breakdown — a functional end-to-end
// of the paper's workloads at laptop scale.
//
// Usage:
//
//	sparker-train -model lr  -profile avazu -scale 20000 -strategy split
//	sparker-train -model svm -data mydata.libsvm -strategy tree
//	sparker-train -model lda -profile nytimes -scale 2000 -topics 10
//	sparker-train -model lr -eventlog run.log -trace   # span records too
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"sparker/internal/data"
	"sparker/internal/eventlog"
	"sparker/internal/linalg"
	"sparker/internal/metrics"
	"sparker/internal/mllib"
	"sparker/internal/obsv"
	"sparker/internal/rdd"
	"sparker/internal/trace"
	"sparker/internal/transport"
)

func main() {
	model := flag.String("model", "lr", "model: lr, svm, lda or kmeans")
	profile := flag.String("profile", "avazu", "synthetic dataset profile (Table 2 name)")
	scale := flag.Int("scale", 20000, "downscale factor for the profile")
	dataFile := flag.String("data", "", "libsvm input file (overrides -profile for lr/svm)")
	strategy := flag.String("strategy", "split", "aggregation: tree, imm, split or allreduce")
	executors := flag.Int("executors", 4, "simulated executors")
	cores := flag.Int("cores", 2, "cores per executor")
	iters := flag.Int("iters", 10, "training iterations")
	topics := flag.Int("topics", 10, "LDA topic count")
	parallelism := flag.Int("parallelism", 4, "split-aggregation ring parallelism")
	seed := flag.Int64("seed", 1, "seed")
	saveModel := flag.String("save-model", "", "write the trained model here (loadable by sparker-serve -model)")
	eventLogPath := flag.String("eventlog", "", "write a history log (JSON lines) to this file")
	traceRun := flag.Bool("trace", false, "record spans to the event log (requires -eventlog); analyze with sparker-analyze -chrome-trace")
	metricsAddr := flag.String("metrics", "", "serve Prometheus text metrics on this address (e.g. 127.0.0.1:9091) while training")
	obsvDir := flag.String("obsv", "", "enable the always-on flight recorder, writing postmortem bundles to this directory")
	chaos := flag.String("chaos", "", "inject a transport fault for demos: ring-kill (one ring connection dies mid-run)")
	stepDeadline := flag.Duration("step-deadline", 0, "per-step ring collective deadline (0: engine default; lr/svm only)")
	flag.Parse()

	strat, err := mllib.ParseStrategy(*strategy)
	if err != nil {
		fail(err)
	}
	var logger *eventlog.Logger
	if *eventLogPath != "" {
		f, err := os.Create(*eventLogPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		logger = eventlog.New(f)
		defer logger.Flush()
	}
	var tracer *trace.Tracer
	if *traceRun {
		if logger == nil {
			fail(fmt.Errorf("-trace requires -eventlog (spans are log records)"))
		}
		// Span export goes through the async exporter so span-heavy runs
		// never block a hot path on log I/O. Closed (drained) before the
		// logger flushes.
		exp := trace.NewAsyncExporter(trace.NewLogExporter(logger), 0)
		defer exp.Close()
		tracer = trace.New(exp)
	}
	var obs *obsv.Observer
	if *obsvDir != "" {
		obs = obsv.New(obsv.Config{BundleDir: *obsvDir})
	}
	var network transport.Network
	switch *chaos {
	case "":
	case "ring-kill":
		// Kill rank 1's ring listener after its boot handshake: the
		// first collective step dies, the engine classifies the peer
		// failure and falls back — exactly the anomaly the flight
		// recorder is built to capture (make obsv-demo drives this).
		victim := transport.Addr("comm/train/ring/1")
		network = transport.NewFaulty(transport.NewMem(), *seed, &transport.FaultRule{
			Match:     func(a transport.Addr) bool { return a == victim },
			Kind:      transport.FaultKill,
			AfterMsgs: 1,
		})
	default:
		fail(fmt.Errorf("unknown -chaos mode %q (ring-kill)", *chaos))
	}
	ctx, err := rdd.NewContext(rdd.Config{
		Name:             "train",
		NumExecutors:     *executors,
		CoresPerExecutor: *cores,
		RingParallelism:  *parallelism,
		EventLog:         logger,
		Tracer:           tracer,
		Obsv:             obs,
		Network:          network,
	})
	if err != nil {
		fail(err)
	}
	defer ctx.Close()

	if *metricsAddr != "" {
		srv, err := metrics.NewMuxServer(*metricsAddr, func() (*metrics.Registry, *metrics.Recorder) {
			return ctx.MergedMetrics(), ctx.Metrics()
		}, map[string]http.Handler{"/debug/": ctx.DebugHandler()})
		if err != nil {
			fail(err)
		}
		defer srv.Close()
		fmt.Printf("serving metrics on http://%s/metrics (debug plane at /debug/sparker/, profiles at /debug/pprof/)\n", srv.Addr())
	}

	start := time.Now()
	var trained mllib.Model
	switch *model {
	case "lr", "svm":
		trained = trainLinear(ctx, *model, *dataFile, *profile, *scale, *iters, strat, *seed, *stepDeadline)
	case "lda":
		trainLDA(ctx, *profile, *scale, *topics, *iters, strat, *seed, *saveModel)
	case "kmeans":
		trained = trainKMeans(ctx, *profile, *scale, *topics, *iters, strat, *seed)
	default:
		fail(fmt.Errorf("unknown model %q (lr, svm, lda, kmeans)", *model))
	}
	if *saveModel != "" && trained != nil {
		if err := mllib.SaveModelFile(*saveModel, trained); err != nil {
			fail(err)
		}
		fmt.Printf("model saved to %s\n", *saveModel)
	}
	rec := ctx.Metrics()
	fmt.Printf("\nwall time           %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("agg-compute         %v\n", rec.Get(metrics.PhaseAggCompute).Round(time.Millisecond))
	fmt.Printf("agg-reduce          %v\n", rec.Get(metrics.PhaseAggReduce).Round(time.Millisecond))
	if hs := ctx.MergedMetrics().Histogram(metrics.HistRingStepNS).Snapshot(); hs.Count > 0 {
		fmt.Printf("ring-step latency   p50 %v  p95 %v  p99 %v  (%d steps)\n",
			time.Duration(hs.Quantile(0.50)).Round(time.Microsecond),
			time.Duration(hs.Quantile(0.95)).Round(time.Microsecond),
			time.Duration(hs.Quantile(0.99)).Round(time.Microsecond),
			hs.Count)
	}
	if obs != nil {
		// Drain any bundle dumps still queued behind the anomaly that
		// tripped them before the process exits.
		obs.Flush(10 * time.Second)
		if bs := obs.Bundles(); len(bs) > 0 {
			fmt.Printf("flight recorder wrote %d postmortem bundle(s):\n", len(bs))
			for _, b := range bs {
				fmt.Printf("  %s\n", b)
			}
			fmt.Println("inspect with: sparker-analyze -postmortem <bundle>")
		}
	}
}

func trainLinear(ctx *rdd.Context, model, dataFile, profile string, scale, iters int, strat mllib.Strategy, seed int64, stepDeadline time.Duration) mllib.Model {
	var points []mllib.LabeledPoint
	var dim int
	if dataFile != "" {
		f, err := os.Open(dataFile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		points, err = data.ReadLibSVM(f, 0)
		if err != nil {
			fail(err)
		}
		if len(points) == 0 {
			fail(fmt.Errorf("empty dataset %s", dataFile))
		}
		dim = points[0].Features.Dim
	} else {
		p, err := data.ProfileByName(profile)
		if err != nil {
			fail(err)
		}
		if p.Task != data.TaskClassification {
			fail(fmt.Errorf("profile %s is not a classification dataset", profile))
		}
		sp := p.Scaled(scale)
		points = data.GenClassification(sp.ClassificationSpec(seed))
		dim = sp.Features
	}
	parts := ctx.TotalCores()
	train := rdd.FromSlice(ctx, points, parts).Cache()
	fmt.Printf("training %s on %d samples × %d features, %d executors × %d cores, strategy=%v\n",
		model, len(points), dim, ctx.NumExecutors(), ctx.CoresPerExecutor(), strat)

	gd := mllib.GDConfig{Iterations: iters, StepSize: 1.0, Strategy: strat, Seed: seed, StepDeadline: stepDeadline}
	var m *mllib.LinearModel
	var err error
	if model == "svm" {
		m, err = mllib.TrainSVM(train, mllib.SVMConfig{NumFeatures: dim, GD: gd})
	} else {
		m, err = mllib.TrainLogisticRegression(train, mllib.LogisticRegressionConfig{NumFeatures: dim, GD: gd})
	}
	if err != nil {
		fail(err)
	}
	for i, l := range m.Losses {
		fmt.Printf("iteration %3d  loss %.6f\n", i+1, l)
	}
	fmt.Printf("training accuracy   %.4f\n", m.Accuracy(points))
	return m
}

// trainLDA saves through LDAModel.Save itself: LDA predates the
// unified Model interface (document-topic inference, not pointwise
// prediction), so it keeps its own persistence pair.
func trainLDA(ctx *rdd.Context, profile string, scale, topics, iters int, strat mllib.Strategy, seed int64, savePath string) {
	p, err := data.ProfileByName(profile)
	if err != nil {
		fail(err)
	}
	if p.Task != data.TaskTopicModel {
		fail(fmt.Errorf("profile %s is not a topic-model dataset", profile))
	}
	sp := p.Scaled(scale)
	docs := data.GenCorpus(sp.CorpusSpec(topics, seed))
	corpus := rdd.FromSlice(ctx, docs, ctx.TotalCores()).Cache()
	fmt.Printf("training LDA (K=%d) on %d docs, vocab %d, strategy=%v\n",
		topics, len(docs), sp.Features, strat)

	m, err := mllib.TrainLDA(corpus, mllib.LDAConfig{
		K: topics, Vocab: sp.Features, Iterations: iters, Strategy: strat, Seed: seed,
	})
	if err != nil {
		fail(err)
	}
	for i, b := range m.Bounds {
		fmt.Printf("iteration %3d  bound %.6f\n", i+1, b)
	}
	for k := 0; k < topics && k < 5; k++ {
		fmt.Printf("topic %d top terms: %v\n", k, m.TopTerms(k, 8))
	}
	if savePath != "" {
		f, err := os.Create(savePath)
		if err != nil {
			fail(err)
		}
		if err := m.Save(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("model saved to %s\n", savePath)
	}
}

// trainKMeans clusters a synthetic classification profile's feature
// vectors (labels ignored); -topics doubles as K.
func trainKMeans(ctx *rdd.Context, profile string, scale, k, iters int, strat mllib.Strategy, seed int64) mllib.Model {
	p, err := data.ProfileByName(profile)
	if err != nil {
		fail(err)
	}
	if p.Task != data.TaskClassification {
		fail(fmt.Errorf("profile %s is not a classification dataset", profile))
	}
	sp := p.Scaled(scale)
	pts := data.GenClassification(sp.ClassificationSpec(seed))
	vecs := make([]linalg.SparseVector, len(pts))
	for i, pt := range pts {
		vecs[i] = pt.Features
	}
	points := rdd.FromSlice(ctx, vecs, ctx.TotalCores()).Cache()
	fmt.Printf("k-means (K=%d) on %d points × %d features, strategy=%v\n",
		k, len(vecs), sp.Features, strat)
	m, err := mllib.TrainKMeans(points, mllib.KMeansConfig{
		K: k, NumFeatures: sp.Features, Iterations: iters, Strategy: strat,
	})
	if err != nil {
		fail(err)
	}
	for i, c := range m.CostHistory {
		fmt.Printf("iteration %3d  cost %.2f\n", i+1, c)
	}
	return m
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sparker-train:", err)
	os.Exit(1)
}
