package main

// Postmortem rendering: sparker-analyze -postmortem <bundle.json>
// turns a flight-recorder bundle (written by the obsv Observer when an
// anomaly trips) into a readable incident report — what tripped, what
// the cluster looked like in the minutes before, which executors were
// implicated, and the merged driver+executor timeline around the
// trigger. -validate additionally enforces the bundle invariants and
// exits non-zero on a malformed bundle (make obsv-demo gates on this).

import (
	"fmt"
	"os"
	"sort"
	"time"

	"sparker/internal/obsv"
)

// timelineTail bounds how many merged records the report prints.
const timelineTail = 40

func postmortemReport(path string, validate bool) {
	b, err := obsv.Load(path)
	if err != nil {
		fail(err)
	}

	fmt.Printf("postmortem bundle %s (version %d)\n", path, b.Version)
	fmt.Printf("written  %s\n", time.Unix(0, b.WrittenNS).Format(time.RFC3339))
	fmt.Printf("trigger  %s", b.Trigger.Name)
	if b.Trigger.Detail != "" {
		fmt.Printf("  (%s)", b.Trigger.Detail)
	}
	fmt.Printf("  at %s\n", time.Unix(0, b.Trigger.TimeNS).Format(time.RFC3339Nano))
	fmt.Printf("cluster  %q: %d executors × %d cores", b.Cluster.Name, b.Cluster.Executors, b.Cluster.Cores)
	if len(b.Cluster.ExecOfRank) > 0 {
		fmt.Printf(", ring rank→exec %v", b.Cluster.ExecOfRank)
	}
	fmt.Println()
	if b.BaselineP99NS > 0 {
		fmt.Printf("rolling p99 baseline  %v\n", time.Duration(b.BaselineP99NS).Round(time.Microsecond))
	}

	snapshotTable(b)
	counterTable(b)
	executorTable(b)
	timelineTable(b)

	if validate {
		if err := b.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "sparker-analyze: validate:", err)
			os.Exit(1)
		}
		fmt.Println("\nvalidate: OK")
	}
}

// snapshotTable prints the pre-trigger health history, timestamped
// relative to the trigger.
func snapshotTable(b *obsv.Bundle) {
	if len(b.Snapshots) == 0 {
		fmt.Println("\nno metric snapshots in bundle")
		return
	}
	fmt.Printf("\n%-10s %8s %12s %12s %10s %10s %6s\n",
		"when", "steps", "p50", "p99", "heap", "goroutine", "gc")
	for _, s := range b.Snapshots {
		fmt.Printf("%-10s %8d %12v %12v %10s %10d %6d\n",
			relTime(s.TimeNS, b.Trigger.TimeNS),
			s.StepCount,
			time.Duration(s.StepP50NS).Round(time.Microsecond),
			time.Duration(s.StepP99NS).Round(time.Microsecond),
			byteSize(int64(s.HeapAlloc)),
			s.Goroutines, s.NumGC)
	}
}

func counterTable(b *obsv.Bundle) {
	if len(b.Counters) == 0 {
		return
	}
	names := make([]string, 0, len(b.Counters))
	for n := range b.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Println("\ncumulative event counters:")
	for _, n := range names {
		fmt.Printf("  %-24s %d\n", n, b.Counters[n])
	}
}

// executorTable summarizes each collected ring and flags the executors
// the bundle implicates (error spans or anomaly markers on record).
func executorTable(b *obsv.Bundle) {
	if len(b.Executors) == 0 {
		return
	}
	fmt.Printf("\n%-6s %-12s %8s %8s %8s  %s\n",
		"exec", "source", "records", "dropped", "errors", "note")
	var implicated []int
	for _, e := range b.Executors {
		errs := 0
		for _, r := range e.Ring.Records {
			if (r.Kind == obsv.KindSpan && r.Detail != "") || r.Kind == obsv.KindMarker {
				errs++
			}
		}
		note := ""
		if e.Err != "" {
			note = "collect: " + e.Err
		}
		if errs > 0 {
			implicated = append(implicated, e.Exec)
		}
		fmt.Printf("%-6d %-12s %8d %8d %8d  %s\n",
			e.Exec, e.Source, len(e.Ring.Records), e.Ring.Dropped, errs, note)
	}
	if len(implicated) > 0 {
		fmt.Printf("implicated executors: %v\n", implicated)
	}
}

// timelineTable merges driver and executor records and prints the tail
// leading up to (and just past) the trigger.
func timelineTable(b *obsv.Bundle) {
	all := b.AllRecords()
	if len(all) == 0 {
		return
	}
	if len(all) > timelineTail {
		fmt.Printf("\nmerged timeline (last %d of %d records):\n", timelineTail, len(all))
		all = all[len(all)-timelineTail:]
	} else {
		fmt.Printf("\nmerged timeline (%d records):\n", len(all))
	}
	for _, sr := range all {
		src := "driver"
		if sr.Exec >= 0 {
			src = fmt.Sprintf("exec %d", sr.Exec)
		}
		fmt.Printf("  %-9s %-7s %-8s %s\n",
			relTime(sr.Record.TimeNS, b.Trigger.TimeNS), src,
			sr.Record.Kind, describeRecord(sr.Record))
	}
}

// describeRecord renders one record's scalars per its kind semantics.
func describeRecord(r obsv.Record) string {
	switch r.Kind {
	case obsv.KindStep:
		return fmt.Sprintf("%s  %v  %s  epoch %d  ch %d step %d",
			r.Name, time.Duration(r.A).Round(time.Microsecond), byteSize(r.B),
			r.C, r.D>>32, r.D&0xffffffff)
	case obsv.KindSpan:
		s := fmt.Sprintf("%s  %v  trace %016x span %016x",
			r.Name, time.Duration(r.A).Round(time.Microsecond), uint64(r.B), uint64(r.C))
		if r.D != 0 {
			s += fmt.Sprintf(" parent %016x", uint64(r.D))
		}
		if r.Detail != "" {
			s += "  err=" + r.Detail
		}
		return s
	case obsv.KindSnapshot:
		return fmt.Sprintf("steps %d  p50 %v  p99 %v  heap %s",
			r.A, time.Duration(r.B).Round(time.Microsecond),
			time.Duration(r.C).Round(time.Microsecond), byteSize(r.D))
	case obsv.KindProfile:
		s := fmt.Sprintf("%s  heap %s  alloc %s  goroutines %d",
			r.Name, byteSize(r.A), byteSize(r.B), r.C)
		if r.D != 0 {
			s += fmt.Sprintf("  job %d", r.D)
		}
		if r.Detail != "" {
			s += "  tenant=" + r.Detail
		}
		return s
	case obsv.KindPhase:
		return fmt.Sprintf("%s  %v  %s", r.Name, time.Duration(r.A).Round(time.Microsecond), r.Detail)
	default: // marker
		s := r.Name
		if r.Detail != "" {
			s += "  " + r.Detail
		}
		return s
	}
}

// relTime renders t relative to the trigger instant: "-1.2s" fired
// before it, "+340ms" after.
func relTime(t, trigger int64) string {
	d := time.Duration(t - trigger)
	sign := "+"
	if d < 0 {
		sign, d = "-", -d
	}
	return sign + d.Round(time.Millisecond).String()
}

func byteSize(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
