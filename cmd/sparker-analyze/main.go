// Command sparker-analyze reproduces the paper's Section-2
// methodology on a history log: it reads the JSON-lines event log a
// training run wrote (sparker-train -eventlog FILE) and prints the
// phase decomposition and hot-spot — the analysis that revealed tree
// aggregation as MLlib's bottleneck.
//
// Traced runs (sparker-train -trace) add span records to the log,
// which this command can roll up and export:
//
//	-percentiles        per-span-name duration p50/p95/p99 table
//	-chrome-trace FILE  Chrome trace-event JSON for Perfetto
//	                    (load at ui.perfetto.dev)
//	-validate           fail unless the trace has executor tracks,
//	                    ring-step spans and cross-track stitches
//
// Usage:
//
//	sparker-train -model lr -eventlog run.log -trace
//	sparker-analyze -percentiles -chrome-trace run.json run.log
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"sparker/internal/eventlog"
	"sparker/internal/metrics"
	"sparker/internal/trace"
)

func main() {
	chromePath := flag.String("chrome-trace", "", "write Chrome trace-event JSON (Perfetto-loadable) to this file")
	percentiles := flag.Bool("percentiles", false, "print per-span-name duration percentiles")
	validate := flag.Bool("validate", false, "exit non-zero unless the trace stitches driver and >=2 executors with ring-step spans (with -postmortem: unless the bundle validates)")
	postmortem := flag.Bool("postmortem", false, "render a flight-recorder postmortem bundle (sparker-train -obsv) instead of a history log")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sparker-analyze [-percentiles] [-chrome-trace out.json] [-validate] <history-log>")
		fmt.Fprintln(os.Stderr, "       sparker-analyze -postmortem [-validate] <bundle.json>")
		os.Exit(2)
	}
	if *postmortem {
		postmortemReport(flag.Arg(0), *validate)
		return
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	defer f.Close()

	events, err := eventlog.Read(f)
	if err != nil {
		fail(err)
	}
	phaseReport(events)
	if *percentiles {
		percentileReport(events)
	}
	if *chromePath != "" || *validate {
		chromeReport(events, *chromePath, *validate)
	}
}

func phaseReport(events []eventlog.Event) {
	b := eventlog.Analyze(events)
	if b.Total == 0 {
		fmt.Println("no phase events in log")
		return
	}

	names := make([]string, 0, len(b.Phases))
	for n := range b.Phases {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return b.Phases[names[i]] > b.Phases[names[j]] })

	fmt.Printf("%d events, %v of attributed time\n\n", len(events), b.Total.Round(time.Millisecond))
	fmt.Printf("%-14s %12s %8s\n", "phase", "time", "share")
	for _, n := range names {
		d := b.Phases[n]
		fmt.Printf("%-14s %12v %7.1f%%\n", n, d.Round(time.Millisecond), 100*float64(d)/float64(b.Total))
	}
	hot, d := b.Hotspot()
	fmt.Printf("\nhot-spot: %s (%v)\n", hot, d.Round(time.Millisecond))
	aggShare := b.Share("agg-compute", "agg-reduce")
	fmt.Printf("aggregation share: %.1f%% (the paper measured 67.69%% geomean across MLlib workloads)\n", 100*aggShare)
}

// percentileReport rolls span durations up per span name into log₂
// histograms and prints the latency table — the ring-step line is the
// per-step latency distribution the paper's Figure 13 discussion needs.
func percentileReport(events []eventlog.Event) {
	hists := map[string]*metrics.Histogram{}
	for _, e := range events {
		s, ok := trace.SpanFromEvent(e)
		if !ok {
			continue
		}
		h := hists[s.Name]
		if h == nil {
			h = metrics.NewHistogram()
			hists[s.Name] = h
		}
		h.Observe(s.Duration().Nanoseconds())
	}
	if len(hists) == 0 {
		fmt.Println("\nno span records in log (run sparker-train with -trace)")
		return
	}
	names := make([]string, 0, len(hists))
	for n := range hists {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return hists[names[i]].Sum() > hists[names[j]].Sum() })

	fmt.Printf("\n%-14s %8s %12s %12s %12s %12s\n", "span", "count", "p50", "p95", "p99", "total")
	for _, n := range names {
		s := hists[n].Snapshot()
		fmt.Printf("%-14s %8d %12v %12v %12v %12v\n", n, s.Count,
			time.Duration(s.Quantile(0.50)).Round(time.Microsecond),
			time.Duration(s.Quantile(0.95)).Round(time.Microsecond),
			time.Duration(s.Quantile(0.99)).Round(time.Microsecond),
			time.Duration(s.Sum).Round(time.Millisecond))
	}
}

// chromeReport exports the trace (when path is non-empty) and checks
// the stitching invariants (when validate is set).
func chromeReport(events []eventlog.Event, path string, validate bool) {
	var out *os.File
	if path != "" {
		var err error
		out, err = os.Create(path)
		if err != nil {
			fail(err)
		}
		defer out.Close()
	} else {
		var err error
		out, err = os.OpenFile(os.DevNull, os.O_WRONLY, 0)
		if err != nil {
			fail(err)
		}
		defer out.Close()
	}
	sum, err := trace.WriteChromeTrace(out, events)
	if err != nil {
		fail(err)
	}
	execTracks := len(sum.Tracks) - 1 // minus the driver track
	fmt.Printf("\ntrace: %d spans, %d traces, %d executor tracks, %d ring-steps, %d cross-track stitches, %d orphans\n",
		sum.Spans, sum.Traces, execTracks, sum.RingSteps, sum.CrossTrackParents, sum.Orphans)
	if path != "" {
		fmt.Printf("chrome trace written to %s (load at ui.perfetto.dev)\n", path)
	}
	if validate {
		var problems []string
		if execTracks < 2 {
			problems = append(problems, fmt.Sprintf("expected >=2 executor tracks, got %d", execTracks))
		}
		if sum.RingSteps == 0 {
			problems = append(problems, "no ring-step spans (strategy without a ring, or tracing broken)")
		}
		if sum.CrossTrackParents == 0 {
			problems = append(problems, "no cross-track parent links — span propagation across the transport failed")
		}
		if len(problems) > 0 {
			for _, p := range problems {
				fmt.Fprintln(os.Stderr, "sparker-analyze: validate:", p)
			}
			os.Exit(1)
		}
		fmt.Println("validate: OK")
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sparker-analyze:", err)
	os.Exit(1)
}
