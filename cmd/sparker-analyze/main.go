// Command sparker-analyze reproduces the paper's Section-2
// methodology on a history log: it reads the JSON-lines event log a
// training run wrote (sparker-train -eventlog FILE) and prints the
// phase decomposition and hot-spot — the analysis that revealed tree
// aggregation as MLlib's bottleneck.
//
// Usage:
//
//	sparker-train -model lr -eventlog run.log
//	sparker-analyze run.log
package main

import (
	"fmt"
	"os"
	"sort"
	"time"

	"sparker/internal/eventlog"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: sparker-analyze <history-log>")
		os.Exit(2)
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "sparker-analyze:", err)
		os.Exit(1)
	}
	defer f.Close()

	events, err := eventlog.Read(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sparker-analyze:", err)
		os.Exit(1)
	}
	b := eventlog.Analyze(events)
	if b.Total == 0 {
		fmt.Println("no phase events in log")
		return
	}

	names := make([]string, 0, len(b.Phases))
	for n := range b.Phases {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return b.Phases[names[i]] > b.Phases[names[j]] })

	fmt.Printf("%d events, %v of attributed time\n\n", len(events), b.Total.Round(time.Millisecond))
	fmt.Printf("%-14s %12s %8s\n", "phase", "time", "share")
	for _, n := range names {
		d := b.Phases[n]
		fmt.Printf("%-14s %12v %7.1f%%\n", n, d.Round(time.Millisecond), 100*float64(d)/float64(b.Total))
	}
	hot, d := b.Hotspot()
	fmt.Printf("\nhot-spot: %s (%v)\n", hot, d.Round(time.Millisecond))
	aggShare := b.Share("agg-compute", "agg-reduce")
	fmt.Printf("aggregation share: %.1f%% (the paper measured 67.69%% geomean across MLlib workloads)\n", 100*aggShare)
}
