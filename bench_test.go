// Package sparker's benchmark suite: one testing.B benchmark per
// table/figure of the paper's evaluation. Functional benchmarks
// (Fig12–Fig17 variants) measure the real in-process implementations —
// transports, communicator, collectives, aggregation strategies, model
// training. Simulation benchmarks (suffix Sim) time the calibrated
// cluster-scale reproduction used by cmd/sparkerbench.
//
//	go test -bench=. -benchmem
package sparker

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"sparker/internal/blockmanager"
	"sparker/internal/collective"
	"sparker/internal/comm"
	"sparker/internal/data"
	"sparker/internal/mllib"
	"sparker/internal/rdd"
	"sparker/internal/sim"
	"sparker/internal/transport"
)

const benchMB = 1024 * 1024

// --- Table 2: dataset generation throughput ---------------------------

func BenchmarkTable02DatasetGen(b *testing.B) {
	for _, name := range []string{"avazu", "kdd10", "nytimes"} {
		b.Run(name, func(b *testing.B) {
			p, err := data.ProfileByName(name)
			if err != nil {
				b.Fatal(err)
			}
			scaled := p.Scaled(100_000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if p.Task == data.TaskClassification {
					pts := data.GenClassification(scaled.ClassificationSpec(int64(i)))
					if len(pts) == 0 {
						b.Fatal("empty")
					}
				} else {
					docs := data.GenCorpus(scaled.CorpusSpec(10, int64(i)))
					if len(docs) == 0 {
						b.Fatal("empty")
					}
				}
			}
		})
	}
}

// --- Figures 1/2: full-workload simulation -----------------------------

func BenchmarkFig01WorkloadSim(b *testing.B) {
	w, err := sim.WorkloadByName("LDA-N")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunWorkload(sim.RunParams{
			Cluster: sim.BIC(), Workload: w, Strategy: sim.AggTree, Nodes: 8,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig02DecompositionSim(b *testing.B) {
	ws := sim.Workloads()
	for i := 0; i < b.N; i++ {
		w := ws[i%len(ws)]
		if _, err := sim.RunWorkload(sim.RunParams{
			Cluster: sim.BIC(), Workload: w, Strategy: sim.AggTree, Nodes: 8,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures 3/4: strong-scaling simulation ----------------------------

func BenchmarkFig03StrongScalingSim(b *testing.B) {
	w, err := sim.WorkloadByName("LDA-N")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		nodes := []int{1, 2, 4, 8}[i%4]
		if _, err := sim.RunWorkload(sim.RunParams{
			Cluster: sim.BIC(), Workload: w, Strategy: sim.AggTree, Nodes: nodes,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig04StrongScalingSim(b *testing.B) {
	w, err := sim.WorkloadByName("LDA-N")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunWorkload(sim.RunParams{
			Cluster: sim.AWS(), Workload: w, Strategy: sim.AggTree, Nodes: 10,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 12: point-to-point latency (functional) --------------------

// BenchmarkFig12LatencySC measures a real ping-pong over the scalable
// communicator (mem transport), reporting ns/op per round trip.
func BenchmarkFig12LatencySC(b *testing.B) {
	net := transport.NewMem()
	defer net.Close()
	eps, err := comm.NewGroup(net, "bench-lat", 2)
	if err != nil {
		b.Fatal(err)
	}
	defer comm.CloseGroup(eps)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			msg, err := eps[1].RecvFrom(0, 0)
			if err != nil {
				return
			}
			if err := eps[1].SendTo(0, 0, msg); err != nil {
				return
			}
		}
	}()
	payload := make([]byte, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eps[0].SendTo(1, 0, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := eps[0].RecvFrom(1, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	comm.CloseGroup(eps)
	<-done
}

// BenchmarkFig12LatencyBM measures the BlockManager messaging baseline
// — the path the paper measured at 242× MPI latency.
func BenchmarkFig12LatencyBM(b *testing.B) {
	net := transport.NewMem()
	defer net.Close()
	master, err := blockmanager.NewMaster(net)
	if err != nil {
		b.Fatal(err)
	}
	defer master.Close()
	s0, err := blockmanager.NewStore(net, "bench-bm-0")
	if err != nil {
		b.Fatal(err)
	}
	defer s0.Close()
	s1, err := blockmanager.NewStore(net, "bench-bm-1")
	if err != nil {
		b.Fatal(err)
	}
	defer s1.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			msg, err := s1.RecvMessage()
			if err != nil {
				return
			}
			if err := s1.SendMessage("bench-bm-0", msg); err != nil {
				return
			}
		}
	}()
	payload := make([]byte, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s0.SendMessage("bench-bm-1", payload); err != nil {
			b.Fatal(err)
		}
		if _, err := s0.RecvMessage(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
}

// --- Figure 13: throughput (functional, TCP loopback) -------------------

func BenchmarkFig13Throughput(b *testing.B) {
	for _, par := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			net := transport.NewTCP()
			defer net.Close()
			eps, err := comm.NewGroup(net, fmt.Sprintf("bench-tp-%d", par), 2)
			if err != nil {
				b.Fatal(err)
			}
			defer comm.CloseGroup(eps)
			const msg = 4 * benchMB
			part := msg / par
			var recvWG sync.WaitGroup
			for ch := 0; ch < par; ch++ {
				recvWG.Add(1)
				go func(ch int) {
					defer recvWG.Done()
					for {
						buf, err := eps[1].RecvFrom(0, ch)
						if err != nil {
							return
						}
						comm.Release(buf)
					}
				}(ch)
			}
			// Per the buffer-ownership contract, each send surrenders a
			// fresh pool draw to the recycling SendToAsync path; the
			// receive side releases its buffers, so at steady state the
			// same few arrays circulate through the pool. The persistent
			// per-channel senders already overlap the writes, so no
			// goroutine fan-out is needed here.
			dones := make([]chan error, par)
			for ch := range dones {
				dones[ch] = make(chan error, 1)
			}
			b.SetBytes(msg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for ch := 0; ch < par; ch++ {
					eps[0].SendToAsync(1, ch, comm.GetBuffer(part), dones[ch])
				}
				for ch := 0; ch < par; ch++ {
					if err := <-dones[ch]; err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			comm.CloseGroup(eps)
			recvWG.Wait()
		})
	}
}

// --- Figure 14/15: ring reduce-scatter (functional) ---------------------

func BenchmarkFig14ReduceScatterParallelism(b *testing.B) {
	const ranks = 6
	const dim = 512 * 1024 // 4MB of float64 per rank
	for _, par := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			benchRingReduceScatter(b, ranks, par, dim)
		})
	}
}

func BenchmarkFig15ReduceScatterScaling(b *testing.B) {
	const dim = 128 * 1024
	for _, ranks := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("executors=%d", ranks), func(b *testing.B) {
			benchRingReduceScatter(b, ranks, 2, dim)
		})
	}
}

func benchRingReduceScatter(b *testing.B, ranks, par, dim int) {
	net := transport.NewMem()
	defer net.Close()
	eps, err := comm.NewGroup(net, fmt.Sprintf("bench-rs-%d-%d-%d", ranks, par, dim), ranks)
	if err != nil {
		b.Fatal(err)
	}
	defer comm.CloseGroup(eps)
	nSegs := par * ranks
	inputs := make([][][]float64, ranks)
	for r := range inputs {
		segs := make([][]float64, nSegs)
		for s := range segs {
			seg := make([]float64, dim/nSegs)
			for i := range seg {
				seg[i] = float64(r + s + i)
			}
			segs[s] = seg
		}
		inputs[r] = segs
	}
	b.SetBytes(int64(dim * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for _, ep := range eps {
			wg.Add(1)
			go func(ep *comm.Endpoint) {
				defer wg.Done()
				// Copy inputs: reduce mutates segments in place.
				segs := make([][]float64, nSegs)
				for s, seg := range inputs[ep.Rank()] {
					segs[s] = append([]float64(nil), seg...)
				}
				if _, err := collective.RingReduceScatter(context.Background(), ep, segs, par, collective.F64Ops()); err != nil {
					b.Error(err)
				}
			}(ep)
		}
		wg.Wait()
	}
}

// --- Figure 16: aggregation strategies (functional) ----------------------

func BenchmarkFig16Aggregation(b *testing.B) {
	for _, dim := range []int{1 << 10, 1 << 17, 1 << 20} { // 8KB, 1MB, 8MB
		for _, strat := range []mllib.Strategy{mllib.StrategyTree, mllib.StrategyTreeIMM, mllib.StrategySplit} {
			b.Run(fmt.Sprintf("bytes=%d/%v", dim*8, strat), func(b *testing.B) {
				ctx, err := rdd.NewContext(rdd.Config{
					Name:             fmt.Sprintf("bench-agg-%d-%v-%d", dim, strat, b.N),
					NumExecutors:     4,
					CoresPerExecutor: 2,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer ctx.Close()
				samples := rdd.Generate(ctx, 16, func(part int) ([]int64, error) {
					out := make([]int64, 64)
					for i := range out {
						out[i] = int64(part*64 + i)
					}
					return out, nil
				}).Cache()
				if _, err := rdd.Count(samples); err != nil {
					b.Fatal(err)
				}
				seqOp := func(acc []float64, v int64) []float64 {
					acc[int(v)%dim]++
					return acc
				}
				b.SetBytes(int64(dim * 8))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := mllib.AggregateF64(samples, dim, seqOp, strat, 2, 4); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Figure 17: end-to-end training (functional) -------------------------

func BenchmarkFig17EndToEnd(b *testing.B) {
	for _, strat := range []mllib.Strategy{mllib.StrategyTree, mllib.StrategySplit} {
		b.Run(strat.String(), func(b *testing.B) {
			ctx, err := rdd.NewContext(rdd.Config{
				Name:             fmt.Sprintf("bench-e2e-%v-%d", strat, b.N),
				NumExecutors:     4,
				CoresPerExecutor: 2,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer ctx.Close()
			p, err := data.ProfileByName("kdd10")
			if err != nil {
				b.Fatal(err)
			}
			scaled := p.Scaled(20_000) // big-aggregator regime: ~1000 features
			pts := data.GenClassification(scaled.ClassificationSpec(1))
			train := rdd.FromSlice(ctx, pts, ctx.TotalCores()).Cache()
			if _, err := rdd.Count(train); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mllib.TrainLogisticRegression(train, mllib.LogisticRegressionConfig{
					NumFeatures: scaled.Features,
					GD:          mllib.GDConfig{Iterations: 3, StepSize: 1, Strategy: strat},
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 18: strong scaling simulation --------------------------------

func BenchmarkFig18StrongScalingSim(b *testing.B) {
	w, err := sim.WorkloadByName("LDA-N")
	if err != nil {
		b.Fatal(err)
	}
	for _, strat := range []sim.AggStrategy{sim.AggTree, sim.AggSplit} {
		b.Run(strat.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.RunWorkload(sim.RunParams{
					Cluster: sim.AWS(), Workload: w, Strategy: strat, Nodes: 10,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
