package collective

// Chaos suite: ring collectives over a fault-injecting transport. Every
// case must end in bounded time with either the correct result (faults
// the ring can ride out, like delay) or a classified error
// (comm.ErrPeerTimeout / comm.ErrPeerDown) — never a hang, never an
// unclassified failure, never a leaked goroutine.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"sparker/internal/comm"
	"sparker/internal/transport"
)

// chaosSettle waits for the goroutine count to drop back to want.
func chaosSettle(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var now int
	for time.Now().Before(deadline) {
		now = runtime.NumGoroutine()
		if now <= want {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines did not settle: %d, want <= %d", now, want)
}

// ringMatch matches every ring listener of the named group.
func ringMatch(group string) func(transport.Addr) bool {
	prefix := "comm/" + group + "/"
	return func(a transport.Addr) bool { return strings.HasPrefix(string(a), prefix) }
}

// runChaosGroup builds n endpoints over a faulty network, runs body on
// each concurrently, and returns the per-rank errors and wall time.
func runChaosGroup(t *testing.T, net transport.Network, n int, name string, body func(e *comm.Endpoint) error) ([]error, time.Duration) {
	t.Helper()
	eps, err := comm.NewGroup(net, name, n)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseGroup(eps)
	var wg sync.WaitGroup
	errs := make([]error, n)
	start := time.Now()
	for i, e := range eps {
		wg.Add(1)
		go func(i int, e *comm.Endpoint) {
			defer wg.Done()
			errs[i] = body(e)
		}(i, e)
	}
	wg.Wait()
	return errs, time.Since(start)
}

// classified reports whether err carries one of the peer-failure
// sentinels the fallback logic dispatches on.
func classified(err error) bool {
	return errors.Is(err, comm.ErrPeerTimeout) || errors.Is(err, comm.ErrPeerDown)
}

// TestChaosRingAllReduce is the fault × parallelism table of the ring
// collectives:
//
//   - delay: every message 10× slower than the healthy baseline — the
//     ring must still produce the correct sums.
//   - drop-all: 100% message loss after connection setup — every rank
//     must return comm.ErrPeerTimeout within 2× the step deadline.
//   - kill: one rank's inbound ring links severed mid-collective —
//     every rank must return a classified error in bounded time.
func TestChaosRingAllReduce(t *testing.T) {
	const n = 4
	const stepDeadline = 500 * time.Millisecond
	for _, p := range []int{1, 4} {
		p := p
		t.Run(fmt.Sprintf("delay/p=%d", p), func(t *testing.T) {
			before := runtime.NumGoroutine()
			group := fmt.Sprintf("chaos-delay-%d", p)
			net := transport.NewFaulty(transport.NewMem(), 1, &transport.FaultRule{
				Match: ringMatch(group),
				Kind:  transport.FaultDelay,
				Delay: 10 * time.Millisecond, // ~10× an in-memory hop
			})
			defer net.Close()
			rng := rand.New(rand.NewSource(int64(p)))
			inputs, want := makeInputs(rng, n, p*n, 8)
			var mu sync.Mutex
			results := make([][][]float64, n)
			errs, _ := runChaosGroup(t, net, n, group, func(e *comm.Endpoint) error {
				ctx := WithStepDeadline(context.Background(), stepDeadline)
				all, err := RingAllReduce(ctx, e, inputs[e.Rank()], p, F64Ops())
				if err != nil {
					return err
				}
				mu.Lock()
				results[e.Rank()] = all
				mu.Unlock()
				return nil
			})
			for r, err := range errs {
				if err != nil {
					t.Fatalf("rank %d: delayed ring should still succeed: %v", r, err)
				}
				for i := range want {
					if !segsEqual(results[r][i], want[i], 1e-9) {
						t.Fatalf("rank %d segment %d: wrong sum under delay", r, i)
					}
				}
			}
			chaosSettle(t, before)
		})
		t.Run(fmt.Sprintf("drop-all/p=%d", p), func(t *testing.T) {
			before := runtime.NumGoroutine()
			group := fmt.Sprintf("chaos-drop-%d", p)
			net := transport.NewFaulty(transport.NewMem(), 1, &transport.FaultRule{
				Match:     ringMatch(group),
				Kind:      transport.FaultDrop,
				AfterMsgs: 1, // let the connection handshake through
			})
			defer net.Close()
			rng := rand.New(rand.NewSource(int64(p)))
			inputs, _ := makeInputs(rng, n, p*n, 8)
			errs, elapsed := runChaosGroup(t, net, n, group, func(e *comm.Endpoint) error {
				ctx := WithStepDeadline(context.Background(), stepDeadline)
				_, err := RingAllReduce(ctx, e, inputs[e.Rank()], p, F64Ops())
				return err
			})
			for r, err := range errs {
				if err == nil {
					t.Fatalf("rank %d: 100%% drop must fail", r)
				}
				if !errors.Is(err, comm.ErrPeerTimeout) {
					t.Fatalf("rank %d: want ErrPeerTimeout, got %v", r, err)
				}
			}
			// Every rank stalls on its first receive, so the whole
			// collective must classify within 2× the step deadline.
			if elapsed > 2*stepDeadline {
				t.Fatalf("classification took %v, want <= %v", elapsed, 2*stepDeadline)
			}
			chaosSettle(t, before)
		})
		t.Run(fmt.Sprintf("kill/p=%d", p), func(t *testing.T) {
			before := runtime.NumGoroutine()
			group := fmt.Sprintf("chaos-kill-%d", p)
			victim := transport.Addr(fmt.Sprintf("comm/%s/%d", group, 1))
			net := transport.NewFaulty(transport.NewMem(), 1, &transport.FaultRule{
				Match:     func(a transport.Addr) bool { return a == victim },
				Kind:      transport.FaultKill,
				AfterMsgs: 1, // let each conn's handshake through, kill on first data
			})
			defer net.Close()
			rng := rand.New(rand.NewSource(int64(p)))
			inputs, _ := makeInputs(rng, n, p*n, 8)
			errs, elapsed := runChaosGroup(t, net, n, group, func(e *comm.Endpoint) error {
				ctx := WithStepDeadline(context.Background(), stepDeadline)
				_, err := RingAllReduce(ctx, e, inputs[e.Rank()], p, F64Ops())
				return err
			})
			for r, err := range errs {
				if err == nil {
					t.Fatalf("rank %d: killed peer must fail the collective", r)
				}
				if !classified(err) {
					t.Fatalf("rank %d: unclassified error %v", r, err)
				}
			}
			// Failure ripples at most one step deadline per ring hop.
			limit := time.Duration(2*(n-1)+2) * stepDeadline
			if elapsed > limit {
				t.Fatalf("classification took %v, want <= %v", elapsed, limit)
			}
			chaosSettle(t, before)
		})
	}
}
