package collective

// Tests for the pipelined chunked ring path: bitwise equivalence with
// the sequential single-frame path (the property the multi-core sharded
// reduce must preserve), exact wire accounting for chunk trains,
// cut-through forwarding in the allgather, header validation, and the
// adaptive chunk-size controller.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sparker/internal/comm"
	"sparker/internal/metrics"
	"sparker/internal/transport"
)

// makeDenseInputs is makeInputs with full-precision normal values: no
// rounding, so any reordering of the floating-point additions would
// change low-order bits and fail the bitwise checks below.
func makeDenseInputs(rng *rand.Rand, ranks, segments, segLen int) [][][]float64 {
	inputs := make([][][]float64, ranks)
	for r := range inputs {
		inputs[r] = make([][]float64, segments)
		for i := range inputs[r] {
			seg := make([]float64, segLen)
			for j := range seg {
				seg[j] = rng.NormFloat64()
			}
			inputs[r][i] = seg
		}
	}
	return inputs
}

func deepCopySegs(in [][][]float64) [][][]float64 {
	out := make([][][]float64, len(in))
	for r := range in {
		out[r] = make([][]float64, len(in[r]))
		for i := range in[r] {
			out[r][i] = append([]float64(nil), in[r][i]...)
		}
	}
	return out
}

// runRSVariant runs ring reduce-scatter on a private copy of inputs
// (the fused reduce accumulates in place) and returns all owned
// segments keyed by global index.
func runRSVariant(t *testing.T, name string, n, p int, inputs [][][]float64, ctx context.Context) map[int][]float64 {
	t.Helper()
	cp := deepCopySegs(inputs)
	var mu sync.Mutex
	got := map[int][]float64{}
	runGroup(t, n, name, func(e *comm.Endpoint) error {
		owned, err := RingReduceScatter(ctx, e, cp[e.Rank()], p, F64Ops())
		if err != nil {
			return err
		}
		mu.Lock()
		for i, v := range owned {
			got[i] = v
		}
		mu.Unlock()
		return nil
	})
	return got
}

func requireBitwiseEqual(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", label, len(got), len(want))
	}
	for j := range got {
		if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
			t.Fatalf("%s: element %d differs bitwise: %x vs %x (%v vs %v)",
				label, j, math.Float64bits(got[j]), math.Float64bits(want[j]), got[j], want[j])
		}
	}
}

// TestPipelinedBitwiseIdenticalToSequential is the central correctness
// property of this PR: for every segment shape — empty, single element,
// odd leftovers, and chunks large enough to engage the multi-core
// sharded reduce — the chunked pipelined ring produces results bitwise
// identical to the sequential single-frame fused path, at P = 1 and 4.
func TestPipelinedBitwiseIdenticalToSequential(t *testing.T) {
	const n = 4
	cases := []struct {
		name       string
		segLen     int
		chunkBytes int
		cores      int
	}{
		{"empty", 0, 1000, 4},
		{"one", 1, 1000, 4},
		{"odd", 129, 1000, 4}, // 125 elems/chunk: a 4-elem tail chunk
		{"large", 1 << 14, 1000, 1},
		{"multicore", 1 << 16, 128 << 10, 4}, // 128 KiB chunks shard 2-wide
	}
	for _, tc := range cases {
		for _, p := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/p=%d", tc.name, p), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(tc.segLen*10 + p)))
				inputs := makeDenseInputs(rng, n, p*n, tc.segLen)

				seq := runRSVariant(t, fmt.Sprintf("bw-seq-%s-%d", tc.name, p), n, p, inputs,
					WithChunkBytes(context.Background(), -1))
				pip := runRSVariant(t, fmt.Sprintf("bw-pip-%s-%d", tc.name, p), n, p, inputs,
					WithCores(WithChunkBytes(context.Background(), tc.chunkBytes), tc.cores))

				if len(pip) != len(seq) {
					t.Fatalf("pipelined owned %d segments, sequential %d", len(pip), len(seq))
				}
				for i, want := range seq {
					requireBitwiseEqual(t, fmt.Sprintf("segment %d", i), pip[i], want)
				}
			})
		}
	}
}

// TestPipelinedAllReduceBitwiseIdentical extends the property through
// the allgather phase: chunked assembly (MakeSegment + DecodeChunkInto
// + cut-through forwarding) must reproduce the sequential allreduce
// exactly on every rank.
func TestPipelinedAllReduceBitwiseIdentical(t *testing.T) {
	const n, p = 4, 2
	for _, segLen := range []int{0, 129, 1 << 12} {
		t.Run(fmt.Sprintf("len=%d", segLen), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(segLen) + 11))
			inputs := makeDenseInputs(rng, n, p*n, segLen)

			run := func(name string, ctx context.Context) [][][]float64 {
				cp := deepCopySegs(inputs)
				results := make([][][]float64, n)
				runGroup(t, n, name, func(e *comm.Endpoint) error {
					all, err := RingAllReduce(ctx, e, cp[e.Rank()], p, F64Ops())
					if err != nil {
						return err
					}
					results[e.Rank()] = all
					return nil
				})
				return results
			}
			seq := run(fmt.Sprintf("ar-seq-%d", segLen), WithChunkBytes(context.Background(), -1))
			pip := run(fmt.Sprintf("ar-pip-%d", segLen),
				WithCores(WithChunkBytes(context.Background(), 1000), 4))

			for r := 0; r < n; r++ {
				for i := range seq[r] {
					requireBitwiseEqual(t, fmt.Sprintf("rank %d segment %d", r, i), pip[r][i], seq[r][i])
				}
			}
		})
	}
}

// TestChunkTrainWireAccounting proves the chunk trains are actually on
// the wire — exact message and byte counts, so the bitwise tests above
// cannot pass vacuously with chunking silently disabled. A chunked step
// carries ceil(segBytes/chunkBytes) frames, each framed by the 4-byte
// epoch word and the 20-byte chunk header, with no per-chunk length
// prefix.
func TestChunkTrainWireAccounting(t *testing.T) {
	const (
		n, p       = 4, 1
		segLen     = 4096
		chunkBytes = 8192 // 1024 elems -> exactly 4 chunks per segment
		chunks     = 4
	)
	net := transport.NewMem()
	defer net.Close()
	eps, err := comm.NewGroup(net, "chunk-wire", n)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseGroup(eps)
	rng := rand.New(rand.NewSource(5))
	inputs, want := makeInputs(rng, n, p*n, segLen)

	ctx := WithChunkBytes(context.Background(), chunkBytes)
	var (
		mu  sync.Mutex
		got = map[int][]float64{}
		wg  sync.WaitGroup
	)
	for _, e := range eps {
		wg.Add(1)
		go func(e *comm.Endpoint) {
			defer wg.Done()
			owned, err := RingReduceScatter(ctx, e, inputs[e.Rank()], p, F64Ops())
			if err != nil {
				t.Errorf("rank %d: %v", e.Rank(), err)
				return
			}
			mu.Lock()
			for i, v := range owned {
				got[i] = v
			}
			mu.Unlock()
		}(e)
	}
	wg.Wait()
	for i := range want {
		if !segsEqual(got[i], want[i], 1e-9) {
			t.Fatalf("segment %d: wrong sum", i)
		}
	}

	wantMsgs := int64((n - 1) * p * chunks)
	wantBytes := int64(n-1) * int64(p) * int64(chunks*(epochHeaderSize+chunkMetaSize)+8*segLen)
	for _, e := range eps {
		st := e.Stats()
		if st.MsgsSent != wantMsgs || st.MsgsReceived != wantMsgs {
			t.Fatalf("rank %d moved %d/%d messages, want %d (chunk trains not engaged?)",
				e.Rank(), st.MsgsSent, st.MsgsReceived, wantMsgs)
		}
		if st.BytesSent != wantBytes {
			t.Fatalf("rank %d sent %d bytes, want %d", e.Rank(), st.BytesSent, wantBytes)
		}
	}
}

// countEncodes wraps ops so every whole-segment and chunk encode is
// counted — the instrument for the no-re-encode proof.
func countEncodes(ops Ops[[]float64], whole, chunk *atomic.Int64) Ops[[]float64] {
	innerEnc, innerTo, innerChunk := ops.Encode, ops.EncodeTo, ops.EncodeChunkTo
	ops.Encode = func(dst []byte, v []float64) []byte {
		whole.Add(1)
		return innerEnc(dst, v)
	}
	if innerTo != nil {
		ops.EncodeTo = func(dst []byte, v []float64) []byte {
			whole.Add(1)
			return innerTo(dst, v)
		}
	}
	ops.EncodeChunkTo = func(dst []byte, v []float64, off, n int) []byte {
		chunk.Add(1)
		return innerChunk(dst, v, off, n)
	}
	return ops
}

// noForwardOps strips the DecodeReduceInto marker, which disables frame
// retention and with it cut-through forwarding: the relay falls back to
// decode + re-encode each step — the pre-PR 4 allgather behaviour the
// forwarding tests compare against.
func noForwardOps(ops Ops[[]float64]) Ops[[]float64] {
	ops.DecodeReduceInto = nil
	return ops
}

// runCountedAllGather runs one allgather with encode counting and
// verifies the gathered values, returning (whole, chunk) encode totals
// across all ranks.
func runCountedAllGather(t *testing.T, name string, ctx context.Context, ops Ops[[]float64], segLen int) (int64, int64) {
	t.Helper()
	const n, p = 4, 1
	var whole, chunk atomic.Int64
	counted := countEncodes(ops, &whole, &chunk)
	results := make([][][]float64, n)
	segs := make([][]float64, n)
	for r := range segs {
		segs[r] = make([]float64, segLen)
		for j := range segs[r] {
			segs[r][j] = float64(r*1000 + j%97)
		}
	}
	runGroup(t, n, name, func(e *comm.Endpoint) error {
		r := e.Rank()
		ownIdx := (r + 1) % n
		owned := map[int][]float64{ownIdx: append([]float64(nil), segs[ownIdx]...)}
		all, err := RingAllGather(ctx, e, owned, p, counted)
		if err != nil {
			return err
		}
		results[r] = all
		return nil
	})
	for r := 0; r < n; r++ {
		for i := 0; i < n; i++ {
			requireBitwiseEqual(t, fmt.Sprintf("rank %d segment %d", r, i), results[r][i], segs[i])
		}
	}
	return whole.Load(), chunk.Load()
}

// TestAllGatherForwardsVerbatim is the cut-through forwarding proof:
// with forwarding, each rank encodes only its own segment (step 0) and
// relays every later frame with a header rewrite — encode counts drop
// from (N-1) per rank to 1 (legacy frames), and from (N-1)·C to C
// (chunk trains of C frames).
func TestAllGatherForwardsVerbatim(t *testing.T) {
	const n = 4
	const segLen = 2048
	const chunks = 4 // 4096-byte chunks over a 16 KiB segment

	legacyCtx := WithChunkBytes(context.Background(), -1)
	chunkCtx := WithChunkBytes(context.Background(), segLen*8/chunks)

	whole, chunk := runCountedAllGather(t, "ag-fwd-legacy", legacyCtx, F64Ops(), segLen)
	if whole != n || chunk != 0 {
		t.Errorf("forwarding legacy: %d whole encodes (want %d: one per rank), %d chunk encodes (want 0)",
			whole, n, chunk)
	}

	whole, chunk = runCountedAllGather(t, "ag-fwd-chunk", chunkCtx, F64Ops(), segLen)
	if whole != 0 || chunk != n*chunks {
		t.Errorf("forwarding chunked: %d whole + %d chunk encodes, want 0 + %d (own train only)",
			whole, chunk, n*chunks)
	}

	// Without the retention marker the relay must re-encode every step —
	// the behaviour forwarding removes.
	whole, chunk = runCountedAllGather(t, "ag-re-legacy", legacyCtx, noForwardOps(F64Ops()), segLen)
	if whole != n*(n-1) || chunk != 0 {
		t.Errorf("re-encode legacy: %d whole encodes, want %d ((N-1) per rank)", whole, n*(n-1))
	}
	whole, chunk = runCountedAllGather(t, "ag-re-chunk", chunkCtx, noForwardOps(F64Ops()), segLen)
	if whole != 0 || chunk != n*(n-1)*chunks {
		t.Errorf("re-encode chunked: %d chunk encodes, want %d ((N-1)·C per rank)", chunk, n*(n-1)*chunks)
	}
}

// TestCheckTrainRejectsCorruptChunks drives the train validator with
// every malformed frame shape: each must fail loudly instead of
// mis-reducing.
func TestCheckTrainRejectsCorruptChunks(t *testing.T) {
	rc := &ringChan[[]float64]{stride: 8}
	ok8 := make([]byte, 8)
	cases := []struct {
		name      string
		fr        frame
		got, need int
	}{
		{"whole frame mid-train", frame{chunked: false}, 1, 4},
		{"negative index", frame{chunked: true, idx: -1, total: 2, elemCnt: 1, elemAll: 2, payload: ok8}, 0, -1},
		{"zero total", frame{chunked: true, idx: 0, total: 0, elemCnt: 1, elemAll: 2, payload: ok8}, 0, -1},
		{"out of order", frame{chunked: true, idx: 2, total: 4, elemCnt: 1, elemAll: 8, payload: ok8}, 1, 4},
		{"train length changed", frame{chunked: true, idx: 1, total: 5, elemCnt: 1, elemAll: 8, payload: ok8}, 1, 4},
		{"range overflow", frame{chunked: true, idx: 0, total: 2, elemOff: 3, elemCnt: 2, elemAll: 4, payload: make([]byte, 16)}, 0, -1},
		{"payload size mismatch", frame{chunked: true, idx: 0, total: 2, elemCnt: 2, elemAll: 4, payload: ok8}, 0, -1},
	}
	for _, tc := range cases {
		if err := rc.checkTrain(tc.fr, tc.got, tc.need); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// The happy path must pass.
	if err := rc.checkTrain(frame{chunked: true, idx: 1, total: 4, elemOff: 1, elemCnt: 1, elemAll: 4, payload: ok8}, 1, 4); err != nil {
		t.Errorf("valid chunk rejected: %v", err)
	}
	// A chunked frame against chunk-incapable ops must fail too.
	bare := &ringChan[[]float64]{}
	if err := bare.checkTrain(frame{chunked: true, total: 1, elemCnt: 1, elemAll: 1, payload: ok8}, 0, -1); err == nil {
		t.Error("chunked frame accepted by ops with no chunk decoder")
	}
}

// TestAutoChunkBytes checks the adaptive controller: default until both
// histograms hold 8 samples, then p50 bandwidth × ~1 ms, clamped.
func TestAutoChunkBytes(t *testing.T) {
	if got := autoChunkBytes(nil); got != defaultChunkBytes {
		t.Errorf("nil registry: %d, want default %d", got, defaultChunkBytes)
	}
	feed := func(stepNS, stepBytes int64, samples int) *metrics.Registry {
		reg := metrics.NewRegistry()
		for i := 0; i < samples; i++ {
			reg.Histogram(metrics.HistRingStepNS).Observe(stepNS)
			reg.Histogram(metrics.HistRingStepBytes).Observe(stepBytes)
		}
		return reg
	}
	if got := autoChunkBytes(feed(1e6, 1<<20, 7)); got != defaultChunkBytes {
		t.Errorf("7 samples: %d, want default (needs 8)", got)
	}
	// 1 MiB per 1 ms ≈ 1 GiB/s -> ~1 MiB of wire time per ms, within the
	// clamp window.
	got := autoChunkBytes(feed(1e6, 1<<20, 16))
	if got < minChunkBytes || got > maxChunkBytes {
		t.Errorf("mid-range estimate %d escaped the clamp [%d, %d]", got, minChunkBytes, maxChunkBytes)
	}
	if got := autoChunkBytes(feed(1e9, 1024, 16)); got != minChunkBytes {
		t.Errorf("slow link: %d, want clamp to min %d", got, minChunkBytes)
	}
	if got := autoChunkBytes(feed(1e3, 1<<30, 16)); got != maxChunkBytes {
		t.Errorf("fast link: %d, want clamp to max %d", got, maxChunkBytes)
	}
}

// TestResolveChunkBytesPrecedence: an explicit context choice wins over
// everything; negative disables.
func TestResolveChunkBytesPrecedence(t *testing.T) {
	reg := metrics.NewRegistry()
	base := metrics.NewContext(context.Background(), reg)
	if got := resolveChunkBytes(WithChunkBytes(base, 12345)); got != 12345 {
		t.Errorf("explicit size: %d, want 12345", got)
	}
	if got := resolveChunkBytes(WithChunkBytes(base, -1)); got != 0 {
		t.Errorf("explicit disable: %d, want 0", got)
	}
}

// TestChaosKillMidChunkTrain kills a peer's inbound links in the middle
// of a chunk train (after the handshake and two chunk frames of an
// 8-chunk train): every rank must classify the failure — the error
// core.Aggregate's ring→tree fallback dispatches on — within the same
// ripple bound as the whole-frame kill case, with no goroutine leak.
func TestChaosKillMidChunkTrain(t *testing.T) {
	const (
		n            = 4
		p            = 1
		segLen       = 1024 // 8 KiB segments
		chunkBytes   = 1024 // -> 8-chunk trains
		stepDeadline = 500 * time.Millisecond
	)
	before := runtime.NumGoroutine()
	group := "chaos-midchunk"
	victim := transport.Addr(fmt.Sprintf("comm/%s/%d", group, 1))
	net := transport.NewFaulty(transport.NewMem(), 1, &transport.FaultRule{
		Match:     func(a transport.Addr) bool { return a == victim },
		Kind:      transport.FaultKill,
		AfterMsgs: 3, // handshake + 2 chunk frames pass; dies mid-train
	})
	defer net.Close()
	rng := rand.New(rand.NewSource(9))
	inputs, _ := makeInputs(rng, n, p*n, segLen)
	errs, elapsed := runChaosGroup(t, net, n, group, func(e *comm.Endpoint) error {
		ctx := WithChunkBytes(WithStepDeadline(context.Background(), stepDeadline), chunkBytes)
		_, err := RingAllReduce(ctx, e, inputs[e.Rank()], p, F64Ops())
		return err
	})
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d: mid-train kill must fail the collective", r)
		}
		if !classified(err) {
			t.Fatalf("rank %d: unclassified error %v", r, err)
		}
	}
	if limit := time.Duration(2*(n-1)+2) * stepDeadline; elapsed > limit {
		t.Fatalf("classification took %v, want <= %v", elapsed, limit)
	}
	chaosSettle(t, before)
}

// TestChunkedTimeoutIsClassified: a peer that goes silent mid-train
// (drop, not kill) must classify as ErrPeerTimeout within the step
// deadline, matching the PR 2 semantics of the single-frame path.
func TestChunkedTimeoutIsClassified(t *testing.T) {
	const stepDeadline = 300 * time.Millisecond
	group := "chaos-chunk-drop"
	net := transport.NewFaulty(transport.NewMem(), 1, &transport.FaultRule{
		Match:     ringMatch(group),
		Kind:      transport.FaultDrop,
		AfterMsgs: 4, // handshake + 3 chunks of each train, then silence
	})
	defer net.Close()
	rng := rand.New(rand.NewSource(13))
	inputs, _ := makeInputs(rng, 4, 4, 1024)
	errs, elapsed := runChaosGroup(t, net, 4, group, func(e *comm.Endpoint) error {
		ctx := WithChunkBytes(WithStepDeadline(context.Background(), stepDeadline), 1024)
		_, err := RingReduceScatter(ctx, e, inputs[e.Rank()], 1, F64Ops())
		return err
	})
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d: silent mid-train peer must fail", r)
		}
		if !errors.Is(err, comm.ErrPeerTimeout) {
			t.Fatalf("rank %d: want ErrPeerTimeout, got %v", r, err)
		}
	}
	if elapsed > 2*stepDeadline {
		t.Fatalf("classification took %v, want <= %v", elapsed, 2*stepDeadline)
	}
}
