package collective

// Benchmark evidence for the allgather cut-through relay: the same
// gather with forwarding enabled (F64Ops, frames retained and re-framed)
// versus disabled (no DecodeReduceInto marker, decode + re-encode every
// hop). The encodes/op metric shows the re-encode disappearing; ns/op
// and B/op show what that buys.

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"sparker/internal/comm"
	"sparker/internal/transport"
)

func BenchmarkRingAllGather(b *testing.B) {
	const (
		n          = 4
		p          = 1
		segLen     = 1 << 17 // 1 MiB segments
		chunkBytes = 256 << 10
	)
	for _, mode := range []string{"forward", "reencode"} {
		b.Run(mode, func(b *testing.B) {
			net := transport.NewMem()
			defer net.Close()
			eps, err := comm.NewGroup(net, "bench-ag-"+mode, n)
			if err != nil {
				b.Fatal(err)
			}
			defer comm.CloseGroup(eps)
			var whole, chunk atomic.Int64
			ops := countEncodes(F64Ops(), &whole, &chunk)
			if mode == "reencode" {
				ops = noForwardOps(ops)
			}
			owned := make([]map[int][]float64, n)
			for r := range owned {
				seg := make([]float64, segLen)
				for j := range seg {
					seg[j] = float64(j%31) * 0.5
				}
				owned[r] = map[int][]float64{(r + 1) % n: seg}
			}
			ctx := WithChunkBytes(context.Background(), chunkBytes)
			b.SetBytes(int64(8 * segLen * (n - 1))) // wire bytes gathered per rank
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for _, e := range eps {
					wg.Add(1)
					go func(e *comm.Endpoint) {
						defer wg.Done()
						own := map[int][]float64{}
						for k, v := range owned[e.Rank()] {
							own[k] = v
						}
						if _, err := RingAllGather(ctx, e, own, p, ops); err != nil {
							b.Error(err)
						}
					}(e)
				}
				wg.Wait()
			}
			b.StopTimer()
			b.ReportMetric(float64(whole.Load()+chunk.Load())/float64(b.N), "encodes/op")
		})
	}
}
