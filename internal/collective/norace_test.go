//go:build !race

package collective

const raceEnabled = false
