package collective

// Telemetry overhead gate for the PR 1 zero-allocation hot path: with
// neither a tracer nor a metrics registry in the context, the ring
// reduce-scatter must allocate no more per op than the pre-telemetry
// baselines recorded in DESIGN.md ("Performance notes"). Allocation
// counts are machine-stable, so they are the hard gate; wall-clock is
// reported for the log but not asserted (cross-machine time
// comparisons are meaningless). Run via `make overhead`.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"sparker/internal/comm"
	"sparker/internal/metrics"
	"sparker/internal/obsv"
	"sparker/internal/trace"
	"sparker/internal/transport"
)

// benchHotRing runs the BenchmarkRingReduceScatterHot body (N=4 ranks,
// 1 MiB segments) with the collective context built by ctxFor, and
// returns the measured result.
func benchHotRing(t *testing.T, p int, name string, ctxFor func(rank int) context.Context) testing.BenchmarkResult {
	t.Helper()
	const (
		n      = 4
		segLen = 1 << 17
	)
	var failed error
	res := testing.Benchmark(func(b *testing.B) {
		net := transport.NewMem()
		defer net.Close()
		eps, err := comm.NewGroup(net, fmt.Sprintf("overhead-%s-%d", name, p), n)
		if err != nil {
			failed = err
			b.Skip(err)
		}
		defer comm.CloseGroup(eps)
		inputs := make([][][]float64, n)
		for r := range inputs {
			inputs[r] = make([][]float64, p*n)
			for i := range inputs[r] {
				seg := make([]float64, segLen)
				for j := range seg {
					seg[j] = float64(j%17) * 0.25
				}
				inputs[r][i] = seg
			}
		}
		ctxs := make([]context.Context, n)
		for r := range ctxs {
			ctxs[r] = ctxFor(r)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for _, e := range eps {
				wg.Add(1)
				go func(e *comm.Endpoint) {
					defer wg.Done()
					if _, err := RingReduceScatter(ctxs[e.Rank()], e, inputs[e.Rank()], p, F64Ops()); err != nil {
						b.Error(err)
					}
				}(e)
			}
			wg.Wait()
		}
	})
	if failed != nil {
		t.Fatal(failed)
	}
	return res
}

// allocsFloor measures the hot ring and returns the result plus the
// minimum allocs/op observed, re-measuring up to two more rounds when
// the count exceeds budget. One testing.Benchmark round can read a few
// allocs high when a GC cycle lands mid-measurement and evicts the
// wire-buffer pools (common under full-suite CPU contention); the
// floor across rounds is the steady-state count, while a genuine
// hot-path escape raises every round.
func allocsFloor(t *testing.T, p int, name string, budget int64, ctxFor func(int) context.Context) (testing.BenchmarkResult, int64) {
	res := benchHotRing(t, p, name, ctxFor)
	min := res.AllocsPerOp()
	for round := 2; min > budget && round <= 3; round++ {
		r := benchHotRing(t, p, fmt.Sprintf("%s-r%d", name, round), ctxFor)
		if a := r.AllocsPerOp(); a < min {
			min = a
		}
	}
	return res, min
}

// TestTelemetryOverheadOff asserts the telemetry-off allocation budget:
// the per-op allocation count of the hot ring must stay at the PR 1
// baselines (53 at P=1, 119 at P=4, re-measured at the pre-telemetry
// commit on this machine) plus a small scheduler-noise slack. A failure
// here means the disabled telemetry path started allocating — most
// likely something in the step closure now escapes.
func TestTelemetryOverheadOff(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead gate skipped in -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation inflates allocs; gate runs without -race (make overhead)")
	}
	baselines := map[int]int64{1: 53, 4: 119}
	const slack = 3
	for _, p := range []int{1, 4} {
		off, allocs := allocsFloor(t, p, "off", baselines[p]+slack, func(int) context.Context {
			return context.Background()
		})
		t.Logf("P=%d tracing off: %v/op, %d allocs/op (baseline %d)",
			p, off.NsPerOp(), allocs, baselines[p])
		if allocs > baselines[p]+slack {
			t.Errorf("P=%d: telemetry-off path allocates %d/op, baseline %d (+%d slack): disabled telemetry is no longer free",
				p, allocs, baselines[p], slack)
		}
	}
}

// TestTelemetryOverheadRecorderOn asserts the flight-recorder-enabled
// allocation budget: with an obsv ring in the context (but tracing and
// metrics off — the recorder-only production shape), the hot ring must
// hold the same PR 1 baselines as the fully-off path. The per-step
// record is a fixed-size struct store under a mutex into a
// preallocated ring; a failure here means the recorder hook started
// escaping.
func TestTelemetryOverheadRecorderOn(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead gate skipped in -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation inflates allocs; gate runs without -race (make overhead)")
	}
	baselines := map[int]int64{1: 53, 4: 119}
	const slack = 3
	for _, p := range []int{1, 4} {
		rings := make([]*obsv.Ring, 4)
		for r := range rings {
			rings[r] = obsv.NewRing(obsv.DefaultRingSize)
		}
		on, allocs := allocsFloor(t, p, "rec-on", baselines[p]+slack, func(rank int) context.Context {
			return obsv.NewContext(context.Background(), rings[rank])
		})
		t.Logf("P=%d recorder on: %v/op, %d allocs/op (baseline %d)",
			p, on.NsPerOp(), allocs, baselines[p])
		if allocs > baselines[p]+slack {
			t.Errorf("P=%d: flight-recorder path allocates %d/op, baseline %d (+%d slack): the recorder hook must stay allocation-free",
				p, allocs, baselines[p], slack)
		}
		if rings[0].Snapshot().Total == 0 {
			t.Errorf("P=%d: recorder captured no step records", p)
		}
	}
}

// TestPipelineOverheadChunkingOn asserts the chunked pipelined path
// honours the same telemetry-off allocation budget as the single-frame
// baseline: with chunking pinned on (256 KiB chunks, four per 1 MiB
// segment) and no telemetry, allocations per op must not exceed the
// chunking-off run measured back to back in the same process. The
// comparison is relative on purpose — scheduler contention inflates
// both modes identically, while a chunk-path escape shows up only in
// the on mode. The absolute PR 1 baseline stays enforced by
// TestTelemetryOverheadOff.
func TestPipelineOverheadChunkingOn(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead gate skipped in -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation inflates allocs; gate runs without -race (make overhead)")
	}
	baselines := map[int]int64{1: 53, 4: 119}
	const slack = 3
	for _, p := range []int{1, 4} {
		off := benchHotRing(t, p, "chunk-off", func(int) context.Context {
			return WithChunkBytes(context.Background(), -1)
		})
		on, onAllocs := allocsFloor(t, p, "chunk-on", off.AllocsPerOp()+slack, func(int) context.Context {
			return WithChunkBytes(context.Background(), 256<<10)
		})
		t.Logf("P=%d chunking on: %v/op %d allocs/op; off: %v/op %d allocs/op (baseline %d)",
			p, on.NsPerOp(), onAllocs, off.NsPerOp(), off.AllocsPerOp(), baselines[p])
		if onAllocs > off.AllocsPerOp()+slack {
			t.Errorf("P=%d: pipelined path allocates %d/op vs %d/op with chunking off (+%d slack): chunking must not cost steady-state allocations",
				p, onAllocs, off.AllocsPerOp(), slack)
		}
	}
}

// TestPipelineOverheadCompressionOff asserts the codec layer is free
// when no codec is selected: an explicit zero Compression in the
// context must hold the same absolute PR 1 allocation baselines as a
// bare context — the compression-off hot path takes one map lookup at
// collective start and must not touch the per-step loop.
func TestPipelineOverheadCompressionOff(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead gate skipped in -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation inflates allocs; gate runs without -race (make overhead)")
	}
	baselines := map[int]int64{1: 53, 4: 119}
	const slack = 3
	for _, p := range []int{1, 4} {
		off, allocs := allocsFloor(t, p, "codec-off", baselines[p]+slack, func(int) context.Context {
			return WithCompression(context.Background(), Compression{})
		})
		t.Logf("P=%d compression off: %v/op, %d allocs/op (baseline %d)",
			p, off.NsPerOp(), allocs, baselines[p])
		if allocs > baselines[p]+slack {
			t.Errorf("P=%d: compression-off path allocates %d/op, baseline %d (+%d slack): the codec layer must be free when disabled",
				p, allocs, baselines[p], slack)
		}
	}
}

// TestTelemetryOverheadTracedReport measures the fully-traced ring
// (span per step, histograms recording) against the off path and logs
// the ratio. Informational only: tracing-on overhead is allowed to be
// real, it just has to be visible.
func TestTelemetryOverheadTracedReport(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead report skipped in -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation skews the comparison; run without -race")
	}
	tr := trace.New(nil) // times spans, drops them: isolates span-path cost
	const p = 1
	off := benchHotRing(t, p, "off2", func(int) context.Context {
		return context.Background()
	})
	traced := benchHotRing(t, p, "on", func(rank int) context.Context {
		root := tr.StartRoot("overhead-task")
		ctx := trace.WithSpan(context.Background(), root)
		return metrics.NewContext(ctx, metrics.NewRegistry())
	})
	ratio := float64(traced.NsPerOp()) / float64(off.NsPerOp())
	t.Logf("P=%d traced: %v/op vs off %v/op (%.2fx), traced allocs %d/op",
		p, traced.NsPerOp(), off.NsPerOp(), ratio, traced.AllocsPerOp())
}
