package collective

// Pipelined double-buffered ring transfers.
//
// The PR 1–3 ring step serialized its three phases: encode the whole
// outgoing segment, wait for the whole incoming frame, then fused
// decode-reduce — so the wire idled while the CPU reduced and vice
// versa. This file streams each segment as a train of fixed-size chunk
// frames instead: while chunk i is in flight to the successor, chunk
// i−1 from the predecessor is being decode-reduced (on several cores
// for large chunks) and chunk i+1 is being encoded into a second
// pooled buffer. Step latency approaches max(comm, compute) instead of
// their sum.
//
// Wire format. A chunked frame sets bit 30 (chunkFlag) of the epoch
// word and carries a 20-byte chunk header after the epoch/span words:
//
//	word0:  epoch(30 bits) | chunkFlag(1<<30) | spanFlag(1<<31)
//	[8B]    sender step-span ID (traced frames only)
//	[20B]   chunk index · chunk count · element offset · element
//	        count · segment element count (all uint32)
//	[...]   payload: elemCnt fixed-stride element words, no per-chunk
//	        length prefix (counts ride in the header)
//
// Untraced single-frame steps keep the exact PR 2 byte format, and
// traced ones the PR 3 format: chunking is a per-frame, per-sender
// extension. A pre-chunking receiver that sees a chunked frame reads
// bit 30 as part of the epoch, fails the epoch match and surfaces a
// "superseded" error — loud, never a silent mis-reduce. Receivers
// dispatch on the frame's own flags, so a chunking rank interoperates
// with a non-chunking one (the adaptive controller may legitimately
// pick different chunk sizes on different ranks).
//
// Ownership follows the PR 1 contract: every chunk frame is a pooled
// draw sent through the recycling SendToAsync path, at most two in
// flight per channel (the "double buffer"), retired opportunistically
// with ReapSend between receives. Under -race each frame is tagged
// with its owning channel and chunk index so a pool-poisoning panic
// names the violator.

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"sync"
	"time"

	"sparker/internal/comm"
	"sparker/internal/linalg"
	"sparker/internal/metrics"
	"sparker/internal/trace"
)

const (
	// defaultChunkBytes is the chunk payload size when no override and
	// no step history exist. Measured on TCP loopback at 7.6MB segments
	// (the sweep's acceptance point), ~512 KiB beats both 256 KiB and
	// 1 MiB trains.
	defaultChunkBytes = 512 << 10
	// minChunkBytes / maxChunkBytes clamp the adaptive controller:
	// below 64 KiB the per-frame overhead dominates, above 4 MiB the
	// pipeline degenerates toward the serialized whole-segment step.
	minChunkBytes = 64 << 10
	maxChunkBytes = 4 << 20
	// targetChunkNS is the wire time the adaptive controller aims for
	// per chunk (~2 ms): long enough to amortize framing, short enough
	// that several chunks overlap within one step. At the ~0.3 B/ns a
	// loaded loopback sustains this lands near defaultChunkBytes.
	targetChunkNS = 2e6
	// parReduceGrainBytes is the minimum payload per extra reduce
	// worker: sharding costs two channel hops per worker, only worth it
	// when each core gets at least this much to add.
	parReduceGrainBytes = 64 << 10
)

// chunkBytesKey carries an explicit chunk-size choice through a context.
type chunkBytesKey struct{}

// WithChunkBytes fixes the pipelined chunk payload size for collectives
// run under ctx: n > 0 uses exactly n bytes per chunk, n < 0 disables
// chunking (restoring the single-frame step), and n == 0 defers to the
// SPARKER_CHUNK_BYTES environment override or, failing that, the
// adaptive controller.
func WithChunkBytes(ctx context.Context, n int) context.Context {
	return context.WithValue(ctx, chunkBytesKey{}, n)
}

// ChunkBytesFrom reports the chunk size carried by ctx, or 0 (auto).
func ChunkBytesFrom(ctx context.Context) int {
	n, _ := ctx.Value(chunkBytesKey{}).(int)
	return n
}

// coresKey carries the executor's core budget through a context.
type coresKey struct{}

// WithCores tells collectives run under ctx how many cores they may
// use for sharded chunk reduction (the executor's core budget, plumbed
// by core.Aggregate from the cluster config). c <= 1 keeps the reduce
// single-threaded.
func WithCores(ctx context.Context, c int) context.Context {
	return context.WithValue(ctx, coresKey{}, c)
}

// CoresFrom reports the core budget carried by ctx, or 1.
func CoresFrom(ctx context.Context) int {
	c, _ := ctx.Value(coresKey{}).(int)
	if c < 1 {
		return 1
	}
	return c
}

// envChunkBytes parses SPARKER_CHUNK_BYTES once: unset or invalid is 0
// (auto), zero or negative is -1 (chunking disabled), positive is the
// byte size. The env override exists so benchmarks can pin the chunk
// size against the adaptive controller.
var envChunkBytes = sync.OnceValue(func() int {
	s := os.Getenv("SPARKER_CHUNK_BYTES")
	if s == "" {
		return 0
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0
	}
	if v <= 0 {
		return -1
	}
	return v
})

// autoChunkBytes is the adaptive controller: it estimates the achieved
// step bandwidth from the executor's ring-step histograms (PR 3) and
// sizes chunks to ~targetChunkNS of wire time, clamped. With no
// registry or too little history it returns the default — the first
// collectives of a run seed the histograms the later ones adapt to.
func autoChunkBytes(reg *metrics.Registry) int {
	if reg == nil {
		return defaultChunkBytes
	}
	ns := reg.Histogram(metrics.HistRingStepNS)
	by := reg.Histogram(metrics.HistRingStepBytes)
	if ns.Count() < 8 || by.Count() < 8 {
		return defaultChunkBytes
	}
	// Aggregate bandwidth from the exact sums, not bucket quantiles:
	// the log2 buckets are fine for reporting but a p50/p50 ratio can
	// be off by 2x, which is the whole clamp window.
	sumNS, sumBy := ns.Sum(), by.Sum()
	if sumNS <= 0 || sumBy <= 0 {
		return defaultChunkBytes
	}
	c := int(float64(sumBy) / float64(sumNS) * targetChunkNS)
	if c < minChunkBytes {
		return minChunkBytes
	}
	if c > maxChunkBytes {
		return maxChunkBytes
	}
	return c
}

// resolveChunkBytes picks the chunk payload size for one collective:
// explicit context choice, then the environment override, then the
// adaptive controller. Returns 0 when chunking is disabled.
func resolveChunkBytes(ctx context.Context) int {
	if v := ChunkBytesFrom(ctx); v != 0 {
		if v < 0 {
			return 0
		}
		return v
	}
	if v := envChunkBytes(); v != 0 {
		if v < 0 {
			return 0
		}
		return v
	}
	return autoChunkBytes(metrics.FromContext(ctx))
}

// chunkCapable reports whether ops supplies the full chunk fast path.
func chunkCapable[V any](ops Ops[V]) bool {
	return ops.Elems != nil && ops.ChunkEncodedSize != nil &&
		ops.EncodeChunkTo != nil && ops.DecodeReduceChunkInto != nil &&
		ops.MakeSegment != nil && ops.DecodeChunkInto != nil
}

// frame is one parsed incoming ring frame: a whole-segment legacy frame
// (chunked=false) or one chunk of a pipelined train.
type frame struct {
	payload []byte
	wire    []byte // full pooled buffer payload aliases; receiver releases or forwards
	span    uint64 // sender step-span ID, 0 when untraced
	chunked bool
	codec   Codec // wire codec of the payload (top byte of the meta index word)
	idx     int   // chunk index within the train
	total   int   // chunks in the train
	elemOff int   // first element this chunk covers
	elemCnt int   // elements in this chunk
	elemAll int   // elements in the whole segment
}

// fwdFrame is a received allgather frame retained for cut-through
// forwarding on the next step: the relay rewrites the header in place
// and sends the payload bytes untouched.
type fwdFrame struct {
	wire       []byte
	payloadOff int
	chunked    bool
	codec      Codec
	idx        int
	total      int
	elemOff    int
	elemCnt    int
	elemAll    int
}

// ringChan is the per-channel transfer engine one collective goroutine
// drives: it owns the two-deep send window (the double buffer), the
// chunk plan, and the step-scoped receive state. One per channel
// goroutine, living on its stack, so the per-step and per-chunk paths
// add no heap allocations over the PR 1 baseline.
type ringChan[V any] struct {
	e          *comm.Endpoint
	ops        Ops[V]
	ch         int
	epoch      uint32
	releasable bool
	tel        telemetry
	cores      int

	chunkBytes int // target chunk payload bytes; 0 = chunking off
	stride     int // payload bytes per element (0 when ops lack chunk support)

	// Wire-codec state (DESIGN.md §13). comp is the resolved outgoing
	// codec (CodecNone keeps the bitwise-exact dense frames); floats is
	// the ops' float view, set whenever the ops can decode compressed
	// frames — a dense-sending rank still decodes a compressing peer.
	comp    Compression
	floats  func(V, int, int) []float64
	efRes   []float64 // this step's outgoing-segment residual (nil = EF off)
	encBuf  []float64 // error-feedback encode scratch, reused across chunks
	selBuf  []float64 // top-k selection scratch, reused across chunks
	inCodec Codec     // codec fixed by the current incoming train's first frame

	next   int             // successor rank, cached
	done   chan error      // send completions; capacity 2 covers the window
	sctx   context.Context // current step context
	sent   int             // frames enqueued this step
	reaped int             // send completions consumed this step
	hint   int             // last legacy frame size, for pool sizing

	// fwdBufs ping-pong the allgather forward list across steps so the
	// steady-state relay appends into recycled backing arrays.
	fwdBufs [2][]fwdFrame

	// Step telemetry accumulators (meaningful only when tel.on).
	stepBytes int64
	stepRaw   int64 // pre-compression byte equivalent of the step's sends
	lastRaw   int64 // raw equivalent of the frame just encoded (codec frames only)
	reduceNS  int64
	overlapNS int64
	peerSpan  uint64
}

// init prepares the transfer engine for one channel. chunkBytes and
// comp come from resolveChunkBytes/resolveCompression, evaluated once
// per collective.
func (rc *ringChan[V]) init(e *comm.Endpoint, ops Ops[V], ch int, epoch uint32, tel telemetry, chunkBytes, cores int, comp Compression) {
	rc.e = e
	rc.ops = ops
	rc.ch = ch
	rc.epoch = epoch
	rc.releasable = ops.DecodeReduceInto != nil
	rc.tel = tel
	rc.cores = cores
	rc.next = e.Next()
	if chunkCapable(ops) {
		rc.stride = ops.ChunkEncodedSize(1)
		if rc.stride > 0 && ops.ChunkEncodedSize(2) == 2*rc.stride {
			rc.chunkBytes = chunkBytes
		} else {
			// A non-linear chunk encoding cannot be resegmented by byte
			// ranges; fall back to whole-segment frames.
			rc.stride = 0
		}
	}
	if rc.stride == 8 {
		// Compressed frames are always float64-element chunks; the view
		// is kept even when this rank sends dense, so it can decode a
		// compressing peer.
		rc.floats = ops.Floats
	}
	if comp.enabled() && rc.floats != nil {
		rc.comp = comp
		if rc.chunkBytes <= 0 {
			// Compression rides the chunk train: even when chunking was
			// disabled, codec frames need the chunk meta for the codec
			// byte, so single-chunk trains at the default size carry them.
			rc.chunkBytes = defaultChunkBytes
		}
	}
	// One completion channel serves both in-flight sends: completions
	// are only ever counted (each one frees a window slot), never
	// matched to a specific frame, so a single capacity-2 buffer
	// replaces per-slot channels — same allocation count as the PR 1
	// single-frame loop.
	rc.done = make(chan error, 2)
}

// beginStep resets the per-step window state.
func (rc *ringChan[V]) beginStep(sctx context.Context) {
	rc.sctx = sctx
	rc.sent, rc.reaped = 0, 0
	rc.stepBytes, rc.reduceNS, rc.overlapNS, rc.peerSpan = 0, 0, 0, 0
	rc.stepRaw, rc.lastRaw = 0, 0
}

// outChunks plans the outgoing train for a segment of elems elements:
// 1 means a single legacy frame (chunking off, unchunkable ops, or a
// segment too small to split).
func (rc *ringChan[V]) outChunks(elems int) int {
	if rc.chunkBytes <= 0 || rc.stride <= 0 || elems <= 0 {
		return 1
	}
	per := rc.chunkElems()
	c := (elems + per - 1) / per
	if c < 2 {
		return 1
	}
	return c
}

// chunkElems is the element capacity of one chunk. With a codec active
// the chunk-bytes target counts *post-compression* wire bytes, so the
// element capacity grows by the codec's compression factor — the
// adaptive controller's bandwidth-derived size keeps meaning wire time.
func (rc *ringChan[V]) chunkElems() int {
	var per int
	if rc.comp.enabled() {
		per = int(float64(rc.chunkBytes) / rc.comp.wireBytesPerElem())
	} else {
		per = rc.chunkBytes / rc.stride
	}
	if per < 1 {
		per = 1
	}
	return per
}

// inflight is the number of frames enqueued but not yet retired.
func (rc *ringChan[V]) inflight() int { return rc.sent - rc.reaped }

// waitOldest blocks for the oldest outstanding send, bounded by the
// step context.
func (rc *ringChan[V]) waitOldest() error {
	err := rc.e.WaitSend(rc.sctx, rc.next, rc.done)
	rc.reaped++
	return err
}

// reapSends retires finished sends without blocking, so the two-deep
// window reopens as fast as the wire drains.
func (rc *ringChan[V]) reapSends() error {
	for rc.reaped < rc.sent {
		ok, err := rc.e.ReapSend(rc.next, rc.done)
		if !ok {
			return nil
		}
		rc.reaped++
		if err != nil {
			return err
		}
	}
	return nil
}

// abortSends drains the window on an error path, bounded by the step
// context; the dones are not reused afterwards (the collective fails).
func (rc *ringChan[V]) abortSends() {
	for rc.reaped < rc.sent {
		drainSend(rc.sctx, rc.done)
		rc.reaped++
	}
}

// sendFrame enqueues one pooled wire frame on the double-buffered
// window. The caller has already ensured inflight() < 2. Codec encoders
// deposit the frame's pre-compression byte equivalent in lastRaw; dense
// frames are their own raw size.
func (rc *ringChan[V]) sendFrame(wire []byte) {
	rc.stepBytes += int64(len(wire))
	if rc.lastRaw != 0 {
		rc.stepRaw += rc.lastRaw
		rc.lastRaw = 0
	} else {
		rc.stepRaw += int64(len(wire))
	}
	rc.e.SendToAsync(rc.next, rc.ch, wire, rc.done)
	rc.sent++
}

// encodeChunkFrame builds chunk idx of a total-chunk train covering
// elements [elemOff, elemOff+elemCnt) of v, as an exactly-sized pooled
// draw.
func (rc *ringChan[V]) encodeChunkFrame(spanID uint64, v V, idx, total, elemOff, elemCnt, elemAll int) []byte {
	if rc.comp.enabled() {
		return rc.encodeCodecFrame(spanID, v, idx, total, elemOff, elemCnt, elemAll)
	}
	hs := epochHeaderSize
	if spanID != 0 {
		hs += spanIDSize
	}
	metaOff := hs
	hs += chunkMetaSize
	buf := comm.GetBuffer(hs + rc.stride*elemCnt)
	wire := rc.ops.EncodeChunkTo(buf[:hs], v, elemOff, elemCnt)
	releaseIfAbandoned(buf, wire)
	word := rc.epoch&epochMask | chunkFlag
	if spanID != 0 {
		word |= spanFlag
		putUint64(wire[epochHeaderSize:], spanID)
	}
	putUint32(wire, word)
	putChunkMeta(wire[metaOff:], idx, total, elemOff, elemCnt, elemAll, CodecNone)
	if comm.RaceGuard {
		comm.TagWire(wire, fmt.Sprintf("ring ch %d chunk %d/%d", rc.ch, idx, total))
	}
	if rc.tel.on {
		rc.tel.chunkBytes.Observe(int64(len(wire)))
	}
	return wire
}

// putChunkMeta serializes the 20-byte chunk header. The codec id rides
// in the top byte of the index word: codec 0 leaves the word — and the
// whole header — byte-identical to the pre-codec format, while a
// pre-codec receiver reads a compressed frame's index as idx+codec·2²⁴,
// fails the train check and errors loudly.
func putChunkMeta(dst []byte, idx, total, elemOff, elemCnt, elemAll int, codec Codec) {
	putUint32(dst, uint32(idx)&chunkIdxMask|uint32(codec)<<24)
	putUint32(dst[4:], uint32(total))
	putUint32(dst[8:], uint32(elemOff))
	putUint32(dst[12:], uint32(elemCnt))
	putUint32(dst[16:], uint32(elemAll))
}

// recvAny receives the next frame for this collective's epoch,
// dispatching on the frame's own flags so chunked and legacy senders
// interoperate. Stale-epoch residue is dropped and the receive retried;
// a newer epoch means this collective was superseded.
func (rc *ringChan[V]) recvAny() (frame, error) {
	want := rc.epoch & epochMask
	for {
		in, err := rc.e.RecvPrevCtx(rc.sctx, rc.ch)
		if err != nil {
			return frame{}, err
		}
		if len(in) < epochHeaderSize {
			return frame{}, fmt.Errorf("collective: frame shorter than epoch header (%d bytes)", len(in))
		}
		word := uint32At(in, 0)
		got := word & epochMask
		hs := epochHeaderSize
		var fr frame
		if word&spanFlag != 0 {
			if len(in) < hs+spanIDSize {
				return frame{}, fmt.Errorf("collective: traced frame shorter than span header (%d bytes)", len(in))
			}
			fr.span = uint64At(in, hs)
			hs += spanIDSize
		}
		if word&chunkFlag != 0 {
			if len(in) < hs+chunkMetaSize {
				return frame{}, fmt.Errorf("collective: chunked frame shorter than chunk header (%d bytes)", len(in))
			}
			fr.chunked = true
			iw := uint32At(in, hs)
			fr.codec = Codec(iw >> 24)
			fr.idx = int(iw & chunkIdxMask)
			fr.total = int(uint32At(in, hs+4))
			fr.elemOff = int(uint32At(in, hs+8))
			fr.elemCnt = int(uint32At(in, hs+12))
			fr.elemAll = int(uint32At(in, hs+16))
			hs += chunkMetaSize
		}
		if got == want {
			fr.payload = in[hs:]
			fr.wire = in
			return fr, nil
		}
		if rc.releasable {
			comm.Release(in)
		}
		if epochNewer(got, want) {
			return frame{}, fmt.Errorf("collective: epoch %d superseded by in-flight epoch %d", want, got)
		}
	}
}

// checkTrain validates one incoming frame against the train state (got
// chunks received so far, need chunks expected or -1 before the first
// frame) so a corrupt or misrouted chunk fails the step instead of
// mis-reducing. The first frame of a train fixes its codec; a codec
// change mid-train fails exactly like a train-length change.
func (rc *ringChan[V]) checkTrain(fr frame, got, need int) error {
	switch {
	case !fr.chunked && got != 0:
		return fmt.Errorf("collective: whole-segment frame arrived inside a chunk train (%d/%d received)", got, need)
	case !fr.chunked:
		return nil
	case rc.stride <= 0:
		return fmt.Errorf("collective: peer sent a chunked frame but ops have no chunk decoder")
	case fr.codec > CodecTopK:
		return fmt.Errorf("collective: unknown codec %d in chunk header", uint8(fr.codec))
	case fr.codec != CodecNone && rc.floats == nil:
		return fmt.Errorf("collective: peer sent a %s-compressed chunk but ops have no float view", fr.codec)
	case fr.total < 1 || fr.idx < 0 || fr.elemCnt < 0 || fr.elemOff < 0 || fr.elemAll < 0:
		return fmt.Errorf("collective: corrupt chunk header (idx %d total %d off %d cnt %d all %d)", fr.idx, fr.total, fr.elemOff, fr.elemCnt, fr.elemAll)
	case fr.idx != got:
		return fmt.Errorf("collective: chunk %d arrived, want chunk %d of %d", fr.idx, got, fr.total)
	case got > 0 && fr.codec != rc.inCodec:
		return fmt.Errorf("collective: mixed-codec chunk train (%s after %s at chunk %d)", fr.codec, rc.inCodec, fr.idx)
	case need >= 0 && fr.total != need:
		return fmt.Errorf("collective: chunk train length changed mid-step (%d vs %d)", fr.total, need)
	case fr.elemOff+fr.elemCnt > fr.elemAll:
		return fmt.Errorf("collective: chunk [%d,%d) exceeds its declared segment of %d elems", fr.elemOff, fr.elemOff+fr.elemCnt, fr.elemAll)
	}
	if err := checkChunkPayload(fr, rc.stride); err != nil {
		return err
	}
	if got == 0 {
		rc.inCodec = fr.codec
	}
	return nil
}

// checkChunkPayload validates a chunk's payload length against its
// codec's wire format (top-k lengths are nnz-dependent and validated at
// decode).
func checkChunkPayload(fr frame, stride int) error {
	switch fr.codec {
	case CodecNone:
		if len(fr.payload) != fr.elemCnt*stride {
			return fmt.Errorf("collective: chunk payload %d bytes, want %d (%d elems × stride %d)", len(fr.payload), fr.elemCnt*stride, fr.elemCnt, stride)
		}
	case CodecFP16:
		if len(fr.payload) != 8+2*fr.elemCnt {
			return fmt.Errorf("collective: fp16 chunk payload %d bytes, want %d", len(fr.payload), 8+2*fr.elemCnt)
		}
	case CodecInt8:
		if len(fr.payload) != 8+fr.elemCnt {
			return fmt.Errorf("collective: int8 chunk payload %d bytes, want %d", len(fr.payload), 8+fr.elemCnt)
		}
	case CodecTopK:
		if len(fr.payload) < 4 {
			return fmt.Errorf("collective: top-k chunk payload %d bytes, shorter than its nnz word", len(fr.payload))
		}
	}
	return nil
}

// releaseFrame returns one received frame's buffer to the pool when the
// ops' contracts prove it unretained: always for chunk payloads (the
// chunk decoders are defined non-retaining), for legacy frames only
// under the DecodeReduceInto marker.
func (rc *ringChan[V]) releaseFrame(fr frame) {
	if rc.releasable || fr.chunked {
		comm.Release(fr.wire)
	}
}

// parWorkers picks the shard count for reducing an elemCnt-element
// chunk: bounded by the executor's core budget, with at least
// parReduceGrainBytes of payload per shard.
func (rc *ringChan[V]) parWorkers(elemCnt int) int {
	if rc.cores <= 1 || rc.stride <= 0 {
		return 1
	}
	w := elemCnt * rc.stride / parReduceGrainBytes
	if w > rc.cores {
		w = rc.cores
	}
	if w < 1 {
		w = 1
	}
	return w
}

// reduceChunk fuses decode and reduce for one chunk, sharding across
// the worker pool when the chunk is large enough. Shards are disjoint
// contiguous element ranges running the same sequential kernel, so the
// result is bitwise identical to the single-threaded fused pass.
func (rc *ringChan[V]) reduceChunk(acc V, fr frame) error {
	if fr.elemOff+fr.elemCnt > rc.ops.Elems(acc) {
		return fmt.Errorf("collective: chunk [%d,%d) exceeds local segment of %d elems",
			fr.elemOff, fr.elemOff+fr.elemCnt, rc.ops.Elems(acc))
	}
	if fr.codec != CodecNone {
		return rc.reduceCodecChunk(acc, fr)
	}
	w := rc.parWorkers(fr.elemCnt)
	if w <= 1 {
		return rc.ops.DecodeReduceChunkInto(acc, fr.elemOff, fr.payload)
	}
	// Locals only in the shard closure: capturing rc would make every
	// ringChan escape to the heap and break the PR 1 allocation budget.
	reduce := rc.ops.DecodeReduceChunkInto
	stride, elemOff, payload := rc.stride, fr.elemOff, fr.payload
	var (
		mu       sync.Mutex
		firstErr error
	)
	linalg.ParallelFor(fr.elemCnt, w, func(lo, hi int) {
		err := reduce(acc, elemOff+lo, payload[lo*stride:hi*stride])
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}
	})
	return firstErr
}

// observeReduce folds one chunk's decode/reduce duration into the step
// accumulators. active reports whether wire work (sends in flight or
// receives still expected) overlapped the compute — the numerator of
// the overlap ratio the bench sweep reports.
func (rc *ringChan[V]) observeReduce(d time.Duration, active bool) {
	ns := d.Nanoseconds()
	rc.reduceNS += ns
	if active {
		rc.overlapNS += ns
	}
	rc.tel.chunkNS.Observe(ns)
}

// finishStep records the step's telemetry onto its span and histograms.
// Compressing steps additionally record the pre-compression byte
// equivalent (the raw-bytes histogram and span attribute) and the codec
// tag; dense steps keep the exact pre-codec telemetry shape.
func (rc *ringChan[V]) finishStep(span *trace.ActiveSpan, chunks int) {
	if !rc.tel.on {
		return
	}
	rc.tel.stepBytes.Observe(rc.stepBytes)
	if rc.comp.enabled() {
		rc.tel.stepRaw.Observe(rc.stepRaw)
	}
	if span == nil {
		return
	}
	span.SetInt("bytes", rc.stepBytes)
	span.SetHex("peer_span", rc.peerSpan)
	if rc.comp.enabled() {
		span.SetAttr("codec", rc.comp.Codec.String())
		span.SetInt("raw_bytes", rc.stepRaw)
	}
	if chunks > 1 {
		span.SetInt("chunks", int64(chunks))
		span.SetInt("reduce_ns", rc.reduceNS)
		span.SetInt("overlap_ns", rc.overlapNS)
	}
}

// transferReduce runs one reduce-scatter step on this channel: stream
// segment out to the successor while receiving the predecessor's
// segment and reducing it into acc. Returns the updated accumulator.
//
// The schedule keeps the send window full first (two chunks in flight),
// then alternates receives — each received chunk decode-reduces while
// the window drains on the wire — and retires completions
// opportunistically, so encode, wire and reduce overlap within the step
// instead of running back to back.
func (rc *ringChan[V]) transferReduce(sctx context.Context, span *trace.ActiveSpan, out V, acc V, outSeg int) (V, error) {
	spanID := span.ID()
	outTotal, elems, per := 1, 0, 0
	if rc.chunkBytes > 0 && rc.stride > 0 {
		elems = rc.ops.Elems(out)
		outTotal = rc.outChunks(elems)
		per = rc.chunkElems()
	}
	// Compression always sends chunk frames (the codec byte lives in the
	// chunk meta), even for single-chunk trains; dense single-chunk
	// steps keep the byte-identical legacy frame.
	single := outTotal == 1 && !rc.comp.enabled()
	rc.beginStep(sctx)
	rc.efRes = nil
	if rc.comp.efOn() && !single {
		rc.efRes = rc.comp.State.residual(efKey(rc.ch, outSeg), elems)
	}

	inNeed, inGot := -1, 0
	for {
		// Keep the double buffer full: encode and launch the next chunk
		// whenever fewer than two frames are in flight.
		if rc.sent < outTotal && rc.inflight() < 2 {
			var wire []byte
			if single {
				buf := comm.GetBuffer(sizeHint(rc.ops, rc.hint, out) + frameHeaderSize(spanID))
				wire = encodeFrame(rc.ops, rc.epoch, spanID, buf, out)
				rc.hint = len(wire)
			} else {
				lo := rc.sent * per
				hi := lo + per
				if hi > elems {
					hi = elems
				}
				wire = rc.encodeChunkFrame(spanID, out, rc.sent, outTotal, lo, hi-lo, elems)
			}
			rc.sendFrame(wire)
			continue
		}
		// Receive while the window is full (or everything is sent): the
		// reduce below runs while both in-flight chunks traverse the
		// wire — this interleaving is the pipeline.
		if inNeed < 0 || inGot < inNeed {
			fr, err := rc.recvAny()
			if err != nil {
				rc.abortSends()
				return acc, err
			}
			if err := rc.checkTrain(fr, inGot, inNeed); err != nil {
				rc.releaseFrame(fr)
				rc.abortSends()
				return acc, err
			}
			if fr.span != 0 {
				rc.peerSpan = fr.span
			}
			var start time.Time
			if rc.tel.on {
				start = time.Now()
			}
			var rerr error
			var canRelease bool
			if fr.chunked {
				inNeed = fr.total
				inGot++
				rerr = rc.reduceChunk(acc, fr)
				canRelease = true
			} else {
				inNeed, inGot = 1, 1
				acc, canRelease, rerr = decodeReduce(rc.ops, acc, fr.payload)
			}
			if rc.tel.on {
				active := rc.inflight() > 0 || rc.sent < outTotal || inGot < inNeed
				rc.observeReduce(time.Since(start), active)
			}
			if canRelease {
				comm.Release(fr.wire)
			}
			if rerr != nil {
				rc.abortSends()
				return acc, rerr
			}
			if err := rc.reapSends(); err != nil {
				rc.abortSends()
				return acc, err
			}
			continue
		}
		// Everything received; drain the remaining sends.
		if rc.reaped < rc.sent {
			if err := rc.waitOldest(); err != nil {
				rc.abortSends()
				return acc, err
			}
			continue
		}
		break
	}
	rc.finishStep(span, outTotal)
	return acc, nil
}

// forwardFrame rewrites a kept frame's header for relaying: same epoch,
// our step span, same chunk metadata. The payload bytes are not touched
// unless the header length changed (traced↔untraced hop), in which case
// they shift within the buffer — still no decode and no re-encode.
func (rc *ringChan[V]) forwardFrame(f fwdFrame, spanID uint64) []byte {
	hs := epochHeaderSize
	if spanID != 0 {
		hs += spanIDSize
	}
	if f.chunked {
		hs += chunkMetaSize
	}
	wire := f.wire
	payloadLen := len(wire) - f.payloadOff
	switch {
	case hs == f.payloadOff:
		// Same header shape: rewrite in place.
	case hs < f.payloadOff:
		copy(wire[hs:], wire[f.payloadOff:])
		wire = wire[:hs+payloadLen]
	case hs+payloadLen <= cap(wire):
		// copy is memmove-safe for the overlapping forward shift.
		wire = wire[:hs+payloadLen]
		copy(wire[hs:], wire[f.payloadOff:f.payloadOff+payloadLen])
	default:
		grown := comm.GetBuffer(hs + payloadLen)[:hs+payloadLen]
		copy(grown[hs:], wire[f.payloadOff:])
		comm.Release(wire)
		wire = grown
	}
	word := rc.epoch & epochMask
	metaOff := epochHeaderSize
	if spanID != 0 {
		word |= spanFlag
		putUint64(wire[epochHeaderSize:], spanID)
		metaOff += spanIDSize
	}
	if f.chunked {
		word |= chunkFlag
		putChunkMeta(wire[metaOff:], f.idx, f.total, f.elemOff, f.elemCnt, f.elemAll, f.codec)
	}
	putUint32(wire, word)
	if comm.RaceGuard {
		rc.tagForward(wire, f)
	}
	if rc.tel.on && f.chunked {
		rc.tel.chunkBytes.Observe(int64(len(wire)))
	}
	if f.codec != CodecNone {
		// Relayed compressed frames keep their codec payload untouched;
		// account the dense equivalent for the raw-bytes telemetry.
		rc.lastRaw = int64(hs + 8*f.elemCnt)
	}
	return wire
}

// tagForward labels a relayed frame for the -race pool guard, naming
// the codec when the relayed payload is compressed.
func (rc *ringChan[V]) tagForward(wire []byte, f fwdFrame) {
	if f.codec != CodecNone {
		comm.TagWire(wire, fmt.Sprintf("ring ch %d codec %s fwd chunk %d/%d", rc.ch, f.codec, f.idx, f.total))
		return
	}
	comm.TagWire(wire, fmt.Sprintf("ring ch %d fwd chunk %d/%d", rc.ch, f.idx, f.total))
}

// gatherAbort cleans up a failed allgather step: drain the send window
// and return every frame this rank still owns (unsent forwards and kept
// receives) to the pool.
func (rc *ringChan[V]) gatherAbort(fwd, kept []fwdFrame) {
	rc.abortSends()
	if !rc.releasable {
		return
	}
	if rc.sent < len(fwd) {
		for _, f := range fwd[rc.sent:] {
			comm.Release(f.wire)
		}
	}
	for _, f := range kept {
		comm.Release(f.wire)
	}
}

// transferGather runs one allgather step on this channel: relay the
// frames gathered last step (fwd; step 0 encodes all[sendSlot] instead)
// while assembling the predecessor's frames into all[recvSlot]. When
// keep is set the received frames are retained and returned for the
// next step's relay — cut-through forwarding, re-framed header only —
// otherwise they are released. parity selects the recycled backing
// array for the returned list.
func (rc *ringChan[V]) transferGather(sctx context.Context, span *trace.ActiveSpan, all []V, sendSlot, recvSlot int, fwd []fwdFrame, keep bool, parity int) ([]fwdFrame, error) {
	spanID := span.ID()
	outTotal, elems, per := 1, 0, 0
	single := false
	if len(fwd) > 0 {
		outTotal = len(fwd)
	} else {
		if rc.chunkBytes > 0 && rc.stride > 0 {
			elems = rc.ops.Elems(all[sendSlot])
			outTotal = rc.outChunks(elems)
			per = rc.chunkElems()
		}
		// Allgather compresses its step-0 frames without error feedback:
		// the values are final results, never re-encoded, so there is no
		// later iteration to re-inject the error into.
		single = outTotal == 1 && !rc.comp.enabled()
	}
	rc.beginStep(sctx)
	rc.efRes = nil

	var kept []fwdFrame
	if keep {
		kept = rc.fwdBufs[parity][:0]
	}
	inNeed, inGot := -1, 0
	for {
		if rc.sent < outTotal && rc.inflight() < 2 {
			var wire []byte
			switch {
			case len(fwd) > 0:
				wire = rc.forwardFrame(fwd[rc.sent], spanID)
			case single:
				buf := comm.GetBuffer(sizeHint(rc.ops, rc.hint, all[sendSlot]) + frameHeaderSize(spanID))
				wire = encodeFrame(rc.ops, rc.epoch, spanID, buf, all[sendSlot])
				rc.hint = len(wire)
			default:
				lo := rc.sent * per
				hi := lo + per
				if hi > elems {
					hi = elems
				}
				wire = rc.encodeChunkFrame(spanID, all[sendSlot], rc.sent, outTotal, lo, hi-lo, elems)
			}
			rc.sendFrame(wire)
			continue
		}
		if inNeed < 0 || inGot < inNeed {
			fr, err := rc.recvAny()
			if err != nil {
				rc.gatherAbort(fwd, kept)
				return nil, err
			}
			if err := rc.checkTrain(fr, inGot, inNeed); err != nil {
				rc.releaseFrame(fr)
				rc.gatherAbort(fwd, kept)
				return nil, err
			}
			if fr.span != 0 {
				rc.peerSpan = fr.span
			}
			var start time.Time
			if rc.tel.on {
				start = time.Now()
			}
			var derr error
			if fr.chunked {
				if inGot == 0 {
					all[recvSlot] = rc.ops.MakeSegment(fr.elemAll)
				}
				inNeed = fr.total
				inGot++
				if fr.elemOff+fr.elemCnt > rc.ops.Elems(all[recvSlot]) {
					derr = fmt.Errorf("collective: chunk [%d,%d) exceeds assembled segment of %d elems",
						fr.elemOff, fr.elemOff+fr.elemCnt, rc.ops.Elems(all[recvSlot]))
				} else if fr.codec != CodecNone {
					derr = rc.decodeCodecChunkInto(all[recvSlot], fr)
				} else {
					derr = rc.ops.DecodeChunkInto(all[recvSlot], fr.elemOff, fr.payload)
				}
			} else {
				inNeed, inGot = 1, 1
				var v V
				v, derr = rc.ops.Decode(fr.payload)
				if derr == nil {
					all[recvSlot] = v
				}
			}
			if rc.tel.on {
				active := rc.inflight() > 0 || rc.sent < outTotal || inGot < inNeed
				rc.observeReduce(time.Since(start), active)
			}
			if derr != nil {
				rc.releaseFrame(fr)
				rc.gatherAbort(fwd, kept)
				return nil, derr
			}
			if keep {
				kept = append(kept, fwdFrame{
					wire:       fr.wire,
					payloadOff: len(fr.wire) - len(fr.payload),
					chunked:    fr.chunked,
					codec:      fr.codec,
					idx:        fr.idx,
					total:      fr.total,
					elemOff:    fr.elemOff,
					elemCnt:    fr.elemCnt,
					elemAll:    fr.elemAll,
				})
			} else {
				rc.releaseFrame(fr)
			}
			if err := rc.reapSends(); err != nil {
				rc.gatherAbort(fwd, kept)
				return nil, err
			}
			continue
		}
		if rc.reaped < rc.sent {
			if err := rc.waitOldest(); err != nil {
				rc.gatherAbort(fwd, kept)
				return nil, err
			}
			continue
		}
		break
	}
	if keep {
		rc.fwdBufs[parity] = kept // persist growth for the next lap
	}
	rc.finishStep(span, outTotal)
	return kept, nil
}
