package collective

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"sparker/internal/comm"
	"sparker/internal/transport"
)

// makeInputs builds per-rank random segment sets: inputs[r][i] is
// segment i at rank r. want[i] is the elementwise sum over ranks.
func makeInputs(rng *rand.Rand, ranks, segments, segLen int) (inputs [][][]float64, want [][]float64) {
	inputs = make([][][]float64, ranks)
	want = make([][]float64, segments)
	for i := range want {
		want[i] = make([]float64, segLen)
	}
	for r := 0; r < ranks; r++ {
		inputs[r] = make([][]float64, segments)
		for i := 0; i < segments; i++ {
			seg := make([]float64, segLen)
			for j := range seg {
				seg[j] = math.Round(rng.Float64()*100) / 4
				want[i][j] += seg[j]
			}
			inputs[r][i] = seg
		}
	}
	return inputs, want
}

func runGroup(t *testing.T, n int, name string, body func(e *comm.Endpoint) error) {
	t.Helper()
	net := transport.NewMem()
	defer net.Close()
	eps, err := comm.NewGroup(net, name, n)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseGroup(eps)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, e := range eps {
		wg.Add(1)
		go func(i int, e *comm.Endpoint) {
			defer wg.Done()
			errs[i] = body(e)
		}(i, e)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
}

func segsEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestRingReduceScatter(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7} {
		for _, p := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("n=%d/p=%d", n, p), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(n*100 + p)))
				inputs, want := makeInputs(rng, n, p*n, 16)
				var mu sync.Mutex
				got := map[int][]float64{}
				runGroup(t, n, fmt.Sprintf("rs-%d-%d", n, p), func(e *comm.Endpoint) error {
					owned, err := RingReduceScatter(context.Background(), e, inputs[e.Rank()], p, F64Ops())
					if err != nil {
						return err
					}
					// Check ownership layout: rank r owns p*N + (r+1)%N per channel.
					if n > 1 {
						for ch := 0; ch < p; ch++ {
							idx := ch*n + (e.Rank()+1)%n
							if _, ok := owned[idx]; !ok {
								return fmt.Errorf("rank %d missing owned segment %d", e.Rank(), idx)
							}
						}
					}
					mu.Lock()
					for i, v := range owned {
						got[i] = v
					}
					mu.Unlock()
					return nil
				})
				if len(got) != p*n {
					t.Fatalf("got %d owned segments, want %d", len(got), p*n)
				}
				for i, v := range got {
					if !segsEqual(v, want[i], 1e-9) {
						t.Errorf("segment %d: got %v want %v", i, v, want[i])
					}
				}
			})
		}
	}
}

func TestRingReduceScatterBadArgs(t *testing.T) {
	runGroup(t, 2, "rs-bad", func(e *comm.Endpoint) error {
		if _, err := RingReduceScatter(context.Background(), e, [][]float64{{1}}, 1, F64Ops()); err == nil {
			return fmt.Errorf("wrong segment count should fail")
		}
		if _, err := RingReduceScatter(context.Background(), e, nil, 0, F64Ops()); err == nil {
			return fmt.Errorf("zero parallelism should fail")
		}
		return nil
	})
}

func TestRingAllReduce(t *testing.T) {
	for _, n := range []int{1, 2, 4, 5} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			const p = 2
			rng := rand.New(rand.NewSource(int64(n)))
			inputs, want := makeInputs(rng, n, p*n, 8)
			results := make([][][]float64, n)
			runGroup(t, n, fmt.Sprintf("ar-%d", n), func(e *comm.Endpoint) error {
				all, err := RingAllReduce(context.Background(), e, inputs[e.Rank()], p, F64Ops())
				if err != nil {
					return err
				}
				results[e.Rank()] = all
				return nil
			})
			for r := 0; r < n; r++ {
				for i := range want {
					if !segsEqual(results[r][i], want[i], 1e-9) {
						t.Errorf("rank %d segment %d: got %v want %v", r, i, results[r][i], want[i])
					}
				}
			}
		})
	}
}

func TestTreeReduce(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 6, 8} {
		for root := 0; root < n; root += 3 {
			t.Run(fmt.Sprintf("n=%d/root=%d", n, root), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(n*10 + root)))
				inputs, want := makeInputs(rng, n, 1, 12)
				var got []float64
				runGroup(t, n, fmt.Sprintf("tr-%d-%d", n, root), func(e *comm.Endpoint) error {
					v, err := TreeReduce(context.Background(), e, root, inputs[e.Rank()][0], F64Ops())
					if err != nil {
						return err
					}
					if e.Rank() == root {
						got = v
					} else if v != nil {
						return fmt.Errorf("non-root rank %d got non-zero result", e.Rank())
					}
					return nil
				})
				if !segsEqual(got, want[0], 1e-9) {
					t.Errorf("root result %v, want %v", got, want[0])
				}
			})
		}
	}
}

func TestRecursiveHalvingReduceScatter(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(n)))
			inputs, want := makeInputs(rng, n, n, 8)
			got := make([][]float64, n)
			runGroup(t, n, fmt.Sprintf("rh-%d", n), func(e *comm.Endpoint) error {
				v, err := RecursiveHalvingReduceScatter(context.Background(), e, inputs[e.Rank()], F64Ops())
				if err != nil {
					return err
				}
				got[e.Rank()] = v
				return nil
			})
			for r := 0; r < n; r++ {
				if !segsEqual(got[r], want[r], 1e-9) {
					t.Errorf("rank %d: got %v want %v", r, got[r], want[r])
				}
			}
		})
	}
}

func TestRecursiveHalvingRejectsNonPow2(t *testing.T) {
	runGroup(t, 3, "rh-bad", func(e *comm.Endpoint) error {
		segs := [][]float64{{1}, {2}, {3}}
		if _, err := RecursiveHalvingReduceScatter(context.Background(), e, segs, F64Ops()); err == nil {
			return fmt.Errorf("non-power-of-two size should fail")
		}
		return nil
	})
}

func TestPairwiseReduceScatter(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(n)))
			inputs, want := makeInputs(rng, n, n, 8)
			got := make([][]float64, n)
			runGroup(t, n, fmt.Sprintf("pw-%d", n), func(e *comm.Endpoint) error {
				v, err := PairwiseReduceScatter(context.Background(), e, inputs[e.Rank()], F64Ops())
				if err != nil {
					return err
				}
				got[e.Rank()] = v
				return nil
			})
			for r := 0; r < n; r++ {
				if !segsEqual(got[r], want[r], 1e-9) {
					t.Errorf("rank %d: got %v want %v", r, got[r], want[r])
				}
			}
		})
	}
}

func TestRingReduceScatterOverTCP(t *testing.T) {
	const n, p = 3, 2
	net := transport.NewTCP()
	defer net.Close()
	eps, err := comm.NewGroup(net, "rs-tcp", n)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseGroup(eps)
	rng := rand.New(rand.NewSource(7))
	inputs, want := makeInputs(rng, n, p*n, 1024)
	var (
		mu  sync.Mutex
		got = map[int][]float64{}
		wg  sync.WaitGroup
	)
	for _, e := range eps {
		wg.Add(1)
		go func(e *comm.Endpoint) {
			defer wg.Done()
			owned, err := RingReduceScatter(context.Background(), e, inputs[e.Rank()], p, F64Ops())
			if err != nil {
				t.Errorf("rank %d: %v", e.Rank(), err)
				return
			}
			mu.Lock()
			for i, v := range owned {
				got[i] = v
			}
			mu.Unlock()
		}(e)
	}
	wg.Wait()
	for i := range want {
		if !segsEqual(got[i], want[i], 1e-9) {
			t.Errorf("segment %d mismatch over TCP", i)
		}
	}
}

// Property: for arbitrary inputs, ring reduce-scatter agrees with the
// serial fold — the central correctness claim split aggregation relies on.
func TestQuickRingReduceScatterEqualsSerial(t *testing.T) {
	f := func(seed int64, nRaw, pRaw, lenRaw uint8) bool {
		n := int(nRaw%5) + 1
		p := int(pRaw%3) + 1
		segLen := int(lenRaw%9) + 1
		rng := rand.New(rand.NewSource(seed))
		inputs, want := makeInputs(rng, n, p*n, segLen)

		net := transport.NewMem()
		defer net.Close()
		eps, err := comm.NewGroup(net, "quick-rs", n)
		if err != nil {
			return false
		}
		defer comm.CloseGroup(eps)
		var (
			mu  sync.Mutex
			got = map[int][]float64{}
			wg  sync.WaitGroup
			ok  = true
		)
		for _, e := range eps {
			wg.Add(1)
			go func(e *comm.Endpoint) {
				defer wg.Done()
				owned, err := RingReduceScatter(context.Background(), e, inputs[e.Rank()], p, F64Ops())
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					ok = false
					return
				}
				for i, v := range owned {
					got[i] = v
				}
			}(e)
		}
		wg.Wait()
		if !ok || len(got) != p*n {
			return false
		}
		for i := range want {
			if !segsEqual(got[i], want[i], 1e-6) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestF64OpsEncodeDecodeRoundTrip(t *testing.T) {
	ops := F64Ops()
	f := func(v []float64) bool {
		b := ops.Encode(nil, v)
		got, err := ops.Decode(b)
		if err != nil || len(got) != len(v) {
			return false
		}
		for i := range v {
			if got[i] != v[i] && !(math.IsNaN(got[i]) && math.IsNaN(v[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestF64OpsReduceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Reduce with mismatched lengths should panic")
		}
	}()
	F64Ops().Reduce([]float64{1}, []float64{1, 2})
}

// The bandwidth-optimality invariant (Patarasuk & Yuan): ring
// reduce-scatter moves exactly (N-1)/N of the data out of each rank —
// measured through the endpoints' real traffic counters.
func TestRingReduceScatterTrafficIsBandwidthOptimal(t *testing.T) {
	const n, p, segLen = 4, 2, 128
	net := transport.NewMem()
	defer net.Close()
	eps, err := comm.NewGroup(net, "traffic", n)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseGroup(eps)
	rng := rand.New(rand.NewSource(3))
	inputs, _ := makeInputs(rng, n, p*n, segLen)

	var wg sync.WaitGroup
	for _, e := range eps {
		wg.Add(1)
		go func(e *comm.Endpoint) {
			defer wg.Done()
			if _, err := RingReduceScatter(context.Background(), e, inputs[e.Rank()], p, F64Ops()); err != nil {
				t.Errorf("rank %d: %v", e.Rank(), err)
			}
		}(e)
	}
	wg.Wait()

	// Payload per rank: full vector = p*n segments × segLen floats.
	// Ring sends (n-1) steps × p channels × one segment of
	// (4 + 8·segLen) wire bytes, each framed by the 4-byte epoch header.
	wantMsgs := int64((n - 1) * p)
	wantBytes := wantMsgs * int64(epochHeaderSize+4+8*segLen)
	for _, e := range eps {
		st := e.Stats()
		if st.MsgsSent != wantMsgs || st.MsgsReceived != wantMsgs {
			t.Fatalf("rank %d moved %d/%d messages, want %d", e.Rank(), st.MsgsSent, st.MsgsReceived, wantMsgs)
		}
		if st.BytesSent != wantBytes {
			t.Fatalf("rank %d sent %d bytes, want %d ((N-1)/N of the vector)", e.Rank(), st.BytesSent, wantBytes)
		}
	}
}

// Corrupted wire data must surface as errors from every collective, not
// hang or panic.
func TestDecodeErrorPropagates(t *testing.T) {
	badOps := Ops[[]float64]{
		Reduce: func(a, b []float64) []float64 { return a },
		Encode: encodeF64,
		Decode: func([]byte) ([]float64, error) {
			return nil, fmt.Errorf("injected decode failure")
		},
	}
	runGroup(t, 2, "bad-decode-rs", func(e *comm.Endpoint) error {
		segs := [][]float64{{1}, {2}}
		if _, err := RingReduceScatter(context.Background(), e, segs, 1, badOps); err == nil {
			return fmt.Errorf("reduce-scatter should surface decode errors")
		}
		return nil
	})
	runGroup(t, 2, "bad-decode-pw", func(e *comm.Endpoint) error {
		segs := [][]float64{{1}, {2}}
		if _, err := PairwiseReduceScatter(context.Background(), e, segs, badOps); err == nil {
			return fmt.Errorf("pairwise should surface decode errors")
		}
		return nil
	})
	runGroup(t, 2, "bad-decode-tr", func(e *comm.Endpoint) error {
		if _, err := TreeReduce(context.Background(), e, 0, []float64{1}, badOps); err == nil && e.Rank() == 0 {
			return fmt.Errorf("tree reduce root should surface decode errors")
		}
		return nil
	})
}

func TestRingAllGatherBadIndex(t *testing.T) {
	runGroup(t, 2, "ag-bad", func(e *comm.Endpoint) error {
		owned := map[int][]float64{99: {1}}
		if _, err := RingAllGather(context.Background(), e, owned, 1, F64Ops()); err == nil {
			return fmt.Errorf("out-of-range owned index should fail")
		}
		return nil
	})
}

func TestPairwiseWrongSegmentCount(t *testing.T) {
	runGroup(t, 3, "pw-bad", func(e *comm.Endpoint) error {
		if _, err := PairwiseReduceScatter(context.Background(), e, [][]float64{{1}}, F64Ops()); err == nil {
			return fmt.Errorf("wrong segment count should fail")
		}
		return nil
	})
}
