package collective

// Tests for the zero-allocation hot path: the fused decode-reduce, the
// presized F64 wire format, and allreduce across non-power-of-two rings
// with multiple parallel channels.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sparker/internal/comm"
)

// The fused DecodeReduceInto must be bitwise-identical to
// decode-then-Reduce — the acceptance bar for fusing the hot path.
func TestQuickFusedDecodeReduceBitwiseIdentical(t *testing.T) {
	ops := F64Ops()
	f := func(accRaw, inRaw []float64) bool {
		n := len(accRaw)
		if len(inRaw) < n {
			n = len(inRaw)
		}
		acc := accRaw[:n]
		in := inRaw[:n]
		wire := encodeF64(nil, in)

		want := make([]float64, n)
		copy(want, acc)
		dec, err := ops.Decode(wire)
		if err != nil {
			return false
		}
		want = ops.Reduce(want, dec)

		got := make([]float64, n)
		copy(got, acc)
		got, err = ops.DecodeReduceInto(got, wire)
		if err != nil {
			return false
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// A corrupt length prefix must be rejected before any allocation
// happens, in both the plain and the fused decoder.
func TestDecodeF64CorruptPrefix(t *testing.T) {
	wire := encodeF64(nil, []float64{1, 2, 3})
	putUint32(wire, 1<<31) // claim ~2e9 elements in a 28-byte frame
	if _, err := decodeF64(wire); err == nil {
		t.Error("decodeF64 accepted a corrupt length prefix")
	}
	if _, err := decodeReduceIntoF64([]float64{0, 0, 0}, wire); err == nil {
		t.Error("decodeReduceIntoF64 accepted a corrupt length prefix")
	}
	if _, err := decodeF64([]byte{1, 2}); err == nil {
		t.Error("decodeF64 accepted a short frame")
	}
}

// encodeF64 appends: mid-frame encodes (the halving baseline's frame
// builder) and pre-sized scratch reuse must both work.
func TestEncodeF64AppendsAndReusesCapacity(t *testing.T) {
	prefix := []byte{9, 9}
	wire := encodeF64(prefix, []float64{1.5, -2.5})
	if wire[0] != 9 || wire[1] != 9 {
		t.Fatalf("prefix clobbered: % x", wire[:2])
	}
	got, err := decodeF64(wire[2:])
	if err != nil || got[0] != 1.5 || got[1] != -2.5 {
		t.Fatalf("append-decode: %v %v", got, err)
	}

	scratch := make([]byte, 0, 4+8*4)
	out := encodeF64(scratch, []float64{1, 2, 3, 4})
	if &out[0] != &scratch[:1][0] {
		t.Error("encodeF64 reallocated despite sufficient capacity")
	}
}

func TestF64OpsEncodedSizeExact(t *testing.T) {
	ops := F64Ops()
	for _, n := range []int{0, 1, 3, 100} {
		v := make([]float64, n)
		if got, want := ops.EncodedSize(v), len(ops.Encode(nil, v)); got != want {
			t.Errorf("EncodedSize(%d elems) = %d, want %d", n, got, want)
		}
	}
}

func TestFusedDecodeReduceLengthMismatchErrors(t *testing.T) {
	wire := encodeF64(nil, []float64{1, 2})
	if _, err := F64Ops().DecodeReduceInto([]float64{0}, wire); err == nil {
		t.Error("fused decode-reduce with mismatched lengths should error — a corrupt frame must fail the step, not kill the process")
	}
}

// RingAllReduce across non-power-of-two rings with several parallel
// channels — the PDR configurations the paper's Figure 14 sweeps and
// the seed's tests skipped.
func TestRingAllReduceNonPow2MultiChannel(t *testing.T) {
	for _, n := range []int{3, 5, 7} {
		for _, p := range []int{2, 3} {
			t.Run(fmt.Sprintf("n=%d/p=%d", n, p), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(n*31 + p)))
				inputs, want := makeInputs(rng, n, p*n, 24)
				results := make([][][]float64, n)
				runGroup(t, n, fmt.Sprintf("ar-np2-%d-%d", n, p), func(e *comm.Endpoint) error {
					all, err := RingAllReduce(context.Background(), e, inputs[e.Rank()], p, F64Ops())
					if err != nil {
						return err
					}
					results[e.Rank()] = all
					return nil
				})
				for r := 0; r < n; r++ {
					for i := range want {
						if !segsEqual(results[r][i], want[i], 1e-9) {
							t.Errorf("rank %d segment %d: got %v want %v", r, i, results[r][i], want[i])
						}
					}
				}
			})
		}
	}
}
