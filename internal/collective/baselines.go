package collective

// Baseline reduction algorithms: the binomial tree (the communication
// shape of Spark's treeAggregate once aggregators leave the executors)
// and the two MPICH reduce-scatter algorithms the paper's MPI reference
// would have used (recursive halving for short messages and pairwise
// exchange for long ones — Thakur, Rabenseifner & Gropp 2005).
//
// Like the ring collectives, the baselines encode into pooled wire
// buffers, overlap sends through the persistent channel senders, and
// release receive buffers once reduced.

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"

	"sparker/internal/comm"
)

// TreeReduce reduces every rank's value to the root rank with a
// binomial tree: in round k, rank r with the low k bits zero receives
// from r + 2^k (if alive) and merges. Non-root ranks return the zero V.
// This treats the value as an unsplittable object — exactly the
// restriction the paper's Figure 5 (left) illustrates. ctx bounds the
// collective; WithStepDeadline bounds each round's send or receive.
func TreeReduce[V any](ctx context.Context, e *comm.Endpoint, root int, value V, ops Ops[V]) (V, error) {
	n := e.Size()
	var zero V
	if n == 1 {
		return value, nil
	}
	// Rotate ranks so the root is virtual rank 0.
	vr := (e.Rank() - root + n) % n
	toReal := func(v int) int { return (v + root) % n }

	acc := value
	for dist := 1; dist < n; dist *= 2 {
		if vr%(2*dist) != 0 {
			// Sender: transmit to vr-dist and exit. The wire buffer is a
			// pool draw, so it goes through the recycling SendToAsync
			// path rather than SendTo (which never recycles).
			dst := toReal(vr - dist)
			sctx, cancel := stepContext(ctx)
			wire := encodeInto(ops, comm.GetBuffer(sizeHint(ops, 0, acc)), acc)
			sendDone := make(chan error, 1)
			e.SendToAsync(dst, treeChannel, wire, sendDone)
			err := e.WaitSend(sctx, dst, sendDone)
			cancel()
			if err != nil {
				return zero, fmt.Errorf("collective: tree send: %w", err)
			}
			return zero, nil
		}
		src := vr + dist
		if src < n {
			sctx, cancel := stepContext(ctx)
			in, err := e.RecvFromCtx(sctx, toReal(src), treeChannel)
			cancel()
			if err != nil {
				return zero, fmt.Errorf("collective: tree recv: %w", err)
			}
			merged, release, err := decodeReduce(ops, acc, in)
			if release {
				comm.Release(in)
			}
			if err != nil {
				return zero, err
			}
			acc = merged
		}
	}
	return acc, nil
}

// Reserved channel ids so collectives sharing an endpoint do not cross
// streams with PDR reduce-scatter traffic (which uses channels 0..P-1).
const (
	treeChannel     = 1 << 20
	halvingChannel  = 1 << 21
	pairwiseChannel = 1 << 22
)

// RecursiveHalvingReduceScatter implements the MPICH short-message
// reduce-scatter: log2(N) rounds of exchanging and reducing half of the
// remaining data. It requires N to be a power of two (MPICH falls back
// otherwise; callers should too). segs must have length N. The rank's
// own fully reduced segment is returned.
//
// Each round's frame is count + (length, payload) per segment, so the
// receive side can walk segment boundaries and reduce each payload in
// place without the decode-re-encode size probing the seed used.
func RecursiveHalvingReduceScatter[V any](ctx context.Context, e *comm.Endpoint, segs []V, ops Ops[V]) (V, error) {
	n := e.Size()
	var zero V
	if len(segs) != n {
		return zero, fmt.Errorf("collective: need %d segments, got %d", n, len(segs))
	}
	if n&(n-1) != 0 {
		return zero, fmt.Errorf("collective: recursive halving requires power-of-two size, got %d", n)
	}
	if n == 1 {
		return segs[0], nil
	}
	r := e.Rank()
	cur := make([]V, n)
	copy(cur, segs)

	sendDone := make(chan error, 1)
	releasable := ops.DecodeReduceInto != nil
	hint := 0
	lo, hi := 0, n // active segment range this rank still contributes to
	round := func(dist int) error {
		sctx, cancel := stepContext(ctx)
		defer cancel()
		// discard drains the in-flight send and releases a received frame
		// no decoded value can alias — the common exit for frame errors.
		discard := func(in []byte) {
			if releasable {
				comm.Release(in)
			}
			drainSend(sctx, sendDone)
		}
		partner := r ^ dist
		mid := lo + (hi-lo)/2
		var sendLo, sendHi, keepLo, keepHi int
		if r&dist == 0 {
			// Keep the lower half, send the upper half.
			sendLo, sendHi, keepLo, keepHi = mid, hi, lo, mid
		} else {
			sendLo, sendHi, keepLo, keepHi = lo, mid, mid, hi
		}
		drawn := comm.GetBuffer(hint)
		wire := appendUint32(drawn[:0], uint32(sendHi-sendLo))
		for i := sendLo; i < sendHi; i++ {
			// Reserve a length slot, encode, then backfill the length.
			slot := len(wire)
			wire = appendUint32(wire, 0)
			wire = ops.Encode(wire, cur[i])
			putUint32(wire[slot:], uint32(len(wire)-slot-4))
		}
		releaseIfAbandoned(drawn, wire)
		hint = len(wire)
		e.SendToAsync(partner, halvingChannel, wire, sendDone)
		in, err := e.RecvFromCtx(sctx, partner, halvingChannel)
		if err != nil {
			drainSend(sctx, sendDone)
			return fmt.Errorf("collective: halving recv: %w", err)
		}
		if len(in) < 4 {
			discard(in)
			return fmt.Errorf("collective: halving short frame")
		}
		cnt := int(uint32At(in, 0))
		if cnt != keepHi-keepLo {
			discard(in)
			return fmt.Errorf("collective: halving count mismatch: got %d want %d", cnt, keepHi-keepLo)
		}
		off := 4
		release := true
		for i := keepLo; i < keepHi; i++ {
			if len(in) < off+4 {
				discard(in)
				return fmt.Errorf("collective: halving truncated frame")
			}
			segLen := int(uint32At(in, off))
			off += 4
			if segLen < 0 || len(in) < off+segLen {
				discard(in)
				return fmt.Errorf("collective: halving truncated segment %d", i)
			}
			acc, rel, err := decodeReduce(ops, cur[i], in[off:off+segLen])
			if err != nil {
				discard(in)
				return err
			}
			cur[i] = acc
			release = release && rel
			off += segLen
		}
		if release && releasable {
			comm.Release(in)
		}
		if err := e.WaitSend(sctx, partner, sendDone); err != nil {
			return fmt.Errorf("collective: halving send: %w", err)
		}
		lo, hi = keepLo, keepHi
		return nil
	}
	for dist := n / 2; dist >= 1; dist /= 2 {
		if err := round(dist); err != nil {
			return zero, err
		}
	}
	if hi-lo != 1 || lo != r {
		return zero, fmt.Errorf("collective: halving ended with range [%d,%d) at rank %d", lo, hi, r)
	}
	return cur[r], nil
}

// PairwiseReduceScatter implements the MPICH long-message
// reduce-scatter: N-1 rounds; in round k rank r sends segment
// (r+k) mod N directly to its final owner and receives its own segment
// slice from rank (r-k+N) mod N. Works for any N. Returns the rank's
// fully reduced segment.
func PairwiseReduceScatter[V any](ctx context.Context, e *comm.Endpoint, segs []V, ops Ops[V]) (V, error) {
	n := e.Size()
	var zero V
	if len(segs) != n {
		return zero, fmt.Errorf("collective: need %d segments, got %d", n, len(segs))
	}
	r := e.Rank()
	acc := segs[r]
	sendDone := make(chan error, 1)
	hint := 0
	round := func(k int) error {
		sctx, cancel := stepContext(ctx)
		defer cancel()
		dst := (r + k) % n
		src := (r - k + n) % n
		wire := encodeInto(ops, comm.GetBuffer(sizeHint(ops, hint, segs[dst])), segs[dst])
		hint = len(wire)
		e.SendToAsync(dst, pairwiseChannel, wire, sendDone)
		in, err := e.RecvFromCtx(sctx, src, pairwiseChannel)
		if err != nil {
			drainSend(sctx, sendDone)
			return fmt.Errorf("collective: pairwise recv: %w", err)
		}
		merged, release, err := decodeReduce(ops, acc, in)
		if release {
			comm.Release(in)
		}
		if err != nil {
			drainSend(sctx, sendDone)
			return err
		}
		acc = merged
		if err := e.WaitSend(sctx, dst, sendDone); err != nil {
			return fmt.Errorf("collective: pairwise send: %w", err)
		}
		return nil
	}
	for k := 1; k < n; k++ {
		if err := round(k); err != nil {
			return zero, err
		}
	}
	return acc, nil
}

// --- tiny local binary helpers (no dependency on serde to keep the
// collective layer reusable under the pure communicator benches) ------

func appendUint32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

func putUint32(dst []byte, v uint32) {
	binary.LittleEndian.PutUint32(dst, v)
}

func putFloat64(dst []byte, f float64) {
	binary.LittleEndian.PutUint64(dst, math.Float64bits(f))
}

func uint32At(src []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(src[i:])
}

func putUint64(dst []byte, v uint64) {
	binary.LittleEndian.PutUint64(dst, v)
}

func uint64At(src []byte, i int) uint64 {
	return binary.LittleEndian.Uint64(src[i:])
}

func float64At(src []byte, i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(src[i:]))
}
