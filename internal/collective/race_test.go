//go:build race

package collective

// raceEnabled reports that this test binary was built with -race, whose
// instrumentation inflates allocation counts and invalidates the
// telemetry overhead gate's baselines.
const raceEnabled = true
