package collective

// Tests for the wire codec layer (DESIGN.md §13): quantize→dequantize
// round-trip error bounds, top-k frame semantics and the dense-fallback
// density threshold, mixed-codec and corrupt-frame rejection, end-to-end
// compressed rings against the dense baseline, error-feedback gains,
// wire accounting (bytes-on-wire reduction must be real, not simulated),
// and chaos: a peer dying mid compressed chunk train must classify.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"sparker/internal/comm"
	"sparker/internal/linalg"
	"sparker/internal/metrics"
	"sparker/internal/transport"
)

func TestParseCodec(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Codec
	}{{"", CodecNone}, {"none", CodecNone}, {"dense", CodecNone}, {"fp16", CodecFP16}, {"int8", CodecInt8}, {"topk", CodecTopK}, {"top-k", CodecTopK}} {
		got, err := ParseCodec(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseCodec(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseCodec("gzip"); err == nil {
		t.Error("ParseCodec accepted an unknown codec")
	}
	if CodecFP16.String() != "fp16" || CodecNone.String() != "none" {
		t.Error("Codec.String mismatch")
	}
}

// TestFP16RoundTripBound: encode/decode of one chunk keeps every
// element within the fp16 quantization bound — relative error ≤ 2⁻¹¹ of
// the element for normal values, absolute error ≤ a tiny fraction of
// the chunk max for values that land in half's subnormal range after
// scaling. With a residual array attached, each residual must be
// exactly the signed error.
func TestFP16RoundTripBound(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(2000)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * math.Ldexp(1, rng.Intn(40)-20)
		}
		m := linalg.MaxAbs(vals)
		res := make([]float64, n)
		buf := make([]byte, 8+2*n)
		fp16Encode(buf, vals, res)

		scale, body, err := quantPayload(buf, n, 2)
		if err != nil {
			t.Fatal(err)
		}
		dec := make([]float64, n)
		fp16SetInto(dec, body, scale)
		for i := range vals {
			e := math.Abs(dec[i] - vals[i])
			bound := math.Max(math.Abs(vals[i])*math.Pow(2, -11), m*math.Pow(2, -24))
			if e > bound {
				t.Fatalf("trial %d element %d: |%g - %g| = %g exceeds fp16 bound %g (chunk max %g)",
					trial, i, dec[i], vals[i], e, bound, m)
			}
			if res[i] != vals[i]-dec[i] {
				t.Fatalf("residual %d: %g, want exact error %g", i, res[i], vals[i]-dec[i])
			}
		}
	}
	// All-zero chunk: scale falls back to 1, decode is exact zeros.
	zero := make([]float64, 16)
	buf := make([]byte, 8+2*16)
	fp16Encode(buf, zero, nil)
	scale, body, _ := quantPayload(buf, 16, 2)
	if scale != 1 {
		t.Errorf("all-zero chunk scale %g, want 1", scale)
	}
	dec := make([]float64, 16)
	fp16SetInto(dec, body, scale)
	for _, v := range dec {
		if v != 0 {
			t.Fatalf("all-zero chunk decoded %g", v)
		}
	}
}

// TestInt8RoundTripBound: the int8 quantizer's error is at most half a
// quantization step (scale/2 = max|v|/254) per element.
func TestInt8RoundTripBound(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(2000)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64()
		}
		m := linalg.MaxAbs(vals)
		res := make([]float64, n)
		buf := make([]byte, 8+n)
		int8Encode(buf, vals, res)
		scale, body, err := quantPayload(buf, n, 1)
		if err != nil {
			t.Fatal(err)
		}
		dec := make([]float64, n)
		int8SetInto(dec, body, scale)
		bound := m/254 + 1e-12
		for i := range vals {
			if e := math.Abs(dec[i] - vals[i]); e > bound {
				t.Fatalf("trial %d element %d: error %g exceeds int8 bound %g", trial, i, e, bound)
			}
			if res[i] != vals[i]-dec[i] {
				t.Fatalf("residual %d: %g, want %g", i, res[i], vals[i]-dec[i])
			}
		}
	}
}

// TestTopKSparseFrame: the sparse encoder emits exactly k pairs in
// strictly increasing index order — the k largest magnitudes plus
// threshold ties — unsent values accumulate whole into the residual,
// and the decoder reproduces exactly the sent values.
func TestTopKSparseFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	const n, k = 1000, 10
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	res := make([]float64, n)
	scratch := make([]float64, n)
	for i, v := range vals {
		scratch[i] = math.Abs(v)
	}
	thr := kthLargestAbs(scratch, k)
	buf := make([]byte, 4+12*k)
	if !topKEncodeSparse(buf, vals, res, k, thr) {
		t.Fatal("sparse encode reported short frame on clean input")
	}
	gotK, idxB, valB, err := topKParse(buf, n)
	if err != nil {
		t.Fatal(err)
	}
	if gotK != k {
		t.Fatalf("parsed k %d, want %d", gotK, k)
	}
	dec := make([]float64, n)
	if err := topKScatterAdd(dec, idxB, valB, 0, k); err != nil {
		t.Fatal(err)
	}
	sent := 0
	for i := range vals {
		if dec[i] != 0 {
			sent++
			if dec[i] != vals[i] {
				t.Fatalf("element %d travelled as %g, want exact %g", i, dec[i], vals[i])
			}
			if res[i] != 0 {
				t.Fatalf("sent element %d left residual %g", i, res[i])
			}
			if math.Abs(vals[i]) < thr {
				t.Fatalf("element %d (|v| %g) sent below threshold %g", i, math.Abs(vals[i]), thr)
			}
		} else if res[i] != vals[i] {
			t.Fatalf("unsent element %d residual %g, want full value %g", i, res[i], vals[i])
		}
	}
	if sent != k {
		t.Fatalf("%d elements decoded, want %d", sent, k)
	}

	// NaN magnitudes defeat the selection: the encoder must report the
	// short frame so the caller can fall back to dense.
	vals[0] = math.NaN()
	for i, v := range vals {
		scratch[i] = math.Abs(v)
	}
	if topKEncodeSparse(buf, vals, res, k, kthLargestAbs(scratch, k)) {
		t.Error("NaN-poisoned selection filled the frame; expected short-frame report")
	}
}

// TestTopKDenseFallbackThreshold drives encodeCodecFrame through the
// density threshold: a ratio that makes 12k ≥ 8n must produce the
// dense-sentinel payload (sparse framing would be larger), a small
// ratio the sparse payload, and both must stamp the codec byte into the
// chunk-meta index word.
func TestTopKDenseFallbackThreshold(t *testing.T) {
	const n = 96
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	run := func(ratio float64) (payload []byte, idxWord uint32) {
		rc := &ringChan[[]float64]{stride: 8}
		rc.floats = F64Ops().Floats
		rc.comp = Compression{Codec: CodecTopK, TopKRatio: ratio}
		wire := rc.encodeCodecFrame(0, vals, 0, 1, 0, n, n)
		defer comm.Release(wire)
		hs := epochHeaderSize
		idxWord = uint32At(wire, hs)
		payload = append([]byte(nil), wire[hs+chunkMetaSize:]...)
		return payload, idxWord
	}

	// ratio 0.9: k = 86, 12·86 = 1032 ≥ 768 = 8·96 → dense fallback.
	payload, idxWord := run(0.9)
	if Codec(idxWord>>24) != CodecTopK {
		t.Fatalf("codec byte %d, want %d", idxWord>>24, CodecTopK)
	}
	if got := uint32At(payload, 0); got != topKDenseSentinel {
		t.Fatalf("dense fallback sentinel missing (nnz word %#x)", got)
	}
	if len(payload) != 4+8*n {
		t.Fatalf("dense fallback payload %d bytes, want %d", len(payload), 4+8*n)
	}

	// ratio 0.25: k = 24, 12·24 = 288 < 768 → sparse frame.
	payload, idxWord = run(0.25)
	if Codec(idxWord>>24) != CodecTopK {
		t.Fatalf("codec byte %d, want %d", idxWord>>24, CodecTopK)
	}
	k, _, _, err := topKParse(payload, n)
	if err != nil {
		t.Fatal(err)
	}
	if k != 24 {
		t.Fatalf("sparse frame k %d, want 24", k)
	}
	if len(payload) != 4+12*24 {
		t.Fatalf("sparse payload %d bytes, want %d", len(payload), 4+12*24)
	}
}

// TestCheckTrainRejectsCodecViolations extends the corrupt-frame table
// to the codec dimension: unknown codec ids, compressed frames against
// float-less ops, codec changes mid-train, and payload sizes that do
// not match the declared codec must all fail loudly.
func TestCheckTrainRejectsCodecViolations(t *testing.T) {
	withView := &ringChan[[]float64]{stride: 8, floats: F64Ops().Floats}
	fp16 := func(n int) []byte { return make([]byte, 8+2*n) }

	// Unknown codec id.
	fr := frame{chunked: true, idx: 0, total: 2, elemCnt: 4, elemAll: 8, codec: Codec(9), payload: fp16(4)}
	if err := withView.checkTrain(fr, 0, -1); err == nil || !strings.Contains(err.Error(), "unknown codec") {
		t.Errorf("unknown codec: %v", err)
	}
	// Compressed frame against ops with no float view.
	noView := &ringChan[[]float64]{stride: 8}
	fr.codec = CodecFP16
	if err := noView.checkTrain(fr, 0, -1); err == nil || !strings.Contains(err.Error(), "float view") {
		t.Errorf("no float view: %v", err)
	}
	// Mixed codec mid-train: first frame fixes fp16, second claims int8.
	if err := withView.checkTrain(fr, 0, -1); err != nil {
		t.Fatalf("valid fp16 first chunk rejected: %v", err)
	}
	second := frame{chunked: true, idx: 1, total: 2, elemCnt: 4, elemAll: 8, codec: CodecInt8, payload: make([]byte, 8+4)}
	if err := withView.checkTrain(second, 1, 2); err == nil || !strings.Contains(err.Error(), "mixed-codec") {
		t.Errorf("mixed codec: %v", err)
	}
	// Same train continuing in fp16 passes.
	second.codec = CodecFP16
	second.payload = fp16(4)
	if err := withView.checkTrain(second, 1, 2); err != nil {
		t.Errorf("consistent codec rejected: %v", err)
	}
	// Codec payload length mismatches.
	bad := frame{chunked: true, idx: 0, total: 2, elemCnt: 4, elemAll: 8, codec: CodecFP16, payload: make([]byte, 7)}
	if err := withView.checkTrain(bad, 0, -1); err == nil {
		t.Error("short fp16 payload accepted")
	}
	bad.codec = CodecInt8
	bad.payload = make([]byte, 8+5)
	if err := withView.checkTrain(bad, 0, -1); err == nil {
		t.Error("wrong int8 payload accepted")
	}
	bad.codec = CodecTopK
	bad.payload = make([]byte, 3)
	if err := withView.checkTrain(bad, 0, -1); err == nil {
		t.Error("top-k payload shorter than nnz word accepted")
	}

	// Corrupt top-k bodies are rejected at decode: truncated pair arrays,
	// nnz beyond the chunk, and non-increasing indices.
	if _, _, _, err := topKParse(make([]byte, 4+11), 100); err == nil {
		t.Error("truncated top-k pair array accepted")
	}
	over := make([]byte, 4+12*5)
	putUint32(over, 5)
	if _, _, _, err := topKParse(over, 3); err == nil {
		t.Error("top-k nnz beyond elemCnt accepted")
	}
	dup := make([]byte, 4+12*2)
	putUint32(dup, 2)
	putUint32(dup[4:], 7)
	putUint32(dup[8:], 7) // duplicate index
	if k, idxB, valB, err := topKParse(dup, 100); err != nil {
		t.Fatal(err)
	} else if err := topKScatterAdd(make([]float64, 100), idxB, valB, 0, k); err == nil {
		t.Error("duplicate top-k index accepted by scatter-add")
	}
}

// TestCompressionRequiresFloatView: a codec request against ops without
// the float view must fail the collective up front, not mid-train.
func TestCompressionRequiresFloatView(t *testing.T) {
	ops := F64Ops()
	ops.Floats = nil
	ctx := WithCompression(context.Background(), Compression{Codec: CodecFP16})
	net := transport.NewMem()
	defer net.Close()
	eps, err := comm.NewGroup(net, "codec-refuse", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseGroup(eps)
	_, err = RingReduceScatter(ctx, eps[0], [][]float64{{1}, {2}}, 1, ops)
	if err == nil || !strings.Contains(err.Error(), "Floats view") {
		t.Fatalf("float-less ops accepted compression: %v", err)
	}
}

// runCompressedRS runs ring reduce-scatter under comp for every rank
// (each rank gets its own residual state, like one executor each) and
// returns owned segments keyed by global index.
func runCompressedRS(t *testing.T, name string, n, p int, inputs [][][]float64, chunkBytes int, comp Compression) map[int][]float64 {
	t.Helper()
	cp := deepCopySegs(inputs)
	states := make([]*CompressionState, n)
	for r := range states {
		states[r] = NewCompressionState()
	}
	var mu sync.Mutex
	got := map[int][]float64{}
	runGroup(t, n, name, func(e *comm.Endpoint) error {
		c := comp
		if c.ErrorFeedback && c.State == nil {
			c.State = states[e.Rank()]
		}
		ctx := WithCompression(WithChunkBytes(context.Background(), chunkBytes), c)
		owned, err := RingReduceScatter(ctx, e, cp[e.Rank()], p, F64Ops())
		if err != nil {
			return err
		}
		mu.Lock()
		for i, v := range owned {
			got[i] = v
		}
		mu.Unlock()
		return nil
	})
	return got
}

// TestCompressedRingCloseToDense: the quantizing codecs must reproduce
// the dense reduce-scatter within their accumulated quantization bounds
// — each of the N−1 hops re-quantizes, so the tolerance is a few
// quantization steps of the running maximum.
func TestCompressedRingCloseToDense(t *testing.T) {
	const n, p, segLen = 4, 2, 2048
	rng := rand.New(rand.NewSource(31))
	inputs := makeDenseInputs(rng, n, p*n, segLen)
	dense := runRSVariant(t, "codec-dense", n, p, inputs, WithChunkBytes(context.Background(), 4096))

	for _, tc := range []struct {
		codec Codec
		tol   float64 // ∞-norm error tolerance relative to the dense ∞-norm
	}{
		{CodecFP16, 0.01},
		{CodecInt8, 0.05},
	} {
		t.Run(tc.codec.String(), func(t *testing.T) {
			got := runCompressedRS(t, "codec-"+tc.codec.String(), n, p, inputs, 4096, Compression{Codec: tc.codec})
			if len(got) != len(dense) {
				t.Fatalf("owned %d segments, dense owned %d", len(got), len(dense))
			}
			for i, want := range dense {
				m := linalg.MaxAbs(want)
				for j := range want {
					if e := math.Abs(got[i][j] - want[j]); e > tc.tol*m {
						t.Fatalf("segment %d element %d: compressed %g vs dense %g (err %g > %g)",
							i, j, got[i][j], want[j], e, tc.tol*m)
					}
				}
			}
		})
	}
}

// TestTopKExactOnSparseData: when every chunk has at most k non-zeros,
// top-k frames carry the values exactly and the sparse-aware
// scatter-add reduce must be bitwise identical to the dense ring — the
// codec's home turf, and the proof the sharded scatter-add reduces
// correctly.
func TestTopKExactOnSparseData(t *testing.T) {
	const (
		n, p       = 4, 1
		segLen     = 4096
		chunkBytes = 8192 // 1024-elem chunks wire-sized pre-compression
	)
	rng := rand.New(rand.NewSource(37))
	// ≤8 non-zeros per 1024-element chunk at shared positions (multiples
	// of 128), below k = 1% of 1024 ≈ 10.
	inputs := make([][][]float64, n)
	for r := range inputs {
		inputs[r] = make([][]float64, p*n)
		for i := range inputs[r] {
			seg := make([]float64, segLen)
			for j := 0; j < segLen; j += 128 {
				seg[j] = rng.NormFloat64()
			}
			inputs[r][i] = seg
		}
	}
	dense := runRSVariant(t, "topk-dense", n, p, inputs, WithChunkBytes(context.Background(), chunkBytes))
	got := runCompressedRS(t, "topk-sparse", n, p, inputs, chunkBytes, Compression{Codec: CodecTopK, TopKRatio: 0.01})
	for i, want := range dense {
		requireBitwiseEqual(t, fmt.Sprintf("segment %d", i), got[i], want)
	}
}

// TestCompressedAllReduceConverges: compression through reduce-scatter
// AND allgather — every rank must assemble the same result, close to
// the dense allreduce.
func TestCompressedAllReduceConverges(t *testing.T) {
	const n, p, segLen = 4, 1, 1024
	rng := rand.New(rand.NewSource(41))
	inputs := makeDenseInputs(rng, n, p*n, segLen)

	run := func(name string, ctx context.Context) [][][]float64 {
		cp := deepCopySegs(inputs)
		results := make([][][]float64, n)
		runGroup(t, n, name, func(e *comm.Endpoint) error {
			all, err := RingAllReduce(ctx, e, cp[e.Rank()], p, F64Ops())
			if err != nil {
				return err
			}
			results[e.Rank()] = all
			return nil
		})
		return results
	}
	dense := run("ar-codec-dense", WithChunkBytes(context.Background(), 2048))
	comp := run("ar-codec-fp16", WithCompression(WithChunkBytes(context.Background(), 2048), Compression{Codec: CodecFP16}))

	// Lossy allgather consistency: the segment's owner keeps its exact
	// float64 reduction, every other rank decodes the same forwarded fp16
	// frames — so each segment shows at most two distinct bit patterns
	// across the cluster (owner's exact one, everyone else's decoded one).
	for i := range comp[0] {
		distinct := map[string]int{}
		for r := 0; r < n; r++ {
			key := fmt.Sprintf("%x", comp[r][i])
			distinct[key]++
		}
		switch len(distinct) {
		case 1: // quantization happened to be exact
		case 2:
			for _, cnt := range distinct {
				if cnt != 1 && cnt != n-1 {
					t.Fatalf("segment %d: bit-pattern split %v across ranks, want owner vs the %d decoders", i, distinct, n-1)
				}
			}
		default:
			t.Fatalf("segment %d: %d distinct results across ranks, want ≤ 2 (owner + decoders)", i, len(distinct))
		}
	}
	for i := range dense[0] {
		m := linalg.MaxAbs(dense[0][i])
		for j := range dense[0][i] {
			if e := math.Abs(comp[0][i][j] - dense[0][i][j]); e > 0.01*m {
				t.Fatalf("segment %d element %d: fp16 allreduce %g vs dense %g", i, j, comp[0][i][j], dense[0][i][j])
			}
		}
	}
}

// TestErrorFeedbackReducesBias: with the same inputs reduced every
// iteration under the coarse int8 codec, plain quantization commits the
// same signed error each time — the running average of results stays
// biased. Error feedback re-injects each iteration's error into the
// next, so the running average converges toward the dense result. The
// time-averaged error with EF must come in well under the no-EF bias.
func TestErrorFeedbackReducesBias(t *testing.T) {
	const (
		n, p, segLen = 4, 1, 512
		iters        = 12
	)
	rng := rand.New(rand.NewSource(43))
	inputs := makeDenseInputs(rng, n, p*n, segLen)
	dense := runRSVariant(t, "ef-dense", n, p, inputs, WithChunkBytes(context.Background(), 2048))

	avgErr := func(name string, comp Compression, states []*CompressionState) float64 {
		sum := map[int][]float64{}
		for it := 0; it < iters; it++ {
			cp := deepCopySegs(inputs)
			var mu sync.Mutex
			runGroup(t, n, fmt.Sprintf("%s-it%d", name, it), func(e *comm.Endpoint) error {
				c := comp
				if states != nil {
					c.State = states[e.Rank()]
				}
				ctx := WithCompression(WithChunkBytes(context.Background(), 2048), c)
				owned, err := RingReduceScatter(ctx, e, cp[e.Rank()], p, F64Ops())
				if err != nil {
					return err
				}
				mu.Lock()
				for i, v := range owned {
					if sum[i] == nil {
						sum[i] = make([]float64, len(v))
					}
					linalg.AddAssign(sum[i], v)
				}
				mu.Unlock()
				return nil
			})
		}
		var total float64
		for i, want := range dense {
			for j := range want {
				total += math.Abs(sum[i][j]/iters - want[j])
			}
		}
		return total
	}

	plain := avgErr("ef-off", Compression{Codec: CodecInt8}, nil)
	states := make([]*CompressionState, n)
	for r := range states {
		states[r] = NewCompressionState()
	}
	ef := avgErr("ef-on", Compression{Codec: CodecInt8, ErrorFeedback: true}, states)
	t.Logf("time-averaged L1 error over %d iterations: plain %.4f, EF %.4f", iters, plain, ef)
	if ef >= plain*0.5 {
		t.Fatalf("error feedback did not reduce the quantization bias: EF %.4f vs plain %.4f", ef, plain)
	}
}

// TestCompressedWireAccounting proves the compression is real wire
// bytes, not bookkeeping: exact sent-byte counts for an fp16 ring, and
// the raw/wire histogram ratio — the number the bench reports as
// bytes-on-wire reduction — must come out at the codec's ~4×.
func TestCompressedWireAccounting(t *testing.T) {
	const (
		n, p       = 4, 1
		segLen     = 4096
		chunkBytes = 8192
	)
	net := transport.NewMem()
	defer net.Close()
	eps, err := comm.NewGroup(net, "codec-wire", n)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseGroup(eps)
	rng := rand.New(rand.NewSource(47))
	inputs, want := makeInputs(rng, n, p*n, segLen)

	regs := make([]*metrics.Registry, n)
	var (
		mu  sync.Mutex
		got = map[int][]float64{}
		wg  sync.WaitGroup
	)
	for _, e := range eps {
		wg.Add(1)
		go func(e *comm.Endpoint) {
			defer wg.Done()
			regs[e.Rank()] = metrics.NewRegistry()
			ctx := metrics.NewContext(context.Background(), regs[e.Rank()])
			ctx = WithCompression(WithChunkBytes(ctx, chunkBytes), Compression{Codec: CodecFP16})
			owned, err := RingReduceScatter(ctx, e, inputs[e.Rank()], p, F64Ops())
			if err != nil {
				t.Errorf("rank %d: %v", e.Rank(), err)
				return
			}
			mu.Lock()
			for i, v := range owned {
				got[i] = v
			}
			mu.Unlock()
		}(e)
	}
	wg.Wait()
	for i := range want {
		m := linalg.MaxAbs(want[i])
		for j := range want[i] {
			if e := math.Abs(got[i][j] - want[i][j]); e > 0.01*math.Max(m, 1) {
				t.Fatalf("segment %d element %d: wrong sum (%g vs %g)", i, j, got[i][j], want[i][j])
			}
		}
	}

	// chunkElems = chunkBytes/2 = 4096 → the whole segment is one codec
	// chunk per step: header + meta + scale + 2 bytes per element.
	steps := int64((n - 1) * p)
	frameBytes := int64(epochHeaderSize + chunkMetaSize + 8 + 2*segLen)
	rawBytes := int64(epochHeaderSize + chunkMetaSize + 8*segLen)
	for _, e := range eps {
		st := e.Stats()
		if st.MsgsSent != steps {
			t.Fatalf("rank %d sent %d messages, want %d", e.Rank(), st.MsgsSent, steps)
		}
		if st.BytesSent != steps*frameBytes {
			t.Fatalf("rank %d sent %d bytes, want %d", e.Rank(), st.BytesSent, steps*frameBytes)
		}
	}
	var wireSum, rawSum int64
	for _, reg := range regs {
		wireSum += reg.Histogram(metrics.HistRingStepBytes).Snapshot().Sum
		rawSum += reg.Histogram(metrics.HistRingStepRawBytes).Snapshot().Sum
	}
	if wireSum != int64(n)*steps*frameBytes || rawSum != int64(n)*steps*rawBytes {
		t.Fatalf("histograms: wire %d raw %d, want %d and %d", wireSum, rawSum, int64(n)*steps*frameBytes, int64(n)*steps*rawBytes)
	}
	if ratio := float64(rawSum) / float64(wireSum); ratio < 3.9 {
		t.Fatalf("bytes-on-wire reduction %.2f×, want ≥ 3.9× for fp16", ratio)
	}
}

// TestDenseWireByteIdentical is the codec-0 contract: with the codec
// layer compiled in but no codec selected, the wire must remain
// byte-identical to the pre-codec format — same message count, same
// byte count, bit-identical results (the existing bitwise suites cover
// values; this pins the framing).
func TestDenseWireByteIdentical(t *testing.T) {
	const (
		n, p       = 4, 1
		segLen     = 4096
		chunkBytes = 8192
		chunks     = 4
	)
	net := transport.NewMem()
	defer net.Close()
	eps, err := comm.NewGroup(net, "codec-off-wire", n)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseGroup(eps)
	rng := rand.New(rand.NewSource(53))
	inputs, _ := makeInputs(rng, n, p*n, segLen)
	var wg sync.WaitGroup
	for _, e := range eps {
		wg.Add(1)
		go func(e *comm.Endpoint) {
			defer wg.Done()
			// An explicit zero Compression must leave the wire untouched.
			ctx := WithCompression(WithChunkBytes(context.Background(), chunkBytes), Compression{})
			if _, err := RingReduceScatter(ctx, e, inputs[e.Rank()], p, F64Ops()); err != nil {
				t.Errorf("rank %d: %v", e.Rank(), err)
			}
		}(e)
	}
	wg.Wait()
	wantMsgs := int64((n - 1) * p * chunks)
	wantBytes := int64(n-1) * int64(p) * int64(chunks*(epochHeaderSize+chunkMetaSize)+8*segLen)
	for _, e := range eps {
		st := e.Stats()
		if st.MsgsSent != wantMsgs || st.BytesSent != wantBytes {
			t.Fatalf("rank %d: %d msgs / %d bytes with codec none, want the dense %d / %d",
				e.Rank(), st.MsgsSent, st.BytesSent, wantMsgs, wantBytes)
		}
	}
}

// TestChaosKillMidCompressedTrain: a peer dying in the middle of a
// compressed chunk train must classify on every rank within the same
// ripple bound as the dense mid-train kill — the codec layer must not
// turn a classified failure into a hang or an unclassified error.
func TestChaosKillMidCompressedTrain(t *testing.T) {
	const (
		n            = 4
		p            = 1
		segLen       = 4096
		chunkBytes   = 1024 // 512-elem fp16 chunks → 8-chunk trains
		stepDeadline = 500 * time.Millisecond
	)
	before := runtime.NumGoroutine()
	group := "chaos-midcodec"
	victim := transport.Addr(fmt.Sprintf("comm/%s/%d", group, 1))
	net := transport.NewFaulty(transport.NewMem(), 1, &transport.FaultRule{
		Match:     func(a transport.Addr) bool { return a == victim },
		Kind:      transport.FaultKill,
		AfterMsgs: 3, // handshake + 2 compressed chunks pass; dies mid-train
	})
	defer net.Close()
	rng := rand.New(rand.NewSource(59))
	inputs, _ := makeInputs(rng, n, p*n, segLen)
	errs, elapsed := runChaosGroup(t, net, n, group, func(e *comm.Endpoint) error {
		ctx := WithChunkBytes(WithStepDeadline(context.Background(), stepDeadline), chunkBytes)
		ctx = WithCompression(ctx, Compression{Codec: CodecFP16, ErrorFeedback: true})
		_, err := RingAllReduce(ctx, e, inputs[e.Rank()], p, F64Ops())
		return err
	})
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d: mid-train kill under compression must fail the collective", r)
		}
		if !classified(err) {
			t.Fatalf("rank %d: unclassified error %v", r, err)
		}
	}
	if limit := time.Duration(2*(n-1)+2) * stepDeadline; elapsed > limit {
		t.Fatalf("classification took %v, want <= %v", elapsed, limit)
	}
	chaosSettle(t, before)
}
