package collective

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"sparker/internal/comm"
	"sparker/internal/metrics"
	"sparker/internal/trace"
	"sparker/internal/transport"
)

// runTracedRing runs one P-channel allreduce (reduce-scatter then
// allgather) across n ranks, giving each rank its own tracer context
// built by setup. Returns the first error.
func runTracedRing(t *testing.T, name string, n, p, segLen int, setup func(rank int) context.Context) {
	t.Helper()
	net := transport.NewMem()
	defer net.Close()
	eps, err := comm.NewGroup(net, name, n)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseGroup(eps)

	var wg sync.WaitGroup
	errs := make([]error, n)
	for _, e := range eps {
		wg.Add(1)
		go func(e *comm.Endpoint) {
			defer wg.Done()
			segs := make([][]float64, p*n)
			for i := range segs {
				seg := make([]float64, segLen)
				for j := range seg {
					seg[j] = float64(e.Rank() + i + j)
				}
				segs[i] = seg
			}
			_, errs[e.Rank()] = RingAllReduce(setup(e.Rank()), e, segs, p, F64Ops())
		}(e)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// TestRingStepSpans verifies the tentpole's collective layer: a traced
// ring emits one "ring-step" span per pipelined step with the op,
// channel, step, epoch and bytes attributes, parented on the span in
// the collective's context, and carrying the peer's span ID picked out
// of the frame header.
func TestRingStepSpans(t *testing.T) {
	const (
		n      = 3
		p      = 2
		segLen = 8
	)
	exps := make([]*trace.MemExporter, n)
	parents := make([]*trace.ActiveSpan, n)
	regs := make([]*metrics.Registry, n)
	runTracedRing(t, "traced-ring", n, p, segLen, func(rank int) context.Context {
		exps[rank] = &trace.MemExporter{}
		tr := trace.New(exps[rank])
		parents[rank] = tr.StartRoot("task")
		regs[rank] = metrics.NewRegistry()
		ctx := trace.WithSpan(context.Background(), parents[rank])
		ctx = metrics.NewContext(ctx, regs[rank])
		return WithEpoch(ctx, 42)
	})

	// Each rank runs (n-1) reduce-scatter + (n-1) allgather steps per
	// channel.
	wantSteps := 2 * (n - 1) * p
	for rank := 0; rank < n; rank++ {
		steps := exps[rank].Named("ring-step")
		if len(steps) != wantSteps {
			t.Fatalf("rank %d emitted %d ring-step spans, want %d", rank, len(steps), wantSteps)
		}
		ops := map[string]int{}
		withPeer := 0
		for _, s := range steps {
			if s.ParentID != parents[rank].Context().SpanID {
				t.Errorf("rank %d step parented on %x, want task span %x",
					rank, s.ParentID, parents[rank].Context().SpanID)
			}
			op, _ := s.Attr("op")
			ops[op]++
			for _, key := range []string{"channel", "step", "bytes"} {
				if _, ok := s.Attr(key); !ok {
					t.Errorf("rank %d %s step missing %q attr", rank, op, key)
				}
			}
			if e, _ := s.Attr("epoch"); e != "42" {
				t.Errorf("rank %d step epoch attr = %q, want 42", rank, e)
			}
			if v, ok := s.Attr("peer_span"); ok && v != "0" {
				withPeer++
			}
		}
		if ops["reduce-scatter"] != (n-1)*p || ops["allgather"] != (n-1)*p {
			t.Errorf("rank %d op counts = %v", rank, ops)
		}
		// Every received frame came from a traced sender, so every step
		// must have stitched the peer's span ID out of the header.
		if withPeer != wantSteps {
			t.Errorf("rank %d: %d/%d steps carry a peer span", rank, withPeer, wantSteps)
		}
		// Histograms saw the same steps.
		if c := regs[rank].Histogram(metrics.HistRingStepNS).Count(); c != int64(wantSteps) {
			t.Errorf("rank %d ring-step latency histogram has %d samples, want %d", rank, c, wantSteps)
		}
		if c := regs[rank].Histogram(metrics.HistRingStepBytes).Count(); c != int64(wantSteps) {
			t.Errorf("rank %d ring-step bytes histogram has %d samples, want %d", rank, c, wantSteps)
		}
		wantBytes := int64(wantSteps) * int64(epochHeaderSize+spanIDSize+4+8*segLen)
		if s := regs[rank].Histogram(metrics.HistRingStepBytes).Sum(); s != wantBytes {
			t.Errorf("rank %d wire bytes sum = %d, want %d", rank, s, wantBytes)
		}
	}
}

// TestMetricsOnlyRing checks the registry-without-tracer configuration:
// histograms record every step, no spans exist anywhere, and the wire
// frames stay in the untraced PR 2 format (no span header bytes).
func TestMetricsOnlyRing(t *testing.T) {
	const (
		n      = 2
		p      = 1
		segLen = 4
	)
	regs := make([]*metrics.Registry, n)
	runTracedRing(t, "metrics-only", n, p, segLen, func(rank int) context.Context {
		regs[rank] = metrics.NewRegistry()
		return metrics.NewContext(context.Background(), regs[rank])
	})
	wantSteps := 2 * (n - 1) * p
	for rank := 0; rank < n; rank++ {
		if c := regs[rank].Histogram(metrics.HistRingStepNS).Count(); c != int64(wantSteps) {
			t.Fatalf("rank %d latency samples = %d, want %d", rank, c, wantSteps)
		}
		// Untraced frames carry only the 4-byte epoch header.
		wantBytes := int64(wantSteps) * int64(epochHeaderSize+4+8*segLen)
		if s := regs[rank].Histogram(metrics.HistRingStepBytes).Sum(); s != wantBytes {
			t.Fatalf("rank %d wire bytes sum = %d, want %d (untraced frame format)", rank, s, wantBytes)
		}
	}
}

// TestTracedUntracedInterop runs a ring where only rank 0 traces: the
// span-flagged frames must decode cleanly on untraced ranks and vice
// versa (the wire extension is per-frame, not per-ring).
func TestTracedUntracedInterop(t *testing.T) {
	const (
		n      = 3
		p      = 1
		segLen = 6
	)
	exp := &trace.MemExporter{}
	runTracedRing(t, "interop", n, p, segLen, func(rank int) context.Context {
		if rank != 0 {
			return context.Background()
		}
		tr := trace.New(exp)
		root := tr.StartRoot("task")
		return trace.WithSpan(context.Background(), root)
	})
	steps := exp.Named("ring-step")
	if want := 2 * (n - 1) * p; len(steps) != want {
		t.Fatalf("traced rank emitted %d steps, want %d", len(steps), want)
	}
	// Rank 0's predecessor (rank n-1) is untraced, so its frames carry
	// no span ID: rank 0's steps must record peer_span only as absent.
	for _, s := range steps {
		if v, ok := s.Attr("peer_span"); ok && v != "0" {
			t.Errorf("step stitched peer span %q from an untraced sender", v)
		}
	}
}

// TestUntracedRingEmitsNothing pins the disabled path: a plain context
// yields no spans, and fresh registries created after the run see no
// samples (nothing global leaked).
func TestUntracedRingEmitsNothing(t *testing.T) {
	runTracedRing(t, "untraced", 2, 1, 4, func(rank int) context.Context {
		return context.Background()
	})
	// Nothing to assert on spans (no exporter existed); the test's value
	// is that the run completes and the race detector sees no telemetry
	// state being touched.
}

// TestEpochMaskInterop pins the wire-format invariant behind the span
// flag: epochs at or above 1<<31 must not be mistaken for traced
// frames, and masked comparison still matches.
func TestEpochMaskInterop(t *testing.T) {
	const bigEpoch = uint32(1)<<31 | 7 // top bit set in the raw epoch
	net := transport.NewMem()
	defer net.Close()
	eps, err := comm.NewGroup(net, "epoch-mask", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseGroup(eps)

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for _, e := range eps {
		wg.Add(1)
		go func(e *comm.Endpoint) {
			defer wg.Done()
			ctx := WithEpoch(context.Background(), bigEpoch)
			segs := [][]float64{{1, 2}, {3, 4}}
			_, errs[e.Rank()] = RingReduceScatter(ctx, e, segs, 1, F64Ops())
		}(e)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, fmt.Errorf("masked epoch broke the ring: %w", err))
		}
	}
}
