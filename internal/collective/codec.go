package collective

// Wire-level compression codecs for the pipelined chunk train
// (DESIGN.md §13).
//
// A compressing sender replaces each chunk's fixed-stride float64
// payload with a codec payload and stamps the codec id into the top
// byte of the chunk-meta index word (codec 0 keeps the index word — and
// the whole frame — byte-identical to the uncompressed format).
// Receivers dispatch on the frame's own codec byte, so a compressing
// rank interoperates with a dense one, while a pre-codec receiver sees
// a huge chunk index and fails the train check loudly instead of
// mis-parsing the payload.
//
// Codec payloads (after the epoch/span/chunk-meta header):
//
//	fp16:  [8B float64 scale][2B half × elemCnt]
//	int8:  [8B float64 scale][1B signed × elemCnt]
//	topk:  [4B nnz][4B uint32 chunk-relative index × nnz, strictly
//	       increasing][8B float64 value × nnz]
//	       — or, when 12·k ≥ 8·n would make sparse framing larger,
//	       the dense fallback [4B 0xFFFFFFFF][8B float64 × elemCnt]
//
// Quantizing codecs scale per chunk (scale = max|v|/codec-max), so each
// chunk uses the codec's full dynamic range. With error feedback on,
// the quantization error of every element is held in a per-(channel,
// segment) residual at the sender and added back into the values before
// the next encode of that segment — the EF-SGD construction that keeps
// lossy training convergent.

import (
	"context"
	"fmt"
	"math"
	"sync"

	"sparker/internal/comm"
	"sparker/internal/linalg"
)

// Codec identifies a wire compression codec. The zero value is the
// uncompressed (bitwise-exact) dense format.
type Codec uint8

// Wire codec ids. The id travels in the top byte of the chunk-meta
// index word, so values are limited to one byte and CodecNone must stay
// zero to keep uncompressed frames byte-identical to the PR 4 format.
const (
	CodecNone Codec = 0
	CodecFP16 Codec = 1
	CodecInt8 Codec = 2
	CodecTopK Codec = 3
)

// String implements fmt.Stringer.
func (c Codec) String() string {
	switch c {
	case CodecNone:
		return "none"
	case CodecFP16:
		return "fp16"
	case CodecInt8:
		return "int8"
	case CodecTopK:
		return "topk"
	default:
		return fmt.Sprintf("codec(%d)", uint8(c))
	}
}

// ParseCodec converts a config string ("none", "fp16", "int8", "topk")
// into a Codec.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "", "none", "dense":
		return CodecNone, nil
	case "fp16":
		return CodecFP16, nil
	case "int8":
		return CodecInt8, nil
	case "topk", "top-k":
		return CodecTopK, nil
	default:
		return 0, fmt.Errorf("collective: unknown codec %q (none, fp16, int8, topk)", s)
	}
}

const (
	// defaultTopKRatio is the fraction of elements a top-k chunk keeps
	// when the caller does not choose one — the paper-adjacent k=1%.
	defaultTopKRatio = 0.01
	// f16Max is the largest finite binary16 value; the fp16 scale maps
	// the chunk's max|v| onto it.
	f16Max = 65504.0
	// topKDenseSentinel in the nnz word marks a dense-fallback top-k
	// payload (raw float64 words follow instead of index/value arrays).
	topKDenseSentinel = ^uint32(0)
	// chunkIdxMask masks the chunk index out of the meta index word; the
	// top byte is the codec id.
	chunkIdxMask = uint32(0xFFFFFF)
)

// Compression selects a wire codec for the collectives run under a
// context. The zero value means dense, bitwise-exact frames.
type Compression struct {
	// Codec picks the wire format.
	Codec Codec
	// TopKRatio is the fraction of elements a CodecTopK chunk keeps
	// (default 0.01). Ignored by the quantizing codecs.
	TopKRatio float64
	// ErrorFeedback re-injects each element's quantization error into
	// the next encode of the same segment, accumulated in State. Without
	// it the error of every iteration is simply dropped.
	ErrorFeedback bool
	// State holds the error-feedback residuals per (channel, segment).
	// It must be the same object across iterations for feedback to work
	// (core.Aggregate attaches a per-executor state); nil with
	// ErrorFeedback set gets a fresh state per collective, which degrades
	// to dropping the error.
	State *CompressionState
}

func (c Compression) enabled() bool { return c.Codec != CodecNone }

// efOn reports whether encode paths should maintain residuals.
func (c Compression) efOn() bool { return c.ErrorFeedback && c.State != nil }

// wireBytesPerElem estimates the post-compression payload bytes per
// element — what the adaptive chunk controller sizes chunks by, so a
// chunk-bytes target keeps meaning *wire* bytes when a codec shrinks
// the payload.
func (c Compression) wireBytesPerElem() float64 {
	switch c.Codec {
	case CodecFP16:
		return 2
	case CodecInt8:
		return 1
	case CodecTopK:
		b := c.TopKRatio * 12
		if b < 1 {
			b = 1
		}
		return b
	default:
		return 8
	}
}

// CompressionState holds error-feedback residuals keyed by
// (channel, global segment index). One state per executor, shared
// across iterations; channels touch distinct keys, so the lock is held
// only for the map lookup at step start.
type CompressionState struct {
	mu  sync.Mutex
	res map[uint64][]float64
}

// NewCompressionState returns an empty residual store.
func NewCompressionState() *CompressionState {
	return &CompressionState{res: make(map[uint64][]float64)}
}

func efKey(ch, seg int) uint64 { return uint64(uint32(ch))<<32 | uint64(uint32(seg)) }

// residual returns the persistent residual slice for key, created (or
// reset on a dimension change, e.g. a different model size) as zeros.
func (s *CompressionState) residual(key uint64, n int) []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.res[key]
	if len(r) != n {
		r = make([]float64, n)
		s.res[key] = r
	}
	return r
}

// compressionKey carries the codec choice through a context.
type compressionKey struct{}

// WithCompression selects a wire codec for the collectives run under
// ctx. The zero Compression (CodecNone) keeps the default dense,
// bitwise-exact frames.
func WithCompression(ctx context.Context, c Compression) context.Context {
	return context.WithValue(ctx, compressionKey{}, c)
}

// CompressionFrom reports the codec choice carried by ctx.
func CompressionFrom(ctx context.Context) Compression {
	c, _ := ctx.Value(compressionKey{}).(Compression)
	return c
}

// resolveCompression validates the context's codec choice against the
// ops once per collective: compression rides the chunk train, so it
// needs the full chunk fast path plus the Floats view over 8-byte
// float64 elements. Defaults (top-k ratio, ad-hoc EF state) are filled
// here so the hot path never re-checks them.
func resolveCompression[V any](ctx context.Context, ops Ops[V]) (Compression, error) {
	comp := CompressionFrom(ctx)
	if !comp.enabled() {
		return Compression{}, nil
	}
	if comp.Codec > CodecTopK {
		return Compression{}, fmt.Errorf("collective: unknown codec %d", uint8(comp.Codec))
	}
	if !chunkCapable(ops) || ops.Floats == nil {
		return Compression{}, fmt.Errorf("collective: codec %s requires chunk-capable ops with a Floats view", comp.Codec)
	}
	if ops.ChunkEncodedSize(1) != 8 {
		return Compression{}, fmt.Errorf("collective: codec %s requires 8-byte float64 elements, ops have stride %d", comp.Codec, ops.ChunkEncodedSize(1))
	}
	if comp.TopKRatio <= 0 || comp.TopKRatio > 1 {
		comp.TopKRatio = defaultTopKRatio
	}
	if comp.ErrorFeedback && comp.State == nil {
		comp.State = NewCompressionState()
	}
	return comp, nil
}

// --- encode -------------------------------------------------------------

// encodeCodecFrame builds one compressed chunk frame as an exactly-sized
// pooled draw. res, when non-nil, is the persistent residual range for
// this chunk: the encoder adds it into the values first and stores each
// element's fresh quantization error back — classic error feedback.
func (rc *ringChan[V]) encodeCodecFrame(spanID uint64, v V, idx, total, elemOff, elemCnt, elemAll int) []byte {
	vals := rc.floats(v, elemOff, elemCnt)
	var res []float64
	if rc.efRes != nil {
		res = rc.efRes[elemOff : elemOff+elemCnt]
		sc := rc.encScratch(elemCnt)
		for i := range sc {
			sc[i] = vals[i] + res[i]
		}
		vals = sc
	}
	hs := epochHeaderSize
	if spanID != 0 {
		hs += spanIDSize
	}
	metaOff := hs
	hs += chunkMetaSize

	var wire []byte
	switch rc.comp.Codec {
	case CodecFP16:
		wire = comm.GetBuffer(hs + 8 + 2*elemCnt)
		fp16Encode(wire[hs:], vals, res)
	case CodecInt8:
		wire = comm.GetBuffer(hs + 8 + elemCnt)
		int8Encode(wire[hs:], vals, res)
	default: // CodecTopK
		k := topKCount(rc.comp.TopKRatio, elemCnt)
		if 12*k >= 8*elemCnt {
			// Density threshold: sparse framing would be larger.
			wire = comm.GetBuffer(hs + 4 + 8*elemCnt)
			topKEncodeDense(wire[hs:], vals, res)
		} else {
			thr := kthLargestAbs(rc.selScratch(vals), k)
			wire = comm.GetBuffer(hs + 4 + 12*k)
			if !topKEncodeSparse(wire[hs:], vals, res, k, thr) {
				// Selection could not fill the frame (NaN magnitudes
				// poison the threshold comparisons). Recycle the draw and
				// fall back to a dense frame — never send a short train.
				comm.Release(wire)
				wire = comm.GetBuffer(hs + 4 + 8*elemCnt)
				topKEncodeDense(wire[hs:], vals, res)
			}
		}
	}
	word := rc.epoch&epochMask | chunkFlag
	if spanID != 0 {
		word |= spanFlag
		putUint64(wire[epochHeaderSize:], spanID)
	}
	putUint32(wire, word)
	putChunkMeta(wire[metaOff:], idx, total, elemOff, elemCnt, elemAll, rc.comp.Codec)
	if comm.RaceGuard {
		comm.TagWire(wire, fmt.Sprintf("ring ch %d codec %s chunk %d/%d", rc.ch, rc.comp.Codec, idx, total))
	}
	if rc.tel.on {
		rc.tel.chunkBytes.Observe(int64(len(wire)))
	}
	// Raw-equivalent accounting: what the dense encoder would have put on
	// the wire for this chunk.
	rc.lastRaw = int64(hs + 8*elemCnt)
	return wire
}

// fp16Encode writes [scale][halves] for vals into dst (pre-sized to
// 8+2n). Scale maps the chunk's max|v| onto half's max finite value, so
// every chunk uses fp16's full dynamic range regardless of gradient
// magnitude. res, when non-nil, receives each element's quantization
// error.
func fp16Encode(dst []byte, vals, res []float64) {
	scale := linalg.MaxAbs(vals) / f16Max
	if scale == 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		scale = 1
	}
	putFloat64(dst, scale)
	inv := 1 / scale
	o := 8
	for i, v := range vals {
		h := linalg.F16FromF64(v * inv)
		dst[o] = byte(h)
		dst[o+1] = byte(h >> 8)
		o += 2
		if res != nil {
			res[i] = v - scale*linalg.F16ToF64(h)
		}
	}
}

// int8Encode writes [scale][signed bytes] for vals into dst (pre-sized
// to 8+n): q = round(v/scale) clamped to ±127, scale = max|v|/127.
func int8Encode(dst []byte, vals, res []float64) {
	scale := linalg.MaxAbs(vals) / 127
	if scale == 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		scale = 1
	}
	putFloat64(dst, scale)
	inv := 1 / scale
	for i, v := range vals {
		q := math.Round(v * inv)
		if q > 127 {
			q = 127
		} else if q < -127 {
			q = -127
		}
		dst[8+i] = byte(int8(q))
		if res != nil {
			res[i] = v - q*scale
		}
	}
}

// topKCount is the kept-element count for an n-element chunk: at least
// one, at most n.
func topKCount(ratio float64, n int) int {
	k := int(ratio*float64(n) + 0.5)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// topKEncodeDense writes the dense-fallback payload: the sentinel nnz
// word, then raw float64 words. Values travel exact, so the residual
// range zeroes.
func topKEncodeDense(dst []byte, vals, res []float64) {
	putUint32(dst, topKDenseSentinel)
	o := 4
	for i, v := range vals {
		putFloat64(dst[o:], v)
		o += 8
		if res != nil {
			res[i] = 0
		}
	}
}

// topKEncodeSparse emits exactly k (index, value) pairs — every element
// with |v| above the k-th-largest threshold plus enough threshold ties
// to fill the frame — in ascending index order, matching the
// SparseVector strictly-increasing layout. Unsent elements accumulate
// fully into res (their entire value is the "quantization error").
// Reports false when fewer than k elements were emitted, which only
// happens when NaNs defeat the magnitude comparisons; the caller falls
// back to a dense frame.
func topKEncodeSparse(dst []byte, vals, res []float64, k int, thr float64) bool {
	putUint32(dst, uint32(k))
	idxO := 4
	valO := 4 + 4*k
	ties := k
	for _, v := range vals {
		if math.Abs(v) > thr {
			ties--
		}
	}
	if ties < 0 {
		ties = 0
	}
	emitted := 0
	for i, v := range vals {
		a := math.Abs(v)
		take := false
		if emitted < k {
			if a > thr {
				take = true
			} else if a == thr && ties > 0 {
				take = true
				ties--
			}
		}
		if take {
			putUint32(dst[idxO:], uint32(i))
			putFloat64(dst[valO:], v)
			idxO += 4
			valO += 8
			emitted++
			if res != nil {
				res[i] = 0
			}
		} else if res != nil {
			res[i] = v
		}
	}
	return emitted == k
}

// kthLargestAbs returns the k-th largest value in buf (1 ≤ k ≤
// len(buf)), reordering buf in place — iterative quickselect with
// median-of-three pivots, deterministic for a given input. buf is the
// caller's scratch copy of the chunk's |v| values.
func kthLargestAbs(buf []float64, k int) float64 {
	lo, hi := 0, len(buf)-1
	target := len(buf) - k
	for lo < hi {
		// Median-of-three pivot, parked at hi.
		mid := lo + (hi-lo)/2
		if buf[mid] < buf[lo] {
			buf[mid], buf[lo] = buf[lo], buf[mid]
		}
		if buf[hi] < buf[lo] {
			buf[hi], buf[lo] = buf[lo], buf[hi]
		}
		if buf[hi] < buf[mid] {
			buf[hi], buf[mid] = buf[mid], buf[hi]
		}
		pivot := buf[mid]
		buf[mid], buf[hi] = buf[hi], buf[mid]
		// Lomuto partition.
		p := lo
		for i := lo; i < hi; i++ {
			if buf[i] < pivot {
				buf[i], buf[p] = buf[p], buf[i]
				p++
			}
		}
		buf[p], buf[hi] = buf[hi], buf[p]
		switch {
		case p == target:
			return buf[p]
		case p < target:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
	return buf[target]
}

// encScratch returns the channel's reusable error-feedback encode
// scratch (values + residual), grown amortized.
func (rc *ringChan[V]) encScratch(n int) []float64 {
	if cap(rc.encBuf) < n {
		rc.encBuf = make([]float64, n)
	}
	rc.encBuf = rc.encBuf[:n]
	return rc.encBuf
}

// selScratch fills the channel's selection scratch with |vals| for the
// quickselect, grown amortized.
func (rc *ringChan[V]) selScratch(vals []float64) []float64 {
	if cap(rc.selBuf) < len(vals) {
		rc.selBuf = make([]float64, len(vals))
	}
	rc.selBuf = rc.selBuf[:len(vals)]
	for i, v := range vals {
		rc.selBuf[i] = math.Abs(v)
	}
	return rc.selBuf
}

// --- decode -------------------------------------------------------------

// quantPayload splits a quantized chunk payload into its scale word and
// element body, validating the exact length.
func quantPayload(payload []byte, n, per int) (float64, []byte, error) {
	want := 8 + per*n
	if len(payload) != want {
		return 0, nil, fmt.Errorf("collective: quantized chunk payload %d bytes, want %d (%d elems × %dB + scale)", len(payload), want, n, per)
	}
	return float64At(payload, 0), payload[8:], nil
}

// fp16AddInto performs dst[i] += scale·half(body[i]) — the fused
// dequantize-reduce. Element adds are independent, so disjoint shards
// stay bitwise identical to the sequential pass.
func fp16AddInto(dst []float64, body []byte, scale float64) {
	for i := range dst {
		h := uint16(body[2*i]) | uint16(body[2*i+1])<<8
		dst[i] += scale * linalg.F16ToF64(h)
	}
}

// fp16SetInto is the allgather assembly form: dst[i] = scale·half.
func fp16SetInto(dst []float64, body []byte, scale float64) {
	for i := range dst {
		h := uint16(body[2*i]) | uint16(body[2*i+1])<<8
		dst[i] = scale * linalg.F16ToF64(h)
	}
}

// int8AddInto performs dst[i] += scale·int8(body[i]).
func int8AddInto(dst []float64, body []byte, scale float64) {
	for i := range dst {
		dst[i] += scale * float64(int8(body[i]))
	}
}

// int8SetInto is the allgather assembly form.
func int8SetInto(dst []float64, body []byte, scale float64) {
	for i := range dst {
		dst[i] = scale * float64(int8(body[i]))
	}
}

// topKParse validates a top-k payload against the chunk's element count
// and returns (k, idxBytes, valBytes) for a sparse payload or
// (-1, nil, denseBytes) for a dense fallback.
func topKParse(payload []byte, elemCnt int) (int, []byte, []byte, error) {
	if len(payload) < 4 {
		return 0, nil, nil, fmt.Errorf("collective: top-k chunk payload %d bytes, shorter than its nnz word", len(payload))
	}
	nnz := uint32At(payload, 0)
	if nnz == topKDenseSentinel {
		if len(payload) != 4+8*elemCnt {
			return 0, nil, nil, fmt.Errorf("collective: dense-fallback top-k payload %d bytes, want %d", len(payload), 4+8*elemCnt)
		}
		return -1, nil, payload[4:], nil
	}
	k := int(nnz)
	if k < 0 || k > elemCnt || len(payload) != 4+12*k {
		return 0, nil, nil, fmt.Errorf("collective: corrupt top-k payload (nnz %d, %d bytes, %d elems)", k, len(payload), elemCnt)
	}
	return k, payload[4 : 4+4*k], payload[4+4*k:], nil
}

// topKScatterAdd scatter-adds sparse positions [lo, hi) into dst,
// verifying the strictly-increasing index contract as it goes (the
// check also proves disjointness across shards: each worker re-reads
// its left boundary, so a violation anywhere in the array is caught by
// exactly one shard). Reduction happens straight out of the wire bytes
// — no densify, no intermediate vector.
func topKScatterAdd(dst []float64, idxB, valB []byte, lo, hi int) error {
	prev := int32(-1)
	if lo > 0 {
		prev = int32(uint32At(idxB, 4*(lo-1)))
	}
	for i := lo; i < hi; i++ {
		ix := int32(uint32At(idxB, 4*i))
		if ix <= prev || int(ix) >= len(dst) {
			return fmt.Errorf("collective: top-k index %d at position %d violates the strictly-increasing layout (prev %d, dim %d)", ix, i, prev, len(dst))
		}
		dst[ix] += float64At(valB, 8*i)
		prev = ix
	}
	return nil
}

// reduceCodecChunk is the compressed counterpart of reduceChunk: fused
// decode-reduce straight out of the codec payload into the float view
// of acc, sharded across the WithCores worker budget exactly like the
// dense path. Quantized payloads shard by element range; sparse top-k
// payloads shard by *position* range of the index array, which the
// strictly-increasing contract proves race-free.
func (rc *ringChan[V]) reduceCodecChunk(acc V, fr frame) error {
	dst := rc.floats(acc, fr.elemOff, fr.elemCnt)
	switch fr.codec {
	case CodecFP16, CodecInt8:
		per := 2
		if fr.codec == CodecInt8 {
			per = 1
		}
		scale, body, err := quantPayload(fr.payload, fr.elemCnt, per)
		if err != nil {
			return err
		}
		add := fp16AddInto
		if fr.codec == CodecInt8 {
			add = int8AddInto
		}
		w := rc.parWorkers(fr.elemCnt)
		if w <= 1 {
			add(dst, body, scale)
			return nil
		}
		linalg.ParallelFor(fr.elemCnt, w, func(lo, hi int) {
			add(dst[lo:hi], body[per*lo:per*hi], scale)
		})
		return nil
	case CodecTopK:
		k, idxB, valB, err := topKParse(fr.payload, fr.elemCnt)
		if err != nil {
			return err
		}
		if k < 0 { // dense fallback: raw words, same shard shape as dense
			w := rc.parWorkers(fr.elemCnt)
			if w <= 1 {
				rawAddInto(dst, valB)
				return nil
			}
			linalg.ParallelFor(fr.elemCnt, w, func(lo, hi int) {
				rawAddInto(dst[lo:hi], valB[8*lo:8*hi])
			})
			return nil
		}
		w := rc.parWorkers(k)
		if w <= 1 {
			return topKScatterAdd(dst, idxB, valB, 0, k)
		}
		var (
			mu       sync.Mutex
			firstErr error
		)
		linalg.ParallelFor(k, w, func(lo, hi int) {
			if err := topKScatterAdd(dst, idxB, valB, lo, hi); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		})
		return firstErr
	default:
		return fmt.Errorf("collective: unknown codec %d in chunk train", uint8(fr.codec))
	}
}

// rawAddInto adds raw float64 words into dst — the dense-fallback
// reduce kernel, identical math to decodeReduceChunkF64.
func rawAddInto(dst []float64, body []byte) {
	for i := range dst {
		dst[i] += float64At(body, 8*i)
	}
}

// decodeCodecChunkInto is the allgather assembly form: decode the codec
// payload into the float view of dst with set (not add) semantics.
// Sparse payloads zero the chunk's range first — unsent elements are
// zero by construction.
func (rc *ringChan[V]) decodeCodecChunkInto(dst V, fr frame) error {
	out := rc.floats(dst, fr.elemOff, fr.elemCnt)
	switch fr.codec {
	case CodecFP16:
		scale, body, err := quantPayload(fr.payload, fr.elemCnt, 2)
		if err != nil {
			return err
		}
		fp16SetInto(out, body, scale)
		return nil
	case CodecInt8:
		scale, body, err := quantPayload(fr.payload, fr.elemCnt, 1)
		if err != nil {
			return err
		}
		int8SetInto(out, body, scale)
		return nil
	case CodecTopK:
		k, idxB, valB, err := topKParse(fr.payload, fr.elemCnt)
		if err != nil {
			return err
		}
		if k < 0 {
			for i := range out {
				out[i] = float64At(valB, 8*i)
			}
			return nil
		}
		for i := range out {
			out[i] = 0
		}
		return topKScatterAdd(out, idxB, valB, 0, k)
	default:
		return fmt.Errorf("collective: unknown codec %d in chunk train", uint8(fr.codec))
	}
}
