// Package collective implements the reduction algorithms Sparker builds
// on: the ring-based reduce-scatter (Patarasuk & Yuan) used by split
// aggregation, ring allgather/allreduce, a binomial tree reduce (the
// shape of Spark's treeAggregate), and the recursive-halving and
// pairwise-exchange reduce-scatters used as MPI reference baselines
// (Thakur, Rabenseifner & Gropp).
//
// All algorithms are generic over the segment type V. Values cross
// executor boundaries serialized via the Ops callbacks, mirroring the
// paper's splitOp/reduceOp/concatOp callback design.
package collective

import (
	"fmt"
	"sync"

	"sparker/internal/comm"
)

// Ops supplies the type-specific callbacks for a collective over
// segments of type V.
type Ops[V any] struct {
	// Reduce merges b into a and returns the result. It may mutate and
	// return a; b must not be retained.
	Reduce func(a, b V) V
	// Encode appends the wire form of v to dst.
	Encode func(dst []byte, v V) []byte
	// Decode parses one value from src.
	Decode func(src []byte) (V, error)
}

// F64Ops returns elementwise-sum Ops for []float64 segments — the
// aggregator shape of every MLlib workload in the paper.
func F64Ops() Ops[[]float64] {
	return Ops[[]float64]{
		Reduce: func(a, b []float64) []float64 {
			if len(a) != len(b) {
				panic(fmt.Sprintf("collective: segment length mismatch %d vs %d", len(a), len(b)))
			}
			for i := range a {
				a[i] += b[i]
			}
			return a
		},
		Encode: encodeF64,
		Decode: decodeF64,
	}
}

func encodeF64(dst []byte, v []float64) []byte {
	dst = appendUint32(dst, uint32(len(v)))
	for _, f := range v {
		dst = appendFloat64(dst, f)
	}
	return dst
}

func decodeF64(src []byte) ([]float64, error) {
	if len(src) < 4 {
		return nil, fmt.Errorf("collective: short []float64")
	}
	n := int(uint32At(src, 0))
	if len(src) < 4+8*n {
		return nil, fmt.Errorf("collective: truncated []float64 (%d of %d)", len(src)-4, 8*n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = float64At(src, 4+8*i)
	}
	return out, nil
}

// asyncSend runs a ring send off the receive path so that send and
// receive of one iteration overlap and large messages cannot deadlock
// over real sockets.
func asyncSend(e *comm.Endpoint, peer, channel int, b []byte) chan error {
	done := make(chan error, 1)
	go func() { done <- e.SendTo(peer, channel, b) }()
	return done
}

// RingReduceScatter reduces P×N segments held by each of N ranks so
// that afterwards every rank owns P fully-reduced segments (one per
// parallel channel). segs must have length P×N; segment j of channel p
// is segs[p*N + j], and all ranks must agree on this layout.
//
// The returned map is globalSegmentIndex -> reduced value. Rank r ends
// up owning, for each channel p, global segment p*N + (r+1)%N — the
// paper's Figure 11 schedule, run P-way in parallel over the PDR.
func RingReduceScatter[V any](e *comm.Endpoint, segs []V, parallelism int, ops Ops[V]) (map[int]V, error) {
	n := e.Size()
	p := parallelism
	if p <= 0 {
		return nil, fmt.Errorf("collective: parallelism must be positive, got %d", p)
	}
	if len(segs) != p*n {
		return nil, fmt.Errorf("collective: need %d segments (P=%d × N=%d), got %d", p*n, p, n, len(segs))
	}

	owned := make(map[int]V, p)
	if n == 1 {
		// Single rank: everything is already reduced.
		for i, s := range segs {
			owned[i] = s
		}
		return owned, nil
	}

	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
	)
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	r := e.Rank()
	for ch := 0; ch < p; ch++ {
		wg.Add(1)
		go func(ch int) {
			defer wg.Done()
			block := segs[ch*n : (ch+1)*n]
			cur := make([]V, n)
			copy(cur, block)
			for k := 0; k < n-1; k++ {
				sendIdx := ((r-k)%n + n) % n
				recvIdx := ((r-k-1)%n + n) % n
				wire := ops.Encode(nil, cur[sendIdx])
				sendDone := asyncSend(e, e.Next(), ch, wire)
				in, err := e.RecvPrev(ch)
				if err != nil {
					setErr(fmt.Errorf("collective: rank %d ch %d step %d recv: %w", r, ch, k, err))
					<-sendDone
					return
				}
				v, err := ops.Decode(in)
				if err != nil {
					setErr(fmt.Errorf("collective: rank %d ch %d step %d decode: %w", r, ch, k, err))
					<-sendDone
					return
				}
				cur[recvIdx] = ops.Reduce(cur[recvIdx], v)
				if err := <-sendDone; err != nil {
					setErr(fmt.Errorf("collective: rank %d ch %d step %d send: %w", r, ch, k, err))
					return
				}
			}
			final := (r + 1) % n
			mu.Lock()
			owned[ch*n+final] = cur[final]
			mu.Unlock()
		}(ch)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return owned, nil
}

// RingAllGather circulates each rank's owned segments around the ring
// until every rank holds all N segments of every channel. owned is the
// result of RingReduceScatter; the returned slice has length P×N with
// every entry populated identically on all ranks.
func RingAllGather[V any](e *comm.Endpoint, owned map[int]V, parallelism int, ops Ops[V]) ([]V, error) {
	n := e.Size()
	p := parallelism
	all := make([]V, p*n)
	for i, v := range owned {
		if i < 0 || i >= p*n {
			return nil, fmt.Errorf("collective: owned segment index %d out of range", i)
		}
		all[i] = v
	}
	if n == 1 {
		return all, nil
	}

	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
	)
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	r := e.Rank()
	for ch := 0; ch < p; ch++ {
		wg.Add(1)
		go func(ch int) {
			defer wg.Done()
			// After reduce-scatter rank r owns block index (r+1)%n.
			have := (r + 1) % n
			for k := 0; k < n-1; k++ {
				sendIdx := ((have-k)%n + n) % n
				recvIdx := ((have-k-1)%n + n) % n
				wire := ops.Encode(nil, all[ch*n+sendIdx])
				sendDone := asyncSend(e, e.Next(), ch, wire)
				in, err := e.RecvPrev(ch)
				if err != nil {
					setErr(fmt.Errorf("collective: allgather rank %d ch %d step %d recv: %w", r, ch, k, err))
					<-sendDone
					return
				}
				v, err := ops.Decode(in)
				if err != nil {
					setErr(err)
					<-sendDone
					return
				}
				all[ch*n+recvIdx] = v
				if err := <-sendDone; err != nil {
					setErr(err)
					return
				}
			}
		}(ch)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return all, nil
}

// RingAllReduce is reduce-scatter followed by allgather: every rank
// ends with the fully reduced P×N segments. This is the
// bandwidth-optimal allreduce Sparker's interface enables (listed as an
// enabled algorithm, §7 "fast reduction algorithms").
func RingAllReduce[V any](e *comm.Endpoint, segs []V, parallelism int, ops Ops[V]) ([]V, error) {
	owned, err := RingReduceScatter(e, segs, parallelism, ops)
	if err != nil {
		return nil, err
	}
	return RingAllGather(e, owned, parallelism, ops)
}
