// Package collective implements the reduction algorithms Sparker builds
// on: the ring-based reduce-scatter (Patarasuk & Yuan) used by split
// aggregation, ring allgather/allreduce, a binomial tree reduce (the
// shape of Spark's treeAggregate), and the recursive-halving and
// pairwise-exchange reduce-scatters used as MPI reference baselines
// (Thakur, Rabenseifner & Gropp).
//
// All algorithms are generic over the segment type V. Values cross
// executor boundaries serialized via the Ops callbacks, mirroring the
// paper's splitOp/reduceOp/concatOp callback design.
//
// The data plane is allocation-free at steady state: wire buffers come
// from the shared pool (comm.GetBuffer), ownership flows with the
// message through a persistent per-channel sender, and the receiver
// reduces directly out of the wire bytes (Ops.DecodeReduceInto) before
// releasing the buffer back to the pool. See DESIGN.md "Performance
// notes" for the ownership contract.
package collective

import (
	"context"
	"fmt"
	"sync"
	"time"

	"sparker/internal/comm"
	"sparker/internal/linalg"
	"sparker/internal/metrics"
	"sparker/internal/trace"
)

// stepDeadlineKey carries the per-step deadline through a context.
type stepDeadlineKey struct{}

// WithStepDeadline returns a context instructing every collective
// running under it to bound each communication step (one pipelined
// send+receive) by d, so a silent peer surfaces as comm.ErrPeerTimeout
// after d instead of hanging the ring. d <= 0 disables the bound.
func WithStepDeadline(ctx context.Context, d time.Duration) context.Context {
	return context.WithValue(ctx, stepDeadlineKey{}, d)
}

// StepDeadlineFrom reports the per-step deadline carried by ctx, or 0.
func StepDeadlineFrom(ctx context.Context) time.Duration {
	d, _ := ctx.Value(stepDeadlineKey{}).(time.Duration)
	return d
}

// stepContext derives the context bounding one collective step. With no
// step deadline the parent is returned as-is, preserving the
// zero-overhead direct receive path.
func stepContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if d := StepDeadlineFrom(ctx); d > 0 {
		return context.WithTimeout(ctx, d)
	}
	return ctx, func() {}
}

// epochKey carries the collective epoch through a context.
type epochKey struct{}

// WithEpoch tags every ring message of collectives run under ctx with
// epoch, and makes their receives discard frames from older epochs.
// An aborted collective (timeout, dead peer) can leave undelivered
// frames buffered in its neighbors; without the tag the next collective
// on the same channels would consume them as its own and silently
// reduce stale data. Epochs must increase across collectives sharing an
// endpoint (the core layer derives them from the op id).
func WithEpoch(ctx context.Context, epoch uint32) context.Context {
	return context.WithValue(ctx, epochKey{}, epoch)
}

// EpochFrom reports the epoch carried by ctx, or 0 (untagged).
func EpochFrom(ctx context.Context) uint32 {
	e, _ := ctx.Value(epochKey{}).(uint32)
	return e
}

// epochHeaderSize prefixes every ring frame: 4 bytes of epoch.
const epochHeaderSize = 4

// spanFlag marks a traced frame: when set on the epoch word, an 8-byte
// sender span ID follows the epoch header. Epoch values are masked to
// the low 31 bits on both encode and compare, so untraced frames keep
// the exact PR 2 wire format and traced/untraced endpoints interoperate
// (the extension is backward-compatible — see DESIGN.md §10).
const (
	spanFlag   = uint32(1) << 31
	epochMask  = ^spanFlag
	spanIDSize = 8
)

// frameHeaderSize is the ring-frame header length: the epoch word plus,
// for traced frames (span != 0), the sender span ID.
func frameHeaderSize(span uint64) int {
	if span != 0 {
		return epochHeaderSize + spanIDSize
	}
	return epochHeaderSize
}

// encodeFrame builds a ring frame — epoch header, optional sender span
// ID, then the encoded segment — into buf, a pooled draw whose capacity
// is reused. The returned slice may be a reallocation; the abandoned
// draw goes back to the pool.
func encodeFrame[V any](ops Ops[V], epoch uint32, span uint64, buf []byte, v V) []byte {
	hs := frameHeaderSize(span)
	hdr := buf
	if cap(hdr) < hs {
		hdr = make([]byte, hs)
		releaseIfAbandoned(buf, hdr)
	} else {
		hdr = hdr[:hs]
	}
	out := ops.Encode(hdr, v)
	releaseIfAbandoned(hdr, out)
	word := epoch & epochMask
	if span != 0 {
		word |= spanFlag
		putUint64(out[epochHeaderSize:], span)
	}
	putUint32(out, word)
	return out
}

// recvFrame receives the next frame for epoch on channel ch. Frames
// from older epochs are residue of an aborted collective: they are
// dropped (released when the ops mark buffers unretained) and the
// receive retried under the same step context. A frame from a newer
// epoch means this collective has been superseded and cannot complete.
// On success it returns the payload, the full wire buffer the payload
// aliases (the caller releases the latter), and the sender's step span
// ID when the frame was traced (0 otherwise).
func recvFrame(sctx context.Context, e *comm.Endpoint, ch int, epoch uint32, releasable bool) (payload, wire []byte, remoteSpan uint64, err error) {
	want := epoch & epochMask
	for {
		in, err := e.RecvPrevCtx(sctx, ch)
		if err != nil {
			return nil, nil, 0, err
		}
		if len(in) < epochHeaderSize {
			return nil, nil, 0, fmt.Errorf("collective: frame shorter than epoch header (%d bytes)", len(in))
		}
		word := uint32At(in, 0)
		got := word & epochMask
		hs := epochHeaderSize
		var span uint64
		if word&spanFlag != 0 {
			if len(in) < epochHeaderSize+spanIDSize {
				return nil, nil, 0, fmt.Errorf("collective: traced frame shorter than span header (%d bytes)", len(in))
			}
			span = uint64At(in, epochHeaderSize)
			hs += spanIDSize
		}
		if got == want {
			return in[hs:], in, span, nil
		}
		if releasable {
			comm.Release(in)
		}
		if int32(got-want) > 0 {
			return nil, nil, 0, fmt.Errorf("collective: epoch %d superseded by in-flight epoch %d", want, got)
		}
	}
}

// telemetry bundles the per-step observability handles of one
// collective: the tracer + parent span (usually the executor task span,
// propagated through the dispatch context) and the ring-step
// histograms of the executor's registry. Resolved once per collective
// so the step loop pays a single `on` branch when everything is
// disabled.
type telemetry struct {
	on        bool
	tr        *trace.Tracer
	parent    trace.SpanContext
	stepNS    *metrics.Histogram
	stepBytes *metrics.Histogram
}

func telemetryFrom(ctx context.Context) telemetry {
	var tel telemetry
	tel.tr, tel.parent = trace.FromContext(ctx)
	if reg := metrics.FromContext(ctx); reg != nil {
		tel.stepNS = reg.Histogram(metrics.HistRingStepNS)
		tel.stepBytes = reg.Histogram(metrics.HistRingStepBytes)
	}
	tel.on = tel.tr != nil || tel.stepNS != nil
	return tel
}

// startStep opens one ring-step span (nil when tracing is off). The
// step's own span ID rides in the outgoing frame header so the
// receiving rank can link the matching step on the neighbor's track.
// Value receiver on purpose: a pointer receiver would force the
// caller's telemetry struct to escape, costing a heap allocation per
// collective even with telemetry disabled.
func (tel telemetry) startStep(op string, ch, k int, epoch uint32) *trace.ActiveSpan {
	span := tel.tr.StartSpan("ring-step", tel.parent)
	if span != nil {
		span.SetAttr("op", op)
		span.SetInt("channel", int64(ch))
		span.SetInt("step", int64(k))
		span.SetInt("epoch", int64(epoch))
	}
	return span
}

// drainSend waits, bounded by ctx, for an in-flight async send that an
// aborting error path can no longer use. Abandoning the completion on
// context expiry is safe: the channel is buffered and its owning loop
// is exiting.
func drainSend(ctx context.Context, done chan error) {
	select {
	case <-done:
	case <-ctx.Done():
	}
}

// Ops supplies the type-specific callbacks for a collective over
// segments of type V. Reduce, Encode and Decode are required; the
// remaining callbacks are optional fast paths the collectives use when
// present.
type Ops[V any] struct {
	// Reduce merges b into a and returns the result. It may mutate and
	// return a; b must not be retained.
	Reduce func(a, b V) V
	// Encode appends the wire form of v to dst.
	Encode func(dst []byte, v V) []byte
	// Decode parses one value from src.
	Decode func(src []byte) (V, error)

	// EncodeTo, when set, encodes v into dst reusing dst's capacity
	// (dst's length is ignored) and returns the encoded slice, which
	// may be a reallocation when dst is too small. Collectives call it
	// with pooled scratch so steady-state encoding allocates nothing.
	EncodeTo func(dst []byte, v V) []byte
	// DecodeReduceInto, when set, fuses Decode and Reduce: it reduces
	// the value encoded in wire directly into acc — no intermediate
	// decoded value — and returns the updated accumulator. It must be
	// elementwise-identical to Decode-then-Reduce (the property tests
	// check bitwise equality) and must not retain wire. Setting it also
	// asserts that Decode never retains its input, which lets the
	// collectives release receive buffers back to the wire pool.
	DecodeReduceInto func(acc V, wire []byte) (V, error)
	// EncodedSize, when set, returns the exact wire size Encode would
	// produce for v. The collectives use it to draw an exactly-sized
	// pooled buffer before the very first encode of a loop, so even
	// step 0 avoids a grow-and-copy.
	EncodedSize func(v V) int
}

// sizeHint picks the pooled-buffer size for the next encode: the exact
// encoded size when the ops can report it, otherwise the running size
// of the previous step's wire.
func sizeHint[V any](ops Ops[V], prev int, v V) int {
	if ops.EncodedSize != nil {
		return ops.EncodedSize(v)
	}
	return prev
}

// encodeInto encodes v reusing buf's capacity, via the EncodeTo fast
// path when available. buf must be an unaliased pool draw: when the
// encoder outgrows it and reallocates, the abandoned draw goes back to
// the pool instead of the garbage collector.
func encodeInto[V any](ops Ops[V], buf []byte, v V) []byte {
	var out []byte
	if ops.EncodeTo != nil {
		out = ops.EncodeTo(buf, v)
	} else {
		out = ops.Encode(buf[:0], v)
	}
	releaseIfAbandoned(buf, out)
	return out
}

// releaseIfAbandoned returns the pooled draw to the pool when the
// encoder reallocated and out no longer shares drawn's backing array.
func releaseIfAbandoned(drawn, out []byte) {
	if cap(drawn) > 0 && (cap(out) == 0 || &drawn[:1][0] != &out[:1][0]) {
		comm.Release(drawn)
	}
}

// F64Ops returns elementwise-sum Ops for []float64 segments — the
// aggregator shape of every MLlib workload in the paper — with all
// fast paths populated.
func F64Ops() Ops[[]float64] {
	return Ops[[]float64]{
		Reduce: func(a, b []float64) []float64 {
			linalg.AddAssign(a, b)
			return a
		},
		Encode:           encodeF64,
		Decode:           decodeF64,
		EncodeTo:         func(dst []byte, v []float64) []byte { return encodeF64(dst[:0], v) },
		DecodeReduceInto: decodeReduceIntoF64,
		EncodedSize:      func(v []float64) int { return 4 + 8*len(v) },
	}
}

// encodeF64 appends a length-prefixed []float64 to dst, growing dst at
// most once to the exact 4+8·len size and then writing 8-byte words
// directly — no grow-through-append on the hot path.
func encodeF64(dst []byte, v []float64) []byte {
	need := 4 + 8*len(v)
	if cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	off := len(dst)
	dst = dst[:off+need]
	putUint32(dst[off:], uint32(len(v)))
	off += 4
	for _, f := range v {
		putFloat64(dst[off:], f)
		off += 8
	}
	return dst
}

// decodeF64 parses a length-prefixed []float64. The prefix is validated
// against len(src) before any allocation, so a corrupt prefix cannot
// trigger a huge make.
func decodeF64(src []byte) ([]float64, error) {
	n, body, err := f64WireBody(src)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = float64At(body, 8*i)
	}
	return out, nil
}

// f64WireBody validates a []float64 wire frame and returns its element
// count and payload bytes.
func f64WireBody(src []byte) (int, []byte, error) {
	if len(src) < 4 {
		return 0, nil, fmt.Errorf("collective: short []float64")
	}
	n := int(uint32At(src, 0))
	if n < 0 || n > (len(src)-4)/8 {
		return 0, nil, fmt.Errorf("collective: corrupt []float64 length prefix %d (%d payload bytes)", n, len(src)-4)
	}
	return n, src[4:], nil
}

// decodeReduceIntoF64 is the fused decode-reduce: acc[i] += wire[i]
// straight out of the wire bytes, 4-wide unrolled, no intermediate
// slice. Element adds are independent, so the result is bitwise
// identical to decodeF64 followed by F64Ops().Reduce.
func decodeReduceIntoF64(acc []float64, wire []byte) ([]float64, error) {
	n, body, err := f64WireBody(wire)
	if err != nil {
		return nil, err
	}
	if n != len(acc) {
		// A mismatched frame is a data-plane fault (corrupt or misrouted
		// message), so it must fail the step, not kill the process.
		return nil, fmt.Errorf("collective: segment length mismatch %d vs %d", len(acc), n)
	}
	i := 0
	for ; i+4 <= n; i += 4 {
		acc[i] += float64At(body, 8*i)
		acc[i+1] += float64At(body, 8*i+8)
		acc[i+2] += float64At(body, 8*i+16)
		acc[i+3] += float64At(body, 8*i+24)
	}
	for ; i < n; i++ {
		acc[i] += float64At(body, 8*i)
	}
	return acc, nil
}

// decodeReduce applies the fused path when available, falling back to
// Decode-then-Reduce. It reports whether the wire buffer is provably
// unretained and may be released to the pool — true for the fused path
// even on error, since DecodeReduceInto never retains wire.
func decodeReduce[V any](ops Ops[V], acc V, wire []byte) (V, bool, error) {
	if ops.DecodeReduceInto != nil {
		out, err := ops.DecodeReduceInto(acc, wire)
		if err != nil {
			return acc, true, err
		}
		return out, true, nil
	}
	v, err := ops.Decode(wire)
	if err != nil {
		return acc, false, err
	}
	return ops.Reduce(acc, v), false, nil
}

// RingReduceScatter reduces P×N segments held by each of N ranks so
// that afterwards every rank owns P fully-reduced segments (one per
// parallel channel). segs must have length P×N; segment j of channel p
// is segs[p*N + j], and all ranks must agree on this layout.
//
// The returned map is globalSegmentIndex -> reduced value. Rank r ends
// up owning, for each channel p, global segment p*N + (r+1)%N — the
// paper's Figure 11 schedule, run P-way in parallel over the PDR.
//
// ctx bounds the whole collective; wrap it with WithStepDeadline to
// additionally bound each pipelined step, classifying a silent peer as
// comm.ErrPeerTimeout and a dead one as comm.ErrPeerDown.
func RingReduceScatter[V any](ctx context.Context, e *comm.Endpoint, segs []V, parallelism int, ops Ops[V]) (map[int]V, error) {
	n := e.Size()
	p := parallelism
	if p <= 0 {
		return nil, fmt.Errorf("collective: parallelism must be positive, got %d", p)
	}
	if len(segs) != p*n {
		return nil, fmt.Errorf("collective: need %d segments (P=%d × N=%d), got %d", p*n, p, n, len(segs))
	}

	owned := make(map[int]V, p)
	if n == 1 {
		// Single rank: everything is already reduced.
		for i, s := range segs {
			owned[i] = s
		}
		return owned, nil
	}

	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
	)
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	epoch := EpochFrom(ctx)
	releasable := ops.DecodeReduceInto != nil
	// Telemetry handles resolved once per collective: with neither a
	// tracer nor a registry in ctx the per-step cost is one branch and
	// no time syscalls, keeping the PR 1 zero-allocation path intact.
	tel := telemetryFrom(ctx)
	r := e.Rank()
	for ch := 0; ch < p; ch++ {
		wg.Add(1)
		go func(ch int) {
			defer wg.Done()
			// A panic in a reduce callback (e.g. on corrupt or misrouted
			// data) must fail the collective, not kill the process.
			defer func() {
				if p := recover(); p != nil {
					setErr(fmt.Errorf("collective: rank %d ch %d panic: %v", r, ch, p))
				}
			}()
			block := segs[ch*n : (ch+1)*n]
			cur := make([]V, n)
			copy(cur, block)
			// One completion channel and one wire-size hint per channel
			// goroutine, reused every step: the k-step loop cycles
			// pooled buffers instead of allocating N-1 times.
			sendDone := make(chan error, 1)
			hint := 0
			step := func(k int) (err error) {
				var span *trace.ActiveSpan
				if tel.on {
					start := time.Now()
					span = tel.startStep("reduce-scatter", ch, k, epoch)
					defer func() {
						tel.stepNS.Observe(time.Since(start).Nanoseconds())
						span.EndErr(err)
					}()
				}
				sctx, cancel := stepContext(ctx)
				defer cancel()
				sendIdx := ((r-k)%n + n) % n
				recvIdx := ((r-k-1)%n + n) % n
				spanID := span.ID()
				buf := comm.GetBuffer(sizeHint(ops, hint, cur[sendIdx]) + frameHeaderSize(spanID))
				wire := encodeFrame(ops, epoch, spanID, buf, cur[sendIdx])
				hint = len(wire)
				if tel.on {
					tel.stepBytes.Observe(int64(len(wire)))
					span.SetInt("bytes", int64(len(wire)))
				}
				e.SendToAsync(e.Next(), ch, wire, sendDone)
				payload, in, peerSpan, err := recvFrame(sctx, e, ch, epoch, releasable)
				if err != nil {
					drainSend(sctx, sendDone)
					return fmt.Errorf("collective: rank %d ch %d step %d recv: %w", r, ch, k, err)
				}
				span.SetHex("peer_span", peerSpan)
				acc, release, err := decodeReduce(ops, cur[recvIdx], payload)
				if release {
					comm.Release(in)
				}
				if err != nil {
					drainSend(sctx, sendDone)
					return fmt.Errorf("collective: rank %d ch %d step %d decode: %w", r, ch, k, err)
				}
				cur[recvIdx] = acc
				if err := e.WaitSend(sctx, e.Next(), sendDone); err != nil {
					return fmt.Errorf("collective: rank %d ch %d step %d send: %w", r, ch, k, err)
				}
				return nil
			}
			for k := 0; k < n-1; k++ {
				if err := step(k); err != nil {
					setErr(err)
					return
				}
			}
			final := (r + 1) % n
			mu.Lock()
			owned[ch*n+final] = cur[final]
			mu.Unlock()
		}(ch)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return owned, nil
}

// RingAllGather circulates each rank's owned segments around the ring
// until every rank holds all N segments of every channel. owned is the
// result of RingReduceScatter; the returned slice has length P×N with
// every entry populated identically on all ranks. ctx bounds the
// collective exactly as in RingReduceScatter.
func RingAllGather[V any](ctx context.Context, e *comm.Endpoint, owned map[int]V, parallelism int, ops Ops[V]) ([]V, error) {
	n := e.Size()
	p := parallelism
	all := make([]V, p*n)
	for i, v := range owned {
		if i < 0 || i >= p*n {
			return nil, fmt.Errorf("collective: owned segment index %d out of range", i)
		}
		all[i] = v
	}
	if n == 1 {
		return all, nil
	}

	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
	)
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	// DecodeReduceInto doubles as the marker that Decode does not
	// retain its input, so gathered receive buffers can be released.
	releasable := ops.DecodeReduceInto != nil
	epoch := EpochFrom(ctx)
	tel := telemetryFrom(ctx)
	r := e.Rank()
	for ch := 0; ch < p; ch++ {
		wg.Add(1)
		go func(ch int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					setErr(fmt.Errorf("collective: allgather rank %d ch %d panic: %v", r, ch, p))
				}
			}()
			// After reduce-scatter rank r owns block index (r+1)%n.
			have := (r + 1) % n
			sendDone := make(chan error, 1)
			hint := 0
			step := func(k int) (err error) {
				var span *trace.ActiveSpan
				if tel.on {
					start := time.Now()
					span = tel.startStep("allgather", ch, k, epoch)
					defer func() {
						tel.stepNS.Observe(time.Since(start).Nanoseconds())
						span.EndErr(err)
					}()
				}
				sctx, cancel := stepContext(ctx)
				defer cancel()
				sendIdx := ((have-k)%n + n) % n
				recvIdx := ((have-k-1)%n + n) % n
				spanID := span.ID()
				buf := comm.GetBuffer(sizeHint(ops, hint, all[ch*n+sendIdx]) + frameHeaderSize(spanID))
				wire := encodeFrame(ops, epoch, spanID, buf, all[ch*n+sendIdx])
				hint = len(wire)
				if tel.on {
					tel.stepBytes.Observe(int64(len(wire)))
					span.SetInt("bytes", int64(len(wire)))
				}
				e.SendToAsync(e.Next(), ch, wire, sendDone)
				payload, in, peerSpan, err := recvFrame(sctx, e, ch, epoch, releasable)
				if err != nil {
					drainSend(sctx, sendDone)
					return fmt.Errorf("collective: allgather rank %d ch %d step %d recv: %w", r, ch, k, err)
				}
				span.SetHex("peer_span", peerSpan)
				v, err := ops.Decode(payload)
				if err != nil {
					if releasable {
						comm.Release(in)
					}
					drainSend(sctx, sendDone)
					return err
				}
				all[ch*n+recvIdx] = v
				if releasable {
					comm.Release(in)
				}
				return e.WaitSend(sctx, e.Next(), sendDone)
			}
			for k := 0; k < n-1; k++ {
				if err := step(k); err != nil {
					setErr(err)
					return
				}
			}
		}(ch)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return all, nil
}

// RingAllReduce is reduce-scatter followed by allgather: every rank
// ends with the fully reduced P×N segments. This is the
// bandwidth-optimal allreduce Sparker's interface enables (listed as an
// enabled algorithm, §7 "fast reduction algorithms").
func RingAllReduce[V any](ctx context.Context, e *comm.Endpoint, segs []V, parallelism int, ops Ops[V]) ([]V, error) {
	owned, err := RingReduceScatter(ctx, e, segs, parallelism, ops)
	if err != nil {
		return nil, err
	}
	return RingAllGather(ctx, e, owned, parallelism, ops)
}
