// Package collective implements the reduction algorithms Sparker builds
// on: the ring-based reduce-scatter (Patarasuk & Yuan) used by split
// aggregation, ring allgather/allreduce, a binomial tree reduce (the
// shape of Spark's treeAggregate), and the recursive-halving and
// pairwise-exchange reduce-scatters used as MPI reference baselines
// (Thakur, Rabenseifner & Gropp).
//
// All algorithms are generic over the segment type V. Values cross
// executor boundaries serialized via the Ops callbacks, mirroring the
// paper's splitOp/reduceOp/concatOp callback design.
//
// The data plane is allocation-free at steady state: wire buffers come
// from the shared pool (comm.GetBuffer), ownership flows with the
// message through a persistent per-channel sender, and the receiver
// reduces directly out of the wire bytes (Ops.DecodeReduceInto) before
// releasing the buffer back to the pool. See DESIGN.md "Performance
// notes" for the ownership contract.
package collective

import (
	"context"
	"fmt"
	"sync"
	"time"

	"sparker/internal/comm"
	"sparker/internal/linalg"
	"sparker/internal/metrics"
	"sparker/internal/obsv"
	"sparker/internal/trace"
)

// stepDeadlineKey carries the per-step deadline through a context.
type stepDeadlineKey struct{}

// WithStepDeadline returns a context instructing every collective
// running under it to bound each communication step (one pipelined
// send+receive) by d, so a silent peer surfaces as comm.ErrPeerTimeout
// after d instead of hanging the ring. d <= 0 disables the bound.
func WithStepDeadline(ctx context.Context, d time.Duration) context.Context {
	return context.WithValue(ctx, stepDeadlineKey{}, d)
}

// StepDeadlineFrom reports the per-step deadline carried by ctx, or 0.
func StepDeadlineFrom(ctx context.Context) time.Duration {
	d, _ := ctx.Value(stepDeadlineKey{}).(time.Duration)
	return d
}

// stepContext derives the context bounding one collective step. With no
// step deadline the parent is returned as-is, preserving the
// zero-overhead direct receive path.
func stepContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if d := StepDeadlineFrom(ctx); d > 0 {
		return context.WithTimeout(ctx, d)
	}
	return ctx, func() {}
}

// epochKey carries the collective epoch through a context.
type epochKey struct{}

// WithEpoch tags every ring message of collectives run under ctx with
// epoch, and makes their receives discard frames from older epochs.
// An aborted collective (timeout, dead peer) can leave undelivered
// frames buffered in its neighbors; without the tag the next collective
// on the same channels would consume them as its own and silently
// reduce stale data. Epochs must increase across collectives sharing an
// endpoint (the core layer derives them from the op id).
func WithEpoch(ctx context.Context, epoch uint32) context.Context {
	return context.WithValue(ctx, epochKey{}, epoch)
}

// EpochFrom reports the epoch carried by ctx, or 0 (untagged).
func EpochFrom(ctx context.Context) uint32 {
	e, _ := ctx.Value(epochKey{}).(uint32)
	return e
}

// epochHeaderSize prefixes every ring frame: 4 bytes of epoch.
const epochHeaderSize = 4

// spanFlag marks a traced frame: when set on the epoch word, an 8-byte
// sender span ID follows the epoch header. chunkFlag marks one chunk of
// a pipelined segment train: a 20-byte chunk header (index, count,
// element range — see pipeline.go) follows the epoch/span words. Epoch
// values are masked to the low 30 bits on both encode and compare, so
// untraced single-frame steps keep the exact PR 2 wire format and
// traced/untraced, chunked/unchunked endpoints interoperate (the
// extensions are backward-compatible — see DESIGN.md §10 and §11). A
// receiver that predates a flag reads it as an epoch bit, fails the
// epoch match and errors loudly instead of mis-parsing the frame.
const (
	spanFlag      = uint32(1) << 31
	chunkFlag     = uint32(1) << 30
	epochMask     = ^(spanFlag | chunkFlag)
	spanIDSize    = 8
	chunkMetaSize = 20
)

// epochNewer reports whether got is ahead of want in 30-bit wraparound
// order (the sign of their shifted difference, as in serial-number
// arithmetic).
func epochNewer(got, want uint32) bool {
	return int32((got-want)<<2) > 0
}

// frameHeaderSize is the ring-frame header length: the epoch word plus,
// for traced frames (span != 0), the sender span ID.
func frameHeaderSize(span uint64) int {
	if span != 0 {
		return epochHeaderSize + spanIDSize
	}
	return epochHeaderSize
}

// encodeFrame builds a ring frame — epoch header, optional sender span
// ID, then the encoded segment — into buf, a pooled draw whose capacity
// is reused. The returned slice may be a reallocation; the abandoned
// draw goes back to the pool.
func encodeFrame[V any](ops Ops[V], epoch uint32, span uint64, buf []byte, v V) []byte {
	hs := frameHeaderSize(span)
	hdr := buf
	if cap(hdr) < hs {
		hdr = make([]byte, hs)
		releaseIfAbandoned(buf, hdr)
	} else {
		hdr = hdr[:hs]
	}
	out := ops.Encode(hdr, v)
	releaseIfAbandoned(hdr, out)
	word := epoch & epochMask
	if span != 0 {
		word |= spanFlag
		putUint64(out[epochHeaderSize:], span)
	}
	putUint32(out, word)
	return out
}

// telemetry bundles the per-step observability handles of one
// collective: the tracer + parent span (usually the executor task span,
// propagated through the dispatch context) and the ring-step and
// ring-chunk histograms of the executor's registry. Resolved once per
// collective so the step loop pays a single `on` branch when everything
// is disabled.
type telemetry struct {
	on         bool
	tr         *trace.Tracer
	parent     trace.SpanContext
	rec        *obsv.Ring
	stepNS     *metrics.Histogram
	stepBytes  *metrics.Histogram
	stepRaw    *metrics.Histogram
	chunkNS    *metrics.Histogram
	chunkBytes *metrics.Histogram
}

func telemetryFrom(ctx context.Context) telemetry {
	var tel telemetry
	tel.tr, tel.parent = trace.FromContext(ctx)
	tel.rec = obsv.FromContext(ctx)
	if reg := metrics.FromContext(ctx); reg != nil {
		tel.stepNS = reg.Histogram(metrics.HistRingStepNS)
		tel.stepBytes = reg.Histogram(metrics.HistRingStepBytes)
		tel.stepRaw = reg.Histogram(metrics.HistRingStepRawBytes)
		tel.chunkNS = reg.Histogram(metrics.HistRingChunkNS)
		tel.chunkBytes = reg.Histogram(metrics.HistRingChunkBytes)
	}
	tel.on = tel.tr != nil || tel.stepNS != nil || tel.rec != nil
	return tel
}

// startStep opens one ring-step span (nil when tracing is off). The
// step's own span ID rides in the outgoing frame header so the
// receiving rank can link the matching step on the neighbor's track.
// Value receiver on purpose: a pointer receiver would force the
// caller's telemetry struct to escape, costing a heap allocation per
// collective even with telemetry disabled.
func (tel telemetry) startStep(op string, ch, k int, epoch uint32) *trace.ActiveSpan {
	span := tel.tr.StartSpan("ring-step", tel.parent)
	if span != nil {
		span.SetAttr("op", op)
		span.SetInt("channel", int64(ch))
		span.SetInt("step", int64(k))
		span.SetInt("epoch", int64(epoch))
	}
	return span
}

// drainSend waits, bounded by ctx, for an in-flight async send that an
// aborting error path can no longer use. Abandoning the completion on
// context expiry is safe: the channel is buffered and its owning loop
// is exiting.
func drainSend(ctx context.Context, done chan error) {
	select {
	case <-done:
	case <-ctx.Done():
	}
}

// Ops supplies the type-specific callbacks for a collective over
// segments of type V. Reduce, Encode and Decode are required; the
// remaining callbacks are optional fast paths the collectives use when
// present.
type Ops[V any] struct {
	// Reduce merges b into a and returns the result. It may mutate and
	// return a; b must not be retained.
	Reduce func(a, b V) V
	// Encode appends the wire form of v to dst.
	Encode func(dst []byte, v V) []byte
	// Decode parses one value from src.
	Decode func(src []byte) (V, error)

	// EncodeTo, when set, encodes v into dst reusing dst's capacity
	// (dst's length is ignored) and returns the encoded slice, which
	// may be a reallocation when dst is too small. Collectives call it
	// with pooled scratch so steady-state encoding allocates nothing.
	EncodeTo func(dst []byte, v V) []byte
	// DecodeReduceInto, when set, fuses Decode and Reduce: it reduces
	// the value encoded in wire directly into acc — no intermediate
	// decoded value — and returns the updated accumulator. It must be
	// elementwise-identical to Decode-then-Reduce (the property tests
	// check bitwise equality) and must not retain wire. Setting it also
	// asserts that Decode never retains its input, which lets the
	// collectives release receive buffers back to the wire pool.
	DecodeReduceInto func(acc V, wire []byte) (V, error)
	// EncodedSize, when set, returns the exact wire size Encode would
	// produce for v. The collectives use it to draw an exactly-sized
	// pooled buffer before the very first encode of a loop, so even
	// step 0 avoids a grow-and-copy.
	EncodedSize func(v V) int

	// The six callbacks below enable the pipelined chunk fast path
	// (DESIGN.md §11) and must be set together; with any missing the
	// collectives fall back to whole-segment frames. A chunk payload is
	// a fixed-stride array of element words with no per-chunk length
	// prefix — counts ride in the frame's chunk header — so byte ranges
	// map linearly onto element ranges and a segment can be resegmented
	// at any element boundary.

	// Elems reports the element count of v.
	Elems func(v V) int
	// ChunkEncodedSize reports the exact payload size of an n-element
	// chunk. It must be linear in n (ChunkEncodedSize(n) ==
	// n·ChunkEncodedSize(1)); the collectives verify linearity once and
	// disable chunking otherwise.
	ChunkEncodedSize func(n int) int
	// EncodeChunkTo appends elements [off, off+n) of v to dst.
	EncodeChunkTo func(dst []byte, v V, off, n int) []byte
	// DecodeReduceChunkInto reduces a chunk payload into elements
	// [off, off+len) of acc in place — acc's identity is preserved, so
	// disjoint chunks of one segment may be reduced concurrently. It
	// must be elementwise identical to DecodeReduceInto over the same
	// range (the property tests check bitwise equality) and must not
	// retain payload.
	DecodeReduceChunkInto func(acc V, off int, payload []byte) error
	// MakeSegment returns a fresh n-element segment for chunked
	// allgather receives to assemble into.
	MakeSegment func(n int) V
	// DecodeChunkInto decodes a chunk payload into elements
	// [off, off+len) of dst. It must not retain payload.
	DecodeChunkInto func(dst V, off int, payload []byte) error

	// Floats, when set, returns an aliasing float64 view of elements
	// [off, off+n) of v — the hook the wire codecs (DESIGN.md §13)
	// quantize from and dequantize-reduce into. Only meaningful when the
	// chunk payload is 8-byte float64 words (ChunkEncodedSize(1) == 8);
	// compression is refused otherwise. Mutations through the view must
	// be visible in v.
	Floats func(v V, off, n int) []float64
}

// sizeHint picks the pooled-buffer size for the next encode: the exact
// encoded size when the ops can report it, otherwise the running size
// of the previous step's wire.
func sizeHint[V any](ops Ops[V], prev int, v V) int {
	if ops.EncodedSize != nil {
		return ops.EncodedSize(v)
	}
	return prev
}

// encodeInto encodes v reusing buf's capacity, via the EncodeTo fast
// path when available. buf must be an unaliased pool draw: when the
// encoder outgrows it and reallocates, the abandoned draw goes back to
// the pool instead of the garbage collector.
func encodeInto[V any](ops Ops[V], buf []byte, v V) []byte {
	var out []byte
	if ops.EncodeTo != nil {
		out = ops.EncodeTo(buf, v)
	} else {
		out = ops.Encode(buf[:0], v)
	}
	releaseIfAbandoned(buf, out)
	return out
}

// releaseIfAbandoned returns the pooled draw to the pool when the
// encoder reallocated and out no longer shares drawn's backing array.
func releaseIfAbandoned(drawn, out []byte) {
	if cap(drawn) > 0 && (cap(out) == 0 || &drawn[:1][0] != &out[:1][0]) {
		comm.Release(drawn)
	}
}

// F64Ops returns elementwise-sum Ops for []float64 segments — the
// aggregator shape of every MLlib workload in the paper — with all
// fast paths populated.
func F64Ops() Ops[[]float64] {
	return Ops[[]float64]{
		Reduce: func(a, b []float64) []float64 {
			linalg.AddAssign(a, b)
			return a
		},
		Encode:           encodeF64,
		Decode:           decodeF64,
		EncodeTo:         func(dst []byte, v []float64) []byte { return encodeF64(dst[:0], v) },
		DecodeReduceInto: decodeReduceIntoF64,
		EncodedSize:      func(v []float64) int { return 4 + 8*len(v) },

		Elems:                 func(v []float64) int { return len(v) },
		ChunkEncodedSize:      func(n int) int { return 8 * n },
		EncodeChunkTo:         encodeChunkF64,
		DecodeReduceChunkInto: decodeReduceChunkF64,
		MakeSegment:           func(n int) []float64 { return make([]float64, n) },
		DecodeChunkInto:       decodeChunkF64,

		Floats: func(v []float64, off, n int) []float64 { return v[off : off+n] },
	}
}

// encodeF64 appends a length-prefixed []float64 to dst, growing dst at
// most once to the exact 4+8·len size and then writing 8-byte words
// directly — no grow-through-append on the hot path.
func encodeF64(dst []byte, v []float64) []byte {
	need := 4 + 8*len(v)
	if cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	off := len(dst)
	dst = dst[:off+need]
	putUint32(dst[off:], uint32(len(v)))
	off += 4
	for _, f := range v {
		putFloat64(dst[off:], f)
		off += 8
	}
	return dst
}

// decodeF64 parses a length-prefixed []float64. The prefix is validated
// against len(src) before any allocation, so a corrupt prefix cannot
// trigger a huge make.
func decodeF64(src []byte) ([]float64, error) {
	n, body, err := f64WireBody(src)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = float64At(body, 8*i)
	}
	return out, nil
}

// f64WireBody validates a []float64 wire frame and returns its element
// count and payload bytes.
func f64WireBody(src []byte) (int, []byte, error) {
	if len(src) < 4 {
		return 0, nil, fmt.Errorf("collective: short []float64")
	}
	n := int(uint32At(src, 0))
	if n < 0 || n > (len(src)-4)/8 {
		return 0, nil, fmt.Errorf("collective: corrupt []float64 length prefix %d (%d payload bytes)", n, len(src)-4)
	}
	return n, src[4:], nil
}

// decodeReduceIntoF64 is the fused decode-reduce: acc[i] += wire[i]
// straight out of the wire bytes, 4-wide unrolled, no intermediate
// slice. Element adds are independent, so the result is bitwise
// identical to decodeF64 followed by F64Ops().Reduce.
func decodeReduceIntoF64(acc []float64, wire []byte) ([]float64, error) {
	n, body, err := f64WireBody(wire)
	if err != nil {
		return nil, err
	}
	if n != len(acc) {
		// A mismatched frame is a data-plane fault (corrupt or misrouted
		// message), so it must fail the step, not kill the process.
		return nil, fmt.Errorf("collective: segment length mismatch %d vs %d", len(acc), n)
	}
	i := 0
	for ; i+4 <= n; i += 4 {
		acc[i] += float64At(body, 8*i)
		acc[i+1] += float64At(body, 8*i+8)
		acc[i+2] += float64At(body, 8*i+16)
		acc[i+3] += float64At(body, 8*i+24)
	}
	for ; i < n; i++ {
		acc[i] += float64At(body, 8*i)
	}
	return acc, nil
}

// encodeChunkF64 appends elements [off, off+n) of v to dst as raw
// 8-byte words — no length prefix; the chunk header carries the counts.
// Grows dst at most once to the exact size, like encodeF64.
func encodeChunkF64(dst []byte, v []float64, off, n int) []byte {
	need := 8 * n
	if cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	o := len(dst)
	dst = dst[:o+need]
	for _, f := range v[off : off+n] {
		putFloat64(dst[o:], f)
		o += 8
	}
	return dst
}

// f64ChunkBody validates a raw-word chunk payload against the target
// range [off, off+n) of a seg-element segment and returns the element
// count.
func f64ChunkBody(payload []byte, off, seg int) (int, error) {
	if len(payload)%8 != 0 {
		return 0, fmt.Errorf("collective: chunk payload %d bytes is not word-aligned", len(payload))
	}
	n := len(payload) / 8
	if off < 0 || off+n > seg {
		return 0, fmt.Errorf("collective: chunk [%d,%d) outside segment of %d elems", off, off+n, seg)
	}
	return n, nil
}

// decodeReduceChunkF64 is the chunked fused decode-reduce:
// acc[off+i] += word i straight out of the payload, the same 4-wide
// unrolled kernel as decodeReduceIntoF64 over a sub-range. Element adds
// are independent and in-place, so sharding a chunk across cores stays
// bitwise identical to the sequential fused pass.
func decodeReduceChunkF64(acc []float64, off int, payload []byte) error {
	n, err := f64ChunkBody(payload, off, len(acc))
	if err != nil {
		return err
	}
	dst := acc[off : off+n]
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] += float64At(payload, 8*i)
		dst[i+1] += float64At(payload, 8*i+8)
		dst[i+2] += float64At(payload, 8*i+16)
		dst[i+3] += float64At(payload, 8*i+24)
	}
	for ; i < n; i++ {
		dst[i] += float64At(payload, 8*i)
	}
	return nil
}

// decodeChunkF64 copies a chunk payload into dst[off:] — the allgather
// assembly path.
func decodeChunkF64(dst []float64, off int, payload []byte) error {
	n, err := f64ChunkBody(payload, off, len(dst))
	if err != nil {
		return err
	}
	out := dst[off : off+n]
	for i := range out {
		out[i] = float64At(payload, 8*i)
	}
	return nil
}

// decodeReduce applies the fused path when available, falling back to
// Decode-then-Reduce. It reports whether the wire buffer is provably
// unretained and may be released to the pool — true for the fused path
// even on error, since DecodeReduceInto never retains wire.
func decodeReduce[V any](ops Ops[V], acc V, wire []byte) (V, bool, error) {
	if ops.DecodeReduceInto != nil {
		out, err := ops.DecodeReduceInto(acc, wire)
		if err != nil {
			return acc, true, err
		}
		return out, true, nil
	}
	v, err := ops.Decode(wire)
	if err != nil {
		return acc, false, err
	}
	return ops.Reduce(acc, v), false, nil
}

// RingReduceScatter reduces P×N segments held by each of N ranks so
// that afterwards every rank owns P fully-reduced segments (one per
// parallel channel). segs must have length P×N; segment j of channel p
// is segs[p*N + j], and all ranks must agree on this layout.
//
// The returned map is globalSegmentIndex -> reduced value. Rank r ends
// up owning, for each channel p, global segment p*N + (r+1)%N — the
// paper's Figure 11 schedule, run P-way in parallel over the PDR.
//
// ctx bounds the whole collective; wrap it with WithStepDeadline to
// additionally bound each pipelined step, classifying a silent peer as
// comm.ErrPeerTimeout and a dead one as comm.ErrPeerDown.
func RingReduceScatter[V any](ctx context.Context, e *comm.Endpoint, segs []V, parallelism int, ops Ops[V]) (map[int]V, error) {
	n := e.Size()
	p := parallelism
	if p <= 0 {
		return nil, fmt.Errorf("collective: parallelism must be positive, got %d", p)
	}
	if len(segs) != p*n {
		return nil, fmt.Errorf("collective: need %d segments (P=%d × N=%d), got %d", p*n, p, n, len(segs))
	}

	owned := make(map[int]V, p)
	if n == 1 {
		// Single rank: everything is already reduced.
		for i, s := range segs {
			owned[i] = s
		}
		return owned, nil
	}

	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
	)
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	epoch := EpochFrom(ctx)
	// Telemetry handles, chunk plan, codec and core budget resolved once
	// per collective: with neither a tracer nor a registry in ctx the
	// per-step cost is one branch and no time syscalls, keeping the PR 1
	// zero-allocation path intact.
	tel := telemetryFrom(ctx)
	chunkBytes := resolveChunkBytes(ctx)
	cores := CoresFrom(ctx)
	comp, err := resolveCompression(ctx, ops)
	if err != nil {
		return nil, err
	}
	r := e.Rank()
	for ch := 0; ch < p; ch++ {
		wg.Add(1)
		go func(ch int) {
			defer wg.Done()
			// A panic in a reduce callback (e.g. on corrupt or misrouted
			// data) must fail the collective, not kill the process.
			defer func() {
				if p := recover(); p != nil {
					setErr(fmt.Errorf("collective: rank %d ch %d panic: %v", r, ch, p))
				}
			}()
			block := segs[ch*n : (ch+1)*n]
			cur := make([]V, n)
			copy(cur, block)
			// One transfer engine per channel goroutine: its completion
			// channels, size hint and chunk plan persist across the
			// k-step loop, cycling pooled buffers instead of allocating
			// N-1 times.
			var rc ringChan[V]
			rc.init(e, ops, ch, epoch, tel, chunkBytes, cores, comp)
			for k := 0; k < n-1; k++ {
				if err := ringStepRS(ctx, &rc, cur, r, n, k); err != nil {
					setErr(err)
					return
				}
			}
			final := (r + 1) % n
			mu.Lock()
			owned[ch*n+final] = cur[final]
			mu.Unlock()
		}(ch)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return owned, nil
}

// ringStepRS runs one reduce-scatter step on one channel: open the step
// span, derive the step context, stream segment sendIdx to the
// successor while reducing the predecessor's segment into recvIdx.
func ringStepRS[V any](ctx context.Context, rc *ringChan[V], cur []V, r, n, k int) (err error) {
	var span *trace.ActiveSpan
	if rc.tel.on {
		start := time.Now()
		span = rc.tel.startStep("reduce-scatter", rc.ch, k, rc.epoch)
		defer func() {
			ns := time.Since(start).Nanoseconds()
			rc.tel.stepNS.Observe(ns)
			rc.tel.rec.Step("reduce-scatter", ns, rc.stepBytes, rc.epoch, rc.ch, k)
			span.EndErr(err)
		}()
	}
	sctx, cancel := stepContext(ctx)
	defer cancel()
	sendIdx := ((r-k)%n + n) % n
	recvIdx := ((r-k-1)%n + n) % n
	acc, err := rc.transferReduce(sctx, span, cur[sendIdx], cur[recvIdx], sendIdx)
	if err != nil {
		return fmt.Errorf("collective: rank %d ch %d step %d: %w", r, rc.ch, k, err)
	}
	cur[recvIdx] = acc
	return nil
}

// RingAllGather circulates each rank's owned segments around the ring
// until every rank holds all N segments of every channel. owned is the
// result of RingReduceScatter; the returned slice has length P×N with
// every entry populated identically on all ranks. ctx bounds the
// collective exactly as in RingReduceScatter.
func RingAllGather[V any](ctx context.Context, e *comm.Endpoint, owned map[int]V, parallelism int, ops Ops[V]) ([]V, error) {
	n := e.Size()
	p := parallelism
	all := make([]V, p*n)
	for i, v := range owned {
		if i < 0 || i >= p*n {
			return nil, fmt.Errorf("collective: owned segment index %d out of range", i)
		}
		all[i] = v
	}
	if n == 1 {
		return all, nil
	}

	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
	)
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	epoch := EpochFrom(ctx)
	tel := telemetryFrom(ctx)
	chunkBytes := resolveChunkBytes(ctx)
	cores := CoresFrom(ctx)
	comp, err := resolveCompression(ctx, ops)
	if err != nil {
		return nil, err
	}
	r := e.Rank()
	for ch := 0; ch < p; ch++ {
		wg.Add(1)
		go func(ch int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					setErr(fmt.Errorf("collective: allgather rank %d ch %d panic: %v", r, ch, p))
				}
			}()
			// After reduce-scatter rank r owns block index (r+1)%n.
			have := (r + 1) % n
			var rc ringChan[V]
			rc.init(e, ops, ch, epoch, tel, chunkBytes, cores, comp)
			// Frames received at step k are forwarded verbatim at step
			// k+1 (header rewrite only — no decode/re-encode on the
			// relay path, DESIGN.md §11); fwd carries them across steps.
			var fwd []fwdFrame
			for k := 0; k < n-1; k++ {
				next, err := ringStepAG(ctx, &rc, all, have, r, n, k, fwd)
				if err != nil {
					setErr(err)
					return
				}
				fwd = next
			}
		}(ch)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return all, nil
}

// ringStepAG runs one allgather step on one channel: relay the segment
// gathered last step (or encode our own on step 0) while assembling the
// predecessor's frames into all[recvIdx]. Returns the frames to forward
// on the next step.
func ringStepAG[V any](ctx context.Context, rc *ringChan[V], all []V, have, r, n, k int, fwd []fwdFrame) (next []fwdFrame, err error) {
	var span *trace.ActiveSpan
	if rc.tel.on {
		start := time.Now()
		span = rc.tel.startStep("allgather", rc.ch, k, rc.epoch)
		defer func() {
			ns := time.Since(start).Nanoseconds()
			rc.tel.stepNS.Observe(ns)
			rc.tel.rec.Step("allgather", ns, rc.stepBytes, rc.epoch, rc.ch, k)
			span.EndErr(err)
		}()
	}
	sctx, cancel := stepContext(ctx)
	defer cancel()
	sendIdx := ((have-k)%n + n) % n
	recvIdx := ((have-k-1)%n + n) % n
	// The last step's frames are not needed again; forwarding also
	// requires the release contract (DecodeReduceInto set) so relayed
	// buffers provably carry no aliases into decoded values.
	keep := k < n-2 && rc.releasable
	next, err = rc.transferGather(sctx, span, all, rc.ch*n+sendIdx, rc.ch*n+recvIdx, fwd, keep, k%2)
	if err != nil {
		return nil, fmt.Errorf("collective: allgather rank %d ch %d step %d: %w", r, rc.ch, k, err)
	}
	return next, nil
}

// RingAllReduce is reduce-scatter followed by allgather: every rank
// ends with the fully reduced P×N segments. This is the
// bandwidth-optimal allreduce Sparker's interface enables (listed as an
// enabled algorithm, §7 "fast reduction algorithms").
func RingAllReduce[V any](ctx context.Context, e *comm.Endpoint, segs []V, parallelism int, ops Ops[V]) ([]V, error) {
	owned, err := RingReduceScatter(ctx, e, segs, parallelism, ops)
	if err != nil {
		return nil, err
	}
	return RingAllGather(ctx, e, owned, parallelism, ops)
}
