package collective

// Microbenchmarks for the reduction hot path. These are the before/after
// evidence for the zero-allocation work: run with
//
//	go test -bench 'Hot|SerdeF64' -benchmem ./internal/collective
//
// and compare allocs/op against the numbers recorded in DESIGN.md
// ("Performance notes").

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"sparker/internal/comm"
	"sparker/internal/transport"
)

// BenchmarkRingReduceScatterHot drives the steady-state reduction data
// plane: N=4 ranks on the mem transport, 1 MiB float64 segments, P
// parallel channels — the configuration the paper's Figure 14 sweeps.
func BenchmarkRingReduceScatterHot(b *testing.B) {
	const (
		n      = 4
		segLen = 1 << 17 // 131072 float64 = 1 MiB per segment
	)
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			net := transport.NewMem()
			defer net.Close()
			eps, err := comm.NewGroup(net, fmt.Sprintf("hot-%d", p), n)
			if err != nil {
				b.Fatal(err)
			}
			defer comm.CloseGroup(eps)
			inputs := make([][][]float64, n)
			for r := range inputs {
				inputs[r] = make([][]float64, p*n)
				for i := range inputs[r] {
					seg := make([]float64, segLen)
					for j := range seg {
						seg[j] = float64(j%17) * 0.25
					}
					inputs[r][i] = seg
				}
			}
			// Bytes moved per op per rank: (n-1) steps × p channels × one
			// wire segment.
			b.SetBytes(int64((n - 1) * p * (4 + 8*segLen)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for _, e := range eps {
					wg.Add(1)
					go func(e *comm.Endpoint) {
						defer wg.Done()
						if _, err := RingReduceScatter(context.Background(), e, inputs[e.Rank()], p, F64Ops()); err != nil {
							b.Error(err)
						}
					}(e)
				}
				wg.Wait()
			}
		})
	}
}

// BenchmarkSerdeF64RoundTrip measures one encode+decode of a 1 MiB
// []float64 segment, reusing the wire buffer's capacity across
// iterations the way the ring loop does.
func BenchmarkSerdeF64RoundTrip(b *testing.B) {
	const segLen = 1 << 17
	seg := make([]float64, segLen)
	for j := range seg {
		seg[j] = float64(j%31) * 0.5
	}
	var wire []byte
	b.SetBytes(int64(4 + 8*segLen))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire = encodeF64(wire[:0], seg)
		out, err := decodeF64(wire)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != segLen {
			b.Fatalf("round trip lost data: %d", len(out))
		}
	}
}

// BenchmarkSerdeF64FusedDecodeReduce is the same round trip through the
// fused decode-reduce path the ring loops use: no intermediate decoded
// slice, zero allocations at steady state.
func BenchmarkSerdeF64FusedDecodeReduce(b *testing.B) {
	const segLen = 1 << 17
	seg := make([]float64, segLen)
	acc := make([]float64, segLen)
	for j := range seg {
		seg[j] = float64(j%31) * 0.5
	}
	var wire []byte
	b.SetBytes(int64(4 + 8*segLen))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire = encodeF64(wire[:0], seg)
		var err error
		acc, err = decodeReduceIntoF64(acc, wire)
		if err != nil {
			b.Fatal(err)
		}
	}
}
