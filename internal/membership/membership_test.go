package membership

import (
	"sync"
	"testing"
)

func TestBootView(t *testing.T) {
	r := NewRegistry([]string{"h0", "h1", "h2"})
	v := r.View()
	if v.Epoch != 1 {
		t.Fatalf("boot epoch = %d, want 1", v.Epoch)
	}
	if v.NumSlots() != 3 || v.NumLive() != 3 {
		t.Fatalf("slots=%d live=%d, want 3/3", v.NumSlots(), v.NumLive())
	}
	for p := 0; p < 12; p++ {
		if got := v.OwnerOf(p); got != p%3 {
			t.Fatalf("OwnerOf(%d) = %d, want %d (full membership must match p %% N)", p, got, p%3)
		}
	}
}

func TestEvictShiftsOwnership(t *testing.T) {
	r := NewRegistry([]string{"h0", "h1", "h2", "h3"})
	v, changed := r.Evict(1, "test")
	if !changed || v.Epoch != 2 {
		t.Fatalf("evict: changed=%v epoch=%d, want true/2", changed, v.Epoch)
	}
	if v.NumLive() != 3 || v.IsLive(1) {
		t.Fatalf("after evict: live=%d isLive(1)=%v", v.NumLive(), v.IsLive(1))
	}
	// Live set {0,2,3}: ownership cycles over survivors only.
	want := []int{0, 2, 3, 0, 2, 3}
	for p, w := range want {
		if got := v.OwnerOf(p); got != w {
			t.Fatalf("OwnerOf(%d) = %d, want %d", p, got, w)
		}
	}
	// Double-evict is a no-op.
	v2, changed2 := r.Evict(1, "again")
	if changed2 || v2.Epoch != v.Epoch {
		t.Fatalf("double evict: changed=%v epoch=%d", changed2, v2.Epoch)
	}
}

func TestJoinAdoptsDeadSlot(t *testing.T) {
	r := NewRegistry([]string{"h0", "h1", "h2"})
	r.Evict(2, "killed")
	id, v := r.Join("h2b")
	if id != 2 {
		t.Fatalf("join assigned slot %d, want adoption of dead slot 2", id)
	}
	if v.Epoch != 3 || v.NumSlots() != 3 || v.NumLive() != 3 {
		t.Fatalf("after adopt: epoch=%d slots=%d live=%d", v.Epoch, v.NumSlots(), v.NumLive())
	}
	if v.Members[2].Incarnation != 2 || v.HostOf(2) != "h2b" {
		t.Fatalf("adopted slot: inc=%d host=%q", v.Members[2].Incarnation, v.HostOf(2))
	}
	// Ownership identical to boot again.
	for p := 0; p < 9; p++ {
		if got := v.OwnerOf(p); got != p%3 {
			t.Fatalf("OwnerOf(%d) = %d after adoption, want %d", p, got, p%3)
		}
	}
}

func TestJoinGrowsTable(t *testing.T) {
	r := NewRegistry([]string{"h0", "h1"})
	id, v := r.Join("h2")
	if id != 2 || v.NumSlots() != 3 || v.NumLive() != 3 {
		t.Fatalf("grow join: id=%d slots=%d live=%d", id, v.NumSlots(), v.NumLive())
	}
	if v.Members[2].Incarnation != 1 {
		t.Fatalf("fresh slot incarnation = %d, want 1", v.Members[2].Incarnation)
	}
}

func TestSubscribeAndHistory(t *testing.T) {
	r := NewRegistry([]string{"h0", "h1"})
	var got []uint64
	r.Subscribe(func(v *View) { got = append(got, v.Epoch) })
	r.Evict(0, "x")
	r.Join("h0b")
	r.Leave(1)
	if len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Fatalf("subscriber epochs = %v, want [2 3 4]", got)
	}
	h := r.History()
	kinds := make([]string, len(h))
	for i, e := range h {
		kinds[i] = e.Kind
	}
	want := []string{"boot", "evict", "join", "leave"}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("history kinds = %v, want %v", kinds, want)
		}
	}
}

func TestViewImmutableUnderConcurrentMutation(t *testing.T) {
	r := NewRegistry([]string{"h0", "h1", "h2", "h3"})
	v1 := r.View()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				r.Evict(i%4, "chaos")
			} else {
				r.Join("hx")
			}
		}(i)
	}
	// Readers against the old snapshot while mutations fly.
	for p := 0; p < 100; p++ {
		if got := v1.OwnerOf(p); got != p%4 {
			t.Fatalf("snapshot OwnerOf(%d) changed to %d", p, got)
		}
	}
	wg.Wait()
	if r.View().Epoch < 2 {
		t.Fatalf("epoch did not advance: %d", r.View().Epoch)
	}
}

func TestOwnerOfEmpty(t *testing.T) {
	if got := OwnerOf(nil, 3); got != -1 {
		t.Fatalf("OwnerOf(empty) = %d, want -1", got)
	}
}

func TestJoinEpochTracksIncarnations(t *testing.T) {
	r := NewRegistry([]string{"h0", "h1"})
	if got := r.View().JoinEpochOf(0); got != 1 {
		t.Fatalf("boot JoinEpoch = %d, want 1", got)
	}
	r.Evict(1, "killed")             // epoch 2
	_, v := r.Join("h1b")            // epoch 3, adopts slot 1
	if got := v.JoinEpochOf(1); got != 3 {
		t.Fatalf("adopted slot JoinEpoch = %d, want 3", got)
	}
	if got := v.JoinEpochOf(0); got != 1 {
		t.Fatalf("untouched slot JoinEpoch = %d, want 1", got)
	}
	id, v2 := r.Join("h2") // epoch 4, grows table
	if got := v2.JoinEpochOf(id); got != 4 {
		t.Fatalf("grown slot JoinEpoch = %d, want 4", got)
	}
}

func TestSameIncarnation(t *testing.T) {
	r := NewRegistry([]string{"h0", "h1"})
	a := r.View()
	r.Evict(1, "killed")
	r.Join("h1b") // re-adopts slot 1 with incarnation 2
	b := r.View()
	if !SameIncarnation(a, b, 0) {
		t.Fatal("slot 0 unchanged but SameIncarnation = false")
	}
	// Slot 1 is live in both views, but the occupant changed — it must
	// NOT read as the same incarnation (the coalesced evict+rejoin case).
	if SameIncarnation(a, b, 1) {
		t.Fatal("slot 1 replaced between views but SameIncarnation = true")
	}
	if SameIncarnation(a, b, 7) {
		t.Fatal("out-of-range slot reads as same incarnation")
	}
}

func TestEvictIncarnationGuard(t *testing.T) {
	r := NewRegistry([]string{"h0", "h1"})
	r.Evict(1, "killed")  // epoch 2
	_, v := r.Join("h1b") // epoch 3: slot 1, incarnation 2, JoinEpoch 3
	// A verdict reached against the dead incarnation (JoinEpoch 1) must
	// not evict the replacement.
	if _, changed := r.EvictIncarnation(1, 1, "stale conn died"); changed {
		t.Fatal("EvictIncarnation with stale generation evicted the replacement")
	}
	if !r.View().IsLive(1) {
		t.Fatal("replacement no longer live after stale-generation evict")
	}
	// A verdict against the current incarnation goes through.
	if _, changed := r.EvictIncarnation(1, v.JoinEpochOf(1), "real failure"); !changed {
		t.Fatal("EvictIncarnation with matching generation was refused")
	}
	if r.View().IsLive(1) {
		t.Fatal("slot still live after matching-generation evict")
	}
	// And is idempotent once the slot is dead.
	if _, changed := r.EvictIncarnation(1, v.JoinEpochOf(1), "again"); changed {
		t.Fatal("EvictIncarnation evicted a dead slot")
	}
}
