// Package membership is the driver-side executor membership registry:
// the single source of truth for which executor slots are alive, keyed
// by a monotonically increasing membership epoch.
//
// The model is slot-based: executor IDs are dense indices into a slot
// table that only grows. A member that leaves or is evicted turns its
// slot Dead; a later join preferentially adopts the oldest dead slot
// (same executor ID, fresh incarnation) so owner math, block-store
// names and scheduler bookkeeping stay stable across a kill-and-replace
// cycle — the replacement literally takes over the dead rank. Joins
// beyond the slot table grow it.
//
// Every mutation produces a new immutable View with Epoch+1. Consumers
// (the rdd context, the scheduler, collectives) hold a View snapshot
// and resolve all partition-owner math through it: OwnerOf is the one
// placement-resolution path that used to be scattered p % NumExecutors
// expressions.
package membership

import (
	"fmt"
	"sync"
)

// State is one slot's liveness.
type State uint8

const (
	// Alive: the slot has a running executor.
	Alive State = iota
	// Dead: the slot's executor left, died or was evicted; a joining
	// replacement may adopt it.
	Dead
)

// String implements fmt.Stringer.
func (s State) String() string {
	if s == Alive {
		return "alive"
	}
	return "dead"
}

// Member is one slot of the membership table.
type Member struct {
	// ID is the slot index — the executor ID every other subsystem uses.
	ID int `json:"id"`
	// Host is the member's hostname (topology-aware rank ordering).
	Host string `json:"host"`
	// State is the slot's liveness.
	State State `json:"state"`
	// Incarnation counts how many executors have occupied this slot; it
	// distinguishes a replacement from the member it replaced.
	Incarnation int `json:"incarnation"`
	// JoinEpoch is the registry epoch at which the current incarnation
	// joined (1 for boot members). It is the generation executors carry
	// in their control-channel hello, so connections and executor
	// objects can be matched to exactly one incarnation of a slot.
	JoinEpoch uint64 `json:"joinEpoch"`
}

// View is one immutable epoch of the membership: the slot table plus
// the derived live set. Views are shared freely across goroutines.
type View struct {
	// Epoch is the view's version; every membership change bumps it.
	Epoch uint64
	// Members is the slot table, indexed by executor ID.
	Members []Member

	live []int // ascending IDs of Alive slots
}

// NumSlots returns the slot-table size (dead slots included) — the
// bound for any per-executor indexed array.
func (v *View) NumSlots() int { return len(v.Members) }

// NumLive returns the live executor count.
func (v *View) NumLive() int { return len(v.live) }

// Live returns the ascending IDs of live executors. Callers must not
// mutate the returned slice.
func (v *View) Live() []int { return v.live }

// IsLive reports whether slot id currently has a running executor.
func (v *View) IsLive(id int) bool {
	return id >= 0 && id < len(v.Members) && v.Members[id].State == Alive
}

// OwnerOf returns the live executor that owns partition part — the one
// placement-resolution path (formerly scattered p % NumExecutors
// expressions). With every slot alive it is exactly part % NumSlots,
// byte-compatible with the fixed-membership engine; with dead slots the
// live set is indexed cyclically so ownership stays dense.
func (v *View) OwnerOf(part int) int { return OwnerOf(v.live, part) }

// HostOf returns slot id's hostname ("" out of range).
func (v *View) HostOf(id int) string {
	if id < 0 || id >= len(v.Members) {
		return ""
	}
	return v.Members[id].Host
}

// IncarnationOf returns slot id's incarnation count (0 out of range).
func (v *View) IncarnationOf(id int) int {
	if id < 0 || id >= len(v.Members) {
		return 0
	}
	return v.Members[id].Incarnation
}

// JoinEpochOf returns the registry epoch slot id's current incarnation
// joined at (0 out of range).
func (v *View) JoinEpochOf(id int) uint64 {
	if id < 0 || id >= len(v.Members) {
		return 0
	}
	return v.Members[id].JoinEpoch
}

// SameIncarnation reports whether slot id is live in both views with an
// unchanged incarnation — the condition under which the slot's executor,
// connections and scheduler state carry over between the epochs. A slot
// that died and was re-adopted between the views is live in both but NOT
// the same incarnation; treating it as unchanged would leak the dead
// incarnation's resources.
func SameIncarnation(a, b *View, id int) bool {
	return a.IsLive(id) && b.IsLive(id) && a.IncarnationOf(id) == b.IncarnationOf(id)
}

// OwnerOf is the shared owner math over an ascending live set: partition
// part belongs to live[part % len(live)]. Exported package-level so the
// scheduler's StageView and the rdd context's Membership view resolve
// through literally the same function.
func OwnerOf(live []int, part int) int {
	if len(live) == 0 {
		return -1
	}
	if part < 0 {
		part = -part
	}
	return live[part%len(live)]
}

func deriveLive(members []Member) []int {
	live := make([]int, 0, len(members))
	for _, m := range members {
		if m.State == Alive {
			live = append(live, m.ID)
		}
	}
	return live
}

// Registry is the driver-side membership authority. All mutations are
// serialized internally; View returns the latest committed view.
//
// Note the registry records membership *decisions*; pushing a decided
// view out to executors (endpoint rebuilds, scheduler slot changes) is
// the rdd layer's reconfiguration loop, which trails the registry by
// design — see rdd.Context's installed view.
type Registry struct {
	mu      sync.Mutex
	view    *View
	subs    []func(*View)
	history []Event
}

// Event records one membership change for the debug plane.
type Event struct {
	Epoch  uint64 `json:"epoch"`
	Kind   string `json:"kind"` // "boot", "join", "leave", "evict"
	Exec   int    `json:"exec"`
	Host   string `json:"host,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// NewRegistry boots a registry with one Alive member per host at
// epoch 1.
func NewRegistry(hosts []string) *Registry {
	members := make([]Member, len(hosts))
	for i, h := range hosts {
		members[i] = Member{ID: i, Host: h, State: Alive, Incarnation: 1, JoinEpoch: 1}
	}
	v := &View{Epoch: 1, Members: members, live: deriveLive(members)}
	return &Registry{
		view:    v,
		history: []Event{{Epoch: 1, Kind: "boot", Exec: -1, Detail: fmt.Sprintf("%d executors", len(hosts))}},
	}
}

// View returns the latest committed view.
func (r *Registry) View() *View {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.view
}

// Subscribe registers f to be called (synchronously, in registration
// order, without the registry lock) after every committed change.
func (r *Registry) Subscribe(f func(*View)) {
	r.mu.Lock()
	r.subs = append(r.subs, f)
	r.mu.Unlock()
}

// History returns a copy of the recorded membership events, oldest
// first.
func (r *Registry) History() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.history...)
}

// commit installs next (Epoch already bumped), records ev, and notifies
// subscribers outside the lock.
func (r *Registry) commit(next *View, ev Event) {
	r.view = next
	ev.Epoch = next.Epoch
	r.history = append(r.history, ev)
	subs := append([]func(*View){}, r.subs...)
	r.mu.Unlock()
	for _, f := range subs {
		f(next)
	}
	r.mu.Lock()
}

// mutate clones the current slot table, applies f (returning the event
// to record and whether to commit), and bumps the epoch.
func (r *Registry) mutate(f func(members []Member) (Event, bool)) *View {
	r.mu.Lock()
	defer r.mu.Unlock()
	members := append([]Member(nil), r.view.Members...)
	ev, ok := f(members)
	if !ok {
		return r.view
	}
	next := &View{Epoch: r.view.Epoch + 1, Members: members, live: deriveLive(members)}
	r.commit(next, ev)
	return next
}

// Join admits a new executor on host: the oldest dead slot is adopted
// (fresh incarnation), or the table grows by one. Returns the assigned
// executor ID and the committed view.
func (r *Registry) Join(host string) (int, *View) {
	r.mu.Lock()
	defer r.mu.Unlock()
	members := append([]Member(nil), r.view.Members...)
	epoch := r.view.Epoch + 1
	id := -1
	detail := ""
	for i := range members {
		if members[i].State == Dead {
			id = i
			members[i].Host = host
			members[i].State = Alive
			members[i].Incarnation++
			members[i].JoinEpoch = epoch
			detail = fmt.Sprintf("adopted dead slot, incarnation %d", members[i].Incarnation)
			break
		}
	}
	if id < 0 {
		id = len(members)
		members = append(members, Member{ID: id, Host: host, State: Alive, Incarnation: 1, JoinEpoch: epoch})
		detail = "new slot"
	}
	next := &View{Epoch: r.view.Epoch + 1, Members: members, live: deriveLive(members)}
	r.commit(next, Event{Kind: "join", Exec: id, Host: host, Detail: detail})
	return id, next
}

// Leave records a voluntary departure of executor id. Idempotent:
// leaving a dead slot is a no-op.
func (r *Registry) Leave(id int) *View {
	v, _ := r.depart(id, "leave", "voluntary leave")
	return v
}

// Evict records a failure-detector eviction of executor id, returning
// the committed view and whether the call actually changed state (false
// when the slot was already dead — detector races are expected).
func (r *Registry) Evict(id int, reason string) (*View, bool) {
	return r.depart(id, "evict", reason)
}

// EvictIncarnation evicts slot id only while its current incarnation's
// join epoch still equals joinEpoch. Failure detectors use it so a
// verdict reached against one incarnation (a severed ctrl conn, a
// missed heartbeat) can never evict a replacement that has since
// adopted the slot — the classic ABA hazard of reused slot IDs.
func (r *Registry) EvictIncarnation(id int, joinEpoch uint64, reason string) (*View, bool) {
	var changed bool
	v := r.mutate(func(members []Member) (Event, bool) {
		if id < 0 || id >= len(members) || members[id].State != Alive ||
			members[id].JoinEpoch != joinEpoch {
			return Event{}, false
		}
		members[id].State = Dead
		changed = true
		return Event{Kind: "evict", Exec: id, Host: members[id].Host, Detail: reason}, true
	})
	return v, changed
}

func (r *Registry) depart(id int, kind, detail string) (*View, bool) {
	var changed bool
	v := r.mutate(func(members []Member) (Event, bool) {
		if id < 0 || id >= len(members) || members[id].State != Alive {
			return Event{}, false
		}
		members[id].State = Dead
		changed = true
		return Event{Kind: kind, Exec: id, Host: members[id].Host, Detail: detail}, true
	})
	return v, changed
}
