package rdd

import (
	"testing"

	"sparker/internal/trace"
)

func TestTaskFrameRoundTrip(t *testing.T) {
	// Untraced frames stay at the 16-byte seed format.
	b := encodeTaskFrame(7, 3, 1, trace.SpanContext{})
	if len(b) != taskFrameSize {
		t.Fatalf("untraced frame is %d bytes, want %d", len(b), taskFrameSize)
	}
	jobID, task, attempt, tc, err := decodeTaskFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if jobID != 7 || task != 3 || attempt != 1 || tc.Valid() {
		t.Fatalf("decoded %d/%d/%d tc=%+v", jobID, task, attempt, tc)
	}

	// Traced frames append the 16-byte span context.
	want := trace.SpanContext{TraceID: 0xAAAA, SpanID: 0xBBBB}
	b = encodeTaskFrame(9, 0, 2, want)
	if len(b) != taskFrameTracedSize {
		t.Fatalf("traced frame is %d bytes, want %d", len(b), taskFrameTracedSize)
	}
	jobID, task, attempt, tc, err = decodeTaskFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if jobID != 9 || task != 0 || attempt != 2 || tc != want {
		t.Fatalf("decoded %d/%d/%d tc=%+v", jobID, task, attempt, tc)
	}

	if _, _, _, _, err := decodeTaskFrame(b[:10]); err == nil {
		t.Fatal("short frame decoded without error")
	}
}

// TestJobSpansParentTasks runs a traced job and verifies the span tree:
// one stage span per job, task spans on each executor parenting on the
// stage, all in the trace the TraceParent joined.
func TestJobSpansParentTasks(t *testing.T) {
	exp := &trace.MemExporter{}
	tr := trace.New(exp)
	ctx, err := NewContext(Config{
		Name:             "trace-job",
		NumExecutors:     3,
		CoresPerExecutor: 2,
		Tracer:           tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()

	root := tr.StartRoot("test-root")
	const tasks = 6
	if _, err := ctx.RunJob(JobSpec{
		Tasks:       tasks,
		TraceParent: root.Context(),
		Fn: func(ec *ExecContext, task, attempt int) ([]byte, error) {
			if !ec.TaskSpan().Valid() {
				t.Error("task closure sees no task span")
			}
			return nil, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	root.End()

	stages := exp.Named("stage")
	if len(stages) != 1 {
		t.Fatalf("%d stage spans, want 1", len(stages))
	}
	stage := stages[0]
	if stage.ParentID != root.Context().SpanID {
		t.Errorf("stage parent %x, want root %x", stage.ParentID, root.Context().SpanID)
	}
	if stage.TraceID != root.Context().TraceID {
		t.Errorf("stage trace %x, want root trace %x", stage.TraceID, root.Context().TraceID)
	}
	taskSpans := exp.Named("task")
	if len(taskSpans) != tasks {
		t.Fatalf("%d task spans, want %d", len(taskSpans), tasks)
	}
	execs := map[string]bool{}
	for _, ts := range taskSpans {
		if ts.ParentID != stage.SpanID {
			t.Errorf("task parent %x, want stage %x", ts.ParentID, stage.SpanID)
		}
		if ts.TraceID != root.Context().TraceID {
			t.Errorf("task trace %x escaped the root trace", ts.TraceID)
		}
		if v, ok := ts.Attr("exec"); ok {
			execs[v] = true
		} else {
			t.Error("task span missing exec attr")
		}
	}
	if len(execs) < 2 {
		t.Errorf("task spans landed on %d executors, want >= 2", len(execs))
	}
}

// TestUntracedJobEmitsNoSpans guards the disabled path: no tracer in
// the config means no spans anywhere, even with a TraceParent set.
func TestUntracedJobEmitsNoSpans(t *testing.T) {
	ctx, err := NewContext(Config{
		Name:             "untraced-job",
		NumExecutors:     2,
		CoresPerExecutor: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()
	if _, err := ctx.RunJob(JobSpec{
		Tasks: 2,
		Fn: func(ec *ExecContext, task, attempt int) ([]byte, error) {
			if ec.TaskSpan().Valid() {
				t.Error("untraced task has a span")
			}
			return nil, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
}

// TestTaskSpanRecordsFailure checks that a failing task's span carries
// the error and that retries produce one task span per attempt.
func TestTaskSpanRecordsFailure(t *testing.T) {
	exp := &trace.MemExporter{}
	tr := trace.New(exp)
	ctx, err := NewContext(Config{
		Name:             "trace-fail",
		NumExecutors:     2,
		CoresPerExecutor: 1,
		Tracer:           tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()

	root := tr.StartRoot("r")
	attempts := 0
	if _, err := ctx.RunJob(JobSpec{
		Tasks:       1,
		TraceParent: root.Context(),
		Fn: func(ec *ExecContext, task, attempt int) ([]byte, error) {
			attempts++
			if attempt == 0 {
				panic("first attempt dies")
			}
			return nil, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	root.End()

	taskSpans := exp.Named("task")
	if len(taskSpans) != attempts {
		t.Fatalf("%d task spans for %d attempts", len(taskSpans), attempts)
	}
	var failed int
	for _, ts := range taskSpans {
		if _, ok := ts.Attr("error"); ok {
			failed++
		}
	}
	if failed != 1 {
		t.Fatalf("%d task spans carry an error, want 1 (the panicking attempt)", failed)
	}
}

func TestMergedMetrics(t *testing.T) {
	ctx, err := NewContext(Config{
		Name:             "merged-metrics",
		NumExecutors:     3,
		CoresPerExecutor: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()

	// Each executor observes into its own registry from a task.
	if _, err := ctx.RunOnAllExecutors(func(ec *ExecContext, task, attempt int) ([]byte, error) {
		ec.Registry.Histogram("test.hist").Observe(int64(ec.ID + 1))
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	merged := ctx.MergedMetrics()
	s := merged.Histogram("test.hist").Snapshot()
	if s.Count != 3 {
		t.Fatalf("merged count = %d, want 3", s.Count)
	}
	if s.Min != 1 || s.Max != 3 {
		t.Fatalf("merged min/max = %d/%d", s.Min, s.Max)
	}
	// The merge is a snapshot: a fresh merge after more observes grows.
	if _, err := ctx.RunOnAllExecutors(func(ec *ExecContext, task, attempt int) ([]byte, error) {
		ec.Registry.Histogram("test.hist").Observe(10)
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := ctx.MergedMetrics().Histogram("test.hist").Count(); got != 6 {
		t.Fatalf("re-merged count = %d, want 6", got)
	}
}
