package rdd

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"sparker/internal/sched"
)

// TestStopDrainsInflightJobs: Stop must let running jobs finish before
// the transport closes, where a bare Close would strand them.
func TestStopDrainsInflightJobs(t *testing.T) {
	ctx, err := NewContext(Config{Name: "t-stop", NumExecutors: 2, CoresPerExecutor: 2})
	if err != nil {
		t.Fatal(err)
	}
	const jobs = 6
	handles := make([]*JobHandle, jobs)
	for i := range handles {
		h, err := ctx.SubmitJob(JobSpec{
			Tasks: 2,
			Fn: func(ec *ExecContext, task, attempt int) ([]byte, error) {
				time.Sleep(10 * time.Millisecond)
				return []byte{byte(task)}, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	if n := ctx.ActiveJobs(); n == 0 {
		t.Fatal("no jobs tracked in flight")
	}
	if err := ctx.Stop(5 * time.Second); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	for i, h := range handles {
		if _, err := h.Wait(); err != nil {
			t.Fatalf("job %d stranded by Stop: %v", i, err)
		}
	}
	if n := ctx.ActiveJobs(); n != 0 {
		t.Fatalf("%d jobs still tracked after Stop", n)
	}
}

// TestStopDrainDeadline: a job outliving the drain budget fails (it is
// the straggler Close would have failed anyway), and Stop reports it.
func TestStopDrainDeadline(t *testing.T) {
	ctx, err := NewContext(Config{Name: "t-deadline", NumExecutors: 1, CoresPerExecutor: 1})
	if err != nil {
		t.Fatal(err)
	}
	h, err := ctx.SubmitJob(JobSpec{
		Tasks: 1,
		Fn: func(ec *ExecContext, task, attempt int) ([]byte, error) {
			// Far longer than the drain budget, short enough that Close
			// (which waits out executor workers) finishes promptly after.
			time.Sleep(500 * time.Millisecond)
			return nil, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Stop(30 * time.Millisecond); err == nil {
		t.Fatal("Stop returned nil with a job past the drain deadline")
	}
	if _, err := h.Wait(); err == nil {
		t.Fatal("job past the drain deadline should fail once Close lands")
	}
}

// TestStopLeavesNoGoroutines is the leak check: a serve-style cycle of
// jobs followed by Stop must return the process to its baseline
// goroutine count (executor pools, senders, watchers all gone).
func TestStopLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for cycle := 0; cycle < 3; cycle++ {
		ctx, err := NewContext(Config{Name: fmt.Sprintf("t-leak-%d", cycle), NumExecutors: 2, CoresPerExecutor: 2})
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 8; j++ {
			if _, err := ctx.RunJob(JobSpec{
				Tasks: 4,
				Fn: func(ec *ExecContext, task, attempt int) ([]byte, error) {
					return []byte{1}, nil
				},
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := ctx.Stop(5 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked across Stop cycles: before=%d after=%d", before, runtime.NumGoroutine())
}

// TestConcurrentSubmitJobTenants races N tenants x M jobs through
// SubmitJob from separate goroutines; every handle must resolve
// exactly once with correct per-task payloads and the scheduler's
// per-tenant slot accounting must return to zero.
func TestConcurrentSubmitJobTenants(t *testing.T) {
	ctx, err := NewContext(Config{Name: "t-multi", NumExecutors: 3, CoresPerExecutor: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()
	const tenants, jobsPer = 4, 12
	for i := 0; i < tenants; i++ {
		if err := ctx.ConfigureTenant(fmt.Sprintf("t%d", i), sched.TenantConfig{Weight: float64(1 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for ti := 0; ti < tenants; ti++ {
		for ji := 0; ji < jobsPer; ji++ {
			wg.Add(1)
			go func(ti, ji int) {
				defer wg.Done()
				want := byte(ti*16 + ji%16)
				h, err := ctx.SubmitJob(JobSpec{
					Tenant: fmt.Sprintf("t%d", ti),
					Tasks:  3,
					Fn: func(ec *ExecContext, task, attempt int) ([]byte, error) {
						time.Sleep(time.Millisecond)
						return []byte{want, byte(task)}, nil
					},
				})
				if err != nil {
					t.Errorf("tenant %d job %d submit: %v", ti, ji, err)
					return
				}
				out, err := h.Wait()
				if err != nil {
					t.Errorf("tenant %d job %d: %v", ti, ji, err)
					return
				}
				for task, p := range out {
					if len(p) != 2 || p[0] != want || p[1] != byte(task) {
						t.Errorf("tenant %d job %d task %d: payload %v", ti, ji, task, p)
					}
				}
				out2, err2 := h.Wait()
				if err2 != nil || len(out2) != len(out) {
					t.Errorf("tenant %d job %d: second Wait diverged", ti, ji)
				}
			}(ti, ji)
		}
	}
	wg.Wait()
	if err := ctx.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	stats := ctx.TenantStats()
	var completed int64
	for name, ts := range stats {
		if ts.InUse != 0 || ts.Queued != 0 {
			t.Fatalf("tenant %s: InUse=%d Queued=%d after drain", name, ts.InUse, ts.Queued)
		}
		completed += ts.Completed
	}
	if want := int64(tenants * jobsPer * 3); completed < want {
		t.Fatalf("tenant accounting shows %d completed attempts, want >= %d", completed, want)
	}
}

// TestTenantAPIAfterClose: the tenant APIs degrade cleanly on a closed
// context.
func TestTenantAPIAfterClose(t *testing.T) {
	ctx, err := NewContext(Config{Name: "t-closed", NumExecutors: 1, CoresPerExecutor: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx.Close()
	if err := ctx.ConfigureTenant("x", sched.TenantConfig{Weight: 1}); !errors.Is(err, sched.ErrSchedulerClosed) {
		t.Fatalf("ConfigureTenant after Close: %v", err)
	}
	if st := ctx.TenantStats(); st != nil {
		t.Fatalf("TenantStats after Close: %v", st)
	}
}
