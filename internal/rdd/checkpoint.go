package rdd

// Checkpoint replication and repair. A checkpointed RDD keeps each
// partition's bytes in two block stores: the primary on the partition's
// owner (wherever the checkpoint stage actually ran) and a buddy
// replica on the next live executor after the owner in live order.
// When membership changes, repairCheckpoint re-establishes the
// invariant: a dead owner's partition is promoted from its replica (or,
// if both copies died, recomputed from lineage — checkpointing here
// truncates reads, not the recipe), and missing replicas are restored.
// This is what lets a replacement executor adopt a dead rank's blocks
// mid-training instead of forcing a full recompute.

import (
	"fmt"

	"sparker/internal/membership"
	"sparker/internal/metrics"
)

// checkpointReplicaID names the buddy replica block of a checkpointed
// partition, distinct from the primary checkpointBlockID so both can
// coexist on one store after a promotion.
func (r *RDD[T]) checkpointReplicaID(part int) string {
	return fmt.Sprintf("ckpt/%d/%d/r", r.id, part)
}

// ckptOwnerOf returns the executor holding partition part's primary
// checkpoint block (falling back to the epoch's owner math when the
// checkpoint stage recorded nothing).
func (r *RDD[T]) ckptOwnerOf(part int) int {
	if owners := r.ckptOwners.Load(); owners != nil &&
		part < len(*owners) && (*owners)[part] >= 0 {
		return (*owners)[part]
	}
	return r.ctx.OwnerOf(part)
}

// ckptReplicaOf returns the executor holding partition part's buddy
// replica, or -1 when none exists.
func (r *RDD[T]) ckptReplicaOf(part int) int {
	if reps := r.ckptReplicas.Load(); reps != nil && part < len(*reps) {
		return (*reps)[part]
	}
	return -1
}

// buddyOf picks the replica executor for a partition owned by owner:
// the next live executor after the owner in live order, so replicas
// spread instead of piling onto one survivor. Returns -1 when the
// cluster is too small to replicate.
func buddyOf(owner int, live []int) int {
	if len(live) < 2 {
		return -1
	}
	for i, e := range live {
		if e == owner {
			return live[(i+1)%len(live)]
		}
	}
	return live[0]
}

func liveContains(live []int, e int) bool {
	for _, l := range live {
		if l == e {
			return true
		}
	}
	return false
}

// installCkptRepairHook subscribes the RDD's repair pass to membership
// reconfigurations. Registered once per RDD via ckptHook.
//
// Repair is a cluster-wide copy/recompute job, so it must not run on
// the reconfiguration goroutine itself: blocking there would freeze
// epoch installs for the whole repair (evictions during repair would go
// unacted-on, and the window in which epochs coalesce would widen to
// the repair duration). The hook therefore only kicks a dedicated
// repair goroutine; repeated triggers while a repair is in flight
// coalesce into one follow-up pass, which re-reads the then-current
// live set and so covers every epoch that installed meanwhile.
func (r *RDD[T]) installCkptRepairHook() {
	kick := make(chan struct{}, 1)
	quit := r.ctx.memb.quit
	r.ctx.OnReconfigure(func(*membership.View) {
		select {
		case kick <- struct{}{}:
		default:
		}
	})
	go func() {
		for {
			select {
			case <-quit:
				return
			case <-kick:
				r.repairCheckpoint()
			}
		}
	}()
}

// replicateCheckpoint establishes the buddy replica for every
// checkpointed partition. Called right after the checkpoint stage and
// again (via restoreReplicasLocked) during repair.
func (r *RDD[T]) replicateCheckpoint() error {
	r.ckptMu.Lock()
	defer r.ckptMu.Unlock()
	return r.restoreReplicasLocked()
}

// restoreReplicasLocked copies the primary block of every partition
// whose replica is missing, dead, or colocated with its owner onto the
// owner's buddy, then records the replica map. Caller holds ckptMu.
func (r *RDD[T]) restoreReplicasLocked() error {
	live := r.ctx.LiveExecutors()
	reps := make([]int, r.parts)
	var copyParts, copyDst, copySrc []int
	for p := 0; p < r.parts; p++ {
		owner := r.ckptOwnerOf(p)
		cur := r.ckptReplicaOf(p)
		if cur >= 0 && cur != owner && liveContains(live, cur) {
			reps[p] = cur // existing replica still valid; keep it
			continue
		}
		buddy := buddyOf(owner, live)
		reps[p] = buddy
		if buddy < 0 {
			continue // cluster too small to replicate
		}
		copyParts = append(copyParts, p)
		copyDst = append(copyDst, buddy)
		copySrc = append(copySrc, owner)
	}
	if len(copyParts) > 0 {
		h, err := r.ctx.SubmitJob(JobSpec{
			Tasks:     len(copyParts),
			Placement: copyDst,
			Fn: func(ec *ExecContext, task, attempt int) ([]byte, error) {
				p := copyParts[task]
				wire, err := ec.Store.FetchFrom(
					r.ctx.ExecutorStoreName(copySrc[task]), r.checkpointBlockID(p))
				if err != nil {
					return nil, fmt.Errorf("replicate partition %d: %w", p, err)
				}
				ec.Store.PutLocal(r.checkpointReplicaID(p), wire)
				return nil, nil
			},
		})
		if err == nil {
			_, err = h.Wait()
		}
		if err != nil {
			return err
		}
	}
	r.ckptReplicas.Store(&reps)
	return nil
}

// repairCheckpoint restores the primary+replica invariant after a
// membership change. It runs from the reconfiguration hook (and is
// safe to call directly): promote replicas whose owner died, recompute
// partitions that lost both copies, then restore missing replicas.
// Failures are recorded but non-fatal — reads degrade through the
// replica and lineage ladder until a later repair succeeds.
func (r *RDD[T]) repairCheckpoint() {
	if !r.checkpointed.Load() {
		return
	}
	r.ckptMu.Lock()
	defer r.ckptMu.Unlock()
	live := r.ctx.LiveExecutors()
	if len(live) == 0 {
		return
	}
	owners := make([]int, r.parts)
	for p := 0; p < r.parts; p++ {
		owners[p] = r.ckptOwnerOf(p)
	}
	// Phase 1: re-home partitions whose primary owner died. Promotion
	// runs on the replica's executor (a local block copy); partitions
	// with no surviving copy recompute from lineage on their new owner.
	var lostParts, newOwners []int
	var fromReplica []bool
	for p := 0; p < r.parts; p++ {
		if liveContains(live, owners[p]) {
			continue
		}
		if rep := r.ckptReplicaOf(p); rep >= 0 && liveContains(live, rep) {
			lostParts = append(lostParts, p)
			newOwners = append(newOwners, rep)
			fromReplica = append(fromReplica, true)
		} else {
			lostParts = append(lostParts, p)
			newOwners = append(newOwners, r.ctx.OwnerOf(p))
			fromReplica = append(fromReplica, false)
		}
	}
	repaired := 0
	if len(lostParts) > 0 {
		h, err := r.ctx.SubmitJob(JobSpec{
			Tasks:     len(lostParts),
			Placement: newOwners,
			Fn: func(ec *ExecContext, task, attempt int) ([]byte, error) {
				p := lostParts[task]
				if fromReplica[task] {
					// The task runs on the replica's executor, so this
					// fetch resolves locally.
					wire, err := ec.Store.FetchFrom(
						r.ctx.ExecutorStoreName(newOwners[task]), r.checkpointReplicaID(p))
					if err == nil {
						ec.Store.PutLocal(r.checkpointBlockID(p), wire)
						return nil, nil
					}
				}
				data, err := r.compute(ec, p)
				if err != nil {
					return nil, fmt.Errorf("recompute partition %d: %w", p, err)
				}
				wire, err := encodeSlice(data)
				if err != nil {
					return nil, err
				}
				ec.Store.PutLocal(r.checkpointBlockID(p), wire)
				return nil, nil
			},
		})
		if err == nil {
			_, err = h.Wait()
		}
		if err != nil {
			r.ctx.RecordMarker(metrics.CounterCheckpointRepair,
				fmt.Sprintf("rdd=%d primary repair failed: %v", r.id, err))
			return
		}
		for i, p := range lostParts {
			owners[p] = newOwners[i]
		}
		repaired = len(lostParts)
	}
	r.ckptOwners.Store(&owners)
	// Phase 2: restore the replica invariant against the new live set.
	if err := r.restoreReplicasLocked(); err != nil {
		r.ctx.RecordMarker(metrics.CounterCheckpointRepair,
			fmt.Sprintf("rdd=%d replica restore failed: %v", r.id, err))
		return
	}
	r.ctx.RecordMarker(metrics.CounterCheckpointRepair,
		fmt.Sprintf("rdd=%d epoch=%d promoted-or-recomputed=%d live=%d",
			r.id, r.ctx.MembershipEpoch(), repaired, len(live)))
}
