package rdd

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"sparker/internal/metrics"
	"sparker/internal/transport"
)

// stragglerContext builds a context whose executor 0 sits behind a
// transport that delays every task-channel message by delay — the
// straggling-node shape speculation exists for. The executor computes
// at full speed; its work just arrives and reports late.
func stragglerContext(t *testing.T, name string, delay time.Duration, speculation bool) *Context {
	t.Helper()
	var net transport.Network = transport.NewMem()
	if delay > 0 {
		slow := taskAddr(name, 0)
		net = transport.NewFaulty(net, 1,
			transport.StragglerRule(func(a transport.Addr) bool { return a == slow }, delay, 0))
	}
	ctx, err := NewContext(Config{
		Name:                  name,
		NumExecutors:          4,
		CoresPerExecutor:      1,
		Network:               net,
		Speculation:           speculation,
		SpeculationMultiplier: 3,
		SpeculationQuantile:   0.5,
		SpeculationInterval:   5 * time.Millisecond,
		SpeculationMinRuntime: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctx.Close() })
	return ctx
}

// stragglerPayload is deterministic per task so results can be compared
// bitwise across runs.
func stragglerPayload(task int) []byte {
	out := make([]byte, 64)
	for i := range out {
		out[i] = byte(task*31 + i)
	}
	return out
}

func runStragglerStage(t *testing.T, ctx *Context) ([][]byte, []int) {
	t.Helper()
	h, err := ctx.SubmitJob(JobSpec{
		Tasks: 4,
		Fn: func(ec *ExecContext, task, attempt int) ([]byte, error) {
			time.Sleep(30 * time.Millisecond)
			return stragglerPayload(task), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	return out, h.Executors()
}

// TestStragglerSpeculation is the straggler chaos test: with executor
// 0's task channel delayed 10× the task runtime, speculation must
// launch exactly one duplicate, the fast copy must win on a different
// executor, and the results must be bitwise identical to both the
// unperturbed run and the speculation-off run.
func TestStragglerSpeculation(t *testing.T) {
	// Unperturbed baseline.
	base, _ := runStragglerStage(t, stragglerContext(t, "t-strag-base", 0, false))

	// Straggler with speculation off: correct but slow (the stage waits
	// out the full transport delay both ways).
	offCtx := stragglerContext(t, "t-strag-off", 300*time.Millisecond, false)
	offStart := time.Now()
	off, offExecs := runStragglerStage(t, offCtx)
	offWall := time.Since(offStart)

	// Straggler with speculation on.
	onCtx := stragglerContext(t, "t-strag-on", 300*time.Millisecond, true)
	onStart := time.Now()
	on, onExecs := runStragglerStage(t, onCtx)
	onWall := time.Since(onStart)

	for task := range base {
		if !bytes.Equal(base[task], off[task]) {
			t.Fatalf("task %d: speculation-off result differs from baseline", task)
		}
		if !bytes.Equal(base[task], on[task]) {
			t.Fatalf("task %d: speculation-on result differs from baseline", task)
		}
	}

	// Without speculation, task 0 must have run on its home executor and
	// paid the delay twice (frame in, result out).
	if offExecs[0] != 0 {
		t.Fatalf("speculation-off task 0 ran on executor %d, want 0", offExecs[0])
	}
	if offWall < 600*time.Millisecond {
		t.Fatalf("speculation-off wall %v, expected >= 600ms of transport delay", offWall)
	}

	// With speculation, the duplicate must win somewhere off executor 0,
	// well before the delayed original reports.
	if onExecs[0] == 0 {
		t.Fatal("speculation-on task 0 still won on the straggler executor")
	}
	if got := onCtx.Metrics().Count(metrics.CounterSpecLaunched); got != 1 {
		t.Fatalf("spec-launched count %d, want exactly 1", got)
	}
	if got := onCtx.Metrics().Count(metrics.CounterSpecWon); got != 1 {
		t.Fatalf("spec-won count %d, want 1", got)
	}
	if onWall >= offWall {
		t.Fatalf("speculation-on wall %v not faster than speculation-off %v", onWall, offWall)
	}

	// Healthy tasks stay put: round-robin homes for tasks 1-3.
	for task := 1; task < 4; task++ {
		if onExecs[task] != task {
			t.Fatalf("task %d ran on executor %d, want %d", task, onExecs[task], task)
		}
	}
}

// TestStragglerSpeculationPipeline runs a real RDD action through the
// straggling cluster and checks end-to-end results match a healthy run,
// exercising the block-fetch paths that consume winner placements.
func TestStragglerSpeculationPipeline(t *testing.T) {
	compute := func(ctx *Context) []int64 {
		r := FromSlice(ctx, ints(64), 4)
		slow := Map(r, func(v int64) int64 {
			time.Sleep(time.Millisecond)
			return v * 3
		})
		out, err := Collect(slow)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := compute(stragglerContext(t, "t-strag-pipe-base", 0, false))
	got := compute(stragglerContext(t, "t-strag-pipe-on", 200*time.Millisecond, true))
	if len(want) != len(got) {
		t.Fatalf("length %d != %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("element %d: %d != %d", i, got[i], want[i])
		}
	}
}

// TestStragglerTreeAggregate checks combine rounds follow recorded
// winner placements: a speculated stage-1 task's block lands off its
// round-robin home, and the next round must fetch from the winner.
func TestStragglerTreeAggregate(t *testing.T) {
	ctx := stragglerContext(t, "t-strag-tree", 200*time.Millisecond, true)
	r := FromSlice(ctx, ints(512), 4)
	slowed := Map(r, func(v int64) int64 {
		time.Sleep(time.Millisecond)
		return v
	})
	got, err := TreeAggregate(slowed,
		func() int64 { return 0 },
		func(acc, v int64) int64 { return acc + v },
		func(a, b int64) int64 { return a + b },
		AggregateOptions{Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, v := range ints(512) {
		want += v
	}
	if got != want {
		t.Fatalf("sum %d, want %d", got, want)
	}
	if fmt.Sprint(ctx.Metrics().Count(metrics.CounterResultDropped)) != "0" {
		t.Fatal("results were dropped on the floor")
	}
}
