package rdd

import (
	"fmt"

	"sparker/internal/serde"
)

// JoinedValue carries one match of an inner join.
type JoinedValue[L, R any] struct {
	Left  L
	Right R
}

// Join performs an inner hash join of two pair RDDs: both sides are
// shuffled to numPartitions by key hash (reusing the ReduceByKey
// machinery with list accumulation), then matching keys are paired
// partition-locally. Every (left, right) combination per key is
// emitted, ordered deterministically.
//
// K, L and R must be serde-encodable.
func Join[K comparable, L, R any](left *RDD[Pair[K, L]], right *RDD[Pair[K, R]], numPartitions int) (*RDD[Pair[K, JoinedValue[L, R]]], error) {
	if numPartitions < 1 {
		return nil, fmt.Errorf("rdd: Join needs at least one partition")
	}
	if left.ctx != right.ctx {
		return nil, fmt.Errorf("rdd: Join across contexts")
	}
	RegisterPair[K, L]()
	RegisterPair[K, R]()
	serde.RegisterSelfOnce(JoinedValue[L, R]{}, func() serde.Unmarshaler { return new(JoinedValue[L, R]) })
	RegisterPair[K, JoinedValue[L, R]]()

	// Shuffle each side's raw pairs into the shared partitioning; the
	// join then runs partition-locally against a right-side hash map.
	lBuckets, err := shufflePairs(left, numPartitions)
	if err != nil {
		return nil, err
	}
	rBuckets, err := shufflePairs(right, numPartitions)
	if err != nil {
		return nil, err
	}

	ctx := left.ctx
	out := newRDD(ctx, numPartitions, func(ec *ExecContext, dst int) ([]Pair[K, JoinedValue[L, R]], error) {
		ls, err := fetchBucket[K, L](ec, ctx, lBuckets, dst)
		if err != nil {
			return nil, err
		}
		rs, err := fetchBucket[K, R](ec, ctx, rBuckets, dst)
		if err != nil {
			return nil, err
		}
		rightByKey := map[K][]R{}
		for _, p := range rs {
			rightByKey[p.Key] = append(rightByKey[p.Key], p.Value)
		}
		var outPairs []Pair[K, JoinedValue[L, R]]
		for _, lp := range ls {
			for _, rv := range rightByKey[lp.Key] {
				outPairs = append(outPairs, Pair[K, JoinedValue[L, R]]{
					Key:   lp.Key,
					Value: JoinedValue[L, R]{Left: lp.Value, Right: rv},
				})
			}
		}
		return outPairs, nil
	})
	return out, nil
}

// shuffleHandle identifies one side's shuffle output. execs[src] is the
// executor whose store holds source partition src's buckets — the
// winner of the shuffle task, which speculation or placement policies
// may have moved off src % NumExecutors.
type shuffleHandle struct {
	id       int64
	srcParts int
	execs    []int
}

// shufflePairs buckets a pair RDD's elements by key hash into
// numPartitions blocks per source partition, stored on the executors.
// Elements keep their original order within a (src, dst) bucket, so
// downstream reads are deterministic.
func shufflePairs[K comparable, V any](r *RDD[Pair[K, V]], numPartitions int) (shuffleHandle, error) {
	ctx := r.ctx
	h := shuffleHandle{id: ctx.newJobID(), srcParts: r.parts}
	jh, err := ctx.SubmitJob(JobSpec{
		Tasks:  r.parts,
		Policy: r.placementPolicy(),
		Fn: func(ec *ExecContext, task, attempt int) ([]byte, error) {
			in, err := r.Materialize(ec, task)
			if err != nil {
				return nil, err
			}
			buckets := make([][]Pair[K, V], numPartitions)
			for _, p := range in {
				hv, err := keyHash(p.Key)
				if err != nil {
					return nil, err
				}
				d := int(hv % uint64(numPartitions))
				buckets[d] = append(buckets[d], p)
			}
			for dst, bucket := range buckets {
				wire, err := encodePairs(bucket)
				if err != nil {
					return nil, err
				}
				ec.Store.PutLocal(fmt.Sprintf("join/%d/%d/%d", h.id, task, dst), wire)
			}
			return nil, nil
		},
	})
	if err == nil {
		_, err = jh.Wait()
	}
	if err == nil {
		h.execs = jh.Executors()
	}
	return h, err
}

// fetchBucket gathers partition dst of a shuffled side.
func fetchBucket[K comparable, V any](ec *ExecContext, ctx *Context, h shuffleHandle, dst int) ([]Pair[K, V], error) {
	var out []Pair[K, V]
	for src := 0; src < h.srcParts; src++ {
		owner := ctx.ExecutorStoreName(h.execs[src])
		wire, err := ec.Store.FetchFrom(owner, fmt.Sprintf("join/%d/%d/%d", h.id, src, dst))
		if err != nil {
			return nil, fmt.Errorf("rdd: join fetch %d->%d: %w", src, dst, err)
		}
		pairs, err := decodePairs[K, V](wire)
		if err != nil {
			return nil, err
		}
		out = append(out, pairs...)
	}
	return out, nil
}

// MarshalBinaryTo implements serde.Marshaler for joined values.
func (j JoinedValue[L, R]) MarshalBinaryTo(dst []byte) []byte {
	dst = serde.MustEncode(dst, j.Left)
	return serde.MustEncode(dst, j.Right)
}

// UnmarshalBinaryFrom implements serde.Unmarshaler.
func (j *JoinedValue[L, R]) UnmarshalBinaryFrom(src []byte) (int, error) {
	l, n, err := serde.Decode(src)
	if err != nil {
		return 0, err
	}
	r, m, err := serde.Decode(src[n:])
	if err != nil {
		return 0, err
	}
	lv, ok := l.(L)
	if !ok {
		return 0, fmt.Errorf("rdd: joined left decoded as %T", l)
	}
	rv, ok := r.(R)
	if !ok {
		return 0, fmt.Errorf("rdd: joined right decoded as %T", r)
	}
	j.Left, j.Right = lv, rv
	return n + m, nil
}
