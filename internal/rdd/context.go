// Package rdd is the dataflow engine substrate: a Spark-like driver /
// executor system running in one process. Executors are real
// concurrency domains — each owns a pool of worker cores, a block
// store shard, a mutable object manager and a scalable-communicator
// endpoint — and every task result crosses the driver/executor
// boundary serialized through the transport, so the serialization and
// communication behaviour Sparker optimizes is really present.
//
// The engine intentionally mirrors the pieces of Spark the paper
// touches: ResultStage-style jobs (RunJob), a reduced-result stage with
// whole-stage retry for in-memory merge (JobSpec.StageCleanup),
// statically placed tasks for SpawnRDD (JobSpec.Placement), block-based
// shuffle for treeAggregate, and MEMORY_ONLY caching.
package rdd

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sparker/internal/blockmanager"
	"sparker/internal/comm"
	"sparker/internal/eventlog"
	"sparker/internal/metrics"
	"sparker/internal/obsv"
	"sparker/internal/sched"
	"sparker/internal/trace"
	"sparker/internal/transport"
)

// Config describes the simulated cluster an engine runs on.
type Config struct {
	// Name distinguishes multiple contexts sharing a Network.
	Name string
	// NumExecutors is the number of executor processes (default 2).
	NumExecutors int
	// CoresPerExecutor is the number of concurrent task slots per
	// executor (default 2).
	CoresPerExecutor int
	// Hosts assigns a hostname to each executor for topology-aware rank
	// ordering. Defaults to every executor on a distinct host.
	Hosts []string
	// Network carries all driver/executor and executor/executor bytes.
	// Defaults to an unshaped in-memory network owned by the context.
	Network transport.Network
	// RingParallelism is the PDR channel count used by split
	// aggregation (default 4, the paper's production setting).
	RingParallelism int
	// TaskConnStripes is the number of task-channel connections the
	// driver opens per executor (default 4). On latency-shaped
	// transports a single connection caps launch/result throughput at
	// one frame per network latency; striping lets concurrent jobs'
	// task traffic overlap, which is what the multi-tenant job server
	// leans on. Executors accept any number of task connections and
	// reply on the one each task arrived on, so this is driver-only.
	TaskConnStripes int
	// MaxTaskAttempts bounds per-task retries for ordinary stages
	// (default 3).
	MaxTaskAttempts int
	// MaxStageAttempts bounds whole-stage resubmissions for
	// reduced-result stages (default 3).
	MaxStageAttempts int
	// TopologyAware orders ring ranks by hostname (default true).
	// Disabling it reproduces the unsorted baseline of Figure 14.
	TopologyAware *bool
	// Speculation enables the scheduler's straggler mitigation: a task
	// running past SpeculationMultiplier × the stage's running duration
	// quantile gets one duplicate attempt on a different executor, first
	// result wins. Off by default; never applies to executor-targeted or
	// collective (gang) stages regardless of this switch.
	Speculation bool
	// SpeculationMultiplier is the straggler threshold multiple
	// (default 1.5 — Spark's spark.speculation.multiplier).
	SpeculationMultiplier float64
	// SpeculationQuantile is the completion quantile the threshold is
	// measured against (default 0.5).
	SpeculationQuantile float64
	// SpeculationInterval is the straggler scan period (default 10ms).
	SpeculationInterval time.Duration
	// SpeculationMinRuntime floors the speculation threshold so
	// micro-stages never duplicate on scheduling noise (default 20ms).
	SpeculationMinRuntime time.Duration
	// EventLog, when non-nil, receives structured history-log events
	// (phase timings) the way Spark's history server does — the data
	// source of the paper's Section-2 bottleneck analysis.
	EventLog *eventlog.Logger
	// Tracer, when non-nil, records distributed spans for every job:
	// driver stages, executor tasks and collective ring steps, stitched
	// by span IDs propagated through task envelopes and ring frames.
	// Nil (the default) disables tracing at true zero overhead.
	Tracer *trace.Tracer
	// Obsv, when non-nil, is the flight recorder: the engine binds it
	// to the cluster at startup (one ring per executor plus the
	// driver's), tees markers/phases/spans into it, and tags tasks for
	// continuous profiling. When Obsv is set and Tracer is nil, a
	// tracer exporting only to the recorder is installed so bundles
	// always contain correlated spans; when both are set, spans are
	// teed to both sinks. Nil keeps the engine bit-identical to the
	// recorder-less build.
	Obsv *obsv.Observer
}

func (c *Config) fill() error {
	if c.Name == "" {
		c.Name = "sparker"
	}
	if c.NumExecutors == 0 {
		c.NumExecutors = 2
	}
	if c.NumExecutors < 1 {
		return fmt.Errorf("rdd: NumExecutors must be >= 1, got %d", c.NumExecutors)
	}
	if c.CoresPerExecutor == 0 {
		c.CoresPerExecutor = 2
	}
	if c.CoresPerExecutor < 1 {
		return fmt.Errorf("rdd: CoresPerExecutor must be >= 1, got %d", c.CoresPerExecutor)
	}
	if c.Hosts == nil {
		c.Hosts = make([]string, c.NumExecutors)
		for i := range c.Hosts {
			c.Hosts[i] = fmt.Sprintf("node-%03d", i)
		}
	}
	if len(c.Hosts) != c.NumExecutors {
		return fmt.Errorf("rdd: len(Hosts)=%d != NumExecutors=%d", len(c.Hosts), c.NumExecutors)
	}
	if c.RingParallelism == 0 {
		c.RingParallelism = 4
	}
	if c.TaskConnStripes == 0 {
		c.TaskConnStripes = 4
	}
	if c.TaskConnStripes < 1 {
		return fmt.Errorf("rdd: TaskConnStripes must be >= 1, got %d", c.TaskConnStripes)
	}
	if c.MaxTaskAttempts == 0 {
		c.MaxTaskAttempts = 3
	}
	if c.MaxStageAttempts == 0 {
		c.MaxStageAttempts = 3
	}
	if c.TopologyAware == nil {
		t := true
		c.TopologyAware = &t
	}
	return nil
}

// Context is the driver: it owns the executors and schedules jobs.
type Context struct {
	conf   Config
	net    transport.Network
	ownNet bool

	master      *blockmanager.Master
	driverStore *blockmanager.Store
	topo        comm.Topology // boot-time rank <-> executor assignment
	sched       *sched.Scheduler

	// memb is the membership plane: registry, control channel,
	// reconfiguration loop and the installed clusterView every
	// owner-math and placement decision resolves against.
	memb *memberSvc

	// execMu guards executors: the slot table grows when joins outrun
	// the boot size and entries nil out when members depart.
	execMu    sync.RWMutex
	executors []*Executor

	jobs   sync.Map // int64 -> *job
	nextID atomic.Int64

	// collectives tracks in-flight collective operations for the debug
	// plane (/debug/sparker/collectives); keys are trackSeq draws.
	collectives sync.Map // int64 -> CollectiveInfo
	trackSeq    atomic.Int64

	// inflightJobs counts submitted-but-unfinished JobHandles so a
	// long-lived driver can Drain before closing the transport.
	inflightJobs atomic.Int64

	connMu sync.Mutex
	conns  [][]*lockedConn // driver -> executor task connections, striped
	connRR []uint32        // round-robin stripe cursor per executor (under connMu)

	rec *metrics.Recorder
	reg *metrics.Registry // driver-side instruments (driver store I/O)

	closeOnce sync.Once
	closeErr  error
}

// NewContext boots a cluster per conf: block manager master, one
// executor per slot with its store, mutobj manager, worker pool, a
// driver connection, and the communicator ring.
func NewContext(conf Config) (*Context, error) {
	if err := conf.fill(); err != nil {
		return nil, err
	}
	if conf.Obsv != nil {
		// Retain finished spans in the flight recorder, teeing to the
		// user's exporter when one is configured.
		conf.Tracer = trace.New(trace.Tee(conf.Tracer.Exporter(), conf.Obsv))
	}
	ctx := &Context{conf: conf, rec: metrics.NewRecorder(), reg: metrics.NewRegistry()}
	if conf.Network != nil {
		ctx.net = conf.Network
	} else {
		ctx.net = transport.NewMem()
		ctx.ownNet = true
	}

	var err error
	ctx.master, err = blockmanager.NewMaster(ctx.net)
	if err != nil {
		return nil, fmt.Errorf("rdd: starting block manager master: %w", err)
	}
	ctx.driverStore, err = blockmanager.NewStore(ctx.net, conf.Name+"/driver")
	if err != nil {
		ctx.Close()
		return nil, fmt.Errorf("rdd: starting driver store: %w", err)
	}
	ctx.driverStore.SetMetrics(ctx.reg)

	// Ring rank assignment: topology-aware sorts by hostname.
	if *conf.TopologyAware {
		ctx.topo = comm.NewTopology(comm.RanksByHost(conf.Hosts))
	} else {
		ctx.topo = comm.IdentityTopology(conf.NumExecutors)
	}

	// The membership plane comes up before the executors: they dial its
	// control channel as part of boot.
	ctx.memb, err = newMemberSvc(ctx)
	if err != nil {
		ctx.Close()
		return nil, err
	}

	ctx.sched, err = sched.New(sched.Config{
		NumExecutors:          conf.NumExecutors,
		CoresPerExecutor:      conf.CoresPerExecutor,
		DefaultPolicy:         sched.RoundRobin(),
		Speculation:           conf.Speculation,
		SpeculationMultiplier: conf.SpeculationMultiplier,
		SpeculationQuantile:   conf.SpeculationQuantile,
		SpeculationInterval:   conf.SpeculationInterval,
		SpeculationMinRuntime: conf.SpeculationMinRuntime,
		Metrics:               ctx.reg,
		Recorder:              ctx.rec,
		EventLog:              conf.EventLog,
		Tracer:                conf.Tracer,
		Obsv:                  conf.Obsv,
	})
	if err != nil {
		ctx.Close()
		return nil, fmt.Errorf("rdd: starting scheduler: %w", err)
	}

	for i := 0; i < conf.NumExecutors; i++ {
		e, err := newExecutor(ctx, i, conf.Hosts[i], ctx.topo.RankOfExecutor(i), 1)
		if err != nil {
			ctx.Close()
			return nil, fmt.Errorf("rdd: starting executor %d: %w", i, err)
		}
		ctx.setExecutor(i, e)
	}
	// Eagerly wire the PDR so connection setup stays out of timed paths.
	if err := ctx.connectBootRing(); err != nil {
		ctx.Close()
		return nil, fmt.Errorf("rdd: connecting ring: %w", err)
	}
	if conf.Obsv != nil {
		conf.Obsv.Bind(obsv.Binding{
			Cluster: obsv.Geometry{
				Name:       conf.Name,
				Executors:  conf.NumExecutors,
				Cores:      conf.CoresPerExecutor,
				ExecOfRank: ctx.topo.ExecOfRank(),
			},
			Metrics: func() (*metrics.Registry, *metrics.Recorder) {
				return ctx.MergedMetrics(), ctx.rec
			},
			CollectExecRings: ctx.collectExecRings,
		})
	}
	return ctx, nil
}

// NumExecutors returns the slot-table size of the installed membership
// epoch: the bound for executor indices, dead slots included. At boot
// (and under fixed membership forever) this equals conf.NumExecutors;
// joins that outgrow the boot table raise it.
func (ctx *Context) NumExecutors() int {
	if cv := ctx.clusterView(); cv != nil {
		return cv.view.NumSlots()
	}
	return ctx.conf.NumExecutors
}

// CoresPerExecutor returns task slots per executor.
func (ctx *Context) CoresPerExecutor() int { return ctx.conf.CoresPerExecutor }

// TotalCores returns the cluster-wide slot count over live executors.
func (ctx *Context) TotalCores() int {
	if cv := ctx.clusterView(); cv != nil {
		return cv.view.NumLive() * ctx.conf.CoresPerExecutor
	}
	return ctx.conf.NumExecutors * ctx.conf.CoresPerExecutor
}

// RingParallelism returns the PDR parallelism for split aggregation.
func (ctx *Context) RingParallelism() int { return ctx.conf.RingParallelism }

// Metrics returns the context's phase recorder.
func (ctx *Context) Metrics() *metrics.Recorder { return ctx.rec }

// Tracer returns the configured span tracer (nil when tracing is off).
func (ctx *Context) Tracer() *trace.Tracer { return ctx.conf.Tracer }

// Registry returns the driver-side instrument registry.
func (ctx *Context) Registry() *metrics.Registry { return ctx.reg }

// MergedMetrics folds the driver's and every executor's instrument
// registry into one fresh registry — the cluster-wide view a metrics
// scrape or end-of-run report wants. Safe to call while jobs are
// running; each instrument contributes a point-in-time snapshot.
func (ctx *Context) MergedMetrics() *metrics.Registry {
	out := metrics.NewRegistry()
	out.Merge(ctx.reg)
	for _, e := range ctx.executorSnapshot() {
		if e != nil {
			out.Merge(e.reg)
		}
	}
	return out
}

// RecordPhase charges d to the named phase in the metrics recorder and
// emits a history-log event when event logging is enabled.
func (ctx *Context) RecordPhase(name string, d time.Duration, detail string) {
	ctx.rec.Add(name, d)
	ctx.conf.EventLog.Phase(name, d, detail)
	ctx.conf.Obsv.Phase(name, d, detail)
}

// RecordMarker bumps the named counter and emits a durationless marker
// event — how the engine records degradations like a ring collective
// falling back to tree aggregation.
func (ctx *Context) RecordMarker(name, detail string) {
	ctx.rec.Inc(name)
	ctx.conf.EventLog.Marker(name, detail)
	ctx.conf.Obsv.Marker(name, detail)
}

// Observer returns the configured flight recorder (nil when disabled).
func (ctx *Context) Observer() *obsv.Observer { return ctx.conf.Obsv }

// DriverStore returns the driver-side block store, used to fetch final
// aggregators from executors.
func (ctx *Context) DriverStore() *blockmanager.Store { return ctx.driverStore }

// ExecutorStoreName returns the block store name of executor i.
func (ctx *Context) ExecutorStoreName(i int) string {
	return fmt.Sprintf("%s/exec-%d", ctx.conf.Name, i)
}

// RankOfExecutor returns the ring rank of executor i under the
// installed membership epoch (-1 for dead or out-of-range slots).
func (ctx *Context) RankOfExecutor(i int) int {
	cv := ctx.clusterView()
	if cv == nil {
		return ctx.topo.RankOfExecutor(i)
	}
	if i < 0 || i >= len(cv.rankOfExec) {
		return -1
	}
	return cv.rankOfExec[i]
}

// ExecutorOfRank returns the executor index holding ring rank r under
// the installed membership epoch (-1 when out of range).
func (ctx *Context) ExecutorOfRank(r int) int {
	cv := ctx.clusterView()
	if cv == nil {
		return ctx.topo.ExecutorOfRank(r)
	}
	if r < 0 || r >= len(cv.execOfRank) {
		return -1
	}
	return cv.execOfRank[r]
}

// Topology returns the boot-time rank <-> executor assignment (epoch
// 1, every configured executor alive). After a reconfiguration the
// live assignment is RankOfExecutor/ExecutorOfRank, which resolve
// through the installed membership epoch.
func (ctx *Context) Topology() comm.Topology { return ctx.topo }

// TopologyPolicy returns a placement policy aligning task index with
// ring rank under the installed membership epoch: collective stage
// task i lands on the executor holding rank i, so segment ownership
// and endpoint rank coincide.
func (ctx *Context) TopologyPolicy() sched.PlacementPolicy {
	if cv := ctx.clusterView(); cv != nil {
		return sched.NewTopologyAware(cv.execOfRank)
	}
	return sched.NewTopologyAware(ctx.topo.ExecOfRank())
}

// Close shuts the cluster down.
func (ctx *Context) Close() error {
	ctx.closeOnce.Do(func() {
		// The membership plane goes first: it stops evicting members over
		// conns the shutdown below is about to sever, and quiets the
		// reconfiguration loop.
		if ctx.memb != nil {
			ctx.memb.close()
		}
		ctx.connMu.Lock()
		for _, stripes := range ctx.conns {
			for _, lc := range stripes {
				if lc != nil {
					lc.c.Close()
				}
			}
		}
		ctx.conns = nil
		ctx.connMu.Unlock()
		// After the task connections: result readers have stopped, so
		// the scheduler drains cleanly and fails undelivered handles.
		if ctx.sched != nil {
			ctx.sched.Close()
		}
		// After the scheduler: a monitor mid-collection fails fast and
		// falls back to in-process ring snapshots for any queued dump.
		ctx.conf.Obsv.Unbind()
		for _, e := range ctx.executorSnapshot() {
			if e != nil {
				e.close()
			}
		}
		if ctx.driverStore != nil {
			ctx.driverStore.Close()
		}
		if ctx.master != nil {
			ctx.master.Close()
		}
		if ctx.ownNet && ctx.net != nil {
			ctx.closeErr = ctx.net.Close()
		}
	})
	return ctx.closeErr
}

// newJobID allocates a cluster-unique job id.
func (ctx *Context) newJobID() int64 { return ctx.nextID.Add(1) }

// NewOpID allocates a unique id for operations layered on the engine
// (aggregation state keys, shuffle block prefixes).
func (ctx *Context) NewOpID() int64 { return ctx.newJobID() }
