package rdd

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"sparker/internal/comm"
	"sparker/internal/metrics"
	"sparker/internal/sched"
	"sparker/internal/trace"
	"sparker/internal/transport"
)

// --- wire frames -------------------------------------------------------
//
// task frame:    jobID int64 | task int32 | attempt int32
//                [| traceID uint64 | parentSpanID uint64]   (traced jobs)
// result frame:  jobID int64 | task int32 | attempt int32 | status byte | body
//                body = payload bytes (status=resultOK) or error string
//
// The trailing trace identifiers are appended only when the stage runs
// under a tracer, and decodeTaskFrame accepts both lengths, so untraced
// deployments keep the exact 16-byte seed format.
//
// Task errors cross the wire as strings, which would strip the error
// class a driver-side errors.Is needs to pick between retry and
// fallback. The status byte therefore encodes the classification: the
// executor maps comm sentinels to a status before serializing, and the
// driver re-attaches the matching sentinel when it reconstructs the
// error.

// Result frame status bytes. resultErr/resultOK keep the seed's 0/1
// encoding; classified failures extend it.
const (
	resultErr         = 0 // unclassified failure, message only
	resultOK          = 1
	resultPeerTimeout = 2 // comm.ErrPeerTimeout
	resultPeerDown    = 3 // comm.ErrPeerDown
	resultClosed      = 4 // comm.ErrClosed (endpoint closed under the task)
	resultMembership  = 5 // ErrMembershipChanged (stale epoch geometry)
)

// ErrMembershipChanged classifies a task failure whose cause was a
// membership reconfiguration racing the stage: the epoch (and with it
// ring geometry, endpoints, placement) moved between planning and
// execution. Collective callers retry such failures whole against the
// installed epoch. Defined here — not in core — because the sentinel
// must survive the result-frame wire crossing, and the frame codec
// lives at this layer.
var ErrMembershipChanged = errors.New("rdd: membership changed under the stage")

// resultStatus classifies a task error for the wire.
func resultStatus(err error) byte {
	switch {
	case err == nil:
		return resultOK
	case errors.Is(err, ErrMembershipChanged):
		return resultMembership
	case errors.Is(err, comm.ErrPeerTimeout):
		return resultPeerTimeout
	case errors.Is(err, comm.ErrPeerDown):
		return resultPeerDown
	case errors.Is(err, comm.ErrClosed):
		return resultClosed
	default:
		return resultErr
	}
}

// wireError is a task failure reconstructed driver-side: the original
// message with the classified sentinel re-attached for errors.Is.
type wireError struct {
	msg      string
	sentinel error
}

func (e *wireError) Error() string { return e.msg }
func (e *wireError) Unwrap() error { return e.sentinel }

// decodeWireError rebuilds the executor-side error from its wire form.
func decodeWireError(status byte, msg string) error {
	switch status {
	case resultPeerTimeout:
		return &wireError{msg: msg, sentinel: comm.ErrPeerTimeout}
	case resultPeerDown:
		return &wireError{msg: msg, sentinel: comm.ErrPeerDown}
	case resultClosed:
		return &wireError{msg: msg, sentinel: comm.ErrClosed}
	case resultMembership:
		return &wireError{msg: msg, sentinel: ErrMembershipChanged}
	default:
		return errors.New(msg)
	}
}

// Task frame sizes: the seed's 16-byte form and the traced 32-byte
// extension carrying traceID + parent (stage) span ID.
const (
	taskFrameSize       = 16
	taskFrameTracedSize = taskFrameSize + 16
)

func encodeTaskFrame(jobID int64, task, attempt int, tc trace.SpanContext) []byte {
	n := taskFrameSize
	if tc.Valid() {
		n = taskFrameTracedSize
	}
	b := make([]byte, n)
	binary.LittleEndian.PutUint64(b, uint64(jobID))
	binary.LittleEndian.PutUint32(b[8:], uint32(int32(task)))
	binary.LittleEndian.PutUint32(b[12:], uint32(int32(attempt)))
	if tc.Valid() {
		binary.LittleEndian.PutUint64(b[16:], tc.TraceID)
		binary.LittleEndian.PutUint64(b[24:], tc.SpanID)
	}
	return b
}

func decodeTaskFrame(b []byte) (jobID int64, task, attempt int, tc trace.SpanContext, err error) {
	if len(b) < taskFrameSize {
		return 0, 0, 0, tc, fmt.Errorf("rdd: short task frame (%d bytes)", len(b))
	}
	jobID = int64(binary.LittleEndian.Uint64(b))
	task = int(int32(binary.LittleEndian.Uint32(b[8:])))
	attempt = int(int32(binary.LittleEndian.Uint32(b[12:])))
	if len(b) >= taskFrameTracedSize {
		tc.TraceID = binary.LittleEndian.Uint64(b[16:])
		tc.SpanID = binary.LittleEndian.Uint64(b[24:])
	}
	return jobID, task, attempt, tc, nil
}

func encodeResultFrame(jobID int64, task, attempt int, payload []byte, taskErr error) []byte {
	status := resultStatus(taskErr)
	var errStr string
	if taskErr != nil {
		errStr = taskErr.Error()
	}
	b := make([]byte, 0, 17+len(payload)+len(errStr))
	b = binary.LittleEndian.AppendUint64(b, uint64(jobID))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(task)))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(attempt)))
	b = append(b, status)
	if status == resultOK {
		b = append(b, payload...)
	} else {
		b = append(b, errStr...)
	}
	return b
}

func decodeResultFrame(b []byte) (jobID int64, task, attempt int, payload []byte, taskErr, err error) {
	if len(b) < 17 {
		return 0, 0, 0, nil, nil, fmt.Errorf("rdd: short result frame (%d bytes)", len(b))
	}
	jobID = int64(binary.LittleEndian.Uint64(b))
	task = int(int32(binary.LittleEndian.Uint32(b[8:])))
	attempt = int(int32(binary.LittleEndian.Uint32(b[12:])))
	if b[16] == resultOK {
		payload = b[17:]
	} else {
		msg := string(b[17:])
		if msg == "" {
			msg = "rdd: task failed without message"
		}
		taskErr = decodeWireError(b[16], msg)
	}
	return jobID, task, attempt, payload, taskErr, nil
}

// --- job bookkeeping ---------------------------------------------------

// job is the executor-side lookup record: the task function workers
// resolve a frame's jobID against. Result routing lives in the
// scheduler, not here.
type job struct {
	id int64
	fn func(ec *ExecContext, task, attempt int) ([]byte, error)
	// tenant rides along for the executor-side profiling labels
	// (pprof tags per job/tenant when the flight recorder is on).
	tenant string
}

// JobSpec describes one stage submitted to the cluster.
type JobSpec struct {
	// Tenant names the scheduler fair-share account charged for this
	// stage's slot-time (empty: the default tenant). Long-lived multi-
	// tenant drivers set it per submitting client; see sched.TenantConfig.
	Tenant string
	// Tasks is the number of tasks in the stage.
	Tasks int
	// Placement maps task index -> executor index. Nil defers to Policy
	// (and, with Policy also nil, the scheduler's default round-robin
	// placement task % NumExecutors, which keeps cached partitions on
	// stable executors). A non-nil Placement is the SpawnRDD
	// static-scheduling path; such executor-targeted stages are never
	// speculated, since a duplicate elsewhere would act on the wrong
	// node's state.
	Placement []int
	// Policy places the stage's tasks when Placement is nil. Nil selects
	// the scheduler default (sched.RoundRobin). Cached RDDs pass a
	// cache-aware policy here; collective stages a topology-aware one.
	Policy sched.PlacementPolicy
	// Gang requests all-or-nothing slot acquisition: the stage launches
	// only once every task can start simultaneously. Collective stages
	// set it so a ring never spins up with members queued behind another
	// job; gang stages serialize per scheduler gang key and are never
	// speculated.
	Gang bool
	// Fn runs executor-side. Its []byte return crosses the transport
	// back to the driver.
	Fn func(ec *ExecContext, task, attempt int) ([]byte, error)
	// StageCleanup marks this as a reduced-result stage (IMM): on any
	// task failure the whole stage is aborted, StageCleanup runs on
	// every executor, and the stage is resubmitted from scratch. When
	// nil, failed tasks are retried individually (plain RDD semantics,
	// which require independent tasks).
	StageCleanup func(ec *ExecContext) error
	// MaxAttempts, when positive, overrides the configured retry budget
	// for this stage (MaxTaskAttempts, or MaxStageAttempts with
	// StageCleanup set). Collective stages set it to 1: resubmitting one
	// ring member alone cannot succeed, and the caller wants the
	// classified failure promptly to decide on fallback.
	MaxAttempts int
	// WaitAll delays the stage's error return until every in-flight task
	// has reported, instead of aborting on the first terminal failure.
	// Collective stages set it so that no task of a failed stage is
	// still driving the comm ring when the caller starts recovery (its
	// peers classify within their step deadline, so the wait is
	// bounded). Stages with StageCleanup always behave this way.
	WaitAll bool
	// TraceParent, when valid, makes this stage's span a child of the
	// given span (e.g. the enclosing aggregate). With a tracer
	// configured but no parent, the stage roots its own trace.
	TraceParent trace.SpanContext
}

// ErrJobFailed wraps the terminal failure of a job after retries.
var ErrJobFailed = errors.New("rdd: job failed")

// executorConn returns a task connection to executor i, rotating
// round-robin over TaskConnStripes connections (dialed on first use).
// Striping matters on latency-shaped transports: each connection
// delivers one frame per network latency, so a single connection
// serializes concurrent jobs' launches while stripes let them overlap.
func (ctx *Context) executorConn(i int) (*lockedConn, error) {
	ctx.connMu.Lock()
	// The slot table can outgrow the boot size under elastic joins.
	for len(ctx.conns) <= i {
		ctx.conns = append(ctx.conns, nil)
		ctx.connRR = append(ctx.connRR, 0)
	}
	if ctx.conns[i] == nil {
		stripes := make([]*lockedConn, 0, ctx.conf.TaskConnStripes)
		for s := 0; s < ctx.conf.TaskConnStripes; s++ {
			c, err := ctx.net.Dial(taskAddr(ctx.conf.Name, i))
			if err != nil {
				for _, lc := range stripes {
					lc.c.Close()
				}
				ctx.connMu.Unlock()
				return nil, err
			}
			stripes = append(stripes, &lockedConn{c: c})
			go ctx.readResults(c)
		}
		ctx.conns[i] = stripes
	}
	stripes := ctx.conns[i]
	ctx.connRR[i]++
	lc := stripes[int(ctx.connRR[i])%len(stripes)]
	ctx.connMu.Unlock()
	return lc, nil
}

// closeExecutorConns severs the driver's task connections to a
// departed executor; a replacement adopting the slot dials fresh ones.
func (ctx *Context) closeExecutorConns(i int) {
	ctx.connMu.Lock()
	if i >= 0 && i < len(ctx.conns) {
		for _, lc := range ctx.conns[i] {
			if lc != nil {
				lc.c.Close()
			}
		}
		ctx.conns[i] = nil
	}
	ctx.connMu.Unlock()
}

// readResults routes result frames from one executor connection into
// the scheduler. Malformed frames and scheduler-side overflows used to
// vanish silently; both are now counted and marked in the event log,
// so a protocol bug shows up in telemetry instead of as a hang.
func (ctx *Context) readResults(c transport.Conn) {
	for {
		b, err := c.Recv()
		if err != nil {
			return
		}
		jobID, task, attempt, payload, taskErr, err := decodeResultFrame(b)
		if err != nil {
			ctx.RecordMarker(metrics.CounterResultMalformed, err.Error())
			continue
		}
		// Copy the payload: the frame buffer belongs to the transport.
		var p []byte
		if payload != nil {
			p = append([]byte(nil), payload...)
		}
		if !ctx.sched.Deliver(jobID, task, attempt, p, taskErr) {
			ctx.RecordMarker(metrics.CounterResultDropped,
				fmt.Sprintf("job %d task %d attempt %d", jobID, task, attempt))
		}
	}
}

// JobHandle is the caller's future for a submitted job. Wait and
// Executors may be called from any goroutine; the first call resolves
// the job (idempotently).
type JobHandle struct {
	once  sync.Once
	fetch func() ([][]byte, []int, error)
	out   [][]byte
	execs []int
	err   error
}

func (h *JobHandle) resolve() { h.out, h.execs, h.err = h.fetch() }

// Wait blocks until the job completes and returns the per-task
// payloads in task order.
func (h *JobHandle) Wait() ([][]byte, error) {
	h.once.Do(h.resolve)
	return h.out, h.err
}

// Executors reports, after the job succeeded, which executor produced
// each task's winning result. Under the default round-robin policy
// with no speculation this is task % NumExecutors; with cache-aware
// placement or a speculative win it is wherever the task actually ran
// — the executor whose block store holds any blocks the task wrote.
func (h *JobHandle) Executors() []int {
	h.once.Do(h.resolve)
	return h.execs
}

// RunJob executes spec synchronously and returns the per-task payloads
// in task order — a thin wrapper over SubmitJob for the common
// blocking callers.
func (ctx *Context) RunJob(spec JobSpec) ([][]byte, error) {
	h, err := ctx.SubmitJob(spec)
	if err != nil {
		return nil, err
	}
	out, err := h.Wait()
	return out, err
}

// SubmitJob validates spec and hands it to the stage scheduler,
// returning immediately: independent jobs overlap on disjoint core
// slots. Reduced-result stages (StageCleanup set) run their
// abort/clean/resubmit orchestration on a background goroutine.
func (ctx *Context) SubmitJob(spec JobSpec) (*JobHandle, error) {
	if spec.Tasks <= 0 {
		return nil, fmt.Errorf("rdd: JobSpec.Tasks must be positive, got %d", spec.Tasks)
	}
	if spec.Fn == nil {
		return nil, fmt.Errorf("rdd: JobSpec.Fn is nil")
	}
	policy := spec.Policy
	if spec.Placement != nil {
		if len(spec.Placement) != spec.Tasks {
			return nil, fmt.Errorf("rdd: len(Placement)=%d != Tasks=%d", len(spec.Placement), spec.Tasks)
		}
		for t, e := range spec.Placement {
			if e < 0 || e >= ctx.NumExecutors() {
				return nil, fmt.Errorf("rdd: task %d placed on invalid executor %d", t, e)
			}
		}
		// Liveness (a slot inside bounds may be dead) is validated by the
		// scheduler against its own live view, the single source of truth.
		policy = sched.Fixed(spec.Placement)
	}

	if spec.StageCleanup != nil {
		return ctx.submitWholeRetry(spec, policy)
	}
	return ctx.submitTaskRetry(spec, policy)
}

// launcherFor builds the scheduler's Launch hook: encode a task frame
// and push it down the executor's task connection. It runs on the
// scheduler's per-executor sender goroutines, so a slow or
// fault-delayed transport stalls only that executor's launches.
func (ctx *Context) launcherFor(id int64, tc trace.SpanContext) func(task, attempt, executor int) error {
	return func(task, attempt, executor int) error {
		lc, err := ctx.executorConn(executor)
		if err != nil {
			// An unreachable task channel is a down peer: classify it so
			// retry/fallback decisions see the same sentinel a severed ring
			// connection produces.
			return fmt.Errorf("rdd: dial executor %d: %v: %w", executor, err, comm.ErrPeerDown)
		}
		if err := lc.send(encodeTaskFrame(id, task, attempt, tc)); err != nil {
			return fmt.Errorf("rdd: send to executor %d: %v: %w", executor, err, comm.ErrPeerDown)
		}
		return nil
	}
}

// submitTaskRetry schedules a stage whose failed tasks retry
// individually (plain RDD semantics, which require independent tasks).
func (ctx *Context) submitTaskRetry(spec JobSpec, policy sched.PlacementPolicy) (*JobHandle, error) {
	maxAttempts := ctx.conf.MaxTaskAttempts
	if spec.MaxAttempts > 0 {
		maxAttempts = spec.MaxAttempts
	}
	id := ctx.newJobID()
	ctx.jobs.Store(id, &job{id: id, fn: spec.Fn, tenant: spec.Tenant})
	allocBefore := ctx.profileStageStart()

	stage := ctx.conf.Tracer.StartSpan("stage", spec.TraceParent)
	stage.SetInt("job", id)
	stage.SetInt("tasks", int64(spec.Tasks))
	tc := stage.Context()

	sh, err := ctx.sched.Submit(sched.StageSpec{
		JobID:       id,
		Tenant:      spec.Tenant,
		Tasks:       spec.Tasks,
		Policy:      policy,
		Gang:        spec.Gang,
		GangKey:     gangKeyCollective,
		MaxAttempts: maxAttempts,
		WaitAll:     spec.WaitAll,
		// Executor-targeted stages (explicit placement) and gang
		// collectives must not run duplicates elsewhere.
		NoSpeculation: spec.Placement != nil || spec.Gang,
		TraceParent:   tc,
		Launch:        ctx.launcherFor(id, tc),
	})
	if err != nil {
		ctx.jobs.Delete(id)
		stage.EndErr(err)
		return nil, err
	}
	ctx.jobStarted()
	go func() {
		<-sh.Done()
		ctx.jobFinished()
	}()
	return &JobHandle{fetch: func() ([][]byte, []int, error) {
		out, werr := sh.Wait()
		ctx.jobs.Delete(id)
		if werr != nil {
			werr = fmt.Errorf("%w: %w", ErrJobFailed, werr)
		}
		stage.EndErr(werr)
		ctx.profileStageEnd(id, spec.Tenant, allocBefore)
		return out, sh.Executors(), werr
	}}, nil
}

// profileStageStart samples cumulative allocation before a stage when
// the flight recorder is on; profileStageEnd records the per-stage
// CPU/heap delta into the driver ring tagged with job and tenant —
// the "per-stage profile" rows of a postmortem bundle.
func (ctx *Context) profileStageStart() uint64 {
	if ctx.conf.Obsv == nil {
		return 0
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc
}

func (ctx *Context) profileStageEnd(id int64, tenant string, allocBefore uint64) {
	obs := ctx.conf.Obsv
	if obs == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	obs.DriverRing().Profile("stage", tenant,
		int64(ms.HeapAlloc), int64(ms.TotalAlloc-allocBefore), runtime.NumGoroutine(), id)
}

// gangKeyCollective serializes every gang (collective) stage: each
// executor has one comm endpoint, and concurrent ring collectives on
// one endpoint are mutually destructive (epoch-stale frames), so at
// most one may be in flight cluster-wide.
const gangKeyCollective = "collective"

// submitWholeRetry schedules a reduced-result stage: abort on first
// failure, run StageCleanup on every executor, resubmit from scratch.
// The attempt loop runs on a goroutine so submission stays async.
func (ctx *Context) submitWholeRetry(spec JobSpec, policy sched.PlacementPolicy) (*JobHandle, error) {
	maxAttempts := ctx.conf.MaxStageAttempts
	if spec.MaxAttempts > 0 {
		maxAttempts = spec.MaxAttempts
	}
	type result struct {
		out   [][]byte
		execs []int
		err   error
	}
	// One stage span covers every whole-stage attempt: resubmissions are
	// the stage's recovery behaviour, not new stages.
	stage := ctx.conf.Tracer.StartSpan("stage", spec.TraceParent)
	stage.SetInt("tasks", int64(spec.Tasks))
	stage.SetAttr("kind", "reduced-result")
	tc := stage.Context()

	resCh := make(chan result, 1)
	ctx.jobStarted()
	go func() {
		defer ctx.jobFinished()
		var lastErr error
		for stageAttempt := 0; stageAttempt < maxAttempts; stageAttempt++ {
			id := ctx.newJobID()
			// Each resubmission is a fresh scheduler stage, so the wire-level
			// attempt is always 0; the Fn's attempt contract is the
			// whole-stage attempt number (attempt-dependent behaviour such
			// as "succeed on retry" keys off it), so rebind it here.
			att := stageAttempt
			ctx.jobs.Store(id, &job{id: id, tenant: spec.Tenant, fn: func(ec *ExecContext, task, _ int) ([]byte, error) {
				return spec.Fn(ec, task, att)
			}})
			// MaxAttempts 1 + WaitAll: any failure aborts the whole
			// attempt, and no task is still mutating shared state when
			// cleanup starts. Shared per-executor aggregators also rule
			// out speculation — a duplicate would double-merge.
			sh, err := ctx.sched.Submit(sched.StageSpec{
				JobID:         id,
				Tenant:        spec.Tenant,
				Tasks:         spec.Tasks,
				Policy:        policy,
				MaxAttempts:   1,
				WaitAll:       true,
				NoSpeculation: true,
				TraceParent:   tc,
				Launch:        ctx.launcherFor(id, tc),
			})
			if err != nil {
				ctx.jobs.Delete(id)
				resCh <- result{err: err}
				return
			}
			out, werr := sh.Wait()
			ctx.jobs.Delete(id)
			if werr == nil {
				stage.SetInt("attempts", int64(stageAttempt+1))
				resCh <- result{out: out, execs: sh.Executors()}
				return
			}
			lastErr = werr
			if err := ctx.runCleanup(spec.StageCleanup); err != nil {
				resCh <- result{err: fmt.Errorf("rdd: stage cleanup failed: %w", err)}
				return
			}
		}
		stage.SetInt("attempts", int64(maxAttempts))
		resCh <- result{err: fmt.Errorf("%w: reduced-result stage failed %d attempts, last: %w",
			ErrJobFailed, maxAttempts, lastErr)}
	}()
	return &JobHandle{fetch: func() ([][]byte, []int, error) {
		r := <-resCh
		stage.EndErr(r.err)
		return r.out, r.execs, r.err
	}}, nil
}

// runCleanup runs cleanup once on every live executor.
func (ctx *Context) runCleanup(cleanup func(ec *ExecContext) error) error {
	placement := append([]int(nil), ctx.LiveExecutors()...)
	if len(placement) == 0 {
		return nil
	}
	_, err := ctx.RunJob(JobSpec{
		Tasks:     len(placement),
		Placement: placement,
		Fn: func(ec *ExecContext, task, attempt int) ([]byte, error) {
			return nil, cleanup(ec)
		},
	})
	return err
}

// RunOnAllExecutors runs fn once per live executor and returns the
// payloads indexed by executor ID over the full slot table — dead
// slots hold nil, so callers that address results by executor keep
// working across membership change.
func (ctx *Context) RunOnAllExecutors(fn func(ec *ExecContext, task, attempt int) ([]byte, error)) ([][]byte, error) {
	placement := append([]int(nil), ctx.LiveExecutors()...)
	res := make([][]byte, ctx.NumExecutors())
	if len(placement) == 0 {
		return res, nil
	}
	out, err := ctx.RunJob(JobSpec{Tasks: len(placement), Placement: placement, Fn: fn})
	if err != nil {
		return nil, err
	}
	for i, e := range placement {
		if e < len(res) {
			res[e] = out[i]
		}
	}
	return res, nil
}
