package rdd

import (
	"encoding/binary"
	"errors"
	"fmt"

	"sparker/internal/comm"
	"sparker/internal/trace"
	"sparker/internal/transport"
)

// --- wire frames -------------------------------------------------------
//
// task frame:    jobID int64 | task int32 | attempt int32
//                [| traceID uint64 | parentSpanID uint64]   (traced jobs)
// result frame:  jobID int64 | task int32 | attempt int32 | status byte | body
//                body = payload bytes (status=resultOK) or error string
//
// The trailing trace identifiers are appended only when the stage runs
// under a tracer, and decodeTaskFrame accepts both lengths, so untraced
// deployments keep the exact 16-byte seed format.
//
// Task errors cross the wire as strings, which would strip the error
// class a driver-side errors.Is needs to pick between retry and
// fallback. The status byte therefore encodes the classification: the
// executor maps comm sentinels to a status before serializing, and the
// driver re-attaches the matching sentinel when it reconstructs the
// error.

// Result frame status bytes. resultErr/resultOK keep the seed's 0/1
// encoding; classified failures extend it.
const (
	resultErr         = 0 // unclassified failure, message only
	resultOK          = 1
	resultPeerTimeout = 2 // comm.ErrPeerTimeout
	resultPeerDown    = 3 // comm.ErrPeerDown
)

// resultStatus classifies a task error for the wire.
func resultStatus(err error) byte {
	switch {
	case err == nil:
		return resultOK
	case errors.Is(err, comm.ErrPeerTimeout):
		return resultPeerTimeout
	case errors.Is(err, comm.ErrPeerDown):
		return resultPeerDown
	default:
		return resultErr
	}
}

// wireError is a task failure reconstructed driver-side: the original
// message with the classified sentinel re-attached for errors.Is.
type wireError struct {
	msg      string
	sentinel error
}

func (e *wireError) Error() string { return e.msg }
func (e *wireError) Unwrap() error { return e.sentinel }

// decodeWireError rebuilds the executor-side error from its wire form.
func decodeWireError(status byte, msg string) error {
	switch status {
	case resultPeerTimeout:
		return &wireError{msg: msg, sentinel: comm.ErrPeerTimeout}
	case resultPeerDown:
		return &wireError{msg: msg, sentinel: comm.ErrPeerDown}
	default:
		return errors.New(msg)
	}
}

// Task frame sizes: the seed's 16-byte form and the traced 32-byte
// extension carrying traceID + parent (stage) span ID.
const (
	taskFrameSize       = 16
	taskFrameTracedSize = taskFrameSize + 16
)

func encodeTaskFrame(jobID int64, task, attempt int, tc trace.SpanContext) []byte {
	n := taskFrameSize
	if tc.Valid() {
		n = taskFrameTracedSize
	}
	b := make([]byte, n)
	binary.LittleEndian.PutUint64(b, uint64(jobID))
	binary.LittleEndian.PutUint32(b[8:], uint32(int32(task)))
	binary.LittleEndian.PutUint32(b[12:], uint32(int32(attempt)))
	if tc.Valid() {
		binary.LittleEndian.PutUint64(b[16:], tc.TraceID)
		binary.LittleEndian.PutUint64(b[24:], tc.SpanID)
	}
	return b
}

func decodeTaskFrame(b []byte) (jobID int64, task, attempt int, tc trace.SpanContext, err error) {
	if len(b) < taskFrameSize {
		return 0, 0, 0, tc, fmt.Errorf("rdd: short task frame (%d bytes)", len(b))
	}
	jobID = int64(binary.LittleEndian.Uint64(b))
	task = int(int32(binary.LittleEndian.Uint32(b[8:])))
	attempt = int(int32(binary.LittleEndian.Uint32(b[12:])))
	if len(b) >= taskFrameTracedSize {
		tc.TraceID = binary.LittleEndian.Uint64(b[16:])
		tc.SpanID = binary.LittleEndian.Uint64(b[24:])
	}
	return jobID, task, attempt, tc, nil
}

func encodeResultFrame(jobID int64, task, attempt int, payload []byte, taskErr error) []byte {
	status := resultStatus(taskErr)
	var errStr string
	if taskErr != nil {
		errStr = taskErr.Error()
	}
	b := make([]byte, 0, 17+len(payload)+len(errStr))
	b = binary.LittleEndian.AppendUint64(b, uint64(jobID))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(task)))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(attempt)))
	b = append(b, status)
	if status == resultOK {
		b = append(b, payload...)
	} else {
		b = append(b, errStr...)
	}
	return b
}

func decodeResultFrame(b []byte) (jobID int64, task, attempt int, payload []byte, taskErr, err error) {
	if len(b) < 17 {
		return 0, 0, 0, nil, nil, fmt.Errorf("rdd: short result frame (%d bytes)", len(b))
	}
	jobID = int64(binary.LittleEndian.Uint64(b))
	task = int(int32(binary.LittleEndian.Uint32(b[8:])))
	attempt = int(int32(binary.LittleEndian.Uint32(b[12:])))
	if b[16] == resultOK {
		payload = b[17:]
	} else {
		msg := string(b[17:])
		if msg == "" {
			msg = "rdd: task failed without message"
		}
		taskErr = decodeWireError(b[16], msg)
	}
	return jobID, task, attempt, payload, taskErr, nil
}

// --- job bookkeeping ---------------------------------------------------

type taskResult struct {
	task    int
	attempt int
	payload []byte
	err     error
}

type job struct {
	id      int64
	fn      func(ec *ExecContext, task, attempt int) ([]byte, error)
	results chan taskResult
}

// JobSpec describes one stage submitted to the cluster.
type JobSpec struct {
	// Tasks is the number of tasks in the stage.
	Tasks int
	// Placement maps task index -> executor index. Nil means the
	// default round-robin placement task % NumExecutors (which also
	// keeps cached partitions on stable executors). A non-nil Placement
	// is the SpawnRDD static-scheduling path.
	Placement []int
	// Fn runs executor-side. Its []byte return crosses the transport
	// back to the driver.
	Fn func(ec *ExecContext, task, attempt int) ([]byte, error)
	// StageCleanup marks this as a reduced-result stage (IMM): on any
	// task failure the whole stage is aborted, StageCleanup runs on
	// every executor, and the stage is resubmitted from scratch. When
	// nil, failed tasks are retried individually (plain RDD semantics,
	// which require independent tasks).
	StageCleanup func(ec *ExecContext) error
	// MaxAttempts, when positive, overrides the configured retry budget
	// for this stage (MaxTaskAttempts, or MaxStageAttempts with
	// StageCleanup set). Collective stages set it to 1: resubmitting one
	// ring member alone cannot succeed, and the caller wants the
	// classified failure promptly to decide on fallback.
	MaxAttempts int
	// WaitAll delays the stage's error return until every in-flight task
	// has reported, instead of aborting on the first terminal failure.
	// Collective stages set it so that no task of a failed stage is
	// still driving the comm ring when the caller starts recovery (its
	// peers classify within their step deadline, so the wait is
	// bounded). Stages with StageCleanup always behave this way.
	WaitAll bool
	// TraceParent, when valid, makes this stage's span a child of the
	// given span (e.g. the enclosing aggregate). With a tracer
	// configured but no parent, the stage roots its own trace.
	TraceParent trace.SpanContext
}

// ErrJobFailed wraps the terminal failure of a job after retries.
var ErrJobFailed = errors.New("rdd: job failed")

// executorConn returns (dialing on first use) the driver's task
// connection to executor i.
func (ctx *Context) executorConn(i int) (*lockedConn, error) {
	ctx.connMu.Lock()
	defer ctx.connMu.Unlock()
	if ctx.conns == nil {
		ctx.conns = make([]*lockedConn, ctx.conf.NumExecutors)
	}
	if ctx.conns[i] != nil {
		return ctx.conns[i], nil
	}
	c, err := ctx.net.Dial(taskAddr(ctx.conf.Name, i))
	if err != nil {
		return nil, err
	}
	lc := &lockedConn{c: c}
	ctx.conns[i] = lc
	go ctx.readResults(c)
	return lc, nil
}

// readResults routes result frames from one executor connection to the
// owning job. Results for finished jobs (stale retries) are dropped.
func (ctx *Context) readResults(c transport.Conn) {
	for {
		b, err := c.Recv()
		if err != nil {
			return
		}
		jobID, task, attempt, payload, taskErr, err := decodeResultFrame(b)
		if err != nil {
			continue
		}
		j, ok := ctx.jobs.Load(jobID)
		if !ok {
			continue
		}
		// Copy the payload: the frame buffer belongs to the transport.
		var p []byte
		if payload != nil {
			p = append([]byte(nil), payload...)
		}
		select {
		case j.(*job).results <- taskResult{task: task, attempt: attempt, payload: p, err: taskErr}:
		default:
			// Result channel full implies a protocol bug; drop rather
			// than deadlock the reader.
		}
	}
}

// RunJob executes spec and returns the per-task payloads in task order.
func (ctx *Context) RunJob(spec JobSpec) ([][]byte, error) {
	if spec.Tasks <= 0 {
		return nil, fmt.Errorf("rdd: JobSpec.Tasks must be positive, got %d", spec.Tasks)
	}
	if spec.Fn == nil {
		return nil, fmt.Errorf("rdd: JobSpec.Fn is nil")
	}
	placement := spec.Placement
	if placement == nil {
		placement = make([]int, spec.Tasks)
		for t := range placement {
			placement[t] = t % ctx.conf.NumExecutors
		}
	}
	if len(placement) != spec.Tasks {
		return nil, fmt.Errorf("rdd: len(Placement)=%d != Tasks=%d", len(placement), spec.Tasks)
	}
	for t, e := range placement {
		if e < 0 || e >= ctx.conf.NumExecutors {
			return nil, fmt.Errorf("rdd: task %d placed on invalid executor %d", t, e)
		}
	}

	if spec.StageCleanup == nil {
		return ctx.runStageTaskRetry(spec, placement)
	}
	return ctx.runStageWholeRetry(spec, placement)
}

// runStageTaskRetry retries failed tasks individually.
func (ctx *Context) runStageTaskRetry(spec JobSpec, placement []int) (out [][]byte, retErr error) {
	maxAttempts := ctx.conf.MaxTaskAttempts
	if spec.MaxAttempts > 0 {
		maxAttempts = spec.MaxAttempts
	}
	id := ctx.newJobID()
	j := &job{id: id, fn: spec.Fn, results: make(chan taskResult, spec.Tasks*maxAttempts+1)}
	ctx.jobs.Store(id, j)
	defer ctx.jobs.Delete(id)

	stage := ctx.conf.Tracer.StartSpan("stage", spec.TraceParent)
	stage.SetInt("job", id)
	stage.SetInt("tasks", int64(spec.Tasks))
	defer func() { stage.EndErr(retErr) }()
	tc := stage.Context()

	submit := func(task, attempt int) error {
		lc, err := ctx.executorConn(placement[task])
		if err != nil {
			return err
		}
		return lc.send(encodeTaskFrame(id, task, attempt, tc))
	}
	for t := 0; t < spec.Tasks; t++ {
		if err := submit(t, 0); err != nil {
			return nil, err
		}
	}
	out = make([][]byte, spec.Tasks)
	done := make([]bool, spec.Tasks)
	attempts := make([]int, spec.Tasks)
	remaining := spec.Tasks
	inflight := spec.Tasks
	var finalErr error
	for remaining > 0 && inflight > 0 {
		r := <-j.results
		if r.task < 0 || r.task >= spec.Tasks || done[r.task] {
			continue
		}
		inflight--
		if r.err == nil {
			out[r.task] = r.payload
			done[r.task] = true
			remaining--
			continue
		}
		attempts[r.task]++
		if attempts[r.task] >= maxAttempts {
			err := fmt.Errorf("%w: task %d failed %d times, last: %w",
				ErrJobFailed, r.task, attempts[r.task], r.err)
			if !spec.WaitAll {
				return nil, err
			}
			// Keep draining the other in-flight tasks; report the first
			// terminal failure once they have all come home.
			if finalErr == nil {
				finalErr = err
			}
			continue
		}
		// Once the stage is doomed there is no point resubmitting.
		if finalErr == nil {
			if err := submit(r.task, attempts[r.task]); err != nil {
				return nil, err
			}
			inflight++
		}
	}
	if finalErr != nil {
		return nil, finalErr
	}
	return out, nil
}

// runStageWholeRetry implements reduced-result stage recovery: abort on
// first failure, clean every executor's shared state, resubmit.
func (ctx *Context) runStageWholeRetry(spec JobSpec, placement []int) (result [][]byte, retErr error) {
	maxAttempts := ctx.conf.MaxStageAttempts
	if spec.MaxAttempts > 0 {
		maxAttempts = spec.MaxAttempts
	}
	// One stage span covers every whole-stage attempt: resubmissions are
	// the stage's recovery behaviour, not new stages.
	stage := ctx.conf.Tracer.StartSpan("stage", spec.TraceParent)
	stage.SetInt("tasks", int64(spec.Tasks))
	stage.SetAttr("kind", "reduced-result")
	defer func() { stage.EndErr(retErr) }()
	tc := stage.Context()

	var lastErr error
	for stageAttempt := 0; stageAttempt < maxAttempts; stageAttempt++ {
		id := ctx.newJobID()
		j := &job{id: id, fn: spec.Fn, results: make(chan taskResult, spec.Tasks+1)}
		ctx.jobs.Store(id, j)

		failed := false
		for t := 0; t < spec.Tasks; t++ {
			lc, err := ctx.executorConn(placement[t])
			if err != nil {
				ctx.jobs.Delete(id)
				return nil, err
			}
			if err := lc.send(encodeTaskFrame(id, t, stageAttempt, tc)); err != nil {
				ctx.jobs.Delete(id)
				return nil, err
			}
		}
		out := make([][]byte, spec.Tasks)
		// Wait for ALL tasks (success or failure) so no task of an
		// aborted stage attempt is still mutating shared state while
		// cleanup runs.
		for seen := 0; seen < spec.Tasks; seen++ {
			r := <-j.results
			if r.err != nil {
				failed = true
				lastErr = r.err
				continue
			}
			if r.task >= 0 && r.task < spec.Tasks {
				out[r.task] = r.payload
			}
		}
		ctx.jobs.Delete(id)
		if !failed {
			stage.SetInt("attempts", int64(stageAttempt+1))
			return out, nil
		}
		if err := ctx.runCleanup(spec.StageCleanup); err != nil {
			return nil, fmt.Errorf("rdd: stage cleanup failed: %w", err)
		}
	}
	stage.SetInt("attempts", int64(maxAttempts))
	return nil, fmt.Errorf("%w: reduced-result stage failed %d attempts, last: %w",
		ErrJobFailed, maxAttempts, lastErr)
}

// runCleanup runs cleanup once on every executor.
func (ctx *Context) runCleanup(cleanup func(ec *ExecContext) error) error {
	placement := make([]int, ctx.conf.NumExecutors)
	for i := range placement {
		placement[i] = i
	}
	_, err := ctx.runStageTaskRetry(JobSpec{
		Tasks: ctx.conf.NumExecutors,
		Fn: func(ec *ExecContext, task, attempt int) ([]byte, error) {
			return nil, cleanup(ec)
		},
	}, placement)
	return err
}

// RunOnAllExecutors runs fn once per executor (task i on executor i)
// and returns the payloads indexed by executor.
func (ctx *Context) RunOnAllExecutors(fn func(ec *ExecContext, task, attempt int) ([]byte, error)) ([][]byte, error) {
	placement := make([]int, ctx.conf.NumExecutors)
	for i := range placement {
		placement[i] = i
	}
	return ctx.RunJob(JobSpec{Tasks: ctx.conf.NumExecutors, Placement: placement, Fn: fn})
}
