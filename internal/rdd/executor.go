package rdd

import (
	"fmt"
	"runtime/debug"
	"sync"

	"sparker/internal/blockmanager"
	"sparker/internal/comm"
	"sparker/internal/mutobj"
	"sparker/internal/transport"
)

// Executor is one worker process: a task server with CoresPerExecutor
// concurrent slots, a block store shard, a mutable object manager and a
// communicator endpoint. It receives task descriptions from the driver
// over the transport and returns serialized results the same way.
type Executor struct {
	ctx  *Context
	id   int
	host string
	rank int

	store *blockmanager.Store
	mut   *mutobj.Manager
	comm  *comm.Endpoint
	cache sync.Map // "rdd/<id>/<part>" -> materialized partition

	lis   transport.Listener
	queue chan taskMsg
	quit  chan struct{}
	wg    sync.WaitGroup
}

// taskMsg is one task dispatched to this executor, paired with the
// connection its result must return on.
type taskMsg struct {
	conn    *lockedConn
	jobID   int64
	task    int
	attempt int
}

// lockedConn serializes concurrent result writes from worker slots.
type lockedConn struct {
	mu sync.Mutex
	c  transport.Conn
}

func (lc *lockedConn) send(b []byte) error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.c.Send(b)
}

func taskAddr(name string, id int) transport.Addr {
	return transport.Addr(fmt.Sprintf("exec/%s/%d/tasks", name, id))
}

func newExecutor(ctx *Context, id int, host string, rank int) (*Executor, error) {
	store, err := blockmanager.NewStore(ctx.net, ctx.ExecutorStoreName(id))
	if err != nil {
		return nil, err
	}
	ep, err := comm.NewEndpoint(ctx.net, ctx.conf.Name+"/ring", rank, ctx.conf.NumExecutors)
	if err != nil {
		store.Close()
		return nil, err
	}
	lis, err := ctx.net.Listen(taskAddr(ctx.conf.Name, id))
	if err != nil {
		store.Close()
		ep.Close()
		return nil, err
	}
	e := &Executor{
		ctx:   ctx,
		id:    id,
		host:  host,
		rank:  rank,
		store: store,
		mut:   mutobj.NewManager(),
		comm:  ep,
		lis:   lis,
		queue: make(chan taskMsg, 4096),
		quit:  make(chan struct{}),
	}
	for c := 0; c < ctx.conf.CoresPerExecutor; c++ {
		e.wg.Add(1)
		go e.worker()
	}
	go e.serve()
	return e, nil
}

// serve accepts task connections (the driver opens one) and feeds the
// slot queue.
func (e *Executor) serve() {
	for {
		c, err := e.lis.Accept()
		if err != nil {
			return
		}
		go e.readTasks(&lockedConn{c: c})
	}
}

func (e *Executor) readTasks(lc *lockedConn) {
	for {
		b, err := lc.c.Recv()
		if err != nil {
			return
		}
		jobID, task, attempt, err := decodeTaskFrame(b)
		if err != nil {
			continue
		}
		select {
		case e.queue <- taskMsg{conn: lc, jobID: jobID, task: task, attempt: attempt}:
		case <-e.quit:
			return
		}
	}
}

// worker is one core: it pulls tasks and executes them.
func (e *Executor) worker() {
	defer e.wg.Done()
	ec := &ExecContext{
		ID:      e.id,
		Host:    e.host,
		Rank:    e.rank,
		Cores:   e.ctx.conf.CoresPerExecutor,
		Store:   e.store,
		MutObjs: e.mut,
		Comm:    e.comm,
		exec:    e,
	}
	for {
		select {
		case tm := <-e.queue:
			payload, taskErr := e.runTask(ec, tm)
			frame := encodeResultFrame(tm.jobID, tm.task, tm.attempt, payload, taskErr)
			tm.conn.send(frame)
		case <-e.quit:
			return
		}
	}
}

// runTask executes one task, converting panics into task failures —
// the engine must survive user-code bugs the way Spark does.
func (e *Executor) runTask(ec *ExecContext, tm taskMsg) (payload []byte, taskErr error) {
	j, ok := e.ctx.jobs.Load(tm.jobID)
	if !ok {
		return nil, fmt.Errorf("rdd: unknown job %d", tm.jobID)
	}
	defer func() {
		if r := recover(); r != nil {
			payload = nil
			taskErr = fmt.Errorf("rdd: task %d/%d panicked: %v\n%s", tm.jobID, tm.task, r, debug.Stack())
		}
	}()
	return j.(*job).fn(ec, tm.task, tm.attempt)
}

func (e *Executor) close() {
	select {
	case <-e.quit:
	default:
		close(e.quit)
	}
	e.lis.Close()
	e.comm.Close()
	e.store.Close()
	e.wg.Wait()
}

// ExecContext is the executor-side view handed to task closures.
type ExecContext struct {
	// ID is the executor index; Host its hostname; Rank its ring rank.
	ID   int
	Host string
	Rank int
	// Cores is the number of task slots on this executor.
	Cores int
	// Store is the executor's block shard.
	Store *blockmanager.Store
	// MutObjs is the executor's mutable object manager (IMM state).
	MutObjs *mutobj.Manager
	// Comm is the executor's scalable-communicator endpoint.
	Comm *comm.Endpoint

	exec *Executor
}

// Context returns the driver context. Task closures use it only for
// cluster geometry (executor counts, store names), never to schedule.
func (ec *ExecContext) Context() *Context { return ec.exec.ctx }

// CacheGet returns a cached partition.
func (ec *ExecContext) CacheGet(key string) (any, bool) {
	return ec.exec.cache.Load(key)
}

// CachePut stores a materialized partition.
func (ec *ExecContext) CachePut(key string, v any) {
	ec.exec.cache.Store(key, v)
}
