package rdd

import (
	"context"
	"fmt"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"sync"

	"sparker/internal/blockmanager"
	"sparker/internal/comm"
	"sparker/internal/metrics"
	"sparker/internal/mutobj"
	"sparker/internal/obsv"
	"sparker/internal/trace"
	"sparker/internal/transport"
)

// Executor is one worker process: a task server with CoresPerExecutor
// concurrent slots, a block store shard, a mutable object manager and a
// communicator endpoint. It receives task descriptions from the driver
// over the transport and returns serialized results the same way.
type Executor struct {
	ctx  *Context
	id   int
	host string
	rank int

	store *blockmanager.Store
	mut   *mutobj.Manager
	comm  *comm.Endpoint
	reg   *metrics.Registry // this executor's instruments
	cache sync.Map          // "rdd/<id>/<part>" -> materialized partition

	lis   transport.Listener
	queue chan taskMsg
	quit  chan struct{}
	wg    sync.WaitGroup
}

// taskMsg is one task dispatched to this executor, paired with the
// connection its result must return on.
type taskMsg struct {
	conn    *lockedConn
	jobID   int64
	task    int
	attempt int
	// trace is the stage span propagated in the task envelope; invalid
	// for untraced jobs.
	trace trace.SpanContext
}

// lockedConn serializes concurrent result writes from worker slots.
type lockedConn struct {
	mu sync.Mutex
	c  transport.Conn
}

func (lc *lockedConn) send(b []byte) error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.c.Send(b)
}

func taskAddr(name string, id int) transport.Addr {
	return transport.Addr(fmt.Sprintf("exec/%s/%d/tasks", name, id))
}

// TaskChannelAddr returns the listener address executor id's task
// channel binds under a context named name — the handle fault-injection
// rigs (straggler benches, chaos tests) use to slow or sever one
// executor's task traffic without touching its block stores.
func TaskChannelAddr(name string, id int) transport.Addr { return taskAddr(name, id) }

func newExecutor(ctx *Context, id int, host string, rank int) (*Executor, error) {
	store, err := blockmanager.NewStore(ctx.net, ctx.ExecutorStoreName(id))
	if err != nil {
		return nil, err
	}
	ep, err := comm.NewEndpoint(ctx.net, ctx.conf.Name+"/ring", rank, ctx.conf.NumExecutors)
	if err != nil {
		store.Close()
		return nil, err
	}
	lis, err := ctx.net.Listen(taskAddr(ctx.conf.Name, id))
	if err != nil {
		store.Close()
		ep.Close()
		return nil, err
	}
	e := &Executor{
		ctx:   ctx,
		id:    id,
		host:  host,
		rank:  rank,
		store: store,
		mut:   mutobj.NewManager(),
		comm:  ep,
		reg:   metrics.NewRegistry(),
		lis:   lis,
		queue: make(chan taskMsg, 4096),
		quit:  make(chan struct{}),
	}
	store.SetMetrics(e.reg)
	ep.SetMetrics(e.reg)
	for c := 0; c < ctx.conf.CoresPerExecutor; c++ {
		e.wg.Add(1)
		go e.worker()
	}
	go e.serve()
	return e, nil
}

// serve accepts task connections (the driver opens one) and feeds the
// slot queue.
func (e *Executor) serve() {
	for {
		c, err := e.lis.Accept()
		if err != nil {
			return
		}
		go e.readTasks(&lockedConn{c: c})
	}
}

func (e *Executor) readTasks(lc *lockedConn) {
	for {
		b, err := lc.c.Recv()
		if err != nil {
			return
		}
		jobID, task, attempt, tc, err := decodeTaskFrame(b)
		if err != nil {
			continue
		}
		select {
		case e.queue <- taskMsg{conn: lc, jobID: jobID, task: task, attempt: attempt, trace: tc}:
		case <-e.quit:
			return
		}
	}
}

// worker is one core: it pulls tasks and executes them.
func (e *Executor) worker() {
	defer e.wg.Done()
	ec := &ExecContext{
		ID:       e.id,
		Host:     e.host,
		Rank:     e.rank,
		Cores:    e.ctx.conf.CoresPerExecutor,
		Store:    e.store,
		MutObjs:  e.mut,
		Comm:     e.comm,
		Registry: e.reg,
		exec:     e,
	}
	for {
		select {
		case tm := <-e.queue:
			payload, taskErr := e.runTask(ec, tm)
			frame := encodeResultFrame(tm.jobID, tm.task, tm.attempt, payload, taskErr)
			tm.conn.send(frame)
		case <-e.quit:
			return
		}
	}
}

// runTask executes one task, converting panics into task failures —
// the engine must survive user-code bugs the way Spark does.
func (e *Executor) runTask(ec *ExecContext, tm taskMsg) (payload []byte, taskErr error) {
	j, ok := e.ctx.jobs.Load(tm.jobID)
	if !ok {
		return nil, fmt.Errorf("rdd: unknown job %d", tm.jobID)
	}
	if tr := e.ctx.conf.Tracer; tr != nil && tm.trace.Valid() {
		span := tr.StartSpan("task", tm.trace)
		span.SetInt("exec", int64(e.id))
		span.SetAttr("host", e.host)
		span.SetInt("job", tm.jobID)
		span.SetInt("task", int64(tm.task))
		span.SetInt("attempt", int64(tm.attempt))
		// ec is owned by this worker for the task's duration, so the
		// current task span can live on it for Instrument to pick up.
		ec.span = span.Context()
		defer func() {
			ec.span = trace.SpanContext{}
			span.EndErr(taskErr)
		}()
	}
	defer func() {
		if r := recover(); r != nil {
			payload = nil
			taskErr = fmt.Errorf("rdd: task %d/%d panicked: %v\n%s", tm.jobID, tm.task, r, debug.Stack())
		}
	}()
	jb := j.(*job)
	if e.ctx.conf.Obsv != nil {
		// Continuous-profiling tags: CPU samples taken while this task
		// runs carry its job/tenant/executor labels, so a pprof profile
		// scraped from /debug/pprof attributes hot code per stage.
		pprof.Do(context.Background(), pprof.Labels(
			"sparker_job", strconv.FormatInt(tm.jobID, 10),
			"sparker_tenant", jb.tenant,
			"sparker_exec", strconv.Itoa(e.id),
		), func(context.Context) {
			payload, taskErr = jb.fn(ec, tm.task, tm.attempt)
		})
		return payload, taskErr
	}
	return jb.fn(ec, tm.task, tm.attempt)
}

func (e *Executor) close() {
	select {
	case <-e.quit:
	default:
		close(e.quit)
	}
	e.lis.Close()
	e.comm.Close()
	e.store.Close()
	e.wg.Wait()
}

// ExecContext is the executor-side view handed to task closures.
type ExecContext struct {
	// ID is the executor index; Host its hostname; Rank its ring rank.
	ID   int
	Host string
	Rank int
	// Cores is the number of task slots on this executor.
	Cores int
	// Store is the executor's block shard.
	Store *blockmanager.Store
	// MutObjs is the executor's mutable object manager (IMM state).
	MutObjs *mutobj.Manager
	// Comm is the executor's scalable-communicator endpoint.
	Comm *comm.Endpoint
	// Registry is the executor's instrument registry; hot paths observe
	// into it contention-free and the driver merges on demand
	// (Context.MergedMetrics).
	Registry *metrics.Registry

	exec *Executor
	// span is the current task's span, set by runTask for the task's
	// duration. Each worker owns its ExecContext, so no lock is needed.
	span trace.SpanContext
}

// Context returns the driver context. Task closures use it only for
// cluster geometry (executor counts, store names), never to schedule.
func (ec *ExecContext) Context() *Context { return ec.exec.ctx }

// TaskSpan returns the running task's span context (invalid when the
// job is untraced).
func (ec *ExecContext) TaskSpan() trace.SpanContext { return ec.span }

// Instrument returns ctx carrying the executor's metrics registry and,
// when tracing is on, the tracer + current task span — the context
// shape the collectives read their telemetry handles from. Task
// closures wrap the context they pass to collective/core calls with
// this so ring-step spans nest under the task.
func (ec *ExecContext) Instrument(ctx context.Context) context.Context {
	ctx = metrics.NewContext(ctx, ec.Registry)
	if tr := ec.exec.ctx.conf.Tracer; tr != nil {
		ctx = trace.NewContext(ctx, tr, ec.span)
	}
	if obs := ec.exec.ctx.conf.Obsv; obs != nil {
		ctx = obsv.NewContext(ctx, obs.ExecRing(ec.ID))
	}
	return ctx
}

// CacheGet returns a cached partition.
func (ec *ExecContext) CacheGet(key string) (any, bool) {
	return ec.exec.cache.Load(key)
}

// CachePut stores a materialized partition.
func (ec *ExecContext) CachePut(key string, v any) {
	ec.exec.cache.Store(key, v)
}
