package rdd

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sparker/internal/blockmanager"
	"sparker/internal/comm"
	"sparker/internal/metrics"
	"sparker/internal/mutobj"
	"sparker/internal/obsv"
	"sparker/internal/trace"
	"sparker/internal/transport"
)

// Executor is one worker process: a task server with CoresPerExecutor
// concurrent slots, a block store shard, a mutable object manager and a
// communicator endpoint. It receives task descriptions from the driver
// over the transport and returns serialized results the same way.
//
// Under elastic membership the endpoint and ring rank are no longer
// fixed at boot: the driver's reconfiguration protocol pushes a fresh
// endpoint (new comm group, new rank, new ring size) over the control
// channel at each membership epoch, and the executor swaps it in
// atomically. Tasks read the rank/endpoint at dispatch time, so a task
// admitted under epoch E that starts after E+1 installs uses E+1's
// ring — stale-epoch traffic cannot form.
type Executor struct {
	ctx  *Context
	id   int
	host string
	// gen is the registry epoch this incarnation joined at (1 for boot
	// executors). Slot ids are reused across kill-and-replace, so
	// teardown keyed by id alone would clobber a replacement that
	// adopted the slot; the generation identifies exactly one
	// incarnation.
	gen  uint64
	rank atomic.Int32

	store *blockmanager.Store
	mut   *mutobj.Manager
	ep    atomic.Pointer[comm.Endpoint]
	reg   *metrics.Registry // this executor's instruments
	cache sync.Map          // "rdd/<id>/<part>" -> materialized partition

	lis   transport.Listener
	queue chan taskMsg
	quit  chan struct{}
	wg    sync.WaitGroup

	// ctrl is this executor's control conn to the driver's member
	// service; ctrlMu serializes heartbeats and protocol acks on it.
	ctrl   transport.Conn
	ctrlMu sync.Mutex

	// pending is the endpoint built in reconfiguration phase 1, swapped
	// live at phase 2's commit.
	pendMu      sync.Mutex
	pending     *comm.Endpoint
	pendingRank int
	pendingPar  int

	closeOnce sync.Once
}

// taskMsg is one task dispatched to this executor, paired with the
// connection its result must return on.
type taskMsg struct {
	conn    *lockedConn
	jobID   int64
	task    int
	attempt int
	// trace is the stage span propagated in the task envelope; invalid
	// for untraced jobs.
	trace trace.SpanContext
}

// lockedConn serializes concurrent result writes from worker slots.
type lockedConn struct {
	mu sync.Mutex
	c  transport.Conn
}

func (lc *lockedConn) send(b []byte) error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.c.Send(b)
}

func taskAddr(name string, id int) transport.Addr {
	return transport.Addr(fmt.Sprintf("exec/%s/%d/tasks", name, id))
}

// TaskChannelAddr returns the listener address executor id's task
// channel binds under a context named name — the handle fault-injection
// rigs (straggler benches, chaos tests) use to slow or sever one
// executor's task traffic without touching its block stores.
func TaskChannelAddr(name string, id int) transport.Addr { return taskAddr(name, id) }

// listenRetry retries a transport Listen briefly: a replacement
// executor adopting a dead slot can race the previous incarnation's
// teardown for the slot's well-known addresses.
func listenRetry(net transport.Network, addr transport.Addr) (transport.Listener, error) {
	var lis transport.Listener
	var err error
	for i := 0; i < 40; i++ {
		if lis, err = net.Listen(addr); err == nil {
			return lis, nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return nil, err
}

// newExecutor boots one executor. rank >= 0 is the boot path: the
// epoch-1 endpoint is created inline (the caller wires the ring).
// rank < 0 is the elastic join path: the executor starts without an
// endpoint and receives one through the first reconfiguration push.
// gen is the registry epoch of the incarnation's join (1 at boot).
func newExecutor(ctx *Context, id int, host string, rank int, gen uint64) (*Executor, error) {
	var store *blockmanager.Store
	var err error
	if rank >= 0 {
		store, err = blockmanager.NewStore(ctx.net, ctx.ExecutorStoreName(id))
	} else {
		// A joiner adopting a dead slot may race the old incarnation's
		// store teardown; retry until the address frees.
		for i := 0; i < 40; i++ {
			if store, err = blockmanager.NewStore(ctx.net, ctx.ExecutorStoreName(id)); err == nil {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	if err != nil {
		return nil, err
	}
	var ep *comm.Endpoint
	if rank >= 0 {
		ep, err = comm.NewEndpoint(ctx.net, ringGroup(ctx.conf.Name, 1), rank, ctx.conf.NumExecutors)
		if err != nil {
			store.Close()
			return nil, err
		}
	}
	lis, err := listenRetry(ctx.net, taskAddr(ctx.conf.Name, id))
	if err != nil {
		store.Close()
		if ep != nil {
			ep.Close()
		}
		return nil, err
	}
	ctrl, err := ctx.net.Dial(ctrlAddr(ctx.conf.Name))
	if err != nil {
		store.Close()
		if ep != nil {
			ep.Close()
		}
		lis.Close()
		return nil, err
	}
	e := &Executor{
		ctx:   ctx,
		id:    id,
		host:  host,
		gen:   gen,
		store: store,
		mut:   mutobj.NewManager(),
		reg:   metrics.NewRegistry(),
		lis:   lis,
		queue: make(chan taskMsg, 4096),
		quit:  make(chan struct{}),
		ctrl:  ctrl,
	}
	e.rank.Store(int32(rank))
	if ep != nil {
		ep.SetMetrics(e.reg)
		e.ep.Store(ep)
	}
	store.SetMetrics(e.reg)
	if err := e.ctrlSend(ctrlMsg{Kind: ctrlHello, Exec: id, Epoch: gen}); err != nil {
		e.kill()
		return nil, fmt.Errorf("rdd: executor %d hello: %w", id, err)
	}
	for c := 0; c < ctx.conf.CoresPerExecutor; c++ {
		e.wg.Add(1)
		go e.worker()
	}
	go e.serve()
	go e.ctrlRecv()
	go e.heartbeat()
	return e, nil
}

// endpoint returns the executor's current communicator endpoint (nil
// for a joiner that has not been committed into a ring yet).
func (e *Executor) endpoint() *comm.Endpoint { return e.ep.Load() }

// rankNow returns the executor's current ring rank (-1 before its
// first commit).
func (e *Executor) rankNow() int { return int(e.rank.Load()) }

func (e *Executor) ctrlSend(m ctrlMsg) error {
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	e.ctrlMu.Lock()
	defer e.ctrlMu.Unlock()
	return e.ctrl.Send(b)
}

// sendLeave announces a voluntary departure on the control channel.
func (e *Executor) sendLeave() error {
	return e.ctrlSend(ctrlMsg{Kind: ctrlLeave, Exec: e.id})
}

// heartbeat keeps the driver's failure detector fed.
func (e *Executor) heartbeat() {
	t := time.NewTicker(hbInterval)
	defer t.Stop()
	for {
		select {
		case <-e.quit:
			return
		case <-t.C:
			if e.ctrlSend(ctrlMsg{Kind: ctrlHB, Exec: e.id}) != nil {
				return
			}
		}
	}
}

// ctrlRecv executes the executor side of the reconfiguration protocol:
// phase 1 (reconf) builds and listens an endpoint for the new epoch's
// comm group; phase 2 (commit) wires its ring and swaps it live,
// closing the previous epoch's endpoint so stale collectives fail fast
// with classified errors. A step that fails sends no ack — the driver's
// timeout evicts this executor rather than installing a broken ring.
func (e *Executor) ctrlRecv() {
	for {
		b, err := e.ctrl.Recv()
		if err != nil {
			return
		}
		var m ctrlMsg
		if json.Unmarshal(b, &m) != nil {
			continue
		}
		switch m.Kind {
		case ctrlReconf:
			ep, err := comm.NewEndpoint(e.ctx.net, m.Group, m.Rank, m.Size)
			if err != nil {
				continue
			}
			ep.SetMetrics(e.reg)
			e.pendMu.Lock()
			if e.pending != nil {
				e.pending.Close()
			}
			e.pending, e.pendingRank, e.pendingPar = ep, m.Rank, m.Parallelism
			e.pendMu.Unlock()
			e.ctrlSend(ctrlMsg{Kind: ctrlReconfAck, Exec: e.id, Epoch: m.Epoch})
		case ctrlCommit:
			e.pendMu.Lock()
			ep, rank, par := e.pending, e.pendingRank, e.pendingPar
			e.pending = nil
			e.pendMu.Unlock()
			if ep != nil {
				if err := ep.ConnectRing(par); err != nil {
					ep.Close()
					continue
				}
				old := e.ep.Swap(ep)
				e.rank.Store(int32(rank))
				if old != nil {
					old.Close()
				}
			}
			e.ctrlSend(ctrlMsg{Kind: ctrlCommitAck, Exec: e.id, Epoch: m.Epoch})
		}
	}
}

// serve accepts task connections (the driver opens one) and feeds the
// slot queue.
func (e *Executor) serve() {
	for {
		c, err := e.lis.Accept()
		if err != nil {
			return
		}
		go e.readTasks(&lockedConn{c: c})
	}
}

func (e *Executor) readTasks(lc *lockedConn) {
	for {
		b, err := lc.c.Recv()
		if err != nil {
			return
		}
		jobID, task, attempt, tc, err := decodeTaskFrame(b)
		if err != nil {
			continue
		}
		select {
		case e.queue <- taskMsg{conn: lc, jobID: jobID, task: task, attempt: attempt, trace: tc}:
		case <-e.quit:
			return
		}
	}
}

// worker is one core: it pulls tasks and executes them. Rank and
// endpoint are refreshed per task — membership reconfigurations swap
// them between dispatches.
func (e *Executor) worker() {
	defer e.wg.Done()
	ec := &ExecContext{
		ID:       e.id,
		Host:     e.host,
		Cores:    e.ctx.conf.CoresPerExecutor,
		Store:    e.store,
		MutObjs:  e.mut,
		Registry: e.reg,
		exec:     e,
	}
	for {
		select {
		case tm := <-e.queue:
			ec.Rank = e.rankNow()
			ec.Comm = e.endpoint()
			payload, taskErr := e.runTask(ec, tm)
			frame := encodeResultFrame(tm.jobID, tm.task, tm.attempt, payload, taskErr)
			tm.conn.send(frame)
		case <-e.quit:
			return
		}
	}
}

// runTask executes one task, converting panics into task failures —
// the engine must survive user-code bugs the way Spark does.
func (e *Executor) runTask(ec *ExecContext, tm taskMsg) (payload []byte, taskErr error) {
	j, ok := e.ctx.jobs.Load(tm.jobID)
	if !ok {
		return nil, fmt.Errorf("rdd: unknown job %d", tm.jobID)
	}
	if tr := e.ctx.conf.Tracer; tr != nil && tm.trace.Valid() {
		span := tr.StartSpan("task", tm.trace)
		span.SetInt("exec", int64(e.id))
		span.SetAttr("host", e.host)
		span.SetInt("job", tm.jobID)
		span.SetInt("task", int64(tm.task))
		span.SetInt("attempt", int64(tm.attempt))
		// ec is owned by this worker for the task's duration, so the
		// current task span can live on it for Instrument to pick up.
		ec.span = span.Context()
		defer func() {
			ec.span = trace.SpanContext{}
			span.EndErr(taskErr)
		}()
	}
	defer func() {
		if r := recover(); r != nil {
			payload = nil
			taskErr = fmt.Errorf("rdd: task %d/%d panicked: %v\n%s", tm.jobID, tm.task, r, debug.Stack())
		}
	}()
	jb := j.(*job)
	if e.ctx.conf.Obsv != nil {
		// Continuous-profiling tags: CPU samples taken while this task
		// runs carry its job/tenant/executor labels, so a pprof profile
		// scraped from /debug/pprof attributes hot code per stage.
		pprof.Do(context.Background(), pprof.Labels(
			"sparker_job", strconv.FormatInt(tm.jobID, 10),
			"sparker_tenant", jb.tenant,
			"sparker_exec", strconv.Itoa(e.id),
		), func(context.Context) {
			payload, taskErr = jb.fn(ec, tm.task, tm.attempt)
		})
		return payload, taskErr
	}
	return jb.fn(ec, tm.task, tm.attempt)
}

// shutdown closes every resource the executor owns exactly once.
func (e *Executor) shutdown() {
	e.closeOnce.Do(func() {
		close(e.quit)
		e.lis.Close()
		e.ctrl.Close()
		if ep := e.ep.Load(); ep != nil {
			ep.Close()
		}
		e.pendMu.Lock()
		if e.pending != nil {
			e.pending.Close()
			e.pending = nil
		}
		e.pendMu.Unlock()
		e.store.Close()
	})
}

// close is the graceful path: resources close and the call waits for
// worker slots to drain.
func (e *Executor) close() {
	e.shutdown()
	e.wg.Wait()
}

// kill is the chaos path: everything closes immediately — severing the
// ctrl conn, the task channel, the block store and the ring endpoint —
// and worker drain happens in the background. In-flight ring steps and
// task sends observe closed conns at once, which is exactly the failure
// the driver's detector and the collectives' classified-error paths are
// built to absorb.
func (e *Executor) kill() {
	e.shutdown()
	go e.wg.Wait()
}

// ExecContext is the executor-side view handed to task closures.
type ExecContext struct {
	// ID is the executor index; Host its hostname; Rank its ring rank
	// under the membership epoch current at the task's dispatch.
	ID   int
	Host string
	Rank int
	// Cores is the number of task slots on this executor.
	Cores int
	// Store is the executor's block shard.
	Store *blockmanager.Store
	// MutObjs is the executor's mutable object manager (IMM state).
	MutObjs *mutobj.Manager
	// Comm is the executor's scalable-communicator endpoint for the
	// membership epoch current at the task's dispatch.
	Comm *comm.Endpoint
	// Registry is the executor's instrument registry; hot paths observe
	// into it contention-free and the driver merges on demand
	// (Context.MergedMetrics).
	Registry *metrics.Registry

	exec *Executor
	// span is the current task's span, set by runTask for the task's
	// duration. Each worker owns its ExecContext, so no lock is needed.
	span trace.SpanContext
}

// Context returns the driver context. Task closures use it only for
// cluster geometry (executor counts, store names), never to schedule.
func (ec *ExecContext) Context() *Context { return ec.exec.ctx }

// TaskSpan returns the running task's span context (invalid when the
// job is untraced).
func (ec *ExecContext) TaskSpan() trace.SpanContext { return ec.span }

// Instrument returns ctx carrying the executor's metrics registry and,
// when tracing is on, the tracer + current task span — the context
// shape the collectives read their telemetry handles from. Task
// closures wrap the context they pass to collective/core calls with
// this so ring-step spans nest under the task.
func (ec *ExecContext) Instrument(ctx context.Context) context.Context {
	ctx = metrics.NewContext(ctx, ec.Registry)
	if tr := ec.exec.ctx.conf.Tracer; tr != nil {
		ctx = trace.NewContext(ctx, tr, ec.span)
	}
	if obs := ec.exec.ctx.conf.Obsv; obs != nil {
		ctx = obsv.NewContext(ctx, obs.ExecRing(ec.ID))
	}
	return ctx
}

// CacheGet returns a cached partition.
func (ec *ExecContext) CacheGet(key string) (any, bool) {
	return ec.exec.cache.Load(key)
}

// CachePut stores a materialized partition.
func (ec *ExecContext) CachePut(key string, v any) {
	ec.exec.cache.Store(key, v)
}
