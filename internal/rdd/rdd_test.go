package rdd

import (
	"fmt"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func testContext(t *testing.T, execs, cores int) *Context {
	t.Helper()
	ctx, err := NewContext(Config{
		Name:             fmt.Sprintf("t-%s", t.Name()),
		NumExecutors:     execs,
		CoresPerExecutor: cores,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctx.Close() })
	return ctx
}

func ints(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewContext(Config{NumExecutors: -1}); err == nil {
		t.Error("negative NumExecutors should fail")
	}
	if _, err := NewContext(Config{CoresPerExecutor: -2}); err == nil {
		t.Error("negative CoresPerExecutor should fail")
	}
	if _, err := NewContext(Config{NumExecutors: 2, Hosts: []string{"only-one"}}); err == nil {
		t.Error("host/executor count mismatch should fail")
	}
}

func TestCollectRoundTrip(t *testing.T) {
	ctx := testContext(t, 3, 2)
	data := ints(100)
	r := FromSlice(ctx, data, 7)
	got, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, data) {
		t.Fatalf("Collect mismatch: got %d elems", len(got))
	}
}

func TestCollectEmptyPartitions(t *testing.T) {
	ctx := testContext(t, 2, 1)
	r := FromSlice(ctx, []int64{1, 2}, 5) // more partitions than elements
	got, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int64{1, 2}) {
		t.Fatalf("got %v", got)
	}
}

func TestMapFilterFlatMap(t *testing.T) {
	ctx := testContext(t, 2, 2)
	r := FromSlice(ctx, ints(20), 4)
	doubled := Map(r, func(v int64) int64 { return v * 2 })
	evens := Filter(doubled, func(v int64) bool { return v%4 == 0 })
	expanded := FlatMap(evens, func(v int64) []int64 { return []int64{v, v + 1} })
	got, err := Collect(expanded)
	if err != nil {
		t.Fatal(err)
	}
	var want []int64
	for i := int64(0); i < 20; i++ {
		d := i * 2
		if d%4 == 0 {
			want = append(want, d, d+1)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestMapPartitions(t *testing.T) {
	ctx := testContext(t, 2, 2)
	r := FromSlice(ctx, ints(12), 3)
	sums := MapPartitions(r, func(part int, in []int64) ([]int64, error) {
		var s int64
		for _, v := range in {
			s += v
		}
		return []int64{s}, nil
	})
	got, err := Collect(sums)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d partition sums", len(got))
	}
	var total int64
	for _, v := range got {
		total += v
	}
	if total != 66 {
		t.Fatalf("total %d, want 66", total)
	}
}

func TestUnion(t *testing.T) {
	ctx := testContext(t, 2, 1)
	a := FromSlice(ctx, []int64{1, 2}, 2)
	b := FromSlice(ctx, []int64{3, 4, 5}, 2)
	got, err := Collect(Union(a, b))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int64{1, 2, 3, 4, 5}) {
		t.Fatalf("got %v", got)
	}
}

func TestCount(t *testing.T) {
	ctx := testContext(t, 3, 1)
	r := FromSlice(ctx, ints(137), 10)
	n, err := Count(r)
	if err != nil {
		t.Fatal(err)
	}
	if n != 137 {
		t.Fatalf("Count = %d", n)
	}
}

func TestReduce(t *testing.T) {
	ctx := testContext(t, 3, 2)
	r := FromSlice(ctx, ints(100), 9)
	sum, err := Reduce(r, func(a, b int64) int64 { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	if sum != 4950 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestReduceWithEmptyPartitions(t *testing.T) {
	ctx := testContext(t, 2, 1)
	r := FromSlice(ctx, []int64{5, 7}, 6)
	sum, err := Reduce(r, func(a, b int64) int64 { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	if sum != 12 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestReduceEmptyRDD(t *testing.T) {
	ctx := testContext(t, 2, 1)
	r := FromSlice(ctx, []int64{}, 3)
	if _, err := Reduce(r, func(a, b int64) int64 { return a + b }); err == nil {
		t.Fatal("Reduce of empty RDD should fail")
	}
}

func TestCacheComputesOnce(t *testing.T) {
	ctx := testContext(t, 2, 2)
	var computations int64
	r := Generate(ctx, 4, func(part int) ([]int64, error) {
		atomic.AddInt64(&computations, 1)
		return []int64{int64(part)}, nil
	}).Cache()
	if _, err := Count(r); err != nil {
		t.Fatal(err)
	}
	first := atomic.LoadInt64(&computations)
	if first != 4 {
		t.Fatalf("first pass computed %d partitions", first)
	}
	for i := 0; i < 3; i++ {
		if _, err := Count(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := atomic.LoadInt64(&computations); got != first {
		t.Fatalf("cached RDD recomputed: %d -> %d", first, got)
	}
}

func TestUncachedRecomputes(t *testing.T) {
	ctx := testContext(t, 2, 1)
	var computations int64
	r := Generate(ctx, 2, func(part int) ([]int64, error) {
		atomic.AddInt64(&computations, 1)
		return []int64{1}, nil
	})
	Count(r)
	Count(r)
	if got := atomic.LoadInt64(&computations); got != 4 {
		t.Fatalf("uncached RDD computed %d times, want 4", got)
	}
}

func TestTaskRetrySucceeds(t *testing.T) {
	ctx := testContext(t, 2, 2)
	var failures int64
	out, err := ctx.RunJob(JobSpec{
		Tasks: 4,
		Fn: func(ec *ExecContext, task, attempt int) ([]byte, error) {
			if task == 2 && attempt == 0 {
				atomic.AddInt64(&failures, 1)
				return nil, fmt.Errorf("injected failure")
			}
			return []byte{byte(task)}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if failures != 1 {
		t.Fatalf("failures = %d", failures)
	}
	for i, p := range out {
		if len(p) != 1 || int(p[0]) != i {
			t.Fatalf("task %d payload %v", i, p)
		}
	}
}

func TestTaskRetryExhausted(t *testing.T) {
	ctx := testContext(t, 2, 1)
	_, err := ctx.RunJob(JobSpec{
		Tasks: 1,
		Fn: func(ec *ExecContext, task, attempt int) ([]byte, error) {
			return nil, fmt.Errorf("always fails")
		},
	})
	if err == nil {
		t.Fatal("job should fail after exhausting retries")
	}
}

func TestTaskPanicBecomesFailure(t *testing.T) {
	ctx := testContext(t, 2, 1)
	_, err := ctx.RunJob(JobSpec{
		Tasks: 1,
		Fn: func(ec *ExecContext, task, attempt int) ([]byte, error) {
			panic("user code bug")
		},
	})
	if err == nil {
		t.Fatal("panicking task should fail the job, not the process")
	}
}

func TestStaticPlacement(t *testing.T) {
	ctx := testContext(t, 4, 1)
	placement := []int{3, 1, 2, 0}
	out, err := ctx.RunJob(JobSpec{
		Tasks:     4,
		Placement: placement,
		Fn: func(ec *ExecContext, task, attempt int) ([]byte, error) {
			return []byte{byte(ec.ID)}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for task, p := range out {
		if int(p[0]) != placement[task] {
			t.Fatalf("task %d ran on executor %d, want %d", task, p[0], placement[task])
		}
	}
}

func TestPlacementValidation(t *testing.T) {
	ctx := testContext(t, 2, 1)
	_, err := ctx.RunJob(JobSpec{
		Tasks:     2,
		Placement: []int{0, 5},
		Fn:        func(ec *ExecContext, task, attempt int) ([]byte, error) { return nil, nil },
	})
	if err == nil {
		t.Fatal("out-of-range placement should fail")
	}
	_, err = ctx.RunJob(JobSpec{Tasks: 0, Fn: func(ec *ExecContext, task, attempt int) ([]byte, error) { return nil, nil }})
	if err == nil {
		t.Fatal("zero tasks should fail")
	}
}

func TestWholeStageRetry(t *testing.T) {
	ctx := testContext(t, 2, 2)
	var cleanups, attempts int64
	out, err := ctx.RunJob(JobSpec{
		Tasks: 4,
		Fn: func(ec *ExecContext, task, attempt int) ([]byte, error) {
			if attempt == 0 && task == 3 {
				atomic.AddInt64(&attempts, 1)
				return nil, fmt.Errorf("poisoned stage")
			}
			return []byte{byte(attempt)}, nil
		},
		StageCleanup: func(ec *ExecContext) error {
			atomic.AddInt64(&cleanups, 1)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cleanups != int64(ctx.NumExecutors()) {
		t.Fatalf("cleanup ran %d times, want once per executor (%d)", cleanups, ctx.NumExecutors())
	}
	// Every surviving payload must come from the second stage attempt:
	// no partial results of attempt 0 leak through.
	for task, p := range out {
		if len(p) != 1 || p[0] != 1 {
			t.Fatalf("task %d returned attempt %v, want 1", task, p)
		}
	}
}

func TestWholeStageRetryExhausted(t *testing.T) {
	ctx := testContext(t, 2, 1)
	_, err := ctx.RunJob(JobSpec{
		Tasks: 2,
		Fn: func(ec *ExecContext, task, attempt int) ([]byte, error) {
			return nil, fmt.Errorf("always poisoned")
		},
		StageCleanup: func(ec *ExecContext) error { return nil },
	})
	if err == nil {
		t.Fatal("stage should fail after MaxStageAttempts")
	}
}

func TestRunOnAllExecutors(t *testing.T) {
	ctx := testContext(t, 5, 1)
	out, err := ctx.RunOnAllExecutors(func(ec *ExecContext, task, attempt int) ([]byte, error) {
		return []byte{byte(ec.ID)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range out {
		if int(p[0]) != i {
			t.Fatalf("slot %d got executor %d", i, p[0])
		}
	}
}

func TestTreeAggregateSum(t *testing.T) {
	for _, depth := range []int{1, 2, 3} {
		for _, parts := range []int{1, 3, 8, 16} {
			t.Run(fmt.Sprintf("depth=%d/parts=%d", depth, parts), func(t *testing.T) {
				ctx := testContext(t, 3, 2)
				r := FromSlice(ctx, ints(200), parts)
				got, err := TreeAggregate(r,
					func() int64 { return 0 },
					func(acc int64, v int64) int64 { return acc + v },
					func(a, b int64) int64 { return a + b },
					AggregateOptions{Depth: depth})
				if err != nil {
					t.Fatal(err)
				}
				if got != 19900 {
					t.Fatalf("sum = %d, want 19900", got)
				}
			})
		}
	}
}

func TestTreeAggregateVectorSum(t *testing.T) {
	ctx := testContext(t, 4, 2)
	const dim = 64
	r := Generate(ctx, 12, func(part int) ([]int64, error) {
		return ints(10), nil
	})
	got, err := TreeAggregate(r,
		func() []float64 { return make([]float64, dim) },
		func(acc []float64, v int64) []float64 {
			for i := range acc {
				acc[i] += float64(v)
			}
			return acc
		},
		func(a, b []float64) []float64 {
			for i := range a {
				a[i] += b[i]
			}
			return a
		},
		AggregateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(12 * 45)
	for i, v := range got {
		if v != want {
			t.Fatalf("component %d = %v, want %v", i, v, want)
		}
	}
}

func TestTreeAggregateCleansBlocks(t *testing.T) {
	ctx := testContext(t, 2, 1)
	r := FromSlice(ctx, ints(10), 4)
	if _, err := TreeAggregate(r,
		func() int64 { return 0 },
		func(a int64, v int64) int64 { return a + v },
		func(a, b int64) int64 { return a + b },
		AggregateOptions{}); err != nil {
		t.Fatal(err)
	}
	// No shuffle blocks may survive the action.
	out, err := ctx.RunOnAllExecutors(func(ec *ExecContext, task, attempt int) ([]byte, error) {
		n := ec.Store.DeletePrefix("agg/")
		return []byte{byte(n)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range out {
		if p[0] != 0 {
			t.Fatalf("executor %d leaked %d shuffle blocks", i, p[0])
		}
	}
}

func TestIntRoot(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{1, 2, 1}, {2, 2, 2}, {4, 2, 2}, {5, 2, 3}, {9, 2, 3}, {10, 2, 4},
		{8, 3, 2}, {27, 3, 3}, {28, 3, 4}, {100, 1, 100},
	}
	for _, c := range cases {
		if got := intRoot(c.n, c.k); got != c.want {
			t.Errorf("intRoot(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestQuickTreeAggregateEqualsSerialSum(t *testing.T) {
	ctx := testContext(t, 3, 2)
	f := func(vals []int64, partsRaw uint8) bool {
		parts := int(partsRaw%6) + 1
		r := FromSlice(ctx, vals, parts)
		got, err := TreeAggregate(r,
			func() int64 { return 0 },
			func(a int64, v int64) int64 { return a + v },
			func(a, b int64) int64 { return a + b },
			AggregateOptions{})
		if err != nil {
			return false
		}
		var want int64
		for _, v := range vals {
			want += v
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTopologyRankAssignment(t *testing.T) {
	ctx, err := NewContext(Config{
		Name:         "topo",
		NumExecutors: 4,
		Hosts:        []string{"b", "a", "b", "a"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()
	// Ranks 0,1 must be the "a" executors (1 and 3), ranks 2,3 the "b"s.
	gotHosts := make([]string, 4)
	for rank := 0; rank < 4; rank++ {
		gotHosts[rank] = ctx.conf.Hosts[ctx.ExecutorOfRank(rank)]
	}
	if !sort.StringsAreSorted(gotHosts) {
		t.Fatalf("ring order not topology-sorted: %v", gotHosts)
	}
	for i := 0; i < 4; i++ {
		if ctx.ExecutorOfRank(ctx.RankOfExecutor(i)) != i {
			t.Fatal("rank mapping not a bijection")
		}
	}
}

func TestUnpersistRecomputes(t *testing.T) {
	ctx := testContext(t, 2, 1)
	var computations int64
	r := Generate(ctx, 2, func(part int) ([]int64, error) {
		atomic.AddInt64(&computations, 1)
		return []int64{int64(part)}, nil
	}).Cache()
	Count(r)
	Count(r) // cached: no recompute
	if got := atomic.LoadInt64(&computations); got != 2 {
		t.Fatalf("computed %d, want 2", got)
	}
	if err := r.Unpersist(); err != nil {
		t.Fatal(err)
	}
	Count(r) // must recompute
	if got := atomic.LoadInt64(&computations); got != 4 {
		t.Fatalf("after Unpersist computed %d, want 4", got)
	}
}

func TestCheckpointTruncatesLineage(t *testing.T) {
	ctx := testContext(t, 2, 2)
	var computations int64
	base := Generate(ctx, 4, func(part int) ([]int64, error) {
		atomic.AddInt64(&computations, 1)
		return []int64{int64(part * 10)}, nil
	})
	derived := Map(base, func(v int64) int64 { return v + 1 })
	if err := derived.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after := atomic.LoadInt64(&computations)
	want, err := Collect(derived)
	if err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint actions must not touch the generator again.
	if got := atomic.LoadInt64(&computations); got != after {
		t.Fatalf("checkpointed RDD recomputed lineage: %d -> %d", after, got)
	}
	if !reflect.DeepEqual(want, []int64{1, 11, 21, 31}) {
		t.Fatalf("checkpointed data wrong: %v", want)
	}
	// Downstream transforms still work.
	sum, err := Reduce(Map(derived, func(v int64) int64 { return v * 2 }),
		func(a, b int64) int64 { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	if sum != 128 {
		t.Fatalf("sum = %d, want 128", sum)
	}
	if got := atomic.LoadInt64(&computations); got != after {
		t.Fatal("downstream action recomputed lineage past the checkpoint")
	}
}

func TestContextCloseRejectsNewJobs(t *testing.T) {
	ctx, err := NewContext(Config{Name: "t-close", NumExecutors: 2, CoresPerExecutor: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := FromSlice(ctx, ints(10), 2)
	if _, err := Count(r); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Count(r); err == nil {
		t.Fatal("action after Close should fail")
	}
	// Double close is safe.
	if err := ctx.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMaterializeOutOfRange(t *testing.T) {
	ctx := testContext(t, 2, 1)
	r := FromSlice(ctx, ints(4), 2)
	_, err := ctx.RunJob(JobSpec{
		Tasks: 1,
		Fn: func(ec *ExecContext, task, attempt int) ([]byte, error) {
			if _, err := r.Materialize(ec, 99); err == nil {
				return nil, fmt.Errorf("out-of-range partition should fail")
			}
			if _, err := r.Materialize(ec, -1); err == nil {
				return nil, fmt.Errorf("negative partition should fail")
			}
			return nil, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGenerateErrorPropagates(t *testing.T) {
	ctx := testContext(t, 2, 1)
	r := Generate(ctx, 2, func(part int) ([]int64, error) {
		if part == 1 {
			return nil, fmt.Errorf("partition %d is broken", part)
		}
		return []int64{1}, nil
	})
	if _, err := Count(r); err == nil {
		t.Fatal("compute error should propagate to the action")
	}
}

func TestContextAccessors(t *testing.T) {
	ctx := testContext(t, 3, 4)
	if ctx.NumExecutors() != 3 || ctx.CoresPerExecutor() != 4 || ctx.TotalCores() != 12 {
		t.Fatal("geometry accessors wrong")
	}
	if ctx.RingParallelism() != 4 {
		t.Fatalf("RingParallelism = %d", ctx.RingParallelism())
	}
	if ctx.Metrics() == nil || ctx.DriverStore() == nil {
		t.Fatal("nil accessors")
	}
	if a, b := ctx.NewOpID(), ctx.NewOpID(); a == b {
		t.Fatal("NewOpID not unique")
	}
	r := FromSlice(ctx, ints(4), 2)
	if r.Context() != ctx || r.NumPartitions() != 2 || r.ID() == 0 {
		t.Fatal("RDD accessors wrong")
	}
	b, err := NewBroadcast(ctx, int64(1))
	if err != nil {
		t.Fatal(err)
	}
	if b.ID() == 0 {
		t.Fatal("broadcast ID zero")
	}
	// ExecContext.Context inside a task.
	_, err = ctx.RunJob(JobSpec{Tasks: 1, Fn: func(ec *ExecContext, task, attempt int) ([]byte, error) {
		if ec.Context() != ctx {
			return nil, fmt.Errorf("ExecContext.Context mismatch")
		}
		return nil, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
}
