package rdd

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"sparker/internal/serde"
)

// Pair is a keyed element for shuffle operations. Pair values are
// serde self-marshaling as long as K and V are serde-encodable; the
// concrete instantiation is registered by RegisterPair (called
// automatically by KeyBy, ReduceByKey and CountByKey).
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// MarshalBinaryTo implements serde.Marshaler.
func (p Pair[K, V]) MarshalBinaryTo(dst []byte) []byte {
	dst = serde.MustEncode(dst, p.Key)
	return serde.MustEncode(dst, p.Value)
}

// UnmarshalBinaryFrom implements serde.Unmarshaler.
func (p *Pair[K, V]) UnmarshalBinaryFrom(src []byte) (int, error) {
	kv, n, err := serde.Decode(src)
	if err != nil {
		return 0, err
	}
	vv, m, err := serde.Decode(src[n:])
	if err != nil {
		return 0, err
	}
	k, ok := kv.(K)
	if !ok {
		return 0, fmt.Errorf("rdd: pair key decoded as %T", kv)
	}
	v, ok := vv.(V)
	if !ok {
		return 0, fmt.Errorf("rdd: pair value decoded as %T", vv)
	}
	p.Key, p.Value = k, v
	return n + m, nil
}

// RegisterPair registers the concrete Pair[K, V] instantiation with
// serde so pair RDDs can be collected. Idempotent.
func RegisterPair[K comparable, V any]() {
	serde.RegisterSelfOnce(Pair[K, V]{}, func() serde.Unmarshaler { return new(Pair[K, V]) })
}

// KeyBy turns an RDD into a pair RDD.
func KeyBy[T any, K comparable](r *RDD[T], key func(T) K) *RDD[Pair[K, T]] {
	RegisterPair[K, T]()
	return Map(r, func(v T) Pair[K, T] { return Pair[K, T]{Key: key(v), Value: v} })
}

// ReduceByKey performs the classic shuffled aggregation: values are
// combined per key within each input partition (map-side combine),
// hash-partitioned into numPartitions shuffle blocks stored on the
// executors, and merged on the reduce side. The shuffle map stage runs
// eagerly (unlike Spark's lazy stages — documented engine
// simplification); the returned RDD's partitions fetch and merge their
// blocks on demand, emitting pairs in deterministic key-hash order.
//
// K and V must be serde-encodable.
func ReduceByKey[K comparable, V any](r *RDD[Pair[K, V]], reduce func(V, V) V, numPartitions int) (*RDD[Pair[K, V]], error) {
	if numPartitions < 1 {
		return nil, fmt.Errorf("rdd: ReduceByKey needs at least one partition")
	}
	RegisterPair[K, V]()
	ctx := r.ctx
	shufID := ctx.newJobID()
	blockID := func(src, dst int) string {
		return fmt.Sprintf("shuf/%d/%d/%d", shufID, src, dst)
	}

	// Map stage: local combine, hash-partition, store blocks locally.
	srcParts := r.parts
	h, err := ctx.SubmitJob(JobSpec{
		Tasks:  srcParts,
		Policy: r.placementPolicy(),
		Fn: func(ec *ExecContext, task, attempt int) ([]byte, error) {
			in, err := r.Materialize(ec, task)
			if err != nil {
				return nil, err
			}
			combined := map[K]V{}
			for _, p := range in {
				if cur, ok := combined[p.Key]; ok {
					combined[p.Key] = reduce(cur, p.Value)
				} else {
					combined[p.Key] = p.Value
				}
			}
			buckets := make([][]Pair[K, V], numPartitions)
			for k, v := range combined {
				h, err := keyHash(k)
				if err != nil {
					return nil, err
				}
				d := int(h % uint64(numPartitions))
				buckets[d] = append(buckets[d], Pair[K, V]{Key: k, Value: v})
			}
			for dst, bucket := range buckets {
				wire, err := encodePairs(bucket)
				if err != nil {
					return nil, err
				}
				ec.Store.PutLocal(blockID(task, dst), wire)
			}
			return nil, nil
		},
	})
	if err == nil {
		_, err = h.Wait()
	}
	if err != nil {
		return nil, err
	}
	// Map blocks live on whichever executor won each task — speculation
	// or placement policies can move them off src %% NumExecutors.
	mapOwners := h.Executors()

	// Reduce-side RDD: partition dst fetches its block from every map
	// task's executor and merges.
	out := newRDD(ctx, numPartitions, func(ec *ExecContext, dst int) ([]Pair[K, V], error) {
		merged := map[K]V{}
		for src := 0; src < srcParts; src++ {
			owner := ctx.ExecutorStoreName(mapOwners[src])
			wire, err := ec.Store.FetchFrom(owner, blockID(src, dst))
			if err != nil {
				return nil, fmt.Errorf("rdd: shuffle fetch %d->%d: %w", src, dst, err)
			}
			pairs, err := decodePairs[K, V](wire)
			if err != nil {
				return nil, err
			}
			for _, p := range pairs {
				if cur, ok := merged[p.Key]; ok {
					merged[p.Key] = reduce(cur, p.Value)
				} else {
					merged[p.Key] = p.Value
				}
			}
		}
		return sortedPairs(merged)
	})
	return out, nil
}

// CountByKey reduces to per-key counts, collected at the driver.
func CountByKey[K comparable, V any](r *RDD[Pair[K, V]]) (map[K]int64, error) {
	RegisterPair[K, int64]()
	ones := Map(r, func(p Pair[K, V]) Pair[K, int64] { return Pair[K, int64]{Key: p.Key, Value: 1} })
	counted, err := ReduceByKey(ones, func(a, b int64) int64 { return a + b }, r.ctx.NumLiveExecutors())
	if err != nil {
		return nil, err
	}
	pairs, err := Collect(counted)
	if err != nil {
		return nil, err
	}
	out := make(map[K]int64, len(pairs))
	for _, p := range pairs {
		out[p.Key] = p.Value
	}
	return out, nil
}

// keyHash hashes a key through its serde encoding — stable across
// processes and executors.
func keyHash[K comparable](k K) (uint64, error) {
	wire, err := serde.Encode(nil, k)
	if err != nil {
		return 0, fmt.Errorf("rdd: shuffle key not encodable: %w", err)
	}
	h := fnv.New64a()
	h.Write(wire)
	return h.Sum64(), nil
}

// sortedPairs emits map entries ordered by encoded key bytes, so
// partition contents are deterministic.
func sortedPairs[K comparable, V any](m map[K]V) ([]Pair[K, V], error) {
	type kb struct {
		key  K
		wire []byte
	}
	keys := make([]kb, 0, len(m))
	for k := range m {
		wire, err := serde.Encode(nil, k)
		if err != nil {
			return nil, err
		}
		keys = append(keys, kb{key: k, wire: wire})
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i].wire, keys[j].wire) < 0 })
	out := make([]Pair[K, V], len(keys))
	for i, k := range keys {
		out[i] = Pair[K, V]{Key: k.key, Value: m[k.key]}
	}
	return out, nil
}

// encodePairs frames pairs as count + (key, value) encodings.
func encodePairs[K comparable, V any](pairs []Pair[K, V]) ([]byte, error) {
	b := binary.LittleEndian.AppendUint32(nil, uint32(len(pairs)))
	var err error
	for _, p := range pairs {
		if b, err = serde.Encode(b, p.Key); err != nil {
			return nil, err
		}
		if b, err = serde.Encode(b, p.Value); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func decodePairs[K comparable, V any](b []byte) ([]Pair[K, V], error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("rdd: short shuffle block")
	}
	n := int(binary.LittleEndian.Uint32(b))
	off := 4
	out := make([]Pair[K, V], 0, n)
	for i := 0; i < n; i++ {
		kv, used, err := serde.Decode(b[off:])
		if err != nil {
			return nil, err
		}
		off += used
		vv, used, err := serde.Decode(b[off:])
		if err != nil {
			return nil, err
		}
		off += used
		k, ok := kv.(K)
		if !ok {
			return nil, fmt.Errorf("rdd: shuffle key decoded as %T", kv)
		}
		v, ok := vv.(V)
		if !ok {
			return nil, fmt.Errorf("rdd: shuffle value decoded as %T", vv)
		}
		out = append(out, Pair[K, V]{Key: k, Value: v})
	}
	return out, nil
}
