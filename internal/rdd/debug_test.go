package rdd

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"sparker/internal/metrics"
)

// TestComputeDebugEndpoint: /debug/sparker/compute must surface the
// per-executor packed map-phase instruments and the merged cluster
// aggregate (histogram counts add, throughput gauges sum).
func TestComputeDebugEndpoint(t *testing.T) {
	ctx, err := NewContext(Config{Name: "compute-debug", NumExecutors: 2, CoresPerExecutor: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()

	if _, err := ctx.RunOnAllExecutors(func(ec *ExecContext, task, attempt int) ([]byte, error) {
		ec.Registry.Histogram(metrics.HistComputeMapNS).Observe(int64(1000 * (ec.ID + 1)))
		ec.Registry.Gauge(metrics.GaugeComputePointsPerSec).Set(int64(500 * (ec.ID + 1)))
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(ctx.DebugHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/sparker/compute")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/sparker/compute: code %d", resp.StatusCode)
	}
	var cv struct {
		Executors []struct {
			Exec   int   `json:"exec"`
			Passes int64 `json:"passes"`
		} `json:"executors"`
		Cluster struct {
			Passes       int64 `json:"passes"`
			TotalMapNS   int64 `json:"total_map_ns"`
			PointsPerSec int64 `json:"points_per_sec"`
		} `json:"cluster"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cv); err != nil {
		t.Fatal(err)
	}
	if len(cv.Executors) != 2 {
		t.Fatalf("%d executors, want 2", len(cv.Executors))
	}
	for _, e := range cv.Executors {
		if e.Passes != 1 {
			t.Fatalf("executor %d passes = %d, want 1", e.Exec, e.Passes)
		}
	}
	if cv.Cluster.Passes != 2 || cv.Cluster.TotalMapNS != 3000 || cv.Cluster.PointsPerSec != 1500 {
		t.Fatalf("cluster view = %+v, want passes 2, total 3000ns, 1500 points/s", cv.Cluster)
	}
}
