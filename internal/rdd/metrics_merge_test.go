package rdd

import (
	"fmt"
	"sync"
	"testing"
)

// TestMergedMetricsConcurrent hammers every executor's registry —
// observing histograms, bumping gauges, and creating fresh instrument
// names to force map growth — while MergedMetrics snapshots the
// cluster view concurrently. The race detector guards the locking;
// the final merge must account for every observation.
func TestMergedMetricsConcurrent(t *testing.T) {
	ctx, err := NewContext(Config{NumExecutors: 2, CoresPerExecutor: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()

	const (
		writers   = 4
		perWriter = 500
	)
	var writersWG, scrapersWG sync.WaitGroup
	stop := make(chan struct{})

	// Scrapers: merge continuously while writers mutate.
	for s := 0; s < 2; s++ {
		scrapersWG.Add(1)
		go func() {
			defer scrapersWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m := ctx.MergedMetrics()
				_ = m.HistogramNames()
				_ = m.GaugeNames()
			}
		}()
	}

	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			// Each writer owns one executor so merged gauge values
			// (which sum across registries) stay predictable.
			e := ctx.executors[w%len(ctx.executors)]
			for i := 0; i < perWriter; i++ {
				e.reg.Histogram("merge.test.ns").Observe(int64(i + 1))
				e.reg.Gauge(fmt.Sprintf("merge.test.gauge.%d", w)).Set(int64(i))
				if i%50 == 0 {
					// Fresh names force registry map writes under load.
					e.reg.Histogram(fmt.Sprintf("merge.test.dynamic.%d.%d", w, i)).Observe(1)
				}
			}
		}(w)
	}

	writersWG.Wait()
	close(stop)
	scrapersWG.Wait()

	merged := ctx.MergedMetrics()
	if got, want := merged.Histogram("merge.test.ns").Count(), int64(writers*perWriter); got != want {
		t.Fatalf("merged count %d, want %d", got, want)
	}
	for w := 0; w < writers; w++ {
		if got := merged.Gauge(fmt.Sprintf("merge.test.gauge.%d", w)).Value(); got != perWriter-1 {
			t.Fatalf("gauge %d final value %d, want %d", w, got, perWriter-1)
		}
	}
}
