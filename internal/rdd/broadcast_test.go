package rdd

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestBroadcastValueOnExecutors(t *testing.T) {
	ctx := testContext(t, 3, 2)
	weights := []float64{1.5, -2.5, 3.5}
	b, err := NewBroadcast(ctx, weights)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ctx.RunOnAllExecutors(func(ec *ExecContext, task, attempt int) ([]byte, error) {
		v, err := b.Value(ec)
		if err != nil {
			return nil, err
		}
		if !reflect.DeepEqual(v, weights) {
			return nil, fmt.Errorf("executor %d saw %v", ec.ID, v)
		}
		return []byte{1}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("ran on %d executors", len(out))
	}
}

func TestBroadcastFetchedOncePerExecutor(t *testing.T) {
	ctx := testContext(t, 2, 2)
	b, err := NewBroadcast(ctx, []float64{42})
	if err != nil {
		t.Fatal(err)
	}
	// Many tasks per executor read the value; afterwards each executor
	// must hold exactly one cached copy (fetch count is hard to observe
	// directly, but the cache key must be present and correct).
	var reads int64
	_, err = ctx.RunJob(JobSpec{
		Tasks: 16,
		Fn: func(ec *ExecContext, task, attempt int) ([]byte, error) {
			v, err := b.Value(ec)
			if err != nil {
				return nil, err
			}
			if v[0] != 42 {
				return nil, fmt.Errorf("bad value %v", v)
			}
			atomic.AddInt64(&reads, 1)
			return nil, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if reads != 16 {
		t.Fatalf("reads = %d", reads)
	}
	out, err := ctx.RunOnAllExecutors(func(ec *ExecContext, task, attempt int) ([]byte, error) {
		if _, ok := ec.CacheGet(b.cacheKey()); !ok {
			return nil, fmt.Errorf("executor %d has no cached broadcast", ec.ID)
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = out
}

func TestBroadcastDestroy(t *testing.T) {
	ctx := testContext(t, 2, 1)
	b, err := NewBroadcast(ctx, int64(7))
	if err != nil {
		t.Fatal(err)
	}
	// Prime one executor's cache.
	if _, err := ctx.RunOnAllExecutors(func(ec *ExecContext, task, attempt int) ([]byte, error) {
		_, err := b.Value(ec)
		return nil, err
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.Destroy(); err != nil {
		t.Fatal(err)
	}
	// Reads must now fail on every executor (cache cleared + block gone).
	_, err = ctx.RunOnAllExecutors(func(ec *ExecContext, task, attempt int) ([]byte, error) {
		if _, err := b.Value(ec); err == nil {
			return nil, fmt.Errorf("executor %d read destroyed broadcast", ec.ID)
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Destroy(); err != nil {
		t.Fatal("second Destroy should be a no-op")
	}
}

func TestBroadcastUnencodableValue(t *testing.T) {
	ctx := testContext(t, 2, 1)
	type secret struct{ x int }
	if _, err := NewBroadcast(ctx, secret{1}); err == nil {
		t.Fatal("unregistered type should fail to broadcast")
	}
}

func TestSampleDeterministic(t *testing.T) {
	ctx := testContext(t, 2, 2)
	r := FromSlice(ctx, ints(1000), 4)
	s := Sample(r, 0.5, 99)
	a, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	bWire, err := Collect(Sample(r, 0.5, 99))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, bWire) {
		t.Fatal("same seed should sample identically")
	}
	if len(a) < 300 || len(a) > 700 {
		t.Fatalf("0.5 sample kept %d of 1000", len(a))
	}
	c, err := Collect(Sample(r, 0.5, 100))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should differ")
	}
	// fraction >= 1 is the identity.
	if s := Sample(r, 1.0, 1); s != r {
		t.Fatal("fraction 1.0 should return the receiver")
	}
}

func TestMapPartitionsWithContext(t *testing.T) {
	ctx := testContext(t, 3, 1)
	r := FromSlice(ctx, ints(9), 3)
	tagged := MapPartitionsWithContext(r, func(ec *ExecContext, part int, in []int64) ([]int64, error) {
		out := make([]int64, len(in))
		for i, v := range in {
			out[i] = v*100 + int64(ec.ID)
		}
		return out, nil
	})
	got, err := Collect(tagged)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		execID := v % 100
		if v/100 != int64(i) {
			t.Fatalf("element %d mangled: %d", i, v)
		}
		if execID < 0 || execID > 2 {
			t.Fatalf("bad executor id %d", execID)
		}
	}
}

func TestTakeAndFirst(t *testing.T) {
	ctx := testContext(t, 2, 1)
	r := FromSlice(ctx, ints(50), 5)
	got, err := Take(r, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ints(12)) {
		t.Fatalf("Take = %v", got)
	}
	if got, err := Take(r, 0); err != nil || len(got) != 0 {
		t.Fatalf("Take(0) = %v, %v", got, err)
	}
	big, err := Take(r, 500)
	if err != nil || len(big) != 50 {
		t.Fatalf("Take beyond size = %d elems, %v", len(big), err)
	}
	f, err := First(r)
	if err != nil || f != 0 {
		t.Fatalf("First = %v, %v", f, err)
	}
	empty := FromSlice(ctx, []int64{}, 2)
	if _, err := First(empty); err == nil {
		t.Fatal("First of empty RDD should fail")
	}
}
