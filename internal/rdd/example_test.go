package rdd_test

import (
	"fmt"
	"log"

	"sparker/internal/rdd"
)

// A complete dataflow: transform, shuffle, collect.
func ExampleReduceByKey() {
	ctx, err := rdd.NewContext(rdd.Config{Name: "ex-shuffle", NumExecutors: 2, CoresPerExecutor: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer ctx.Close()

	nums := rdd.FromSlice(ctx, []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 4)
	byParity := rdd.KeyBy(nums, func(v int64) string {
		if v%2 == 0 {
			return "even"
		}
		return "odd"
	})
	sums, err := rdd.ReduceByKey(byParity, func(a, b int64) int64 { return a + b }, 2)
	if err != nil {
		log.Fatal(err)
	}
	pairs, err := rdd.Collect(sums)
	if err != nil {
		log.Fatal(err)
	}
	total := map[string]int64{}
	for _, p := range pairs {
		total[p.Key] = p.Value
	}
	fmt.Println("even:", total["even"], "odd:", total["odd"])
	// Output: even: 30 odd: 25
}

// Spark's treeAggregate on this engine.
func ExampleTreeAggregate() {
	ctx, err := rdd.NewContext(rdd.Config{Name: "ex-tree", NumExecutors: 2, CoresPerExecutor: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer ctx.Close()

	r := rdd.FromSlice(ctx, []int64{1, 2, 3, 4, 5}, 3)
	sum, err := rdd.TreeAggregate(r,
		func() int64 { return 0 },
		func(acc int64, v int64) int64 { return acc + v },
		func(a, b int64) int64 { return a + b },
		rdd.AggregateOptions{Depth: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sum)
	// Output: 15
}
