package rdd

import (
	"fmt"
	"math/rand"
)

// Sample returns an RDD holding each element with probability fraction,
// deterministically per (seed, partition) so retries and re-evaluations
// observe the same subset — the contract MLlib's mini-batch SGD relies
// on.
func Sample[T any](r *RDD[T], fraction float64, seed int64) *RDD[T] {
	if fraction >= 1 {
		return r
	}
	return newRDD(r.ctx, r.parts, func(ec *ExecContext, part int) ([]T, error) {
		in, err := r.Materialize(ec, part)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed ^ int64(part+1)*0x5DEECE66D))
		out := make([]T, 0, int(float64(len(in))*fraction)+1)
		for _, v := range in {
			if rng.Float64() < fraction {
				out = append(out, v)
			}
		}
		return out, nil
	})
}

// MapPartitionsWithContext is MapPartitions with access to the
// executor context — the hook for reading Broadcast values or
// executor-local state inside a transformation.
func MapPartitionsWithContext[T, U any](r *RDD[T], f func(ec *ExecContext, part int, in []T) ([]U, error)) *RDD[U] {
	return newRDD(r.ctx, r.parts, func(ec *ExecContext, part int) ([]U, error) {
		in, err := r.Materialize(ec, part)
		if err != nil {
			return nil, err
		}
		return f(ec, part, in)
	})
}

// Take returns the first n elements in partition order. It collects
// partition by partition, stopping as soon as n elements are gathered.
func Take[T any](r *RDD[T], n int) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	var out []T
	for part := 0; part < r.parts && len(out) < n; part++ {
		p := part
		payloads, err := r.ctx.RunJob(JobSpec{
			Tasks:     1,
			Placement: []int{r.PlacementOf(p)},
			Fn: func(ec *ExecContext, task, attempt int) ([]byte, error) {
				data, err := r.Materialize(ec, p)
				if err != nil {
					return nil, err
				}
				if len(data) > n {
					data = data[:n]
				}
				return encodeSlice(data)
			},
		})
		if err != nil {
			return nil, err
		}
		vs, err := decodeSlice[T](payloads[0])
		if err != nil {
			return nil, err
		}
		out = append(out, vs...)
	}
	if len(out) > n {
		out = out[:n]
	}
	return out, nil
}

// First returns the first element.
func First[T any](r *RDD[T]) (T, error) {
	var zero T
	out, err := Take(r, 1)
	if err != nil {
		return zero, err
	}
	if len(out) == 0 {
		return zero, fmt.Errorf("rdd: First of empty RDD")
	}
	return out[0], nil
}

// Distinct returns the unique elements, deduplicated across partitions
// through a shuffle. T must be comparable and serde-encodable.
func Distinct[T comparable](r *RDD[T], numPartitions int) (*RDD[T], error) {
	keyed := KeyBy(r, func(v T) T { return v })
	reduced, err := ReduceByKey(Map(keyed, func(p Pair[T, T]) Pair[T, int64] {
		return Pair[T, int64]{Key: p.Key, Value: 1}
	}), func(a, b int64) int64 { return a + b }, numPartitions)
	if err != nil {
		return nil, err
	}
	return Map(reduced, func(p Pair[T, int64]) T { return p.Key }), nil
}
