package rdd

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestReduceByKeyWordCount(t *testing.T) {
	ctx := testContext(t, 3, 2)
	text := []string{
		"the quick brown fox", "jumps over the lazy dog",
		"the dog barks", "quick quick fox",
	}
	lines := FromSlice(ctx, text, 4)
	words := FlatMap(lines, func(l string) []string { return strings.Fields(l) })
	pairs := KeyBy(words, func(w string) string { return w })
	ones := Map(pairs, func(p Pair[string, string]) Pair[string, int64] {
		return Pair[string, int64]{Key: p.Key, Value: 1}
	})
	counted, err := ReduceByKey(ones, func(a, b int64) int64 { return a + b }, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(counted)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int64{}
	for _, p := range got {
		if _, dup := counts[p.Key]; dup {
			t.Fatalf("key %q appears in multiple partitions", p.Key)
		}
		counts[p.Key] = p.Value
	}
	want := map[string]int64{
		"the": 3, "quick": 3, "brown": 1, "fox": 2, "jumps": 1,
		"over": 1, "lazy": 1, "dog": 2, "barks": 1,
	}
	if !reflect.DeepEqual(counts, want) {
		t.Fatalf("counts = %v, want %v", counts, want)
	}
}

func TestReduceByKeyDeterministicOrder(t *testing.T) {
	ctx := testContext(t, 2, 2)
	r := Generate(ctx, 4, func(part int) ([]Pair[int64, int64], error) {
		out := make([]Pair[int64, int64], 30)
		for i := range out {
			out[i] = Pair[int64, int64]{Key: int64((part*31 + i) % 10), Value: 1}
		}
		return out, nil
	})
	red, err := ReduceByKey(r, func(a, b int64) int64 { return a + b }, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Collect(red)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Collect(red)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("shuffle output order nondeterministic")
	}
}

func TestCountByKey(t *testing.T) {
	ctx := testContext(t, 2, 2)
	r := FromSlice(ctx, ints(100), 5)
	keyed := KeyBy(r, func(v int64) int64 { return v % 7 })
	counts, err := CountByKey(keyed)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != 100 || len(counts) != 7 {
		t.Fatalf("counts = %v", counts)
	}
	if counts[0] != 15 { // 0,7,...,98
		t.Fatalf("counts[0] = %d, want 15", counts[0])
	}
}

func TestReduceByKeyValidation(t *testing.T) {
	ctx := testContext(t, 2, 1)
	r := FromSlice(ctx, []Pair[int64, int64]{{Key: 1, Value: 1}}, 1)
	if _, err := ReduceByKey(r, func(a, b int64) int64 { return a + b }, 0); err == nil {
		t.Fatal("zero partitions should fail")
	}
}

func TestReduceByKeyUnencodableKey(t *testing.T) {
	ctx := testContext(t, 2, 1)
	type opaque struct{ X int }
	r := Generate(ctx, 1, func(part int) ([]Pair[opaque, int64], error) {
		return []Pair[opaque, int64]{{Key: opaque{1}, Value: 1}}, nil
	})
	if _, err := ReduceByKey(r, func(a, b int64) int64 { return a + b }, 2); err == nil {
		t.Fatal("unencodable key should fail the shuffle")
	}
}

func TestQuickReduceByKeyEqualsSerial(t *testing.T) {
	ctx := testContext(t, 3, 2)
	f := func(vals []int64, partsRaw, redRaw uint8) bool {
		parts := int(partsRaw%4) + 1
		redParts := int(redRaw%5) + 1
		pairs := make([]Pair[int64, int64], len(vals))
		want := map[int64]int64{}
		for i, v := range vals {
			k := v % 5
			pairs[i] = Pair[int64, int64]{Key: k, Value: v}
			want[k] += v
		}
		r := FromSlice(ctx, pairs, parts)
		red, err := ReduceByKey(r, func(a, b int64) int64 { return a + b }, redParts)
		if err != nil {
			return false
		}
		got, err := Collect(red)
		if err != nil {
			return false
		}
		gm := map[int64]int64{}
		for _, p := range got {
			gm[p.Key] = p.Value
		}
		return reflect.DeepEqual(gm, want) || (len(want) == 0 && len(gm) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestKeyByComposesWithAggregation(t *testing.T) {
	// Shuffle output feeds treeAggregate — stages compose.
	ctx := testContext(t, 2, 2)
	r := FromSlice(ctx, ints(60), 4)
	keyed := KeyBy(r, func(v int64) int64 { return v % 6 })
	ones := Map(keyed, func(p Pair[int64, int64]) Pair[int64, int64] {
		return Pair[int64, int64]{Key: p.Key, Value: p.Value}
	})
	red, err := ReduceByKey(ones, func(a, b int64) int64 { return a + b }, 2)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := TreeAggregate(red,
		func() int64 { return 0 },
		func(a int64, p Pair[int64, int64]) int64 { return a + p.Value },
		func(a, b int64) int64 { return a + b },
		AggregateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 1770 {
		t.Fatalf("sum over shuffled RDD = %d, want 1770", sum)
	}
}

func TestPairString(t *testing.T) {
	p := Pair[string, int64]{Key: "k", Value: 2}
	if fmt.Sprintf("%s %d", p.Key, p.Value) != "k 2" {
		t.Fatal("pair fields wrong")
	}
}

func TestDistinct(t *testing.T) {
	ctx := testContext(t, 2, 2)
	r := Generate(ctx, 4, func(part int) ([]int64, error) {
		out := make([]int64, 25)
		for i := range out {
			out[i] = int64((part*25 + i) % 7)
		}
		return out, nil
	})
	d, err := Distinct(r, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Fatalf("Distinct produced %d values, want 7: %v", len(got), got)
	}
	seen := map[int64]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
}
