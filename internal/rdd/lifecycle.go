package rdd

import (
	"fmt"
	"time"

	"sparker/internal/sched"
)

// Long-lived driver lifecycle. A Context that serves many jobs (the
// sparker-serve front door) must not tear the transport down under a
// tenant's in-flight stage: Close alone severs the task connections
// first, which strands whatever was running into ErrSchedulerClosed.
// Stop is the graceful path — drain, then close.

// jobStarted/jobFinished bracket one submitted job's engine-side
// lifetime (from accepted by the scheduler to handle resolvable).
func (ctx *Context) jobStarted()  { ctx.inflightJobs.Add(1) }
func (ctx *Context) jobFinished() { ctx.inflightJobs.Add(-1) }

// ActiveJobs reports the number of submitted jobs that have not yet
// completed (successfully or not).
func (ctx *Context) ActiveJobs() int64 { return ctx.inflightJobs.Load() }

// Drain blocks until every in-flight job has completed, or the timeout
// passes. New submissions during a drain are not rejected — callers
// that want a barrier stop submitting first (the server's admission
// gate does exactly that).
func (ctx *Context) Drain(timeout time.Duration) error {
	if ctx.inflightJobs.Load() == 0 {
		return nil
	}
	deadline := time.Now().Add(timeout)
	for {
		if ctx.inflightJobs.Load() == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			n := ctx.inflightJobs.Load()
			if n == 0 {
				return nil
			}
			return fmt.Errorf("rdd: drain deadline: %d jobs still in flight after %v", n, timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// Stop shuts the cluster down gracefully: drain in-flight JobHandles
// (bounded by drainTimeout), then Close. Jobs still running past the
// deadline fail with ErrSchedulerClosed when Close tears the transport
// down — the same outcome a bare Close gives every job, but only for
// the stragglers. Returns the drain error if any, else the close error.
func (ctx *Context) Stop(drainTimeout time.Duration) error {
	derr := ctx.Drain(drainTimeout)
	cerr := ctx.Close()
	if derr != nil {
		return derr
	}
	return cerr
}

// ConfigureTenant sets the fair-share weight and core-slot cap of one
// scheduler tenant (see sched.TenantConfig). Safe from any goroutine.
func (ctx *Context) ConfigureTenant(name string, cfg sched.TenantConfig) error {
	return ctx.sched.ConfigureTenant(name, cfg)
}

// TenantStats snapshots per-tenant scheduler accounting: slots in use,
// queued attempts, cumulative slot-time. Nil after Close.
func (ctx *Context) TenantStats() map[string]sched.TenantStats {
	return ctx.sched.TenantStats()
}
