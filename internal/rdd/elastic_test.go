package rdd

// Elastic-membership tests: executors joining, leaving, and dying
// against a live Context. Everything here must stay correct under the
// race detector — membership installs race with job submission by
// design.

import (
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"
)

// awaitLive waits until the installed epoch's live count reaches n.
func awaitLive(t *testing.T, ctx *Context, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for ctx.NumLiveExecutors() != n {
		if time.Now().After(deadline) {
			t.Fatalf("live executors = %d, want %d (epoch %d)",
				ctx.NumLiveExecutors(), n, ctx.MembershipEpoch())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func collectAndCheck(t *testing.T, r *RDD[int64], want []int64) {
	t.Helper()
	got, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Collect after churn: got %d elems, want %d", len(got), len(want))
	}
}

// TestElasticKillEvictReplace is the kill-and-replace cycle: a killed
// executor is evicted by the failure detector, jobs keep running on the
// survivors, and a replacement adopts the dead slot.
func TestElasticKillEvictReplace(t *testing.T) {
	ctx := testContext(t, 3, 2)
	data := ints(120)
	r := FromSlice(ctx, data, 9)
	collectAndCheck(t, r, data)

	e0 := ctx.MembershipEpoch()
	if err := ctx.KillExecutor(2); err != nil {
		t.Fatal(err)
	}
	if !ctx.AwaitReconfigured(e0, 10*time.Second) {
		t.Fatal("kill was not detected within 10s")
	}
	awaitLive(t, ctx, 2)
	if ctx.Membership().IsLive(2) {
		t.Fatal("executor 2 still live after kill")
	}
	// Slot table keeps its width; the live set shrinks.
	if ctx.NumExecutors() != 3 {
		t.Fatalf("NumExecutors = %d, want 3 slots", ctx.NumExecutors())
	}
	collectAndCheck(t, r, data)

	id, err := ctx.AddExecutor("replacement-host")
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Fatalf("replacement adopted slot %d, want dead slot 2", id)
	}
	awaitLive(t, ctx, 3)
	collectAndCheck(t, r, data)

	// The replacement must actually receive work: one task per live
	// executor, scattered by executor id.
	res, err := ctx.RunOnAllExecutors(func(ec *ExecContext, task, attempt int) ([]byte, error) {
		return []byte{byte(ec.ID)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 || res[2] == nil || res[2][0] != 2 {
		t.Fatalf("replacement executor ran nothing: %v", res)
	}
}

// TestElasticLeaveThenRejoinSameAddress: a graceful leave frees the
// slot's listeners (ctrl, task, block store), so a rejoin on the same
// slot — same addresses — must come up cleanly.
func TestElasticLeaveThenRejoinSameAddress(t *testing.T) {
	ctx := testContext(t, 3, 2)
	e0 := ctx.MembershipEpoch()
	if err := ctx.RemoveExecutor(1); err != nil {
		t.Fatal(err)
	}
	if !ctx.AwaitReconfigured(e0, 10*time.Second) {
		t.Fatal("leave did not install a new epoch")
	}
	awaitLive(t, ctx, 2)

	var sawLeave bool
	for _, ev := range ctx.MembershipHistory() {
		if ev.Kind == "leave" && ev.Exec == 1 {
			sawLeave = true
		}
	}
	if !sawLeave {
		t.Fatal("no leave event recorded in membership history")
	}

	id, err := ctx.AddExecutor("node-001")
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Fatalf("rejoin adopted slot %d, want 1", id)
	}
	awaitLive(t, ctx, 3)

	data := ints(60)
	collectAndCheck(t, FromSlice(ctx, data, 6), data)
}

// TestElasticOwnerMathCyclesOverSurvivors: the single placement-
// resolution path (Membership.OwnerOf) must map partitions onto live
// executors only, and equal p % N at full membership.
func TestElasticOwnerMathCyclesOverSurvivors(t *testing.T) {
	ctx := testContext(t, 4, 1)
	for p := 0; p < 8; p++ {
		if got := ctx.OwnerOf(p); got != p%4 {
			t.Fatalf("full membership: OwnerOf(%d) = %d, want %d", p, got, p%4)
		}
	}
	e0 := ctx.MembershipEpoch()
	if err := ctx.KillExecutor(1); err != nil {
		t.Fatal(err)
	}
	if !ctx.AwaitReconfigured(e0, 10*time.Second) {
		t.Fatal("kill not detected")
	}
	awaitLive(t, ctx, 3)
	live := append([]int(nil), ctx.LiveExecutors()...)
	sort.Ints(live)
	if !reflect.DeepEqual(live, []int{0, 2, 3}) {
		t.Fatalf("live = %v, want [0 2 3]", live)
	}
	r := FromSlice(ctx, ints(30), 6)
	for p := 0; p < 6; p++ {
		owner := ctx.OwnerOf(p)
		if owner == 1 {
			t.Fatalf("OwnerOf(%d) routed to dead executor", p)
		}
		if got := r.PlacementOf(p); got == 1 {
			t.Fatalf("PlacementOf(%d) routed to dead executor", p)
		}
		if owner != live[p%3] {
			t.Fatalf("OwnerOf(%d) = %d, want cycle over survivors %d", p, owner, live[p%3])
		}
	}
}

// TestElasticCheckpointSurvivesOwnerDeath: a checkpointed partition
// whose owner dies must still be readable — first from the buddy
// replica (promoted by the repair hook), and in the worst case from
// lineage.
func TestElasticCheckpointSurvivesOwnerDeath(t *testing.T) {
	ctx := testContext(t, 3, 2)
	data := ints(90)
	r := FromSlice(ctx, data, 6)
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	collectAndCheck(t, r, data)

	// Partition 0's primary lives on executor 0. Kill it.
	e0 := ctx.MembershipEpoch()
	if err := ctx.KillExecutor(0); err != nil {
		t.Fatal(err)
	}
	if !ctx.AwaitReconfigured(e0, 10*time.Second) {
		t.Fatal("kill not detected")
	}
	awaitLive(t, ctx, 2)
	// Readable immediately (replica or lineage), regardless of whether
	// the repair pass has finished.
	collectAndCheck(t, r, data)

	// After a replacement joins and repair settles, still exact.
	if _, err := ctx.AddExecutor(""); err != nil {
		t.Fatal(err)
	}
	awaitLive(t, ctx, 3)
	collectAndCheck(t, r, data)
}

// TestElasticGangStageAcrossEpochForming: a gang stage admitted under
// epoch E must complete while epoch E+1 is forming (a join racing the
// stage), and the new epoch must be usable right after.
func TestElasticGangStageAcrossEpochForming(t *testing.T) {
	ctx := testContext(t, 3, 2)
	gangDone := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := ctx.RunJob(JobSpec{
			Tasks:       3,
			Gang:        true,
			MaxAttempts: 1,
			Fn: func(ec *ExecContext, task, attempt int) ([]byte, error) {
				time.Sleep(100 * time.Millisecond) // stretch the stage across the join
				return []byte{1}, nil
			},
		})
		gangDone <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the gang launch under epoch E
	id, err := ctx.AddExecutor("late-joiner")
	if err != nil {
		t.Fatal(err)
	}
	if err := <-gangDone; err != nil {
		t.Fatalf("gang stage admitted under old epoch failed: %v", err)
	}
	wg.Wait()
	awaitLive(t, ctx, 4)
	// The formed epoch is immediately schedulable, joiner included.
	res, err := ctx.RunOnAllExecutors(func(ec *ExecContext, task, attempt int) ([]byte, error) {
		return []byte{byte(ec.ID)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[id] == nil {
		t.Fatalf("joined executor %d ran no task", id)
	}
}

// TestElasticMembershipViewAndGauges: the introspection surface tracks
// churn — epoch, live set, history, and the live-executor gauge.
func TestElasticMembershipViewAndGauges(t *testing.T) {
	ctx := testContext(t, 2, 1)
	v := ctx.membershipView()
	if v.Epoch != 1 || v.NumLive != 2 || v.NumSlots != 2 {
		t.Fatalf("boot view: %+v", v)
	}
	e0 := ctx.MembershipEpoch()
	id, err := ctx.AddExecutor("grown")
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Fatalf("growth join got slot %d, want 2", id)
	}
	if !ctx.AwaitReconfigured(e0, 10*time.Second) {
		t.Fatal("join did not install")
	}
	awaitLive(t, ctx, 3)
	v = ctx.membershipView()
	if v.NumLive != 3 || v.NumSlots != 3 || v.Epoch <= e0 {
		t.Fatalf("post-join view: %+v", v)
	}
	if len(v.History) == 0 || v.History[len(v.History)-1].Kind != "join" {
		t.Fatalf("history missing join: %+v", v.History)
	}
	// The marker lands after the view installs (postReconfigure runs on
	// the reconfiguration goroutine), so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for ctx.Metrics().Count("executor-join") < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("executor-join marker not recorded")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
