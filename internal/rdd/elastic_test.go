package rdd

// Elastic-membership tests: executors joining, leaving, and dying
// against a live Context. Everything here must stay correct under the
// race detector — membership installs race with job submission by
// design.

import (
	"errors"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"sparker/internal/membership"
	"sparker/internal/sched"
)

// awaitLive waits until the installed epoch's live count reaches n.
func awaitLive(t *testing.T, ctx *Context, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for ctx.NumLiveExecutors() != n {
		if time.Now().After(deadline) {
			t.Fatalf("live executors = %d, want %d (epoch %d)",
				ctx.NumLiveExecutors(), n, ctx.MembershipEpoch())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func collectAndCheck(t *testing.T, r *RDD[int64], want []int64) {
	t.Helper()
	got, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Collect after churn: got %d elems, want %d", len(got), len(want))
	}
}

// TestElasticKillEvictReplace is the kill-and-replace cycle: a killed
// executor is evicted by the failure detector, jobs keep running on the
// survivors, and a replacement adopts the dead slot.
func TestElasticKillEvictReplace(t *testing.T) {
	ctx := testContext(t, 3, 2)
	data := ints(120)
	r := FromSlice(ctx, data, 9)
	collectAndCheck(t, r, data)

	e0 := ctx.MembershipEpoch()
	if err := ctx.KillExecutor(2); err != nil {
		t.Fatal(err)
	}
	if !ctx.AwaitReconfigured(e0, 10*time.Second) {
		t.Fatal("kill was not detected within 10s")
	}
	awaitLive(t, ctx, 2)
	if ctx.Membership().IsLive(2) {
		t.Fatal("executor 2 still live after kill")
	}
	// Slot table keeps its width; the live set shrinks.
	if ctx.NumExecutors() != 3 {
		t.Fatalf("NumExecutors = %d, want 3 slots", ctx.NumExecutors())
	}
	collectAndCheck(t, r, data)

	id, err := ctx.AddExecutor("replacement-host")
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Fatalf("replacement adopted slot %d, want dead slot 2", id)
	}
	awaitLive(t, ctx, 3)
	collectAndCheck(t, r, data)

	// The replacement must actually receive work: one task per live
	// executor, scattered by executor id.
	res, err := ctx.RunOnAllExecutors(func(ec *ExecContext, task, attempt int) ([]byte, error) {
		return []byte{byte(ec.ID)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 || res[2] == nil || res[2][0] != 2 {
		t.Fatalf("replacement executor ran nothing: %v", res)
	}
}

// TestElasticLeaveThenRejoinSameAddress: a graceful leave frees the
// slot's listeners (ctrl, task, block store), so a rejoin on the same
// slot — same addresses — must come up cleanly.
func TestElasticLeaveThenRejoinSameAddress(t *testing.T) {
	ctx := testContext(t, 3, 2)
	e0 := ctx.MembershipEpoch()
	if err := ctx.RemoveExecutor(1); err != nil {
		t.Fatal(err)
	}
	if !ctx.AwaitReconfigured(e0, 10*time.Second) {
		t.Fatal("leave did not install a new epoch")
	}
	awaitLive(t, ctx, 2)

	var sawLeave bool
	for _, ev := range ctx.MembershipHistory() {
		if ev.Kind == "leave" && ev.Exec == 1 {
			sawLeave = true
		}
	}
	if !sawLeave {
		t.Fatal("no leave event recorded in membership history")
	}

	id, err := ctx.AddExecutor("node-001")
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Fatalf("rejoin adopted slot %d, want 1", id)
	}
	awaitLive(t, ctx, 3)

	data := ints(60)
	collectAndCheck(t, FromSlice(ctx, data, 6), data)
}

// TestElasticOwnerMathCyclesOverSurvivors: the single placement-
// resolution path (Membership.OwnerOf) must map partitions onto live
// executors only, and equal p % N at full membership.
func TestElasticOwnerMathCyclesOverSurvivors(t *testing.T) {
	ctx := testContext(t, 4, 1)
	for p := 0; p < 8; p++ {
		if got := ctx.OwnerOf(p); got != p%4 {
			t.Fatalf("full membership: OwnerOf(%d) = %d, want %d", p, got, p%4)
		}
	}
	e0 := ctx.MembershipEpoch()
	if err := ctx.KillExecutor(1); err != nil {
		t.Fatal(err)
	}
	if !ctx.AwaitReconfigured(e0, 10*time.Second) {
		t.Fatal("kill not detected")
	}
	awaitLive(t, ctx, 3)
	live := append([]int(nil), ctx.LiveExecutors()...)
	sort.Ints(live)
	if !reflect.DeepEqual(live, []int{0, 2, 3}) {
		t.Fatalf("live = %v, want [0 2 3]", live)
	}
	r := FromSlice(ctx, ints(30), 6)
	for p := 0; p < 6; p++ {
		owner := ctx.OwnerOf(p)
		if owner == 1 {
			t.Fatalf("OwnerOf(%d) routed to dead executor", p)
		}
		if got := r.PlacementOf(p); got == 1 {
			t.Fatalf("PlacementOf(%d) routed to dead executor", p)
		}
		if owner != live[p%3] {
			t.Fatalf("OwnerOf(%d) = %d, want cycle over survivors %d", p, owner, live[p%3])
		}
	}
}

// TestElasticCheckpointSurvivesOwnerDeath: a checkpointed partition
// whose owner dies must still be readable — first from the buddy
// replica (promoted by the repair hook), and in the worst case from
// lineage.
func TestElasticCheckpointSurvivesOwnerDeath(t *testing.T) {
	ctx := testContext(t, 3, 2)
	data := ints(90)
	r := FromSlice(ctx, data, 6)
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	collectAndCheck(t, r, data)

	// Partition 0's primary lives on executor 0. Kill it.
	e0 := ctx.MembershipEpoch()
	if err := ctx.KillExecutor(0); err != nil {
		t.Fatal(err)
	}
	if !ctx.AwaitReconfigured(e0, 10*time.Second) {
		t.Fatal("kill not detected")
	}
	awaitLive(t, ctx, 2)
	// Readable immediately (replica or lineage), regardless of whether
	// the repair pass has finished.
	collectAndCheck(t, r, data)

	// After a replacement joins and repair settles, still exact.
	if _, err := ctx.AddExecutor(""); err != nil {
		t.Fatal(err)
	}
	awaitLive(t, ctx, 3)
	collectAndCheck(t, r, data)
}

// TestElasticGangStageAcrossEpochForming: a gang stage admitted under
// epoch E must complete while epoch E+1 is forming (a join racing the
// stage), and the new epoch must be usable right after.
func TestElasticGangStageAcrossEpochForming(t *testing.T) {
	ctx := testContext(t, 3, 2)
	gangDone := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := ctx.RunJob(JobSpec{
			Tasks:       3,
			Gang:        true,
			MaxAttempts: 1,
			Fn: func(ec *ExecContext, task, attempt int) ([]byte, error) {
				time.Sleep(100 * time.Millisecond) // stretch the stage across the join
				return []byte{1}, nil
			},
		})
		gangDone <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the gang launch under epoch E
	id, err := ctx.AddExecutor("late-joiner")
	if err != nil {
		t.Fatal(err)
	}
	if err := <-gangDone; err != nil {
		t.Fatalf("gang stage admitted under old epoch failed: %v", err)
	}
	wg.Wait()
	awaitLive(t, ctx, 4)
	// The formed epoch is immediately schedulable, joiner included.
	res, err := ctx.RunOnAllExecutors(func(ec *ExecContext, task, attempt int) ([]byte, error) {
		return []byte{byte(ec.ID)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[id] == nil {
		t.Fatalf("joined executor %d ran no task", id)
	}
}

// TestElasticCoalescedEvictRejoin forces the failure-detector eviction
// of a slot AND the replacement join of the same slot to land in one
// installed epoch: the reconfiguration loop coalesces registry epochs
// (cur -> newest view), so when it is busy — here, parked in an
// OnReconfigure hook — the installed diff sees the slot live on both
// sides. The slot must still be treated as remove-then-add (the
// incarnation changed): in-flight attempts on the dead incarnation
// fail over as ErrExecutorLost instead of hanging forever, the dead
// incarnation's cached task conns are severed, and the replacement
// receives work over fresh ones.
func TestElasticCoalescedEvictRejoin(t *testing.T) {
	ctx := testContext(t, 3, 2)

	// Park the reconfiguration loop in a hook until released. install()
	// publishes the view and wakes epoch waiters BEFORE hooks run, so
	// AddExecutor still returns while the loop is parked.
	release := make(chan struct{})
	ctx.OnReconfigure(func(*membership.View) { <-release })
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()

	// A benign epoch parks the loop: grow the table by one.
	if _, err := ctx.AddExecutor("extra"); err != nil {
		t.Fatal(err)
	}

	// Pin a long-running task to executor 1 and wait for it to be in
	// flight on that incarnation.
	started := make(chan struct{}, 1)
	taskGate := make(chan struct{})
	defer close(taskGate)
	h, err := ctx.SubmitJob(JobSpec{
		Tasks:       1,
		Placement:   []int{1},
		MaxAttempts: 1,
		Fn: func(ec *ExecContext, task, attempt int) ([]byte, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			<-taskGate
			return nil, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("pinned task never started")
	}

	// With the loop parked: kill executor 1 (detector evicts, registry
	// epoch bumps, nothing installs) and join a replacement (adopts the
	// dead slot, registry bumps again). Both changes are now pending in
	// one coalesced install.
	epochBefore := ctx.MembershipEpoch()
	waitEvent := func(kind string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			for _, ev := range ctx.MembershipHistory() {
				if ev.Kind == kind && ev.Exec == 1 && ev.Epoch > epochBefore {
					return
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("no %s event for slot 1 while loop parked", kind)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	if err := ctx.KillExecutor(1); err != nil {
		t.Fatal(err)
	}
	// The eviction must be committed before the replacement joins, or
	// the join would grow the table instead of adopting slot 1.
	waitEvent("evict")
	addErr := make(chan error, 1)
	go func() {
		id, err := ctx.AddExecutor("replacement-host")
		if err == nil && id != 1 {
			err = errors.New("replacement did not adopt slot 1")
		}
		addErr <- err
	}()
	waitEvent("join")
	if ctx.MembershipEpoch() != epochBefore {
		t.Fatalf("epoch installed while the loop was parked: %d -> %d",
			epochBefore, ctx.MembershipEpoch())
	}
	close(release)

	// The coalesced epoch installs: slot 1 is live before AND after, but
	// the incarnation changed. The pinned attempt on the dead
	// incarnation must fail over promptly — the pre-fix behavior was a
	// silent hang (no RemoveExecutor, result conn severed, job stuck).
	waitDone := make(chan error, 1)
	go func() { _, err := h.Wait(); waitDone <- err }()
	select {
	case err := <-waitDone:
		if err == nil {
			t.Fatal("pinned job on the killed incarnation succeeded")
		}
		if !errors.Is(err, sched.ErrExecutorLost) {
			t.Fatalf("pinned job failed with %v, want ErrExecutorLost", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("pinned job on the killed incarnation hung: dead incarnation was not torn down")
	}
	if err := <-addErr; err != nil {
		t.Fatal(err)
	}
	awaitLive(t, ctx, 4)
	// The installed view publishes before postReconfigure's scheduler
	// diff; wait for the remove-then-add to land so placement on slot 1
	// validates.
	deadline := time.Now().Add(10 * time.Second)
	for len(ctx.sched.LiveExecutors()) != 4 {
		if time.Now().After(deadline) {
			t.Fatalf("scheduler live set = %v, want 4 slots (slot 1 re-added)", ctx.sched.LiveExecutors())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The replacement must be schedulable over fresh task conns (the
	// dead incarnation's cached conns were severed and re-dialed).
	res, err := ctx.RunOnAllExecutors(func(ec *ExecContext, task, attempt int) ([]byte, error) {
		return []byte{byte(ec.ID)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) < 2 || res[1] == nil || res[1][0] != 1 {
		t.Fatalf("replacement on slot 1 ran nothing: %v", res)
	}
}

// TestElasticMembershipViewAndGauges: the introspection surface tracks
// churn — epoch, live set, history, and the live-executor gauge.
func TestElasticMembershipViewAndGauges(t *testing.T) {
	ctx := testContext(t, 2, 1)
	v := ctx.membershipView()
	if v.Epoch != 1 || v.NumLive != 2 || v.NumSlots != 2 {
		t.Fatalf("boot view: %+v", v)
	}
	e0 := ctx.MembershipEpoch()
	id, err := ctx.AddExecutor("grown")
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Fatalf("growth join got slot %d, want 2", id)
	}
	if !ctx.AwaitReconfigured(e0, 10*time.Second) {
		t.Fatal("join did not install")
	}
	awaitLive(t, ctx, 3)
	v = ctx.membershipView()
	if v.NumLive != 3 || v.NumSlots != 3 || v.Epoch <= e0 {
		t.Fatalf("post-join view: %+v", v)
	}
	if len(v.History) == 0 || v.History[len(v.History)-1].Kind != "join" {
		t.Fatalf("history missing join: %+v", v.History)
	}
	// The marker lands after the view installs (postReconfigure runs on
	// the reconfiguration goroutine), so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for ctx.Metrics().Count("executor-join") < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("executor-join marker not recorded")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
