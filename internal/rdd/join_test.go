package rdd

import (
	"reflect"
	"sort"
	"testing"
)

func TestJoinInner(t *testing.T) {
	ctx := testContext(t, 3, 2)
	users := FromSlice(ctx, []Pair[int64, string]{
		{Key: 1, Value: "ada"},
		{Key: 2, Value: "grace"},
		{Key: 3, Value: "edsger"},
	}, 2)
	orders := FromSlice(ctx, []Pair[int64, int64]{
		{Key: 1, Value: 100},
		{Key: 1, Value: 150},
		{Key: 3, Value: 75},
		{Key: 9, Value: 1}, // no matching user
	}, 3)
	joined, err := Join(users, orders, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(joined)
	if err != nil {
		t.Fatal(err)
	}
	type row struct {
		user  string
		total int64
	}
	var rows []row
	for _, p := range got {
		rows = append(rows, row{p.Value.Left, p.Value.Right})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].user != rows[j].user {
			return rows[i].user < rows[j].user
		}
		return rows[i].total < rows[j].total
	})
	want := []row{{"ada", 100}, {"ada", 150}, {"edsger", 75}}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("join rows = %v, want %v", rows, want)
	}
}

func TestJoinEmptySides(t *testing.T) {
	ctx := testContext(t, 2, 1)
	left := FromSlice(ctx, []Pair[int64, int64]{{Key: 1, Value: 1}}, 1)
	right := FromSlice(ctx, []Pair[int64, int64]{}, 1)
	joined, err := Join(left, right, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(joined)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("join with empty side produced %v", got)
	}
}

func TestJoinValidation(t *testing.T) {
	ctx := testContext(t, 2, 1)
	l := FromSlice(ctx, []Pair[int64, int64]{{Key: 1, Value: 1}}, 1)
	r := FromSlice(ctx, []Pair[int64, int64]{{Key: 1, Value: 1}}, 1)
	if _, err := Join(l, r, 0); err == nil {
		t.Fatal("zero partitions should fail")
	}
	other := testContext(t, 2, 1)
	r2 := FromSlice(other, []Pair[int64, int64]{{Key: 1, Value: 1}}, 1)
	if _, err := Join(l, r2, 2); err == nil {
		t.Fatal("cross-context join should fail")
	}
}

func TestJoinManyToMany(t *testing.T) {
	ctx := testContext(t, 2, 2)
	l := FromSlice(ctx, []Pair[string, int64]{
		{Key: "a", Value: 1}, {Key: "a", Value: 2},
	}, 2)
	r := FromSlice(ctx, []Pair[string, int64]{
		{Key: "a", Value: 10}, {Key: "a", Value: 20},
	}, 2)
	joined, err := Join(l, r, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(joined)
	if err != nil {
		t.Fatal(err)
	}
	// 2 × 2 cross product on key "a".
	if len(got) != 4 {
		t.Fatalf("many-to-many join produced %d rows, want 4", len(got))
	}
	var sum int64
	for _, p := range got {
		sum += p.Value.Left * p.Value.Right
	}
	// (1+2)×(10+20) = 90.
	if sum != 90 {
		t.Fatalf("cross-product checksum = %d, want 90", sum)
	}
}
