package rdd

// Live cluster introspection: Context.DebugHandler serves the
// /debug/sparker/* plane (scheduler slots and gang queues, per-tenant
// WFQ state, ring topology with current epochs, block-manager
// residency, in-flight collectives, flight-recorder status) plus the
// standard /debug/pprof/* profiling endpoints. sparker-serve and the
// sparker-train -metrics server both mount it. Everything here reads
// live state through the same synchronized paths the engine itself
// uses (scheduler snapshots run on the event loop), so scraping the
// debug plane is safe while jobs run.

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"time"

	"sparker/internal/blockmanager"
	"sparker/internal/comm"
	"sparker/internal/membership"
	"sparker/internal/metrics"
	"sparker/internal/obsv"
)

// CollectiveInfo describes one in-flight collective operation. Tracked
// from core's ring stages so /debug/sparker/collectives can answer
// "what is the ring doing right now".
type CollectiveInfo struct {
	OpID    int64  `json:"op"`
	Kind    string `json:"kind"` // e.g. "ring-allreduce", "ring-aggregate"
	Tenant  string `json:"tenant,omitempty"`
	Tasks   int    `json:"tasks"`
	Epoch   uint32 `json:"epoch"`
	StartNS int64  `json:"start_ns"`
	Detail  string `json:"detail,omitempty"`
	AgeNS   int64  `json:"age_ns"` // filled at snapshot time
}

// TrackCollective registers an in-flight collective and returns its
// untrack function. Call sites wrap ring stages:
//
//	done := ctx.TrackCollective(rdd.CollectiveInfo{...})
//	defer done()
func (ctx *Context) TrackCollective(info CollectiveInfo) func() {
	info.StartNS = time.Now().UnixNano()
	key := ctx.trackSeq.Add(1)
	ctx.collectives.Store(key, info)
	return func() { ctx.collectives.Delete(key) }
}

// InflightCollectives returns the currently tracked collectives,
// oldest first.
func (ctx *Context) InflightCollectives() []CollectiveInfo {
	now := time.Now().UnixNano()
	var out []CollectiveInfo
	ctx.collectives.Range(func(_, v any) bool {
		ci := v.(CollectiveInfo)
		ci.AgeNS = now - ci.StartNS
		out = append(out, ci)
		return true
	})
	sortCollectives(out)
	return out
}

func sortCollectives(cs []CollectiveInfo) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].StartNS < cs[j-1].StartNS; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

// collectExecRings fetches every executor's flight-recorder ring for a
// postmortem bundle — over the transport via a one-task-per-executor
// stage when the cluster can still run one, falling back to reading
// the rings in-process when it cannot (they live in the Observer, so
// a dead scheduler doesn't lose them).
func (ctx *Context) collectExecRings() []obsv.ExecDump {
	obs := ctx.conf.Obsv
	n := ctx.NumExecutors()
	payloads, err := ctx.RunOnAllExecutors(func(ec *ExecContext, task, attempt int) ([]byte, error) {
		return json.Marshal(obs.ExecRing(ec.ID).Snapshot())
	})
	out := make([]obsv.ExecDump, n)
	for i := range out {
		out[i] = obsv.ExecDump{Exec: i}
		// Dead slots have a nil payload (RunOnAllExecutors covers the
		// live set); their rings are still readable in-process below.
		if err == nil && i < len(payloads) && payloads[i] != nil {
			var dump obsv.RingDump
			if uerr := json.Unmarshal(payloads[i], &dump); uerr == nil {
				out[i].Source = "transport"
				out[i].Ring = dump
				continue
			}
		}
		// Fallback: same-process read of the executor's ring.
		out[i].Source = "in-process"
		out[i].Ring = obs.ExecRing(i).Snapshot()
		if err != nil {
			out[i].Err = err.Error()
		}
	}
	return out
}

// membershipView is the /debug/sparker/membership payload: the
// installed epoch's slot table and rank geometry plus the registry's
// full event history — enough to reconstruct every reconfiguration the
// cluster went through.
type membershipView struct {
	Epoch      uint64              `json:"epoch"`
	Group      string              `json:"group"`
	NumSlots   int                 `json:"num_slots"`
	NumLive    int                 `json:"num_live"`
	Live       []int               `json:"live"`
	Members    []membership.Member `json:"members"`
	ExecOfRank []int               `json:"exec_of_rank"`
	History    []membership.Event  `json:"history"`
}

func (ctx *Context) membershipView() membershipView {
	cv := ctx.clusterView()
	return membershipView{
		Epoch:      cv.view.Epoch,
		Group:      cv.group,
		NumSlots:   cv.view.NumSlots(),
		NumLive:    cv.view.NumLive(),
		Live:       cv.view.Live(),
		Members:    cv.view.Members,
		ExecOfRank: cv.execOfRank,
		History:    ctx.MembershipHistory(),
	}
}

// --- /debug/sparker/* handlers ----------------------------------------

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

// topologyView is the /debug/sparker/topology payload: the rank <->
// executor assignment with per-endpoint traffic, wiring, and the most
// recent collective epoch each executor's recorder saw.
type topologyView struct {
	Executors []topologyExec `json:"executors"`
}

type topologyExec struct {
	Exec          int        `json:"exec"`
	Host          string     `json:"host"`
	Rank          int        `json:"rank"`
	Next          int        `json:"next_rank"`
	Prev          int        `json:"prev_rank"`
	Stats         comm.Stats `json:"comm"`
	InboundConns  int        `json:"inbound_conns"`
	OutboundConns int        `json:"outbound_conns"`
	LastEpoch     uint32     `json:"last_epoch,omitempty"`
}

func (ctx *Context) topologyView() topologyView {
	var tv topologyView
	for i, e := range ctx.executorSnapshot() {
		if e == nil {
			continue
		}
		ep := e.endpoint()
		if ep == nil {
			// A joiner not yet committed into a ring has no endpoint.
			tv.Executors = append(tv.Executors, topologyExec{Exec: i, Host: e.host, Rank: -1})
			continue
		}
		in, out := ep.OpenConns()
		te := topologyExec{
			Exec:          i,
			Host:          e.host,
			Rank:          e.rankNow(),
			Next:          ep.Next(),
			Prev:          ep.Prev(),
			Stats:         ep.Stats(),
			InboundConns:  in,
			OutboundConns: out,
		}
		if obs := ctx.conf.Obsv; obs != nil {
			te.LastEpoch = obs.ExecRing(i).LastEpoch()
		}
		tv.Executors = append(tv.Executors, te)
	}
	return tv
}

// blocksView is the /debug/sparker/blocks payload: block residency per
// store (driver plus every executor shard).
type blocksView struct {
	Stores []storeView `json:"stores"`
}

type storeView struct {
	Name   string                   `json:"name"`
	Blocks []blockmanager.BlockInfo `json:"blocks"`
	Bytes  int64                    `json:"bytes"`
	Count  int                      `json:"count"`
}

func storeViewOf(name string, s *blockmanager.Store) storeView {
	sv := storeView{Name: name}
	if s == nil {
		return sv
	}
	sv.Blocks = s.List()
	sv.Count = len(sv.Blocks)
	for _, b := range sv.Blocks {
		sv.Bytes += int64(b.Bytes)
	}
	return sv
}

func (ctx *Context) blocksView() blocksView {
	var bv blocksView
	bv.Stores = append(bv.Stores, storeViewOf(ctx.conf.Name+"/driver", ctx.driverStore))
	for i, e := range ctx.executorSnapshot() {
		if e != nil {
			bv.Stores = append(bv.Stores, storeViewOf(ctx.ExecutorStoreName(i), e.store))
		}
	}
	return bv
}

// computeView is the /debug/sparker/compute payload: per-executor
// packed map-phase kernel latency and throughput, plus the merged
// cluster aggregate — the compute-plane sibling of
// /debug/sparker/collectives.
type computeView struct {
	Executors []computeExec `json:"executors"`
	Cluster   computeStats  `json:"cluster"`
}

type computeExec struct {
	Exec int `json:"exec"`
	computeStats
}

type computeStats struct {
	// Passes is the number of fused kernel invocations observed.
	Passes int64 `json:"passes"`
	// MapP50NS/MapP95NS/MapP99NS are map-phase kernel latency quantiles.
	MapP50NS int64 `json:"map_p50_ns"`
	MapP95NS int64 `json:"map_p95_ns"`
	MapP99NS int64 `json:"map_p99_ns"`
	// TotalMapNS is the cumulative kernel time.
	TotalMapNS int64 `json:"total_map_ns"`
	// PointsPerSec is the most recent per-pass throughput (summed
	// across executors in the cluster view).
	PointsPerSec int64 `json:"points_per_sec"`
}

func computeStatsOf(reg *metrics.Registry) computeStats {
	h := reg.Histogram(metrics.HistComputeMapNS)
	return computeStats{
		Passes:       h.Count(),
		MapP50NS:     h.Quantile(0.50),
		MapP95NS:     h.Quantile(0.95),
		MapP99NS:     h.Quantile(0.99),
		TotalMapNS:   h.Sum(),
		PointsPerSec: reg.Gauge(metrics.GaugeComputePointsPerSec).Value(),
	}
}

func (ctx *Context) computeView() computeView {
	var cv computeView
	for i, e := range ctx.executorSnapshot() {
		if e == nil {
			continue
		}
		cv.Executors = append(cv.Executors, computeExec{Exec: i, computeStats: computeStatsOf(e.reg)})
	}
	cv.Cluster = computeStatsOf(ctx.MergedMetrics())
	return cv
}

// DebugHandler returns the live-introspection plane: the
// /debug/sparker/* endpoints plus /debug/pprof/*. Mount it at "/" on
// any mux (paths are absolute). Handlers are safe while jobs run.
func (ctx *Context) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/sparker/sched", func(w http.ResponseWriter, r *http.Request) {
		snap, err := ctx.sched.Snapshot()
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, snap)
	})
	mux.HandleFunc("GET /debug/sparker/tenants", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, ctx.TenantStats())
	})
	mux.HandleFunc("GET /debug/sparker/topology", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, ctx.topologyView())
	})
	mux.HandleFunc("GET /debug/sparker/blocks", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, ctx.blocksView())
	})
	mux.HandleFunc("GET /debug/sparker/membership", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, ctx.membershipView())
	})
	mux.HandleFunc("GET /debug/sparker/collectives", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, struct {
			Inflight []CollectiveInfo `json:"inflight"`
		}{Inflight: ctx.InflightCollectives()})
	})
	mux.HandleFunc("GET /debug/sparker/compute", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, ctx.computeView())
	})
	mux.HandleFunc("GET /debug/sparker/obsv", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, ctx.conf.Obsv.Status())
	})
	// Continuous profiling: the standard pprof surface. CPU profiles
	// taken here carry the sparker_job/sparker_tenant/sparker_exec
	// labels runTask applies around task bodies.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
