package rdd

// Elastic membership: the driver-side member service. It owns the
// membership registry (the authoritative slot table), a control channel
// every executor keeps open over the transport, and the reconfiguration
// loop that turns registry epochs into installed cluster views.
//
// Protocol (JSON frames over transport conns at memb/<name>/ctrl):
//
//	executor -> driver:  hello{exec}        register the ctrl conn
//	                     hb{exec}           liveness heartbeat
//	                     leave{exec}        voluntary departure
//	                     reconf-ack{epoch}  phase-1 acknowledgement
//	                     commit-ack{epoch}  phase-2 acknowledgement
//	driver -> executor:  reconf{epoch, group, rank, size, par}
//	                     commit{epoch}
//
// Reconfiguration is two-phase so a ring never half-forms: phase 1 has
// every live executor build and LISTEN a fresh endpoint for the epoch's
// comm group; only after all acks does phase 2 tell them to ConnectRing
// and atomically swap it in (closing the previous epoch's endpoint,
// which makes any stale in-flight collective fail with a classified
// peer error instead of hanging). Epoch 1 keeps the boot group name
// "<name>/ring"; later epochs use "<name>/ring/e<epoch>", so frames
// from a dead epoch cannot even arrive — the addresses differ.
//
// Failure detection is twofold: a ctrl conn dropping evicts its
// executor instantly (the in-memory transport severs both directions on
// close, so a killed executor is detected at the next Recv), and a
// heartbeat monitor evicts members whose last heartbeat — or whose
// ctrl conn itself — is older than hbTimeout, which covers shaped or
// real TCP transports where a dead peer just goes quiet.

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sparker/internal/membership"
	"sparker/internal/metrics"
	"sparker/internal/transport"
)

const (
	ctrlHello     = "hello"
	ctrlHB        = "hb"
	ctrlLeave     = "leave"
	ctrlReconf    = "reconf"
	ctrlCommit    = "commit"
	ctrlReconfAck = "reconf-ack"
	ctrlCommitAck = "commit-ack"
)

const (
	hbInterval = 50 * time.Millisecond
	// hbTimeout evicts a member whose heartbeats (or ctrl conn) stop.
	hbTimeout = 2 * time.Second
	// ackTimeout bounds each reconfiguration phase per executor.
	ackTimeout = 5 * time.Second
	// connGrace is how long reconfiguration waits for a joining
	// executor's ctrl conn to appear before evicting it.
	connGrace = 3 * time.Second
	// noConnGrace is how long the heartbeat monitor tolerates a live
	// member with no registered ctrl conn before evicting it. It must
	// cover a joiner's worst-case boot: adopting a dead slot can spend
	// up to ~2s each in the block-store and task-listener retry loops
	// before the ctrl dial (see newExecutor/listenRetry), so hbTimeout
	// alone would evict a legitimately booting replacement.
	noConnGrace = 6 * time.Second
	// drainTimeout caps how long a graceful (join/leave-only)
	// reconfiguration waits for in-flight collectives to finish before
	// pushing the new epoch anyway. Evictions never wait: the dead
	// executor has already broken any collective it was part of.
	drainTimeout = 3 * time.Second
	// memberOpTimeout bounds AddExecutor/RemoveExecutor waiting for
	// their epoch to be installed.
	memberOpTimeout = 15 * time.Second
)

// ctrlMsg is one control-channel frame, either direction.
type ctrlMsg struct {
	Kind        string `json:"kind"`
	Exec        int    `json:"exec,omitempty"`
	Epoch       uint64 `json:"epoch,omitempty"`
	Group       string `json:"group,omitempty"`
	Rank        int    `json:"rank,omitempty"`
	Size        int    `json:"size,omitempty"`
	Parallelism int    `json:"par,omitempty"`
}

func ctrlAddr(name string) transport.Addr {
	return transport.Addr("memb/" + name + "/ctrl")
}

// ringGroup names the comm group of a membership epoch. Epoch 1 is the
// boot ring, named exactly as the fixed-membership engine named it.
func ringGroup(name string, epoch uint64) string {
	if epoch <= 1 {
		return name + "/ring"
	}
	return fmt.Sprintf("%s/ring/e%d", name, epoch)
}

// clusterView is one installed membership epoch plus the rank geometry
// derived from it — what every placement, owner-math and collective
// path resolves against. Immutable once installed.
type clusterView struct {
	view *membership.View
	// execOfRank maps ring rank -> executor ID; length is NumLive.
	execOfRank []int
	// rankOfExec maps executor ID -> ring rank, -1 for dead slots;
	// length is NumSlots.
	rankOfExec []int
	// group is the comm group name collectives of this epoch ride on.
	group string
}

// ctrlPeer is the driver's handle on one executor's control conn.
type ctrlPeer struct {
	id     int
	gen    uint64 // incarnation generation, from the hello frame
	c      transport.Conn
	sendMu sync.Mutex
	acks   chan ctrlMsg
	lastHB atomic.Int64 // unix nanos of the last heartbeat (or hello)
}

func (p *ctrlPeer) send(m ctrlMsg) error {
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	p.sendMu.Lock()
	defer p.sendMu.Unlock()
	return p.c.Send(b)
}

// memberSvc is the driver-side membership plane.
type memberSvc struct {
	ctx *Context
	reg *membership.Registry
	lis transport.Listener

	mu      sync.Mutex
	conns   map[int]*ctrlPeer
	epochCh chan struct{} // closed and replaced on every install
	closed  bool

	installed atomic.Pointer[clusterView]
	kick      chan struct{} // cap 1: coalesced reconfiguration wakeups
	quit      chan struct{}
	wg        sync.WaitGroup

	hookMu sync.Mutex
	hooks  []func(*membership.View)
}

// newMemberSvc boots the membership plane: registry at epoch 1 (every
// configured executor alive), the ctrl listener, and the service
// goroutines. The boot clusterView is installed immediately from the
// context's boot topology so accessors work before any reconfiguration.
func newMemberSvc(ctx *Context) (*memberSvc, error) {
	lis, err := ctx.net.Listen(ctrlAddr(ctx.conf.Name))
	if err != nil {
		return nil, fmt.Errorf("rdd: membership ctrl listener: %w", err)
	}
	svc := &memberSvc{
		ctx:     ctx,
		reg:     membership.NewRegistry(ctx.conf.Hosts),
		lis:     lis,
		conns:   make(map[int]*ctrlPeer),
		epochCh: make(chan struct{}),
		kick:    make(chan struct{}, 1),
		quit:    make(chan struct{}),
	}
	// Boot view: epoch 1, every slot alive, ranks from the boot topology.
	boot := svc.reg.View()
	execOfRank := ctx.topo.ExecOfRank()
	rankOfExec := make([]int, boot.NumSlots())
	for r, e := range execOfRank {
		rankOfExec[e] = r
	}
	svc.installed.Store(&clusterView{
		view:       boot,
		execOfRank: execOfRank,
		rankOfExec: rankOfExec,
		group:      ringGroup(ctx.conf.Name, 1),
	})
	svc.reg.Subscribe(func(*membership.View) { svc.kickReconfig() })
	svc.wg.Add(3)
	go svc.serve()
	go svc.run()
	go svc.monitor()
	ctx.reg.Gauge(metrics.GaugeLiveExecutors).Set(int64(boot.NumLive()))
	ctx.reg.Gauge(metrics.GaugeMembershipEpoch).Set(1)
	return svc, nil
}

func (svc *memberSvc) kickReconfig() {
	select {
	case svc.kick <- struct{}{}:
	default:
	}
}

func (svc *memberSvc) close() {
	svc.mu.Lock()
	if svc.closed {
		svc.mu.Unlock()
		return
	}
	svc.closed = true
	conns := make([]*ctrlPeer, 0, len(svc.conns))
	for _, p := range svc.conns {
		conns = append(conns, p)
	}
	svc.mu.Unlock()
	close(svc.quit)
	svc.lis.Close()
	for _, p := range conns {
		p.c.Close()
	}
	svc.wg.Wait()
}

func (svc *memberSvc) isClosed() bool {
	svc.mu.Lock()
	defer svc.mu.Unlock()
	return svc.closed
}

// serve accepts executor control connections.
func (svc *memberSvc) serve() {
	defer svc.wg.Done()
	for {
		c, err := svc.lis.Accept()
		if err != nil {
			return
		}
		svc.wg.Add(1)
		go svc.handle(c)
	}
}

// handle runs one executor's ctrl conn: hello registers it, then the
// loop consumes heartbeats, leave announcements and phase acks. A Recv
// error while this conn is still the registered one means the executor
// died — evict it.
func (svc *memberSvc) handle(c transport.Conn) {
	defer svc.wg.Done()
	b, err := c.Recv()
	if err != nil {
		c.Close()
		return
	}
	var hello ctrlMsg
	if json.Unmarshal(b, &hello) != nil || hello.Kind != ctrlHello {
		c.Close()
		return
	}
	id := hello.Exec
	p := &ctrlPeer{id: id, gen: hello.Epoch, c: c, acks: make(chan ctrlMsg, 8)}
	p.lastHB.Store(time.Now().UnixNano())
	svc.mu.Lock()
	old := svc.conns[id]
	if old != nil && old.gen > p.gen {
		// A stale incarnation's hello arriving after its replacement
		// registered must not displace the replacement's conn.
		svc.mu.Unlock()
		c.Close()
		return
	}
	svc.conns[id] = p
	closed := svc.closed
	svc.mu.Unlock()
	if old != nil {
		old.c.Close()
	}
	if closed {
		c.Close()
		return
	}
	for {
		b, err := c.Recv()
		if err != nil {
			svc.mu.Lock()
			current := svc.conns[id] == p
			if current {
				delete(svc.conns, id)
			}
			closed := svc.closed
			svc.mu.Unlock()
			c.Close()
			if current && !closed {
				// Evict only the incarnation this conn belonged to: if the
				// registry already re-assigned the slot to a replacement
				// (coalesced leave+rejoin), the stale conn's death says
				// nothing about the new member's health.
				svc.reg.EvictIncarnation(id, p.gen, "control connection lost")
			}
			return
		}
		var m ctrlMsg
		if json.Unmarshal(b, &m) != nil {
			continue
		}
		switch m.Kind {
		case ctrlHB:
			p.lastHB.Store(time.Now().UnixNano())
		case ctrlLeave:
			// Only the slot's current incarnation may retire it.
			if svc.reg.View().JoinEpochOf(id) == p.gen {
				svc.reg.Leave(id)
			}
		case ctrlReconfAck, ctrlCommitAck:
			select {
			case p.acks <- m:
			default:
			}
		}
	}
}

// monitor is the slow-path failure detector: members whose heartbeats
// stop get evicted after hbTimeout, members that never present a ctrl
// conn after noConnGrace. The fast path — ctrl conn severed — is
// handled inline by handle.
//
// missingSince is keyed by (slot, incarnation join epoch), not slot id
// alone: slots are reused across kill-and-replace, and a timestamp left
// behind by an incarnation evicted through another path (ctrl-conn
// loss, reconfiguration timeout) must never count against a replacement
// that later adopts the slot. Entries whose incarnation is no longer
// live are pruned every tick.
func (svc *memberSvc) monitor() {
	defer svc.wg.Done()
	t := time.NewTicker(hbTimeout / 4)
	defer t.Stop()
	type incKey struct {
		id  int
		gen uint64
	}
	missingSince := make(map[incKey]time.Time)
	for {
		select {
		case <-svc.quit:
			return
		case <-t.C:
		}
		now := time.Now()
		view := svc.reg.View()
		liveNow := make(map[incKey]bool, view.NumLive())
		for _, id := range view.Live() {
			k := incKey{id: id, gen: view.JoinEpochOf(id)}
			liveNow[k] = true
			svc.mu.Lock()
			p := svc.conns[id]
			svc.mu.Unlock()
			if p == nil || p.gen != k.gen {
				// No conn for THIS incarnation yet (a leftover conn from a
				// replaced incarnation does not count as liveness).
				if since, ok := missingSince[k]; !ok {
					missingSince[k] = now
				} else if now.Sub(since) > noConnGrace {
					delete(missingSince, k)
					svc.reg.EvictIncarnation(id, k.gen, "no control connection")
				}
				continue
			}
			delete(missingSince, k)
			if now.Sub(time.Unix(0, p.lastHB.Load())) > hbTimeout {
				p.c.Close() // handle's Recv fails and evicts
			}
		}
		for k := range missingSince {
			if !liveNow[k] {
				delete(missingSince, k)
			}
		}
	}
}

// run is the reconfiguration loop: whenever the registry is ahead of
// the installed view, push the newest epoch to the live set. A failed
// push evicts the unresponsive member (bumping the registry epoch) and
// the loop retries against the new target — it converges because every
// failure shrinks the live set.
func (svc *memberSvc) run() {
	defer svc.wg.Done()
	for {
		select {
		case <-svc.quit:
			return
		case <-svc.kick:
		}
		for {
			select {
			case <-svc.quit:
				return
			default:
			}
			cur := svc.installed.Load()
			target := svc.reg.View()
			if target.Epoch <= cur.view.Epoch {
				break
			}
			svc.reconfigure(cur, target)
		}
	}
}

// hadEvictions reports whether any epoch in (after, upto] was an
// eviction — those reconfigurations must not wait for collective drain.
func (svc *memberSvc) hadEvictions(after, upto uint64) bool {
	for _, ev := range svc.reg.History() {
		if ev.Epoch > after && ev.Epoch <= upto && ev.Kind == "evict" {
			return true
		}
	}
	return false
}

func (svc *memberSvc) drainCollectives(deadline time.Time) {
	for time.Now().Before(deadline) {
		if len(svc.ctx.InflightCollectives()) == 0 {
			return
		}
		select {
		case <-svc.quit:
			return
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// buildClusterView derives the rank geometry of a target epoch: live
// executors sorted by hostname when the context is topology-aware
// (the same rank order comm.RanksByHost produces at boot), ascending
// ID otherwise.
func (svc *memberSvc) buildClusterView(target *membership.View) *clusterView {
	order := append([]int(nil), target.Live()...)
	if *svc.ctx.conf.TopologyAware {
		sort.SliceStable(order, func(i, j int) bool {
			return target.HostOf(order[i]) < target.HostOf(order[j])
		})
	}
	rankOfExec := make([]int, target.NumSlots())
	for i := range rankOfExec {
		rankOfExec[i] = -1
	}
	for r, e := range order {
		rankOfExec[e] = r
	}
	return &clusterView{
		view:       target,
		execOfRank: order,
		rankOfExec: rankOfExec,
		group:      ringGroup(svc.ctx.conf.Name, target.Epoch),
	}
}

// waitPeer waits for a ctrl conn of executor id's generation gen (a
// joiner may still be dialing), bounded by deadline. A registered conn
// of an OLDER generation is a departed incarnation that has not been
// torn down yet — it must not receive the new epoch's protocol frames
// (it would wire the wrong process into the ring at the replacement's
// rank), so it counts as missing and the wait continues for the
// replacement's hello. A NEWER generation means the registry has
// already moved past the target view; the wait gives up immediately so
// the run loop can retry against the fresher view.
func (svc *memberSvc) waitPeer(id int, gen uint64, deadline time.Time) *ctrlPeer {
	for {
		svc.mu.Lock()
		p := svc.conns[id]
		svc.mu.Unlock()
		if p != nil {
			if p.gen == gen {
				return p
			}
			if p.gen > gen {
				return nil
			}
		}
		if !time.Now().Before(deadline) {
			return nil
		}
		select {
		case <-svc.quit:
			return nil
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// awaitAck drains p.acks until a frame of the wanted kind and epoch
// arrives (stale epochs' acks are discarded), bounded by ackTimeout.
func (svc *memberSvc) awaitAck(p *ctrlPeer, kind string, epoch uint64) bool {
	deadline := time.NewTimer(ackTimeout)
	defer deadline.Stop()
	for {
		select {
		case m := <-p.acks:
			if m.Kind == kind && m.Epoch == epoch {
				return true
			}
		case <-deadline.C:
			return false
		case <-svc.quit:
			return false
		}
	}
}

// reconfigure pushes target to every live executor in two phases and
// installs the resulting clusterView. Any per-executor failure evicts
// that executor and returns; the run loop retries with the new target.
func (svc *memberSvc) reconfigure(cur *clusterView, target *membership.View) {
	if !svc.hadEvictions(cur.view.Epoch, target.Epoch) {
		svc.drainCollectives(time.Now().Add(drainTimeout))
	}
	next := svc.buildClusterView(target)
	live := target.Live()
	peers := make([]*ctrlPeer, len(live))
	connDeadline := time.Now().Add(connGrace)
	for i, id := range live {
		if peers[i] = svc.waitPeer(id, target.JoinEpochOf(id), connDeadline); peers[i] == nil {
			if svc.isClosed() {
				return
			}
			if svc.reg.View().Epoch > target.Epoch {
				// The registry moved past target while we waited (e.g. the
				// slot's incarnation changed again); retry against the
				// fresher view instead of evicting anyone.
				return
			}
			svc.reg.EvictIncarnation(id, target.JoinEpochOf(id), "no control connection at reconfiguration")
			return
		}
	}
	// Phase 1: every member builds and listens its endpoint for the new
	// group, so phase 2's ConnectRing finds all peers accepting. Failure
	// evictions name the incarnation the frame was aimed at: a send to a
	// gen-matched peer failing says nothing about any replacement the
	// registry may have admitted to the slot since.
	for i, id := range live {
		err := peers[i].send(ctrlMsg{
			Kind: ctrlReconf, Epoch: target.Epoch, Group: next.group,
			Rank: next.rankOfExec[id], Size: len(live),
			Parallelism: svc.ctx.conf.RingParallelism,
		})
		if err != nil {
			svc.reg.EvictIncarnation(id, peers[i].gen, "reconf push failed")
			return
		}
	}
	for i, id := range live {
		if !svc.awaitAck(peers[i], ctrlReconfAck, target.Epoch) {
			if svc.isClosed() {
				return
			}
			svc.reg.EvictIncarnation(id, peers[i].gen, "reconf unacknowledged")
			return
		}
	}
	// Phase 2: wire the ring and swap endpoints.
	for i, id := range live {
		if err := peers[i].send(ctrlMsg{Kind: ctrlCommit, Epoch: target.Epoch}); err != nil {
			svc.reg.EvictIncarnation(id, peers[i].gen, "commit push failed")
			return
		}
	}
	for i, id := range live {
		if !svc.awaitAck(peers[i], ctrlCommitAck, target.Epoch) {
			if svc.isClosed() {
				return
			}
			svc.reg.EvictIncarnation(id, peers[i].gen, "commit unacknowledged")
			return
		}
	}
	svc.install(cur, next)
}

// install publishes next as the cluster view, wakes epoch waiters and
// runs the driver-side consequences (scheduler diff, conn teardown,
// metrics, re-replication hooks). The departing incarnations are
// captured BEFORE the epoch becomes visible: the instant waiters wake,
// AddExecutor may boot a replacement into a departed slot, and
// teardown keyed by slot id alone would clobber the new incarnation.
func (svc *memberSvc) install(old, next *clusterView) {
	departed := svc.captureDeparted(old, next)
	svc.installed.Store(next)
	svc.mu.Lock()
	close(svc.epochCh)
	svc.epochCh = make(chan struct{})
	svc.mu.Unlock()
	svc.ctx.postReconfigure(old, next, departed)
}

// departedExec is one incarnation removed by an installed epoch.
type departedExec struct {
	id   int
	e    *Executor // nil if already replaced or never booted
	peer *ctrlPeer // nil if the ctrl conn is already gone
}

// captureDeparted swaps out the executor objects and ctrl conns of
// every incarnation next leaves behind. Slots are diffed by
// incarnation, not liveness: when epochs coalesce (the run loop always
// jumps to the newest registry view), an eviction and a replacement
// join of the same slot can land in one install, leaving the slot live
// in both views — but the incarnation differs, and the dead
// incarnation's scheduler state, conns and executor object still need
// tearing down. Matching is by generation (the incarnation's join
// epoch): anything older than next's incarnation at the slot departed;
// a replacement booted for a later epoch (gen beyond next) is left
// untouched.
func (svc *memberSvc) captureDeparted(old, next *clusterView) []departedExec {
	var out []departedExec
	slots := next.view.NumSlots()
	if o := old.view.NumSlots(); o > slots {
		slots = o
	}
	for id := 0; id < slots; id++ {
		// genLimit is the exclusive upper bound on departed generations at
		// this slot: the live incarnation's join epoch when next occupies
		// the slot, else everything through next's epoch (a join+evict
		// pair coalesced into one install leaves a dead slot whose
		// intermediate incarnation still needs teardown).
		genLimit := next.view.Epoch + 1
		if next.view.IsLive(id) {
			genLimit = next.view.JoinEpochOf(id)
		}
		d := departedExec{id: id}
		svc.ctx.execMu.Lock()
		if id < len(svc.ctx.executors) {
			if e := svc.ctx.executors[id]; e != nil && e.gen < genLimit {
				d.e = e
				svc.ctx.executors[id] = nil
			}
		}
		svc.ctx.execMu.Unlock()
		svc.mu.Lock()
		if p := svc.conns[id]; p != nil && p.gen < genLimit {
			delete(svc.conns, id)
			d.peer = p
		}
		svc.mu.Unlock()
		removed := old.view.IsLive(id) && !membership.SameIncarnation(old.view, next.view, id)
		if removed || d.e != nil || d.peer != nil {
			out = append(out, d)
		}
	}
	return out
}

func (svc *memberSvc) epochWaiter() <-chan struct{} {
	svc.mu.Lock()
	defer svc.mu.Unlock()
	return svc.epochCh
}

func (svc *memberSvc) hooksSnapshot() []func(*membership.View) {
	svc.hookMu.Lock()
	defer svc.hookMu.Unlock()
	return append([]func(*membership.View){}, svc.hooks...)
}

// ---------------------------------------------------------------------
// Context membership API
// ---------------------------------------------------------------------

// ErrNotLive reports an operation aimed at an executor outside the
// current live set.
var ErrNotLive = errors.New("rdd: executor is not live")

// clusterView returns the installed membership epoch's view; nil only
// during a failed partial boot.
func (ctx *Context) clusterView() *clusterView {
	if ctx.memb == nil {
		return nil
	}
	return ctx.memb.installed.Load()
}

// Membership returns the installed membership view — the epoch every
// placement and owner-math decision currently resolves against.
func (ctx *Context) Membership() *membership.View {
	return ctx.clusterView().view
}

// MembershipEpoch returns the installed membership epoch.
func (ctx *Context) MembershipEpoch() uint64 {
	return ctx.clusterView().view.Epoch
}

// MembershipHistory returns the registry's committed membership events.
func (ctx *Context) MembershipHistory() []membership.Event {
	return ctx.memb.reg.History()
}

// LiveExecutors returns the installed epoch's ascending live executor
// IDs. The slice is shared; callers must not mutate it.
func (ctx *Context) LiveExecutors() []int {
	return ctx.clusterView().view.Live()
}

// NumLiveExecutors returns the installed epoch's live executor count.
func (ctx *Context) NumLiveExecutors() int {
	return ctx.clusterView().view.NumLive()
}

// OwnerOf resolves partition p to its owning live executor under the
// installed epoch — the single placement-resolution path. With every
// slot alive it equals p % NumExecutors.
func (ctx *Context) OwnerOf(p int) int {
	return ctx.clusterView().view.OwnerOf(p)
}

// CollectiveGroup returns the comm group name of the installed epoch's
// ring — collectives of epoch E ride on E's group, so frames from a
// stale epoch cannot arrive on the current ring.
func (ctx *Context) CollectiveGroup() string {
	return ctx.clusterView().group
}

// AwaitReconfigured blocks until the installed epoch differs from
// epoch0 or timeout elapses, reporting whether it changed. Collective
// retry uses it to distinguish "membership changed, retry against the
// new epoch" from "peer hiccup, use the degraded fallback".
func (ctx *Context) AwaitReconfigured(epoch0 uint64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if ctx.MembershipEpoch() != epoch0 {
			return true
		}
		ch := ctx.memb.epochWaiter()
		if ctx.MembershipEpoch() != epoch0 {
			return true
		}
		d := time.Until(deadline)
		if d <= 0 {
			return false
		}
		t := time.NewTimer(d)
		select {
		case <-ch:
		case <-t.C:
		case <-ctx.memb.quit:
		}
		t.Stop()
		if ctx.MembershipEpoch() != epoch0 {
			return true
		}
		if !time.Now().Before(deadline) || ctx.memb.isClosed() {
			return false
		}
	}
}

// awaitInstalled waits for an installed view satisfying pred.
func (ctx *Context) awaitInstalled(pred func(*clusterView) bool, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if pred(ctx.clusterView()) {
			return true
		}
		ch := ctx.memb.epochWaiter()
		if pred(ctx.clusterView()) {
			return true
		}
		d := time.Until(deadline)
		if d <= 0 {
			return false
		}
		t := time.NewTimer(d)
		select {
		case <-ch:
		case <-t.C:
		case <-ctx.memb.quit:
			t.Stop()
			return pred(ctx.clusterView())
		}
		t.Stop()
	}
}

// OnReconfigure registers f to run (on the reconfiguration goroutine)
// after each new membership epoch is installed — the hook point
// checkpoint re-replication uses to restore its replica invariant when
// executors come or go. Hooks must not block: a blocked hook stalls all
// further epoch installs, so long-running reactions (repair jobs,
// re-replication) must hand off to their own goroutine — see
// installCkptRepairHook for the kick-and-coalesce pattern.
func (ctx *Context) OnReconfigure(f func(*membership.View)) {
	ctx.memb.hookMu.Lock()
	ctx.memb.hooks = append(ctx.memb.hooks, f)
	ctx.memb.hookMu.Unlock()
}

// AddExecutor joins a new executor to the cluster: the registry assigns
// it a slot (adopting the oldest dead slot if one exists — a
// replacement inherits the dead rank's identity — else growing the
// table), the executor boots and dials the ctrl channel, and the call
// returns once the epoch including it is installed. host "" picks a
// fresh hostname.
func (ctx *Context) AddExecutor(host string) (int, error) {
	if host == "" {
		host = fmt.Sprintf("node-%03d", ctx.NumExecutors())
	}
	id, v := ctx.memb.reg.Join(host)
	e, err := newExecutor(ctx, id, host, -1, v.Epoch)
	if err != nil {
		ctx.memb.reg.EvictIncarnation(id, v.Epoch, "executor boot failed")
		return -1, fmt.Errorf("rdd: booting executor %d: %w", id, err)
	}
	if prev := ctx.swapExecutor(id, e); prev != nil && prev.gen < e.gen {
		// The slot was Dead when Join adopted it, so any executor object
		// still parked there is a departed incarnation whose teardown
		// epoch has not installed yet. Kill it here — once the new object
		// occupies the slot, captureDeparted can no longer reach it.
		prev.kill()
	}
	ok := ctx.awaitInstalled(func(cv *clusterView) bool {
		return cv.view.Epoch >= v.Epoch && cv.view.IsLive(id)
	}, memberOpTimeout)
	if !ok {
		return id, fmt.Errorf("rdd: executor %d joined the registry but reconfiguration did not install it", id)
	}
	return id, nil
}

// RemoveExecutor gracefully retires executor id: the executor announces
// a voluntary leave on its ctrl channel, the reconfiguration (after a
// bounded drain of in-flight collectives) installs an epoch without it,
// and the executor is shut down. Blocks until the departure epoch is
// installed so a subsequent AddExecutor can safely reuse the slot.
func (ctx *Context) RemoveExecutor(id int) error {
	v := ctx.Membership()
	if !v.IsLive(id) {
		return fmt.Errorf("%w: executor %d", ErrNotLive, id)
	}
	e := ctx.executorAt(id)
	if e == nil || e.sendLeave() != nil {
		// No reachable executor object (or a severed ctrl conn): record
		// the departure driver-side.
		ctx.memb.reg.Leave(id)
	}
	ok := ctx.awaitInstalled(func(cv *clusterView) bool {
		return cv.view.Epoch > v.Epoch && !cv.view.IsLive(id)
	}, memberOpTimeout)
	if !ok {
		return fmt.Errorf("rdd: executor %d leave was not installed in time", id)
	}
	return nil
}

// KillExecutor hard-kills executor id — the chaos path. Every listener,
// endpoint and conn the executor owns closes immediately (in-flight
// tasks and ring steps fail with classified errors); the driver's
// failure detector notices the severed ctrl conn and evicts the member,
// which triggers reconfiguration. Returns without waiting for the new
// epoch: detection is the point being exercised.
func (ctx *Context) KillExecutor(id int) error {
	e := ctx.executorAt(id)
	if e == nil {
		return fmt.Errorf("rdd: no executor %d", id)
	}
	e.kill()
	return nil
}

// executorAt returns the executor object at slot id (nil for dead or
// out-of-range slots).
func (ctx *Context) executorAt(id int) *Executor {
	ctx.execMu.RLock()
	defer ctx.execMu.RUnlock()
	if id < 0 || id >= len(ctx.executors) {
		return nil
	}
	return ctx.executors[id]
}

// setExecutor installs e at slot id, growing the table as needed.
func (ctx *Context) setExecutor(id int, e *Executor) {
	ctx.swapExecutor(id, e)
}

// swapExecutor installs e at slot id, growing the table as needed, and
// returns the previous occupant (nil for an empty slot).
func (ctx *Context) swapExecutor(id int, e *Executor) *Executor {
	ctx.execMu.Lock()
	for len(ctx.executors) <= id {
		ctx.executors = append(ctx.executors, nil)
	}
	prev := ctx.executors[id]
	ctx.executors[id] = e
	ctx.execMu.Unlock()
	return prev
}

// executorSnapshot returns the executor table under the lock.
func (ctx *Context) executorSnapshot() []*Executor {
	ctx.execMu.RLock()
	defer ctx.execMu.RUnlock()
	return append([]*Executor(nil), ctx.executors...)
}

// postReconfigure applies an installed epoch to the rest of the driver:
// scheduler slot diff, departed incarnations' teardown, observability,
// and the registered re-replication hooks. Runs on the reconfiguration
// goroutine. departed carries the incarnations captured before the
// epoch was published (see captureDeparted): the ctrl conn was already
// deregistered, so closing it cannot evict a replacement that has
// since adopted the slot, and the executor pointer — not the slot id —
// is what gets killed.
func (ctx *Context) postReconfigure(old, next *clusterView, departed []departedExec) {
	for _, d := range departed {
		ctx.sched.RemoveExecutor(d.id)
		if d.peer != nil {
			d.peer.c.Close()
		}
		if d.e != nil {
			d.e.kill()
		}
		ctx.closeExecutorConns(d.id)
	}
	// Slots live in next but not carried over from old by the same
	// incarnation come up fresh: a genuinely new join, or a replacement
	// whose predecessor was torn down just above (coalesced
	// evict+rejoin — remove-then-add, never "unchanged").
	for _, id := range next.view.Live() {
		if !membership.SameIncarnation(old.view, next.view, id) {
			ctx.sched.AddExecutor(id)
		}
	}
	// Observability: one marker per membership event in (old, next] —
	// markers double as flight-recorder triggers, so an eviction dumps a
	// postmortem bundle stamped with the epoch.
	for _, ev := range ctx.memb.reg.History() {
		if ev.Epoch <= old.view.Epoch || ev.Epoch > next.view.Epoch {
			continue
		}
		detail := fmt.Sprintf("epoch=%d exec=%d host=%s %s", ev.Epoch, ev.Exec, ev.Host, ev.Detail)
		switch ev.Kind {
		case "join":
			ctx.RecordMarker(metrics.CounterExecutorJoin, detail)
		case "leave":
			ctx.RecordMarker(metrics.CounterExecutorLeave, detail)
		case "evict":
			ctx.RecordMarker(metrics.CounterExecutorEvict, detail)
		}
	}
	ctx.reg.Gauge(metrics.GaugeLiveExecutors).Set(int64(next.view.NumLive()))
	ctx.reg.Gauge(metrics.GaugeMembershipEpoch).Set(int64(next.view.Epoch))
	if obs := ctx.conf.Obsv; obs != nil {
		obs.EnsureExecRings(next.view.NumSlots())
		obs.Marker("membership-reconfigured",
			fmt.Sprintf("epoch=%d live=%d slots=%d", next.view.Epoch, next.view.NumLive(), next.view.NumSlots()))
	}
	for _, h := range ctx.memb.hooksSnapshot() {
		h(next.view)
	}
}

// connectBootRing wires the epoch-1 ring eagerly so connection setup
// stays out of timed paths (later epochs wire during phase 2).
func (ctx *Context) connectBootRing() error {
	for _, e := range ctx.executorSnapshot() {
		if e == nil {
			continue
		}
		if ep := e.endpoint(); ep != nil {
			if err := ep.ConnectRing(ctx.conf.RingParallelism); err != nil {
				return err
			}
		}
	}
	return nil
}
