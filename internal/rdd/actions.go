package rdd

import (
	"encoding/binary"
	"fmt"
	"time"

	"sparker/internal/metrics"
	"sparker/internal/serde"
)

// Actions materialize RDDs. Every result crosses the executor→driver
// boundary serialized with serde, so element and aggregator types must
// be serde-encodable (built-in, Register, or RegisterSelf).

// encodeSlice frames a []T as count + serde-encoded elements.
func encodeSlice[T any](vs []T) ([]byte, error) {
	b := binary.LittleEndian.AppendUint32(nil, uint32(len(vs)))
	var err error
	for _, v := range vs {
		b, err = serde.Encode(b, v)
		if err != nil {
			return nil, err
		}
	}
	return b, nil
}

// decodeSlice is the inverse of encodeSlice.
func decodeSlice[T any](b []byte) ([]T, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("rdd: short slice frame")
	}
	n := int(binary.LittleEndian.Uint32(b))
	off := 4
	out := make([]T, 0, n)
	for i := 0; i < n; i++ {
		v, used, err := serde.Decode(b[off:])
		if err != nil {
			return nil, err
		}
		off += used
		tv, ok := v.(T)
		if !ok {
			return nil, fmt.Errorf("rdd: decoded %T, want %T", v, *new(T))
		}
		out = append(out, tv)
	}
	return out, nil
}

// Collect returns every element, in partition order.
func Collect[T any](r *RDD[T]) ([]T, error) {
	payloads, err := r.ctx.RunJob(JobSpec{
		Tasks:  r.parts,
		Policy: r.placementPolicy(),
		Fn: func(ec *ExecContext, task, attempt int) ([]byte, error) {
			data, err := r.Materialize(ec, task)
			if err != nil {
				return nil, err
			}
			return encodeSlice(data)
		},
	})
	if err != nil {
		return nil, err
	}
	var out []T
	for _, p := range payloads {
		vs, err := decodeSlice[T](p)
		if err != nil {
			return nil, err
		}
		out = append(out, vs...)
	}
	return out, nil
}

// Count returns the number of elements.
func Count[T any](r *RDD[T]) (int64, error) {
	payloads, err := r.ctx.RunJob(JobSpec{
		Tasks:  r.parts,
		Policy: r.placementPolicy(),
		Fn: func(ec *ExecContext, task, attempt int) ([]byte, error) {
			data, err := r.Materialize(ec, task)
			if err != nil {
				return nil, err
			}
			return binary.LittleEndian.AppendUint64(nil, uint64(len(data))), nil
		},
	})
	if err != nil {
		return 0, err
	}
	var total int64
	for _, p := range payloads {
		if len(p) < 8 {
			return 0, fmt.Errorf("rdd: short count payload")
		}
		total += int64(binary.LittleEndian.Uint64(p))
	}
	return total, nil
}

// Reduce folds all elements with f. It errors on an empty RDD.
func Reduce[T any](r *RDD[T], f func(T, T) T) (T, error) {
	var zero T
	payloads, err := r.ctx.RunJob(JobSpec{
		Tasks:  r.parts,
		Policy: r.placementPolicy(),
		Fn: func(ec *ExecContext, task, attempt int) ([]byte, error) {
			data, err := r.Materialize(ec, task)
			if err != nil {
				return nil, err
			}
			if len(data) == 0 {
				return []byte{0}, nil
			}
			acc := data[0]
			for _, v := range data[1:] {
				acc = f(acc, v)
			}
			return serde.Encode([]byte{1}, acc)
		},
	})
	if err != nil {
		return zero, err
	}
	have := false
	var acc T
	for _, p := range payloads {
		if len(p) < 1 || p[0] == 0 {
			continue
		}
		v, _, err := serde.Decode(p[1:])
		if err != nil {
			return zero, err
		}
		if !have {
			acc, have = v.(T), true
		} else {
			acc = f(acc, v.(T))
		}
	}
	if !have {
		return zero, fmt.Errorf("rdd: Reduce of empty RDD")
	}
	return acc, nil
}

// AggregateOptions tunes TreeAggregate. Most callers should use
// core.Aggregate, the unified aggregation entry point, which dispatches
// here for StrategyTree; this type remains for the engine-level
// primitive itself.
type AggregateOptions struct {
	// Depth is the aggregation tree depth (Spark default 2). Depth 1
	// sends every partition aggregator straight to the driver.
	Depth int
}

// TreeAggregate is Spark's treeAggregate: per-partition seqOp folds,
// then rounds of combOp merges through intermediate combiner tasks,
// and a final serial combOp merge of the surviving aggregators in the
// driver. Aggregators move between executors as shuffle blocks and
// reach the driver serialized — the non-scalable reduction Sparker
// replaces.
//
// U must be serde-encodable. zero must return a fresh value each call.
func TreeAggregate[T, U any](r *RDD[T], zero func() U, seqOp func(U, T) U, combOp func(U, U) U, opts AggregateOptions) (U, error) {
	var zu U
	depth := opts.Depth
	if depth == 0 {
		depth = 2
	}
	if depth < 1 {
		return zu, fmt.Errorf("rdd: Depth must be >= 1, got %d", depth)
	}
	ctx := r.ctx
	aggID := ctx.newJobID()
	prefix := fmt.Sprintf("agg/%d/", aggID)
	defer cleanupBlocks(ctx, prefix)

	// Stage 1 (agg-compute): fold each partition, leave the aggregator
	// in the executor's block store, return only the block id size ack.
	blockID := func(round, idx int) string {
		return fmt.Sprintf("%sr%d/%d", prefix, round, idx)
	}
	start := time.Now()
	h, err := ctx.SubmitJob(JobSpec{
		Tasks:  r.parts,
		Policy: r.placementPolicy(),
		Fn: func(ec *ExecContext, task, attempt int) ([]byte, error) {
			data, err := r.Materialize(ec, task)
			if err != nil {
				return nil, err
			}
			acc := zero()
			for _, v := range data {
				acc = seqOp(acc, v)
			}
			wire, err := serde.Encode(nil, acc)
			if err != nil {
				return nil, err
			}
			ec.Store.PutLocal(blockID(0, task), wire)
			return nil, nil
		},
	})
	if err == nil {
		_, err = h.Wait()
	}
	ctx.RecordPhase(metrics.PhaseAggCompute, time.Since(start), "treeAggregate stage 1")
	if err != nil {
		return zu, err
	}
	// Where each block actually landed: the winning executor of each
	// stage-1 task. Speculation or cache-aware placement can move a
	// task off i %% NumExecutors, so combine rounds must follow the
	// recorded owners rather than recompute the round-robin formula.
	curPlace := h.Executors()

	// Combine rounds (agg-reduce): Spark computes
	// scale = max(2, ceil(parts^(1/depth))) and repartitions by
	// part % numCombiners while it keeps shrinking the count.
	start = time.Now()
	defer func() { ctx.RecordPhase(metrics.PhaseAggReduce, time.Since(start), "treeAggregate combine+driver") }()

	cur := r.parts
	round := 0
	if depth > 1 && cur > 1 {
		scale := intRoot(cur, depth)
		if scale < 2 {
			scale = 2
		}
		for cur > scale+cur/scale {
			numCombiners := (cur + scale - 1) / scale
			srcRound, srcCount := round, cur
			srcPlace := curPlace
			round++
			dstRound := round
			rh, err := ctx.SubmitJob(JobSpec{
				Tasks: numCombiners,
				Fn: func(ec *ExecContext, task, attempt int) ([]byte, error) {
					acc := zero()
					for p := task; p < srcCount; p += numCombiners {
						owner := ctx.ExecutorStoreName(srcPlace[p])
						wire, err := ec.Store.FetchFrom(owner, blockID(srcRound, p))
						if err != nil {
							return nil, err
						}
						v, _, err := serde.Decode(wire)
						if err != nil {
							return nil, err
						}
						acc = combOp(acc, v.(U))
					}
					out, err := serde.Encode(nil, acc)
					if err != nil {
						return nil, err
					}
					ec.Store.PutLocal(blockID(dstRound, task), out)
					return nil, nil
				},
			})
			if err == nil {
				_, err = rh.Wait()
			}
			if err != nil {
				return zu, err
			}
			curPlace = rh.Executors()
			cur = numCombiners
		}
	}

	// Final serial merge in the driver: fetch each surviving block and
	// deserialize + combine one by one. This serial chain is exactly
	// what grows with scale in Figures 3–4.
	acc := zero()
	for i := 0; i < cur; i++ {
		owner := ctx.ExecutorStoreName(curPlace[i])
		wire, err := ctx.driverStore.FetchFrom(owner, blockID(round, i))
		if err != nil {
			return zu, err
		}
		v, _, err := serde.Decode(wire)
		if err != nil {
			return zu, err
		}
		acc = combOp(acc, v.(U))
	}
	return acc, nil
}

// intRoot returns ceil(n^(1/k)) computed in integers.
func intRoot(n, k int) int {
	if n <= 1 {
		return 1
	}
	r := 1
	for pow(r, k) < n {
		r++
	}
	return r
}

func pow(b, e int) int {
	p := 1
	for i := 0; i < e; i++ {
		p *= b
		if p < 0 { // overflow guard; callers use tiny exponents
			return 1 << 62
		}
	}
	return p
}

// cleanupBlocks drops a job's shuffle blocks on every executor,
// best-effort.
func cleanupBlocks(ctx *Context, prefix string) {
	ctx.RunOnAllExecutors(func(ec *ExecContext, task, attempt int) ([]byte, error) {
		ec.Store.DeletePrefix(prefix)
		return nil, nil
	})
	ctx.driverStore.DeletePrefix(prefix)
}
