package rdd

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"sparker/internal/sched"
)

// RDD is a partitioned, immutable, lazily evaluated dataset. Like
// Spark's, it is a driver-side recipe: Compute materializes one
// partition on an executor. Transformations are package functions
// (Map, Filter, …) because Go methods cannot introduce type
// parameters.
//
// By default partition p is computed on executor p % NumExecutors (the
// scheduler's round-robin policy). Cached RDDs upgrade to sticky
// cache-aware placement, and WithPlacement installs any policy; jobs
// that need a partition off its home executor (speculation, explicit
// placement) still work — blocks are fetched over the transport.
type RDD[T any] struct {
	ctx          *Context
	id           int64
	parts        int
	compute      func(ec *ExecContext, part int) ([]T, error)
	cached       atomic.Bool
	checkpointed atomic.Bool
	// policy, when set, overrides the scheduler's default placement for
	// this RDD's action stages (boxed: atomic.Pointer needs one concrete
	// pointee type for the interface value).
	policy atomic.Pointer[policyBox]
	// ckptOwners records, per partition, the executor whose block store
	// holds the checkpoint bytes — the winner placement of the
	// checkpoint stage, which speculation may have moved off the
	// partition's home executor.
	ckptOwners atomic.Pointer[[]int]
	// ckptReplicas records, per partition, the executor holding the
	// buddy replica of the checkpoint bytes (-1: none). Replicas exist
	// so a partition survives its owner dying; the membership
	// reconfiguration hook re-establishes the invariant after churn.
	ckptReplicas atomic.Pointer[[]int]
	// ckptMu serializes checkpoint repair against itself (reconfiguration
	// hooks for back-to-back epochs).
	ckptMu sync.Mutex
	// ckptHook registers the repair hook once per RDD.
	ckptHook sync.Once
}

type policyBox struct{ p sched.PlacementPolicy }

// Context returns the owning driver context.
func (r *RDD[T]) Context() *Context { return r.ctx }

// NumPartitions returns the partition count.
func (r *RDD[T]) NumPartitions() int { return r.parts }

// ID returns the RDD's unique id.
func (r *RDD[T]) ID() int64 { return r.id }

// Cache marks the RDD for MEMORY_ONLY storage: the first
// materialization of each partition is kept on its executor, and the
// RDD's placement upgrades to a cache-aware policy — later stages
// stick to wherever each partition is actually resident (which
// speculation may have moved), falling back to the previous placement
// for partitions not yet materialized. Returns r for chaining.
func (r *RDD[T]) Cache() *RDD[T] {
	r.cached.Store(true)
	fallback := r.placementPolicy()
	r.policy.Store(&policyBox{p: sched.NewCacheAware(r.locateCached, fallback)})
	return r
}

// locateCached reports which executor holds partition part's cached
// materialization, scanning the executors' cache maps driver-side (the
// engine runs in one process, so this is a map lookup, not an RPC).
func (r *RDD[T]) locateCached(part int) (int, bool) {
	if !r.cached.Load() {
		return 0, false
	}
	key := r.cacheKey(part)
	for i, e := range r.ctx.executorSnapshot() {
		if e != nil {
			if _, ok := e.cache.Load(key); ok {
				return i, true
			}
		}
	}
	return 0, false
}

// WithPlacement installs a placement policy for this RDD's action
// stages (nil restores the scheduler default). Returns r for chaining.
func (r *RDD[T]) WithPlacement(p sched.PlacementPolicy) *RDD[T] {
	if p == nil {
		r.policy.Store(nil)
	} else {
		r.policy.Store(&policyBox{p: p})
	}
	return r
}

// placementPolicy returns the RDD's effective policy; nil means the
// scheduler default (round-robin).
func (r *RDD[T]) placementPolicy() sched.PlacementPolicy {
	if b := r.policy.Load(); b != nil {
		return b.p
	}
	return nil
}

// Unpersist drops the RDD's cached partitions from every executor and
// stops further caching. Later actions recompute from lineage.
func (r *RDD[T]) Unpersist() error {
	r.cached.Store(false)
	id := r.id
	_, err := r.ctx.RunOnAllExecutors(func(ec *ExecContext, task, attempt int) ([]byte, error) {
		prefix := fmt.Sprintf("rdd/%d/", id)
		ec.exec.cache.Range(func(k, _ any) bool {
			if key, ok := k.(string); ok && strings.HasPrefix(key, prefix) {
				ec.exec.cache.Delete(k)
			}
			return true
		})
		return nil, nil
	})
	return err
}

func (r *RDD[T]) cacheKey(part int) string {
	return fmt.Sprintf("rdd/%d/%d", r.id, part)
}

// Materialize produces partition part on the calling executor,
// consulting and filling the cache when the RDD is cached.
func (r *RDD[T]) Materialize(ec *ExecContext, part int) ([]T, error) {
	if part < 0 || part >= r.parts {
		return nil, fmt.Errorf("rdd: partition %d out of range [0,%d)", part, r.parts)
	}
	if r.cached.Load() {
		if v, ok := ec.CacheGet(r.cacheKey(part)); ok {
			return v.([]T), nil
		}
	}
	var data []T
	var err error
	if r.checkpointed.Load() {
		data, err = r.readCheckpoint(ec, part)
	} else {
		data, err = r.compute(ec, part)
	}
	if err != nil {
		return nil, err
	}
	if r.cached.Load() {
		ec.CachePut(r.cacheKey(part), data)
	}
	return data, nil
}

// PlacementOf returns the executor index that would compute partition
// p under the RDD's effective placement policy and the installed
// membership epoch. The fallback is the cluster-wide owner math
// (Context.OwnerOf → membership.OwnerOf): with every slot alive it is
// exactly p % NumExecutors, with dead slots it cycles over survivors.
func (r *RDD[T]) PlacementOf(p int) int {
	slots := r.ctx.NumExecutors()
	if pol := r.placementPolicy(); pol != nil {
		view := sched.StageView{Tasks: r.parts, NumExecutors: slots, Alive: r.ctx.LiveExecutors()}
		if e := pol.Place(view, p); e >= 0 && e < slots {
			return e
		}
	}
	return r.ctx.OwnerOf(p)
}

func (r *RDD[T]) checkpointBlockID(part int) string {
	return fmt.Sprintf("ckpt/%d/%d", r.id, part)
}

// Checkpoint materializes every partition into its executor's block
// store and truncates lineage: later materializations read the stored
// bytes instead of recomputing ancestors — Spark's localCheckpoint,
// the other half of its fault-tolerance story. T must be
// serde-encodable.
func (r *RDD[T]) Checkpoint() error {
	h, err := r.ctx.SubmitJob(JobSpec{
		Tasks:  r.parts,
		Policy: r.placementPolicy(),
		Fn: func(ec *ExecContext, task, attempt int) ([]byte, error) {
			data, err := r.Materialize(ec, task)
			if err != nil {
				return nil, err
			}
			wire, err := encodeSlice(data)
			if err != nil {
				return nil, err
			}
			ec.Store.PutLocal(r.checkpointBlockID(task), wire)
			return nil, nil
		},
	})
	if err == nil {
		_, err = h.Wait()
	}
	if err != nil {
		return fmt.Errorf("rdd: checkpoint: %w", err)
	}
	// Remember where each partition's bytes actually landed: the winner
	// executor of each task, which speculation or cache-aware placement
	// may have moved off p % NumExecutors.
	owners := h.Executors()
	r.ckptOwners.Store(&owners)
	r.checkpointed.Store(true)
	// Buddy-replicate each partition so it survives its owner dying,
	// and keep the invariant alive across membership churn.
	if err := r.replicateCheckpoint(); err != nil {
		return fmt.Errorf("rdd: checkpoint replication: %w", err)
	}
	r.ckptHook.Do(r.installCkptRepairHook)
	return nil
}

// readCheckpoint loads a checkpointed partition (fetching across the
// transport when the task ran off the owning executor). Degraded
// paths, in order: the owner's primary block, the buddy replica, and
// finally lineage recomputation — the same ladder Spark's block
// replication + lineage story gives a lost cached partition.
func (r *RDD[T]) readCheckpoint(ec *ExecContext, part int) ([]T, error) {
	ownerExec := r.PlacementOf(part)
	if owners := r.ckptOwners.Load(); owners != nil &&
		part < len(*owners) && (*owners)[part] >= 0 {
		ownerExec = (*owners)[part]
	}
	owner := r.ctx.ExecutorStoreName(ownerExec)
	wire, err := ec.Store.FetchFrom(owner, r.checkpointBlockID(part))
	if err == nil {
		return decodeSlice[T](wire)
	}
	if rep := r.ckptReplicaOf(part); rep >= 0 && rep != ownerExec {
		wire, rerr := ec.Store.FetchFrom(r.ctx.ExecutorStoreName(rep), r.checkpointReplicaID(part))
		if rerr == nil {
			return decodeSlice[T](wire)
		}
	}
	// Last resort: the lineage is still attached (checkpointing here
	// truncates reads, not the recipe), so recompute the partition.
	data, cerr := r.compute(ec, part)
	if cerr != nil {
		return nil, fmt.Errorf("rdd: reading checkpoint of partition %d: %w (lineage recompute also failed: %v)", part, err, cerr)
	}
	return data, nil
}

// newRDD wires an RDD into ctx.
func newRDD[T any](ctx *Context, parts int, compute func(ec *ExecContext, part int) ([]T, error)) *RDD[T] {
	return &RDD[T]{ctx: ctx, id: ctx.newJobID(), parts: parts, compute: compute}
}

// Generate creates an RDD whose partitions are produced by gen. gen
// runs executor-side; it must be deterministic per partition so task
// retries observe identical data.
func Generate[T any](ctx *Context, parts int, gen func(part int) ([]T, error)) *RDD[T] {
	if parts < 1 {
		panic("rdd: Generate needs at least one partition")
	}
	return newRDD(ctx, parts, func(_ *ExecContext, part int) ([]T, error) {
		return gen(part)
	})
}

// FromSlice distributes data across parts partitions by contiguous
// ranges.
func FromSlice[T any](ctx *Context, data []T, parts int) *RDD[T] {
	if parts < 1 {
		panic("rdd: FromSlice needs at least one partition")
	}
	n := len(data)
	return newRDD(ctx, parts, func(_ *ExecContext, part int) ([]T, error) {
		lo := part * n / parts
		hi := (part + 1) * n / parts
		out := make([]T, hi-lo)
		copy(out, data[lo:hi])
		return out, nil
	})
}

// Map applies f to every element.
func Map[T, U any](r *RDD[T], f func(T) U) *RDD[U] {
	return newRDD(r.ctx, r.parts, func(ec *ExecContext, part int) ([]U, error) {
		in, err := r.Materialize(ec, part)
		if err != nil {
			return nil, err
		}
		out := make([]U, len(in))
		for i, v := range in {
			out[i] = f(v)
		}
		return out, nil
	})
}

// Filter keeps the elements for which f is true.
func Filter[T any](r *RDD[T], f func(T) bool) *RDD[T] {
	return newRDD(r.ctx, r.parts, func(ec *ExecContext, part int) ([]T, error) {
		in, err := r.Materialize(ec, part)
		if err != nil {
			return nil, err
		}
		out := in[:0:0]
		for _, v := range in {
			if f(v) {
				out = append(out, v)
			}
		}
		return out, nil
	})
}

// FlatMap applies f and concatenates the results.
func FlatMap[T, U any](r *RDD[T], f func(T) []U) *RDD[U] {
	return newRDD(r.ctx, r.parts, func(ec *ExecContext, part int) ([]U, error) {
		in, err := r.Materialize(ec, part)
		if err != nil {
			return nil, err
		}
		var out []U
		for _, v := range in {
			out = append(out, f(v)...)
		}
		return out, nil
	})
}

// Derive builds a partition-preserving RDD whose compute function
// sees the executor context and materializes the parent lazily. It is
// the hook for executor-aware transformations — f can consult the
// executor's block store or core budget, and skip parent
// materialization entirely when it can produce the partition from
// cached state (e.g. the packed-partition plan, which decodes a
// block-manager block zero-copy instead of re-packing the parent).
func Derive[T, U any](r *RDD[T], f func(ec *ExecContext, part int, parent func() ([]T, error)) ([]U, error)) *RDD[U] {
	return newRDD(r.ctx, r.parts, func(ec *ExecContext, part int) ([]U, error) {
		return f(ec, part, func() ([]T, error) { return r.Materialize(ec, part) })
	})
}

// MapPartitions applies f to each whole partition.
func MapPartitions[T, U any](r *RDD[T], f func(part int, in []T) ([]U, error)) *RDD[U] {
	return newRDD(r.ctx, r.parts, func(ec *ExecContext, part int) ([]U, error) {
		in, err := r.Materialize(ec, part)
		if err != nil {
			return nil, err
		}
		return f(part, in)
	})
}

// Union concatenates two RDDs' partitions.
func Union[T any](a, b *RDD[T]) *RDD[T] {
	if a.ctx != b.ctx {
		panic("rdd: Union across contexts")
	}
	return newRDD(a.ctx, a.parts+b.parts, func(ec *ExecContext, part int) ([]T, error) {
		if part < a.parts {
			return a.Materialize(ec, part)
		}
		return b.Materialize(ec, part-a.parts)
	})
}
