package rdd

import (
	"fmt"
	"sync"

	"sparker/internal/serde"
)

// Broadcast is a read-only value shipped to executors once and cached
// there, like Spark's broadcast variables: the driver serializes the
// value into its block store, and each executor fetches and
// deserializes it at most once regardless of how many tasks read it.
// MLlib-style training uses this shape to distribute model weights
// each iteration.
type Broadcast[T any] struct {
	ctx     *Context
	id      int64
	blockID string

	mu        sync.Mutex
	destroyed bool
}

// NewBroadcast registers value with the driver's block store. T must
// be serde-encodable.
func NewBroadcast[T any](ctx *Context, value T) (*Broadcast[T], error) {
	wire, err := serde.Encode(nil, value)
	if err != nil {
		return nil, fmt.Errorf("rdd: broadcast encode: %w", err)
	}
	id := ctx.newJobID()
	blockID := fmt.Sprintf("broadcast/%d", id)
	if err := ctx.driverStore.Put(blockID, wire); err != nil {
		return nil, fmt.Errorf("rdd: broadcast publish: %w", err)
	}
	return &Broadcast[T]{ctx: ctx, id: id, blockID: blockID}, nil
}

// ID returns the broadcast's unique id.
func (b *Broadcast[T]) ID() int64 { return b.id }

func (b *Broadcast[T]) cacheKey() string {
	return fmt.Sprintf("bcastcache/%d", b.id)
}

// Value returns the broadcast value on an executor, fetching it over
// the transport on first use and serving the executor-local cache
// afterwards. Concurrent first readers may fetch redundantly (like
// Spark, the last write wins; the value is immutable so this is safe).
func (b *Broadcast[T]) Value(ec *ExecContext) (T, error) {
	var zero T
	if v, ok := ec.CacheGet(b.cacheKey()); ok {
		return v.(T), nil
	}
	b.mu.Lock()
	destroyed := b.destroyed
	b.mu.Unlock()
	if destroyed {
		return zero, fmt.Errorf("rdd: broadcast %d used after Destroy", b.id)
	}
	wire, err := ec.Store.Get(b.blockID)
	if err != nil {
		return zero, fmt.Errorf("rdd: broadcast %d fetch: %w", b.id, err)
	}
	v, _, err := serde.Decode(wire)
	if err != nil {
		return zero, fmt.Errorf("rdd: broadcast %d decode: %w", b.id, err)
	}
	tv, ok := v.(T)
	if !ok {
		return zero, fmt.Errorf("rdd: broadcast %d decoded %T", b.id, v)
	}
	ec.CachePut(b.cacheKey(), tv)
	return tv, nil
}

// Destroy removes the broadcast from the driver store and every
// executor cache. Tasks that try to read it afterwards fail.
func (b *Broadcast[T]) Destroy() error {
	b.mu.Lock()
	if b.destroyed {
		b.mu.Unlock()
		return nil
	}
	b.destroyed = true
	b.mu.Unlock()
	b.ctx.driverStore.Delete(b.blockID)
	key := b.cacheKey()
	_, err := b.ctx.RunOnAllExecutors(func(ec *ExecContext, task, attempt int) ([]byte, error) {
		ec.exec.cache.Delete(key)
		return nil, nil
	})
	return err
}
