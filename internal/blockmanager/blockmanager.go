// Package blockmanager reproduces the role of Spark's BlockManager: a
// distributed key-value block store with a driver-side master that
// tracks block locations, and per-executor stores that hold block
// payloads and serve remote fetches.
//
// The rdd engine stores intermediate stage outputs (the "shuffle"
// blocks of treeAggregate) here, and the package also provides the
// BlockManager-based message-passing baseline the paper measured at
// 3861µs latency (Figure 12): every logical message costs a local put,
// two master round-trips and a remote fetch — exactly the chattiness
// that made it 242× slower than MPI and motivated the scalable
// communicator.
package blockmanager

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sparker/internal/metrics"
	"sparker/internal/transport"
)

// Wire protocol commands (1 byte) shared by master and store servers.
const (
	cmdPutLoc   = 1 // blockID, owner           -> ok
	cmdGetLoc   = 2 // blockID                  -> owner ("" if unknown)
	cmdRemove   = 3 // blockID                  -> ok
	cmdEnqueue  = 4 // dst, blockID             -> ok
	cmdDequeue  = 5 // dst                      -> blockID ("" if empty)
	cmdFetch    = 6 // blockID                  -> payload (status byte)
	cmdDelete   = 7 // blockID                  -> ok
	statusOK    = 0
	statusNotOK = 1
)

// --- framing helpers ---------------------------------------------------

func appendStr(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

func readStr(src []byte) (string, []byte, error) {
	if len(src) < 4 {
		return "", nil, fmt.Errorf("blockmanager: short string header")
	}
	n := int(binary.LittleEndian.Uint32(src))
	if len(src) < 4+n {
		return "", nil, fmt.Errorf("blockmanager: short string body")
	}
	return string(src[4 : 4+n]), src[4+n:], nil
}

func appendBytes(dst []byte, b []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

func readBytes(src []byte) ([]byte, []byte, error) {
	if len(src) < 4 {
		return nil, nil, fmt.Errorf("blockmanager: short bytes header")
	}
	n := int(binary.LittleEndian.Uint32(src))
	if len(src) < 4+n {
		return nil, nil, fmt.Errorf("blockmanager: short bytes body")
	}
	return src[4 : 4+n], src[4+n:], nil
}

// --- master ------------------------------------------------------------

// Master is the driver-side directory: block locations plus per-
// destination message queues for the messaging baseline.
type Master struct {
	lis transport.Listener

	mu     sync.Mutex
	loc    map[string]string   // blockID -> store name
	queues map[string][]string // dst store -> pending blockIDs
	done   chan struct{}
}

// MasterAddr is the well-known address of the block manager master.
const MasterAddr transport.Addr = "bm/master"

// NewMaster starts the master service on net.
func NewMaster(net transport.Network) (*Master, error) {
	lis, err := net.Listen(MasterAddr)
	if err != nil {
		return nil, err
	}
	m := &Master{
		lis:    lis,
		loc:    map[string]string{},
		queues: map[string][]string{},
		done:   make(chan struct{}),
	}
	go m.serve()
	return m, nil
}

func (m *Master) serve() {
	for {
		c, err := m.lis.Accept()
		if err != nil {
			return
		}
		go m.handle(c)
	}
}

func (m *Master) handle(c transport.Conn) {
	defer c.Close()
	for {
		req, err := c.Recv()
		if err != nil {
			return
		}
		if len(req) < 1 {
			return
		}
		resp := m.dispatch(req)
		if err := c.Send(resp); err != nil {
			return
		}
	}
}

func (m *Master) dispatch(req []byte) []byte {
	cmd, body := req[0], req[1:]
	m.mu.Lock()
	defer m.mu.Unlock()
	switch cmd {
	case cmdPutLoc:
		id, rest, err := readStr(body)
		if err != nil {
			return []byte{statusNotOK}
		}
		owner, _, err := readStr(rest)
		if err != nil {
			return []byte{statusNotOK}
		}
		m.loc[id] = owner
		return []byte{statusOK}
	case cmdGetLoc:
		id, _, err := readStr(body)
		if err != nil {
			return []byte{statusNotOK}
		}
		return appendStr([]byte{statusOK}, m.loc[id])
	case cmdRemove:
		id, _, err := readStr(body)
		if err != nil {
			return []byte{statusNotOK}
		}
		delete(m.loc, id)
		return []byte{statusOK}
	case cmdEnqueue:
		dst, rest, err := readStr(body)
		if err != nil {
			return []byte{statusNotOK}
		}
		id, _, err := readStr(rest)
		if err != nil {
			return []byte{statusNotOK}
		}
		m.queues[dst] = append(m.queues[dst], id)
		return []byte{statusOK}
	case cmdDequeue:
		dst, _, err := readStr(body)
		if err != nil {
			return []byte{statusNotOK}
		}
		q := m.queues[dst]
		if len(q) == 0 {
			return appendStr([]byte{statusOK}, "")
		}
		id := q[0]
		m.queues[dst] = q[1:]
		return appendStr([]byte{statusOK}, id)
	default:
		return []byte{statusNotOK}
	}
}

// Close stops the master.
func (m *Master) Close() error {
	select {
	case <-m.done:
	default:
		close(m.done)
	}
	return m.lis.Close()
}

// --- store ---------------------------------------------------------------

// Store is one executor's block shard. It serves remote fetches and
// talks to the master for location metadata.
type Store struct {
	name string
	net  transport.Network
	lis  transport.Listener

	mu     sync.Mutex
	blocks map[string][]byte
	seq    uint64

	masterMu   sync.Mutex
	masterConn transport.Conn

	peerMu    sync.Mutex
	peerConns map[string]*peerConn

	// accepted tracks inbound serving conns so Close severs them: a
	// killed store must stop answering fetches through conns its peers
	// cached, or a replacement's clients could read the dead
	// incarnation's stale blocks.
	acceptMu sync.Mutex
	accepted map[transport.Conn]struct{}
	closed   bool

	// inst, when set, carries the put/get histograms of the owning
	// executor's registry. Atomic pointer so SetMetrics is safe against
	// in-flight block traffic; nil keeps the store uninstrumented (one
	// pointer load per operation, no clock reads).
	inst atomic.Pointer[storeInstruments]
}

// storeInstruments bundles the block-I/O histograms resolved once at
// SetMetrics time so the data path never takes the registry lock.
type storeInstruments struct {
	putNS, putBytes *metrics.Histogram
	getNS, getBytes *metrics.Histogram
}

// SetMetrics wires block put/get latency and size histograms into reg.
// Nil reg disables instrumentation.
func (s *Store) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		s.inst.Store(nil)
		return
	}
	s.inst.Store(&storeInstruments{
		putNS:    reg.Histogram(metrics.HistBlockPutNS),
		putBytes: reg.Histogram(metrics.HistBlockPutBytes),
		getNS:    reg.Histogram(metrics.HistBlockGetNS),
		getBytes: reg.Histogram(metrics.HistBlockGetBytes),
	})
}

type peerConn struct {
	mu   sync.Mutex
	conn transport.Conn
}

func storeAddr(name string) transport.Addr {
	return transport.Addr("bm/store/" + name)
}

// NewStore starts the block store named name on net. A Master must be
// running on the same net before Get or messaging is used.
func NewStore(net transport.Network, name string) (*Store, error) {
	lis, err := net.Listen(storeAddr(name))
	if err != nil {
		return nil, err
	}
	s := &Store{
		name:      name,
		net:       net,
		lis:       lis,
		blocks:    map[string][]byte{},
		peerConns: map[string]*peerConn{},
		accepted:  map[transport.Conn]struct{}{},
	}
	go s.serve()
	return s, nil
}

// Name returns the store's registered name.
func (s *Store) Name() string { return s.name }

func (s *Store) serve() {
	for {
		c, err := s.lis.Accept()
		if err != nil {
			return
		}
		s.acceptMu.Lock()
		if s.closed {
			s.acceptMu.Unlock()
			c.Close()
			return
		}
		s.accepted[c] = struct{}{}
		s.acceptMu.Unlock()
		go s.handle(c)
	}
}

func (s *Store) handle(c transport.Conn) {
	defer func() {
		s.acceptMu.Lock()
		delete(s.accepted, c)
		s.acceptMu.Unlock()
		c.Close()
	}()
	for {
		req, err := c.Recv()
		if err != nil {
			return
		}
		if len(req) < 1 {
			return
		}
		cmd, body := req[0], req[1:]
		var resp []byte
		switch cmd {
		case cmdFetch:
			id, _, err := readStr(body)
			if err != nil {
				resp = []byte{statusNotOK}
				break
			}
			s.mu.Lock()
			b, ok := s.blocks[id]
			s.mu.Unlock()
			if !ok {
				resp = []byte{statusNotOK}
				break
			}
			resp = appendBytes([]byte{statusOK}, b)
		case cmdDelete:
			id, _, err := readStr(body)
			if err != nil {
				resp = []byte{statusNotOK}
				break
			}
			s.mu.Lock()
			delete(s.blocks, id)
			s.mu.Unlock()
			resp = []byte{statusOK}
		default:
			resp = []byte{statusNotOK}
		}
		if err := c.Send(resp); err != nil {
			return
		}
	}
}

// master issues one request/response against the master service.
func (s *Store) master(req []byte) ([]byte, error) {
	s.masterMu.Lock()
	defer s.masterMu.Unlock()
	if s.masterConn == nil {
		c, err := s.net.Dial(MasterAddr)
		if err != nil {
			return nil, err
		}
		s.masterConn = c
	}
	if err := s.masterConn.Send(req); err != nil {
		return nil, err
	}
	return s.masterConn.Recv()
}

// peer issues one request/response against another store.
func (s *Store) peer(name string, req []byte) ([]byte, error) {
	s.peerMu.Lock()
	pc, ok := s.peerConns[name]
	if !ok {
		pc = &peerConn{}
		s.peerConns[name] = pc
	}
	s.peerMu.Unlock()

	pc.mu.Lock()
	defer pc.mu.Unlock()
	// One redial on failure: a cached conn goes stale when the peer
	// dies, and under elastic membership a replacement may be serving
	// the same store address by the time we retry.
	for attempt := 0; ; attempt++ {
		if pc.conn == nil {
			c, err := s.net.Dial(storeAddr(name))
			if err != nil {
				return nil, err
			}
			pc.conn = c
		}
		resp, err := func() ([]byte, error) {
			if err := pc.conn.Send(req); err != nil {
				return nil, err
			}
			return pc.conn.Recv()
		}()
		if err == nil {
			return resp, nil
		}
		pc.conn.Close()
		pc.conn = nil
		if attempt >= 1 {
			return nil, err
		}
	}
}

// Put stores a block locally and registers its location with the
// master.
func (s *Store) Put(id string, payload []byte) error {
	if inst := s.inst.Load(); inst != nil {
		start := time.Now()
		defer func() {
			inst.putNS.Observe(time.Since(start).Nanoseconds())
			inst.putBytes.Observe(int64(len(payload)))
		}()
	}
	s.mu.Lock()
	s.blocks[id] = payload
	s.mu.Unlock()
	resp, err := s.master(appendStr(appendStr([]byte{cmdPutLoc}, id), s.name))
	if err != nil {
		return err
	}
	if len(resp) < 1 || resp[0] != statusOK {
		return fmt.Errorf("blockmanager: master rejected PutLoc(%s)", id)
	}
	return nil
}

// PutLocal stores a block without registering it (used for blocks whose
// location the scheduler already knows, e.g. shuffle outputs).
func (s *Store) PutLocal(id string, payload []byte) {
	if inst := s.inst.Load(); inst != nil {
		start := time.Now()
		defer func() {
			inst.putNS.Observe(time.Since(start).Nanoseconds())
			inst.putBytes.Observe(int64(len(payload)))
		}()
	}
	s.mu.Lock()
	s.blocks[id] = payload
	s.mu.Unlock()
}

// GetLocal returns a locally stored block.
func (s *Store) GetLocal(id string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blocks[id]
	return b, ok
}

// BlockInfo describes one resident block for introspection.
type BlockInfo struct {
	ID    string `json:"id"`
	Bytes int    `json:"bytes"`
}

// List returns the store's resident blocks sorted by ID — the
// block-manager residency view of /debug/sparker/blocks.
func (s *Store) List() []BlockInfo {
	s.mu.Lock()
	out := make([]BlockInfo, 0, len(s.blocks))
	for id, b := range s.blocks {
		out = append(out, BlockInfo{ID: id, Bytes: len(b)})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Delete removes a local block.
func (s *Store) Delete(id string) {
	s.mu.Lock()
	delete(s.blocks, id)
	s.mu.Unlock()
}

// DeletePrefix removes every local block whose id starts with prefix,
// returning how many were removed. Stage cleanup uses it to drop a
// job's shuffle outputs.
func (s *Store) DeletePrefix(prefix string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for id := range s.blocks {
		if len(id) >= len(prefix) && id[:len(prefix)] == prefix {
			delete(s.blocks, id)
			n++
		}
	}
	return n
}

// FetchFrom retrieves a block directly from the named store.
func (s *Store) FetchFrom(owner, id string) (block []byte, err error) {
	if inst := s.inst.Load(); inst != nil {
		start := time.Now()
		defer func() {
			inst.getNS.Observe(time.Since(start).Nanoseconds())
			if err == nil {
				inst.getBytes.Observe(int64(len(block)))
			}
		}()
	}
	if owner == s.name {
		b, ok := s.GetLocal(id)
		if !ok {
			return nil, fmt.Errorf("blockmanager: block %s not found locally", id)
		}
		return b, nil
	}
	resp, err := s.peer(owner, appendStr([]byte{cmdFetch}, id))
	if err != nil {
		return nil, err
	}
	if len(resp) < 1 || resp[0] != statusOK {
		return nil, fmt.Errorf("blockmanager: block %s not found at %s", id, owner)
	}
	b, _, err := readBytes(resp[1:])
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), b...), nil
}

// Get resolves a block's location through the master, then fetches it.
func (s *Store) Get(id string) ([]byte, error) {
	resp, err := s.master(appendStr([]byte{cmdGetLoc}, id))
	if err != nil {
		return nil, err
	}
	if len(resp) < 1 || resp[0] != statusOK {
		return nil, fmt.Errorf("blockmanager: GetLoc(%s) failed", id)
	}
	owner, _, err := readStr(resp[1:])
	if err != nil {
		return nil, err
	}
	if owner == "" {
		return nil, fmt.Errorf("blockmanager: block %s unknown to master", id)
	}
	return s.FetchFrom(owner, id)
}

// --- BlockManager-based message passing (the slow baseline) -----------

// SendMessage delivers payload to the store named dst through the block
// machinery: local put + master PutLoc + master Enqueue. This is the
// "adapted Spark BlockManager into a communication library" baseline of
// §4.1/Figure 12.
func (s *Store) SendMessage(dst string, payload []byte) error {
	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("msg/%s/%d", s.name, s.seq)
	s.mu.Unlock()
	if err := s.Put(id, payload); err != nil {
		return err
	}
	resp, err := s.master(appendStr(appendStr([]byte{cmdEnqueue}, dst), id))
	if err != nil {
		return err
	}
	if len(resp) < 1 || resp[0] != statusOK {
		return fmt.Errorf("blockmanager: enqueue to %s failed", dst)
	}
	return nil
}

// RecvMessage blocks (polling the master) until a message addressed to
// this store arrives, fetches it from the owner, and cleans it up.
func (s *Store) RecvMessage() ([]byte, error) {
	backoff := 50 * time.Microsecond
	for {
		resp, err := s.master(appendStr([]byte{cmdDequeue}, s.name))
		if err != nil {
			return nil, err
		}
		if len(resp) < 1 || resp[0] != statusOK {
			return nil, fmt.Errorf("blockmanager: dequeue failed")
		}
		id, _, err := readStr(resp[1:])
		if err != nil {
			return nil, err
		}
		if id == "" {
			time.Sleep(backoff)
			if backoff < 2*time.Millisecond {
				backoff *= 2
			}
			continue
		}
		// Resolve and fetch.
		payload, err := s.Get(id)
		if err != nil {
			return nil, err
		}
		// Clean up: remove from owner and master.
		locResp, err := s.master(appendStr([]byte{cmdGetLoc}, id))
		if err == nil && len(locResp) >= 1 && locResp[0] == statusOK {
			if owner, _, err := readStr(locResp[1:]); err == nil && owner != "" && owner != s.name {
				s.peer(owner, appendStr([]byte{cmdDelete}, id))
			}
		}
		s.master(appendStr([]byte{cmdRemove}, id))
		return payload, nil
	}
}

// Close stops the store's server.
func (s *Store) Close() error {
	s.masterMu.Lock()
	if s.masterConn != nil {
		s.masterConn.Close()
		s.masterConn = nil
	}
	s.masterMu.Unlock()
	s.peerMu.Lock()
	for _, pc := range s.peerConns {
		pc.mu.Lock()
		if pc.conn != nil {
			pc.conn.Close()
		}
		pc.mu.Unlock()
	}
	s.peerConns = map[string]*peerConn{}
	s.peerMu.Unlock()
	s.acceptMu.Lock()
	s.closed = true
	for c := range s.accepted {
		c.Close()
	}
	s.accepted = map[transport.Conn]struct{}{}
	s.acceptMu.Unlock()
	return s.lis.Close()
}
