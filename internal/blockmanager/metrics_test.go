package blockmanager

import (
	"testing"

	"sparker/internal/metrics"
)

// TestStoreInstruments verifies the put/get histograms: puts observe
// latency and payload size, remote fetches observe on the fetching
// store, and failed fetches count latency without bytes.
func TestStoreInstruments(t *testing.T) {
	_, ss, done := setup(t, 2)
	defer done()

	reg0 := metrics.NewRegistry()
	reg1 := metrics.NewRegistry()
	ss[0].SetMetrics(reg0)
	ss[1].SetMetrics(reg1)

	payload := []byte("0123456789")
	if err := ss[0].Put("blk", payload); err != nil {
		t.Fatal(err)
	}
	putNS := reg0.Histogram(metrics.HistBlockPutNS).Snapshot()
	putBytes := reg0.Histogram(metrics.HistBlockPutBytes).Snapshot()
	if putNS.Count != 1 || putBytes.Count != 1 {
		t.Fatalf("put observed %d/%d samples, want 1/1", putNS.Count, putBytes.Count)
	}
	if putBytes.Sum != int64(len(payload)) {
		t.Fatalf("put bytes sum = %d, want %d", putBytes.Sum, len(payload))
	}

	if _, err := ss[1].FetchFrom("exec-0", "blk"); err != nil {
		t.Fatal(err)
	}
	getNS := reg1.Histogram(metrics.HistBlockGetNS).Snapshot()
	getBytes := reg1.Histogram(metrics.HistBlockGetBytes).Snapshot()
	if getNS.Count != 1 || getBytes.Count != 1 {
		t.Fatalf("get observed %d/%d samples, want 1/1", getNS.Count, getBytes.Count)
	}
	if getBytes.Sum != int64(len(payload)) {
		t.Fatalf("get bytes sum = %d, want %d", getBytes.Sum, len(payload))
	}

	// A failed fetch times the attempt but records no bytes.
	if _, err := ss[1].FetchFrom("exec-0", "missing"); err == nil {
		t.Fatal("fetch of a missing block succeeded")
	}
	if got := reg1.Histogram(metrics.HistBlockGetNS).Count(); got != 2 {
		t.Fatalf("failed fetch not timed: count = %d, want 2", got)
	}
	if got := reg1.Histogram(metrics.HistBlockGetBytes).Count(); got != 1 {
		t.Fatalf("failed fetch recorded bytes: count = %d, want 1", got)
	}
}

func TestStoreWithoutMetrics(t *testing.T) {
	_, ss, done := setup(t, 1)
	defer done()
	ss[0].SetMetrics(nil) // explicit nil: instruments stay off
	if err := ss[0].Put("a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if b, ok := ss[0].GetLocal("a"); !ok || string(b) != "x" {
		t.Fatalf("GetLocal = %q, %v", b, ok)
	}
}
