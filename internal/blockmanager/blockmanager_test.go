package blockmanager

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"sparker/internal/transport"
)

func setup(t *testing.T, stores int) (*Master, []*Store, func()) {
	t.Helper()
	net := transport.NewMem()
	m, err := NewMaster(net)
	if err != nil {
		t.Fatal(err)
	}
	ss := make([]*Store, stores)
	for i := range ss {
		s, err := NewStore(net, fmt.Sprintf("exec-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		ss[i] = s
	}
	return m, ss, func() {
		for _, s := range ss {
			s.Close()
		}
		m.Close()
		net.Close()
	}
}

func TestPutGetLocal(t *testing.T) {
	_, ss, done := setup(t, 1)
	defer done()
	s := ss[0]
	if err := s.Put("a", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	b, ok := s.GetLocal("a")
	if !ok || string(b) != "payload" {
		t.Fatalf("GetLocal = %q, %v", b, ok)
	}
	s.Delete("a")
	if _, ok := s.GetLocal("a"); ok {
		t.Fatal("block survived Delete")
	}
}

func TestRemoteGetViaMaster(t *testing.T) {
	_, ss, done := setup(t, 3)
	defer done()
	if err := ss[2].Put("big-block", []byte{9, 8, 7}); err != nil {
		t.Fatal(err)
	}
	got, err := ss[0].Get("big-block")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{9, 8, 7}) {
		t.Fatalf("Get = %v", got)
	}
}

func TestGetUnknownBlock(t *testing.T) {
	_, ss, done := setup(t, 1)
	defer done()
	if _, err := ss[0].Get("missing"); err == nil {
		t.Fatal("Get of unknown block should fail")
	}
}

func TestFetchFromDirect(t *testing.T) {
	_, ss, done := setup(t, 2)
	defer done()
	ss[1].PutLocal("shuffle/0/1", []byte("segment"))
	got, err := ss[0].FetchFrom("exec-1", "shuffle/0/1")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "segment" {
		t.Fatalf("FetchFrom = %q", got)
	}
	// Missing block reports an error, not a hang.
	if _, err := ss[0].FetchFrom("exec-1", "nope"); err == nil {
		t.Fatal("FetchFrom missing block should fail")
	}
	// Local fast path.
	ss[0].PutLocal("local", []byte("x"))
	if got, err := ss[0].FetchFrom("exec-0", "local"); err != nil || string(got) != "x" {
		t.Fatalf("local FetchFrom = %q, %v", got, err)
	}
}

func TestMessaging(t *testing.T) {
	_, ss, done := setup(t, 2)
	defer done()
	const msgs = 20
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < msgs; i++ {
			if err := ss[0].SendMessage("exec-1", []byte(fmt.Sprintf("m%d", i))); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < msgs; i++ {
			b, err := ss[1].RecvMessage()
			if err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			if want := fmt.Sprintf("m%d", i); string(b) != want {
				t.Errorf("message %d: got %q want %q", i, b, want)
				return
			}
		}
	}()
	wg.Wait()
}

func TestMessagingCleansUp(t *testing.T) {
	_, ss, done := setup(t, 2)
	defer done()
	if err := ss[0].SendMessage("exec-1", []byte("once")); err != nil {
		t.Fatal(err)
	}
	if _, err := ss[1].RecvMessage(); err != nil {
		t.Fatal(err)
	}
	// The block must be gone from the sender and from the master.
	ss[0].mu.Lock()
	n := len(ss[0].blocks)
	ss[0].mu.Unlock()
	if n != 0 {
		t.Errorf("sender still holds %d blocks after delivery", n)
	}
}

func TestPingPongLatencyPath(t *testing.T) {
	// A full round trip through the BM messaging path exercises every
	// protocol hop used by the Figure-12 baseline measurement.
	_, ss, done := setup(t, 2)
	defer done()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		b, err := ss[1].RecvMessage()
		if err != nil {
			t.Error(err)
			return
		}
		if err := ss[1].SendMessage("exec-0", b); err != nil {
			t.Error(err)
		}
	}()
	if err := ss[0].SendMessage("exec-1", []byte("ping")); err != nil {
		t.Fatal(err)
	}
	got, err := ss[0].RecvMessage()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "ping" {
		t.Fatalf("pong = %q", got)
	}
	wg.Wait()
}

func TestConcurrentPutsAndGets(t *testing.T) {
	_, ss, done := setup(t, 4)
	defer done()
	var wg sync.WaitGroup
	for i, s := range ss {
		wg.Add(1)
		go func(i int, s *Store) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				id := fmt.Sprintf("b/%d/%d", i, j)
				if err := s.Put(id, []byte(id)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(i, s)
	}
	wg.Wait()
	// Every store can read every block.
	for _, s := range ss {
		for i := range ss {
			id := fmt.Sprintf("b/%d/%d", i, 13)
			b, err := s.Get(id)
			if err != nil {
				t.Fatalf("%s Get(%s): %v", s.Name(), id, err)
			}
			if string(b) != id {
				t.Fatalf("Get(%s) = %q", id, b)
			}
		}
	}
}

func TestDeletePrefixAndName(t *testing.T) {
	_, ss, done := setup(t, 1)
	defer done()
	s := ss[0]
	if s.Name() != "exec-0" {
		t.Fatalf("Name = %q", s.Name())
	}
	s.PutLocal("agg/1/a", []byte{1})
	s.PutLocal("agg/1/b", []byte{2})
	s.PutLocal("agg/2/a", []byte{3})
	if n := s.DeletePrefix("agg/1/"); n != 2 {
		t.Fatalf("DeletePrefix removed %d, want 2", n)
	}
	if _, ok := s.GetLocal("agg/1/a"); ok {
		t.Fatal("prefixed block survived")
	}
	if _, ok := s.GetLocal("agg/2/a"); !ok {
		t.Fatal("unrelated block removed")
	}
	if n := s.DeletePrefix("nothing/"); n != 0 {
		t.Fatalf("empty DeletePrefix removed %d", n)
	}
}
