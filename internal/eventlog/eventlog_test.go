package eventlog

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"sparker/internal/metrics"
)

func TestLogReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf)
	l.Phase(metrics.PhaseAggCompute, 3*time.Second, "stage 1")
	l.Phase(metrics.PhaseAggReduce, 7*time.Second, "combine")
	l.Log("job", "train", 10*time.Second, "")
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events", len(events))
	}
	if events[0].Name != metrics.PhaseAggCompute || events[0].DurationNS != int64(3*time.Second) {
		t.Fatalf("event 0 = %+v", events[0])
	}
	if events[1].Detail != "combine" {
		t.Fatalf("detail lost: %+v", events[1])
	}
}

func TestNilLoggerIsSafe(t *testing.T) {
	var l *Logger
	l.Phase("x", time.Second, "")
	l.Log("a", "b", 0, "")
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeRecoversDecomposition(t *testing.T) {
	events := []Event{
		{Kind: "phase", Name: metrics.PhaseAggCompute, DurationNS: int64(30 * time.Second)},
		{Kind: "phase", Name: metrics.PhaseAggReduce, DurationNS: int64(50 * time.Second)},
		{Kind: "phase", Name: metrics.PhaseAggCompute, DurationNS: int64(10 * time.Second)},
		{Kind: "phase", Name: metrics.PhaseNonAgg, DurationNS: int64(20 * time.Second)},
		{Kind: "job", Name: "irrelevant", DurationNS: int64(time.Hour)},
	}
	b := Analyze(events)
	if b.Total != 110*time.Second {
		t.Fatalf("Total = %v", b.Total)
	}
	if b.Phases[metrics.PhaseAggCompute] != 40*time.Second {
		t.Fatalf("agg-compute = %v", b.Phases[metrics.PhaseAggCompute])
	}
	// The Section-2 analysis: aggregation share and hotspot.
	share := b.Share(metrics.PhaseAggCompute, metrics.PhaseAggReduce)
	if share < 0.81 || share > 0.82 { // 90/110
		t.Fatalf("aggregation share = %v", share)
	}
	name, d := b.Hotspot()
	if name != metrics.PhaseAggReduce || d != 50*time.Second {
		t.Fatalf("hotspot = %s %v", name, d)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	b := Analyze(nil)
	if b.Total != 0 || b.Share("x") != 0 {
		t.Fatal("empty analysis should be zero")
	}
	if name, _ := b.Hotspot(); name != "" {
		t.Fatalf("empty hotspot = %q", name)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage should fail")
	}
	events, err := Read(strings.NewReader(""))
	if err != nil || len(events) != 0 {
		t.Fatalf("empty log: %v %v", events, err)
	}
}
