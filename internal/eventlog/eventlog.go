// Package eventlog reproduces the methodology of the paper's Section
// 2: the authors found MLlib's bottleneck by analyzing Spark's history
// logs. The engine emits structured events (jobs, stages, phase
// timings) as JSON lines; Analyze folds a log back into the
// aggregation / non-aggregation / driver decomposition of Figure 2 and
// the compute-vs-reduce split of Figures 3-4.
package eventlog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// KindSpan marks trace-span records (see internal/trace): the
// fine-grained refinement of phase events that carries causal identity
// across driver, executors and ring steps.
const KindSpan = "span"

// The coarse history-log record kinds. Analyze and the server's
// history replay switch on these.
const (
	KindPhase  = "phase"
	KindJob    = "job"
	KindMarker = "marker"
)

// Event is one history-log record.
type Event struct {
	// Time is the wall-clock timestamp, nanoseconds. For spans this is
	// the span start.
	Time int64 `json:"time"`
	// Kind is "phase", "job", "marker" or "span".
	Kind string `json:"kind"`
	// Name is the phase name (metrics.Phase*), job label or span name.
	Name string `json:"name"`
	// DurationNS is the elapsed time attributed to the event.
	DurationNS int64 `json:"duration_ns"`
	// Detail carries free-form context (workload name, message size…).
	Detail string `json:"detail,omitempty"`
	// TraceID/SpanID/ParentID identify span events. They are 64-bit IDs
	// rendered as fixed-width hex, not numbers, so JSON tooling cannot
	// lose low bits to float64 rounding.
	TraceID  string `json:"trace_id,omitempty"`
	SpanID   string `json:"span_id,omitempty"`
	ParentID string `json:"parent_id,omitempty"`
	// Attrs carries span annotations (executor ID, ring channel, epoch,
	// byte counts, error text…).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Logger serializes events to an io.Writer as JSON lines. Safe for
// concurrent use. A nil *Logger drops events, so call sites need no
// guards.
type Logger struct {
	mu  sync.Mutex
	w   *bufio.Writer
	enc *json.Encoder
	now func() time.Time
}

// New creates a logger writing to w.
func New(w io.Writer) *Logger {
	bw := bufio.NewWriter(w)
	return &Logger{w: bw, enc: json.NewEncoder(bw), now: time.Now}
}

// Log records one event.
func (l *Logger) Log(kind, name string, d time.Duration, detail string) {
	if l == nil {
		return
	}
	l.Emit(Event{
		Time:       0, // stamped under the lock
		Kind:       kind,
		Name:       name,
		DurationNS: d.Nanoseconds(),
		Detail:     detail,
	})
}

// Emit records a fully-formed event. A zero Time is stamped with the
// logger's clock; span emitters pass their own start timestamps.
func (l *Logger) Emit(e Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if e.Time == 0 {
		e.Time = l.now().UnixNano()
	}
	l.enc.Encode(e)
}

// Phase records a named phase duration.
func (l *Logger) Phase(name string, d time.Duration, detail string) {
	l.Log(KindPhase, name, d, detail)
}

// Marker records a durationless event — a mode change, degradation or
// recovery the analysis should see in the timeline (e.g. a ring
// collective falling back to tree aggregation).
func (l *Logger) Marker(name, detail string) {
	l.Log(KindMarker, name, 0, detail)
}

// Flush drains buffered events.
func (l *Logger) Flush() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Flush()
}

// Read parses a history log.
func Read(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("eventlog: line %d: %w", line, err)
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

// Breakdown is the Figure-2-style decomposition recovered from a log.
type Breakdown struct {
	// Phases maps phase name to total attributed time.
	Phases map[string]time.Duration
	// Total is the sum over phases.
	Total time.Duration
}

// Share returns the fraction of Total spent in the named phases.
func (b Breakdown) Share(names ...string) float64 {
	if b.Total == 0 {
		return 0
	}
	var s time.Duration
	for _, n := range names {
		s += b.Phases[n]
	}
	return float64(s) / float64(b.Total)
}

// Hotspot returns the phase with the largest attributed time.
func (b Breakdown) Hotspot() (string, time.Duration) {
	names := make([]string, 0, len(b.Phases))
	for n := range b.Phases {
		names = append(names, n)
	}
	sort.Strings(names) // deterministic ties
	var best string
	var bestD time.Duration
	for _, n := range names {
		if b.Phases[n] > bestD {
			best, bestD = n, b.Phases[n]
		}
	}
	return best, bestD
}

// Analyze folds phase events into a Breakdown — the §2.3 analysis that
// revealed tree aggregation as the hot-spot.
func Analyze(events []Event) Breakdown {
	b := Breakdown{Phases: map[string]time.Duration{}}
	for _, e := range events {
		if e.Kind != KindPhase {
			continue
		}
		d := time.Duration(e.DurationNS)
		b.Phases[e.Name] += d
		b.Total += d
	}
	return b
}
