package mutobj

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetOrCreateInitOnce(t *testing.T) {
	m := NewManager()
	var inits int32
	var mu sync.Mutex
	const goroutines = 32
	var wg sync.WaitGroup
	objs := make([]*Object, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			objs[i] = m.GetOrCreate("k", func() any {
				mu.Lock()
				inits++
				mu.Unlock()
				return 0
			})
		}(i)
	}
	wg.Wait()
	if inits != 1 {
		t.Fatalf("init ran %d times, want 1", inits)
	}
	for i := 1; i < goroutines; i++ {
		if objs[i] != objs[0] {
			t.Fatal("GetOrCreate returned different objects for same key")
		}
	}
}

func TestConcurrentUpdates(t *testing.T) {
	m := NewManager()
	o := m.GetOrCreate("sum", func() any { return 0 })
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				o.Update(func(v any) any { return v.(int) + 1 })
			}
		}()
	}
	wg.Wait()
	if got := o.Value().(int); got != workers*per {
		t.Fatalf("sum = %d, want %d", got, workers*per)
	}
}

func TestClearPrefix(t *testing.T) {
	m := NewManager()
	for stage := 0; stage < 3; stage++ {
		for part := 0; part < 4; part++ {
			m.GetOrCreate(fmt.Sprintf("stage-%d/obj-%d", stage, part), func() any { return part })
		}
	}
	if n := m.ClearPrefix("stage-1/"); n != 4 {
		t.Fatalf("ClearPrefix removed %d, want 4", n)
	}
	if m.Len() != 8 {
		t.Fatalf("Len = %d, want 8", m.Len())
	}
	if m.Get("stage-1/obj-0") != nil {
		t.Fatal("cleared object still present")
	}
	if m.Get("stage-0/obj-0") == nil {
		t.Fatal("unrelated object removed")
	}
}

func TestRemoveAndGet(t *testing.T) {
	m := NewManager()
	if m.Get("x") != nil {
		t.Fatal("Get of missing key should be nil")
	}
	m.GetOrCreate("x", func() any { return "v" })
	if m.Get("x") == nil {
		t.Fatal("Get after create should find object")
	}
	m.Remove("x")
	if m.Get("x") != nil {
		t.Fatal("Get after Remove should be nil")
	}
}

func TestReadSeesUpdates(t *testing.T) {
	m := NewManager()
	o := m.GetOrCreate("v", func() any { return []float64{1, 2} })
	o.Update(func(v any) any {
		s := v.([]float64)
		s[0] = 10
		return s
	})
	var got float64
	o.Read(func(v any) { got = v.([]float64)[0] })
	if got != 10 {
		t.Fatalf("Read saw %v, want 10", got)
	}
}
