// Package mutobj implements Sparker's mutable object manager: per-
// executor storage for intermediate state shared by tasks running on
// the same executor. In-memory merge (IMM) uses it to accumulate task
// results into a single value per executor before anything is
// serialized, and split aggregation reads the merged aggregator back
// out of it from the statically scheduled reduce-scatter task.
package mutobj

import (
	"strings"
	"sync"
)

// Manager owns the shared objects of one executor.
type Manager struct {
	mu   sync.Mutex
	objs map[string]*Object
}

// NewManager returns an empty manager.
func NewManager() *Manager {
	return &Manager{objs: map[string]*Object{}}
}

// Object is a single shared mutable value. All access goes through
// Update/Read so concurrent tasks on the executor's cores serialize
// correctly.
type Object struct {
	mu    sync.Mutex
	value any
}

// GetOrCreate returns the object stored under key, creating it with
// init on first use. Creation is atomic: init runs at most once per
// key even under concurrent callers.
func (m *Manager) GetOrCreate(key string, init func() any) *Object {
	m.mu.Lock()
	o, ok := m.objs[key]
	if !ok {
		o = &Object{}
		m.objs[key] = o
		// Initialize while holding the object lock but not the manager
		// lock, so slow inits don't block unrelated keys.
		o.mu.Lock()
		m.mu.Unlock()
		o.value = init()
		o.mu.Unlock()
		return o
	}
	m.mu.Unlock()
	return o
}

// Get returns the object under key, or nil if absent.
func (m *Manager) Get(key string) *Object {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.objs[key]
}

// Remove deletes the object under key.
func (m *Manager) Remove(key string) {
	m.mu.Lock()
	delete(m.objs, key)
	m.mu.Unlock()
}

// ClearPrefix removes every object whose key starts with prefix and
// reports how many were removed. Stage cleanup after an IMM task
// failure uses this: the paper's recovery story is "clean up the failed
// stage stored in the shared in-memory value, then re-submit the
// stage" (§3.2).
func (m *Manager) ClearPrefix(prefix string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for k := range m.objs {
		if strings.HasPrefix(k, prefix) {
			delete(m.objs, k)
			n++
		}
	}
	return n
}

// Len reports the number of live objects.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.objs)
}

// Update applies f to the value under the object lock, storing f's
// return value.
func (o *Object) Update(f func(v any) any) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.value = f(o.value)
}

// Read calls f with the value under the object lock.
func (o *Object) Read(f func(v any)) {
	o.mu.Lock()
	defer o.mu.Unlock()
	f(o.value)
}

// Value returns the current value. The caller must not mutate shared
// state reachable from it without holding the object lock via Update.
func (o *Object) Value() any {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.value
}
