package bench

// SchedStraggler is the before/after evidence for the stage scheduler's
// speculative execution (DESIGN.md "Stage scheduling"): the same
// multi-wave stage is timed on three clusters — healthy, one executor's
// task channel delayed 10× the task runtime with speculation off, and
// the same straggler with speculation on. Every mode must produce
// bitwise-identical per-task payloads; the speculation-on wall clock is
// the claim under test (≤ 2× the healthy baseline, versus the
// speculation-off run which pays the full transport delay serially).
//
// `make bench-compare` renders this as BENCH_PR5.json.

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"sparker/internal/metrics"
	"sparker/internal/rdd"
	"sparker/internal/transport"
)

// schedParams sizes one straggler comparison.
type schedParams struct {
	execs, cores int
	tasks        int
	taskRuntime  time.Duration
	// delay is the one-way transport delay injected on the straggler's
	// task channel (applied per message, so frames in and results out
	// both pay it).
	delay  time.Duration
	trials int
}

// defaultSchedParams: 16 slots, 4 waves of 30ms tasks, executor 0
// delayed 10× the task runtime.
var defaultSchedParams = schedParams{
	execs: 4, cores: 4,
	tasks:       64,
	taskRuntime: 30 * time.Millisecond,
	delay:       300 * time.Millisecond,
	trials:      3,
}

// schedModeResult is one mode's measurement across trials.
type schedModeResult struct {
	walls            []time.Duration
	wallP50, wallP95 time.Duration
	stageP50         time.Duration // sched.stage.ns across trials
	taskP50, taskP95 time.Duration // sched.task.ns across trials
	specLaunched     int64
	specWon          int64
	specMigrated     int64
	payloads         [][]byte // last trial's outputs, for identity checks
}

// runSchedMode builds a cluster (optionally with a straggling executor
// 0), runs the stage trials, and folds the context's scheduler
// telemetry into the result.
func runSchedMode(name string, p schedParams, straggle, speculation bool) (*schedModeResult, error) {
	var net transport.Network = transport.NewMem()
	if straggle {
		slow := rdd.TaskChannelAddr(name, 0)
		net = transport.NewFaulty(net, 1,
			transport.StragglerRule(func(a transport.Addr) bool { return a == slow }, p.delay, 0))
	}
	ctx, err := rdd.NewContext(rdd.Config{
		Name:             name,
		NumExecutors:     p.execs,
		CoresPerExecutor: p.cores,
		Network:          net,
		Speculation:      speculation,
		// Aggressive straggler detection: the sweep's tasks are uniform,
		// so anything past ~1.2× the running median is transport delay,
		// not compute variance.
		SpeculationMultiplier: 1.2,
		SpeculationQuantile:   0.5,
		SpeculationInterval:   2 * time.Millisecond,
		SpeculationMinRuntime: 5 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer ctx.Close()

	res := &schedModeResult{}
	runtime := p.taskRuntime
	for trial := 0; trial < p.trials; trial++ {
		start := time.Now()
		out, err := ctx.RunJob(rdd.JobSpec{
			Tasks: p.tasks,
			Fn: func(ec *rdd.ExecContext, task, attempt int) ([]byte, error) {
				time.Sleep(runtime)
				// Deterministic per-task payload so modes can be compared
				// bitwise.
				b := make([]byte, 32)
				for i := range b {
					b[i] = byte(task*31 + i*7)
				}
				return b, nil
			},
		})
		if err != nil {
			return nil, err
		}
		res.walls = append(res.walls, time.Since(start))
		res.payloads = out
	}

	sorted := append([]time.Duration(nil), res.walls...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	res.wallP50 = durQuantile(sorted, 0.50)
	res.wallP95 = durQuantile(sorted, 0.95)
	reg := ctx.Registry()
	res.stageP50 = time.Duration(reg.Histogram(metrics.HistSchedStageNS).Quantile(0.50))
	res.taskP50 = time.Duration(reg.Histogram(metrics.HistSchedTaskNS).Quantile(0.50))
	res.taskP95 = time.Duration(reg.Histogram(metrics.HistSchedTaskNS).Quantile(0.95))
	rec := ctx.Metrics()
	res.specLaunched = rec.Count(metrics.CounterSpecLaunched)
	res.specWon = rec.Count(metrics.CounterSpecWon)
	res.specMigrated = rec.Count(metrics.CounterSpecMigrated)
	return res, nil
}

// schedStraggler runs the three-mode comparison. Split from
// SchedStraggler so tests can run a scaled-down sweep.
func schedStraggler(p schedParams) (*Report, error) {
	r := &Report{
		Title: "Stage scheduler: straggler sweep — healthy vs delayed executor, speculation off/on",
		Header: []string{"Mode", "Wall p50", "Wall p95", "Stage p50", "Task p50",
			"Task p95", "Spec launch/win/migrate"},
		Quantiles: map[string]int64{},
	}
	modes := []struct {
		key                  string
		straggle, speculaton bool
	}{
		{"baseline", false, false},
		{"spec-off", true, false},
		{"spec-on", true, true},
	}
	results := map[string]*schedModeResult{}
	for _, m := range modes {
		res, err := runSchedMode("schedbench-"+m.key, p, m.straggle, m.speculaton)
		if err != nil {
			return nil, fmt.Errorf("bench: sched %s: %w", m.key, err)
		}
		results[m.key] = res
		r.AddRow(m.key,
			fdur(res.wallP50), fdur(res.wallP95),
			fdur(res.stageP50), fdur(res.taskP50), fdur(res.taskP95),
			fmt.Sprintf("%d/%d/%d", res.specLaunched, res.specWon, res.specMigrated))
		pre := "sched/" + m.key
		r.Quantiles[pre+"/wall_p50_ns"] = int64(res.wallP50)
		r.Quantiles[pre+"/wall_p95_ns"] = int64(res.wallP95)
		r.Quantiles[pre+"/stage_p50_ns"] = int64(res.stageP50)
		r.Quantiles[pre+"/task_p50_ns"] = int64(res.taskP50)
		r.Quantiles[pre+"/task_p95_ns"] = int64(res.taskP95)
		r.Quantiles[pre+"/spec_launched"] = res.specLaunched
		r.Quantiles[pre+"/spec_won"] = res.specWon
		r.Quantiles[pre+"/spec_migrated"] = res.specMigrated
	}

	// Bitwise identity across all modes: speculation must never change
	// results, only latency.
	base := results["baseline"]
	for _, key := range []string{"spec-off", "spec-on"} {
		for task := range base.payloads {
			if !bytes.Equal(base.payloads[task], results[key].payloads[task]) {
				return nil, fmt.Errorf("bench: sched: %s task %d payload differs from baseline", key, task)
			}
		}
	}

	onRatio := float64(results["spec-on"].wallP50) / float64(max64(int64(base.wallP50), 1))
	offRatio := float64(results["spec-off"].wallP50) / float64(max64(int64(base.wallP50), 1))
	r.Quantiles["sched/specon_vs_base_milli"] = int64(onRatio * 1000)
	r.Quantiles["sched/specoff_vs_base_milli"] = int64(offRatio * 1000)
	r.AddNote("cluster: %d executors × %d cores, %d tasks × %v, executor 0's task channel delayed %v (10× task runtime) per message",
		p.execs, p.cores, p.tasks, p.taskRuntime, p.delay)
	r.AddNote("payloads bitwise identical across all three modes (verified per trial)")
	r.AddNote("claim: speculation-on wall ≤ 2× healthy baseline — measured %s vs %s off",
		fx(onRatio), fx(offRatio))
	if onRatio > 2 {
		return nil, fmt.Errorf("bench: sched: speculation-on wall p50 %.2f× baseline, claim requires <= 2×", onRatio)
	}
	return r, nil
}

// SchedStraggler runs the full straggler sweep; reach it via
// `sparkerbench -only sched` or `make bench-compare`.
func SchedStraggler() (*Report, error) {
	return schedStraggler(defaultSchedParams)
}
