package bench

import (
	"testing"

	"sparker/internal/transport"
)

// TestPipelineSweepSmall runs the off/on sweep machinery on the mem
// transport with tiny segments: the full TCP report is minutes long,
// but the plumbing — rows per point, raw quantile keys, a sane overlap
// ratio — must be covered by `go test`.
func TestPipelineSweepSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short")
	}
	points := []pipelinePoint{
		{segBytes: 8 << 10, trials: 2},
		{segBytes: 256 << 10, trials: 2},
	}
	r, err := pipelineSweep(func() transport.Network { return transport.NewMem() },
		"mem", 2, 1, points)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(points) {
		t.Fatalf("got %d rows, want %d", len(r.Rows), len(points))
	}
	for _, row := range r.Rows {
		if len(row) != len(r.Header) {
			t.Fatalf("row width %d != header width %d: %v", len(row), len(r.Header), row)
		}
	}
	for _, key := range []string{
		"pipeline/8KB/off/step_p50_ns",
		"pipeline/8KB/on/step_p95_ns",
		"pipeline/256KB/speedup_milli",
		"pipeline/256KB/overlap_permille",
	} {
		if _, ok := r.Quantiles[key]; !ok {
			t.Errorf("missing raw quantile %q (have %d keys)", key, len(r.Quantiles))
		}
	}
	// Steps happened in both modes at both sizes.
	for _, key := range []string{"pipeline/8KB/off/step_p50_ns", "pipeline/256KB/on/step_p50_ns"} {
		if v := r.Quantiles[key]; v <= 0 {
			t.Errorf("%s = %d, want > 0 (no steps recorded?)", key, v)
		}
	}
	// Overlap is a ratio; permille must stay within [0, 1000].
	for _, tag := range []string{"8KB", "256KB"} {
		if v := r.Quantiles["pipeline/"+tag+"/overlap_permille"]; v < 0 || v > 1000 {
			t.Errorf("overlap_permille[%s] = %d, want within [0, 1000]", tag, v)
		}
	}
	if r.Quantiles["pipeline/8KB/speedup_milli"] <= 0 {
		t.Error("speedup must be positive")
	}
}
