package bench

import "testing"

// TestComputeSweepSmall runs the compute-plane sweep machinery at a
// reduced scale: the full-size grid is for `make bench-compare`
// (BENCH_PR9.json), but the cell plumbing, the quantile keys the JSON
// diff relies on, and — most importantly — the in-bench assertion that
// every packed run trains bitwise-identical results to the per-point
// path must be covered by `go test`. Timing ratios are NOT asserted
// here: at this scale on a loaded CI machine they carry no signal.
func TestComputeSweepSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short")
	}
	r, err := computeSweep(20, 2)
	if err != nil {
		t.Fatal(err)
	}
	profiles := computeProfiles(20)
	// 3 cells per profile.
	if want := 3 * len(profiles); len(r.Rows) != want {
		t.Fatalf("got %d rows, want %d", len(r.Rows), want)
	}
	for _, row := range r.Rows {
		if len(row) != len(r.Header) {
			t.Fatalf("row width %d != header width %d: %v", len(row), len(r.Header), row)
		}
	}
	for _, p := range profiles {
		// computeSweep fails hard on a bitwise mismatch, so reaching
		// this marker means every packed cell of the profile matched
		// the per-point fold bit for bit.
		if r.Quantiles["compute/"+p.name+"/bitwise_identical"] != 1 {
			t.Errorf("%s: bitwise_identical marker missing", p.name)
		}
		for _, cell := range []string{"perpoint/c1", "packed/c1", "packed/c4"} {
			key := "compute/" + p.name + "/" + cell + "/ns_per_iter"
			if r.Quantiles[key] <= 0 {
				t.Errorf("%s: missing or zero", key)
			}
		}
		for _, ratio := range []string{"speedup_milli/c1", "packed_scaling_milli/c4_projected"} {
			key := "compute/" + p.name + "/" + ratio
			if r.Quantiles[key] <= 0 {
				t.Errorf("%s: missing or zero", key)
			}
		}
	}
	if r.Quantiles["compute/gomaxprocs"] <= 0 {
		t.Error("compute/gomaxprocs not recorded")
	}
}
