package bench

import "testing"

// TestSchedStragglerSmall runs a scaled-down straggler sweep: fewer
// tasks and shorter delays, but the same three modes, identity check
// and ≤2× claim gate as the full `-only sched` report.
func TestSchedStragglerSmall(t *testing.T) {
	p := defaultSchedParams
	p.tasks = 32
	p.trials = 2
	r, err := schedStraggler(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"sched/baseline/wall_p50_ns",
		"sched/spec-on/spec_launched",
		"sched/specon_vs_base_milli",
	} {
		if _, ok := r.Quantiles[key]; !ok {
			t.Fatalf("report missing quantile %q", key)
		}
	}
	if r.Quantiles["sched/spec-on/spec_launched"] == 0 &&
		r.Quantiles["sched/spec-on/spec_migrated"] == 0 {
		t.Fatal("speculation-on run neither duplicated nor migrated anything")
	}
	if r.Quantiles["sched/baseline/spec_launched"] != 0 {
		t.Fatal("healthy baseline speculated")
	}
}
