package bench

import (
	"fmt"
	"math"
	"time"

	"sparker/internal/data"
	"sparker/internal/sim"
)

const mb = 1024 * 1024

func fsec(d time.Duration) string { return fmt.Sprintf("%.2fs", d.Seconds()) }
func fms(d time.Duration) string  { return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000) }
func fus(d time.Duration) string  { return fmt.Sprintf("%.2fµs", float64(d.Nanoseconds())/1000) }
func fx(x float64) string         { return fmt.Sprintf("%.2f×", x) }
func fmbs(bytesPerSec float64) string {
	return fmt.Sprintf("%.1f MB/s", bytesPerSec/mb)
}

// fdur picks a readable unit for durations spanning µs to seconds.
func fdur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fus(d)
	case d < time.Second:
		return fms(d)
	default:
		return fsec(d)
	}
}

// Table1 renders the cluster configurations.
func Table1() (*Report, error) {
	r := &Report{
		Title:  "Table 1: Configuration of the two clusters used for experiments",
		Header: []string{"Configuration", "BIC", "AWS"},
	}
	b, a := sim.BIC(), sim.AWS()
	r.AddRow("Number of nodes", fmt.Sprint(b.Nodes), fmt.Sprint(a.Nodes))
	r.AddRow("Executors per node", fmt.Sprint(b.ExecutorsPerNode), fmt.Sprint(a.ExecutorsPerNode))
	r.AddRow("Executor cores", fmt.Sprint(b.CoresPerExecutor), fmt.Sprint(a.CoresPerExecutor))
	r.AddRow("Total executors", fmt.Sprint(b.Executors()), fmt.Sprint(a.Executors()))
	r.AddRow("Total cores", fmt.Sprint(b.TotalCores()), fmt.Sprint(a.TotalCores()))
	r.AddRow("Network (SC lat/bw)", fus(b.SC.Latency)+" / "+fmbs(b.SC.NICBW), fus(a.SC.Latency)+" / "+fmbs(a.SC.NICBW))
	r.AddRow("MPI lat/bw", fus(b.MPI.Latency)+" / "+fmbs(b.MPI.NICBW), fus(a.MPI.Latency)+" / "+fmbs(a.MPI.NICBW))
	r.AddNote("paper: BIC = 8 × 56-core nodes, 100Gbps IPoIB; AWS = 10 × m5d.24xlarge, 25Gbps Ethernet")
	return r, nil
}

// Table2 renders the dataset profiles.
func Table2() (*Report, error) {
	r := &Report{
		Title:  "Table 2: Real-world datasets (synthetic shape-preserving stand-ins)",
		Header: []string{"Dataset", "Samples/Docs", "Features/Vocab", "NNZ/sample", "Task", "Aggregator (K=100)"},
	}
	for _, p := range data.Profiles {
		r.AddRow(p.Name,
			fmt.Sprint(p.Samples),
			fmt.Sprint(p.Features),
			fmt.Sprint(p.NNZPerSample),
			string(p.Task),
			fmt.Sprintf("%.1f MB", float64(p.AggregatorBytes(100))/mb))
	}
	r.AddNote("aggregator size is what the reduction moves per iteration — why kdd10/kdd12/nytimes are reduction-bound")
	return r, nil
}

// Table3 renders the model parameters.
func Table3() (*Report, error) {
	r := &Report{
		Title:  "Table 3: MLlib models used in the experiments",
		Header: []string{"Name", "Parameter", "Task"},
	}
	r.AddRow("Logistic Regression", "regParam=0, elasticNetParam=0", "classification")
	r.AddRow("SVM", "miniBatchFrac=1.0, regParam=0.01", "classification")
	r.AddRow("LDA", "K=100", "topic model")
	return r, nil
}

// Fig1 renders the 8-node vs 1-node MLlib speedups on BIC.
func Fig1() (*Report, error) {
	r := &Report{
		Title:  "Figure 1: 8-node speedup over 1-node, MLlib (tree aggregation) on BIC",
		Header: []string{"Workload", "1-node", "8-node", "Speedup"},
	}
	product := 1.0
	for _, w := range sim.Workloads() {
		one, err := sim.RunWorkload(sim.RunParams{Cluster: sim.BIC(), Workload: w, Strategy: sim.AggTree, Nodes: 1})
		if err != nil {
			return nil, err
		}
		eight, err := sim.RunWorkload(sim.RunParams{Cluster: sim.BIC(), Workload: w, Strategy: sim.AggTree, Nodes: 8})
		if err != nil {
			return nil, err
		}
		sp := one.Total().Seconds() / eight.Total().Seconds()
		product *= sp
		r.AddRow(w.Name, fsec(one.Total()), fsec(eight.Total()), fx(sp))
	}
	r.AddNote("geomean speedup %.2f× — paper: average 1.25×, best LDA-N 2.49×, worst LR-K 0.73×", math.Pow(product, 1.0/9))
	return r, nil
}

// Fig2 renders the end-to-end decomposition per workload.
func Fig2() (*Report, error) {
	r := &Report{
		Title:  "Figure 2: time decomposition on 8-node BIC, MLlib (tree aggregation)",
		Header: []string{"Workload", "Aggregation", "Non-agg", "Driver", "Agg %"},
	}
	geoSum := 0.0
	for _, w := range sim.Workloads() {
		ph, err := sim.RunWorkload(sim.RunParams{Cluster: sim.BIC(), Workload: w, Strategy: sim.AggTree, Nodes: 8})
		if err != nil {
			return nil, err
		}
		agg := ph.AggCompute + ph.AggReduce
		frac := float64(agg) / float64(ph.Total())
		geoSum += math.Log(frac)
		r.AddRow(w.Name, fsec(agg), fsec(ph.NonAgg), fsec(ph.Driver), fmt.Sprintf("%.1f%%", 100*frac))
	}
	r.AddNote("geomean aggregation share %.1f%% — paper: 67.69%% geomean", 100*math.Exp(geoSum/9))
	return r, nil
}

// strongScaling renders a Figure-3/4-style decomposition series.
func strongScaling(title string, cluster sim.ClusterConfig, configs []sim.RunParams, paperNote string) (*Report, error) {
	r := &Report{
		Title:  title,
		Header: []string{"Cores", "Agg-compute", "Agg-reduce", "Non-agg", "Driver", "Total"},
	}
	for _, rp := range configs {
		ph, err := sim.RunWorkload(rp)
		if err != nil {
			return nil, err
		}
		cores := rp.Nodes * rp.ExecutorsPerNode * rp.CoresPerExecutor
		r.AddRow(fmt.Sprint(cores), fsec(ph.AggCompute), fsec(ph.AggReduce), fsec(ph.NonAgg), fsec(ph.Driver), fsec(ph.Total()))
	}
	r.AddNote(paperNote)
	return r, nil
}

// Fig3 renders LDA-N strong scaling on BIC under vanilla Spark.
func Fig3() (*Report, error) {
	w, err := sim.WorkloadByName("LDA-N")
	if err != nil {
		return nil, err
	}
	c := sim.BIC()
	var cfgs []sim.RunParams
	for _, nodes := range []int{1, 2, 4, 8} {
		cfgs = append(cfgs, sim.RunParams{Cluster: c, Workload: w, Strategy: sim.AggTree,
			Nodes: nodes, ExecutorsPerNode: c.ExecutorsPerNode, CoresPerExecutor: c.CoresPerExecutor})
	}
	return strongScaling("Figure 3: LDA-N strong scaling on BIC (Spark, 40 iterations)",
		c, cfgs, "paper: compute 1152.38s → 342.43s (4.47×); reduce 111.05s → 187.48s (grows 1.69×)")
}

// Fig4 renders LDA-N strong scaling on AWS under vanilla Spark.
func Fig4() (*Report, error) {
	w, err := sim.WorkloadByName("LDA-N")
	if err != nil {
		return nil, err
	}
	c := sim.AWS()
	var cfgs []sim.RunParams
	for _, g := range awsScalingConfigs() {
		cfgs = append(cfgs, sim.RunParams{Cluster: c, Workload: w, Strategy: sim.AggTree,
			Nodes: g.nodes, ExecutorsPerNode: g.epn, CoresPerExecutor: g.cpe})
	}
	return strongScaling("Figure 4: LDA-N strong scaling on AWS (Spark, 15 iterations)",
		c, cfgs, "paper: compute 272.36s → 58.39s (4.66×); reduce 26.38s → 111.23s (4.22×), reaching 44.55%% of end-to-end")
}

type awsCfg struct{ nodes, epn, cpe int }

// awsScalingConfigs are the Figure-4/18 core counts: 4..960.
func awsScalingConfigs() []awsCfg {
	return []awsCfg{
		{1, 1, 4}, {1, 2, 4}, {1, 6, 4}, {1, 12, 8},
		{2, 12, 8}, {5, 12, 8}, {10, 12, 8},
	}
}

// Fig12 renders point-to-point latency per transport.
func Fig12() (*Report, error) { return fig12For(sim.BIC()) }

// Fig12AWS is Fig12 on the AWS calibration ("the result on AWS is
// similar", §5.2).
func Fig12AWS() (*Report, error) { return fig12For(sim.AWS()) }

func fig12For(c sim.ClusterConfig) (*Report, error) {
	r := &Report{
		Title:  "Figure 12: point-to-point latency on " + c.Name,
		Header: []string{"Transport", "Latency", "vs MPI"},
	}
	mpi, err := sim.P2PLatency(c, c.MPI)
	if err != nil {
		return nil, err
	}
	for _, tr := range []sim.Transport{c.BM, c.SC, c.MPI} {
		lat, err := sim.P2PLatency(c, tr)
		if err != nil {
			return nil, err
		}
		r.AddRow(tr.Name, fus(lat), fx(float64(lat)/float64(mpi)))
	}
	r.AddNote("paper: BM 3861.25µs (242.24× MPI), SC 72.73µs (4.56× MPI), MPI 15.94µs")
	return r, nil
}

// Fig13 renders point-to-point throughput vs message size.
func Fig13() (*Report, error) { return fig13For(sim.BIC()) }

// Fig13AWS is Fig13 on the AWS calibration.
func Fig13AWS() (*Report, error) { return fig13For(sim.AWS()) }

func fig13For(c sim.ClusterConfig) (*Report, error) {
	r := &Report{
		Title:  "Figure 13: point-to-point throughput on " + c.Name + " (SC parallelism 1/2/4 vs MPI)",
		Header: []string{"Message", "SC p=1", "SC p=2", "SC p=4", "MPI"},
	}
	for _, m := range []int64{64 * 1024, 1 * mb, 8 * mb, 64 * mb, 256 * mb} {
		row := []string{fmtBytes(m)}
		for _, p := range []int{1, 2, 4} {
			tp, err := sim.P2PThroughput(c, c.SC, m, p)
			if err != nil {
				return nil, err
			}
			row = append(row, fmbs(tp))
		}
		tp, err := sim.P2PThroughput(c, c.MPI, m, 1)
		if err != nil {
			return nil, err
		}
		row = append(row, fmbs(tp))
		r.AddRow(row...)
	}
	r.AddNote("paper: MPI max 1185.43 MB/s; SC reaches 1151.80 MB/s (97.1%% of line rate) with enough parallelism")
	return r, nil
}

// Fig14 renders reduce-scatter vs parallelism and topology-awareness.
func Fig14() (*Report, error) {
	r := &Report{
		Title:  "Figure 14: reduce-scatter, 48 executors, 256MB, varying parallelism",
		Header: []string{"Parallelism", "Topology-aware", "Unsorted"},
	}
	c := sim.BIC()
	for _, p := range []int{1, 2, 4, 8} {
		topo, err := sim.RingReduceScatter(sim.RSParams{Cluster: c, Nodes: 8, MsgBytes: 256 * mb, Parallelism: p, TopoAware: true})
		if err != nil {
			return nil, err
		}
		unsorted, err := sim.RingReduceScatter(sim.RSParams{Cluster: c, Nodes: 8, MsgBytes: 256 * mb, Parallelism: p, TopoAware: false})
		if err != nil {
			return nil, err
		}
		r.AddRow(fmt.Sprint(p), fsec(topo), fsec(unsorted))
	}
	r.AddNote("paper: parallelism 1→8 improves 3.04s → 0.99s (3.06×); topology-awareness 2.77s → 0.99s (2.76×)")
	return r, nil
}

// Fig15 renders reduce-scatter scalability vs MPI.
func Fig15() (*Report, error) {
	r := &Report{
		Title:  "Figure 15: reduce-scatter scalability (6→48 executors), SC vs MPI",
		Header: []string{"Executors", "SC 256KB", "MPI 256KB", "SC 256MB", "MPI 256MB"},
	}
	c := sim.BIC()
	for _, nodes := range []int{1, 2, 4, 8} {
		row := []string{fmt.Sprint(nodes * c.ExecutorsPerNode)}
		for _, m := range []int64{256 * 1024, 256 * mb} {
			sc, err := sim.RingReduceScatter(sim.RSParams{Cluster: c, Nodes: nodes, MsgBytes: m, Parallelism: 4, TopoAware: true})
			if err != nil {
				return nil, err
			}
			mpi, err := sim.MPIReduceScatter(sim.RSParams{Cluster: c, Nodes: nodes, MsgBytes: m, Parallelism: 1})
			if err != nil {
				return nil, err
			}
			row = append(row, fms(sc), fms(mpi))
		}
		// Reorder: SC small, MPI small, SC big, MPI big.
		r.AddRow(row[0], row[1], row[2], row[3], row[4])
	}
	r.AddNote("paper: SC 256KB 1.51ms → 7.98ms (5.30×); SC 256MB 784.13ms → 993.35ms (1.27×); SC scales better than MPI")
	return r, nil
}

// Fig16 renders the aggregation strategy comparison.
func Fig16() (*Report, error) { return fig16For(sim.BIC(), []int{1, 2, 4, 8}) }

// Fig16AWS is Fig16 on the AWS calibration.
func Fig16AWS() (*Report, error) { return fig16For(sim.AWS(), []int{1, 2, 5, 10}) }

func fig16For(c sim.ClusterConfig, nodeCounts []int) (*Report, error) {
	r := &Report{
		Title:  "Figure 16: tree vs tree+IMM vs split aggregation on " + c.Name,
		Header: []string{"Message", "Nodes", "Tree", "Tree+IMM", "Split", "Split speedup"},
	}
	for _, m := range []int64{1024, 8 * mb, 256 * mb} {
		for _, nodes := range nodeCounts {
			var ds [3]time.Duration
			for i, s := range []sim.AggStrategy{sim.AggTree, sim.AggTreeIMM, sim.AggSplit} {
				d, err := sim.AggregateTime(s, sim.AggParams{Cluster: c, Nodes: nodes, MsgBytes: m, Parallelism: 4, TopoAware: true})
				if err != nil {
					return nil, err
				}
				ds[i] = d
			}
			r.AddRow(fmtBytes(m), fmt.Sprint(nodes), fsec(ds[0]), fsec(ds[1]), fsec(ds[2]),
				fx(float64(ds[0])/float64(ds[2])))
		}
	}
	r.AddNote("paper at 8 nodes: 8MB split speedup 1.91×; 256MB split 6.48×, IMM 1.46×; split 8-node time only 1.12× its 1-node time")
	return r, nil
}

// Fig17 renders the end-to-end Sparker vs Spark speedups.
func Fig17() (*Report, error) {
	r := &Report{
		Title:  "Figure 17: end-to-end speedup of Sparker (split) over Spark (tree)",
		Header: []string{"Workload", "BIC Spark", "BIC Sparker", "BIC speedup", "AWS Spark", "AWS Sparker", "AWS speedup"},
	}
	prod := map[string]float64{"BIC": 1, "AWS": 1}
	rows := map[string][]string{}
	var order []string
	for _, cl := range []sim.ClusterConfig{sim.BIC(), sim.AWS()} {
		for _, w := range sim.Workloads() {
			spark, err := sim.RunWorkload(sim.RunParams{Cluster: cl, Workload: w, Strategy: sim.AggTree})
			if err != nil {
				return nil, err
			}
			sparker, err := sim.RunWorkload(sim.RunParams{Cluster: cl, Workload: w, Strategy: sim.AggSplit})
			if err != nil {
				return nil, err
			}
			sp := spark.Total().Seconds() / sparker.Total().Seconds()
			prod[cl.Name] *= sp
			if cl.Name == "BIC" {
				order = append(order, w.Name)
				rows[w.Name] = []string{w.Name, fsec(spark.Total()), fsec(sparker.Total()), fx(sp)}
			} else {
				rows[w.Name] = append(rows[w.Name], fsec(spark.Total()), fsec(sparker.Total()), fx(sp))
			}
		}
	}
	for _, name := range order {
		r.AddRow(rows[name]...)
	}
	r.AddNote("geomean: BIC %.2f×, AWS %.2f× — paper: BIC 1.60× (max SVM-K 2.62×), AWS 1.81× (max SVM-K 3.69×)",
		math.Pow(prod["BIC"], 1.0/9), math.Pow(prod["AWS"], 1.0/9))
	return r, nil
}

// Fig18 renders LDA-N strong scaling under both engines on AWS.
func Fig18() (*Report, error) {
	w, err := sim.WorkloadByName("LDA-N")
	if err != nil {
		return nil, err
	}
	c := sim.AWS()
	r := &Report{
		Title:  "Figure 18: LDA-N strong scaling on AWS, Spark vs Sparker",
		Header: []string{"Cores", "Spark comp", "Spark reduce", "Sparker comp", "Sparker reduce", "Reduce speedup"},
	}
	for _, g := range awsScalingConfigs() {
		spark, err := sim.RunWorkload(sim.RunParams{Cluster: c, Workload: w, Strategy: sim.AggTree,
			Nodes: g.nodes, ExecutorsPerNode: g.epn, CoresPerExecutor: g.cpe})
		if err != nil {
			return nil, err
		}
		sparker, err := sim.RunWorkload(sim.RunParams{Cluster: c, Workload: w, Strategy: sim.AggSplit,
			Nodes: g.nodes, ExecutorsPerNode: g.epn, CoresPerExecutor: g.cpe})
		if err != nil {
			return nil, err
		}
		r.AddRow(fmt.Sprint(g.nodes*g.epn*g.cpe),
			fsec(spark.AggCompute), fsec(spark.AggReduce),
			fsec(sparker.AggCompute), fsec(sparker.AggReduce),
			fx(spark.AggReduce.Seconds()/sparker.AggReduce.Seconds()))
	}
	r.AddNote("paper: at 8 cores reduce 26.36s vs 6.29s (4.19×); at 960 cores 111.26s vs 15.41s (7.22×); Sparker compute is lower (IMM removes serialization); driver becomes the new bottleneck")
	return r, nil
}

func fmtBytes(n int64) string {
	switch {
	case n >= mb:
		return fmt.Sprintf("%dMB", n/mb)
	case n >= 1024:
		return fmt.Sprintf("%dKB", n/1024)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// All returns every report in paper order.
func All() ([]*Report, error) {
	runners := []func() (*Report, error){
		Table1, Table2, Table3,
		Fig1, Fig2, Fig3, Fig4,
		Fig12, Fig13, Fig14, Fig15, Fig16, Fig17, Fig18,
		AblationIMM, AblationAlgorithms, AblationAllReduce,
		EngineMetrics,
	}
	var out []*Report
	for _, f := range runners {
		r, err := f()
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ByID returns the report for a table ("table1") or figure ("fig16").
func ByID(id string) (*Report, error) {
	m := map[string]func() (*Report, error){
		"table1": Table1, "table2": Table2, "table3": Table3,
		"fig1": Fig1, "fig2": Fig2, "fig3": Fig3, "fig4": Fig4,
		"fig12": Fig12, "fig13": Fig13, "fig14": Fig14,
		"fig15": Fig15, "fig16": Fig16, "fig17": Fig17, "fig18": Fig18,
		"fig12-aws": Fig12AWS, "fig13-aws": Fig13AWS, "fig16-aws": Fig16AWS,
		"ablation-imm": AblationIMM, "ablation-algos": AblationAlgorithms,
		"ablation-allreduce": AblationAllReduce,
		"engine-metrics":     EngineMetrics,
		"pipeline":           PipelineSweep,
		"sched":              SchedStraggler,
		"compress":           CompressSweep,
		"compute":            ComputeSweep,
		"serve":              ServeBench,
		"elastic":            ElasticChurn,
	}
	f, ok := m[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown report %q (tables 1-3, figures 1-4 and 12-18, ablation-imm/algos/allreduce, engine-metrics, pipeline, sched, compress, compute, serve, elastic)", id)
	}
	return f()
}
