package bench

// ElasticChurn is the evidence figure for elastic membership
// (DESIGN.md §17): the same logistic-regression loop is run twice on a
// real cluster — once undisturbed, once with an executor hard-killed
// mid-training and a replacement joining a few iterations later. Every
// gradient is exact (a churn-broken collective is retried whole against
// the new epoch), so the two loss trajectories coincide; the cost of
// elasticity shows up only as iteration-time blowup in the iterations
// that ride through a reconfiguration. The claims under test: the
// reconfiguration-window mean iteration time is ≤ 3× the churned run's
// own steady-state p50 (worst single iteration sanity-bounded at 6× —
// a kill landing mid-collective pays the broken attempt plus a whole
// retry plus cold-partition recompute), and the churned run reaches
// the undisturbed run's target loss in the same number of iterations.
//
// `make bench-compare` renders this as BENCH_PR10.json.

import (
	"fmt"
	"math"
	"sort"
	"time"

	"sparker/internal/data"
	"sparker/internal/metrics"
	"sparker/internal/mllib"
	"sparker/internal/rdd"
)

// elasticParams sizes one churn comparison.
type elasticParams struct {
	execs, cores int
	// scale divides the avazu profile (data.Profile.Scaled) to pick the
	// dataset size; parts is the RDD partition count.
	scale, parts int
	// iters measured GD iterations; warmup unmeasured iterations first
	// (cache materialization and scheduler warm paths).
	iters, warmup int
	// killAt / rejoinAt are measured-iteration indices: the victim is
	// hard-killed just before iteration killAt starts, and the
	// replacement's join is launched just before iteration rejoinAt.
	killAt, rejoinAt int
	// victim is the executor slot killed (and re-adopted by the join).
	victim int
	// reconfSpan marks iterations [killAt, killAt+span) and
	// [rejoinAt, rejoinAt+span) as the reconfiguration window; the rest
	// are steady state.
	reconfSpan int
}

// defaultElasticParams: 4 executors × 2 cores, 24 iterations over an
// avazu-shaped dataset, kill at 8, rejoin at 16.
var defaultElasticParams = elasticParams{
	execs: 4, cores: 2,
	scale: 100, parts: 8,
	iters: 24, warmup: 2,
	killAt: 8, rejoinAt: 16,
	victim:     2,
	reconfSpan: 2,
}

// elasticRun is one mode's measurement.
type elasticRun struct {
	walls  []time.Duration // per measured iteration
	losses []float64       // true loss entering each measured iteration
	// churn bookkeeping (zero for the undisturbed run)
	retries, fallbacks, evicts, joins int64
	epoch                             uint64
	live                              int
}

// reconfWindow reports whether measured iteration i overlaps a
// reconfiguration under p's churn schedule.
func (p elasticParams) reconfWindow(i int) bool {
	return (i >= p.killAt && i < p.killAt+p.reconfSpan) ||
		(i >= p.rejoinAt && i < p.rejoinAt+p.reconfSpan)
}

// runElasticMode runs the GD loop on a fresh cluster, optionally
// injecting the kill/rejoin schedule, and returns per-iteration walls
// and losses plus the context's membership telemetry.
func runElasticMode(name string, p elasticParams, churn bool) (*elasticRun, error) {
	ctx, err := rdd.NewContext(rdd.Config{
		Name:             name,
		NumExecutors:     p.execs,
		CoresPerExecutor: p.cores,
	})
	if err != nil {
		return nil, err
	}
	defer ctx.Close()

	prof, err := data.ProfileByName("avazu")
	if err != nil {
		return nil, err
	}
	sp := prof.Scaled(p.scale)
	dim := sp.Features
	pts := data.GenClassification(sp.ClassificationSpec(1))
	train := rdd.FromSlice(ctx, pts, p.parts).Cache()

	seqOp := func(snapshot []float64) func(acc []float64, pt mllib.LabeledPoint) []float64 {
		return func(acc []float64, pt mllib.LabeledPoint) []float64 {
			loss := mllib.LogisticGradient{}.Compute(pt.Features, pt.Label, snapshot, acc[:dim])
			acc[dim] += loss
			acc[dim+1]++
			return acc
		}
	}

	run := &elasticRun{}
	w := make([]float64, dim)
	epochBeforeKill := uint64(0)
	joinErr := make(chan error, 1)
	joined := false
	for i := -p.warmup; i < p.iters; i++ {
		if churn && i == p.killAt {
			epochBeforeKill = ctx.MembershipEpoch()
			if err := ctx.KillExecutor(p.victim); err != nil {
				return nil, fmt.Errorf("bench: elastic kill: %w", err)
			}
		}
		if churn && i == p.rejoinAt {
			// The eviction epoch is installed long before rejoinAt (the
			// killAt iteration itself rides through it); the join then runs
			// concurrently with the next iterations, exercising the
			// join-mid-collective path.
			if !ctx.AwaitReconfigured(epochBeforeKill, 30*time.Second) {
				return nil, fmt.Errorf("bench: elastic: eviction epoch never installed")
			}
			joined = true
			go func() {
				id, err := ctx.AddExecutor("bench-replacement")
				if err == nil && id != p.victim {
					err = fmt.Errorf("bench: elastic: replacement adopted slot %d, want %d", id, p.victim)
				}
				joinErr <- err
			}()
		}
		snap := append([]float64(nil), w...)
		start := time.Now()
		agg, err := mllib.AggregateF64(train, dim+2, seqOp(snap), mllib.StrategySplit, 2, 0)
		if err != nil {
			return nil, fmt.Errorf("bench: elastic iteration %d: %w", i, err)
		}
		wall := time.Since(start)
		count := agg[dim+1]
		if count == 0 {
			return nil, fmt.Errorf("bench: elastic: empty dataset")
		}
		g := agg[:dim]
		for j := range g {
			g[j] /= count
		}
		w, _ = mllib.SimpleUpdater{}.Update(w, g, 1, i+p.warmup+1, 0)
		if i >= 0 {
			run.walls = append(run.walls, wall)
			run.losses = append(run.losses, agg[dim]/count)
		}
	}
	if joined {
		if err := <-joinErr; err != nil {
			return nil, err
		}
	}

	rec := ctx.Metrics()
	run.retries = rec.Count(metrics.CounterElasticRetry)
	run.fallbacks = rec.Count(metrics.CounterRingFallback)
	run.evicts = rec.Count(metrics.CounterExecutorEvict)
	run.joins = rec.Count(metrics.CounterExecutorJoin)
	run.epoch = ctx.MembershipEpoch()
	run.live = ctx.NumLiveExecutors()
	return run, nil
}

// itersToLoss returns the 1-based iteration whose entering loss first
// reached target (0 = never). The 1e-5 relative tolerance sits far
// above float reorder noise (a 3-wide and a 4-wide ring merge partial
// sums in different orders) but below a single iteration's progress,
// so matching counts mean matching trajectories.
func itersToLoss(losses []float64, target float64) int {
	for i, l := range losses {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			return 0
		}
		if l <= target*(1+1e-5) {
			return i + 1
		}
	}
	return 0
}

// elasticChurn runs both modes and gates the elasticity claims. Split
// from ElasticChurn so tests can run a scaled-down comparison.
func elasticChurn(p elasticParams) (*Report, error) {
	r := &Report{
		Title: "Elastic membership: kill-and-replace mid-training vs undisturbed run",
		Header: []string{"Mode", "Steady p50", "Steady p95", "Reconf max", "Final loss",
			"Iters to target", "Retry/fallback/evict/join"},
		Quantiles: map[string]int64{},
	}
	nochurn, err := runElasticMode("elasticbench-steady", p, false)
	if err != nil {
		return nil, fmt.Errorf("bench: elastic nochurn: %w", err)
	}
	churn, err := runElasticMode("elasticbench-churn", p, true)
	if err != nil {
		return nil, fmt.Errorf("bench: elastic churn: %w", err)
	}

	// The undisturbed final loss is the convergence target both runs
	// must reach; its iteration count is the budget the churned run must
	// match (exact gradients mean the trajectories coincide).
	target := nochurn.losses[len(nochurn.losses)-1]
	for _, m := range []struct {
		key string
		run *elasticRun
	}{{"nochurn", nochurn}, {"churn", churn}} {
		var steady, reconf []time.Duration
		for i, wall := range m.run.walls {
			if m.key == "churn" && p.reconfWindow(i) {
				reconf = append(reconf, wall)
			} else {
				steady = append(steady, wall)
			}
		}
		sort.Slice(steady, func(i, j int) bool { return steady[i] < steady[j] })
		p50 := durQuantile(steady, 0.50)
		p95 := durQuantile(steady, 0.95)
		var reconfMax, reconfSum time.Duration
		for _, wall := range reconf {
			reconfSum += wall
			if wall > reconfMax {
				reconfMax = wall
			}
		}
		var reconfMean time.Duration
		if len(reconf) > 0 {
			reconfMean = reconfSum / time.Duration(len(reconf))
		}
		final := m.run.losses[len(m.run.losses)-1]
		reached := itersToLoss(m.run.losses, target)
		r.AddRow(m.key, fdur(p50), fdur(p95), fdur(reconfMax),
			fmt.Sprintf("%.6f", final), fmt.Sprintf("%d", reached),
			fmt.Sprintf("%d/%d/%d/%d", m.run.retries, m.run.fallbacks, m.run.evicts, m.run.joins))
		pre := "elastic/" + m.key
		r.Quantiles[pre+"/wall_p50_ns"] = int64(p50)
		r.Quantiles[pre+"/wall_p95_ns"] = int64(p95)
		r.Quantiles[pre+"/reconf_max_ns"] = int64(reconfMax)
		r.Quantiles[pre+"/reconf_mean_ns"] = int64(reconfMean)
		r.Quantiles[pre+"/final_loss_micro"] = int64(final * 1e6)
		r.Quantiles[pre+"/iters_to_target"] = int64(reached)
		r.Quantiles[pre+"/elastic_retries"] = m.run.retries
		r.Quantiles[pre+"/ring_fallbacks"] = m.run.fallbacks
		r.Quantiles[pre+"/evicts"] = m.run.evicts
		r.Quantiles[pre+"/joins"] = m.run.joins
		r.Quantiles[pre+"/epoch"] = int64(m.run.epoch)
		r.Quantiles[pre+"/live"] = int64(m.run.live)
	}

	churnSteadyP50 := r.Quantiles["elastic/churn/wall_p50_ns"]
	reconfMax := r.Quantiles["elastic/churn/reconf_max_ns"]
	reconfMean := r.Quantiles["elastic/churn/reconf_mean_ns"]
	ratio := float64(reconfMean) / float64(max64(churnSteadyP50, 1))
	maxRatio := float64(reconfMax) / float64(max64(churnSteadyP50, 1))
	r.Quantiles["elastic/reconf_vs_steady_milli"] = int64(ratio * 1000)
	r.Quantiles["elastic/reconf_max_vs_steady_milli"] = int64(maxRatio * 1000)

	r.AddNote("cluster: %d executors × %d cores; avazu/%d (%d samples × %d features), %d partitions, split-strategy ring aggregation",
		p.execs, p.cores, p.scale, defaultSamples(p), defaultFeatures(p), p.parts)
	r.AddNote("churn schedule: executor %d hard-killed before iteration %d (detector evicts, collective retries against the eviction epoch); replacement joins concurrently from iteration %d and adopts the slot",
		p.victim, p.killAt, p.rejoinAt)
	r.AddNote("reconfiguration window = iterations [kill, kill+%d) ∪ [rejoin, rejoin+%d); steady state is every other iteration of the same churned run",
		p.reconfSpan, p.reconfSpan)
	r.AddNote("claim 1: reconfiguration-iteration time (mean wall across the window) ≤ 3× steady-state p50 — measured %s mean, %s worst single iteration (sanity-bounded at 6×)",
		fx(ratio), fx(maxRatio))
	r.AddNote("claim 2: churned run reaches the undisturbed final loss within the same iteration budget — %d vs %d iterations",
		r.Quantiles["elastic/churn/iters_to_target"], r.Quantiles["elastic/nochurn/iters_to_target"])

	if churn.evicts < 1 || churn.joins < 1 {
		return nil, fmt.Errorf("bench: elastic: churn run recorded evicts=%d joins=%d, expected at least one of each",
			churn.evicts, churn.joins)
	}
	if churn.live != p.execs {
		return nil, fmt.Errorf("bench: elastic: churn run ended with %d live executors, want %d", churn.live, p.execs)
	}
	churnReached := r.Quantiles["elastic/churn/iters_to_target"]
	nochurnReached := r.Quantiles["elastic/nochurn/iters_to_target"]
	if churnReached == 0 {
		return nil, fmt.Errorf("bench: elastic: churned run never reached the undisturbed target loss %.6f (final %.6f)",
			target, churn.losses[len(churn.losses)-1])
	}
	if churnReached != nochurnReached {
		return nil, fmt.Errorf("bench: elastic: churned run reached the target in %d iterations, undisturbed in %d — gradients should be exact across churn",
			churnReached, nochurnReached)
	}
	if ratio > 3 {
		return nil, fmt.Errorf("bench: elastic: reconfiguration-window mean %v is %.2f× steady-state p50 %v, claim requires <= 3×",
			time.Duration(reconfMean), ratio, time.Duration(churnSteadyP50))
	}
	if maxRatio > 6 {
		return nil, fmt.Errorf("bench: elastic: worst reconfiguration iteration %v is %.2f× steady-state p50 %v, sanity bound is 6×",
			time.Duration(reconfMax), maxRatio, time.Duration(churnSteadyP50))
	}
	return r, nil
}

// defaultSamples / defaultFeatures resolve the scaled avazu shape for
// the report notes.
func defaultSamples(p elasticParams) int {
	prof, _ := data.ProfileByName("avazu")
	return prof.Scaled(p.scale).Samples
}

func defaultFeatures(p elasticParams) int {
	prof, _ := data.ProfileByName("avazu")
	return prof.Scaled(p.scale).Features
}

// ElasticChurn runs the full churn comparison; reach it via
// `sparkerbench -only elastic` or `make bench-compare`.
func ElasticChurn() (*Report, error) {
	return elasticChurn(defaultElasticParams)
}
