package bench

import (
	"fmt"
	"time"

	"sparker/internal/sim"
)

// AblationIMM decomposes split aggregation's win: how much comes from
// the scalable reduction alone (split without IMM) vs in-memory merge
// — verifying the paper's §5.2.3 claim that "most of the improvement
// comes from the scalable reduction".
func AblationIMM() (*Report, error) {
	r := &Report{
		Title:  "Ablation A: where split aggregation's speedup comes from (BIC, 8 nodes)",
		Header: []string{"Message", "Tree", "Split w/o IMM", "Split (full)", "Reduction-only speedup", "Full speedup"},
	}
	c := sim.BIC()
	for _, m := range []int64{8 * mb, 64 * mb, 256 * mb} {
		p := sim.AggParams{Cluster: c, Nodes: 8, MsgBytes: m, Parallelism: 4, TopoAware: true}
		tree, err := sim.AggregateTime(sim.AggTree, p)
		if err != nil {
			return nil, err
		}
		noIMM, err := sim.SplitNoIMMTime(p)
		if err != nil {
			return nil, err
		}
		full, err := sim.AggregateTime(sim.AggSplit, p)
		if err != nil {
			return nil, err
		}
		r.AddRow(fmtBytes(m), fsec(tree), fsec(noIMM), fsec(full),
			fx(float64(tree)/float64(noIMM)), fx(float64(tree)/float64(full)))
	}
	r.AddNote("paper §5.2.3: most of the improvement comes from the scalable reduction; IMM contributes the rest")
	return r, nil
}

// AblationAlgorithms compares segment-reduction algorithms over the
// same transport and processing rates — why the ring.
func AblationAlgorithms() (*Report, error) {
	r := &Report{
		Title:  "Ablation B: segment-reduction algorithm choice (SC transport, 48 executors)",
		Header: []string{"Message", "Ring (PDR)", "Pairwise exchange", "Reduce+scatterv"},
	}
	c := sim.BIC()
	for _, m := range []int64{256 * 1024, 8 * mb, 256 * mb} {
		row := []string{fmtBytes(m)}
		for _, algo := range []sim.SegmentReductionAlgorithm{sim.AlgoRing, sim.AlgoPairwise, sim.AlgoHalving} {
			par := 4
			if algo != sim.AlgoRing {
				par = 1
			}
			d, err := sim.ReduceAlgorithmTime(algo, sim.RSParams{
				Cluster: c, Nodes: 8, MsgBytes: m, Parallelism: par, TopoAware: true,
			})
			if err != nil {
				return nil, err
			}
			row = append(row, fdur(d))
		}
		r.AddRow(row...)
	}
	r.AddNote("ring wins at large messages through topology-aware neighbor traffic; pairwise scatters across nodes; reduce+scatterv bottlenecks at the root")
	return r, nil
}

// AblationAllReduce compares driver-gather split aggregation with the
// allreduce extension that leaves results on executors — the repo's
// answer to the paper's driver-bottleneck limitation (§6).
func AblationAllReduce() (*Report, error) {
	r := &Report{
		Title:  "Ablation C: driver gather vs allreduce result placement (BIC, 8 nodes)",
		Header: []string{"Message", "Split (gather to driver)", "Split allreduce", "Delta"},
	}
	c := sim.BIC()
	for _, m := range []int64{8 * mb, 64 * mb, 256 * mb} {
		p := sim.AggParams{Cluster: c, Nodes: 8, MsgBytes: m, Parallelism: 4, TopoAware: true}
		gather, err := sim.AggregateTime(sim.AggSplit, p)
		if err != nil {
			return nil, err
		}
		allred, err := sim.SplitAllReduceTime(p)
		if err != nil {
			return nil, err
		}
		delta := "slower"
		if allred <= gather {
			delta = "faster"
		}
		r.AddRow(fmtBytes(m), fsec(gather), fsec(allred),
			fmt.Sprintf("%.2f× %s", absRatio(gather, allred), delta))
	}
	r.AddNote("allreduce pays an extra ring lap but removes the driver's serial deserialize+concat and, across iterations, the model redistribution (§6's noted new bottleneck)")
	return r, nil
}

func absRatio(a, b time.Duration) float64 {
	if b == 0 || a == 0 {
		return 1
	}
	if a > b {
		return float64(a) / float64(b)
	}
	return float64(b) / float64(a)
}
