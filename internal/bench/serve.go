package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"sparker/internal/mllib"
	"sparker/internal/rdd"
	"sparker/internal/server"
	"sparker/internal/transport"
)

// ServeBench measures the multi-tenant job server end to end over real
// HTTP against an in-process instance:
//
//  1. aggregate training throughput, 4 concurrent tenants vs the same
//     jobs submitted serially (the shared-driver win: per-stage network
//     latency overlaps across tenants instead of serializing);
//  2. prediction latency (client-observed p50/p99) across a QPS sweep
//     against the batched serving endpoint;
//  3. weighted fair share under saturation: two tenants at 2:1 weights
//     both keep a backlog, and the scheduler's per-tenant service-time
//     deltas should split ~2:1.
//
// The cluster network is shaped with per-message latency so the
// benchmark exercises the latency-hiding concurrency the server
// exists for, independent of host core count.
func ServeBench() (*Report, error) {
	r := &Report{
		Title:     "Serve: multi-tenant job server (throughput, serving latency, fair share)",
		Header:    []string{"Experiment", "Setting", "Result"},
		PhasesSec: map[string]float64{},
		Quantiles: map[string]int64{},
	}

	if err := serveThroughput(r); err != nil {
		return nil, err
	}
	if err := serveLatency(r); err != nil {
		return nil, err
	}
	if err := serveFairShare(r); err != nil {
		return nil, err
	}
	return r, nil
}

const serveNetLatency = 6 * time.Millisecond

func newBenchServer(maxJobs int) (*server.Server, *transport.MemNetwork, error) {
	net := transport.NewMemShaped(transport.Shape{Latency: serveNetLatency})
	srv, err := server.New(server.Config{
		Cluster: rdd.Config{
			Name:             fmt.Sprintf("bench-serve-%d", benchServerSeq()),
			NumExecutors:     4,
			CoresPerExecutor: 4,
			Network:          net,
		},
		MaxConcurrentJobs: maxJobs,
		DefaultTenant:     server.TenantConfig{BurstJobs: 1000, RefillPerSec: 1000, MaxQueued: 1000},
	})
	if err != nil {
		net.Close()
		return nil, nil, err
	}
	return srv, net, nil
}

var benchSeqMu sync.Mutex
var benchSeq int

func benchServerSeq() int {
	benchSeqMu.Lock()
	defer benchSeqMu.Unlock()
	benchSeq++
	return benchSeq
}

type serveClient struct{ base string }

func (c serveClient) post(path string, body any, out any) (int, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := http.Post(c.base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

func (c serveClient) submit(req server.JobRequest) (string, error) {
	var st server.JobStatus
	code, err := c.post("/api/v1/jobs", req, &st)
	if err != nil {
		return "", err
	}
	if code != http.StatusAccepted {
		return "", fmt.Errorf("bench: submit rejected with status %d", code)
	}
	return st.ID, nil
}

func (c serveClient) wait(id string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(c.base + "/api/v1/jobs/" + id)
		if err != nil {
			return err
		}
		var st server.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return err
		}
		switch st.State {
		case server.JobDone:
			return nil
		case server.JobFailed:
			return fmt.Errorf("bench: job %s failed: %s", id, st.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("bench: job %s timed out after %v", id, timeout)
}

func benchJobRequest(tenant string) server.JobRequest {
	return server.JobRequest{
		Tenant: tenant, Model: "lr", Profile: "avazu", Scale: 60000,
		Iterations: 10, Strategy: "imm", Partitions: 4, SaveAs: "-",
	}
}

// serveThroughput: the same 8 jobs, serialized vs 4 tenants × 2 jobs
// concurrent.
func serveThroughput(r *Report) error {
	const jobs = 12
	srv, net, err := newBenchServer(jobs)
	if err != nil {
		return err
	}
	defer net.Close()
	defer srv.Close()
	c := serveClient{base: "http://" + srv.Addr()}

	// Warm-up job amortizes first-touch costs out of both measurements.
	id, err := c.submit(benchJobRequest("warmup"))
	if err != nil {
		return err
	}
	if err := c.wait(id, time.Minute); err != nil {
		return err
	}

	serialStart := time.Now()
	for i := 0; i < jobs; i++ {
		id, err := c.submit(benchJobRequest("serial"))
		if err != nil {
			return err
		}
		if err := c.wait(id, time.Minute); err != nil {
			return err
		}
	}
	serialWall := time.Since(serialStart)

	concStart := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, err := c.submit(benchJobRequest(fmt.Sprintf("tenant-%d", i%4)))
			if err == nil {
				err = c.wait(id, time.Minute)
			}
			if err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	concWall := time.Since(concStart)

	speedup := serialWall.Seconds() / concWall.Seconds()
	r.PhasesSec["serve.jobs.serialized_sec"] = serialWall.Seconds()
	r.PhasesSec["serve.jobs.concurrent_sec"] = concWall.Seconds()
	r.PhasesSec["serve.jobs.speedup"] = speedup
	r.AddRow("throughput", fmt.Sprintf("%d jobs serialized", jobs),
		fmt.Sprintf("%.2fs (%.1f jobs/s)", serialWall.Seconds(), float64(jobs)/serialWall.Seconds()))
	r.AddRow("throughput", "same jobs, 4 concurrent tenants",
		fmt.Sprintf("%.2fs (%.1f jobs/s, %.2fx)", concWall.Seconds(), float64(jobs)/concWall.Seconds(), speedup))
	r.AddNote("throughput: 4 concurrent tenants %.2fx vs serialized (acceptance floor 2.0x) — per-stage latency (%v/message) overlaps across tenants", speedup, serveNetLatency)
	return nil
}

// serveLatency: client-observed p50/p99 at several offered QPS levels
// against the batched prediction endpoint.
func serveLatency(r *Report) error {
	srv, net, err := newBenchServer(1)
	if err != nil {
		return err
	}
	defer net.Close()
	defer srv.Close()

	const dim = 200
	rng := rand.New(rand.NewSource(42))
	w := make([]float64, dim)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	srv.RegisterModel("bench-lr", &mllib.RegressionModel{Weights: w})
	c := serveClient{base: "http://" + srv.Addr()}

	point := make([]float64, dim)
	for i := range point {
		point[i] = rng.NormFloat64()
	}
	body := map[string]any{"points": []any{point}}

	for _, qps := range []int{50, 100, 200} {
		const duration = 1500 * time.Millisecond
		n := int(duration.Seconds() * float64(qps))
		lats := make([]int64, 0, n)
		var mu sync.Mutex
		var wg sync.WaitGroup
		tick := time.NewTicker(time.Second / time.Duration(qps))
		for i := 0; i < n; i++ {
			<-tick.C
			wg.Add(1)
			go func() {
				defer wg.Done()
				start := time.Now()
				code, err := c.post("/api/v1/models/bench-lr/predict", body, nil)
				if err != nil || code != http.StatusOK {
					return
				}
				mu.Lock()
				lats = append(lats, time.Since(start).Nanoseconds())
				mu.Unlock()
			}()
		}
		tick.Stop()
		wg.Wait()
		if len(lats) < n*9/10 {
			return fmt.Errorf("bench: only %d/%d predictions succeeded at %d qps", len(lats), n, qps)
		}
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		p50 := lats[len(lats)/2]
		p99 := lats[len(lats)*99/100]
		r.Quantiles[fmt.Sprintf("serve.predict.qps%d/p50", qps)] = p50
		r.Quantiles[fmt.Sprintf("serve.predict.qps%d/p99", qps)] = p99
		r.AddRow("serving", fmt.Sprintf("%d qps offered", qps),
			fmt.Sprintf("p50 %v  p99 %v (%d reqs)",
				time.Duration(p50).Round(10*time.Microsecond),
				time.Duration(p99).Round(10*time.Microsecond), len(lats)))
	}
	r.AddNote("serving: micro-batched predictions (size-or-deadline drain), latency measured at the HTTP client")
	return nil
}

// serveFairShare: two tenants at 2:1 weights keep the cluster
// saturated; the scheduler's service-time split over a window where
// both hold a backlog should track the weights.
func serveFairShare(r *Report) error {
	const jobsPer = 16
	srv, net, err := newBenchServer(2 * jobsPer)
	if err != nil {
		return err
	}
	defer net.Close()
	defer srv.Close()
	c := serveClient{base: "http://" + srv.Addr()}

	for name, weight := range map[string]float64{"gold": 2, "bronze": 1} {
		req, err := http.NewRequest(http.MethodPut,
			c.base+"/api/v1/tenants/"+name,
			bytes.NewReader([]byte(fmt.Sprintf(`{"weight": %g, "burst_jobs": 1000, "refill_per_sec": 1000, "max_queued": 1000}`, weight))))
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		resp.Body.Close()
	}

	// Launch everything at once; with 2×16 jobs × 8 partitions against
	// 16 slots both tenants stay backlogged for most of the run.
	spec := func(tenant string) server.JobRequest {
		s := benchJobRequest(tenant)
		s.Partitions = 8
		s.Iterations = 6
		return s
	}
	ids := make([]string, 0, 2*jobsPer)
	for i := 0; i < jobsPer; i++ {
		for _, tenant := range []string{"gold", "bronze"} {
			id, err := c.submit(spec(tenant))
			if err != nil {
				return err
			}
			ids = append(ids, id)
		}
	}

	// Sample service totals while both tenants still have queued work,
	// then again before either drains: the delta ratio is the measured
	// share under contention (totals at completion converge to the
	// demand ratio instead).
	stats := func() (gold, bronze int64, bothBacklogged bool) {
		ts := srv.Context().TenantStats()
		g, b := ts["gold"], ts["bronze"]
		return g.ServiceNS, b.ServiceNS, g.Queued > 0 && b.Queued > 0
	}
	var g0, b0 int64
	deadline := time.Now().Add(30 * time.Second)
	for {
		var ok bool
		if g0, b0, ok = stats(); ok {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("bench: tenants never simultaneously backlogged")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Track the last sample where both were still queued.
	g1, b1 := g0, b0
	for time.Now().Before(deadline) {
		g, b, ok := stats()
		if !ok {
			break
		}
		g1, b1 = g, b
		time.Sleep(10 * time.Millisecond)
	}
	for _, id := range ids {
		if err := c.wait(id, time.Minute); err != nil {
			return err
		}
	}
	dg, db := g1-g0, b1-b0
	if db <= 0 || dg <= 0 {
		return fmt.Errorf("bench: degenerate fair-share window (gold %d, bronze %d)", dg, db)
	}
	ratio := float64(dg) / float64(db)
	r.Quantiles["serve.fairshare.ratio_x100"] = int64(ratio * 100)
	r.AddRow("fair share", "weights gold:bronze = 2:1",
		fmt.Sprintf("service split %.2f:1 over saturated window", ratio))
	r.AddNote("fair share: measured %.2f:1 against 2:1 weights (acceptance band 1.5-2.5)", ratio)
	return nil
}
