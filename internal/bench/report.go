// Package bench renders the paper's tables and figures from the sim
// layer as aligned text reports: one runner per table/figure of the
// evaluation section, each printing the same rows/series the paper
// reports plus the paper's reference numbers where the text states
// them.
package bench

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Report is one rendered table or figure.
type Report struct {
	// Title identifies the table/figure ("Figure 16: ...").
	Title string
	// Header names the columns.
	Header []string
	// Rows are the data cells, already formatted.
	Rows [][]string
	// Notes carry paper-reference values and caveats.
	Notes []string

	// The raw maps below are populated by engine-backed reports (not the
	// calibrated simulation) so `sparkerbench -json` output can be diffed
	// numerically across PRs without parsing formatted cells.

	// PhasesSec maps engine phase name to accumulated seconds.
	PhasesSec map[string]float64 `json:",omitempty"`
	// Counters maps engine counter name to its value.
	Counters map[string]int64 `json:",omitempty"`
	// Quantiles maps "<histogram>/<quantile>" (e.g. "ring.step.ns/p95")
	// to the raw sample value.
	Quantiles map[string]int64 `json:",omitempty"`
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// AddNote appends a note line.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// RenderJSON emits the report as an indented JSON object, the
// machine-readable form `sparkerbench -json` writes so successive PRs
// can diff perf trajectories (BENCH_*.json) without parsing tables.
func (r *Report) RenderJSON() string {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		// Report holds only strings and string slices; marshaling can
		// not fail, but never let a render path panic the bench tool.
		return fmt.Sprintf("{\"error\": %q}", err.Error())
	}
	return string(b)
}

// RenderJSONReports emits a set of reports as one JSON array.
func RenderJSONReports(reports []*Report) string {
	b, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		return fmt.Sprintf("[{\"error\": %q}]", err.Error())
	}
	return string(b)
}

// RenderMarkdown produces a GitHub-flavored markdown table, for
// pasting reproduction results into issues and docs.
func (r *Report) RenderMarkdown() string {
	var b strings.Builder
	b.WriteString("### ")
	b.WriteString(r.Title)
	b.WriteString("\n\n")
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteString("\n")
	}
	writeRow(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		b.WriteString("\n> ")
		b.WriteString(n)
		b.WriteString("\n")
	}
	return b.String()
}

// Render produces the aligned text form.
func (r *Report) Render() string {
	var b strings.Builder
	b.WriteString(r.Title)
	b.WriteString("\n")
	b.WriteString(strings.Repeat("=", len(r.Title)))
	b.WriteString("\n")

	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteString("\n")
	}
	return b.String()
}
