package bench

import (
	"testing"

	"sparker/internal/transport"
)

// TestCompressSweepSmall runs the codec sweep machinery on the mem
// transport with small segments: the full TCP report is for
// `make bench-compare`, but the row/quantile plumbing and the headline
// byte-reduction claims must be covered by `go test`.
func TestCompressSweepSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short")
	}
	points := []compressPoint{{segBytes: 256 << 10, trials: 2}}
	r, err := compressSweep(func() transport.Network { return transport.NewMem() },
		"mem", 2, 1, points, 6)
	if err != nil {
		t.Fatal(err)
	}
	// 4 codec rows for the size, 1 dense LR row, 3 codec LR rows.
	if want := len(compressCodecs) + 1 + len(compressLossCodecs); len(r.Rows) != want {
		t.Fatalf("got %d rows, want %d", len(r.Rows), want)
	}
	for _, row := range r.Rows {
		if len(row) != len(r.Header) {
			t.Fatalf("row width %d != header width %d: %v", len(row), len(r.Header), row)
		}
	}
	// Dense reports ratio 1.0×; fp16 ≥ 3.9×; top-k ≥ 10×. These hold at
	// any size with ≥4-element chunks, so the small sweep pins them.
	if v := r.Quantiles["compress/256KB/none/ratio_milli"]; v < 990 || v > 1010 {
		t.Errorf("dense ratio_milli = %d, want ~1000", v)
	}
	if v := r.Quantiles["compress/256KB/fp16/ratio_milli"]; v < 3900 {
		t.Errorf("fp16 ratio_milli = %d, want >= 3900", v)
	}
	if v := r.Quantiles["compress/256KB/int8/ratio_milli"]; v < 7000 {
		t.Errorf("int8 ratio_milli = %d, want >= 7000", v)
	}
	if v := r.Quantiles["compress/256KB/topk/ratio_milli"]; v < 10000 {
		t.Errorf("topk ratio_milli = %d, want >= 10000", v)
	}
	// Wire bytes must really shrink, codec to codec.
	dense := r.Quantiles["compress/256KB/none/wire_bytes"]
	fp16 := r.Quantiles["compress/256KB/fp16/wire_bytes"]
	if dense <= 0 || fp16 <= 0 || fp16*3 > dense {
		t.Errorf("wire bytes dense %d vs fp16 %d: compression not visible on the wire", dense, fp16)
	}
	// The convergence half: every codec row exists, and the EF
	// quantizers reach the dense target within the 1.2× acceptance line.
	for _, label := range []string{"fp16", "int8+ef"} {
		it := r.Quantiles["compress/lr/iters/"+label]
		ratio := r.Quantiles["compress/lr/iters_ratio_milli/"+label]
		if it <= 0 {
			t.Errorf("%s never reached the dense target loss", label)
		} else if ratio > 1200 {
			t.Errorf("%s took %d iterations (ratio_milli %d), acceptance line is 1200", label, it, ratio)
		}
	}
	if _, ok := r.Quantiles["compress/lr/iters/topk+ef"]; !ok {
		t.Error("missing top-k LR row")
	}
}
