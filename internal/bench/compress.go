package bench

// CompressSweep is the evidence figure for the wire codec layer
// (DESIGN.md §13): the real collective stack over TCP loopback, running
// the ring reduce-scatter at MLlib-shaped segment sizes under every
// codec, reporting actual bytes on the wire (endpoint counters feed the
// ring.step histograms — nothing simulated) against the dense raw
// equivalent, plus wall clock. The second half is the lossy-training
// check: logistic regression to a dense target loss, counting
// iterations under each codec — compression that halves bytes but
// doubles iterations is a loss, and this table is where that would
// show.
//
// `make bench-compare` renders this as BENCH_PR6.json.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"sparker/internal/collective"
	"sparker/internal/comm"
	"sparker/internal/core"
	"sparker/internal/data"
	"sparker/internal/metrics"
	"sparker/internal/mllib"
	"sparker/internal/rdd"
	"sparker/internal/transport"
)

// compressCodecs are the sweep's wire modes, dense first as the
// baseline.
var compressCodecs = []collective.Compression{
	{Codec: collective.CodecNone},
	{Codec: collective.CodecFP16},
	{Codec: collective.CodecInt8},
	{Codec: collective.CodecTopK, TopKRatio: 0.01},
}

// compressPoint is one segment size of the wire sweep: the 1MB
// mid-size and the paper's 7.6MB avazu-shaped aggregator.
type compressPoint struct {
	segBytes int
	trials   int
}

var defaultCompressPoints = []compressPoint{
	{segBytes: 1 << 20, trials: 8},
	{segBytes: 7_600_000, trials: 5},
}

// compressModeResult is one (size, codec) measurement.
type compressModeResult struct {
	wallP50   time.Duration
	wireBytes int64 // Σ ring.step.bytes across ranks: actual frames sent
	rawBytes  int64 // Σ ring.step.raw.bytes: dense equivalent of the same sends
}

// ratioMilli is the bytes-on-wire reduction ×1000 (milli rounding, so
// fp16's 3.9997× at realistic header overhead reports as 4000).
func (m compressModeResult) ratioMilli() int64 {
	if m.wireBytes == 0 {
		return 0
	}
	return int64(float64(m.rawBytes)/float64(m.wireBytes)*1000 + 0.5)
}

// runCompressMode measures one codec at one segment size: n ranks over
// mkNet, interleavable trials, per-rank metrics registries summed at
// the end.
func runCompressMode(mkNet func() transport.Network, name string, n, p, segLen, warmup, trials int, comp collective.Compression) (compressModeResult, error) {
	var res compressModeResult
	net := mkNet()
	defer net.Close()
	eps, err := comm.NewGroup(net, name, n)
	if err != nil {
		return res, err
	}
	defer comm.CloseGroup(eps)

	rng := rand.New(rand.NewSource(6))
	inputs := make([][][]float64, n)
	for r := range inputs {
		inputs[r] = make([][]float64, p*n)
		for i := range inputs[r] {
			seg := make([]float64, segLen)
			for j := range seg {
				seg[j] = rng.NormFloat64()
			}
			inputs[r][i] = seg
		}
	}
	regs := make([]*metrics.Registry, n)
	ctxs := make([]context.Context, n)
	for r := range ctxs {
		regs[r] = metrics.NewRegistry()
		ctx := metrics.NewContext(context.Background(), regs[r])
		ctx = collective.WithChunkBytes(ctx, 0) // auto-sized chunk trains
		if comp.Codec != collective.CodecNone {
			ctx = collective.WithCompression(ctx, comp)
		}
		ctxs[r] = ctx
	}

	var walls []time.Duration
	for t := 0; t < warmup+trials; t++ {
		start := time.Now()
		errs := make(chan error, n)
		for _, e := range eps {
			go func(e *comm.Endpoint) {
				_, err := collective.RingReduceScatter(ctxs[e.Rank()], e, inputs[e.Rank()], p, collective.F64Ops())
				errs <- err
			}(e)
		}
		for range eps {
			if err := <-errs; err != nil {
				return res, err
			}
		}
		if t >= warmup {
			walls = append(walls, time.Since(start))
		}
	}
	sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
	res.wallP50 = durQuantile(walls, 0.50)
	for _, reg := range regs {
		res.wireBytes += reg.Histogram(metrics.HistRingStepBytes).Snapshot().Sum
		if comp.Codec != collective.CodecNone {
			res.rawBytes += reg.Histogram(metrics.HistRingStepRawBytes).Snapshot().Sum
		}
	}
	if comp.Codec == collective.CodecNone {
		res.rawBytes = res.wireBytes // dense frames are their own raw size
	}
	return res, nil
}

// compressLabel names a codec row, marking error feedback.
func compressLabel(c collective.Compression) string {
	s := c.Codec.String()
	if c.ErrorFeedback {
		s += "+ef"
	}
	return s
}

// compressLossCodecs are the training-convergence modes: quantizers
// with error feedback (the EF-SGD construction the codec layer exists
// for), top-k with EF as the aggressive point.
var compressLossCodecs = []collective.Compression{
	{Codec: collective.CodecFP16},
	{Codec: collective.CodecInt8, ErrorFeedback: true},
	{Codec: collective.CodecTopK, TopKRatio: 0.01, ErrorFeedback: true},
}

// lrCurve trains LR under comp for iters iterations and returns the
// true loss at the weights entering each iteration. The loss is
// measured with a separate uncompressed aggregation: the training
// run's own loss estimate travels through the codec — top-k can drop
// the aggregator's loss/count scalar tail outright, reporting a bogus
// near-zero loss — so a trustworthy time-to-target curve needs clean
// reads. The gradient step itself uses the compressed aggregation,
// which is the behavior under test.
func lrCurve(train *rdd.RDD[mllib.LabeledPoint], dim, iters int, comp collective.Compression) ([]float64, error) {
	w := make([]float64, dim)
	losses := make([]float64, 0, iters)
	seqOp := func(snapshot []float64) func(acc []float64, p mllib.LabeledPoint) []float64 {
		return func(acc []float64, p mllib.LabeledPoint) []float64 {
			loss := mllib.LogisticGradient{}.Compute(p.Features, p.Label, snapshot, acc[:dim])
			acc[dim] += loss
			acc[dim+1]++
			return acc
		}
	}
	for iter := 1; iter <= iters; iter++ {
		snap := append([]float64(nil), w...)
		clean, err := mllib.AggregateF64(train, dim+2, seqOp(snap), mllib.StrategyAllReduce, 2, 0)
		if err != nil {
			return nil, err
		}
		count := clean[dim+1]
		if count == 0 {
			return nil, fmt.Errorf("bench: empty LR dataset")
		}
		losses = append(losses, clean[dim]/count)
		agg := clean
		if comp.Codec != collective.CodecNone {
			if agg, err = mllib.AggregateF64(train, dim+2, seqOp(snap), mllib.StrategyAllReduce, 2, 0,
				core.WithCompression(comp.Codec, comp)); err != nil {
				return nil, err
			}
		}
		g := agg[:dim]
		for i := range g {
			g[i] /= count // the clean count: the codec may have mangled its own
		}
		w, _ = mllib.SimpleUpdater{}.Update(w, g, 1, iter, 0)
	}
	return losses, nil
}

// lrToTarget returns the 1-based iteration at which the true loss
// first reached target (0 = never within maxIters), plus the final
// loss. A non-finite loss means the compressed run diverged; nothing
// after that point counts as reaching the target.
func lrToTarget(train *rdd.RDD[mllib.LabeledPoint], dim, maxIters int, target float64, comp collective.Compression) (int, float64, error) {
	losses, err := lrCurve(train, dim, maxIters, comp)
	if err != nil {
		return 0, 0, err
	}
	reached := 0
	for i, l := range losses {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			break
		}
		if l <= target*1.001 {
			reached = i + 1
			break
		}
	}
	return reached, losses[len(losses)-1], nil
}

// compressSweep runs the wire and training halves. Split from
// CompressSweep so tests can run it small on the mem transport.
func compressSweep(mkNet func() transport.Network, transportName string, n, p int, points []compressPoint, lrIters int) (*Report, error) {
	r := &Report{
		Title:     "Wire compression sweep: codec bytes-on-wire and LR time-to-target-loss",
		Header:    []string{"Segment", "Codec", "Wall p50", "Wire bytes", "Raw bytes", "Reduction"},
		Quantiles: map[string]int64{},
	}
	for _, pt := range points {
		segLen := pt.segBytes / 8
		tag := fmtBytes(int64(pt.segBytes))
		for _, comp := range compressCodecs {
			label := compressLabel(comp)
			res, err := runCompressMode(mkNet, fmt.Sprintf("compsweep-%s-%s", tag, label),
				n, p, segLen, 1, pt.trials, comp)
			if err != nil {
				return nil, fmt.Errorf("bench: compress %s/%s: %w", tag, label, err)
			}
			r.AddRow(tag, label, fdur(res.wallP50),
				fmtBytes(res.wireBytes), fmtBytes(res.rawBytes),
				fmt.Sprintf("%.1f×", float64(res.ratioMilli())/1000))
			pre := "compress/" + tag + "/" + label
			r.Quantiles[pre+"/wire_bytes"] = res.wireBytes
			r.Quantiles[pre+"/raw_bytes"] = res.rawBytes
			r.Quantiles[pre+"/ratio_milli"] = res.ratioMilli()
			r.Quantiles[pre+"/wall_p50_ns"] = int64(res.wallP50)
		}
	}

	// Training half: dense LR fixes the target loss; each codec races to
	// it with a 2× iteration budget so slow convergence is visible, not
	// truncated at the pass line.
	ctx, err := rdd.NewContext(rdd.Config{
		Name:             "bench-compress-lr",
		NumExecutors:     4,
		CoresPerExecutor: 1,
	})
	if err != nil {
		return nil, err
	}
	defer ctx.Close()
	prof, err := data.ProfileByName("avazu")
	if err != nil {
		return nil, err
	}
	sp := prof.Scaled(200_000)
	spec := sp.ClassificationSpec(1)
	spec.NNZAlpha = 1.5 // power-law rows: the avazu shape the profile models
	pts := data.GenClassification(spec)
	train := rdd.FromSlice(ctx, pts, 4).Cache()

	denseIter, denseLoss, err := lrToTarget(train, sp.Features, lrIters, 0, collective.Compression{})
	if err != nil {
		return nil, err
	}
	_ = denseIter // dense defines the target; by construction it hits at lrIters
	r.Quantiles["compress/lr/iters/dense"] = int64(lrIters)
	r.AddRow("LR", "dense", "-", "-", "-", fmt.Sprintf("target loss %.6f in %d iters", denseLoss, lrIters))
	for _, comp := range compressLossCodecs {
		label := compressLabel(comp)
		reached, final, err := lrToTarget(train, sp.Features, 2*lrIters, denseLoss, comp)
		if err != nil {
			return nil, fmt.Errorf("bench: compress lr %s: %w", label, err)
		}
		note := fmt.Sprintf("loss %.6f, target hit at iter %d", final, reached)
		ratioMilli := int64(0)
		if reached > 0 {
			ratioMilli = int64(float64(reached)/float64(lrIters)*1000 + 0.5)
		} else {
			note = fmt.Sprintf("loss %.6f, target NOT reached in %d iters", final, 2*lrIters)
		}
		r.AddRow("LR", label, "-", "-", "-", note)
		r.Quantiles["compress/lr/iters/"+label] = int64(reached)
		r.Quantiles["compress/lr/iters_ratio_milli/"+label] = ratioMilli
	}

	r.AddNote("real collective layer over %s loopback: N=%d ranks, P=%d channels, auto-sized chunk trains", transportName, n, p)
	r.AddNote("wire bytes = Σ ring.step.bytes (frames actually sent); raw bytes = Σ ring.step.raw.bytes (dense equivalent of the same sends); reduction = raw/wire")
	r.AddNote("top-k keeps k=1%% of elements per chunk (index+value frames, dense fallback above the 12k ≥ 8n density threshold)")
	r.AddNote("LR: avazu-shaped synthetic (power-law nnz α=1.5), %d-iteration dense run fixes the target loss; codecs get a 2× budget; iters_ratio_milli ≤ 1200 is the EF acceptance line", lrIters)
	r.AddNote("loss curves come from a clean (uncompressed) read each iteration — the compressed run's own loss estimate is untrusted; a non-finite loss marks the run diverged")
	return r, nil
}

// CompressSweep runs the full TCP-loopback codec sweep. Reach it via
// `sparkerbench -only compress` or `make bench-compare`.
func CompressSweep() (*Report, error) {
	return compressSweep(func() transport.Network { return transport.NewTCP() },
		"tcp", 4, 1, defaultCompressPoints, 15)
}
