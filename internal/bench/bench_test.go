package bench

import (
	"strings"
	"testing"
)

func TestReportRender(t *testing.T) {
	r := &Report{
		Title:  "T",
		Header: []string{"a", "bb"},
	}
	r.AddRow("1", "2")
	r.AddRow("333", "4")
	r.AddNote("n=%d", 5)
	out := r.Render()
	for _, want := range []string{"T\n=", "a    bb", "333", "note: n=5"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestAllReportsRender(t *testing.T) {
	reports, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 18 {
		t.Fatalf("got %d reports, want 18 (3 tables + 11 figures + 3 ablations + engine metrics)", len(reports))
	}
	for _, r := range reports {
		out := r.Render()
		if len(r.Rows) == 0 {
			t.Errorf("%s has no rows", r.Title)
		}
		if !strings.Contains(out, r.Title) {
			t.Errorf("%s render missing title", r.Title)
		}
		for _, row := range r.Rows {
			if len(row) != len(r.Header) {
				t.Errorf("%s: row width %d != header width %d", r.Title, len(row), len(r.Header))
			}
		}
	}
}

func TestByID(t *testing.T) {
	r, err := ByID("fig16")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Title, "Figure 16") {
		t.Fatalf("ByID(fig16) returned %q", r.Title)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown id should fail")
	}
}

func TestFig17SpeedupsAllPositive(t *testing.T) {
	r, err := Fig17()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 9 {
		t.Fatalf("Figure 17 should have 9 workloads, got %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Speedup columns end with "×" and must not start with "0.".
		for _, col := range []int{3, 6} {
			if strings.HasPrefix(row[col], "0.") {
				t.Errorf("workload %s: Sparker slower than Spark (%s)", row[0], row[col])
			}
		}
	}
}

func TestFmtBytes(t *testing.T) {
	cases := map[int64]string{1024: "1KB", 8 * mb: "8MB", 12: "12B", 256 * mb: "256MB"}
	for in, want := range cases {
		if got := fmtBytes(in); got != want {
			t.Errorf("fmtBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestAWSVariantsRender(t *testing.T) {
	for _, id := range []string{"fig12-aws", "fig13-aws", "fig16-aws", "ablation-imm", "ablation-algos", "ablation-allreduce"} {
		r, err := ByID(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(r.Rows) == 0 {
			t.Errorf("%s has no rows", id)
		}
	}
}

func TestRenderMarkdown(t *testing.T) {
	r := &Report{Title: "T", Header: []string{"a", "b"}}
	r.AddRow("1", "x|y")
	r.AddNote("n")
	md := r.RenderMarkdown()
	for _, want := range []string{"### T", "| a | b |", "| --- | --- |", "x\\|y", "> n"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestVerifyClaimsAllPass(t *testing.T) {
	claims, err := VerifyClaims()
	if err != nil {
		t.Fatal(err)
	}
	if len(claims) != 13 {
		t.Fatalf("checklist has %d claims, want 13", len(claims))
	}
	for _, c := range claims {
		if !c.Pass {
			t.Errorf("claim %s failed: paper %s, measured %s", c.ID, c.Paper, c.Measured)
		}
	}
	out := RenderClaims(claims)
	if !strings.Contains(out, "13/13 claims reproduce") {
		t.Errorf("render summary wrong:\n%s", out)
	}
}
