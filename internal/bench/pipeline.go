package bench

// PipelineSweep is the before/after evidence for the pipelined
// double-buffered ring (DESIGN.md "Pipelined ring collectives"): a
// segment-size sweep of the real collective layer — not the calibrated
// simulation — over TCP loopback, running every size twice: chunking
// disabled (the PR 1 single-frame step) and chunking on (auto-sized
// chunk trains with sharded reduction). For each size it reports the
// ring-step latency p50/p95 of both modes from the engine's own
// histograms, the wall-clock speedup, and the overlap ratio measured
// from the ring-step trace spans (reduce_ns/overlap_ns attributes):
// the fraction of decode-reduce time that ran while wire work was
// still in flight, i.e. communication the pipeline actually hid.
//
// `make bench-compare` renders this as BENCH_PR4.json.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strconv"
	"time"

	"sparker/internal/collective"
	"sparker/internal/comm"
	"sparker/internal/metrics"
	"sparker/internal/trace"
	"sparker/internal/transport"
)

// pipelinePoint is one column of the sweep.
type pipelinePoint struct {
	segBytes int // bytes per ring segment (8·segLen)
	trials   int // timed collectives per mode
}

// defaultPipelinePoints spans 1KB to the 154MB LDA-scale aggregator
// segments from Table 2. Trials shrink as segments grow: big segments
// are long and stable, small ones are latency-bound and noisy.
var defaultPipelinePoints = []pipelinePoint{
	{segBytes: 1 << 10, trials: 30},
	{segBytes: 64 << 10, trials: 20},
	{segBytes: 1 << 20, trials: 10},
	{segBytes: 7_600_000, trials: 12},
	{segBytes: 64 << 20, trials: 5},
	{segBytes: 154_000_000, trials: 5},
}

// pipelineModeResult is one (size, mode) measurement.
type pipelineModeResult struct {
	wallP50, wallP95 time.Duration // per-collective wall clock
	wallTotal        time.Duration // Σ timed trials — what training pays
	stepP50, stepP95 time.Duration // ring.step.ns across all ranks
	reduceNS         int64         // Σ chunk decode-reduce time (spans)
	overlapNS        int64         // Σ thereof overlapped with wire
}

// overlapRatio is overlapNS/reduceNS, or 0 when the mode never
// produced a chunked step (the off mode, or segments below one chunk).
func (m pipelineModeResult) overlapRatio() float64 {
	if m.reduceNS == 0 {
		return 0
	}
	return float64(m.overlapNS) / float64(m.reduceNS)
}

// durQuantile returns the q-th quantile of sorted per-trial durations.
func durQuantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// pipelineRig is one mode's live measurement state: a comm group over
// its own network, per-rank contexts, and the telemetry sinks the
// result is later read from.
type pipelineRig struct {
	net    transport.Network
	eps    []*comm.Endpoint
	regs   []*metrics.Registry
	exp    *trace.MemExporter
	ctxs   []context.Context
	inputs [][][]float64
	p      int
	walls  []time.Duration
}

// newPipelineRig builds the group and inputs for one (size, mode).
func newPipelineRig(mkNet func() transport.Network, name string, n, p, segLen int, chunked bool, cores int) (*pipelineRig, error) {
	rig := &pipelineRig{net: mkNet(), p: p}
	eps, err := comm.NewGroup(rig.net, name, n)
	if err != nil {
		rig.net.Close()
		return nil, err
	}
	rig.eps = eps

	// Deterministic dense inputs; reduce-scatter mutates them in place,
	// which is fine — later trials reduce the grown values, the timing
	// profile is identical.
	rng := rand.New(rand.NewSource(4))
	rig.inputs = make([][][]float64, n)
	for r := range rig.inputs {
		rig.inputs[r] = make([][]float64, p*n)
		for i := range rig.inputs[r] {
			seg := make([]float64, segLen)
			for j := range seg {
				seg[j] = rng.NormFloat64()
			}
			rig.inputs[r][i] = seg
		}
	}

	rig.exp = &trace.MemExporter{}
	rig.regs = make([]*metrics.Registry, n)
	rig.ctxs = make([]context.Context, n)
	for r := range rig.ctxs {
		rig.regs[r] = metrics.NewRegistry()
		tr := trace.New(rig.exp)
		ctx := trace.WithSpan(context.Background(), tr.StartRoot(fmt.Sprintf("%s-rank%d", name, r)))
		ctx = metrics.NewContext(ctx, rig.regs[r])
		if chunked {
			// 0 = auto: SPARKER_CHUNK_BYTES if set, else the adaptive
			// controller seeded by this same registry as trials land.
			ctx = collective.WithCores(collective.WithChunkBytes(ctx, 0), cores)
		} else {
			ctx = collective.WithChunkBytes(ctx, -1)
		}
		rig.ctxs[r] = ctx
	}
	return rig, nil
}

func (rig *pipelineRig) close() {
	comm.CloseGroup(rig.eps)
	rig.net.Close()
}

// trial runs one ring reduce-scatter across all ranks; record=false is
// a warmup pass.
func (rig *pipelineRig) trial(record bool) error {
	start := time.Now()
	errs := make(chan error, len(rig.eps))
	for _, e := range rig.eps {
		go func(e *comm.Endpoint) {
			_, err := collective.RingReduceScatter(rig.ctxs[e.Rank()], e, rig.inputs[e.Rank()], rig.p, collective.F64Ops())
			errs <- err
		}(e)
	}
	for range rig.eps {
		if err := <-errs; err != nil {
			return err
		}
	}
	if record {
		rig.walls = append(rig.walls, time.Since(start))
	}
	return nil
}

// result folds the rig's walls, histograms and spans into the report
// form.
func (rig *pipelineRig) result() pipelineModeResult {
	var res pipelineModeResult
	walls := append([]time.Duration(nil), rig.walls...)
	for _, w := range walls {
		res.wallTotal += w
	}
	sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
	res.wallP50 = durQuantile(walls, 0.50)
	res.wallP95 = durQuantile(walls, 0.95)

	// Step latency across all ranks: merge the per-rank histograms.
	merged := metrics.NewRegistry().Histogram(metrics.HistRingStepNS)
	for _, reg := range rig.regs {
		merged.Merge(reg.Histogram(metrics.HistRingStepNS).Snapshot())
	}
	res.stepP50 = time.Duration(merged.Quantile(0.50))
	res.stepP95 = time.Duration(merged.Quantile(0.95))

	// Overlap from the ring-step spans: chunked steps carry the reduce
	// and overlapped-reduce accumulators as attributes.
	for _, s := range rig.exp.Named("ring-step") {
		if v, ok := s.Attr("reduce_ns"); ok {
			if ns, err := strconv.ParseInt(v, 10, 64); err == nil {
				res.reduceNS += ns
			}
		}
		if v, ok := s.Attr("overlap_ns"); ok {
			if ns, err := strconv.ParseInt(v, 10, 64); err == nil {
				res.overlapNS += ns
			}
		}
	}
	return res
}

// runPipelinePair measures chunking off and on at one segment size
// with the trials interleaved — off, on, off, on — so slow drift on a
// shared machine (CPU contention, thermal state) hits both modes
// equally and cancels out of the speedup ratio.
func runPipelinePair(mkNet func() transport.Network, name string, n, p, segLen, warmup, trials, cores int) (off, on pipelineModeResult, err error) {
	offRig, err := newPipelineRig(mkNet, name+"-off", n, p, segLen, false, cores)
	if err != nil {
		return off, on, err
	}
	defer offRig.close()
	onRig, err := newPipelineRig(mkNet, name+"-on", n, p, segLen, true, cores)
	if err != nil {
		return off, on, err
	}
	defer onRig.close()
	for t := 0; t < warmup+trials; t++ {
		if err := offRig.trial(t >= warmup); err != nil {
			return off, on, fmt.Errorf("chunking off: %w", err)
		}
		if err := onRig.trial(t >= warmup); err != nil {
			return off, on, fmt.Errorf("chunking on: %w", err)
		}
	}
	return offRig.result(), onRig.result(), nil
}

// pipelineSweep runs the off/on comparison at every point. Split from
// PipelineSweep so tests can run a small sweep on the mem transport.
func pipelineSweep(mkNet func() transport.Network, transportName string, n, p int, points []pipelinePoint) (*Report, error) {
	cores := runtime.NumCPU()
	r := &Report{
		Title: "Pipelined ring sweep: chunked double-buffered vs single-frame steps",
		Header: []string{"Segment", "Off step p50", "Off step p95", "On step p50",
			"On step p95", "Wall p50 off→on", "Speedup", "Overlap"},
		Quantiles: map[string]int64{},
	}
	for _, pt := range points {
		segLen := pt.segBytes / 8
		warmup := 1
		if pt.segBytes <= 1<<20 {
			warmup = 3
		}
		tag := fmtBytes(int64(pt.segBytes))
		off, on, err := runPipelinePair(mkNet, fmt.Sprintf("pipesweep-%s", tag), n, p, segLen, warmup, pt.trials, cores)
		if err != nil {
			return nil, fmt.Errorf("bench: pipeline %s: %w", tag, err)
		}
		// Speedup over the summed trial walls: training cost is the sum
		// of its iterations, so the off mode's GC/allocation tail spikes
		// count — they are exactly what the chunk pipeline removes.
		speedup := float64(off.wallTotal) / float64(max64(int64(on.wallTotal), 1))
		overlap := on.overlapRatio()
		r.AddRow(tag,
			fdur(off.stepP50), fdur(off.stepP95),
			fdur(on.stepP50), fdur(on.stepP95),
			fdur(off.wallP50)+" → "+fdur(on.wallP50),
			fx(speedup),
			fmt.Sprintf("%.0f%%", overlap*100))
		pre := "pipeline/" + tag
		r.Quantiles[pre+"/off/step_p50_ns"] = int64(off.stepP50)
		r.Quantiles[pre+"/off/step_p95_ns"] = int64(off.stepP95)
		r.Quantiles[pre+"/on/step_p50_ns"] = int64(on.stepP50)
		r.Quantiles[pre+"/on/step_p95_ns"] = int64(on.stepP95)
		r.Quantiles[pre+"/off/wall_p50_ns"] = int64(off.wallP50)
		r.Quantiles[pre+"/on/wall_p50_ns"] = int64(on.wallP50)
		r.Quantiles[pre+"/off/wall_total_ns"] = int64(off.wallTotal)
		r.Quantiles[pre+"/on/wall_total_ns"] = int64(on.wallTotal)
		r.Quantiles[pre+"/speedup_milli"] = int64(speedup * 1000)
		r.Quantiles[pre+"/overlap_permille"] = int64(overlap * 1000)
	}
	r.AddNote("real collective layer over %s loopback: N=%d ranks, P=%d channels, cores=%d, f64 segments",
		transportName, n, p, cores)
	r.AddNote("off = single-frame steps (WithChunkBytes -1); on = auto-sized chunk trains (adaptive controller, SPARKER_CHUNK_BYTES honored)")
	r.AddNote("speedup = Σ off walls / Σ on walls over equal interleaved trials: iteration tails (GC of whole-segment frames) are real training cost")
	r.AddNote("overlap = share of decode-reduce time spent while wire traffic was still in flight (ring-step span reduce_ns/overlap_ns)")
	return r, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// PipelineSweep runs the full TCP-loopback sweep (1KB → 154MB
// segments). Minutes of runtime at the large sizes, so it is not part
// of All(); reach it via `sparkerbench -only pipeline` or
// `make bench-compare`.
func PipelineSweep() (*Report, error) {
	return pipelineSweep(func() transport.Network { return transport.NewTCP() },
		"tcp", 4, 1, defaultPipelinePoints)
}
