package bench

import "testing"

// TestElasticChurnSmall runs a scaled-down kill-and-replace
// comparison: a smaller dataset and fewer iterations, but the same
// churn schedule, convergence check and ≤3× reconfiguration gate as
// the full `-only elastic` report.
func TestElasticChurnSmall(t *testing.T) {
	p := defaultElasticParams
	p.scale = 2000
	p.iters = 16
	p.warmup = 1
	p.killAt = 5
	p.rejoinAt = 11
	r, err := elasticChurn(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"elastic/churn/wall_p50_ns",
		"elastic/churn/reconf_max_ns",
		"elastic/churn/iters_to_target",
		"elastic/nochurn/iters_to_target",
		"elastic/reconf_vs_steady_milli",
	} {
		if _, ok := r.Quantiles[key]; !ok {
			t.Fatalf("report missing quantile %q", key)
		}
	}
	if r.Quantiles["elastic/churn/evicts"] < 1 || r.Quantiles["elastic/churn/joins"] < 1 {
		t.Fatalf("churn run recorded evicts=%d joins=%d",
			r.Quantiles["elastic/churn/evicts"], r.Quantiles["elastic/churn/joins"])
	}
	if r.Quantiles["elastic/nochurn/evicts"] != 0 {
		t.Fatal("undisturbed run evicted an executor")
	}
	if r.Quantiles["elastic/churn/live"] != int64(p.execs) {
		t.Fatalf("churn run ended with %d live executors, want %d",
			r.Quantiles["elastic/churn/live"], p.execs)
	}
}
