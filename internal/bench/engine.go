package bench

import (
	"fmt"
	"sort"
	"time"

	"sparker/internal/data"
	"sparker/internal/metrics"
	"sparker/internal/mllib"
	"sparker/internal/rdd"
)

// EngineMetrics runs a small real-engine training (not the calibrated
// simulation) and reports the raw phase breakdown, full counter map and
// the typed-instrument percentiles — the engine-health baseline
// successive PRs diff through BENCH_*.json. The workload is fixed
// (seeded data, fixed iterations) so only code changes move it; times
// remain machine-dependent, but counters and distribution shapes are
// comparable.
func EngineMetrics() (*Report, error) {
	ctx, err := rdd.NewContext(rdd.Config{
		Name:             "bench-engine",
		NumExecutors:     4,
		CoresPerExecutor: 2,
		RingParallelism:  4,
	})
	if err != nil {
		return nil, err
	}
	defer ctx.Close()

	p, err := data.ProfileByName("avazu")
	if err != nil {
		return nil, err
	}
	sp := p.Scaled(200_000)
	points := data.GenClassification(sp.ClassificationSpec(1))
	train := rdd.FromSlice(ctx, points, ctx.TotalCores()).Cache()
	if _, err := mllib.TrainLogisticRegression(train, mllib.LogisticRegressionConfig{
		NumFeatures: sp.Features,
		GD: mllib.GDConfig{
			Iterations: 5,
			Strategy:   mllib.StrategySplit,
		},
	}); err != nil {
		return nil, err
	}

	rec := ctx.Metrics()
	reg := ctx.MergedMetrics()
	// The counter map is full, not sparse: every known counter appears
	// even at zero, so cross-PR diffs see "fallbacks: 0 → 2" rather
	// than a key popping into existence.
	counterMap := rec.Counters()
	for _, c := range []string{metrics.CounterRingFallback, metrics.CounterPeerFailure} {
		if _, ok := counterMap[c]; !ok {
			counterMap[c] = 0
		}
	}
	r := &Report{
		Title:     "Engine metrics: LR × split, 4 executors × 2 cores, 5 iterations",
		Header:    []string{"instrument", "count", "p50", "p95", "p99", "sum"},
		PhasesSec: map[string]float64{},
		Counters:  counterMap,
		Quantiles: map[string]int64{},
	}
	for phase, d := range rec.Snapshot() {
		r.PhasesSec[phase] = d.Seconds()
	}

	for _, name := range reg.HistogramNames() {
		s := reg.Histogram(name).Snapshot()
		if s.Count == 0 {
			continue
		}
		p50, p95, p99 := s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99)
		r.Quantiles[name+"/p50"] = p50
		r.Quantiles[name+"/p95"] = p95
		r.Quantiles[name+"/p99"] = p99
		r.AddRow(name, fmt.Sprint(s.Count),
			fmtSample(name, p50), fmtSample(name, p95), fmtSample(name, p99),
			fmtSample(name, s.Sum))
	}
	counters := make([]string, 0, len(r.Counters))
	for c := range r.Counters {
		counters = append(counters, c)
	}
	sort.Strings(counters)
	for _, c := range counters {
		r.AddNote("counter %s = %d", c, r.Counters[c])
	}
	r.AddNote("agg-compute %.3fs, agg-reduce %.3fs (absolute times are machine-dependent; diff counters and shapes)",
		r.PhasesSec[metrics.PhaseAggCompute], r.PhasesSec[metrics.PhaseAggReduce])
	return r, nil
}

// fmtSample renders a histogram sample in its native unit: durations
// for *.ns instruments, byte sizes otherwise.
func fmtSample(hist string, v int64) string {
	if len(hist) > 3 && hist[len(hist)-3:] == ".ns" {
		return time.Duration(v).Round(time.Microsecond).String()
	}
	return fmtBytes(v)
}
