package bench

// ComputeSweep is the evidence figure for the packed compute plane
// (DESIGN.md §16): real RunGradientDescent iterations through the real
// engine, per-point fold vs CSR-packed fused kernels, at 1 and 4
// within-task cores. It reports ns/iteration and points/sec per
// (profile, mode, cores) cell, asserts inside the bench that every
// packed run trains bitwise-identical weights and losses to the
// per-point path, and computes the two headline ratios:
//
//   - single-core speedup: per-point c1 wall / packed c1 wall, on the
//     dense-uniform profile;
//   - within-task scaling at 4 cores on the sparse power-law profile,
//     reported as projected wall = cpu(c4)/4 against packed c1 wall.
//
// The projection is necessary because CI containers often pin
// GOMAXPROCS=1: the four shard workers then timeslice one OS core, so
// a 4-core wall clock is meaningless there, but CPU time (getrusage)
// still measures the total work the shards did. Perfect scaling means
// cpu(c4) == wall(c1) and the projection reports 4.00×; every bit of
// sharding overhead (phase split, column-segment scan) lands in
// cpu(c4) and lowers it. gomaxprocs/host_cores are recorded alongside
// so readers can tell a projected number from a measured one.
//
// `make bench-compare` renders this as BENCH_PR9.json.

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"syscall"
	"time"

	"sparker/internal/data"
	"sparker/internal/mllib"
	"sparker/internal/rdd"
)

// computeProfile is one dataset/model cell of the sweep.
type computeProfile struct {
	name string
	spec data.ClassificationSpec
	grad mllib.Gradient
	desc string
}

// computeProfiles returns the sweep's dataset/model grid. scale
// divides the full-size sample counts so tests can run the grid small.
func computeProfiles(scale int) []computeProfile {
	return []computeProfile{
		{
			// The headline dense cell: uniform nnz rows, linear
			// regression. Least-squares is the pure data-plane model —
			// no transcendentals — so this cell isolates exactly what
			// the packed layout changes: layout, dispatch, and fusion.
			name: "dense",
			spec: data.ClassificationSpec{Samples: 100_000 / scale, Features: 400, NNZPerSample: 16, Seed: 9},
			grad: mllib.LeastSquaresGradient{},
			desc: "uniform nnz=16, least-squares",
		},
		{
			// Same shape under logistic: math.Exp/math.Log1p put a
			// transcendental floor under BOTH paths, so the ratio here
			// is structurally lower — kept as the honesty row.
			name: "dense-logistic",
			spec: data.ClassificationSpec{Samples: 100_000 / scale, Features: 400, NNZPerSample: 16, Seed: 9},
			grad: mllib.LogisticGradient{},
			desc: "uniform nnz=16, logistic",
		},
		{
			// The avazu shape: power-law rows, head-heavy features.
			// This is the within-task-scaling cell — skewed rows are
			// where static row sharding alone would imbalance, and the
			// kernel's row+column two-phase split must still scale.
			name: "sparse-powerlaw",
			spec: data.ClassificationSpec{Samples: 24_000 / scale, Features: 1000, NNZPerSample: 30, NNZAlpha: 1.5, Seed: 11},
			grad: mllib.LeastSquaresGradient{},
			desc: "power-law nnz α=1.5, least-squares",
		},
	}
}

// cpuNow reads the process's cumulative user+system CPU time.
func cpuNow() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}

// computeRun is one measured (mode, cores) training run.
type computeRun struct {
	wallPerIter  time.Duration
	cpuPerIter   time.Duration
	pointsPerSec int64
	weights      []float64
	losses       []float64
}

// computeReps is how many times each cell's measured run repeats; the
// cell reports the minimum per-iteration wall and CPU across
// repetitions — the noise-robust estimator on shared machines, where
// the minimum is the run least disturbed by co-tenants and GC. The
// sweep additionally interleaves whole passes over the cell grid (see
// computeSweep), so a noise burst in one time window cannot land on
// just one side of a ratio.
const computeReps = 3

// runComputeMode trains iters full-batch GD iterations on a fresh
// single-executor context with the given within-task core count and
// packed mode, measuring steady state: a warmup iteration first packs
// and block-caches the partition (packed mode) so the measured runs are
// iterations 2..N — the regime training actually lives in.
func runComputeMode(pts []mllib.LabeledPoint, grad mllib.Gradient, dim, cores, iters int, packed mllib.PackedMode, name string) (computeRun, error) {
	var res computeRun
	ctx, err := rdd.NewContext(rdd.Config{Name: name, NumExecutors: 1, CoresPerExecutor: cores})
	if err != nil {
		return res, err
	}
	defer ctx.Close()
	train := rdd.FromSlice(ctx, pts, 1).Cache()
	cfg := mllib.GDConfig{StepSize: 0.1, Strategy: mllib.StrategyTree, Packed: packed}
	warm := cfg
	warm.Iterations = 1
	if _, _, err := mllib.RunGradientDescent(train, grad, mllib.SimpleUpdater{}, make([]float64, dim), warm); err != nil {
		return res, err
	}
	cfg.Iterations = iters
	for rep := 0; rep < computeReps; rep++ {
		cpu0, start := cpuNow(), time.Now()
		w, losses, err := mllib.RunGradientDescent(train, grad, mllib.SimpleUpdater{}, make([]float64, dim), cfg)
		wall, cpu := time.Since(start), cpuNow()-cpu0
		if err != nil {
			return res, err
		}
		// Training is deterministic, so every repetition computes the
		// same weights; only the timings differ.
		res.weights, res.losses = w, losses
		if wallIter := wall / time.Duration(iters); rep == 0 || wallIter < res.wallPerIter {
			res.wallPerIter = wallIter
			if wall > 0 {
				res.pointsPerSec = int64(float64(len(pts)) * float64(iters) / wall.Seconds())
			}
		}
		if cpuIter := cpu / time.Duration(iters); rep == 0 || cpuIter < res.cpuPerIter {
			res.cpuPerIter = cpuIter
		}
	}
	return res, nil
}

// bitsEqual reports exact (bitwise) equality of two float slices.
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// ratioMilliOf is a×1000/b with rounding, 0 when b is 0.
func ratioMilliOf(a, b time.Duration) int64 {
	if b <= 0 {
		return 0
	}
	return int64(float64(a)/float64(b)*1000 + 0.5)
}

// computeSweep runs the grid. Split from ComputeSweep so tests can run
// it small.
func computeSweep(scale, iters int) (*Report, error) {
	r := &Report{
		Title:     "Compute-plane sweep: per-point fold vs packed fused kernels (real engine, 1 executor, 1 partition)",
		Header:    []string{"Profile", "Mode", "Cores", "ns/iter", "CPU ns/iter", "Points/sec", "vs per-point c1"},
		Quantiles: map[string]int64{},
	}
	r.Quantiles["compute/gomaxprocs"] = int64(runtime.GOMAXPROCS(0))
	r.Quantiles["compute/host_cores"] = int64(runtime.NumCPU())

	type cell struct {
		mode   string
		cores  int
		packed mllib.PackedMode
	}
	cells := []cell{
		{"perpoint", 1, mllib.PackedOff},
		{"packed", 1, mllib.PackedOn},
		{"packed", 4, mllib.PackedOn},
	}
	for _, p := range computeProfiles(scale) {
		pts := data.GenClassification(p.spec)
		// Shuffle the slice: generation allocates each point's vectors
		// back-to-back, handing the per-point fold the packed layout's
		// locality for free. Cached partitions do not look like that —
		// their vectors were heap-allocated by deserialization or
		// shuffles in arbitrary order — so the fold must traverse
		// heap-scattered vectors here too. Packing restores contiguity
		// from exactly this layout; both modes fold the same shuffled
		// order, so results stay bitwise-comparable.
		rng := rand.New(rand.NewSource(p.spec.Seed * 7919))
		rng.Shuffle(len(pts), func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
		dim := p.spec.Features
		// Two interleaved passes over the cell grid, keeping the minimum
		// per cell: the cells of a ratio are measured in adjacent time
		// windows twice, so a co-tenant noise burst cannot inflate one
		// side of a ratio without also getting a clean second sample.
		const gridPasses = 2
		runs := make([]computeRun, len(cells))
		for pass := 0; pass < gridPasses; pass++ {
			for ci, c := range cells {
				run, err := runComputeMode(pts, p.grad, dim, c.cores, iters,
					c.packed, fmt.Sprintf("bench-compute-%s-%s-c%d", p.name, c.mode, c.cores))
				if err != nil {
					return nil, fmt.Errorf("bench: compute %s/%s/c%d: %w", p.name, c.mode, c.cores, err)
				}
				if pass == 0 {
					runs[ci] = run
					continue
				}
				if run.wallPerIter < runs[ci].wallPerIter {
					runs[ci].wallPerIter, runs[ci].pointsPerSec = run.wallPerIter, run.pointsPerSec
				}
				if run.cpuPerIter < runs[ci].cpuPerIter {
					runs[ci].cpuPerIter = run.cpuPerIter
				}
			}
		}
		base := runs[0] // per-point c1: the reference for ratios and bitwise identity
		for ci, c := range cells {
			run := runs[ci]
			if ci > 0 && (!bitsEqual(run.weights, base.weights) || !bitsEqual(run.losses, base.losses)) {
				return nil, fmt.Errorf("bench: compute %s/%s/c%d: packed result not bitwise-identical to per-point",
					p.name, c.mode, c.cores)
			}
			speedup := ratioMilliOf(base.wallPerIter, run.wallPerIter)
			r.AddRow(p.name, c.mode, fmt.Sprint(c.cores),
				fmt.Sprintf("%d", run.wallPerIter.Nanoseconds()),
				fmt.Sprintf("%d", run.cpuPerIter.Nanoseconds()),
				fmt.Sprintf("%d", run.pointsPerSec),
				fmt.Sprintf("%.2f×", float64(speedup)/1000))
			pre := fmt.Sprintf("compute/%s/%s/c%d", p.name, c.mode, c.cores)
			r.Quantiles[pre+"/ns_per_iter"] = run.wallPerIter.Nanoseconds()
			r.Quantiles[pre+"/cpu_ns_per_iter"] = run.cpuPerIter.Nanoseconds()
			r.Quantiles[pre+"/points_per_sec"] = run.pointsPerSec
			switch {
			case c.mode == "packed" && c.cores == 1:
				r.Quantiles["compute/"+p.name+"/speedup_milli/c1"] = speedup
			case c.mode == "packed" && c.cores == 4:
				// Projected 4-core wall = total shard CPU / 4; scaling
				// is packed-c1 wall against that projection.
				projected := run.cpuPerIter / 4
				r.Quantiles["compute/"+p.name+"/packed_scaling_milli/c4_projected"] = ratioMilliOf(
					r.quantileDur("compute/"+p.name+"/packed/c1/ns_per_iter"), projected)
				r.Quantiles["compute/"+p.name+"/speedup_milli/c4_projected"] = ratioMilliOf(base.wallPerIter, projected)
			}
		}
		r.Quantiles["compute/"+p.name+"/bitwise_identical"] = 1
		r.AddNote("%s: %s — n=%d, dim=%d; packed results verified bitwise-identical to per-point", p.name, p.desc, p.spec.Samples, p.spec.Features)
	}
	r.AddNote("real RunGradientDescent on 1 executor × 1 partition: ns/iter is a full engine iteration (map + tree reduce + updater); warmup iteration pre-packs the CSR block cache so this is the steady state")
	r.AddNote("per-point at 4 cores is omitted: with one partition the fold has no intra-task parallelism to use — that gap is what the packed kernels close")
	r.AddNote("c4_projected = packed c1 wall ÷ (packed c4 CPU/4): on GOMAXPROCS=%d shard workers timeslice, so wall is meaningless but shard CPU (getrusage) still prices the overhead; 4.00× = perfect scaling", runtime.GOMAXPROCS(0))
	r.AddNote("dense-logistic is the transcendental-floor row: math.Exp/Log1p dominate both paths, capping the fused ratio by design")
	return r, nil
}

// quantileDur fetches an already-recorded ns quantile as a duration.
func (r *Report) quantileDur(key string) time.Duration {
	return time.Duration(r.Quantiles[key])
}

// ComputeSweep runs the full grid. Reach it via `sparkerbench -only
// compute` or `make bench-compare` (BENCH_PR9.json).
func ComputeSweep() (*Report, error) {
	return computeSweep(1, 8)
}
