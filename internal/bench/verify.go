package bench

import (
	"fmt"
	"math"
	"strings"
	"time"

	"sparker/internal/sim"
)

// Claim is one paper statement checked against the reproduction.
type Claim struct {
	// ID ties the claim to its figure/section.
	ID string
	// Statement paraphrases the paper.
	Statement string
	// Paper is the value the paper reports.
	Paper string
	// Measured is what this reproduction produces.
	Measured string
	// Pass reports whether the measured value falls in the accepted
	// band (generous: shapes, not absolute seconds).
	Pass bool
}

// VerifyClaims re-derives every headline claim of the evaluation from
// the calibrated simulation and reports pass/fail — the one-command
// reproduction checklist (`sparkerbench -verify`).
func VerifyClaims() ([]Claim, error) {
	var claims []Claim
	c := sim.BIC()

	// --- Figure 12: latency ordering -----------------------------------
	mpi, err := sim.P2PLatency(c, c.MPI)
	if err != nil {
		return nil, err
	}
	sc, err := sim.P2PLatency(c, c.SC)
	if err != nil {
		return nil, err
	}
	bm, err := sim.P2PLatency(c, c.BM)
	if err != nil {
		return nil, err
	}
	scRatio := float64(sc) / float64(mpi)
	bmRatio := float64(bm) / float64(mpi)
	claims = append(claims, Claim{
		ID:        "Fig12",
		Statement: "SC latency ~4.56x MPI; BlockManager ~242x MPI",
		Paper:     "4.56x / 242.24x",
		Measured:  fmt.Sprintf("%.2fx / %.2fx", scRatio, bmRatio),
		Pass:      scRatio > 3 && scRatio < 6 && bmRatio > 150 && bmRatio < 350,
	})

	// --- Figure 13: parallel channels reach line rate -------------------
	tp4, err := sim.P2PThroughput(c, c.SC, 256*mb, 4)
	if err != nil {
		return nil, err
	}
	frac := tp4 / c.MPI.NICBW
	claims = append(claims, Claim{
		ID:        "Fig13",
		Statement: "4 parallel channels reach ~97% of MPI line rate",
		Paper:     "97.1%",
		Measured:  fmt.Sprintf("%.1f%%", 100*frac),
		Pass:      frac > 0.9,
	})

	// --- Figure 14: PDR parallelism and topology-awareness --------------
	rs := func(par int, topo bool) (time.Duration, error) {
		return sim.RingReduceScatter(sim.RSParams{
			Cluster: c, Nodes: 8, MsgBytes: 256 * mb, Parallelism: par, TopoAware: topo,
		})
	}
	p1, err := rs(1, true)
	if err != nil {
		return nil, err
	}
	p8, err := rs(8, true)
	if err != nil {
		return nil, err
	}
	parSpeedup := float64(p1) / float64(p8)
	claims = append(claims, Claim{
		ID:        "Fig14a",
		Statement: "8-parallelism reduce-scatter ~3x faster than 1-parallelism",
		Paper:     "3.06x (3.04s -> 0.99s)",
		Measured:  fmt.Sprintf("%.2fx (%v -> %v)", parSpeedup, p1.Round(10*time.Millisecond), p8.Round(10*time.Millisecond)),
		Pass:      parSpeedup > 2 && parSpeedup < 6,
	})
	p4topo, err := rs(4, true)
	if err != nil {
		return nil, err
	}
	p4flat, err := rs(4, false)
	if err != nil {
		return nil, err
	}
	topoSpeedup := float64(p4flat) / float64(p4topo)
	claims = append(claims, Claim{
		ID:        "Fig14b",
		Statement: "topology-aware rank ordering speeds up reduce-scatter",
		Paper:     "2.76x",
		Measured:  fmt.Sprintf("%.2fx", topoSpeedup),
		Pass:      topoSpeedup > 1.3,
	})

	// --- Figure 15: reduce-scatter scalability ---------------------------
	big1, err := sim.RingReduceScatter(sim.RSParams{Cluster: c, Nodes: 1, MsgBytes: 256 * mb, Parallelism: 4, TopoAware: true})
	if err != nil {
		return nil, err
	}
	big8, err := rs(4, true)
	if err != nil {
		return nil, err
	}
	bigGrowth := float64(big8) / float64(big1)
	claims = append(claims, Claim{
		ID:        "Fig15",
		Statement: "256MB reduce-scatter nearly flat from 6 to 48 executors",
		Paper:     "1.27x growth",
		Measured:  fmt.Sprintf("%.2fx growth", bigGrowth),
		Pass:      bigGrowth < 1.5,
	})

	// --- Figure 16: aggregation strategy comparison ----------------------
	agg := func(s sim.AggStrategy, nodes int, m int64) (time.Duration, error) {
		return sim.AggregateTime(s, sim.AggParams{Cluster: c, Nodes: nodes, MsgBytes: m, Parallelism: 4, TopoAware: true})
	}
	tree256, err := agg(sim.AggTree, 8, 256*mb)
	if err != nil {
		return nil, err
	}
	split256, err := agg(sim.AggSplit, 8, 256*mb)
	if err != nil {
		return nil, err
	}
	imm256, err := agg(sim.AggTreeIMM, 8, 256*mb)
	if err != nil {
		return nil, err
	}
	splitSpeedup := float64(tree256) / float64(split256)
	immSpeedup := float64(tree256) / float64(imm256)
	claims = append(claims, Claim{
		ID:        "Fig16a",
		Statement: "split aggregation up to ~6.5x over tree at 256MB / 8 nodes",
		Paper:     "6.48x",
		Measured:  fmt.Sprintf("%.2fx", splitSpeedup),
		Pass:      splitSpeedup > 4 && splitSpeedup < 11,
	})
	claims = append(claims, Claim{
		ID:        "Fig16b",
		Statement: "in-memory merge alone gives a modest tree speedup at 256MB",
		Paper:     "1.46x",
		Measured:  fmt.Sprintf("%.2fx", immSpeedup),
		Pass:      immSpeedup > 1.2 && immSpeedup < 3,
	})
	split1, err := agg(sim.AggSplit, 1, 256*mb)
	if err != nil {
		return nil, err
	}
	flatness := float64(split256) / float64(split1)
	claims = append(claims, Claim{
		ID:        "Fig16c",
		Statement: "split aggregation scales nearly constantly with node count",
		Paper:     "8-node time 1.12x 1-node",
		Measured:  fmt.Sprintf("%.2fx", flatness),
		Pass:      flatness < 1.4,
	})

	// --- Section 5.2.3: where the win comes from -------------------------
	noIMM, err := sim.SplitNoIMMTime(sim.AggParams{Cluster: c, Nodes: 8, MsgBytes: 256 * mb, Parallelism: 4, TopoAware: true})
	if err != nil {
		return nil, err
	}
	reductionOnly := float64(tree256) / float64(noIMM)
	claims = append(claims, Claim{
		ID:        "S5.2.3",
		Statement: "most of split aggregation's win comes from the scalable reduction, not IMM",
		Paper:     "qualitative",
		Measured: fmt.Sprintf("reduction-only %.2fx of full %.2fx",
			reductionOnly, splitSpeedup),
		Pass: reductionOnly*reductionOnly >= splitSpeedup,
	})

	// --- Figure 1: MLlib scales poorly under vanilla Spark ---------------
	geoProd := 1.0
	worst, worstName := math.Inf(1), ""
	best, bestName := 0.0, ""
	for _, w := range sim.Workloads() {
		one, err := sim.RunWorkload(sim.RunParams{Cluster: c, Workload: w, Strategy: sim.AggTree, Nodes: 1})
		if err != nil {
			return nil, err
		}
		eight, err := sim.RunWorkload(sim.RunParams{Cluster: c, Workload: w, Strategy: sim.AggTree, Nodes: 8})
		if err != nil {
			return nil, err
		}
		sp := one.Total().Seconds() / eight.Total().Seconds()
		geoProd *= sp
		if sp < worst {
			worst, worstName = sp, w.Name
		}
		if sp > best {
			best, bestName = sp, w.Name
		}
	}
	geo := math.Pow(geoProd, 1.0/9)
	claims = append(claims, Claim{
		ID:        "Fig1",
		Statement: "8-node MLlib speedup averages ~1.25x; some workloads slow down",
		Paper:     "avg 1.25x; best LDA-N 2.49x; worst LR-K 0.73x",
		Measured:  fmt.Sprintf("geomean %.2fx; best %s %.2fx; worst %s %.2fx", geo, bestName, best, worstName, worst),
		Pass:      geo > 1.0 && geo < 1.7 && worst < 1.0,
	})

	// --- Figure 17: end-to-end speedups -----------------------------------
	for _, cl := range []sim.ClusterConfig{sim.BIC(), sim.AWS()} {
		prod := 1.0
		minSp := math.Inf(1)
		for _, w := range sim.Workloads() {
			spark, err := sim.RunWorkload(sim.RunParams{Cluster: cl, Workload: w, Strategy: sim.AggTree})
			if err != nil {
				return nil, err
			}
			sparker, err := sim.RunWorkload(sim.RunParams{Cluster: cl, Workload: w, Strategy: sim.AggSplit})
			if err != nil {
				return nil, err
			}
			sp := spark.Total().Seconds() / sparker.Total().Seconds()
			prod *= sp
			if sp < minSp {
				minSp = sp
			}
		}
		g := math.Pow(prod, 1.0/9)
		paperGeo := "1.60x"
		if cl.Name == "AWS" {
			paperGeo = "1.81x"
		}
		claims = append(claims, Claim{
			ID:        "Fig17-" + cl.Name,
			Statement: fmt.Sprintf("Sparker beats Spark on every workload on %s", cl.Name),
			Paper:     "geomean " + paperGeo + ", all > 1",
			Measured:  fmt.Sprintf("geomean %.2fx, min %.2fx", g, minSp),
			Pass:      minSp > 1.0 && g > 1.3 && g < 2.6,
		})
	}

	// --- Figure 18: reduction speedup grows with scale --------------------
	ldan, err := sim.WorkloadByName("LDA-N")
	if err != nil {
		return nil, err
	}
	redSpeedup := func(nodes, epn, cpe int) (float64, error) {
		spark, err := sim.RunWorkload(sim.RunParams{Cluster: sim.AWS(), Workload: ldan, Strategy: sim.AggTree,
			Nodes: nodes, ExecutorsPerNode: epn, CoresPerExecutor: cpe})
		if err != nil {
			return 0, err
		}
		sparker, err := sim.RunWorkload(sim.RunParams{Cluster: sim.AWS(), Workload: ldan, Strategy: sim.AggSplit,
			Nodes: nodes, ExecutorsPerNode: epn, CoresPerExecutor: cpe})
		if err != nil {
			return 0, err
		}
		return spark.AggReduce.Seconds() / sparker.AggReduce.Seconds(), nil
	}
	small, err := redSpeedup(1, 2, 4)
	if err != nil {
		return nil, err
	}
	large, err := redSpeedup(10, 12, 8)
	if err != nil {
		return nil, err
	}
	claims = append(claims, Claim{
		ID:        "Fig18",
		Statement: "reduction speedup grows with scale (8 -> 960 cores)",
		Paper:     "4.19x -> 7.22x",
		Measured:  fmt.Sprintf("%.2fx -> %.2fx", small, large),
		Pass:      small > 1.5 && large > small,
	})

	return claims, nil
}

// RenderClaims formats a verification run.
func RenderClaims(claims []Claim) string {
	var b strings.Builder
	b.WriteString("Sparker reproduction checklist\n")
	b.WriteString("==============================\n\n")
	passed := 0
	for _, c := range claims {
		status := "FAIL"
		if c.Pass {
			status = "PASS"
			passed++
		}
		fmt.Fprintf(&b, "[%s] %-10s %s\n", status, c.ID, c.Statement)
		fmt.Fprintf(&b, "       paper:    %s\n", c.Paper)
		fmt.Fprintf(&b, "       measured: %s\n\n", c.Measured)
	}
	fmt.Fprintf(&b, "%d/%d claims reproduce\n", passed, len(claims))
	return b.String()
}
