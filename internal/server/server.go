// Package server is the multi-tenant job server: a long-lived driver
// process that accepts training-job submissions from many concurrent
// clients, admits them per tenant through a token bucket, schedules
// their stages under the scheduler's weighted fair share, and serves
// the resulting models at high QPS through a batched prediction
// endpoint — the "shared driver" deployment mode the paper's
// production clusters run, where one Spark driver multiplexes many
// users' ML jobs instead of paying per-job cluster spin-up.
//
// Endpoints (JSON over HTTP, plus one WebSocket):
//
//	POST   /api/v1/jobs                  submit a training job
//	GET    /api/v1/jobs                  list jobs (includes restored history)
//	GET    /api/v1/jobs/{id}             job status/result
//	DELETE /api/v1/jobs/{id}             cancel a queued or running job
//	GET    /api/v1/tenants               tenant accounts (fair-share + admission)
//	PUT    /api/v1/tenants/{name}        configure a tenant
//	GET    /api/v1/models                served models
//	POST   /api/v1/models/{name}/predict score a batch of points
//	GET    /metrics                      Prometheus text exposition
//	GET    /ws/events                    live event-log stream (WebSocket, ?since=N resumes)
//	GET    /healthz, /buildinfo          liveness and build identification
//	GET    /debug/sparker/*, /debug/pprof/*  live introspection + profiling
//
// With Config.AuthToken set, every endpoint except /healthz and
// /buildinfo requires "Authorization: Bearer <token>".
package server

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"sparker/internal/eventlog"
	"sparker/internal/linalg"
	"sparker/internal/metrics"
	"sparker/internal/mllib"
	"sparker/internal/rdd"
)

// Config configures New.
type Config struct {
	// Addr is the listen address (default "127.0.0.1:0").
	Addr string
	// Cluster shapes the embedded engine (rdd.NewContext config). The
	// EventLog field is overridden: the server owns the event pipeline
	// so it can stream it over /ws/events.
	Cluster rdd.Config
	// MaxConcurrentJobs bounds simultaneously running training jobs
	// (default 4); admitted jobs beyond it wait in the queued state.
	MaxConcurrentJobs int
	// DefaultTenant parameterizes tenants created on first contact.
	DefaultTenant TenantConfig
	// Batch tunes the prediction micro-batcher.
	Batch BatchConfig
	// DrainTimeout bounds how long Close waits for in-flight jobs
	// (default 30s).
	DrainTimeout time.Duration
	// HistoryDir, when set, persists the event log to an append-only
	// events.jsonl and terminal job records to jobs.jsonl under this
	// directory; on boot jobs.jsonl is replayed into GET /api/v1/jobs.
	HistoryDir string
	// AuthToken, when non-empty, gates every request behind
	// "Authorization: Bearer <token>" (exact match, constant-time)
	// except the liveness probes (/healthz, /buildinfo). The API, the
	// event stream, /metrics and the /debug/ plane (membership
	// introspection, flight-recorder/postmortem dumps, continuous
	// profiling) all expose internal state or trigger expensive work,
	// so they are covered.
	AuthToken string
}

// Server is the long-lived multi-tenant driver.
type Server struct {
	conf    Config
	ctx     *rdd.Context
	bus     *eventBus
	logger  *eventlog.Logger
	tenants *tenantRegistry
	jobs    *jobManager
	models  *modelRegistry
	reg     *metrics.Registry

	history *jobHistory

	lis     net.Listener
	httpSrv *http.Server

	closing   chan struct{}
	closeOnce sync.Once
	flushDone chan struct{}
}

// New builds the engine context, starts the HTTP listener, and returns
// a running server.
func New(conf Config) (*Server, error) {
	if conf.Addr == "" {
		conf.Addr = "127.0.0.1:0"
	}
	if conf.DrainTimeout <= 0 {
		conf.DrainTimeout = 30 * time.Second
	}
	if conf.Cluster.Name == "" {
		conf.Cluster.Name = "serve"
	}
	s := &Server{
		conf:      conf,
		bus:       newEventBus(),
		reg:       metrics.NewRegistry(),
		closing:   make(chan struct{}),
		flushDone: make(chan struct{}),
	}
	var logSink io.Writer = s.bus
	if conf.HistoryDir != "" {
		h, err := openJobHistory(conf.HistoryDir)
		if err != nil {
			return nil, err
		}
		s.history = h
		logSink = io.MultiWriter(s.bus, h.eventWriter())
	}
	s.logger = eventlog.New(logSink)
	conf.Cluster.EventLog = s.logger

	ctx, err := rdd.NewContext(conf.Cluster)
	if err != nil {
		s.history.close()
		return nil, err
	}
	s.ctx = ctx
	s.tenants = newTenantRegistry(conf.DefaultTenant, ctx.ConfigureTenant)
	s.jobs = newJobManager(conf.MaxConcurrentJobs)
	if conf.HistoryDir != "" {
		if n, err := replayJobHistory(conf.HistoryDir, s.jobs.restore); err != nil {
			s.logger.Marker("history-replay-error", err.Error())
		} else if n > 0 {
			s.logger.Marker("history-replay", fmt.Sprintf("%d jobs restored", n))
		}
	}
	s.models = newModelRegistry(conf.Batch, s.reg)

	lis, err := net.Listen("tcp", conf.Addr)
	if err != nil {
		ctx.Close()
		return nil, fmt.Errorf("server: listen %s: %w", conf.Addr, err)
	}
	s.lis = lis
	s.httpSrv = &http.Server{Handler: s.routes()}
	go s.httpSrv.Serve(lis)

	// The event logger buffers through bufio; flush on a short period
	// so WebSocket subscribers see events promptly rather than at the
	// next 4KB boundary.
	go s.flushLoop()

	s.logger.Marker("server-start", lis.Addr().String())
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Context exposes the embedded engine context (used by in-process
// embeddings such as the benchmark harness).
func (s *Server) Context() *rdd.Context { return s.ctx }

// RegisterModel installs a model for serving under name — the
// in-process path mirroring what job completion does, used by
// sparker-serve -model preloading and the benchmarks.
func (s *Server) RegisterModel(name string, m mllib.Model) {
	s.models.register(name, m)
}

func (s *Server) flushLoop() {
	defer close(s.flushDone)
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			s.logger.Flush()
		case <-s.closing:
			s.logger.Flush()
			return
		}
	}
}

// Close shuts down in dependency order: stop admitting, stop the HTTP
// front end, wait (bounded) for in-flight jobs, stop the batchers,
// then drain and close the engine.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		s.logger.Marker("server-stop", "")
		close(s.closing)
		s.httpSrv.Close()
		s.lis.Close()

		done := make(chan struct{})
		go func() { s.jobs.wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(s.conf.DrainTimeout):
			err = fmt.Errorf("server: %v drain timeout with jobs still running", s.conf.DrainTimeout)
		}
		s.models.close()
		<-s.flushDone
		s.history.close()
		if stopErr := s.ctx.Stop(s.conf.DrainTimeout); stopErr != nil && err == nil {
			err = stopErr
		}
	})
	return err
}

func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmitJob)
	mux.HandleFunc("GET /api/v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancelJob)
	mux.HandleFunc("GET /api/v1/tenants", s.handleListTenants)
	mux.HandleFunc("PUT /api/v1/tenants/{name}", s.handleConfigureTenant)
	mux.HandleFunc("GET /api/v1/models", s.handleListModels)
	mux.HandleFunc("POST /api/v1/models/{name}/predict", s.handlePredict)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /ws/events", s.serveEventSocket)
	mux.Handle("GET /healthz", metrics.HealthzHandler())
	mux.Handle("GET /buildinfo", metrics.BuildInfoHandler())
	// Live introspection + continuous profiling for the shared driver.
	mux.Handle("/debug/", s.ctx.DebugHandler())
	return s.withAuth(mux)
}

// authExempt lists the paths that stay open on a token-protected
// server: liveness/readiness probes and build identification only.
// Everything else — the API, the event stream, /metrics and the whole
// /debug/ plane (membership introspection, flight-recorder dumps,
// continuous profiling) — exposes internal state or triggers expensive
// work, so it sits behind the bearer check.
func authExempt(path string) bool {
	return path == "/healthz" || path == "/buildinfo"
}

// withAuth enforces Config.AuthToken: requests must present
// "Authorization: Bearer <token>" or are refused with 401 before
// reaching a handler, except for the authExempt probe paths (notably
// /healthz, so load balancers can probe an authenticated server). A
// zero-value token disables the check.
func (s *Server) withAuth(next http.Handler) http.Handler {
	token := s.conf.AuthToken
	if token == "" {
		return next
	}
	want := sha256.Sum256([]byte(token))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if authExempt(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		// Hash both sides so the comparison is constant-time even for
		// mismatched lengths.
		sum := sha256.Sum256([]byte(got))
		if !ok || subtle.ConstantTimeCompare(sum[:], want[:]) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="sparker"`)
			writeError(w, http.StatusUnauthorized, "missing or invalid bearer token")
			return
		}
		next.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if err := req.fill(s.ctx.TotalCores()); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	select {
	case <-s.closing:
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	default:
	}
	t := s.tenants.ensure(req.Tenant)
	if ok, reason := t.admit(time.Now()); !ok {
		writeError(w, http.StatusTooManyRequests, "tenant %s: %s", req.Tenant, reason)
		return
	}
	j := s.jobs.create(req)
	s.logger.Marker("job-submit", fmt.Sprintf("%s tenant=%s", j.view().ID, req.Tenant))
	s.jobs.wg.Add(1)
	go s.runJob(j, t)
	writeJSON(w, http.StatusAccepted, j.view())
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobs.list()})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.get(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

// handleCancelJob implements DELETE /api/v1/jobs/{id}: cancel the
// job's context so the training loop aborts at its next iteration
// boundary (queued jobs abort immediately). Terminal jobs return 409.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.get(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	st := j.view()
	if st.State.terminal() {
		writeError(w, http.StatusConflict, "job %s already %s", st.ID, st.State)
		return
	}
	s.logger.Marker("job-cancel", fmt.Sprintf("%s tenant=%s", st.ID, st.Tenant))
	j.cancel()
	writeJSON(w, http.StatusAccepted, map[string]any{"id": st.ID, "cancelling": true})
}

// tenantView merges server-side admission state with the scheduler's
// fair-share accounting for one tenant.
type tenantView struct {
	Name       string  `json:"name"`
	Weight     float64 `json:"weight"`
	MaxSlots   int     `json:"max_slots"`
	InFlight   int     `json:"in_flight_jobs"`
	Admitted   int64   `json:"admitted"`
	Rejected   int64   `json:"rejected"`
	SlotsInUse int     `json:"slots_in_use"`
	QueuedWork int     `json:"queued_attempts"`
	ServiceNS  int64   `json:"service_ns"`
	Completed  int64   `json:"completed_attempts"`
}

func (s *Server) tenantViews() []tenantView {
	stats := s.ctx.TenantStats()
	var out []tenantView
	for _, t := range sortedTenants(s.tenants.all()) {
		inFlight, admitted, rejected := t.snapshot()
		v := tenantView{
			Name:     t.name,
			Weight:   t.cfg.Weight,
			MaxSlots: t.cfg.MaxSlots,
			InFlight: inFlight,
			Admitted: admitted,
			Rejected: rejected,
		}
		if st, ok := stats[t.name]; ok {
			v.SlotsInUse = st.InUse
			v.QueuedWork = st.Queued
			v.ServiceNS = st.ServiceNS
			v.Completed = st.Completed
		}
		out = append(out, v)
	}
	return out
}

func (s *Server) handleListTenants(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"tenants": s.tenantViews()})
}

func (s *Server) handleConfigureTenant(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var cfg TenantConfig
	if err := json.NewDecoder(r.Body).Decode(&cfg); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	t := s.tenants.set(name, cfg)
	writeJSON(w, http.StatusOK, map[string]any{"name": name, "config": t.cfg})
}

func (s *Server) handleListModels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"models": s.models.list()})
}

// predictPoint accepts either a dense array of feature values or a
// sparse {dim, indices, values} object.
type predictPoint struct {
	vec linalg.SparseVector
}

func (p *predictPoint) UnmarshalJSON(b []byte) error {
	var dense []float64
	if err := json.Unmarshal(b, &dense); err == nil {
		idx := make([]int32, 0, len(dense))
		vals := make([]float64, 0, len(dense))
		for i, v := range dense {
			if v != 0 {
				idx = append(idx, int32(i))
				vals = append(vals, v)
			}
		}
		p.vec = linalg.SparseVector{Dim: len(dense), Indices: idx, Values: vals}
		return nil
	}
	var sparse struct {
		Dim     int       `json:"dim"`
		Indices []int32   `json:"indices"`
		Values  []float64 `json:"values"`
	}
	if err := json.Unmarshal(b, &sparse); err != nil {
		return err
	}
	if len(sparse.Indices) != len(sparse.Values) {
		return fmt.Errorf("point has %d indices but %d values", len(sparse.Indices), len(sparse.Values))
	}
	p.vec = linalg.SparseVector{Dim: sparse.Dim, Indices: sparse.Indices, Values: sparse.Values}
	return nil
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	sm := s.models.get(name)
	if sm == nil {
		writeError(w, http.StatusNotFound, "no model %q registered", name)
		return
	}
	var req struct {
		Points []predictPoint `json:"points"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Points) == 0 {
		writeError(w, http.StatusBadRequest, "no points")
		return
	}
	xs := make([]linalg.SparseVector, len(req.Points))
	for i, p := range req.Points {
		xs[i] = p.vec
	}
	start := time.Now()
	out, err := sm.predict(xs)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	s.reg.Histogram("serve_predict_latency_ns").Observe(time.Since(start).Nanoseconds())
	preds := append([]float64(nil), out...)
	writeJSON(w, http.StatusOK, map[string]any{"model": name, "predictions": preds})
}

// handleMetrics merges engine metrics with the server's own registry
// and refreshes per-tenant gauges before exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	queued := s.jobs.queuedByTenant()
	for _, v := range s.tenantViews() {
		s.reg.Gauge("serve_tenant_jobs_inflight_" + v.Name).Set(int64(queued[v.Name]))
		s.reg.Gauge("serve_tenant_admitted_total_" + v.Name).Set(v.Admitted)
		s.reg.Gauge("serve_tenant_rejected_total_" + v.Name).Set(v.Rejected)
		s.reg.Gauge("serve_tenant_slots_in_use_" + v.Name).Set(int64(v.SlotsInUse))
		s.reg.Gauge("serve_tenant_service_ns_" + v.Name).Set(v.ServiceNS)
	}
	merged := s.ctx.MergedMetrics()
	merged.Merge(s.reg)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	metrics.WritePrometheus(w, merged, s.ctx.Metrics())
}
