package server

import (
	"bufio"
	"bytes"
	"crypto/sha1"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"sparker/internal/mllib"
	"sparker/internal/rdd"
)

func testServer(t *testing.T, conf Config) *Server {
	t.Helper()
	if conf.Cluster.NumExecutors == 0 {
		conf.Cluster.NumExecutors = 2
	}
	if conf.Cluster.CoresPerExecutor == 0 {
		conf.Cluster.CoresPerExecutor = 2
	}
	s, err := New(conf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func waitJob(t *testing.T, base, id string, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var st JobStatus
		if code := getJSON(t, base+"/api/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		if st.State == JobDone || st.State == JobFailed {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish within %v", id, timeout)
	return JobStatus{}
}

// TestTrainThenPredict is the end-to-end path: submit a job over HTTP,
// poll it to completion, then score points against the registered
// model.
func TestTrainThenPredict(t *testing.T) {
	s := testServer(t, Config{})
	base := "http://" + s.Addr()

	resp, body := postJSON(t, base+"/api/v1/jobs", JobRequest{
		Model: "lr", Scale: 60000, Iterations: 2, SaveAs: "clicks",
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != JobQueued && st.State != JobRunning {
		t.Fatalf("fresh job in state %q", st.State)
	}
	final := waitJob(t, base, st.ID, 30*time.Second)
	if final.State != JobDone {
		t.Fatalf("job failed: %s", final.Error)
	}
	if final.Result == nil || final.Result.ModelName != "clicks" {
		t.Fatalf("result missing model name: %+v", final.Result)
	}

	var models struct {
		Models []map[string]any `json:"models"`
	}
	getJSON(t, base+"/api/v1/models", &models)
	if len(models.Models) != 1 {
		t.Fatalf("want 1 served model, got %v", models.Models)
	}

	dim := final.Result.Features
	pt := make([]float64, dim)
	pt[0], pt[1%dim] = 1, 0.5
	resp2, body2 := postJSON(t, base+"/api/v1/models/clicks/predict",
		map[string]any{"points": []any{pt, map[string]any{"dim": dim, "indices": []int{0}, "values": []float64{2.0}}}})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("predict: status %d: %s", resp2.StatusCode, body2)
	}
	var pr struct {
		Predictions []float64 `json:"predictions"`
	}
	if err := json.Unmarshal(body2, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Predictions) != 2 {
		t.Fatalf("want 2 predictions, got %v", pr.Predictions)
	}
	for _, p := range pr.Predictions {
		if p != 0 && p != 1 {
			t.Fatalf("classifier prediction %v not 0/1", p)
		}
	}
}

// TestAdmissionControl: a tenant with a tiny burst gets 429s once the
// bucket drains, and rejections are visible in the tenant stats.
func TestAdmissionControl(t *testing.T) {
	s := testServer(t, Config{
		DefaultTenant: TenantConfig{BurstJobs: 2, RefillPerSec: 0.001, MaxQueued: 100},
	})
	base := "http://" + s.Addr()

	var accepted, rejected int
	for i := 0; i < 6; i++ {
		resp, _ := postJSON(t, base+"/api/v1/jobs", JobRequest{
			Tenant: "bursty", Model: "lr", Scale: 200000, Iterations: 1,
		})
		switch resp.StatusCode {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	if accepted != 2 || rejected != 4 {
		t.Fatalf("want 2 accepted / 4 rejected, got %d / %d", accepted, rejected)
	}
	var tv struct {
		Tenants []tenantView `json:"tenants"`
	}
	getJSON(t, base+"/api/v1/tenants", &tv)
	found := false
	for _, v := range tv.Tenants {
		if v.Name == "bursty" {
			found = true
			if v.Admitted != 2 || v.Rejected != 4 {
				t.Fatalf("tenant stats admitted=%d rejected=%d", v.Admitted, v.Rejected)
			}
		}
	}
	if !found {
		t.Fatal("tenant bursty missing from /api/v1/tenants")
	}
}

// TestConfigureTenant round-trips a PUT config and sees the weight in
// the tenant listing.
func TestConfigureTenant(t *testing.T) {
	s := testServer(t, Config{})
	base := "http://" + s.Addr()
	req, err := http.NewRequest(http.MethodPut, base+"/api/v1/tenants/gold",
		strings.NewReader(`{"weight": 3, "max_slots": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT tenant: status %d", resp.StatusCode)
	}
	var tv struct {
		Tenants []tenantView `json:"tenants"`
	}
	getJSON(t, base+"/api/v1/tenants", &tv)
	for _, v := range tv.Tenants {
		if v.Name == "gold" {
			if v.Weight != 3 || v.MaxSlots != 2 {
				t.Fatalf("gold config not applied: %+v", v)
			}
			return
		}
	}
	t.Fatal("tenant gold missing")
}

// TestBatcherCoalesces drives concurrent single-point requests at a
// registered model and checks they were scored in shared batches.
func TestBatcherCoalesces(t *testing.T) {
	s := testServer(t, Config{
		Batch: BatchConfig{MaxBatch: 64, MaxDelay: 20 * time.Millisecond},
	})
	m := &mllib.RegressionModel{Weights: []float64{2, -1, 0.5}}
	s.RegisterModel("reg", m)

	const clients = 32
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	base := "http://" + s.Addr()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			body, _ := json.Marshal(map[string]any{"points": []any{[]float64{float64(c), 1, 0}}})
			resp, err := http.Post(base+"/api/v1/models/reg/predict", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var pr struct {
				Predictions []float64 `json:"predictions"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
				errs <- err
				return
			}
			want := 2*float64(c) - 1
			if len(pr.Predictions) != 1 || pr.Predictions[0] != want {
				errs <- fmt.Errorf("client %d: got %v want %v", c, pr.Predictions, want)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// The latency histogram counts requests; the batch histogram
	// counts drains. Coalescing means fewer drains than requests.
	reqs := s.reg.Histogram("serve_predict_latency_ns").Count()
	drains := s.reg.Histogram("serve_batch_points").Count()
	points := s.reg.Histogram("serve_batch_points").Sum()
	if reqs != clients || points != clients {
		t.Fatalf("histograms lost requests: reqs=%d points=%d", reqs, points)
	}
	if drains >= clients {
		t.Fatalf("no coalescing: %d drains for %d requests", drains, clients)
	}
}

// TestWebSocketEvents performs a raw RFC 6455 handshake and reads
// job-lifecycle markers off the event stream.
func TestWebSocketEvents(t *testing.T) {
	s := testServer(t, Config{})
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	key := base64.StdEncoding.EncodeToString([]byte("0123456789abcdef"))
	fmt.Fprintf(conn, "GET /ws/events HTTP/1.1\r\nHost: %s\r\nUpgrade: websocket\r\nConnection: Upgrade\r\nSec-WebSocket-Key: %s\r\nSec-WebSocket-Version: 13\r\n\r\n", s.Addr(), key)
	br := bufio.NewReader(conn)
	status, err := br.ReadString('\n')
	if err != nil || !strings.Contains(status, "101") {
		t.Fatalf("handshake status %q err %v", status, err)
	}
	wantAccept := ""
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if strings.HasPrefix(strings.ToLower(line), "sec-websocket-accept:") {
			wantAccept = strings.TrimSpace(line[len("sec-websocket-accept:"):])
		}
		if line == "\r\n" {
			break
		}
	}
	sum := sha1.Sum([]byte(key + wsGUID))
	if wantAccept != base64.StdEncoding.EncodeToString(sum[:]) {
		t.Fatalf("bad Sec-WebSocket-Accept %q", wantAccept)
	}

	// Trigger events: submit a tiny job.
	postJSON(t, "http://"+s.Addr()+"/api/v1/jobs", JobRequest{Model: "lr", Scale: 200000, Iterations: 1})

	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	sawSubmit := false
	for !sawSubmit {
		op, payload, err := wsReadFrame(br)
		if err != nil {
			t.Fatalf("reading frame: %v", err)
		}
		if op != wsOpText {
			continue
		}
		var ev struct {
			Kind string `json:"kind"`
			Name string `json:"name"`
		}
		if err := json.Unmarshal(payload, &ev); err != nil {
			t.Fatalf("frame is not a JSON event: %q", payload)
		}
		if ev.Name == "job-submit" {
			sawSubmit = true
		}
	}
}

// TestConcurrentTenantsJobs floods the server from several tenants at
// once; every accepted job must reach a terminal state and the models
// must all serve.
func TestConcurrentTenantsJobs(t *testing.T) {
	s := testServer(t, Config{
		Cluster:           rdd.Config{NumExecutors: 2, CoresPerExecutor: 2},
		MaxConcurrentJobs: 4,
		DefaultTenant:     TenantConfig{BurstJobs: 10, RefillPerSec: 100, MaxQueued: 50},
	})
	base := "http://" + s.Addr()
	const tenants, jobsPer = 3, 3
	var wg sync.WaitGroup
	ids := make(chan string, tenants*jobsPer)
	for ten := 0; ten < tenants; ten++ {
		for k := 0; k < jobsPer; k++ {
			wg.Add(1)
			go func(ten, k int) {
				defer wg.Done()
				resp, body := postJSON(t, base+"/api/v1/jobs", JobRequest{
					Tenant: fmt.Sprintf("t%d", ten), Model: "lr",
					Scale: 200000, Iterations: 1, SaveAs: "-",
				})
				if resp.StatusCode != http.StatusAccepted {
					t.Errorf("submit: %d %s", resp.StatusCode, body)
					return
				}
				var st JobStatus
				json.Unmarshal(body, &st)
				ids <- st.ID
			}(ten, k)
		}
	}
	wg.Wait()
	close(ids)
	for id := range ids {
		st := waitJob(t, base, id, 30*time.Second)
		if st.State != JobDone {
			t.Fatalf("job %s: %s: %s", id, st.State, st.Error)
		}
	}
	var tv struct {
		Tenants []tenantView `json:"tenants"`
	}
	getJSON(t, base+"/api/v1/tenants", &tv)
	if len(tv.Tenants) != tenants {
		t.Fatalf("want %d tenants, got %d", tenants, len(tv.Tenants))
	}
	for _, v := range tv.Tenants {
		if v.InFlight != 0 {
			t.Fatalf("tenant %s still has %d in-flight jobs", v.Name, v.InFlight)
		}
		if v.ServiceNS == 0 {
			t.Fatalf("tenant %s charged no fair-share service", v.Name)
		}
	}
}

// TestMetricsEndpoint checks the Prometheus exposition includes both
// engine and serving-layer series.
func TestMetricsEndpoint(t *testing.T) {
	s := testServer(t, Config{})
	s.RegisterModel("m", &mllib.RegressionModel{Weights: []float64{1}})
	base := "http://" + s.Addr()
	postJSON(t, base+"/api/v1/models/m/predict", map[string]any{"points": []any{[]float64{1}}})

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()
	for _, want := range []string{"serve_predict_latency_ns", "serve_batch_points"} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text[:min(len(text), 2000)])
		}
	}
}

// TestPredictUnknownModel and bad input paths.
func TestPredictErrors(t *testing.T) {
	s := testServer(t, Config{})
	base := "http://" + s.Addr()
	resp, _ := postJSON(t, base+"/api/v1/models/nope/predict", map[string]any{"points": []any{[]float64{1}}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: status %d", resp.StatusCode)
	}
	s.RegisterModel("m", &mllib.RegressionModel{Weights: []float64{1}})
	resp2, _ := postJSON(t, base+"/api/v1/models/m/predict", map[string]any{"points": []any{}})
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty points: status %d", resp2.StatusCode)
	}
	resp3, _ := postJSON(t, base+"/api/v1/jobs", JobRequest{Model: "nonsense"})
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad model name: status %d", resp3.StatusCode)
	}
}

// TestSparseDensePredictAgree: the two request encodings of the same
// point must score identically.
func TestSparseDensePredictAgree(t *testing.T) {
	s := testServer(t, Config{})
	s.RegisterModel("m", &mllib.RegressionModel{Weights: []float64{1, 2, 3}})
	base := "http://" + s.Addr()
	_, body := postJSON(t, base+"/api/v1/models/m/predict", map[string]any{"points": []any{
		[]float64{0, 5, 0},
		map[string]any{"dim": 3, "indices": []int{1}, "values": []float64{5}},
	}})
	var pr struct {
		Predictions []float64 `json:"predictions"`
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Predictions) != 2 || pr.Predictions[0] != pr.Predictions[1] || pr.Predictions[0] != 10 {
		t.Fatalf("encodings disagree: %v", pr.Predictions)
	}
}
