package server

import (
	"fmt"
	"sync"
)

// eventBus fans JSON-line event records out to live subscribers (the
// /ws/events WebSocket clients). It sits behind the eventlog.Logger as
// its io.Writer: the logger encodes one JSON object per line through a
// bufio.Writer, so writes arrive here in flushed chunks that may split
// or join lines — the bus reassembles complete lines before
// broadcasting, ensuring every subscriber sees whole JSON records.
//
// Every line gets a monotonically increasing sequence number injected
// as a leading "seq" field, and the last eventRetain lines are kept in
// a ring so a reconnecting client can resume with ?since=N instead of
// losing whatever fired while it was away.
//
// Subscribers get buffered channels; a slow consumer drops events
// rather than stalling the training hot path (the logger's Write is
// called with its own lock held).
type eventBus struct {
	mu       sync.Mutex
	pending  []byte
	nextID   int
	subs     map[int]chan string
	dropped  int64
	seq      int64
	retained []seqLine // ring, oldest first, ≤ eventRetain entries
}

// seqLine is one retained broadcast line with its sequence number.
type seqLine struct {
	seq  int64
	line string
}

// eventRetain bounds the resume window. 512 lines comfortably covers a
// reconnect blip at the server's event rates without holding much.
const eventRetain = 512

func newEventBus() *eventBus {
	return &eventBus{subs: make(map[int]chan string)}
}

// Write implements io.Writer for the eventlog.Logger.
func (b *eventBus) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.pending = append(b.pending, p...)
	for {
		i := indexByte(b.pending, '\n')
		if i < 0 {
			break
		}
		line := string(b.pending[:i])
		b.pending = b.pending[i+1:]
		if line == "" {
			continue
		}
		b.seq++
		line = injectSeq(line, b.seq)
		b.retained = append(b.retained, seqLine{seq: b.seq, line: line})
		if len(b.retained) > eventRetain {
			b.retained = b.retained[len(b.retained)-eventRetain:]
		}
		for _, ch := range b.subs {
			select {
			case ch <- line:
			default:
				b.dropped++
			}
		}
	}
	return len(p), nil
}

// injectSeq prepends a "seq" member to a JSON object line. Non-object
// lines (which the logger never produces) pass through untouched.
func injectSeq(line string, seq int64) string {
	if len(line) < 2 || line[0] != '{' {
		return line
	}
	if line == "{}" {
		return fmt.Sprintf("{\"seq\":%d}", seq)
	}
	return fmt.Sprintf("{\"seq\":%d,%s", seq, line[1:])
}

// Subscribe registers a new event consumer and returns its channel plus
// an unsubscribe function. The channel is closed on unsubscribe.
func (b *eventBus) Subscribe() (<-chan string, func()) {
	ch, _, unsub := b.SubscribeSince(-1)
	return ch, unsub
}

// SubscribeSince registers a consumer and atomically returns the
// retained lines with sequence numbers strictly greater than since —
// replay those first, then drain the channel: no gap, no duplicate.
// since < 0 skips replay entirely.
func (b *eventBus) SubscribeSince(since int64) (<-chan string, []string, func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	id := b.nextID
	b.nextID++
	ch := make(chan string, 256)
	b.subs[id] = ch
	var replay []string
	if since >= 0 {
		for _, sl := range b.retained {
			if sl.seq > since {
				replay = append(replay, sl.line)
			}
		}
	}
	return ch, replay, func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if c, ok := b.subs[id]; ok {
			delete(b.subs, id)
			close(c)
		}
	}
}

func (b *eventBus) subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

func indexByte(p []byte, c byte) int {
	for i, v := range p {
		if v == c {
			return i
		}
	}
	return -1
}
