package server

import (
	"sync"
)

// eventBus fans JSON-line event records out to live subscribers (the
// /ws/events WebSocket clients). It sits behind the eventlog.Logger as
// its io.Writer: the logger encodes one JSON object per line through a
// bufio.Writer, so writes arrive here in flushed chunks that may split
// or join lines — the bus reassembles complete lines before
// broadcasting, ensuring every subscriber sees whole JSON records.
//
// Subscribers get buffered channels; a slow consumer drops events
// rather than stalling the training hot path (the logger's Write is
// called with its own lock held).
type eventBus struct {
	mu      sync.Mutex
	pending []byte
	nextID  int
	subs    map[int]chan string
	dropped int64
}

func newEventBus() *eventBus {
	return &eventBus{subs: make(map[int]chan string)}
}

// Write implements io.Writer for the eventlog.Logger.
func (b *eventBus) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.pending = append(b.pending, p...)
	for {
		i := indexByte(b.pending, '\n')
		if i < 0 {
			break
		}
		line := string(b.pending[:i])
		b.pending = b.pending[i+1:]
		if line == "" {
			continue
		}
		for _, ch := range b.subs {
			select {
			case ch <- line:
			default:
				b.dropped++
			}
		}
	}
	return len(p), nil
}

// Subscribe registers a new event consumer and returns its channel plus
// an unsubscribe function. The channel is closed on unsubscribe.
func (b *eventBus) Subscribe() (<-chan string, func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	id := b.nextID
	b.nextID++
	ch := make(chan string, 256)
	b.subs[id] = ch
	return ch, func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if c, ok := b.subs[id]; ok {
			delete(b.subs, id)
			close(c)
		}
	}
}

func (b *eventBus) subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

func indexByte(p []byte, c byte) int {
	for i, v := range p {
		if v == c {
			return i
		}
	}
	return -1
}
