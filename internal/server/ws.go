package server

import (
	"bufio"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Minimal RFC 6455 server side, hand-rolled on net/http's Hijacker so
// the event stream needs no dependency beyond the stdlib. Supports the
// subset the event feed uses: the opening handshake, unmasked text
// frames server→client, and client ping/close handling.

const wsGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

const (
	wsOpText  = 0x1
	wsOpClose = 0x8
	wsOpPing  = 0x9
	wsOpPong  = 0xA
)

// wsUpgrade performs the opening handshake and returns the hijacked
// connection.
func wsUpgrade(w http.ResponseWriter, r *http.Request) (net.Conn, *bufio.ReadWriter, error) {
	if !headerContainsToken(r.Header, "Connection", "upgrade") ||
		!strings.EqualFold(r.Header.Get("Upgrade"), "websocket") {
		http.Error(w, "websocket upgrade required", http.StatusBadRequest)
		return nil, nil, fmt.Errorf("server: not a websocket handshake")
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		http.Error(w, "missing Sec-WebSocket-Key", http.StatusBadRequest)
		return nil, nil, fmt.Errorf("server: missing websocket key")
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "hijacking unsupported", http.StatusInternalServerError)
		return nil, nil, fmt.Errorf("server: ResponseWriter is not a Hijacker")
	}
	conn, brw, err := hj.Hijack()
	if err != nil {
		return nil, nil, err
	}
	sum := sha1.Sum([]byte(key + wsGUID))
	accept := base64.StdEncoding.EncodeToString(sum[:])
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + accept + "\r\n\r\n"
	if _, err := brw.WriteString(resp); err != nil {
		conn.Close()
		return nil, nil, err
	}
	if err := brw.Flush(); err != nil {
		conn.Close()
		return nil, nil, err
	}
	return conn, brw, nil
}

func headerContainsToken(h http.Header, name, token string) bool {
	for _, v := range h.Values(name) {
		for _, part := range strings.Split(v, ",") {
			if strings.EqualFold(strings.TrimSpace(part), token) {
				return true
			}
		}
	}
	return false
}

// wsWriteFrame writes one unmasked server frame.
func wsWriteFrame(w io.Writer, opcode byte, payload []byte) error {
	var hdr [10]byte
	hdr[0] = 0x80 | opcode // FIN set, no fragmentation
	n := len(payload)
	var hlen int
	switch {
	case n < 126:
		hdr[1] = byte(n)
		hlen = 2
	case n < 1<<16:
		hdr[1] = 126
		binary.BigEndian.PutUint16(hdr[2:], uint16(n))
		hlen = 4
	default:
		hdr[1] = 127
		binary.BigEndian.PutUint64(hdr[2:], uint64(n))
		hlen = 10
	}
	if _, err := w.Write(hdr[:hlen]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// wsReadFrame reads one client frame, unmasking the payload. Client
// frames must be masked per RFC 6455 §5.1.
func wsReadFrame(r *bufio.Reader) (opcode byte, payload []byte, err error) {
	var hdr [2]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	opcode = hdr[0] & 0x0F
	masked := hdr[1]&0x80 != 0
	n := uint64(hdr[1] & 0x7F)
	switch n {
	case 126:
		var ext [2]byte
		if _, err = io.ReadFull(r, ext[:]); err != nil {
			return 0, nil, err
		}
		n = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err = io.ReadFull(r, ext[:]); err != nil {
			return 0, nil, err
		}
		n = binary.BigEndian.Uint64(ext[:])
	}
	if n > 1<<20 {
		return 0, nil, fmt.Errorf("server: websocket frame too large (%d bytes)", n)
	}
	var mask [4]byte
	if masked {
		if _, err = io.ReadFull(r, mask[:]); err != nil {
			return 0, nil, err
		}
	}
	payload = make([]byte, n)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	if masked {
		for i := range payload {
			payload[i] ^= mask[i%4]
		}
	}
	return opcode, payload, nil
}

// serveEventSocket streams event-bus lines as text frames until the
// client closes, the connection errors, or the server shuts down.
// With ?since=N the retained tail with seq > N is replayed first, so a
// reconnecting client resumes from its last seen sequence number
// without gaps or duplicates (as long as the gap fits the retain
// window).
func (s *Server) serveEventSocket(w http.ResponseWriter, r *http.Request) {
	since := int64(-1)
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			http.Error(w, "bad since parameter", http.StatusBadRequest)
			return
		}
		since = n
	}
	conn, brw, err := wsUpgrade(w, r)
	if err != nil {
		return
	}
	defer conn.Close()
	events, replay, unsubscribe := s.bus.SubscribeSince(since)
	defer unsubscribe()
	for _, line := range replay {
		conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
		if err := wsWriteFrame(brw, wsOpText, []byte(line)); err != nil {
			return
		}
	}
	if len(replay) > 0 {
		if err := brw.Flush(); err != nil {
			return
		}
	}

	// Read loop: service pings, notice close frames, absorb anything
	// else. Ends (and signals the writer) when the peer goes away.
	readerDone := make(chan struct{})
	pongs := make(chan []byte, 4)
	go func() {
		defer close(readerDone)
		for {
			op, payload, err := wsReadFrame(brw.Reader)
			if err != nil {
				return
			}
			switch op {
			case wsOpPing:
				select {
				case pongs <- payload:
				default:
				}
			case wsOpClose:
				return
			}
		}
	}()

	for {
		select {
		case line, ok := <-events:
			if !ok {
				return
			}
			conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
			if err := wsWriteFrame(brw, wsOpText, []byte(line)); err != nil {
				return
			}
			if err := brw.Flush(); err != nil {
				return
			}
		case payload := <-pongs:
			conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
			if err := wsWriteFrame(brw, wsOpPong, payload); err != nil {
				return
			}
			if err := brw.Flush(); err != nil {
				return
			}
		case <-readerDone:
			return
		case <-s.closing:
			conn.SetWriteDeadline(time.Now().Add(time.Second))
			wsWriteFrame(brw, wsOpClose, []byte{0x03, 0xE8}) // 1000 normal closure
			brw.Flush()
			return
		}
	}
}
