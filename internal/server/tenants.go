package server

import (
	"sync"
	"time"

	"sparker/internal/sched"
)

// TenantConfig sets a tenant's admission and fair-share parameters.
type TenantConfig struct {
	// Weight is the proportional fair-share weight handed to the
	// scheduler (default 1).
	Weight float64 `json:"weight"`
	// MaxSlots caps the tenant's concurrently reserved core slots
	// (0: unlimited).
	MaxSlots int `json:"max_slots"`
	// BurstJobs is the admission token bucket's capacity — how many
	// job submissions a tenant may burst before refill gates it
	// (default 8).
	BurstJobs float64 `json:"burst_jobs"`
	// RefillPerSec is the bucket's sustained admission rate in jobs
	// per second (default 4).
	RefillPerSec float64 `json:"refill_per_sec"`
	// MaxQueued bounds the tenant's jobs sitting in queued/running
	// states; beyond it submissions are rejected even with tokens
	// (default 32).
	MaxQueued int `json:"max_queued"`
}

func (c *TenantConfig) fill() {
	if c.Weight <= 0 {
		c.Weight = 1
	}
	if c.BurstJobs <= 0 {
		c.BurstJobs = 8
	}
	if c.RefillPerSec <= 0 {
		c.RefillPerSec = 4
	}
	if c.MaxQueued <= 0 {
		c.MaxQueued = 32
	}
}

// tenantEntry is one tenant's server-side state: the token bucket that
// gates job admission plus counters surfaced on /metrics.
type tenantEntry struct {
	name string
	cfg  TenantConfig

	mu       sync.Mutex
	tokens   float64
	last     time.Time
	inFlight int // queued + running jobs
	admitted int64
	rejected int64
}

// admit consumes one admission token if available and the in-flight
// bound permits; returns false (with the reason) otherwise.
func (t *tenantEntry) admit(now time.Time) (bool, string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.inFlight >= t.cfg.MaxQueued {
		t.rejected++
		return false, "tenant queue full"
	}
	elapsed := now.Sub(t.last).Seconds()
	if elapsed > 0 {
		t.tokens += elapsed * t.cfg.RefillPerSec
		if t.tokens > t.cfg.BurstJobs {
			t.tokens = t.cfg.BurstJobs
		}
		t.last = now
	}
	if t.tokens < 1 {
		t.rejected++
		return false, "admission rate exceeded"
	}
	t.tokens--
	t.admitted++
	t.inFlight++
	return true, ""
}

// release returns a job's in-flight reservation when it reaches a
// terminal state.
func (t *tenantEntry) release() {
	t.mu.Lock()
	t.inFlight--
	t.mu.Unlock()
}

func (t *tenantEntry) snapshot() (inFlight int, admitted, rejected int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.inFlight, t.admitted, t.rejected
}

// tenantRegistry indexes tenants by name, creating unknown tenants on
// first contact with the server's default parameters.
type tenantRegistry struct {
	mu       sync.Mutex
	tenants  map[string]*tenantEntry
	defaults TenantConfig
	now      func() time.Time
	// configure pushes weight/slot settings into the scheduler's
	// fair-share accounts.
	configure func(name string, cfg sched.TenantConfig) error
}

func newTenantRegistry(defaults TenantConfig, configure func(string, sched.TenantConfig) error) *tenantRegistry {
	defaults.fill()
	return &tenantRegistry{
		tenants:   make(map[string]*tenantEntry),
		defaults:  defaults,
		now:       time.Now,
		configure: configure,
	}
}

// ensure returns the entry for name, creating it with defaults (and
// registering its fair-share account) if new.
func (r *tenantRegistry) ensure(name string) *tenantEntry {
	r.mu.Lock()
	t, ok := r.tenants[name]
	if !ok {
		cfg := r.defaults
		t = &tenantEntry{name: name, cfg: cfg, tokens: cfg.BurstJobs, last: r.now()}
		r.tenants[name] = t
	}
	r.mu.Unlock()
	if !ok && r.configure != nil {
		r.configure(name, sched.TenantConfig{Weight: t.cfg.Weight, MaxSlots: t.cfg.MaxSlots})
	}
	return t
}

// set applies an explicit configuration to a tenant (creating it if
// needed) and propagates the scheduling half to the scheduler.
func (r *tenantRegistry) set(name string, cfg TenantConfig) *tenantEntry {
	cfg.fill()
	r.mu.Lock()
	t, ok := r.tenants[name]
	if !ok {
		t = &tenantEntry{name: name, tokens: cfg.BurstJobs, last: r.now()}
		r.tenants[name] = t
	}
	t.mu.Lock()
	t.cfg = cfg
	if t.tokens > cfg.BurstJobs {
		t.tokens = cfg.BurstJobs
	}
	t.mu.Unlock()
	r.mu.Unlock()
	if r.configure != nil {
		r.configure(name, sched.TenantConfig{Weight: cfg.Weight, MaxSlots: cfg.MaxSlots})
	}
	return t
}

func (r *tenantRegistry) all() []*tenantEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*tenantEntry, 0, len(r.tenants))
	for _, t := range r.tenants {
		out = append(out, t)
	}
	return out
}
