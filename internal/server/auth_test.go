package server

import (
	"net/http"
	"strings"
	"testing"
)

// doAuth issues a request with an optional bearer token.
func doAuth(t *testing.T, method, url, token string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func TestAuthTokenGatesAPI(t *testing.T) {
	s := testServer(t, Config{AuthToken: "s3cret"})
	base := "http://" + s.Addr()

	// No token and a wrong token are both refused on every /api/v1 verb.
	for _, token := range []string{"", "wrong", "s3cretmore", "S3CRET"} {
		for _, ep := range []struct{ method, path string }{
			{http.MethodGet, "/api/v1/jobs"},
			{http.MethodPost, "/api/v1/jobs"},
			{http.MethodGet, "/api/v1/tenants"},
			{http.MethodGet, "/api/v1/models"},
		} {
			resp := doAuth(t, ep.method, base+ep.path, token)
			if resp.StatusCode != http.StatusUnauthorized {
				t.Errorf("%s %s token=%q: got %d, want 401", ep.method, ep.path, token, resp.StatusCode)
			}
			if resp.Header.Get("WWW-Authenticate") == "" {
				t.Errorf("%s %s: missing WWW-Authenticate challenge", ep.method, ep.path)
			}
		}
	}

	// The observability surfaces expose internal state (and /debug can
	// trigger expensive dumps), so they are gated too.
	for _, path := range []string{"/metrics", "/debug/sparker/membership", "/debug/pprof/cmdline", "/ws/events"} {
		resp := doAuth(t, http.MethodGet, base+path, "")
		if resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("GET %s without token: got %d, want 401", path, resp.StatusCode)
		}
	}

	// The right token passes through to the handlers.
	for _, path := range []string{"/api/v1/jobs", "/metrics", "/debug/sparker/membership"} {
		if resp := doAuth(t, http.MethodGet, base+path, "s3cret"); resp.StatusCode != http.StatusOK {
			t.Errorf("authorized GET %s: got %d, want 200", path, resp.StatusCode)
		}
	}

	// Liveness stays open so probes work without credentials.
	for _, path := range []string{"/healthz", "/buildinfo"} {
		resp := doAuth(t, http.MethodGet, base+path, "")
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s without token: got %d, want 200", path, resp.StatusCode)
		}
	}
}

func TestAuthTokenDisabledByDefault(t *testing.T) {
	s := testServer(t, Config{})
	base := "http://" + s.Addr()
	resp := doAuth(t, http.MethodGet, base+"/api/v1/jobs", "")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /api/v1/jobs with no auth configured: got %d, want 200", resp.StatusCode)
	}
}
