package server

// Durable job history: when Config.HistoryDir is set the server tees
// its event log into an append-only events.jsonl (the same JSON-line
// schema sparker-analyze reads) and appends every terminal JobStatus
// to jobs.jsonl. On boot the jobs file is replayed into the job list,
// so GET /api/v1/jobs shows what ran before the restart — records are
// marked "restored" and ID allocation continues past them.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

const (
	historyEventsFile = "events.jsonl"
	historyJobsFile   = "jobs.jsonl"
)

// jobHistory owns the two append-only files. A nil *jobHistory drops
// everything, so call sites need no guards.
type jobHistory struct {
	mu     sync.Mutex
	events *os.File
	jobs   *os.File
	enc    *json.Encoder
}

func openJobHistory(dir string) (*jobHistory, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: history dir: %w", err)
	}
	ev, err := os.OpenFile(filepath.Join(dir, historyEventsFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: history events: %w", err)
	}
	jf, err := os.OpenFile(filepath.Join(dir, historyJobsFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		ev.Close()
		return nil, fmt.Errorf("server: history jobs: %w", err)
	}
	return &jobHistory{events: ev, jobs: jf, enc: json.NewEncoder(jf)}, nil
}

// eventWriter returns the writer the event log tees into.
func (h *jobHistory) eventWriter() io.Writer {
	if h == nil {
		return io.Discard
	}
	return h.events
}

// appendJob records one terminal job status.
func (h *jobHistory) appendJob(st JobStatus) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.enc.Encode(st)
}

// replay feeds every previously persisted terminal job into restore.
// Corrupt lines are skipped — a crash mid-append must not brick boot.
func replayJobHistory(dir string, restore func(JobStatus)) (int, error) {
	f, err := os.Open(filepath.Join(dir, historyJobsFile))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	n := 0
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var st JobStatus
		if err := json.Unmarshal(sc.Bytes(), &st); err != nil || st.ID == "" {
			continue
		}
		restore(st)
		n++
	}
	return n, sc.Err()
}

func (h *jobHistory) close() {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.events.Close()
	h.jobs.Close()
}

// persistJob appends a terminal job record to the history log (no-op
// without -history-dir).
func (s *Server) persistJob(st JobStatus) {
	if st.State.terminal() {
		s.history.appendJob(st)
	}
}
