package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"sparker/internal/data"
	"sparker/internal/linalg"
	"sparker/internal/metrics"
	"sparker/internal/mllib"
	"sparker/internal/rdd"
)

// JobRequest is a training job submission.
type JobRequest struct {
	// Tenant names the fair-share account charged for the job
	// (default "default").
	Tenant string `json:"tenant"`
	// Model is one of "lr", "svm", "linreg", "kmeans".
	Model string `json:"model"`
	// Profile picks a synthetic dataset profile (Table 2 name,
	// default "avazu") and Scale its downscale factor (default 20000).
	Profile string `json:"profile"`
	Scale   int    `json:"scale"`
	// Iterations is the training iteration count (default 5).
	Iterations int `json:"iterations"`
	// Strategy picks the aggregation implementation (default "imm").
	Strategy string `json:"strategy"`
	// Partitions is the training RDD's partition count (default: the
	// cluster's total cores).
	Partitions int `json:"partitions"`
	// K is the cluster count for kmeans (default 4).
	K int `json:"k"`
	// StepSize is the GD learning rate (default 1.0).
	StepSize float64 `json:"step_size"`
	// Seed drives data generation and sampling.
	Seed int64 `json:"seed"`
	// SaveAs registers the trained model for serving under this name
	// (default: the job id). Empty string "-" skips registration.
	SaveAs string `json:"save_as"`
}

// JobState is a job's lifecycle position.
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// terminal reports whether a state can no longer change.
func (s JobState) terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// JobStatus is the externally visible job record.
type JobStatus struct {
	ID        string     `json:"id"`
	Tenant    string     `json:"tenant"`
	State     JobState   `json:"state"`
	Request   JobRequest `json:"request"`
	Error     string     `json:"error,omitempty"`
	Result    *JobResult `json:"result,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	// Restored marks records replayed from the history log on boot —
	// visible in listings but no longer backed by a live goroutine.
	Restored bool `json:"restored,omitempty"`
}

// JobResult summarizes a completed training run.
type JobResult struct {
	ModelName  string  `json:"model_name,omitempty"`
	Kind       string  `json:"kind"`
	Samples    int     `json:"samples"`
	Features   int     `json:"features"`
	Iterations int     `json:"iterations"`
	FinalLoss  float64 `json:"final_loss"`
	WallMS     int64   `json:"wall_ms"`
}

type job struct {
	mu     sync.Mutex
	status JobStatus
	// ctx is cancelled by DELETE /api/v1/jobs/{id}; the training loop
	// derives from it (GDConfig.Ctx / KMeansConfig.Ctx), so a cancel
	// aborts the next iteration's collective launch.
	ctx    context.Context
	cancel context.CancelFunc
}

func (j *job) view() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// jobManager tracks all jobs and gates concurrent training runs on a
// semaphore so a burst of admissions doesn't oversubscribe the driver;
// queued jobs wait for a slot, then compete inside the scheduler under
// fair-share.
type jobManager struct {
	mu     sync.Mutex
	jobs   map[string]*job
	order  []string
	nextID int64
	sem    chan struct{}
	wg     sync.WaitGroup
}

func newJobManager(maxConcurrent int) *jobManager {
	if maxConcurrent <= 0 {
		maxConcurrent = 4
	}
	return &jobManager{
		jobs: make(map[string]*job),
		sem:  make(chan struct{}, maxConcurrent),
	}
}

func (m *jobManager) create(req JobRequest) *job {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	id := fmt.Sprintf("job-%d", m.nextID)
	j := &job{status: JobStatus{
		ID:        id,
		Tenant:    req.Tenant,
		State:     JobQueued,
		Request:   req,
		Submitted: time.Now(),
	}}
	j.ctx, j.cancel = context.WithCancel(context.Background())
	m.jobs[id] = j
	m.order = append(m.order, id)
	return j
}

// restore re-inserts a historical job record replayed from the
// persisted log and keeps ID allocation beyond it.
func (m *jobManager) restore(st JobStatus) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.jobs[st.ID]; ok {
		return
	}
	st.Restored = true
	j := &job{status: st}
	j.ctx, j.cancel = context.WithCancel(context.Background())
	j.cancel() // nothing live behind a restored record
	m.jobs[st.ID] = j
	m.order = append(m.order, st.ID)
	var n int64
	if _, err := fmt.Sscanf(st.ID, "job-%d", &n); err == nil && n > m.nextID {
		m.nextID = n
	}
}

func (m *jobManager) get(id string) *job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobs[id]
}

func (m *jobManager) list() []JobStatus {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	byID := make(map[string]*job, len(m.jobs))
	for id, j := range m.jobs {
		byID[id] = j
	}
	m.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		out = append(out, byID[id].view())
	}
	return out
}

// queuedByTenant counts non-terminal jobs per tenant for the /metrics
// queue-depth gauges.
func (m *jobManager) queuedByTenant() map[string]int {
	counts := make(map[string]int)
	for _, st := range m.list() {
		if st.State == JobQueued || st.State == JobRunning {
			counts[st.Tenant]++
		}
	}
	return counts
}

func (r *JobRequest) fill(totalCores int) error {
	if r.Tenant == "" {
		r.Tenant = "default"
	}
	switch r.Model {
	case "lr", "svm", "linreg", "kmeans":
	case "":
		r.Model = "lr"
	default:
		return fmt.Errorf("unknown model %q (lr, svm, linreg, kmeans)", r.Model)
	}
	if r.Profile == "" {
		r.Profile = "avazu"
	}
	if r.Scale <= 0 {
		r.Scale = 20000
	}
	if r.Iterations <= 0 {
		r.Iterations = 5
	}
	if r.Strategy == "" {
		r.Strategy = "imm"
	}
	if _, err := mllib.ParseStrategy(r.Strategy); err != nil {
		return err
	}
	if r.Partitions <= 0 {
		r.Partitions = totalCores
	}
	if r.K <= 0 {
		r.K = 4
	}
	if r.StepSize <= 0 {
		r.StepSize = 1.0
	}
	return nil
}

// runJob executes one training job end to end: generate the profile's
// data, train with the tenant-tagged config, and register the model
// for serving. Runs on its own goroutine with a semaphore slot held.
func (s *Server) runJob(j *job, t *tenantEntry) {
	defer s.jobs.wg.Done()
	defer t.release()

	select {
	case s.jobs.sem <- struct{}{}:
		defer func() { <-s.jobs.sem }()
	case <-j.ctx.Done():
		s.finishJob(j, nil, fmt.Errorf("job cancelled while queued: %w", context.Canceled))
		return
	case <-s.closing:
		s.finishJob(j, nil, fmt.Errorf("server shutting down"))
		return
	}
	now := time.Now()
	j.mu.Lock()
	j.status.State = JobRunning
	j.status.Started = &now
	id, req := j.status.ID, j.status.Request
	j.mu.Unlock()
	s.logger.Marker("job-start", fmt.Sprintf("%s tenant=%s model=%s", id, req.Tenant, req.Model))

	res, err := s.train(j.ctx, id, req)
	s.finishJob(j, res, err)
}

func (s *Server) finishJob(j *job, res *JobResult, err error) {
	now := time.Now()
	j.mu.Lock()
	j.status.Finished = &now
	switch {
	case err != nil && errors.Is(err, context.Canceled):
		j.status.State = JobCancelled
		j.status.Error = err.Error()
	case err != nil:
		j.status.State = JobFailed
		j.status.Error = err.Error()
	default:
		j.status.State = JobDone
		j.status.Result = res
	}
	id, state, tenant := j.status.ID, j.status.State, j.status.Tenant
	j.mu.Unlock()
	s.logger.Marker("job-finish", fmt.Sprintf("%s state=%s", id, state))
	// Terminal anomalies feed the flight recorder: RecordMarker tees
	// into the Observer, whose default triggers include both counters,
	// so a failed or cancelled job snapshots a postmortem bundle.
	switch state {
	case JobCancelled:
		s.ctx.RecordMarker(metrics.CounterJobCancelled, fmt.Sprintf("%s tenant=%s", id, tenant))
	case JobFailed:
		s.ctx.RecordMarker(metrics.CounterJobFailed, fmt.Sprintf("%s tenant=%s: %s", id, tenant, j.view().Error))
	}
	s.persistJob(j.view())
}

// train runs the requested workload on the shared context. jctx bounds
// the run: cancelling it (DELETE /api/v1/jobs/{id}) aborts the next
// iteration with context.Canceled.
func (s *Server) train(jctx context.Context, id string, req JobRequest) (*JobResult, error) {
	strat, err := mllib.ParseStrategy(req.Strategy)
	if err != nil {
		return nil, err
	}
	p, err := data.ProfileByName(req.Profile)
	if err != nil {
		return nil, err
	}
	if p.Task != data.TaskClassification {
		return nil, fmt.Errorf("profile %s is not a classification dataset", req.Profile)
	}
	sp := p.Scaled(req.Scale)
	points := data.GenClassification(sp.ClassificationSpec(req.Seed))
	if len(points) == 0 {
		return nil, fmt.Errorf("profile %s at scale %d yields no samples", req.Profile, req.Scale)
	}
	start := time.Now()
	res := &JobResult{Samples: len(points), Features: sp.Features, Iterations: req.Iterations}
	var trained mllib.Model

	switch req.Model {
	case "kmeans":
		vecs := make([]linalg.SparseVector, len(points))
		for i, pt := range points {
			vecs[i] = pt.Features
		}
		train := rdd.FromSlice(s.ctx, vecs, req.Partitions).Cache()
		defer train.Unpersist()
		m, err := mllib.TrainKMeans(train, mllib.KMeansConfig{
			K: req.K, NumFeatures: sp.Features, Iterations: req.Iterations,
			Strategy: strat, Tenant: req.Tenant, Ctx: jctx,
		})
		if err != nil {
			return nil, err
		}
		trained = m
		if n := len(m.CostHistory); n > 0 {
			res.FinalLoss = m.CostHistory[n-1]
		}
	default:
		train := rdd.FromSlice(s.ctx, points, req.Partitions).Cache()
		defer train.Unpersist()
		gd := mllib.GDConfig{
			Iterations: req.Iterations, StepSize: req.StepSize,
			Strategy: strat, Seed: req.Seed, Tenant: req.Tenant, Ctx: jctx,
		}
		var losses []float64
		switch req.Model {
		case "svm":
			m, err := mllib.TrainSVM(train, mllib.SVMConfig{NumFeatures: sp.Features, GD: gd})
			if err != nil {
				return nil, err
			}
			trained, losses = m, m.Losses
		case "linreg":
			m, err := mllib.TrainLinearRegression(train, mllib.LinearRegressionConfig{NumFeatures: sp.Features, GD: gd})
			if err != nil {
				return nil, err
			}
			trained, losses = m, m.Losses
		default: // lr
			m, err := mllib.TrainLogisticRegression(train, mllib.LogisticRegressionConfig{NumFeatures: sp.Features, GD: gd})
			if err != nil {
				return nil, err
			}
			trained, losses = m, m.Losses
		}
		if n := len(losses); n > 0 {
			res.FinalLoss = losses[n-1]
		}
	}
	res.Kind = trained.Kind()
	res.WallMS = time.Since(start).Milliseconds()

	name := req.SaveAs
	if name == "" {
		name = id
	}
	if name != "-" {
		s.models.register(name, trained)
		res.ModelName = name
	}
	return res, nil
}

// sortedTenants returns tenant names in stable order for JSON output.
func sortedTenants(entries []*tenantEntry) []*tenantEntry {
	sort.Slice(entries, func(a, b int) bool { return entries[a].name < entries[b].name })
	return entries
}
