package server

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"sparker/internal/linalg"
	"sparker/internal/metrics"
	"sparker/internal/mllib"
)

// BatchConfig tunes the prediction micro-batcher.
type BatchConfig struct {
	// MaxBatch is the point count that triggers an immediate drain
	// (default 256).
	MaxBatch int
	// MaxDelay is the longest a request waits for co-batching before
	// the partial batch drains anyway (default 2ms).
	MaxDelay time.Duration
	// Workers shards each drained batch across this many cores via
	// linalg.ParallelFor (default 4).
	Workers int
}

func (c *BatchConfig) fill() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
}

// predictReq is one client's slice of a micro-batch. The batcher
// replies with a subslice view into the batch-wide output array, so
// the reply must be consumed before the next use — the HTTP handler
// serializes it to JSON immediately.
type predictReq struct {
	xs    []linalg.SparseVector
	reply chan []float64
}

// servedModel owns one model's request queue and batcher goroutine.
// Requests accumulate until MaxBatch points are waiting or MaxDelay
// has passed since the batch opened, then the whole batch is scored in
// one sharded PredictBatch pass — amortizing dispatch and cache warmup
// the way Sparker amortizes reduction: fewer, bigger operations.
type servedModel struct {
	name  string
	model mllib.Model
	reqs  chan predictReq
	done  chan struct{}
	wg    sync.WaitGroup
}

// modelRegistry maps names to live servedModel batchers.
type modelRegistry struct {
	mu     sync.Mutex
	models map[string]*servedModel
	cfg    BatchConfig
	reg    *metrics.Registry
}

func newModelRegistry(cfg BatchConfig, reg *metrics.Registry) *modelRegistry {
	cfg.fill()
	return &modelRegistry{models: make(map[string]*servedModel), cfg: cfg, reg: reg}
}

// register installs (or replaces) a model under name and starts its
// batcher.
func (r *modelRegistry) register(name string, m mllib.Model) {
	sm := &servedModel{
		name:  name,
		model: m,
		reqs:  make(chan predictReq, 1024),
		done:  make(chan struct{}),
	}
	sm.wg.Add(1)
	go r.batchLoop(sm)
	r.mu.Lock()
	old := r.models[name]
	r.models[name] = sm
	r.mu.Unlock()
	if old != nil {
		old.stop()
	}
}

func (r *modelRegistry) get(name string) *servedModel {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.models[name]
}

// list returns name/kind/dim triples sorted by name.
func (r *modelRegistry) list() []map[string]any {
	r.mu.Lock()
	names := make([]string, 0, len(r.models))
	for n := range r.models {
		names = append(names, n)
	}
	byName := make(map[string]*servedModel, len(r.models))
	for n, m := range r.models {
		byName[n] = m
	}
	r.mu.Unlock()
	sort.Strings(names)
	out := make([]map[string]any, 0, len(names))
	for _, n := range names {
		m := byName[n]
		out = append(out, map[string]any{
			"name":         n,
			"kind":         m.model.Kind(),
			"num_features": m.model.NumFeatures(),
		})
	}
	return out
}

func (r *modelRegistry) close() {
	r.mu.Lock()
	models := make([]*servedModel, 0, len(r.models))
	for _, m := range r.models {
		models = append(models, m)
	}
	r.models = make(map[string]*servedModel)
	r.mu.Unlock()
	for _, m := range models {
		m.stop()
	}
}

func (m *servedModel) stop() {
	close(m.done)
	m.wg.Wait()
}

// predict enqueues xs and blocks for the batch result.
func (m *servedModel) predict(xs []linalg.SparseVector) ([]float64, error) {
	req := predictReq{xs: xs, reply: make(chan []float64, 1)}
	select {
	case m.reqs <- req:
	case <-m.done:
		return nil, fmt.Errorf("server: model %s is shutting down", m.name)
	}
	select {
	case out := <-req.reply:
		return out, nil
	case <-m.done:
		return nil, fmt.Errorf("server: model %s is shutting down", m.name)
	}
}

// batchLoop drains the request queue in size-or-deadline micro-batches.
func (r *modelRegistry) batchLoop(sm *servedModel) {
	defer sm.wg.Done()
	batchHist := r.reg.Histogram("serve_batch_points")
	scoreHist := r.reg.Histogram("serve_score_ns")
	var (
		batch  []predictReq
		points int
		timer  *time.Timer
		fireC  <-chan time.Time
	)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		xs := make([]linalg.SparseVector, 0, points)
		for _, req := range batch {
			xs = append(xs, req.xs...)
		}
		out := make([]float64, len(xs))
		start := time.Now()
		linalg.ParallelFor(len(xs), r.cfg.Workers, func(lo, hi int) {
			sm.model.PredictBatch(xs[lo:hi], out[lo:hi])
		})
		scoreHist.Observe(time.Since(start).Nanoseconds())
		batchHist.Observe(int64(len(xs)))
		off := 0
		for _, req := range batch {
			req.reply <- out[off : off+len(req.xs)]
			off += len(req.xs)
		}
		batch, points = nil, 0
		// Drain a stale expiry so a later Reset arms cleanly.
		if timer != nil && !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		fireC = nil
	}
	for {
		select {
		case req := <-sm.reqs:
			if len(batch) == 0 {
				if timer == nil {
					timer = time.NewTimer(r.cfg.MaxDelay)
				} else {
					timer.Reset(r.cfg.MaxDelay)
				}
				fireC = timer.C
			}
			batch = append(batch, req)
			points += len(req.xs)
			if points >= r.cfg.MaxBatch {
				flush()
			}
		case <-fireC:
			fireC = nil
			flush()
		case <-sm.done:
			flush()
			return
		}
	}
}
