package server

// Observability satellites: DELETE cancellation producing a valid
// flight-recorder bundle, the resumable event stream, durable job
// history, and the operations endpoints.

import (
	"bufio"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sparker/internal/obsv"
	"sparker/internal/rdd"
)

// wsDial performs the RFC 6455 client handshake against path and
// returns the raw connection plus a reader positioned at frame data.
func wsDial(t *testing.T, addr, path string) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	key := base64.StdEncoding.EncodeToString([]byte("0123456789abcdef"))
	fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: %s\r\nUpgrade: websocket\r\nConnection: Upgrade\r\nSec-WebSocket-Key: %s\r\nSec-WebSocket-Version: 13\r\n\r\n", path, addr, key)
	br := bufio.NewReader(conn)
	status, err := br.ReadString('\n')
	if err != nil || !strings.Contains(status, "101") {
		conn.Close()
		t.Fatalf("handshake on %s: status %q err %v", path, status, err)
	}
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			conn.Close()
			t.Fatal(err)
		}
		if line == "\r\n" {
			return conn, br
		}
	}
}

// readEvent reads frames until the next JSON event and returns it with
// its sequence number.
func readEvent(t *testing.T, conn net.Conn, br *bufio.Reader, timeout time.Duration) (seq int64, kind, name string) {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(timeout))
	for {
		op, payload, err := wsReadFrame(br)
		if err != nil {
			t.Fatalf("reading frame: %v", err)
		}
		if op != wsOpText {
			continue
		}
		var ev struct {
			Seq  int64  `json:"seq"`
			Kind string `json:"kind"`
			Name string `json:"name"`
		}
		if err := json.Unmarshal(payload, &ev); err != nil {
			t.Fatalf("frame is not a JSON event: %q", payload)
		}
		if ev.Seq == 0 {
			t.Fatalf("event without sequence number: %q", payload)
		}
		return ev.Seq, ev.Kind, ev.Name
	}
}

// TestCancelJobProducesBundle drives the full anomaly path: a running
// job is cancelled over DELETE, the training loop aborts with
// context.Canceled, the job-cancelled marker trips the flight
// recorder, and the resulting postmortem bundle validates.
func TestCancelJobProducesBundle(t *testing.T) {
	bundleDir := t.TempDir()
	obs := obsv.New(obsv.Config{BundleDir: bundleDir})
	s := testServer(t, Config{
		Cluster: rdd.Config{NumExecutors: 2, CoresPerExecutor: 2, Obsv: obs},
	})
	base := "http://" + s.Addr()

	// Enough fast iterations that the job is still running when the
	// DELETE lands, and hits a cancellation check soon after.
	resp, body := postJSON(t, base+"/api/v1/jobs", JobRequest{
		Model: "lr", Scale: 200000, Iterations: 100000, SaveAs: "-",
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(15 * time.Second)
	for {
		if cur := s.jobs.get(st.ID).view(); cur.State == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never started running", st.ID)
		}
		time.Sleep(5 * time.Millisecond)
	}

	req, _ := http.NewRequest(http.MethodDelete, base+"/api/v1/jobs/"+st.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE: status %d", dresp.StatusCode)
	}

	for {
		cur := s.jobs.get(st.ID).view()
		if cur.State.terminal() {
			if cur.State != JobCancelled {
				t.Fatalf("job reached %s (%s), want cancelled", cur.State, cur.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not reach a terminal state", st.ID)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A second DELETE on the terminal job must 409.
	req2, _ := http.NewRequest(http.MethodDelete, base+"/api/v1/jobs/"+st.ID, nil)
	dresp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	dresp2.Body.Close()
	if dresp2.StatusCode != http.StatusConflict {
		t.Fatalf("second DELETE: status %d, want 409", dresp2.StatusCode)
	}

	if !obs.Flush(10 * time.Second) {
		t.Fatal("observer did not drain pending bundle dumps")
	}
	bundles := obs.Bundles()
	if len(bundles) == 0 {
		t.Fatal("cancellation produced no postmortem bundle")
	}
	b, err := obsv.Load(bundles[len(bundles)-1])
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("bundle invalid: %v", err)
	}
	if b.Trigger.Name != "job-cancelled" {
		t.Fatalf("bundle trigger %q, want job-cancelled", b.Trigger.Name)
	}
	if !strings.Contains(b.Trigger.Detail, st.ID) {
		t.Fatalf("trigger detail %q does not name job %s", b.Trigger.Detail, st.ID)
	}
}

// TestEventStreamResume disconnects mid-stream and reconnects with
// ?since=N: the replayed tail must continue exactly where the first
// connection left off — no gap, no duplicate.
func TestEventStreamResume(t *testing.T) {
	s := testServer(t, Config{})
	base := "http://" + s.Addr()

	conn, br := wsDial(t, s.Addr(), "/ws/events")
	postJSON(t, base+"/api/v1/jobs", JobRequest{Model: "lr", Scale: 200000, Iterations: 1, SaveAs: "-"})

	var lastSeq int64
	for {
		seq, _, name := readEvent(t, conn, br, 10*time.Second)
		if seq <= lastSeq {
			t.Fatalf("sequence went backwards: %d after %d", seq, lastSeq)
		}
		lastSeq = seq
		if name == "job-submit" {
			break
		}
	}
	conn.Close()

	// More traffic while disconnected.
	_, body := postJSON(t, base+"/api/v1/jobs", JobRequest{Model: "lr", Scale: 200000, Iterations: 1, SaveAs: "-"})
	var st2 JobStatus
	json.Unmarshal(body, &st2)
	waitJob(t, base, st2.ID, 30*time.Second)
	s.logger.Flush()

	conn2, br2 := wsDial(t, s.Addr(), fmt.Sprintf("/ws/events?since=%d", lastSeq))
	defer conn2.Close()
	want := lastSeq + 1
	sawSecondSubmit := false
	for i := 0; i < 200 && !sawSecondSubmit; i++ {
		seq, _, name := readEvent(t, conn2, br2, 10*time.Second)
		if seq != want {
			t.Fatalf("resume gap: got seq %d, want %d", seq, want)
		}
		want++
		if name == "job-submit" {
			sawSecondSubmit = true
		}
	}
	if !sawSecondSubmit {
		t.Fatal("resumed stream never replayed the second job-submit")
	}
}

// TestHistoryReplay restarts the server on the same -history-dir and
// expects the first incarnation's jobs in the listing, with new IDs
// allocated past them.
func TestHistoryReplay(t *testing.T) {
	dir := t.TempDir()
	s1 := testServer(t, Config{HistoryDir: dir})
	base1 := "http://" + s1.Addr()
	_, body := postJSON(t, base1+"/api/v1/jobs", JobRequest{Model: "lr", Scale: 200000, Iterations: 1, SaveAs: "-"})
	var st JobStatus
	json.Unmarshal(body, &st)
	done := waitJob(t, base1, st.ID, 30*time.Second)
	if done.State != JobDone {
		t.Fatalf("job: %s (%s)", done.State, done.Error)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(filepath.Join(dir, historyEventsFile)); err != nil || fi.Size() == 0 {
		t.Fatalf("events.jsonl missing or empty: %v", err)
	}

	s2 := testServer(t, Config{HistoryDir: dir})
	base2 := "http://" + s2.Addr()
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	getJSON(t, base2+"/api/v1/jobs", &list)
	found := false
	for _, j := range list.Jobs {
		if j.ID == st.ID {
			found = true
			if !j.Restored || j.State != JobDone {
				t.Fatalf("replayed job not marked restored/done: %+v", j)
			}
		}
	}
	if !found {
		t.Fatalf("job %s missing after replay: %+v", st.ID, list.Jobs)
	}

	// New submissions must not collide with replayed IDs.
	_, body2 := postJSON(t, base2+"/api/v1/jobs", JobRequest{Model: "lr", Scale: 200000, Iterations: 1, SaveAs: "-"})
	var st2 JobStatus
	json.Unmarshal(body2, &st2)
	if st2.ID == st.ID || st2.ID == "" {
		t.Fatalf("restored server reissued job ID %q", st2.ID)
	}
	waitJob(t, base2, st2.ID, 30*time.Second)
}

// TestOpsEndpoints: /healthz, /buildinfo, and the live debug plane
// must answer with real state on the serving mux.
func TestOpsEndpoints(t *testing.T) {
	s := testServer(t, Config{})
	base := "http://" + s.Addr()

	var hz struct {
		Status string `json:"status"`
	}
	if code := getJSON(t, base+"/healthz", &hz); code != http.StatusOK || hz.Status != "ok" {
		t.Fatalf("/healthz: code %d status %q", code, hz.Status)
	}
	var bi struct {
		GoVersion string `json:"go_version"`
	}
	if code := getJSON(t, base+"/buildinfo", &bi); code != http.StatusOK || bi.GoVersion == "" {
		t.Fatalf("/buildinfo: code %d go_version %q", code, bi.GoVersion)
	}

	var sched struct {
		TotalSlots int `json:"total_slots"`
	}
	if code := getJSON(t, base+"/debug/sparker/sched", &sched); code != http.StatusOK {
		t.Fatalf("/debug/sparker/sched: code %d", code)
	}
	if want := s.ctx.TotalCores(); sched.TotalSlots != want {
		t.Fatalf("sched snapshot reports %d slots, cluster has %d", sched.TotalSlots, want)
	}

	var topo struct {
		Executors []struct {
			Exec int    `json:"exec"`
			Host string `json:"host"`
		} `json:"executors"`
	}
	if code := getJSON(t, base+"/debug/sparker/topology", &topo); code != http.StatusOK {
		t.Fatalf("/debug/sparker/topology: code %d", code)
	}
	if len(topo.Executors) != 2 {
		t.Fatalf("topology reports %d executors, want 2", len(topo.Executors))
	}

	resp, err := http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline: code %d", resp.StatusCode)
	}
}
