package sched

import "testing"

func TestRoundRobinPlacement(t *testing.T) {
	p := RoundRobin()
	v := StageView{Tasks: 10, NumExecutors: 3}
	for task := 0; task < 10; task++ {
		if got, want := p.Place(v, task), task%3; got != want {
			t.Fatalf("task %d placed on %d, want %d", task, got, want)
		}
	}
	if p.Name() != "round-robin" {
		t.Fatalf("name %q", p.Name())
	}
}

func TestFixedPlacement(t *testing.T) {
	p := Fixed([]int{2, 0, 1})
	v := StageView{Tasks: 3, NumExecutors: 3}
	for task, want := range []int{2, 0, 1} {
		if got := p.Place(v, task); got != want {
			t.Fatalf("task %d placed on %d, want %d", task, got, want)
		}
	}
	if p.Place(v, 3) != -1 || p.Place(v, -1) != -1 {
		t.Fatal("out-of-range task must place on -1")
	}
}

func TestTopologyAwarePlacement(t *testing.T) {
	// Rank order 2, 0, 1: task i must land on the executor holding rank i.
	p := NewTopologyAware([]int{2, 0, 1})
	v := StageView{Tasks: 6, NumExecutors: 3}
	want := []int{2, 0, 1, 2, 0, 1} // wraps mod ring size
	for task, w := range want {
		if got := p.Place(v, task); got != w {
			t.Fatalf("task %d placed on %d, want %d", task, got, w)
		}
	}
	if NewTopologyAware(nil).Place(v, 0) != -1 {
		t.Fatal("empty topology must place on -1")
	}
}

func TestTopologyAwareCopiesPermutation(t *testing.T) {
	perm := []int{1, 0}
	p := NewTopologyAware(perm)
	perm[0] = 0 // caller mutation must not skew the policy
	if got := p.Place(StageView{Tasks: 2, NumExecutors: 2}, 0); got != 1 {
		t.Fatalf("task 0 placed on %d after caller mutation, want 1", got)
	}
}

func TestCacheAwarePlacement(t *testing.T) {
	cached := map[int]int{1: 2}
	p := NewCacheAware(func(task int) (int, bool) {
		e, ok := cached[task]
		return e, ok
	}, nil)
	v := StageView{Tasks: 4, NumExecutors: 3}
	// Task 1 is cached on executor 2; everything else falls back to
	// round-robin.
	if got := p.Place(v, 1); got != 2 {
		t.Fatalf("cached task placed on %d, want 2", got)
	}
	for _, task := range []int{0, 2, 3} {
		if got, want := p.Place(v, task), task%3; got != want {
			t.Fatalf("uncached task %d placed on %d, want %d", task, got, want)
		}
	}
	// A locate hit outside the executor range must not escape the grid.
	cached[0] = 99
	if got := p.Place(v, 0); got != 0 {
		t.Fatalf("out-of-range locate hit placed on %d, want round-robin 0", got)
	}
}
