// Package sched is the driver's stage scheduler: an event-driven loop
// that owns per-executor core-slot accounting, a FIFO stage queue with
// pluggable placement policies, all-or-nothing (gang) admission for
// collective stages, and speculative re-execution of straggling tasks.
//
// The rdd driver used to block one stage at a time with task %
// NumExecutors placement hardcoded; sched turns stage submission into
// an asynchronous Submit(spec) *StageHandle API so independent stages
// overlap on disjoint slots, while a collective stage acquires every
// slot it needs atomically — a ring stage never starts with some
// members queued behind an unrelated job (the JAMPI gang-scheduling
// requirement).
package sched

import (
	"fmt"

	"sparker/internal/membership"
)

// StageView is the immutable stage geometry a PlacementPolicy sees.
type StageView struct {
	// Tasks is the stage's task count.
	Tasks int
	// NumExecutors is the cluster's slot-table size (dead slots
	// included) — the bound for executor indices.
	NumExecutors int
	// Alive is the ascending live executor set of the membership epoch
	// the stage was submitted under. Empty means "all slots live"
	// (fixed-membership callers predating elasticity).
	Alive []int
}

// isLive reports whether executor e may accept work under this view.
func (v StageView) isLive(e int) bool {
	if e < 0 || e >= v.NumExecutors {
		return false
	}
	if len(v.Alive) == 0 {
		return true
	}
	for _, a := range v.Alive {
		if a == e {
			return true
		}
	}
	return false
}

// OwnerOf resolves task t to its owning live executor through the
// shared membership.OwnerOf math — the single placement-resolution
// path. With every slot alive it equals t % NumExecutors.
func (v StageView) OwnerOf(task int) int {
	if len(v.Alive) == 0 {
		if v.NumExecutors <= 0 {
			return -1
		}
		return task % v.NumExecutors
	}
	return membership.OwnerOf(v.Alive, task)
}

// PlacementPolicy maps a task index to the executor that should run
// it. Place is consulted once per task at submit time (placement is a
// preference, not a lease: speculation may later duplicate a task
// elsewhere). Implementations must be pure — same inputs, same answer
// — so retries land where the first attempt did.
type PlacementPolicy interface {
	// Name identifies the policy in telemetry and errors.
	Name() string
	// Place returns the executor index for task t, in [0, NumExecutors).
	Place(view StageView, task int) int
}

// --- RoundRobin --------------------------------------------------------

type roundRobin struct{}

// RoundRobin is the default policy: task t runs on the live executor
// StageView.OwnerOf(t) picks — with full membership that is exactly
// t % NumExecutors, byte-compatible with the engine's historical
// hardcoded placement, so cached partitions keep their home executors;
// with dead slots it cycles over survivors.
func RoundRobin() PlacementPolicy { return roundRobin{} }

func (roundRobin) Name() string { return "round-robin" }

func (roundRobin) Place(v StageView, task int) int {
	return v.OwnerOf(task)
}

// --- Fixed -------------------------------------------------------------

type fixed struct{ placement []int }

// Fixed pins task t to placement[t] — the SpawnRDD static-scheduling
// path (JobSpec.Placement). Validation of bounds happens at submit.
func Fixed(placement []int) PlacementPolicy {
	return fixed{placement: placement}
}

func (fixed) Name() string { return "fixed" }

func (f fixed) Place(_ StageView, task int) int {
	if task < 0 || task >= len(f.placement) {
		return -1
	}
	return f.placement[task]
}

// --- TopologyAware -----------------------------------------------------

type topologyAware struct{ execOfRank []int }

// NewTopologyAware aligns placement with the comm layer's ring rank
// order: task i lands on the executor holding ring rank i (mod the
// ring size), so a collective stage's task index and its endpoint rank
// coincide and every segment starts on the rank that owns it.
// execOfRank maps rank -> executor index (comm.Topology.ExecOfRank).
func NewTopologyAware(execOfRank []int) PlacementPolicy {
	cp := make([]int, len(execOfRank))
	copy(cp, execOfRank)
	return topologyAware{execOfRank: cp}
}

func (topologyAware) Name() string { return "topology-aware" }

func (p topologyAware) Place(_ StageView, task int) int {
	if len(p.execOfRank) == 0 {
		return -1
	}
	return p.execOfRank[task%len(p.execOfRank)]
}

// --- CacheAware --------------------------------------------------------

type cacheAware struct {
	locate   func(task int) (int, bool)
	fallback PlacementPolicy
}

// NewCacheAware is sticky placement for cached partitions: locate
// reports where task t's partition is already materialized; when it
// does, the task goes there, otherwise the fallback policy decides.
// This unifies RDD.PlacementOf and the JobSpec default through one
// policy — under an empty cache it is byte-compatible with fallback.
func NewCacheAware(locate func(task int) (int, bool), fallback PlacementPolicy) PlacementPolicy {
	if fallback == nil {
		fallback = RoundRobin()
	}
	return cacheAware{locate: locate, fallback: fallback}
}

func (p cacheAware) Name() string {
	return fmt.Sprintf("cache-aware(%s)", p.fallback.Name())
}

func (p cacheAware) Place(v StageView, task int) int {
	if p.locate != nil {
		// A cached copy on a dead executor is unreachable; fall through to
		// the fallback policy rather than pinning the task to a corpse.
		if e, ok := p.locate(task); ok && v.isLive(e) {
			return e
		}
	}
	return p.fallback.Place(v, task)
}
