package sched

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"sparker/internal/eventlog"
	"sparker/internal/metrics"
	"sparker/internal/obsv"
	"sparker/internal/trace"
)

// Config describes the cluster geometry and knobs of a Scheduler.
type Config struct {
	// NumExecutors and CoresPerExecutor define the slot grid: executor e
	// owns CoresPerExecutor concurrent task slots.
	NumExecutors     int
	CoresPerExecutor int
	// DefaultPolicy places stages that set no policy of their own
	// (default RoundRobin).
	DefaultPolicy PlacementPolicy
	// Speculation enables straggler mitigation: once a stage has enough
	// completed tasks to estimate its running duration quantile, any
	// in-flight task exceeding SpeculationMultiplier × that quantile gets
	// one duplicate attempt on a different executor; the first result
	// wins and the loser is dropped by attempt-number dedup. Stages with
	// NoSpeculation or Gang set are never speculated.
	Speculation bool
	// SpeculationMultiplier is the straggler threshold as a multiple of
	// the stage's running duration quantile (default 1.5).
	SpeculationMultiplier float64
	// SpeculationQuantile is the reference quantile (default 0.5 — the
	// running median, Spark's speculation.quantile analogue).
	SpeculationQuantile float64
	// SpeculationInterval is the straggler check period (default 10ms).
	SpeculationInterval time.Duration
	// SpeculationMinRuntime floors the threshold so sub-millisecond
	// stages never speculate on noise (default 20ms).
	SpeculationMinRuntime time.Duration
	// Metrics receives the scheduler's instruments (queue-depth gauge,
	// task/stage/wait histograms). Nil disables them.
	Metrics *metrics.Registry
	// Recorder receives the speculation and drop counters; EventLog the
	// matching marker events. Either may be nil.
	Recorder *metrics.Recorder
	EventLog *eventlog.Logger
	// Tracer emits one "sched.wait" span per stage that spends time
	// queued behind busy slots. Nil disables.
	Tracer *trace.Tracer
	// Obsv, when non-nil, receives the scheduler's markers in the
	// flight recorder (speculative launches are an anomaly trigger).
	Obsv *obsv.Observer
}

func (c *Config) fill() error {
	if c.NumExecutors < 1 {
		return fmt.Errorf("sched: NumExecutors must be >= 1, got %d", c.NumExecutors)
	}
	if c.CoresPerExecutor < 1 {
		return fmt.Errorf("sched: CoresPerExecutor must be >= 1, got %d", c.CoresPerExecutor)
	}
	if c.DefaultPolicy == nil {
		c.DefaultPolicy = RoundRobin()
	}
	if c.SpeculationMultiplier <= 1 {
		c.SpeculationMultiplier = 1.5
	}
	if c.SpeculationQuantile <= 0 || c.SpeculationQuantile > 1 {
		c.SpeculationQuantile = 0.5
	}
	if c.SpeculationInterval <= 0 {
		c.SpeculationInterval = 10 * time.Millisecond
	}
	if c.SpeculationMinRuntime <= 0 {
		c.SpeculationMinRuntime = 20 * time.Millisecond
	}
	return nil
}

// StageSpec describes one stage submitted to the scheduler.
type StageSpec struct {
	// JobID tags every launch and result of this stage; the caller owns
	// uniqueness (the rdd driver allocates them).
	JobID int64
	// Tenant names the fair-share account this stage's slot-time is
	// charged to. Empty is the default tenant; see tenant.go for the
	// queueing model. Single-tenant workloads keep the exact FIFO
	// dispatch order of a tenant-less scheduler.
	Tenant string
	// Tasks is the stage's task count.
	Tasks int
	// Policy places the stage's tasks (nil: the scheduler default).
	Policy PlacementPolicy
	// Gang requests all-or-nothing admission: the stage launches only
	// when every task's slot is free simultaneously, so a collective
	// never starts with members queued behind an unrelated job. Gang
	// stages require MaxAttempts <= 1 and are never speculated.
	Gang bool
	// GangKey serializes gang stages: at most one running gang per
	// non-empty key. Collective stages share one comm endpoint per
	// executor, where concurrent rings are mutually destructive
	// (epoch-stale frames), so they all use the same key.
	GangKey string
	// MaxAttempts bounds attempts per task (including the first).
	// Non-positive means 1.
	MaxAttempts int
	// WaitAll delays the stage's error delivery until every in-flight
	// attempt has reported, so no task of a failed stage is still
	// driving shared state when the caller starts recovery.
	WaitAll bool
	// NoSpeculation pins every attempt of a task to one executor. The
	// rdd driver sets it for executor-targeted stages (explicit
	// placement, cleanup broadcasts) where a duplicate elsewhere would
	// act on the wrong node.
	NoSpeculation bool
	// TraceParent parents the stage's sched.wait span.
	TraceParent trace.SpanContext
	// Launch submits one task attempt to the given executor. It runs on
	// a per-executor sender goroutine — never on the scheduler loop — so
	// a slow transport cannot stall scheduling; a returned error becomes
	// a normal task failure for that attempt.
	Launch func(task, attempt, executor int) error
}

// ErrSchedulerClosed is returned for stages still queued or undelivered
// when the scheduler shuts down, and by Submit afterwards.
var ErrSchedulerClosed = errors.New("sched: scheduler closed")

// StageHandle is the caller's future for a submitted stage.
type StageHandle struct {
	done  chan struct{}
	out   [][]byte
	err   error
	execs []int
}

// Wait blocks until the stage completes and returns the per-task
// payloads in task order, or the stage's terminal error.
func (h *StageHandle) Wait() ([][]byte, error) {
	<-h.done
	return h.out, h.err
}

// Executors reports, after Wait, which executor produced each task's
// winning result — the placement record downstream block fetches need
// once speculation or cache-aware policies can move tasks off their
// round-robin homes. Entries for unfinished tasks are -1.
func (h *StageHandle) Executors() []int {
	<-h.done
	return h.execs
}

// Done returns a channel closed when the stage has completed.
func (h *StageHandle) Done() <-chan struct{} { return h.done }

// --- internal state ----------------------------------------------------

// pendItem is one queued task attempt.
type pendItem struct {
	task, att int
	exec      int // current target executor
	since     time.Time
}

// akey identifies one task attempt of one job.
type akey struct {
	job       int64
	task, att int
}

// runInfo is one launched, unreported attempt.
type runInfo struct {
	st    *stage
	exec  int
	start time.Time
}

// stage is the loop-owned state of one submitted stage.
type stage struct {
	spec   StageSpec
	h      *StageHandle
	view   StageView
	place  []int        // resolved base placement, task -> executor
	tenant *tenantState // resolved on the loop at admission
	seq    int64        // loop-assigned submission order

	pending    []pendItem
	out        [][]byte
	done       []bool
	failures   []int // failed attempts so far, per task
	nextAtt    []int // next attempt number to assign, per task
	speculated []bool
	execOf     []int

	remaining int // tasks not yet succeeded
	completed int // tasks succeeded (for the speculation quorum)
	inflight  int // launched, unreported attempts
	finalErr  error
	doomed    bool // stop launching; finalErr set
	delivered bool

	durations *metrics.Histogram // per-stage attempt durations (ns)
	submitted time.Time
	waitSpan  *trace.ActiveSpan
}

// launchReq is handed to a per-executor sender goroutine.
type launchReq struct {
	fn        func(task, attempt, executor int) error
	job       int64
	task, att int
	exec      int
}

type resultEv struct {
	job       int64
	task, att int
	payload   []byte
	err       error
}

// Scheduler is the event-driven stage scheduler. One loop goroutine
// owns every piece of mutable state; Submit and Deliver communicate
// with it over channels only.
type Scheduler struct {
	conf    Config
	submits chan *stage
	results chan resultEv
	ops     chan func() // tenant config/stats closures, run on the loop
	quit    chan struct{}
	done    chan struct{}

	launchers []chan launchReq
	launchWG  sync.WaitGroup

	closeOnce sync.Once
	// closeMu orders Submit against Close: a submitter holding the read
	// side observes closed==false only while the loop is still draining
	// s.submits, so an accepted stage is never stranded in the buffer of
	// a dead scheduler.
	closeMu sync.RWMutex
	closed  bool

	// Loop-owned (no locks: touched only by run()).
	free     []int  // free slots per executor
	dead     []bool // slots out of service (evicted / not yet joined)
	live     []int  // ascending live executor IDs (derived from dead)
	queue    []*stage
	stages   map[int64]*stage
	inflight map[akey]runInfo
	tenants  map[string]*tenantState
	seqCtr   int64

	// liveView is the off-loop snapshot of the slot table; Submit reads
	// it to resolve placement without touching loop state.
	liveView atomic.Pointer[liveSnap]

	gaugeQueue *metrics.Gauge
	histTask   *metrics.Histogram
	histStage  *metrics.Histogram
	histWait   *metrics.Histogram
}

// New starts a scheduler for the given cluster geometry.
func New(conf Config) (*Scheduler, error) {
	if err := conf.fill(); err != nil {
		return nil, err
	}
	totalSlots := conf.NumExecutors * conf.CoresPerExecutor
	s := &Scheduler{
		conf: conf,
		// Every launched attempt holds a slot until its result is
		// consumed, so at most totalSlots results are outstanding; the
		// extra headroom absorbs transport-duplicated frames and results
		// of already-retired stages without ever blocking a reader.
		results:    make(chan resultEv, totalSlots*2+16),
		submits:    make(chan *stage, 16),
		ops:        make(chan func(), 16),
		quit:       make(chan struct{}),
		done:       make(chan struct{}),
		free:       make([]int, conf.NumExecutors),
		stages:     map[int64]*stage{},
		inflight:   map[akey]runInfo{},
		tenants:    map[string]*tenantState{},
		gaugeQueue: conf.Metrics.Gauge(metrics.GaugeSchedQueue),
		histTask:   conf.Metrics.Histogram(metrics.HistSchedTaskNS),
		histStage:  conf.Metrics.Histogram(metrics.HistSchedStageNS),
		histWait:   conf.Metrics.Histogram(metrics.HistSchedWaitNS),
	}
	for e := range s.free {
		s.free[e] = conf.CoresPerExecutor
	}
	s.dead = make([]bool, conf.NumExecutors)
	s.publishLive()
	s.launchers = make([]chan launchReq, conf.NumExecutors)
	for e := range s.launchers {
		// A launch is only issued while holding one of the executor's
		// slots, so CoresPerExecutor outstanding requests is the cap and
		// the loop's send below never blocks.
		ch := make(chan launchReq, conf.CoresPerExecutor)
		s.launchers[e] = ch
		s.launchWG.Add(1)
		go s.launcher(ch)
	}
	go s.run()
	return s, nil
}

// launcher drains one executor's launch requests off the loop thread.
// A failed launch is fed back as a synthetic task failure, which also
// honors WaitAll: the stage drains like any other failed attempt.
func (s *Scheduler) launcher(ch chan launchReq) {
	defer s.launchWG.Done()
	for req := range ch {
		err := req.fn(req.task, req.att, req.exec)
		if err == nil {
			continue
		}
		ev := resultEv{job: req.job, task: req.task, att: req.att,
			err: fmt.Errorf("sched: launching task %d attempt %d on executor %d: %w",
				req.task, req.att, req.exec, err)}
		select {
		case s.results <- ev:
		case <-s.quit:
		}
	}
}

// Submit validates and enqueues a stage, returning its handle. The
// stage begins launching as soon as slots (for Gang: all slots) allow.
func (s *Scheduler) Submit(spec StageSpec) (*StageHandle, error) {
	if spec.Tasks <= 0 {
		return nil, fmt.Errorf("sched: StageSpec.Tasks must be positive, got %d", spec.Tasks)
	}
	if spec.Launch == nil {
		return nil, fmt.Errorf("sched: StageSpec.Launch is nil")
	}
	if spec.Gang && spec.MaxAttempts > 1 {
		return nil, fmt.Errorf("sched: gang stages require MaxAttempts <= 1, got %d", spec.MaxAttempts)
	}
	if spec.MaxAttempts <= 0 {
		spec.MaxAttempts = 1
	}
	pol := spec.Policy
	if pol == nil {
		pol = s.conf.DefaultPolicy
	}
	snap := s.liveView.Load()
	view := StageView{Tasks: spec.Tasks, NumExecutors: snap.slots, Alive: snap.alive}
	place := make([]int, spec.Tasks)
	need := make([]int, snap.slots)
	for t := range place {
		e := pol.Place(view, t)
		if e < 0 || e >= snap.slots {
			return nil, fmt.Errorf("sched: policy %s placed task %d on invalid executor %d",
				pol.Name(), t, e)
		}
		if !view.isLive(e) {
			// The caller resolved placement against a stale membership
			// view; surface it as a lost-executor failure so collective
			// callers re-plan against the current epoch.
			return nil, fmt.Errorf("sched: policy %s placed task %d on dead executor %d: %w",
				pol.Name(), t, e, ErrExecutorLost)
		}
		place[t] = e
		need[e]++
	}
	if spec.Gang {
		for e, n := range need {
			if n > s.conf.CoresPerExecutor {
				return nil, fmt.Errorf("sched: gang stage needs %d slots on executor %d, only %d cores",
					n, e, s.conf.CoresPerExecutor)
			}
		}
	}

	now := time.Now()
	st := &stage{
		spec:       spec,
		h:          &StageHandle{done: make(chan struct{})},
		view:       view,
		place:      place,
		out:        make([][]byte, spec.Tasks),
		done:       make([]bool, spec.Tasks),
		failures:   make([]int, spec.Tasks),
		nextAtt:    make([]int, spec.Tasks),
		speculated: make([]bool, spec.Tasks),
		execOf:     make([]int, spec.Tasks),
		remaining:  spec.Tasks,
		durations:  metrics.NewHistogram(),
		submitted:  now,
	}
	for t := 0; t < spec.Tasks; t++ {
		st.execOf[t] = -1
		st.nextAtt[t] = 1
		st.pending = append(st.pending, pendItem{task: t, att: 0, exec: place[t], since: now})
	}
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return nil, ErrSchedulerClosed
	}
	// With the read lock held and closed unset, quit cannot have been
	// closed yet, so the loop is alive and this send always drains.
	s.submits <- st
	return st.h, nil
}

// Deliver routes one task result into the scheduler. It never blocks:
// a false return means the event channel was full and the result was
// dropped (the caller counts these — with the channel sized for every
// slot plus duplicates, a drop indicates a protocol bug, not load).
func (s *Scheduler) Deliver(jobID int64, task, attempt int, payload []byte, err error) bool {
	select {
	case s.results <- resultEv{job: jobID, task: task, att: attempt, payload: payload, err: err}:
		return true
	case <-s.done:
		return false
	default:
		return false
	}
}

// Close shuts the scheduler down: queued and undelivered stages fail
// with ErrSchedulerClosed. Idempotent.
func (s *Scheduler) Close() {
	s.closeOnce.Do(func() {
		s.closeMu.Lock()
		s.closed = true
		s.closeMu.Unlock()
		close(s.quit)
	})
	<-s.done
}

// marker bumps a counter and emits a history-log marker, mirroring the
// rdd context's RecordMarker (both sinks optional).
func (s *Scheduler) marker(name, detail string) {
	if s.conf.Recorder != nil {
		s.conf.Recorder.Inc(name)
	}
	s.conf.EventLog.Marker(name, detail)
	// Safe from the loop: a triggered dump is queued to the observer's
	// own goroutine, never performed inline.
	s.conf.Obsv.Marker(name, detail)
}

// run is the scheduler loop: the only goroutine touching stage state.
func (s *Scheduler) run() {
	defer close(s.done)
	defer func() {
		for _, ch := range s.launchers {
			close(ch)
		}
		s.launchWG.Wait()
		// Fail whatever never completed: known stages plus submissions
		// still buffered in the channel. (Submit and Close must not race;
		// the drain covers stages accepted just before shutdown.)
		for {
			select {
			case st := <-s.submits:
				s.stages[st.spec.JobID] = st
			default:
				for _, st := range s.stages {
					s.deliver(st, nil, ErrSchedulerClosed)
				}
				return
			}
		}
	}()
	var tick <-chan time.Time
	if s.conf.Speculation {
		t := time.NewTicker(s.conf.SpeculationInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-s.quit:
			return
		case st := <-s.submits:
			s.seqCtr++
			st.seq = s.seqCtr
			st.tenant = s.tenantFor(st.spec.Tenant)
			s.stages[st.spec.JobID] = st
			s.queue = append(s.queue, st)
			// The submitter resolved placement against a liveView snapshot
			// that a racing RemoveExecutor may have invalidated before this
			// stage reached the loop; reconcile so no queued item targets a
			// dead slot (it would never dispatch).
			s.reconcileStage(st)
			s.maybeRetire(st)
			s.trySchedule()
		case ev := <-s.results:
			s.handleResult(ev)
			s.trySchedule()
		case f := <-s.ops:
			f()
			s.trySchedule()
		case <-tick:
			s.speculate()
		}
	}
}

// queueDepth is the total pending task count across queued stages.
func (s *Scheduler) queueDepth() int {
	n := 0
	for _, st := range s.queue {
		n += len(st.pending)
	}
	return n
}

// trySchedule dispatches pending attempts onto free slots. Queued
// stages are grouped per tenant (FIFO within each); the tenant with
// the lowest virtual time launches one attempt at a time, so
// contended slots split proportionally to tenant weights while a lone
// tenant sees the classic FIFO-greedy walk. A gang stage that cannot
// fully launch reserves the slots it could take, so younger stages
// cannot starve it indefinitely; non-gang stages are work-conserving
// on whatever the reservations leave over.
func (s *Scheduler) trySchedule() {
	avail := make([]int, len(s.free))
	copy(avail, s.free)
	tqs := s.groupByTenant()
	if len(tqs) > 0 {
		s.catchUpIdle(tqs)
		handled := map[*stage]bool{}
		for {
			var best *tenantQueue
			for _, q := range tqs {
				if q.blocked {
					continue
				}
				if best == nil || q.before(best) {
					best = q
				}
			}
			if best == nil {
				break
			}
			// Launching only consumes slots, so a tenant that could not
			// dispatch stays blocked for the rest of this pass.
			if !s.dispatchOne(best, avail, handled) {
				best.blocked = true
			}
		}
	}
	// Close the wait span of any stage that just fully dispatched, open
	// one for stages this pass left queued.
	for _, st := range s.queue {
		if len(st.pending) == 0 && st.waitSpan != nil {
			st.waitSpan.End()
			st.waitSpan = nil
		}
	}
	s.compactQueue()
	s.gaugeQueue.Set(int64(s.queueDepth()))
	for _, st := range s.queue {
		s.noteWaiting(st)
	}
}

// tryGang launches a gang stage only when every pending task has a
// free slot simultaneously; otherwise it reserves what it could take.
func (s *Scheduler) tryGang(st *stage, avail []int) {
	if len(st.pending) == 0 {
		return
	}
	if st.spec.GangKey != "" {
		// At most one running gang per key: a sibling with in-flight
		// work blocks us (shared comm endpoints, where concurrent rings
		// corrupt each other), but takes no slot reservation — we wait on
		// its completion, not on slots. Gang launch is atomic, so a
		// sibling is either fully in flight or not launched at all.
		for _, other := range s.stages {
			if other != st && other.spec.Gang && other.spec.GangKey == st.spec.GangKey && other.inflight > 0 {
				return
			}
		}
	}
	need := make(map[int]int, len(s.free))
	for _, p := range st.pending {
		need[p.exec]++
	}
	for e, n := range need {
		if n > avail[e] {
			// Partial fit: reserve our share so later stages in the walk
			// cannot take it, then wait for the rest.
			for re, rn := range need {
				if rn < avail[re] {
					avail[re] -= rn
				} else {
					avail[re] = 0
				}
			}
			return
		}
	}
	for _, p := range st.pending {
		avail[p.exec]--
		s.launch(st, p)
	}
	st.pending = st.pending[:0]
}

// launch takes a slot and hands the attempt to the executor's sender.
func (s *Scheduler) launch(st *stage, p pendItem) {
	s.free[p.exec]--
	now := time.Now()
	s.inflight[akey{job: st.spec.JobID, task: p.task, att: p.att}] =
		runInfo{st: st, exec: p.exec, start: now}
	st.inflight++
	if st.tenant != nil {
		st.tenant.inUse++
	}
	s.histWait.Observe(now.Sub(p.since).Nanoseconds())
	s.launchers[p.exec] <- launchReq{
		fn: st.spec.Launch, job: st.spec.JobID, task: p.task, att: p.att, exec: p.exec,
	}
}

// noteWaiting opens the stage's sched.wait span the first time a
// scheduling pass leaves it with queued work.
func (s *Scheduler) noteWaiting(st *stage) {
	if s.conf.Tracer == nil || st.waitSpan != nil || len(st.pending) == 0 {
		return
	}
	sp := s.conf.Tracer.StartSpan("sched.wait", st.spec.TraceParent)
	sp.SetInt("job", st.spec.JobID)
	sp.SetInt("queued", int64(len(st.pending)))
	if st.spec.Gang {
		sp.SetAttr("gang", "true")
	}
	st.waitSpan = sp
}

// compactQueue drops fully-dispatched or finished stages from the
// FIFO (they re-enter via resubmission items only).
func (s *Scheduler) compactQueue() {
	kept := s.queue[:0]
	for _, st := range s.queue {
		if len(st.pending) > 0 {
			kept = append(kept, st)
		}
	}
	s.queue = kept
}

// enqueue re-adds a stage with fresh pending work to the FIFO.
func (s *Scheduler) enqueue(st *stage) {
	for _, q := range s.queue {
		if q == st {
			return
		}
	}
	s.queue = append(s.queue, st)
}

// handleResult processes one attempt outcome: frees the slot, applies
// dedup, and advances the stage toward delivery or retry.
func (s *Scheduler) handleResult(ev resultEv) {
	key := akey{job: ev.job, task: ev.task, att: ev.att}
	ri, ok := s.inflight[key]
	if !ok {
		// Transport-duplicated frame or a result for a stage the
		// scheduler never launched: nothing holds a slot for it.
		return
	}
	delete(s.inflight, key)
	s.free[ri.exec]++
	st := ri.st
	st.inflight--
	dur := time.Since(ri.start)
	if st.tenant != nil {
		// The attempt held a slot for dur regardless of outcome; charge
		// the tenant's fair-share account either way.
		st.tenant.inUse--
		st.tenant.charge(dur)
	}

	defer s.maybeRetire(st)

	if ev.task < 0 || ev.task >= st.spec.Tasks || st.done[ev.task] {
		// Late loser of a speculative race (or a bogus index): the slot
		// release above is all it was owed.
		if ev.err == nil && ev.task >= 0 && ev.task < st.spec.Tasks {
			s.marker(metrics.CounterSpecLost,
				fmt.Sprintf("job %d task %d attempt %d finished after winner", ev.job, ev.task, ev.att))
		}
		return
	}
	if ev.err == nil {
		st.out[ev.task] = ev.payload
		st.done[ev.task] = true
		st.execOf[ev.task] = ri.exec
		st.remaining--
		st.completed++
		st.durations.Observe(dur.Nanoseconds())
		s.histTask.Observe(dur.Nanoseconds())
		if ev.att > 0 && st.speculated[ev.task] {
			// Any non-zero attempt of a speculated task that comes home
			// first is either the duplicate winning or the original losing
			// a retry race; only the duplicate path marks speculated with
			// att assigned past the failure budget, so this is the win.
			s.marker(metrics.CounterSpecWon,
				fmt.Sprintf("job %d task %d: speculative attempt %d on executor %d won in %v",
					ev.job, ev.task, ev.att, ri.exec, dur))
		}
		if st.remaining == 0 && !st.delivered {
			s.deliver(st, st.out, nil)
		}
		return
	}

	// Failure path.
	st.failures[ev.task]++
	if st.failures[ev.task] >= st.spec.MaxAttempts {
		if st.finalErr == nil {
			st.finalErr = fmt.Errorf("task %d failed %d times, last: %w",
				ev.task, st.failures[ev.task], ev.err)
		}
		st.doomed = true
		st.clearPending()
		if !st.spec.WaitAll && !st.delivered {
			s.deliver(st, nil, st.finalErr)
		}
		return
	}
	if st.doomed {
		return // stage already failing; no point resubmitting
	}
	// Retry on the task's base placement (retries must observe the same
	// executor-local state the first attempt did) — unless membership
	// change killed that executor, in which case the retry follows the
	// live owner, or dooms pinned work.
	exec := s.retryExec(st, ev.task)
	if exec < 0 {
		st.doomed = true
		st.finalErr = fmt.Errorf("task %d retry has no live executor: %w", ev.task, ErrExecutorLost)
		st.clearPending()
		if !st.spec.WaitAll && !st.delivered {
			s.deliver(st, nil, st.finalErr)
		}
		return
	}
	att := st.nextAtt[ev.task]
	st.nextAtt[ev.task]++
	st.pending = append(st.pending, pendItem{
		task: ev.task, att: att, exec: exec, since: time.Now(),
	})
	s.enqueue(st)
}

// deliver resolves the stage's handle exactly once.
func (s *Scheduler) deliver(st *stage, out [][]byte, err error) {
	if st.delivered {
		return
	}
	st.delivered = true
	if st.waitSpan != nil {
		st.waitSpan.EndErr(err)
		st.waitSpan = nil
	}
	s.histStage.Observe(time.Since(st.submitted).Nanoseconds())
	st.h.out = out
	st.h.err = err
	st.h.execs = st.execOf
	close(st.h.done)
}

// maybeRetire finishes a stage's bookkeeping: deliver a WaitAll error
// once drained, and forget the stage when nothing is left in flight.
func (s *Scheduler) maybeRetire(st *stage) {
	if st.doomed && st.inflight == 0 && !st.delivered {
		s.deliver(st, nil, st.finalErr)
	}
	if st.delivered && st.inflight == 0 && len(st.pending) == 0 {
		delete(s.stages, st.spec.JobID)
	}
}

// clearPending drops queued work of a doomed stage.
func (st *stage) clearPending() { st.pending = st.pending[:0] }

// speculate is the straggler scan: for every eligible stage with a
// usable duration estimate, in-flight original attempts running past
// the threshold get one duplicate on a different executor, and queued
// tasks stuck behind a busy executor migrate to a free one.
func (s *Scheduler) speculate() {
	launched := false
	for key, ri := range s.inflight {
		st := ri.st
		if !s.eligible(st) {
			continue
		}
		thr, ok := s.threshold(st)
		if !ok {
			continue
		}
		t := key.task
		if st.done[t] || st.speculated[t] || time.Since(ri.start) < thr {
			continue
		}
		e := s.freeExecutorNot(ri.exec)
		if e < 0 {
			continue
		}
		if st.tenant != nil && st.tenant.capLeft() == 0 {
			continue // a duplicate must not burst the tenant's slot cap
		}
		st.speculated[t] = true
		// Attempt IDs continue past the retry budget so a duplicate can
		// never collide with a future retry's number.
		att := st.nextAtt[t]
		st.nextAtt[t]++
		s.marker(metrics.CounterSpecLaunched,
			fmt.Sprintf("job %d task %d attempt %d running %v > %v on executor %d; duplicate attempt %d on executor %d",
				st.spec.JobID, t, key.att, time.Since(ri.start).Round(time.Millisecond), thr.Round(time.Millisecond), ri.exec, att, e))
		s.launch(st, pendItem{task: t, att: att, exec: e, since: time.Now()})
		launched = true
	}
	// Pending migration: a queued task of an eligible stage whose target
	// executor stayed busy past the threshold is re-placed onto an
	// executor with free slots, then dispatched by the normal pass.
	migrated := false
	for _, st := range s.queue {
		if !s.eligible(st) {
			continue
		}
		thr, ok := s.threshold(st)
		if !ok {
			continue
		}
		for i := range st.pending {
			p := &st.pending[i]
			if s.free[p.exec] > 0 || time.Since(p.since) < thr {
				continue
			}
			if e := s.freeExecutorNot(p.exec); e >= 0 {
				s.marker(metrics.CounterSpecMigrated,
					fmt.Sprintf("job %d task %d queued %v behind executor %d; migrated to %d",
						st.spec.JobID, p.task, time.Since(p.since).Round(time.Millisecond), p.exec, e))
				p.exec = e
				migrated = true
			}
		}
	}
	if launched || migrated {
		s.trySchedule()
	}
}

// eligible reports whether a stage may speculate at all.
func (s *Scheduler) eligible(st *stage) bool {
	return !st.spec.NoSpeculation && !st.spec.Gang && !st.doomed && st.remaining > 0
}

// threshold computes the stage's straggler cutoff from its running
// duration quantile. It needs a completion quorum — enough finished
// tasks that the quantile means something.
func (s *Scheduler) threshold(st *stage) (time.Duration, bool) {
	quorum := int(math.Ceil(s.conf.SpeculationQuantile * float64(st.spec.Tasks)))
	if quorum < 1 {
		quorum = 1
	}
	if st.completed < quorum {
		return 0, false
	}
	med := st.durations.Quantile(s.conf.SpeculationQuantile)
	thr := time.Duration(s.conf.SpeculationMultiplier * float64(med))
	if thr < s.conf.SpeculationMinRuntime {
		thr = s.conf.SpeculationMinRuntime
	}
	return thr, true
}

// freeExecutorNot returns a live executor with a free slot other than
// not, preferring the most idle one; -1 when none qualifies.
func (s *Scheduler) freeExecutorNot(not int) int {
	best, bestFree := -1, 0
	for e, f := range s.free {
		if e != not && !s.dead[e] && f > bestFree {
			best, bestFree = e, f
		}
	}
	return best
}
