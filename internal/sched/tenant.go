package sched

import (
	"math"
	"time"
)

// Tenancy: weighted fair-share queueing across independent job sources.
//
// Every stage carries a tenant name (empty = the default tenant, which
// is what every pre-existing caller gets). The scheduler keeps one
// tenantState per name and, when slots are contended, serves the tenant
// with the lowest virtual time — service received divided by weight —
// one task attempt at a time. The properties that fall out:
//
//   - Proportional shares: under saturation a tenant with weight 2w
//     accumulates ~2× the slot-nanoseconds of a tenant with weight w.
//   - Work conservation: an idle tenant's share redistributes to the
//     backlogged ones (selection only considers tenants with queued
//     work; nothing is held back for absent tenants).
//   - Bounded starvation: a backlogged tenant's virtual time does not
//     advance while it is denied slots, so it becomes the minimum after
//     at most (total service rate)/(its weight share) of wall time and
//     must be served next.
//   - No history tax: a tenant returning from idle has its virtual time
//     caught up to the current minimum, so it cannot monopolize the
//     cluster to "repay" service it never asked for while idle.
//
// Within one tenant, stages keep strict FIFO-greedy order — with a
// single tenant the dispatch order is exactly the pre-tenancy
// scheduler's, gang reservation semantics included.

// defaultTaskEstNS seeds the per-tenant attempt duration estimate
// before any attempt of that tenant has completed.
const defaultTaskEstNS = float64(10 * time.Millisecond)

// TenantConfig sets a tenant's share of the cluster.
type TenantConfig struct {
	// Weight is the tenant's fair-share weight (default 1). Shares are
	// proportional: weight 2 gets twice the slot-time of weight 1 when
	// both are backlogged.
	Weight float64
	// MaxSlots caps the tenant's concurrently held core-slots across
	// the cluster; 0 means no cap. A gang stage larger than the
	// remaining cap waits without reserving slots.
	MaxSlots int
}

// TenantStats is a point-in-time snapshot of one tenant's accounting.
type TenantStats struct {
	Name       string
	Weight     float64
	MaxSlots   int
	InUse      int   // core-slots currently held by launched attempts
	Queued     int   // task attempts waiting in the stage queue
	ServiceNS  int64 // cumulative slot-nanoseconds consumed
	Completed  int64 // attempts reported (success or failure)
	MeanTaskNS int64 // EWMA attempt duration estimate
}

// tenantState is the loop-owned accounting of one tenant.
type tenantState struct {
	name     string
	weight   float64
	maxSlots int

	inUse     int     // launched, unreported attempts holding slots
	serviceNS float64 // total slot-time consumed
	meanNS    float64 // EWMA attempt duration
	completed int64
	// active records whether the tenant had queued or in-flight work at
	// the previous scheduling pass; a tenant re-arriving after idleness
	// has its virtual time caught up so it pays no history tax in
	// either direction.
	active bool
}

// estNS is the expected duration of one attempt, used to charge
// in-flight work provisionally so a tenant cannot grab the whole
// cluster between completions.
func (t *tenantState) estNS() float64 {
	if t.meanNS > 0 {
		return t.meanNS
	}
	return defaultTaskEstNS
}

// vtime is the tenant's virtual time: normalized service including a
// provisional charge for in-flight attempts.
func (t *tenantState) vtime() float64 {
	return (t.serviceNS + float64(t.inUse)*t.estNS()) / t.weight
}

// capLeft is the number of additional slots the tenant may take under
// its MaxSlots cap; -1 means unlimited.
func (t *tenantState) capLeft() int {
	if t.maxSlots <= 0 {
		return -1
	}
	c := t.maxSlots - t.inUse
	if c < 0 {
		c = 0
	}
	return c
}

// charge books one completed attempt's slot-time.
func (t *tenantState) charge(d time.Duration) {
	ns := float64(d.Nanoseconds())
	t.serviceNS += ns
	t.completed++
	if t.meanNS == 0 {
		t.meanNS = ns
	} else {
		t.meanNS = 0.8*t.meanNS + 0.2*ns
	}
}

// tenantFor returns (creating if needed) the loop-owned state for a
// tenant name. Loop-only.
func (s *Scheduler) tenantFor(name string) *tenantState {
	t := s.tenants[name]
	if t == nil {
		t = &tenantState{name: name, weight: 1}
		s.tenants[name] = t
	}
	return t
}

// ConfigureTenant sets a tenant's weight and slot cap. It may be
// called before or after the tenant's first stage, from any goroutine;
// the change applies to the next scheduling pass. Returns
// ErrSchedulerClosed after Close.
func (s *Scheduler) ConfigureTenant(name string, cfg TenantConfig) error {
	return s.onLoop(func() {
		t := s.tenantFor(name)
		if cfg.Weight > 0 {
			t.weight = cfg.Weight
		} else {
			t.weight = 1
		}
		t.maxSlots = cfg.MaxSlots
	})
}

// TenantStats snapshots every known tenant's accounting. Nil after
// Close.
func (s *Scheduler) TenantStats() map[string]TenantStats {
	var out map[string]TenantStats
	err := s.onLoop(func() {
		out = make(map[string]TenantStats, len(s.tenants))
		queued := map[*tenantState]int{}
		for _, st := range s.queue {
			queued[st.tenant] += len(st.pending)
		}
		for name, t := range s.tenants {
			out[name] = TenantStats{
				Name:       name,
				Weight:     t.weight,
				MaxSlots:   t.maxSlots,
				InUse:      t.inUse,
				Queued:     queued[t],
				ServiceNS:  int64(t.serviceNS),
				Completed:  t.completed,
				MeanTaskNS: int64(t.meanNS),
			}
		}
	})
	if err != nil {
		return nil
	}
	return out
}

// onLoop runs f on the scheduler loop (where all tenant and stage
// state lives) and waits for it to finish.
func (s *Scheduler) onLoop(f func()) error {
	done := make(chan struct{})
	wrapped := func() { f(); close(done) }
	select {
	case s.ops <- wrapped:
	case <-s.done:
		return ErrSchedulerClosed
	}
	select {
	case <-done:
		return nil
	case <-s.done:
		// Accepted but the loop quit before executing it.
		return ErrSchedulerClosed
	}
}

// tenantQueue is one tenant's slice of the stage queue for a single
// scheduling pass: its queued stages in FIFO order.
type tenantQueue struct {
	t       *tenantState
	stages  []*stage
	headSeq int64
	blocked bool // nothing launchable this pass (slots, cap, or gang wait)
}

// before orders tenant queues for dispatch: lowest virtual time first,
// submission order as the deterministic tie-break.
func (q *tenantQueue) before(o *tenantQueue) bool {
	vq, vo := q.t.vtime(), o.t.vtime()
	if vq != vo {
		return vq < vo
	}
	return q.headSeq < o.headSeq
}

// groupByTenant splits the stage queue into per-tenant FIFO queues,
// dropping doomed stages' queued work on the way.
func (s *Scheduler) groupByTenant() []*tenantQueue {
	var tqs []*tenantQueue
	byTenant := map[*tenantState]*tenantQueue{}
	for _, st := range s.queue {
		if st.doomed {
			st.clearPending()
			continue
		}
		if len(st.pending) == 0 {
			continue
		}
		q := byTenant[st.tenant]
		if q == nil {
			q = &tenantQueue{t: st.tenant, headSeq: st.seq}
			byTenant[st.tenant] = q
			tqs = append(tqs, q)
		}
		if st.seq < q.headSeq {
			q.headSeq = st.seq
		}
		q.stages = append(q.stages, st)
	}
	return tqs
}

// catchUpIdle advances re-arriving tenants' virtual time to the
// backlogged minimum and refreshes activity flags for the next pass.
func (s *Scheduler) catchUpIdle(tqs []*tenantQueue) {
	minV := math.Inf(1)
	for _, t := range s.tenants {
		if t.active {
			if v := t.vtime(); v < minV {
				minV = v
			}
		}
	}
	if !math.IsInf(minV, 1) {
		for _, q := range tqs {
			if q.t.active {
				continue
			}
			if floor := minV * q.t.weight; q.t.serviceNS < floor {
				q.t.serviceNS = floor
			}
		}
	}
	for _, t := range s.tenants {
		t.active = t.inUse > 0
	}
	for _, q := range tqs {
		q.t.active = true
	}
}

// dispatchOne launches at most one task attempt (or one whole gang)
// for the tenant, walking its stages in FIFO order. Returns false when
// nothing could be launched — free slots, the tenant's cap, or a gang
// still waiting.
func (s *Scheduler) dispatchOne(q *tenantQueue, avail []int, handled map[*stage]bool) bool {
	if q.t.capLeft() == 0 {
		return false
	}
	for _, st := range q.stages {
		if st.doomed || len(st.pending) == 0 {
			continue
		}
		if st.spec.Gang {
			// Gangs keep their all-or-nothing admission and slot
			// reservation; tryGang runs once per pass per stage.
			if handled[st] {
				continue
			}
			handled[st] = true
			if c := q.t.capLeft(); c >= 0 && len(st.pending) > c {
				continue // would burst past the tenant's slot cap
			}
			before := len(st.pending)
			s.tryGang(st, avail)
			if before > 0 && len(st.pending) == 0 {
				return true
			}
			continue // blocked or reserved; later stages may still fit
		}
		for i := range st.pending {
			if avail[st.pending[i].exec] > 0 {
				p := st.pending[i]
				st.pending = append(st.pending[:i], st.pending[i+1:]...)
				avail[p.exec]--
				s.launch(st, p)
				return true
			}
		}
	}
	return false
}
