package sched

// Elastic membership support: the slot table can grow and executors
// can die at runtime. The scheduler tracks a loop-owned dead set plus
// an atomic live-view snapshot for off-loop Submit validation; the rdd
// layer's reconfiguration loop drives AddExecutor/RemoveExecutor as the
// membership registry commits epochs.
//
// Invariants after RemoveExecutor(e) returns:
//   - no pending item targets e (remapped to a live executor, or its
//     stage doomed with ErrExecutorLost when the work is pinned);
//   - every in-flight attempt on e has been resolved as a synthetic
//     ErrExecutorLost failure (late real results for those attempts are
//     dropped by the usual inflight-map dedup);
//   - free[e] == 0, and no scheduling path hands e new work until a
//     replacement executor revives the slot via AddExecutor.

import (
	"errors"
	"fmt"

	"sparker/internal/membership"
)

// ErrExecutorLost marks task failures caused by membership change: the
// attempt's executor left or was evicted while the attempt was pending
// or in flight. Collective callers treat it like a classified peer
// failure and retry against the new membership epoch.
var ErrExecutorLost = errors.New("sched: executor lost")

// liveSnap is the off-loop view of the slot table: Submit resolves
// placement against it without touching loop-owned state.
type liveSnap struct {
	slots int   // slot-table size (dead included)
	alive []int // ascending live executor IDs
}

func (s *Scheduler) publishLive() {
	alive := make([]int, 0, len(s.free))
	for e := range s.free {
		if !s.dead[e] {
			alive = append(alive, e)
		}
	}
	s.live = alive
	s.liveView.Store(&liveSnap{slots: len(s.free), alive: alive})
}

// LiveExecutors returns the ascending IDs of executors currently
// accepting work. Safe from any goroutine.
func (s *Scheduler) LiveExecutors() []int {
	return append([]int(nil), s.liveView.Load().alive...)
}

// AddExecutor revives slot e (a replacement adopting a dead slot) or
// grows the slot table through e (new slots between the old table end
// and e are born dead). The slot's launcher goroutine and free cores
// come up before the call returns; the executor must already be
// reachable at its task address. Idempotent for an already-live slot.
func (s *Scheduler) AddExecutor(e int) error {
	if e < 0 {
		return fmt.Errorf("sched: AddExecutor(%d): negative slot", e)
	}
	return s.onLoop(func() {
		for len(s.free) <= e {
			ch := make(chan launchReq, s.conf.CoresPerExecutor)
			s.launchers = append(s.launchers, ch)
			s.launchWG.Add(1)
			go s.launcher(ch)
			s.free = append(s.free, 0)
			s.dead = append(s.dead, true)
		}
		if !s.dead[e] {
			return
		}
		s.dead[e] = false
		s.free[e] = s.conf.CoresPerExecutor
		s.publishLive()
	})
}

// RemoveExecutor takes slot e out of service: pending work leaves it
// (remap or doom), in-flight attempts on it fail with ErrExecutorLost,
// and nothing is scheduled onto it until AddExecutor revives the slot.
// Idempotent for an already-dead slot.
func (s *Scheduler) RemoveExecutor(e int) error {
	return s.onLoop(func() {
		if e < 0 || e >= len(s.free) || s.dead[e] {
			return
		}
		s.dead[e] = true
		s.publishLive()
		// Synthesize failures for in-flight attempts on e. handleResult
		// mutates s.inflight, so collect keys first.
		var lost []akey
		for key, ri := range s.inflight {
			if ri.exec == e {
				lost = append(lost, key)
			}
		}
		for _, key := range lost {
			s.handleResult(resultEv{job: key.job, task: key.task, att: key.att,
				err: fmt.Errorf("attempt was in flight on executor %d: %w", e, ErrExecutorLost)})
		}
		// The synthetic failures above released e's slots back into free;
		// a dead executor has no cores.
		s.free[e] = 0
		// Reconcile queued work (including retries the synthetic failures
		// just enqueued).
		for _, st := range s.queue {
			s.reconcileStage(st)
		}
		for _, st := range s.stages {
			s.maybeRetire(st)
		}
	})
}

// reconcileStage moves a stage's queued work off dead executors. Work
// that cannot move — gang stages (their task count is the ring size of
// a stale epoch) and NoSpeculation stages (pinned to a specific node) —
// dooms the stage with ErrExecutorLost so the caller re-plans against
// the current membership. Loop-only.
func (s *Scheduler) reconcileStage(st *stage) {
	if st.doomed || st.delivered {
		return
	}
	hit := false
	for i := range st.pending {
		if s.dead[st.pending[i].exec] {
			hit = true
			break
		}
	}
	if !hit {
		return
	}
	if st.spec.Gang || st.spec.NoSpeculation {
		st.doomed = true
		st.finalErr = fmt.Errorf("stage %d placed on dead executor: %w", st.spec.JobID, ErrExecutorLost)
		st.clearPending()
		if st.inflight == 0 && !st.delivered {
			s.deliver(st, nil, st.finalErr)
		}
		return
	}
	for i := range st.pending {
		p := &st.pending[i]
		if !s.dead[p.exec] {
			continue
		}
		if e := s.remap(p.task); e >= 0 {
			p.exec = e
		} else {
			// No live executor at all: the stage cannot make progress.
			st.doomed = true
			st.finalErr = fmt.Errorf("no live executors: %w", ErrExecutorLost)
			st.clearPending()
			if st.inflight == 0 && !st.delivered {
				s.deliver(st, nil, st.finalErr)
			}
			return
		}
	}
}

// remap picks the live owner of task t under the current live set —
// the same membership.OwnerOf math placement uses, so moved work lands
// where a fresh submission of the same stage would. Loop-only.
func (s *Scheduler) remap(t int) int {
	return membership.OwnerOf(s.live, t)
}

// retryExec resolves the executor for a retry of task t: the base
// placement while it is alive, else the current live owner. Loop-only.
func (s *Scheduler) retryExec(st *stage, t int) int {
	e := st.place[t]
	if e >= 0 && e < len(s.dead) && !s.dead[e] {
		return e
	}
	if st.spec.NoSpeculation {
		return -1 // pinned work cannot move
	}
	return s.remap(t)
}
