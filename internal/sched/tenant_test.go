package sched

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// submitBacklog queues n single-task stages for a tenant whose tasks
// hold a slot for taskDur before self-delivering. Returns the handles.
func submitBacklog(t *testing.T, s *Scheduler, tenant string, firstJob int64, n int, taskDur time.Duration) []*StageHandle {
	t.Helper()
	handles := make([]*StageHandle, 0, n)
	for i := 0; i < n; i++ {
		job := firstJob + int64(i)
		h, err := s.Submit(StageSpec{
			JobID:  job,
			Tenant: tenant,
			Tasks:  1,
			Launch: func(task, att, exec int) error {
				go func() {
					time.Sleep(taskDur)
					s.Deliver(job, task, att, []byte{1}, nil)
				}()
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	return handles
}

// waitStats polls TenantStats until cond is satisfied or the deadline
// passes, returning the last snapshot.
func waitStats(t *testing.T, s *Scheduler, cond func(map[string]TenantStats) bool) map[string]TenantStats {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := s.TenantStats()
		if st != nil && cond(st) {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for tenant stats condition; last: %v", s.TenantStats())
	return nil
}

// TestFairShareWeights: two backlogged tenants at 2:1 weights must see
// ~2:1 slot-time. The weight-2 tenant drains its fixed backlog first;
// at that moment the weight-1 tenant should have completed about half
// as much work.
func TestFairShareWeights(t *testing.T) {
	s := newTestSched(t, Config{NumExecutors: 2, CoresPerExecutor: 2})
	if err := s.ConfigureTenant("a", TenantConfig{Weight: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.ConfigureTenant("b", TenantConfig{Weight: 1}); err != nil {
		t.Fatal(err)
	}
	const n = 40
	const dur = 5 * time.Millisecond
	ha := submitBacklog(t, s, "a", 1000, n, dur)
	hb := submitBacklog(t, s, "b", 2000, n, dur)

	stats := waitStats(t, s, func(m map[string]TenantStats) bool {
		return m["a"].Completed >= n
	})
	got := stats["b"].Completed
	// Ideal is n/2 = 20 when "a" finishes; accept a wide band — the
	// tasks are real sleeps and CI timers wobble. The failure mode this
	// guards against is gross (FIFO would give ~n, strict priority ~0).
	if got < 8 || got > 32 {
		t.Fatalf("weight-1 tenant completed %d of %d when weight-2 tenant drained; want ~%d", got, n, n/2)
	}
	for _, h := range append(ha, hb...) {
		if _, err := h.Wait(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTenantSlotCap: a capped tenant never holds more than MaxSlots
// concurrently, and the leftover slots stay usable by others.
func TestTenantSlotCap(t *testing.T) {
	s := newTestSched(t, Config{NumExecutors: 2, CoresPerExecutor: 2})
	if err := s.ConfigureTenant("capped", TenantConfig{Weight: 1, MaxSlots: 2}); err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	h, err := s.Submit(StageSpec{
		JobID:  1,
		Tenant: "capped",
		Tasks:  6,
		Launch: rec.hook(1, nil), // hold slots; test delivers by hand
	})
	if err != nil {
		t.Fatal(err)
	}
	rec.waitCount(t, 2)
	time.Sleep(30 * time.Millisecond)
	if n := rec.count(); n != 2 {
		t.Fatalf("capped tenant launched %d tasks, cap is 2", n)
	}

	// Another tenant takes the two slots the cap leaves free.
	rec2 := &recorder{}
	h2, err := s.Submit(StageSpec{
		JobID:  2,
		Tenant: "other",
		Tasks:  2,
		Launch: rec2.hook(2, func(task, att, exec int) error {
			s.Deliver(2, task, att, []byte{1}, nil)
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h2.Wait(); err != nil {
		t.Fatal(err)
	}

	// Completing one capped task admits exactly one more.
	launched := rec.snapshot()
	s.Deliver(1, launched[0].task, launched[0].att, []byte{1}, nil)
	rec.waitCount(t, 3)
	time.Sleep(20 * time.Millisecond)
	if n := rec.count(); n != 3 {
		t.Fatalf("after one completion, capped tenant launched %d total, want 3", n)
	}
	// Drain the rest; duplicate Delivers are deduped by the inflight map.
	for {
		select {
		case <-h.Done():
			if _, err := h.Wait(); err != nil {
				t.Fatal(err)
			}
			return
		default:
		}
		for _, l := range rec.snapshot() {
			s.Deliver(1, l.task, l.att, []byte{1}, nil)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestIdleTenantCatchUp: a tenant arriving after another has run alone
// for a while neither starves nor is starved — both make progress
// immediately (the newcomer's virtual time is caught up, not zero).
func TestIdleTenantCatchUp(t *testing.T) {
	s := newTestSched(t, Config{NumExecutors: 2, CoresPerExecutor: 2})
	const dur = 4 * time.Millisecond
	submitBacklog(t, s, "old", 1000, 200, dur)
	// Let "old" accumulate service alone.
	waitStats(t, s, func(m map[string]TenantStats) bool { return m["old"].Completed >= 20 })

	submitBacklog(t, s, "new", 2000, 40, dur)
	base := waitStats(t, s, func(m map[string]TenantStats) bool { return m["new"].Completed >= 1 })
	oldBase := base["old"].Completed
	after := waitStats(t, s, func(m map[string]TenantStats) bool { return m["new"].Completed >= 15 })
	oldDelta := after["old"].Completed - oldBase
	// Without catch-up the newcomer would hog all 4 slots until it
	// repaid ~20 attempts of history, freezing "old" at ~0 progress.
	if oldDelta < 4 {
		t.Fatalf("established tenant made %d completions while newcomer did 15; starved by newcomer", oldDelta)
	}
}

// TestConcurrentSubmitMultiTenant is the satellite race test: N tenants
// x M jobs submitted from racing goroutines. Slot accounting must hold
// at every instant (never more than CoresPerExecutor concurrent
// launches per executor) and every handle resolves exactly once with
// its own payloads.
func TestConcurrentSubmitMultiTenant(t *testing.T) {
	const (
		execs, cores = 3, 2
		tenants      = 4
		jobsPer      = 25
	)
	s := newTestSched(t, Config{NumExecutors: execs, CoresPerExecutor: cores})
	for i := 0; i < tenants; i++ {
		if err := s.ConfigureTenant(fmt.Sprintf("t%d", i), TenantConfig{Weight: float64(1 + i%2)}); err != nil {
			t.Fatal(err)
		}
	}

	// perExec counts concurrently running launches; the scheduler only
	// launches while holding a slot, so exceeding cores is a lost slot.
	var perExec [execs]atomic.Int32
	var overSub atomic.Int32
	var wg sync.WaitGroup
	var totalTasks atomic.Int64
	for ti := 0; ti < tenants; ti++ {
		for ji := 0; ji < jobsPer; ji++ {
			wg.Add(1)
			go func(ti, ji int) {
				defer wg.Done()
				job := int64(ti*1000 + ji + 1)
				tasks := 1 + (ji % 3)
				totalTasks.Add(int64(tasks))
				h, err := s.Submit(StageSpec{
					JobID:  job,
					Tenant: fmt.Sprintf("t%d", ti),
					Tasks:  tasks,
					Launch: func(task, att, exec int) error {
						if n := perExec[exec].Add(1); n > cores {
							overSub.Add(1)
						}
						go func() {
							time.Sleep(200 * time.Microsecond)
							// Decrement before delivering: the slot is only
							// freed once the loop consumes the result, so the
							// counter can undercount but never overcount.
							perExec[exec].Add(-1)
							s.Deliver(job, task, att, []byte{byte(task), byte(ti)}, nil)
						}()
						return nil
					},
				})
				if err != nil {
					t.Errorf("submit tenant %d job %d: %v", ti, ji, err)
					return
				}
				out, err := h.Wait()
				if err != nil {
					t.Errorf("tenant %d job %d: %v", ti, ji, err)
					return
				}
				if len(out) != tasks {
					t.Errorf("tenant %d job %d: %d payloads, want %d", ti, ji, len(out), tasks)
					return
				}
				for task, p := range out {
					if len(p) != 2 || p[0] != byte(task) || p[1] != byte(ti) {
						t.Errorf("tenant %d job %d task %d: bad payload %v", ti, ji, task, p)
					}
				}
				// Second Wait must return the identical resolution.
				out2, err2 := h.Wait()
				if err2 != nil || len(out2) != len(out) {
					t.Errorf("tenant %d job %d: second Wait diverged: %v %v", ti, ji, out2, err2)
				}
			}(ti, ji)
		}
	}
	wg.Wait()
	if n := overSub.Load(); n > 0 {
		t.Fatalf("%d launches observed more than %d concurrent tasks on one executor", n, cores)
	}
	stats := waitStats(t, s, func(m map[string]TenantStats) bool {
		var inUse, queued int
		for _, ts := range m {
			inUse += ts.InUse
			queued += ts.Queued
		}
		return inUse == 0 && queued == 0
	})
	var completed int64
	for _, ts := range stats {
		completed += ts.Completed
	}
	if completed < totalTasks.Load() {
		t.Fatalf("tenants account %d completed attempts, submitted %d tasks", completed, totalTasks.Load())
	}
}

// TestTenantOpsAfterClose: the loop-crossing tenant APIs fail cleanly
// once the scheduler is closed instead of deadlocking.
func TestTenantOpsAfterClose(t *testing.T) {
	s, err := New(Config{NumExecutors: 1, CoresPerExecutor: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.ConfigureTenant("x", TenantConfig{Weight: 2}); !errors.Is(err, ErrSchedulerClosed) {
		t.Fatalf("ConfigureTenant after Close: %v", err)
	}
	if st := s.TenantStats(); st != nil {
		t.Fatalf("TenantStats after Close: %v", st)
	}
}
