package sched

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sparker/internal/metrics"
)

// recorder collects launch invocations from the scheduler's sender
// goroutines so tests can assert on placement, attempt numbers and
// ordering without a real transport.
type recorder struct {
	mu       sync.Mutex
	launches []launchRec
}

type launchRec struct {
	job             int64
	task, att, exec int
}

// hook returns a Launch function that records and optionally reacts.
// react runs on the sender goroutine after recording; nil means "record
// only" (the test delivers results by hand).
func (r *recorder) hook(job int64, react func(task, att, exec int) error) func(int, int, int) error {
	return func(task, att, exec int) error {
		r.mu.Lock()
		r.launches = append(r.launches, launchRec{job: job, task: task, att: att, exec: exec})
		r.mu.Unlock()
		if react != nil {
			return react(task, att, exec)
		}
		return nil
	}
}

func (r *recorder) snapshot() []launchRec {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]launchRec, len(r.launches))
	copy(out, r.launches)
	return out
}

func (r *recorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.launches)
}

// waitCount polls until the recorder has seen at least n launches.
func (r *recorder) waitCount(t *testing.T, n int) []launchRec {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if r.count() >= n {
			return r.snapshot()
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d launches, saw %d: %v", n, r.count(), r.snapshot())
	return nil
}

func newTestSched(t *testing.T, conf Config) *Scheduler {
	t.Helper()
	s, err := New(conf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestDefaultPolicyIsRoundRobin(t *testing.T) {
	s := newTestSched(t, Config{NumExecutors: 3, CoresPerExecutor: 2})
	rec := &recorder{}
	h, err := s.Submit(StageSpec{
		JobID: 1,
		Tasks: 6,
		Launch: rec.hook(1, func(task, att, exec int) error {
			s.Deliver(1, task, att, []byte{byte(task)}, nil)
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for task, p := range out {
		if len(p) != 1 || p[0] != byte(task) {
			t.Fatalf("task %d payload %v", task, p)
		}
	}
	execs := h.Executors()
	for task, e := range execs {
		if e != task%3 {
			t.Fatalf("task %d ran on executor %d, want %d", task, e, task%3)
		}
	}
}

func TestSlotInvariant(t *testing.T) {
	const execs, cores, tasks = 2, 2, 16
	s := newTestSched(t, Config{NumExecutors: execs, CoresPerExecutor: cores})
	var mu sync.Mutex
	launched := make([]int, execs)  // launches issued per executor
	delivered := make([]int, execs) // results we handed back per executor
	h, err := s.Submit(StageSpec{
		JobID: 7,
		Tasks: tasks,
		Launch: func(task, att, exec int) error {
			// A new launch implies the loop freed a slot, and it only frees
			// slots after consuming a result we delivered, so
			// launched - delivered bounds the executor's true occupancy.
			mu.Lock()
			launched[exec]++
			if occ := launched[exec] - delivered[exec]; occ > cores {
				mu.Unlock()
				return fmt.Errorf("executor %d occupancy %d > %d cores", exec, occ, cores)
			}
			mu.Unlock()
			go func() {
				time.Sleep(time.Millisecond)
				mu.Lock()
				delivered[exec]++
				mu.Unlock()
				s.Deliver(7, task, att, nil, nil)
			}()
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestTaskRetryUsesBasePlacement(t *testing.T) {
	s := newTestSched(t, Config{NumExecutors: 2, CoresPerExecutor: 1})
	rec := &recorder{}
	h, err := s.Submit(StageSpec{
		JobID:       3,
		Tasks:       2,
		MaxAttempts: 3,
		Launch: rec.hook(3, func(task, att, exec int) error {
			if task == 1 && att < 2 {
				s.Deliver(3, task, att, nil, errors.New("transient"))
			} else {
				s.Deliver(3, task, att, []byte{byte(att)}, nil)
			}
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if out[1][0] != 2 {
		t.Fatalf("task 1 succeeded on attempt %d, want 2", out[1][0])
	}
	for _, l := range rec.snapshot() {
		if l.task == 1 && l.exec != 1 {
			t.Fatalf("retry of task 1 launched on executor %d, want base placement 1", l.exec)
		}
	}
}

func TestTaskFailureExhaustsAttempts(t *testing.T) {
	s := newTestSched(t, Config{NumExecutors: 1, CoresPerExecutor: 1})
	rec := &recorder{}
	boom := errors.New("boom")
	h, err := s.Submit(StageSpec{
		JobID:       4,
		Tasks:       1,
		MaxAttempts: 3,
		Launch: rec.hook(4, func(task, att, exec int) error {
			s.Deliver(4, task, att, nil, boom)
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	_, werr := h.Wait()
	if !errors.Is(werr, boom) {
		t.Fatalf("terminal error %v does not wrap the task error", werr)
	}
	if n := rec.count(); n != 3 {
		t.Fatalf("%d attempts launched, want 3", n)
	}
	// Slots must be returned after the failure: a follow-up stage runs.
	h2, err := s.Submit(StageSpec{
		JobID: 5,
		Tasks: 1,
		Launch: rec.hook(5, func(task, att, exec int) error {
			s.Deliver(5, task, att, []byte("ok"), nil)
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h2.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyValidationAtSubmit(t *testing.T) {
	s := newTestSched(t, Config{NumExecutors: 2, CoresPerExecutor: 1})
	_, err := s.Submit(StageSpec{
		JobID:  6,
		Tasks:  3,
		Policy: Fixed([]int{0, 1}), // task 2 out of range -> -1
		Launch: func(int, int, int) error { return nil },
	})
	if err == nil {
		t.Fatal("out-of-range placement must be rejected at submit")
	}
	_, err = s.Submit(StageSpec{
		JobID:  6,
		Tasks:  1,
		Policy: Fixed([]int{5}),
		Launch: func(int, int, int) error { return nil },
	})
	if err == nil {
		t.Fatal("invalid executor index must be rejected at submit")
	}
}

func TestGangRejectsOversizedStage(t *testing.T) {
	s := newTestSched(t, Config{NumExecutors: 2, CoresPerExecutor: 1})
	_, err := s.Submit(StageSpec{
		JobID:  8,
		Tasks:  3, // two tasks on executor 0 under round-robin, one core
		Gang:   true,
		Launch: func(int, int, int) error { return nil },
	})
	if err == nil {
		t.Fatal("gang stage larger than the slot grid must be rejected")
	}
}

// TestGangAllOrNothing holds one executor busy and checks that a gang
// stage launches nothing at all — not even tasks whose executors are
// free — until every slot is available at once.
func TestGangAllOrNothing(t *testing.T) {
	s := newTestSched(t, Config{NumExecutors: 2, CoresPerExecutor: 1})
	rec := &recorder{}
	// Occupy executor 0; the result is delivered by hand later.
	hold, err := s.Submit(StageSpec{
		JobID:  10,
		Tasks:  1,
		Policy: Fixed([]int{0}),
		Launch: rec.hook(10, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	rec.waitCount(t, 1)

	gang, err := s.Submit(StageSpec{
		JobID: 11,
		Tasks: 2,
		Gang:  true,
		Launch: rec.hook(11, func(task, att, exec int) error {
			s.Deliver(11, task, att, nil, nil)
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	for _, l := range rec.snapshot() {
		if l.job == 11 {
			t.Fatalf("gang task launched while executor 0 was busy: %+v", l)
		}
	}
	s.Deliver(10, 0, 0, nil, nil)
	if _, err := hold.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := gang.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestGangKeySerialization submits two gang stages sharing a key on a
// grid with room for both, and checks the second waits for the first to
// fully drain.
func TestGangKeySerialization(t *testing.T) {
	s := newTestSched(t, Config{NumExecutors: 2, CoresPerExecutor: 2})
	rec := &recorder{}
	g1, err := s.Submit(StageSpec{
		JobID:   20,
		Tasks:   2,
		Gang:    true,
		GangKey: "ring",
		Launch:  rec.hook(20, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	rec.waitCount(t, 2)
	g2, err := s.Submit(StageSpec{
		JobID:   21,
		Tasks:   2,
		Gang:    true,
		GangKey: "ring",
		Launch: rec.hook(21, func(task, att, exec int) error {
			s.Deliver(21, task, att, nil, nil)
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	for _, l := range rec.snapshot() {
		if l.job == 21 {
			t.Fatalf("second gang launched while first held the key: %+v", l)
		}
	}
	s.Deliver(20, 0, 0, nil, nil)
	s.Deliver(20, 1, 0, nil, nil)
	if _, err := g1.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := g2.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestGangReservation checks a queued gang's slots cannot be stolen by
// a younger stage: the gang reserves its share while blocked.
func TestGangReservation(t *testing.T) {
	s := newTestSched(t, Config{NumExecutors: 2, CoresPerExecutor: 1})
	rec := &recorder{}
	hold, err := s.Submit(StageSpec{
		JobID:  30,
		Tasks:  1,
		Policy: Fixed([]int{0}),
		Launch: rec.hook(30, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	rec.waitCount(t, 1)
	gang, err := s.Submit(StageSpec{
		JobID: 31,
		Tasks: 2,
		Gang:  true,
		Launch: rec.hook(31, func(task, att, exec int) error {
			s.Deliver(31, task, att, nil, nil)
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Younger non-gang stage wants executor 1 — reserved for the gang.
	late, err := s.Submit(StageSpec{
		JobID:  32,
		Tasks:  1,
		Policy: Fixed([]int{1}),
		Launch: rec.hook(32, func(task, att, exec int) error {
			s.Deliver(32, task, att, nil, nil)
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	for _, l := range rec.snapshot() {
		if l.job == 32 {
			t.Fatalf("younger stage stole the gang's reserved slot: %+v", l)
		}
	}
	s.Deliver(30, 0, 0, nil, nil)
	if _, err := hold.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := gang.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := late.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncStagesOverlap submits two stages pinned to different
// executors and checks both are in flight simultaneously — the
// scheduler no longer serializes independent stages.
func TestAsyncStagesOverlap(t *testing.T) {
	s := newTestSched(t, Config{NumExecutors: 2, CoresPerExecutor: 1})
	rec := &recorder{}
	a, err := s.Submit(StageSpec{
		JobID: 40, Tasks: 1, Policy: Fixed([]int{0}), Launch: rec.hook(40, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit(StageSpec{
		JobID: 41, Tasks: 1, Policy: Fixed([]int{1}), Launch: rec.hook(41, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both launch with neither completed.
	rec.waitCount(t, 2)
	s.Deliver(41, 0, 0, []byte("b"), nil)
	s.Deliver(40, 0, 0, []byte("a"), nil)
	if out, err := a.Wait(); err != nil || string(out[0]) != "a" {
		t.Fatalf("stage a: %v %q", err, out)
	}
	if out, err := b.Wait(); err != nil || string(out[0]) != "b" {
		t.Fatalf("stage b: %v %q", err, out)
	}
}

// TestWaitAllDrainsBeforeError checks the satellite fix: a stage whose
// launch fails must not deliver its error while sibling attempts are
// still in flight.
func TestWaitAllDrainsBeforeError(t *testing.T) {
	s := newTestSched(t, Config{NumExecutors: 2, CoresPerExecutor: 1})
	rec := &recorder{}
	h, err := s.Submit(StageSpec{
		JobID:   50,
		Tasks:   2,
		WaitAll: true,
		Launch: rec.hook(50, func(task, att, exec int) error {
			if task == 1 {
				return errors.New("submit failed") // synthetic task failure
			}
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	rec.waitCount(t, 2)
	select {
	case <-h.Done():
		t.Fatal("stage delivered its error while task 0 was still in flight")
	case <-time.After(50 * time.Millisecond):
	}
	s.Deliver(50, 0, 0, []byte("late"), nil)
	if _, werr := h.Wait(); werr == nil {
		t.Fatal("stage must fail once drained")
	}
}

func TestDuplicateResultIgnored(t *testing.T) {
	s := newTestSched(t, Config{NumExecutors: 1, CoresPerExecutor: 1})
	rec := &recorder{}
	h, err := s.Submit(StageSpec{JobID: 60, Tasks: 1, Launch: rec.hook(60, nil)})
	if err != nil {
		t.Fatal(err)
	}
	rec.waitCount(t, 1)
	s.Deliver(60, 0, 0, []byte("first"), nil)
	s.Deliver(60, 0, 0, []byte("dup"), nil) // transport duplicate
	out, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if string(out[0]) != "first" {
		t.Fatalf("duplicate overwrote the first result: %q", out[0])
	}
	// The duplicate must not have freed a phantom slot: a 1-slot grid
	// still runs exactly one task at a time.
	h2, err := s.Submit(StageSpec{
		JobID: 61, Tasks: 1,
		Launch: rec.hook(61, func(task, att, exec int) error {
			s.Deliver(61, task, att, nil, nil)
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h2.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitAfterCloseFails(t *testing.T) {
	s, err := New(Config{NumExecutors: 1, CoresPerExecutor: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	_, err = s.Submit(StageSpec{JobID: 70, Tasks: 1, Launch: func(int, int, int) error { return nil }})
	if !errors.Is(err, ErrSchedulerClosed) {
		t.Fatalf("submit after close: %v, want ErrSchedulerClosed", err)
	}
	s.Close() // idempotent
}

func TestCloseFailsPendingStages(t *testing.T) {
	s, err := New(Config{NumExecutors: 1, CoresPerExecutor: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	running, err := s.Submit(StageSpec{JobID: 80, Tasks: 1, Launch: rec.hook(80, nil)})
	if err != nil {
		t.Fatal(err)
	}
	rec.waitCount(t, 1)
	queued, err := s.Submit(StageSpec{JobID: 81, Tasks: 1, Launch: rec.hook(81, nil)})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, werr := running.Wait(); !errors.Is(werr, ErrSchedulerClosed) {
		t.Fatalf("running stage: %v", werr)
	}
	if _, werr := queued.Wait(); !errors.Is(werr, ErrSchedulerClosed) {
		t.Fatalf("queued stage: %v", werr)
	}
}

// specConfig returns a speculation-tuned config with a recorder for
// counter assertions.
func specConfig(execs, cores int) (Config, *metrics.Recorder) {
	rec := metrics.NewRecorder()
	return Config{
		NumExecutors:          execs,
		CoresPerExecutor:      cores,
		Speculation:           true,
		SpeculationMultiplier: 2,
		SpeculationQuantile:   0.5,
		SpeculationInterval:   time.Millisecond,
		SpeculationMinRuntime: time.Millisecond,
		Recorder:              rec,
	}, rec
}

// TestSpeculationDuplicatesStraggler runs a two-task stage where task 1
// straggles: after the quorum completes, the scheduler must launch
// exactly one duplicate on a different executor, the duplicate's result
// must win, and the late original must be dropped.
func TestSpeculationDuplicatesStraggler(t *testing.T) {
	conf, mrec := specConfig(2, 1)
	s := newTestSched(t, conf)
	rec := &recorder{}
	h, err := s.Submit(StageSpec{
		JobID: 90,
		Tasks: 2,
		Launch: rec.hook(90, func(task, att, exec int) error {
			if task == 0 {
				go func() {
					time.Sleep(5 * time.Millisecond)
					s.Deliver(90, 0, 0, []byte("fast"), nil)
				}()
			}
			// Task 1 straggles: the test delivers its attempts by hand.
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Wait for the duplicate: task 1, attempt 1, on the other executor.
	var dup launchRec
	deadline := time.Now().Add(5 * time.Second)
	for {
		var found bool
		for _, l := range rec.snapshot() {
			if l.task == 1 && l.att > 0 {
				dup, found = l, true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no speculative duplicate launched; launches: %v", rec.snapshot())
		}
		time.Sleep(time.Millisecond)
	}
	if dup.exec != 0 {
		t.Fatalf("duplicate launched on executor %d, want 0 (anywhere but the straggler's 1)", dup.exec)
	}
	if dup.att != 1 {
		t.Fatalf("duplicate got attempt %d, want 1", dup.att)
	}

	// The duplicate finishes first and wins.
	s.Deliver(90, 1, dup.att, []byte("dup"), nil)
	out, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if string(out[1]) != "dup" {
		t.Fatalf("task 1 result %q, want the duplicate's", out[1])
	}
	if e := h.Executors()[1]; e != 0 {
		t.Fatalf("winner executor %d, want 0", e)
	}

	// The original limps home and must be discarded.
	s.Deliver(90, 1, 0, []byte("slow"), nil)
	time.Sleep(20 * time.Millisecond)
	if got := mrec.Count(metrics.CounterSpecLaunched); got != 1 {
		t.Fatalf("spec-launched count %d, want 1", got)
	}
	if got := mrec.Count(metrics.CounterSpecWon); got != 1 {
		t.Fatalf("spec-won count %d, want 1", got)
	}
	if got := mrec.Count(metrics.CounterSpecLost); got != 1 {
		t.Fatalf("spec-lost count %d, want 1", got)
	}
	// Exactly one duplicate: the speculated flag stops repeats.
	var task1 int
	for _, l := range rec.snapshot() {
		if l.task == 1 {
			task1++
		}
	}
	if task1 != 2 {
		t.Fatalf("task 1 launched %d times, want 2 (original + one duplicate)", task1)
	}
}

// TestNoSpeculationFlagHonored checks that NoSpeculation (and Gang)
// stages never get duplicates however long a task runs.
func TestNoSpeculationFlagHonored(t *testing.T) {
	conf, mrec := specConfig(2, 1)
	s := newTestSched(t, conf)
	rec := &recorder{}
	h, err := s.Submit(StageSpec{
		JobID:         100,
		Tasks:         2,
		NoSpeculation: true,
		Launch: rec.hook(100, func(task, att, exec int) error {
			if task == 0 {
				s.Deliver(100, 0, 0, nil, nil)
			}
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond) // far past threshold
	for _, l := range rec.snapshot() {
		if l.att > 0 {
			t.Fatalf("NoSpeculation stage got a duplicate: %+v", l)
		}
	}
	if got := mrec.Count(metrics.CounterSpecLaunched); got != 0 {
		t.Fatalf("spec-launched count %d, want 0", got)
	}
	s.Deliver(100, 1, 0, nil, nil)
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestSpeculationMigratesQueuedTask checks the pending-migration path:
// a task queued behind a busy executor past the threshold is re-placed
// onto a free one.
func TestSpeculationMigratesQueuedTask(t *testing.T) {
	conf, mrec := specConfig(2, 1)
	s := newTestSched(t, conf)
	rec := &recorder{}
	// Tasks 0,2 -> executor 0; task 1 -> executor 1. Task 0 completes
	// fast (quorum at 0.5*3 -> 2 needed, so also finish task 1), then
	// task 2 sits queued behind... nothing: executor 0 frees up. Pin the
	// queue instead: occupy executor 0 with a separate stage first.
	hold, err := s.Submit(StageSpec{
		JobID:  110,
		Tasks:  1,
		Policy: Fixed([]int{0}),
		Launch: rec.hook(110, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	rec.waitCount(t, 1)
	h, err := s.Submit(StageSpec{
		JobID:  111,
		Tasks:  3,
		Policy: Fixed([]int{1, 1, 0}), // 0,1 on the free executor; 2 stuck
		Launch: rec.hook(111, func(task, att, exec int) error {
			if task < 2 {
				s.Deliver(111, task, att, nil, nil)
			}
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Task 2 must migrate to executor 1 once the threshold passes.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var mig *launchRec
		for _, l := range rec.snapshot() {
			if l.job == 111 && l.task == 2 {
				mig = &l
			}
		}
		if mig != nil {
			if mig.exec != 1 {
				t.Fatalf("stuck task launched on executor %d, want migration to 1", mig.exec)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queued task never migrated off the busy executor")
		}
		time.Sleep(time.Millisecond)
	}
	if got := mrec.Count(metrics.CounterSpecMigrated); got != 1 {
		t.Fatalf("spec-migrated count %d, want 1", got)
	}
	s.Deliver(111, 2, 0, nil, nil)
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	s.Deliver(110, 0, 0, nil, nil)
	if _, err := hold.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{NumExecutors: 0, CoresPerExecutor: 1}); err == nil {
		t.Fatal("zero executors must be rejected")
	}
	if _, err := New(Config{NumExecutors: 1, CoresPerExecutor: 0}); err == nil {
		t.Fatal("zero cores must be rejected")
	}
	s := newTestSched(t, Config{NumExecutors: 1, CoresPerExecutor: 1})
	if _, err := s.Submit(StageSpec{JobID: 1, Tasks: 0, Launch: func(int, int, int) error { return nil }}); err == nil {
		t.Fatal("zero tasks must be rejected")
	}
	if _, err := s.Submit(StageSpec{JobID: 1, Tasks: 1}); err == nil {
		t.Fatal("nil launch must be rejected")
	}
	if _, err := s.Submit(StageSpec{JobID: 1, Tasks: 1, Gang: true, MaxAttempts: 2,
		Launch: func(int, int, int) error { return nil }}); err == nil {
		t.Fatal("gang with retries must be rejected")
	}
}
