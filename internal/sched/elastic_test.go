package sched

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestRemoveExecutorFailsInflightAndRemapsRetries(t *testing.T) {
	s := newTestSched(t, Config{NumExecutors: 3, CoresPerExecutor: 2})
	rec := &recorder{}
	// Tasks 1 and 4 land on executor 1 (round-robin); hold all results
	// so the attempts stay in flight when executor 1 dies.
	h, err := s.Submit(StageSpec{
		JobID:       7,
		Tasks:       6,
		MaxAttempts: 3,
		Launch:      rec.hook(7, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	first := rec.waitCount(t, 6)
	if err := s.RemoveExecutor(1); err != nil {
		t.Fatal(err)
	}
	// Free the survivors' slots so the remapped retries can dispatch.
	for _, l := range first {
		if l.exec != 1 {
			s.Deliver(7, l.task, l.att, []byte{byte(l.task)}, nil)
		}
	}
	// The two attempts on executor 1 fail synthetically and retry on a
	// survivor; the retries must never target executor 1.
	all := rec.waitCount(t, 8)
	for _, l := range all[6:] {
		if l.exec == 1 {
			t.Fatalf("retry landed on removed executor: %+v", l)
		}
		s.Deliver(7, l.task, l.att, []byte{byte(l.task)}, nil)
	}
	if _, err := h.Wait(); err != nil {
		t.Fatalf("stage failed after remap: %v", err)
	}
}

func TestRemoveExecutorDoomsInflightGang(t *testing.T) {
	s := newTestSched(t, Config{NumExecutors: 3, CoresPerExecutor: 1})
	rec := &recorder{}
	h, err := s.Submit(StageSpec{
		JobID:   9,
		Tasks:   3,
		Gang:    true,
		GangKey: "collective",
		WaitAll: true,
		Launch:  rec.hook(9, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	launches := rec.waitCount(t, 3)
	if err := s.RemoveExecutor(2); err != nil {
		t.Fatal(err)
	}
	// WaitAll: the gang drains only after the surviving members report.
	for _, l := range launches {
		if l.exec != 2 {
			s.Deliver(9, l.task, l.att, nil, errors.New("peer gone"))
		}
	}
	_, err = h.Wait()
	if !errors.Is(err, ErrExecutorLost) {
		t.Fatalf("gang error = %v, want ErrExecutorLost", err)
	}
}

func TestSubmitAfterRemoveRoutesAroundDeadExecutor(t *testing.T) {
	s := newTestSched(t, Config{NumExecutors: 4, CoresPerExecutor: 2})
	if err := s.RemoveExecutor(2); err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	h, err := s.Submit(StageSpec{
		JobID: 11,
		Tasks: 8,
		Launch: rec.hook(11, func(task, att, exec int) error {
			s.Deliver(11, task, att, []byte{byte(task)}, nil)
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	for _, l := range rec.snapshot() {
		if l.exec == 2 {
			t.Fatalf("launch on dead executor: %+v", l)
		}
	}
	live := s.LiveExecutors()
	if fmt.Sprint(live) != "[0 1 3]" {
		t.Fatalf("LiveExecutors = %v, want [0 1 3]", live)
	}
}

func TestAddExecutorRevivesAndGrows(t *testing.T) {
	s := newTestSched(t, Config{NumExecutors: 2, CoresPerExecutor: 1})
	if err := s.RemoveExecutor(0); err != nil {
		t.Fatal(err)
	}
	if err := s.AddExecutor(0); err != nil {
		t.Fatal(err)
	}
	// Grow the table through slot 3 (slot 2 stays dead until it joins).
	if err := s.AddExecutor(3); err != nil {
		t.Fatal(err)
	}
	live := s.LiveExecutors()
	if fmt.Sprint(live) != "[0 1 3]" {
		t.Fatalf("LiveExecutors = %v, want [0 1 3]", live)
	}
	rec := &recorder{}
	h, err := s.Submit(StageSpec{
		JobID: 13,
		Tasks: 6,
		Launch: rec.hook(13, func(task, att, exec int) error {
			s.Deliver(13, task, att, []byte{byte(task)}, nil)
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, l := range rec.snapshot() {
		if l.exec == 2 {
			t.Fatalf("launch on never-joined slot 2: %+v", l)
		}
		seen[l.exec] = true
	}
	if !seen[3] {
		t.Fatalf("grown executor 3 received no work: %v", rec.snapshot())
	}
}

func TestFixedPlacementOnDeadExecutorRejected(t *testing.T) {
	s := newTestSched(t, Config{NumExecutors: 3, CoresPerExecutor: 1})
	if err := s.RemoveExecutor(1); err != nil {
		t.Fatal(err)
	}
	_, err := s.Submit(StageSpec{
		JobID:  15,
		Tasks:  3,
		Policy: Fixed([]int{0, 1, 2}),
		Launch: func(task, att, exec int) error { return nil },
	})
	if !errors.Is(err, ErrExecutorLost) {
		t.Fatalf("Submit err = %v, want ErrExecutorLost", err)
	}
}

func TestRemoveExecutorDoomsPinnedPendingWork(t *testing.T) {
	s := newTestSched(t, Config{NumExecutors: 2, CoresPerExecutor: 1})
	rec := &recorder{}
	// Fill executor 1's only slot so the pinned stage queues behind it.
	blocker, err := s.Submit(StageSpec{
		JobID:  20,
		Tasks:  1,
		Policy: Fixed([]int{1}),
		Launch: rec.hook(20, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	rec.waitCount(t, 1)
	pinned, err := s.Submit(StageSpec{
		JobID:         21,
		Tasks:         1,
		Policy:        Fixed([]int{1}),
		NoSpeculation: true,
		Launch:        rec.hook(21, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Give the pinned stage time to reach the queue, then kill its home.
	time.Sleep(20 * time.Millisecond)
	if err := s.RemoveExecutor(1); err != nil {
		t.Fatal(err)
	}
	if _, err := pinned.Wait(); !errors.Is(err, ErrExecutorLost) {
		t.Fatalf("pinned stage err = %v, want ErrExecutorLost", err)
	}
	if _, err := blocker.Wait(); !errors.Is(err, ErrExecutorLost) {
		t.Fatalf("blocker err = %v, want ErrExecutorLost", err)
	}
}
