package sched

import (
	"sort"
	"time"
)

// StageInfo is one stage's scheduling state as seen by Snapshot.
type StageInfo struct {
	JobID       int64  `json:"job"`
	Tenant      string `json:"tenant,omitempty"`
	Tasks       int    `json:"tasks"`
	Remaining   int    `json:"remaining"`
	Inflight    int    `json:"inflight"`
	PendingTask int    `json:"pending_tasks"`
	Gang        bool   `json:"gang,omitempty"`
	GangKey     string `json:"gang_key,omitempty"`
	QueuedForNS int64  `json:"queued_for_ns,omitempty"`
}

// AttemptInfo is one launched, unreported task attempt.
type AttemptInfo struct {
	JobID     int64 `json:"job"`
	Task      int   `json:"task"`
	Attempt   int   `json:"attempt"`
	Exec      int   `json:"exec"`
	RunningNS int64 `json:"running_ns"`
}

// Snapshot is a consistent point-in-time view of the scheduler: slot
// occupancy, admission queue, gang queues, and in-flight attempts —
// the payload of /debug/sparker/sched. Taken on the scheduler loop, so
// it is exact, not approximate.
type Snapshot struct {
	TotalSlots    int                `json:"total_slots"`
	FreeSlots     []int              `json:"free_slots"` // per executor
	DeadSlots     []int              `json:"dead_slots,omitempty"`
	LiveExecutors []int              `json:"live_executors"`
	QueuedStages  []StageInfo        `json:"queued_stages,omitempty"`
	RunningStages []StageInfo        `json:"running_stages,omitempty"`
	Inflight      []AttemptInfo      `json:"inflight,omitempty"`
	GangQueues    map[string][]int64 `json:"gang_queues,omitempty"` // gang key -> queued jobs, FIFO
}

func stageInfo(st *stage, now time.Time) StageInfo {
	return StageInfo{
		JobID:       st.spec.JobID,
		Tenant:      st.spec.Tenant,
		Tasks:       st.spec.Tasks,
		Remaining:   st.remaining,
		Inflight:    st.inflight,
		PendingTask: len(st.pending),
		Gang:        st.spec.Gang,
		GangKey:     st.spec.GangKey,
		QueuedForNS: now.Sub(st.submitted).Nanoseconds(),
	}
}

// Snapshot captures the scheduler's live state. It runs on the event
// loop (like TenantStats), so it never races the state it reads;
// ErrSchedulerClosed after Close.
func (s *Scheduler) Snapshot() (Snapshot, error) {
	var out Snapshot
	err := s.onLoop(func() {
		now := time.Now()
		out.TotalSlots = len(s.live) * s.conf.CoresPerExecutor
		out.FreeSlots = append([]int(nil), s.free...)
		out.LiveExecutors = append([]int(nil), s.live...)
		for e, d := range s.dead {
			if d {
				out.DeadSlots = append(out.DeadSlots, e)
			}
		}
		queued := make(map[int64]bool, len(s.queue))
		for _, st := range s.queue {
			queued[st.spec.JobID] = true
			out.QueuedStages = append(out.QueuedStages, stageInfo(st, now))
			if st.spec.Gang && st.spec.GangKey != "" {
				if out.GangQueues == nil {
					out.GangQueues = map[string][]int64{}
				}
				out.GangQueues[st.spec.GangKey] = append(out.GangQueues[st.spec.GangKey], st.spec.JobID)
			}
		}
		for id, st := range s.stages {
			if !queued[id] {
				out.RunningStages = append(out.RunningStages, stageInfo(st, now))
			}
		}
		for k, ri := range s.inflight {
			out.Inflight = append(out.Inflight, AttemptInfo{
				JobID:     k.job,
				Task:      k.task,
				Attempt:   k.att,
				Exec:      ri.exec,
				RunningNS: now.Sub(ri.start).Nanoseconds(),
			})
		}
	})
	if err != nil {
		return Snapshot{}, err
	}
	// The loop iterates maps; sort outside it for stable output.
	sort.Slice(out.RunningStages, func(i, j int) bool {
		return out.RunningStages[i].JobID < out.RunningStages[j].JobID
	})
	sort.Slice(out.Inflight, func(i, j int) bool {
		a, b := out.Inflight[i], out.Inflight[j]
		if a.JobID != b.JobID {
			return a.JobID < b.JobID
		}
		if a.Task != b.Task {
			return a.Task < b.Task
		}
		return a.Attempt < b.Attempt
	})
	return out, nil
}
