// Package netsim models a cluster network on top of the vclock engine:
// per-node NIC resources (FIFO bandwidth occupancy in each direction),
// per-stream bandwidth caps (a single TCP connection cannot saturate
// the NIC — the reason the PDR uses parallel channels), one-way
// latencies, and a fast intra-node path. Transfers reserve the sender's
// egress and the receiver's ingress with pipelined timing, so fan-in
// hotspots (everyone sending to the driver) and ring neighbor traffic
// contend realistically.
package netsim

import (
	"fmt"
	"time"

	"sparker/internal/vclock"
)

// Params calibrates one network. Bandwidths are bytes/second.
type Params struct {
	// Nodes and ExecutorsPerNode define placement: executor e lives on
	// node e / ExecutorsPerNode. One extra implicit node hosts the
	// driver (see Driver).
	Nodes            int
	ExecutorsPerNode int

	// InterLatency is the one-way message latency between nodes.
	InterLatency time.Duration
	// NICBandwidth caps a node's total egress (and ingress) rate.
	NICBandwidth float64
	// StreamBandwidth caps a single connection; parallel channels are
	// required to reach NICBandwidth (Figure 13).
	StreamBandwidth float64

	// IntraLatency and IntraBandwidth model same-node transfers
	// (loopback / shared memory).
	IntraLatency   time.Duration
	IntraBandwidth float64
}

func (p Params) validate() error {
	if p.Nodes < 1 || p.ExecutorsPerNode < 1 {
		return fmt.Errorf("netsim: need at least one node and executor, got %d×%d", p.Nodes, p.ExecutorsPerNode)
	}
	if p.NICBandwidth <= 0 || p.IntraBandwidth <= 0 {
		return fmt.Errorf("netsim: bandwidths must be positive")
	}
	if p.StreamBandwidth <= 0 {
		return fmt.Errorf("netsim: stream bandwidth must be positive")
	}
	return nil
}

// Driver is the executor-id pseudo-address of the driver process. It
// lives on its own node (node index Nodes).
const Driver = -1

// Network is one simulated cluster fabric.
type Network struct {
	e       *vclock.Engine
	p       Params
	egress  []*vclock.Resource // per node, index Nodes = driver node
	ingress []*vclock.Resource
	intra   []*vclock.Resource
}

// New builds the network's resources on engine e.
func New(e *vclock.Engine, p Params) (*Network, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	n := &Network{e: e, p: p}
	for i := 0; i <= p.Nodes; i++ { // +1: driver node
		n.egress = append(n.egress, vclock.NewResource(e, p.NICBandwidth))
		n.ingress = append(n.ingress, vclock.NewResource(e, p.NICBandwidth))
		n.intra = append(n.intra, vclock.NewResource(e, p.IntraBandwidth))
	}
	return n, nil
}

// Params returns the calibration the network was built with.
func (n *Network) Params() Params { return n.p }

// Executors returns the total executor count.
func (n *Network) Executors() int { return n.p.Nodes * n.p.ExecutorsPerNode }

// NodeOf maps an executor id (or Driver) to its node index.
func (n *Network) NodeOf(exec int) int {
	if exec == Driver {
		return n.p.Nodes
	}
	return exec / n.p.ExecutorsPerNode
}

// TransferDone reserves the resources for a transfer of `bytes` from
// executor src to executor dst issued at virtual time start, and
// returns the completion time (when the last byte is available at the
// receiver). It does not block any process.
func (n *Network) TransferDone(start time.Duration, src, dst int, bytes int64) time.Duration {
	if bytes < 0 {
		bytes = 0
	}
	sn, dn := n.NodeOf(src), n.NodeOf(dst)
	if sn == dn {
		// Same node: one pass through the node's memory fabric.
		done := n.intra[sn].ReserveAt(start, float64(bytes))
		return done + n.p.IntraLatency
	}
	fb := float64(bytes)
	// Sender NIC occupancy.
	txDone := n.egress[sn].ReserveAt(start, fb)
	// Receiver NIC: pipelined — it can start when the first bytes land,
	// i.e. txDone minus the pure transmission time.
	txTime := time.Duration(fb / n.p.NICBandwidth * float64(time.Second))
	rxDone := n.ingress[dn].ReserveAt(txDone-txTime, fb)
	// Per-stream cap: one connection cannot beat StreamBandwidth.
	streamDone := start + time.Duration(fb/n.p.StreamBandwidth*float64(time.Second))
	done := rxDone
	if streamDone > done {
		done = streamDone
	}
	return done + n.p.InterLatency
}

// Transfer blocks p for the duration of the transfer.
func (n *Network) Transfer(p *vclock.Proc, src, dst int, bytes int64) {
	done := n.TransferDone(p.Now(), src, dst, bytes)
	p.Sleep(done - p.Now())
}

// Send delivers a value into mb at the transfer's completion time
// without blocking the sender beyond reservation bookkeeping.
func Send[T any](n *Network, p *vclock.Proc, mb *vclock.Mailbox[T], src, dst int, bytes int64, val T) {
	done := n.TransferDone(p.Now(), src, dst, bytes)
	mb.PutAt(done, val)
}
