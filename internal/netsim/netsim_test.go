package netsim

import (
	"testing"
	"time"

	"sparker/internal/vclock"
)

func params() Params {
	return Params{
		Nodes:            2,
		ExecutorsPerNode: 2,
		InterLatency:     100 * time.Microsecond,
		NICBandwidth:     1e9,  // 1 GB/s
		StreamBandwidth:  25e7, // 250 MB/s per stream
		IntraLatency:     5 * time.Microsecond,
		IntraBandwidth:   1e10,
	}
}

func TestValidation(t *testing.T) {
	e := vclock.New()
	bad := params()
	bad.Nodes = 0
	if _, err := New(e, bad); err == nil {
		t.Error("zero nodes should fail")
	}
	bad = params()
	bad.NICBandwidth = 0
	if _, err := New(e, bad); err == nil {
		t.Error("zero bandwidth should fail")
	}
}

func TestNodeOf(t *testing.T) {
	e := vclock.New()
	n, err := New(e, params())
	if err != nil {
		t.Fatal(err)
	}
	if n.NodeOf(0) != 0 || n.NodeOf(1) != 0 || n.NodeOf(2) != 1 || n.NodeOf(3) != 1 {
		t.Fatal("executor placement wrong")
	}
	if n.NodeOf(Driver) != 2 {
		t.Fatal("driver must live on its own node")
	}
	if n.Executors() != 4 {
		t.Fatalf("Executors = %d", n.Executors())
	}
}

func TestIntraNodeFastPath(t *testing.T) {
	e := vclock.New()
	n, _ := New(e, params())
	var dur time.Duration
	e.Go(func(p *vclock.Proc) {
		n.Transfer(p, 0, 1, 1_000_000) // same node
		dur = p.Now()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := time.Duration(1e6/1e10*1e9)*time.Nanosecond + 5*time.Microsecond
	if dur != want {
		t.Fatalf("intra transfer took %v, want %v", dur, want)
	}
}

func TestInterNodeLatencyDominatesSmall(t *testing.T) {
	e := vclock.New()
	n, _ := New(e, params())
	var dur time.Duration
	e.Go(func(p *vclock.Proc) {
		n.Transfer(p, 0, 2, 8) // tiny cross-node message
		dur = p.Now()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if dur < 100*time.Microsecond || dur > 110*time.Microsecond {
		t.Fatalf("small transfer took %v, want ≈ latency (100µs)", dur)
	}
}

func TestStreamCapLimitsSingleConnection(t *testing.T) {
	e := vclock.New()
	n, _ := New(e, params())
	const bytes = 250_000_000 // 1 second at stream cap, 0.25s at NIC rate
	var dur time.Duration
	e.Go(func(p *vclock.Proc) {
		n.Transfer(p, 0, 2, bytes)
		dur = p.Now()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if dur < time.Second {
		t.Fatalf("single stream finished in %v, should be capped at 1s", dur)
	}
}

func TestParallelStreamsSaturateNIC(t *testing.T) {
	// 4 concurrent streams × 250 MB/s = NIC rate 1 GB/s: 4×250MB in ≈1s,
	// vs 4s if the per-stream cap applied to the aggregate.
	e := vclock.New()
	n, _ := New(e, params())
	g := vclock.NewGroup(e)
	for i := 0; i < 4; i++ {
		g.Go(func(p *vclock.Proc) {
			n.Transfer(p, 0, 2, 250_000_000)
		})
	}
	e.Go(func(p *vclock.Proc) { g.Wait(p) })
	final, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if final < time.Second || final > 1100*time.Millisecond {
		t.Fatalf("4 parallel streams took %v, want ≈1s (NIC-bound)", final)
	}
}

func TestFanInContendsAtReceiver(t *testing.T) {
	// Two senders on different nodes to one receiver: receiver ingress
	// serializes, total ≈ sum of transmission times.
	p := params()
	p.Nodes = 3
	p.ExecutorsPerNode = 1
	p.StreamBandwidth = p.NICBandwidth // isolate NIC effect
	e := vclock.New()
	n, _ := New(e, p)
	g := vclock.NewGroup(e)
	for src := 1; src <= 2; src++ {
		src := src
		g.Go(func(q *vclock.Proc) {
			n.Transfer(q, src, 0, 500_000_000) // 0.5s each at NIC rate
		})
	}
	e.Go(func(q *vclock.Proc) { g.Wait(q) })
	final, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if final < 950*time.Millisecond {
		t.Fatalf("fan-in finished in %v; receiver NIC should serialize to ≈1s", final)
	}
}

func TestDisjointPairsDontContend(t *testing.T) {
	// 0→2 and 1→3 with one executor per node: different NICs both ways,
	// so they overlap fully.
	p := params()
	p.Nodes = 4
	p.ExecutorsPerNode = 1
	p.StreamBandwidth = p.NICBandwidth
	e := vclock.New()
	n, _ := New(e, p)
	g := vclock.NewGroup(e)
	g.Go(func(q *vclock.Proc) { n.Transfer(q, 0, 2, 500_000_000) })
	g.Go(func(q *vclock.Proc) { n.Transfer(q, 1, 3, 500_000_000) })
	e.Go(func(q *vclock.Proc) { g.Wait(q) })
	final, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if final > 600*time.Millisecond {
		t.Fatalf("disjoint transfers took %v, want ≈0.5s (parallel)", final)
	}
}

func TestSendDeliversThroughMailbox(t *testing.T) {
	e := vclock.New()
	n, _ := New(e, params())
	mb := vclock.NewMailbox[int](e)
	var at time.Duration
	e.Go(func(p *vclock.Proc) {
		Send(n, p, mb, 0, 2, 8, 42)
	})
	e.Go(func(p *vclock.Proc) {
		if got := mb.Recv(p); got != 42 {
			t.Errorf("got %d", got)
		}
		at = p.Now()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at < 100*time.Microsecond {
		t.Fatalf("message visible at %v, before latency elapsed", at)
	}
}

func TestZeroAndNegativeBytes(t *testing.T) {
	e := vclock.New()
	n, _ := New(e, params())
	e.Go(func(p *vclock.Proc) {
		n.Transfer(p, 0, 2, 0)
		n.Transfer(p, 0, 2, -5)
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
