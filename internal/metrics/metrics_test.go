package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAddAndGet(t *testing.T) {
	r := NewRecorder()
	r.Add(PhaseAggCompute, time.Second)
	r.Add(PhaseAggCompute, 2*time.Second)
	r.Add(PhaseAggReduce, time.Second)
	if got := r.Get(PhaseAggCompute); got != 3*time.Second {
		t.Fatalf("Get = %v", got)
	}
	if got := r.Total(); got != 4*time.Second {
		t.Fatalf("Total = %v", got)
	}
	if got := r.Get("missing"); got != 0 {
		t.Fatalf("missing phase = %v", got)
	}
}

func TestTimeChargesPhase(t *testing.T) {
	r := NewRecorder()
	r.Time("work", func() { time.Sleep(5 * time.Millisecond) })
	if got := r.Get("work"); got < 5*time.Millisecond {
		t.Fatalf("Time charged only %v", got)
	}
}

func TestSnapshotIsolated(t *testing.T) {
	r := NewRecorder()
	r.Add("a", time.Second)
	snap := r.Snapshot()
	snap["a"] = 0
	if r.Get("a") != time.Second {
		t.Fatal("mutating snapshot affected recorder")
	}
}

func TestReset(t *testing.T) {
	r := NewRecorder()
	r.Add("a", time.Second)
	r.Reset()
	if r.Total() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestStringSorted(t *testing.T) {
	r := NewRecorder()
	r.Add("zeta", time.Second)
	r.Add("alpha", 2*time.Second)
	s := r.String()
	if !strings.Contains(s, "alpha=2s") || !strings.Contains(s, "zeta=1s") {
		t.Fatalf("String = %q", s)
	}
	if strings.Index(s, "alpha") > strings.Index(s, "zeta") {
		t.Fatalf("phases not sorted: %q", s)
	}
}

func TestConcurrentAdds(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Add("p", time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Get("p"); got != 1600*time.Millisecond {
		t.Fatalf("concurrent adds lost updates: %v", got)
	}
}
