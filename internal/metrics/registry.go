package metrics

import (
	"context"
	"sort"
	"sync"
)

// Canonical instrument names. Histograms measuring time use the ".ns"
// suffix (nanosecond samples); sizes use ".bytes".
const (
	// HistRingStepNS is the per-step latency of ring collectives
	// (send + recv + fused reduce for one segment on one channel).
	HistRingStepNS = "ring.step.ns"
	// HistRingStepBytes is the total wire bytes of each ring step (the
	// single frame of the legacy path, or the sum of the chunk frames of
	// the pipelined path). With a wire codec active these are
	// post-compression bytes.
	HistRingStepBytes = "ring.step.bytes"
	// HistRingStepRawBytes is the pre-compression byte equivalent of
	// each compressed ring step — what the dense encoder would have sent
	// for the same frames. Observed only by codec-compressed steps, so
	// raw/wire sums give the achieved bytes-on-wire reduction without
	// perturbing dense telemetry.
	HistRingStepRawBytes = "ring.step.raw.bytes"
	// HistRingChunkNS is the per-chunk fused decode-reduce latency of
	// the pipelined ring path.
	HistRingChunkNS = "ring.chunk.reduce.ns"
	// HistRingChunkBytes is the wire size of each pipelined chunk frame.
	HistRingChunkBytes = "ring.chunk.bytes"
	// HistBlockPutNS / HistBlockGetNS time block-store writes and reads
	// (local or remote fetch).
	HistBlockPutNS = "block.put.ns"
	HistBlockGetNS = "block.get.ns"
	// HistBlockPutBytes / HistBlockGetBytes are the block payload sizes.
	HistBlockPutBytes = "block.put.bytes"
	HistBlockGetBytes = "block.get.bytes"
	// GaugeSendQueue is the instantaneous depth of comm sender
	// mailboxes (enqueued, not yet written to the wire).
	GaugeSendQueue = "comm.send.queue"
	// GaugeSchedQueue is the instantaneous number of task attempts
	// queued in the stage scheduler waiting for a free core slot.
	GaugeSchedQueue = "sched.queue.depth"
	// HistSchedTaskNS is the per-attempt wall time of successful tasks
	// as observed by the scheduler (launch to result) — the duration
	// distribution speculation thresholds derive from.
	HistSchedTaskNS = "sched.task.ns"
	// HistSchedStageNS is the submit-to-completion wall time of stages.
	HistSchedStageNS = "sched.stage.ns"
	// HistSchedWaitNS is the queue wait of each launched attempt
	// (enqueue to slot acquisition).
	HistSchedWaitNS = "sched.wait.ns"
	// HistComputeMapNS is the per-partition map-phase kernel time of
	// packed compute (one observation per fused gradient/kmeans pass).
	HistComputeMapNS = "compute.map.ns"
	// GaugeComputePointsPerSec is the most recent packed map-phase
	// throughput per executor (points folded / kernel seconds); the
	// driver-side merged registry sums executors into an aggregate rate.
	GaugeComputePointsPerSec = "compute.points.per.sec"
	// GaugeLiveExecutors is the current number of live executors in the
	// installed membership view (driver registry only).
	GaugeLiveExecutors = "membership.live.executors"
	// GaugeMembershipEpoch is the installed membership epoch (driver
	// registry only) — together with GaugeLiveExecutors this makes
	// reconfiguration visible on any metrics scrape.
	GaugeMembershipEpoch = "membership.epoch"
)

// Registry is a named collection of instruments. Each executor owns
// one (its hot paths observe into it without cross-executor
// contention) and the driver merges them on demand. Get-or-create
// accessors are cheap after first use (RLock + map hit). A nil
// *Registry returns nil instruments, which themselves no-op, so an
// uninstrumented component pays only nil checks.
type Registry struct {
	mu     sync.RWMutex
	hists  map[string]*Histogram
	gauges map[string]*Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{hists: map[string]*Histogram{}, gauges: map[string]*Gauge{}}
}

// Histogram returns the named histogram, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = NewGauge()
		r.gauges[name] = g
	}
	return g
}

// HistogramNames returns the sorted names of existing histograms.
func (r *Registry) HistogramNames() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.hists))
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// GaugeNames returns the sorted names of existing gauges.
func (r *Registry) GaugeNames() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Merge folds src's instruments into r: histogram snapshots are added,
// gauge values summed (queue depths across executors add naturally).
// Safe to call while src is still being observed into — merges see a
// point-in-time snapshot. No-op when either side is nil.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil {
		return
	}
	for _, name := range src.HistogramNames() {
		r.Histogram(name).Merge(src.Histogram(name).Snapshot())
	}
	for _, name := range src.GaugeNames() {
		r.Gauge(name).Add(src.Gauge(name).Value())
	}
}

// --- context plumbing -------------------------------------------------

type regKey struct{}

// NewContext returns ctx carrying the registry, for layers (like the
// collectives) that only see a context. A nil registry returns ctx
// unchanged.
func NewContext(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, regKey{}, r)
}

// FromContext extracts the registry, or nil.
func FromContext(ctx context.Context) *Registry {
	r, _ := ctx.Value(regKey{}).(*Registry)
	return r
}
