package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram is a lock-free log₂-bucket histogram of non-negative int64
// samples (latencies in nanoseconds, sizes in bytes). Bucket i holds
// values whose bit length is i, i.e. the range [2^(i-1), 2^i); bucket 0
// holds zero and negative samples. 64 value buckets cover the full
// int64 range, so Observe never branches on overflow.
//
// Observe is a few atomic adds — cheap enough for the per-ring-step
// hot path — and quantiles are estimated by linear interpolation
// inside the target bucket, clamped to the observed min/max. A nil
// *Histogram no-ops, so disabled instrumentation costs one nil check.
type Histogram struct {
	buckets [65]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid only when count > 0
	max     atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Observe records one sample. Safe for concurrent use; no-op on nil.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of samples (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all samples (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile estimates the q-th quantile (q in [0,1]) by interpolating
// within the covering log₂ bucket. Returns 0 when empty or nil.
func (h *Histogram) Quantile(q float64) int64 {
	return h.Snapshot().Quantile(q)
}

// HistSnapshot is a consistent-enough copy of a histogram for
// reporting and merging. Fields are plain values; safe to serialize.
type HistSnapshot struct {
	Count   int64     `json:"count"`
	Sum     int64     `json:"sum"`
	Min     int64     `json:"min"`
	Max     int64     `json:"max"`
	Buckets [65]int64 `json:"buckets"`
}

// Snapshot copies the histogram's current state. Concurrent observes
// may straddle the copy; totals stay within one in-flight sample of
// exact, which is fine for reporting. Safe on nil (returns zero).
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Min = h.min.Load()
	s.Max = h.max.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	if s.Count == 0 {
		s.Min, s.Max = 0, 0
	}
	return s
}

// Merge folds a snapshot into h — how per-executor registries combine
// at the driver. Safe for concurrent use with Observe.
func (h *Histogram) Merge(s HistSnapshot) {
	if h == nil || s.Count == 0 {
		return
	}
	for i, c := range s.Buckets {
		if c != 0 {
			h.buckets[i].Add(c)
		}
	}
	h.count.Add(s.Count)
	h.sum.Add(s.Sum)
	for {
		cur := h.min.Load()
		if s.Min >= cur || h.min.CompareAndSwap(cur, s.Min) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if s.Max <= cur || h.max.CompareAndSwap(cur, s.Max) {
			break
		}
	}
}

// Mean returns the arithmetic mean of the snapshot (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-th quantile of the snapshot.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target sample, 1-based.
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for b, c := range s.Buckets {
		if c == 0 {
			continue
		}
		if cum+c < rank {
			cum += c
			continue
		}
		// Bucket b covers [lo, hi); interpolate by rank position.
		var lo, hi int64
		if b == 0 {
			lo, hi = 0, 1
		} else {
			lo = int64(1) << (b - 1)
			hi = lo * 2
		}
		frac := float64(rank-cum) / float64(c)
		v := lo + int64(frac*float64(hi-lo))
		// Clamp to observed extremes so tiny sample counts don't report
		// values outside the data.
		if v < s.Min {
			v = s.Min
		}
		if v > s.Max {
			v = s.Max
		}
		return v
	}
	return s.Max
}

// Gauge is an instantaneous value (queue depth, in-flight count). Safe
// for concurrent use; a nil *Gauge no-ops.
type Gauge struct {
	v atomic.Int64
}

// NewGauge returns a zeroed gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
