// Package metrics provides the phase-level time accounting used to
// reproduce the paper's end-to-end decompositions (Figures 2–4, 18):
// driver time, non-aggregation compute, aggregation compute and
// aggregation reduce.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Canonical phase names used by the engine and the harness.
const (
	PhaseDriver     = "driver"
	PhaseNonAgg     = "non-agg"
	PhaseAggCompute = "agg-compute"
	PhaseAggReduce  = "agg-reduce"
)

// Canonical counter names used by the engine.
const (
	// CounterRingFallback counts split aggregations that degraded to the
	// tree fallback after a classified collective failure.
	CounterRingFallback = "ring-fallback"
	// CounterPeerFailure counts classified peer failures (timeouts and
	// severed connections) observed by aggregation stages.
	CounterPeerFailure = "peer-failure"
	// CounterResultMalformed counts result frames the driver could not
	// decode — previously a silent drop in the result reader.
	CounterResultMalformed = "result-malformed"
	// CounterResultDropped counts decoded results the scheduler's event
	// channel could not absorb. The channel is sized for every slot plus
	// duplicated frames, so a non-zero count indicates a protocol bug.
	CounterResultDropped = "result-dropped"
	// CounterSpecLaunched counts speculative duplicate attempts started
	// for straggling tasks.
	CounterSpecLaunched = "spec-launched"
	// CounterSpecWon counts stages' tasks whose speculative duplicate
	// finished before the straggling original.
	CounterSpecWon = "spec-won"
	// CounterSpecLost counts late attempts that finished after another
	// attempt of the same task had already won.
	CounterSpecLost = "spec-lost"
	// CounterSpecMigrated counts queued tasks re-placed from a busy
	// executor to an idle one by the straggler scan.
	CounterSpecMigrated = "spec-migrated"
	// CounterCompressDisabled counts optimizer runs whose convergence
	// guardrail turned wire compression off mid-training (non-finite
	// loss, or loss rising for several consecutive iterations).
	CounterCompressDisabled = "compress-disabled"
	// CounterJobFailed counts server jobs that reached a terminal
	// error state.
	CounterJobFailed = "job-failed"
	// CounterJobCancelled counts server jobs cancelled by a client
	// (DELETE /api/v1/jobs/{id}) or by server shutdown.
	CounterJobCancelled = "job-cancelled"
	// CounterExecutorJoin counts executors admitted into the membership
	// (dead-slot adoption and table growth alike).
	CounterExecutorJoin = "executor-join"
	// CounterExecutorLeave counts voluntary executor departures.
	CounterExecutorLeave = "executor-leave"
	// CounterExecutorEvict counts failure-detector evictions (heartbeat
	// deadline or severed control connection).
	CounterExecutorEvict = "executor-evict"
	// CounterElasticRetry counts collectives that failed against a
	// membership epoch that then changed, and were retried whole against
	// the new epoch.
	CounterElasticRetry = "elastic-retry"
	// CounterCheckpointRepair counts checkpoint repair passes run after
	// a membership change (replica promotion, lineage recompute, and
	// replica restoration are one pass).
	CounterCheckpointRepair = "checkpoint-repair"
)

// Recorder accumulates named durations and event counters. It is safe
// for concurrent use.
type Recorder struct {
	mu sync.Mutex
	m  map[string]time.Duration
	c  map[string]int64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{m: map[string]time.Duration{}, c: map[string]int64{}}
}

// Inc increments the named counter by one.
func (r *Recorder) Inc(counter string) {
	r.mu.Lock()
	r.c[counter]++
	r.mu.Unlock()
}

// Count returns the value of the named counter.
func (r *Recorder) Count(counter string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.c[counter]
}

// Counters returns a copy of the counter map.
func (r *Recorder) Counters() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.c))
	for k, v := range r.c {
		out[k] = v
	}
	return out
}

// Add accumulates d into the named phase.
func (r *Recorder) Add(phase string, d time.Duration) {
	r.mu.Lock()
	r.m[phase] += d
	r.mu.Unlock()
}

// Time runs f, charging its wall time to phase. The charge happens in
// a defer so a panicking f still records the time it consumed before
// unwinding (the panic itself propagates unchanged).
func (r *Recorder) Time(phase string, f func()) {
	start := time.Now()
	defer func() { r.Add(phase, time.Since(start)) }()
	f()
}

// Get returns the accumulated duration of a phase.
func (r *Recorder) Get(phase string) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.m[phase]
}

// Total returns the sum over all phases.
func (r *Recorder) Total() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	var t time.Duration
	for _, d := range r.m {
		t += d
	}
	return t
}

// Snapshot returns a copy of the phase map.
func (r *Recorder) Snapshot() map[string]time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]time.Duration, len(r.m))
	for k, v := range r.m {
		out[k] = v
	}
	return out
}

// Reset clears all phases and counters.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.m = map[string]time.Duration{}
	r.c = map[string]int64{}
	r.mu.Unlock()
}

// String renders phases then counters, each sorted by name, for logs
// and test output.
func (r *Recorder) String() string {
	snap := r.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%v", k, snap[k])
	}
	counts := r.Counters()
	ckeys := make([]string, 0, len(counts))
	for k := range counts {
		ckeys = append(ckeys, k)
	}
	sort.Strings(ckeys)
	for _, k := range ckeys {
		if b.Len() > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%d", k, counts[k])
	}
	return b.String()
}
