package metrics

import (
	"math"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestTimePanicStillCharges(t *testing.T) {
	r := NewRecorder()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate through Time")
			}
		}()
		r.Time("work", func() {
			time.Sleep(5 * time.Millisecond)
			panic("user code bug")
		})
	}()
	if got := r.Get("work"); got < 5*time.Millisecond {
		t.Fatalf("panicking f charged only %v", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Sum() != 1106 {
		t.Fatalf("Sum = %d", h.Sum())
	}
	s := h.Snapshot()
	if s.Min != 1 || s.Max != 1000 {
		t.Fatalf("min/max = %d/%d", s.Min, s.Max)
	}
	if q := h.Quantile(0); q < 1 || q > 2 {
		t.Errorf("p0 = %d, want within the lowest sample's bucket [1,2]", q)
	}
	if q := h.Quantile(1); q != 1000 {
		t.Errorf("p100 = %d, want clamped to max 1000", q)
	}
	med := h.Quantile(0.5)
	if med < 2 || med > 4 {
		t.Errorf("p50 = %d, want ~3", med)
	}
}

func TestHistogramNilAndEmpty(t *testing.T) {
	var h *Histogram
	h.Observe(5) // must not panic
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram not zero")
	}
	s := h.Snapshot()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("nil snapshot = %+v", s)
	}
	e := NewHistogram().Snapshot()
	if e.Min != 0 || e.Max != 0 {
		t.Fatalf("empty snapshot min/max = %d/%d", e.Min, e.Max)
	}
}

func TestHistogramNegativeAndZero(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)
	h.Observe(-5)
	if h.Count() != 2 {
		t.Fatalf("Count = %d", h.Count())
	}
	// Both land in bucket 0; quantiles clamp to observed extremes.
	if q := h.Quantile(0.5); q != 0 && q != -5 {
		t.Fatalf("p50 = %d", q)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// Uniform samples 1..1000: log₂ interpolation must land within the
	// covering power-of-two bucket of the true quantile.
	h := NewHistogram()
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 500}, {0.95, 950}, {0.99, 990},
	} {
		got := float64(h.Quantile(tc.q))
		if got < tc.want/2 || got > tc.want*2 {
			t.Errorf("p%.0f = %.0f, want within 2x of %.0f", tc.q*100, got, tc.want)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Observe(10)
	a.Observe(20)
	b.Observe(1)
	b.Observe(1 << 40)
	a.Merge(b.Snapshot())
	s := a.Snapshot()
	if s.Count != 4 {
		t.Fatalf("merged count = %d", s.Count)
	}
	if s.Min != 1 || s.Max != 1<<40 {
		t.Fatalf("merged min/max = %d/%d", s.Min, s.Max)
	}
	if s.Sum != 10+20+1+(1<<40) {
		t.Fatalf("merged sum = %d", s.Sum)
	}
	// Merging an empty snapshot is a no-op (must not clobber min/max).
	a.Merge(NewHistogram().Snapshot())
	if got := a.Snapshot(); got.Min != 1 || got.Max != 1<<40 {
		t.Fatalf("empty merge moved min/max: %d/%d", got.Min, got.Max)
	}
}

func TestGauge(t *testing.T) {
	g := NewGauge()
	g.Add(5)
	g.Add(-2)
	if g.Value() != 3 {
		t.Fatalf("Value = %d", g.Value())
	}
	g.Set(42)
	if g.Value() != 42 {
		t.Fatalf("Value = %d", g.Value())
	}
	var ng *Gauge
	ng.Add(1)
	ng.Set(1)
	if ng.Value() != 0 {
		t.Fatal("nil gauge not zero")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram(HistRingStepNS)
	h2 := r.Histogram(HistRingStepNS)
	if h1 != h2 {
		t.Fatal("Histogram returned distinct instruments for one name")
	}
	if r.Gauge(GaugeSendQueue) != r.Gauge(GaugeSendQueue) {
		t.Fatal("Gauge returned distinct instruments for one name")
	}
	var nr *Registry
	if nr.Histogram("x") != nil || nr.Gauge("y") != nil {
		t.Fatal("nil registry returned live instruments")
	}
}

// TestRegistryConcurrentMerge exercises the per-executor → driver merge
// path under concurrency: executor registries observe while the driver
// merges. Run under -race (make race includes this package).
func TestRegistryConcurrentMerge(t *testing.T) {
	const executors = 4
	const samples = 1000
	execRegs := make([]*Registry, executors)
	for i := range execRegs {
		execRegs[i] = NewRegistry()
	}

	var wg sync.WaitGroup
	for i, reg := range execRegs {
		wg.Add(1)
		go func(i int, reg *Registry) {
			defer wg.Done()
			h := reg.Histogram(HistRingStepNS)
			g := reg.Gauge(GaugeSendQueue)
			for s := 0; s < samples; s++ {
				h.Observe(int64(s + 1))
				g.Add(1)
			}
		}(i, reg)
	}

	// Merge concurrently with the observers: totals of in-progress
	// merges are indeterminate, but nothing may race or tear.
	stop := make(chan struct{})
	var mwg sync.WaitGroup
	mwg.Add(1)
	go func() {
		defer mwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				mid := NewRegistry()
				for _, reg := range execRegs {
					mid.Merge(reg)
				}
				runtime.Gosched()
			}
		}
	}()
	wg.Wait()
	close(stop)
	mwg.Wait()

	// Quiesced: the final merge must be exact.
	final := NewRegistry()
	for _, reg := range execRegs {
		final.Merge(reg)
	}
	h := final.Histogram(HistRingStepNS)
	if h.Count() != executors*samples {
		t.Fatalf("merged count = %d, want %d", h.Count(), executors*samples)
	}
	if g := final.Gauge(GaugeSendQueue); g.Value() != executors*samples {
		t.Fatalf("merged gauge = %d, want %d", g.Value(), executors*samples)
	}
	if min := h.Snapshot().Min; min != 1 {
		t.Fatalf("merged min = %d", min)
	}
}

func TestRegistryNames(t *testing.T) {
	r := NewRegistry()
	r.Histogram("b")
	r.Histogram("a")
	r.Gauge("z")
	hn := r.HistogramNames()
	if len(hn) != 2 || hn[0] != "a" || hn[1] != "b" {
		t.Fatalf("HistogramNames = %v", hn)
	}
	if gn := r.GaugeNames(); len(gn) != 1 || gn[0] != "z" {
		t.Fatalf("GaugeNames = %v", gn)
	}
}

func TestQuantileNaNSafe(t *testing.T) {
	h := NewHistogram()
	h.Observe(7)
	for _, q := range []float64{-1, 0, 0.5, 1, 2, math.NaN()} {
		v := h.Quantile(q) // must not panic; NaN clamps somewhere sane
		if v < 0 || v > 7 {
			t.Fatalf("Quantile(%v) = %d out of range", q, v)
		}
	}
}
