package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime/debug"
	"sort"
	"strings"
	"time"
)

// Prometheus-style text exposition (text format 0.0.4) over stdlib
// net/http only. Histograms expose cumulative log₂ buckets with `le`
// upper bounds; the Recorder's phases and counters ride along so one
// scrape covers both the coarse paper decomposition and the typed
// instruments.

// promName sanitizes an instrument name into a Prometheus metric name.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("sparker_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders reg's instruments and rec's phases/counters
// in Prometheus text format. Either argument may be nil.
func WritePrometheus(w io.Writer, reg *Registry, rec *Recorder) error {
	for _, name := range reg.HistogramNames() {
		s := reg.Histogram(name).Snapshot()
		mn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", mn); err != nil {
			return err
		}
		var cum int64
		for b, c := range s.Buckets {
			cum += c
			if c == 0 {
				continue
			}
			// Upper bound of bucket b is 2^b (bucket 0 holds <= 0).
			// Buckets at or past bit 63 fold into the final +Inf line.
			if b >= 63 {
				continue
			}
			le := "1"
			if b > 0 {
				le = fmt.Sprintf("%d", int64(1)<<b)
			}
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", mn, le, cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", mn, s.Count)
		fmt.Fprintf(w, "%s_sum %d\n", mn, s.Sum)
		fmt.Fprintf(w, "%s_count %d\n", mn, s.Count)
	}
	for _, name := range reg.GaugeNames() {
		mn := promName(name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", mn, mn, reg.Gauge(name).Value())
	}
	if rec != nil {
		phases := rec.Snapshot()
		names := make([]string, 0, len(phases))
		for n := range phases {
			names = append(names, n)
		}
		sort.Strings(names)
		if len(names) > 0 {
			fmt.Fprintf(w, "# TYPE sparker_phase_seconds counter\n")
			for _, n := range names {
				fmt.Fprintf(w, "sparker_phase_seconds{phase=%q} %g\n", n, phases[n].Seconds())
			}
		}
		counters := rec.Counters()
		cnames := make([]string, 0, len(counters))
		for n := range counters {
			cnames = append(cnames, n)
		}
		sort.Strings(cnames)
		if len(cnames) > 0 {
			fmt.Fprintf(w, "# TYPE sparker_events_total counter\n")
			for _, n := range cnames {
				fmt.Fprintf(w, "sparker_events_total{event=%q} %d\n", n, counters[n])
			}
		}
	}
	return nil
}

// Source supplies the current registry and recorder at scrape time —
// typically rdd.Context.MergedMetrics, so each scrape sees freshly
// merged per-executor instruments.
type Source func() (*Registry, *Recorder)

// Handler returns an http.Handler serving the exposition.
func Handler(src Source) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reg, rec := src()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, reg, rec)
	})
}

// HealthzHandler answers liveness probes: 200 with a tiny JSON body.
// Mounted at /healthz on the metrics server and on sparker-serve.
func HealthzHandler() http.Handler {
	start := time.Now()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"status\":\"ok\",\"uptime_s\":%d}\n", int64(time.Since(start).Seconds()))
	})
}

// BuildInfoHandler serves the binary's embedded module build info
// (Go version, main module path/version, VCS stamp) as JSON — the
// first question in any incident is "what exactly is running here".
func BuildInfoHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			http.Error(w, "build info unavailable", http.StatusNotFound)
			return
		}
		out := struct {
			GoVersion string            `json:"go_version"`
			Path      string            `json:"path"`
			Main      string            `json:"main"`
			Version   string            `json:"version"`
			Settings  map[string]string `json:"settings,omitempty"`
		}{
			GoVersion: bi.GoVersion,
			Path:      bi.Path,
			Main:      bi.Main.Path,
			Version:   bi.Main.Version,
			Settings:  map[string]string{},
		}
		for _, s := range bi.Settings {
			// The VCS stamp and build mode are the useful forensic bits;
			// skip the noisy -ldflags/-gcflags echoes.
			if strings.HasPrefix(s.Key, "vcs") || s.Key == "GOARCH" || s.Key == "GOOS" {
				out.Settings[s.Key] = s.Value
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(out)
	})
}

// Server is a minimal metrics endpoint. Close shuts it down and waits
// for the serve goroutine to exit (the goroutine-leak tests gate
// this).
type Server struct {
	lis    net.Listener
	srv    *http.Server
	served chan struct{}
}

// NewServer listens on addr (e.g. "127.0.0.1:0") and serves the
// exposition at every path.
func NewServer(addr string, src Source) (*Server, error) {
	return serve(addr, Handler(src))
}

// NewMuxServer is NewServer grown into a small operations plane: the
// exposition stays at "/", /healthz and /buildinfo answer probes, and
// the caller can mount extra handlers (sparker-train mounts the rdd
// debug plane at /debug/).
func NewMuxServer(addr string, src Source, extra map[string]http.Handler) (*Server, error) {
	mux := http.NewServeMux()
	mux.Handle("/", Handler(src))
	mux.Handle("GET /healthz", HealthzHandler())
	mux.Handle("GET /buildinfo", BuildInfoHandler())
	for pattern, h := range extra {
		if h != nil {
			mux.Handle(pattern, h)
		}
	}
	return serve(addr, mux)
}

func serve(addr string, h http.Handler) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	s := &Server{
		lis:    lis,
		srv:    &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second},
		served: make(chan struct{}),
	}
	go func() {
		defer close(s.served)
		s.srv.Serve(lis)
	}()
	return s, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close stops the server and waits for its goroutine.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.served
	return err
}
