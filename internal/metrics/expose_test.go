package metrics

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram(HistRingStepNS)
	h.Observe(3)
	h.Observe(100)
	reg.Gauge(GaugeSendQueue).Set(7)
	rec := NewRecorder()
	rec.Add(PhaseAggReduce, 2*time.Second)
	rec.Inc(CounterRingFallback)

	var b strings.Builder
	if err := WritePrometheus(&b, reg, rec); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE sparker_ring_step_ns histogram",
		`sparker_ring_step_ns_bucket{le="4"} 1`,
		`sparker_ring_step_ns_bucket{le="128"} 2`,
		`sparker_ring_step_ns_bucket{le="+Inf"} 2`,
		"sparker_ring_step_ns_sum 103",
		"sparker_ring_step_ns_count 2",
		"# TYPE sparker_comm_send_queue gauge",
		"sparker_comm_send_queue 7",
		`sparker_phase_seconds{phase="agg-reduce"} 2`,
		`sparker_events_total{event="ring-fallback"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Exactly one +Inf series per histogram (the b>=63 fold must not
	// duplicate it).
	if n := strings.Count(out, `le="+Inf"`); n != 1 {
		t.Errorf("%d +Inf buckets, want 1", n)
	}
}

func TestWritePrometheusHugeSampleFoldsToInf(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("big").Observe(1 << 62) // lands in bucket 63
	var b strings.Builder
	if err := WritePrometheus(&b, reg, nil); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if n := strings.Count(out, `le="+Inf"`); n != 1 {
		t.Fatalf("%d +Inf series, want exactly 1:\n%s", n, out)
	}
	if !strings.Contains(out, `sparker_big_bucket{le="+Inf"} 1`) {
		t.Fatalf("bucket-63 sample not folded into +Inf:\n%s", out)
	}
}

func TestServerServesAndCloses(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram(HistRingStepNS).Observe(5)
	rec := NewRecorder()
	srv, err := NewServer("127.0.0.1:0", func() (*Registry, *Recorder) { return reg, rec })
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr()))
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "sparker_ring_step_ns_count 1") {
		t.Fatalf("scrape body:\n%s", body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	if err := srv.Close(); err != nil && err != http.ErrServerClosed {
		t.Fatalf("Close: %v", err)
	}
	// A second scrape must fail: the listener is gone.
	if _, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr())); err == nil {
		t.Fatal("server still serving after Close")
	}
}

// TestServerNoGoroutineLeak is the HTTP-handler half of the shutdown
// leak checklist: repeated open/close cycles must not grow the
// goroutine count.
func TestServerNoGoroutineLeak(t *testing.T) {
	src := func() (*Registry, *Recorder) { return NewRegistry(), NewRecorder() }
	base := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		srv, err := NewServer("127.0.0.1:0", src)
		if err != nil {
			t.Fatal(err)
		}
		srv.Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		// http.Server internals may take a beat to unwind.
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d after 10 server open/close cycles",
		base, runtime.NumGoroutine())
}
