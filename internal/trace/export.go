package trace

import (
	"sync"
	"sync/atomic"

	"sparker/internal/eventlog"
)

// MemExporter buffers spans in memory — the assertion target for tests
// (including the chaos suites, which check fallback spans on it).
type MemExporter struct {
	mu    sync.Mutex
	spans []Span
}

// ExportSpan implements Exporter.
func (m *MemExporter) ExportSpan(s Span) {
	m.mu.Lock()
	m.spans = append(m.spans, s)
	m.mu.Unlock()
}

// Spans returns a snapshot of everything exported so far.
func (m *MemExporter) Spans() []Span {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Span(nil), m.spans...)
}

// Named returns the exported spans with the given name.
func (m *MemExporter) Named(name string) []Span {
	var out []Span
	for _, s := range m.Spans() {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// LogExporter writes spans into the history log as "span" events, so
// one JSON-lines file holds both the coarse phase decomposition and
// the causal timeline sparker-analyze turns into a Perfetto trace.
type LogExporter struct {
	l *eventlog.Logger
}

// NewLogExporter wraps an event logger. The logger's own mutex makes
// this exporter concurrency-safe.
func NewLogExporter(l *eventlog.Logger) *LogExporter { return &LogExporter{l: l} }

// ExportSpan implements Exporter.
func (e *LogExporter) ExportSpan(s Span) {
	e.l.Emit(SpanToEvent(s))
}

// SpanToEvent converts a span to its history-log record.
func SpanToEvent(s Span) eventlog.Event {
	ev := eventlog.Event{
		Time:       s.Start,
		Kind:       eventlog.KindSpan,
		Name:       s.Name,
		DurationNS: s.End - s.Start,
		TraceID:    FormatID(s.TraceID),
		SpanID:     FormatID(s.SpanID),
	}
	if s.ParentID != 0 {
		ev.ParentID = FormatID(s.ParentID)
	}
	if len(s.Attrs) > 0 {
		ev.Attrs = make(map[string]string, len(s.Attrs))
		for _, a := range s.Attrs {
			ev.Attrs[a.Key] = a.Val
		}
	}
	return ev
}

// SpanFromEvent recovers a span from a history-log record. ok is false
// for non-span events and records with mangled IDs.
func SpanFromEvent(e eventlog.Event) (Span, bool) {
	if e.Kind != eventlog.KindSpan {
		return Span{}, false
	}
	s := Span{
		TraceID:  ParseID(e.TraceID),
		SpanID:   ParseID(e.SpanID),
		ParentID: ParseID(e.ParentID),
		Name:     e.Name,
		Start:    e.Time,
		End:      e.Time + e.DurationNS,
	}
	if s.TraceID == 0 || s.SpanID == 0 {
		return Span{}, false
	}
	for k, v := range e.Attrs {
		s.Attrs = append(s.Attrs, Attr{Key: k, Val: v})
	}
	return s, true
}

// AsyncExporter decouples span export from the instrumented path: spans
// are handed to a buffered channel and a single goroutine forwards them
// to the wrapped exporter. When the buffer is full spans are dropped
// (and counted) rather than blocking a ring step. Close drains the
// buffer and stops the goroutine; the goroutine-leak tests gate this.
type AsyncExporter struct {
	next    Exporter
	ch      chan Span
	quit    chan struct{}
	done    chan struct{}
	dropped atomic.Int64
	once    sync.Once
}

// NewAsyncExporter starts the forwarding goroutine. buf <= 0 gets a
// reasonable default.
func NewAsyncExporter(next Exporter, buf int) *AsyncExporter {
	if buf <= 0 {
		buf = 1024
	}
	a := &AsyncExporter{
		next: next,
		ch:   make(chan Span, buf),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	go a.run()
	return a
}

func (a *AsyncExporter) run() {
	defer close(a.done)
	for {
		select {
		case s := <-a.ch:
			a.next.ExportSpan(s)
		case <-a.quit:
			// Drain whatever made it into the buffer before quit.
			for {
				select {
				case s := <-a.ch:
					a.next.ExportSpan(s)
				default:
					return
				}
			}
		}
	}
}

// ExportSpan implements Exporter. Never blocks and never panics after
// Close — a closed exporter just counts the span as dropped.
func (a *AsyncExporter) ExportSpan(s Span) {
	select {
	case <-a.quit:
		a.dropped.Add(1)
	default:
		select {
		case a.ch <- s:
		default:
			a.dropped.Add(1)
		}
	}
}

// Dropped reports how many spans were discarded due to backpressure or
// post-Close export.
func (a *AsyncExporter) Dropped() int64 { return a.dropped.Load() }

// Close drains buffered spans into the wrapped exporter and stops the
// forwarding goroutine. Idempotent; returns after the goroutine exits.
func (a *AsyncExporter) Close() {
	a.once.Do(func() { close(a.quit) })
	<-a.done
}
