package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"sparker/internal/eventlog"
)

// Chrome trace-event export: converts the span records of a history
// log into the Chrome trace-event JSON format, which Perfetto
// (ui.perfetto.dev) and chrome://tracing load directly. Spans land on
// one track ("thread") per executor plus a driver track; Perfetto
// nests same-track "X" events by time containment, which reproduces
// the job → stage → task → ring-step hierarchy visually, while the
// args carry the exact trace/span/parent IDs for cross-track stitches.

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// ChromeSummary describes an exported trace — the validation side of
// `sparker-analyze -chrome-trace`.
type ChromeSummary struct {
	// Spans is the number of span records converted.
	Spans int
	// Traces is the number of distinct trace IDs.
	Traces int
	// Tracks lists the track names in tid order (driver first).
	Tracks []string
	// SpansPerTrack maps track name to span count.
	SpansPerTrack map[string]int
	// RingSteps counts "ring-step" spans.
	RingSteps int
	// CrossTrackParents counts spans whose parent lives on a different
	// track — the driver→executor and executor→executor stitches that
	// prove cross-transport propagation worked.
	CrossTrackParents int
	// Orphans counts spans with a parent ID that is absent from the log
	// (expected only for dropped/async-lost spans).
	Orphans int
}

// trackOf returns the track name for a span: executors get one track
// each (from the "exec" attribute stamped on task spans and everything
// under them); spans without an executor are driver-side.
func trackOf(s *Span) string {
	if v, ok := s.Attr("exec"); ok {
		return "executor " + v
	}
	return "driver"
}

// WriteChromeTrace converts the span records of events into Chrome
// trace-event JSON on w and returns a summary for validation.
func WriteChromeTrace(w io.Writer, events []eventlog.Event) (*ChromeSummary, error) {
	var spans []Span
	for _, e := range events {
		if s, ok := SpanFromEvent(e); ok {
			spans = append(spans, s)
		}
	}
	if len(spans) == 0 {
		return nil, fmt.Errorf("trace: no span records in log (run with tracing enabled)")
	}

	// Stable ordering: by start time, then span id.
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].SpanID < spans[j].SpanID
	})
	base := spans[0].Start

	// Assign tids: driver is 0, executor tracks in sorted name order.
	trackSet := map[string]bool{}
	byID := map[uint64]*Span{}
	for i := range spans {
		trackSet[trackOf(&spans[i])] = true
		byID[spans[i].SpanID] = &spans[i]
	}
	tracks := make([]string, 0, len(trackSet))
	for t := range trackSet {
		if t != "driver" {
			tracks = append(tracks, t)
		}
	}
	sort.Strings(tracks)
	tracks = append([]string{"driver"}, tracks...)
	tid := map[string]int{}
	for i, t := range tracks {
		tid[t] = i
	}

	sum := &ChromeSummary{
		Spans:         len(spans),
		Tracks:        tracks,
		SpansPerTrack: map[string]int{},
	}
	traceIDs := map[uint64]bool{}

	out := chromeFile{DisplayTimeUnit: "ms"}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", PID: 0,
		Args: map[string]any{"name": "sparker"},
	})
	for _, t := range tracks {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 0, TID: tid[t],
			Args: map[string]any{"name": t},
		})
	}

	for i := range spans {
		s := &spans[i]
		track := trackOf(s)
		sum.SpansPerTrack[track]++
		traceIDs[s.TraceID] = true
		if s.Name == "ring-step" {
			sum.RingSteps++
		}
		if s.ParentID != 0 {
			if p, ok := byID[s.ParentID]; !ok {
				sum.Orphans++
			} else if trackOf(p) != track {
				sum.CrossTrackParents++
			}
		}
		args := map[string]any{
			"trace": FormatID(s.TraceID),
			"span":  FormatID(s.SpanID),
		}
		if s.ParentID != 0 {
			args["parent"] = FormatID(s.ParentID)
		}
		for _, a := range s.Attrs {
			args[a.Key] = a.Val
		}
		dur := float64(s.End-s.Start) / 1e3
		if dur <= 0 {
			dur = 0.001 // keep instant spans visible
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: s.Name,
			Cat:  "span",
			Ph:   "X",
			PID:  0,
			TID:  tid[track],
			TS:   float64(s.Start-base) / 1e3,
			Dur:  dur,
			Args: args,
		})
	}
	sum.Traces = len(traceIDs)

	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		return nil, fmt.Errorf("trace: writing chrome trace: %w", err)
	}
	return sum, nil
}
