package trace

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"sparker/internal/eventlog"
)

func TestSpanBasics(t *testing.T) {
	exp := &MemExporter{}
	tr := New(exp)
	root := tr.StartRoot("job")
	root.SetAttr("k", "v")
	root.SetInt("n", 42)
	child := tr.StartSpan("stage", root.Context())
	child.End()
	root.End()

	spans := exp.Spans()
	if len(spans) != 2 {
		t.Fatalf("exported %d spans, want 2", len(spans))
	}
	// Export order is end order: child first.
	c, r := spans[0], spans[1]
	if c.Name != "stage" || r.Name != "job" {
		t.Fatalf("span names: %q, %q", c.Name, r.Name)
	}
	if c.TraceID != r.TraceID {
		t.Errorf("child trace %x != root trace %x", c.TraceID, r.TraceID)
	}
	if c.ParentID != r.SpanID {
		t.Errorf("child parent %x != root span %x", c.ParentID, r.SpanID)
	}
	if r.ParentID != 0 {
		t.Errorf("root has parent %x", r.ParentID)
	}
	if v, ok := r.Attr("k"); !ok || v != "v" {
		t.Errorf("attr k = %q, %v", v, ok)
	}
	if v, ok := r.Attr("n"); !ok || v != "42" {
		t.Errorf("attr n = %q, %v", v, ok)
	}
	if r.End < r.Start {
		t.Errorf("end %d before start %d", r.End, r.Start)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	exp := &MemExporter{}
	tr := New(exp)
	s := tr.StartRoot("once")
	s.End()
	s.End()
	s.EndErr(errors.New("late"))
	if n := len(exp.Spans()); n != 1 {
		t.Fatalf("exported %d spans, want 1", n)
	}
}

func TestEndErrRecordsError(t *testing.T) {
	exp := &MemExporter{}
	tr := New(exp)
	s := tr.StartRoot("fail")
	s.EndErr(errors.New("boom"))
	got := exp.Spans()[0]
	if v, ok := got.Attr("error"); !ok || v != "boom" {
		t.Fatalf("error attr = %q, %v", v, ok)
	}
}

func TestNilTracerNoops(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	s := tr.StartRoot("x")
	if s != nil {
		t.Fatal("nil tracer returned a live span")
	}
	// Every method must be callable on the nil span.
	s.SetAttr("a", "b")
	s.SetInt("c", 1)
	s.SetHex("d", 2)
	s.End()
	s.EndErr(errors.New("e"))
	if s.ID() != 0 {
		t.Fatal("nil span has an ID")
	}
	if s.Context().Valid() {
		t.Fatal("nil span has a valid context")
	}
}

func TestIDRoundTrip(t *testing.T) {
	for _, id := range []uint64{1, 0xdeadbeef, ^uint64(0)} {
		s := FormatID(id)
		if len(s) != 16 {
			t.Errorf("FormatID(%x) = %q, want 16 chars", id, s)
		}
		if got := ParseID(s); got != id {
			t.Errorf("ParseID(FormatID(%x)) = %x", id, got)
		}
	}
	if ParseID("not-hex") != 0 {
		t.Error("ParseID accepted garbage")
	}
}

func TestContextPropagation(t *testing.T) {
	tr := New(&MemExporter{})
	s := tr.StartRoot("root")
	ctx := NewContext(context.Background(), tr, s.Context())
	gt, gsc := FromContext(ctx)
	if gt != tr || gsc != s.Context() {
		t.Fatal("context round-trip lost tracer or span")
	}

	// WithSpan rebinds the current span.
	s2 := tr.StartSpan("child", s.Context())
	ctx2 := WithSpan(ctx, s2)
	_, gsc2 := FromContext(ctx2)
	if gsc2 != s2.Context() {
		t.Fatal("WithSpan did not rebind the span")
	}

	// Uninstrumented context yields zeros, and installing nothing
	// returns the same context.
	bg := context.Background()
	if nt, nsc := FromContext(bg); nt != nil || nsc.Valid() {
		t.Fatal("background context carries trace state")
	}
	if NewContext(bg, nil, SpanContext{}) != bg {
		t.Fatal("empty NewContext allocated a new context")
	}
}

func TestSpanEventRoundTrip(t *testing.T) {
	s := Span{
		TraceID:  0x1111,
		SpanID:   0x2222,
		ParentID: 0x3333,
		Name:     "task",
		Start:    1000,
		End:      5000,
		Attrs:    []Attr{{Key: "exec", Val: "2"}},
	}
	e := SpanToEvent(s)
	if e.Kind != eventlog.KindSpan {
		t.Fatalf("event kind %q", e.Kind)
	}
	got, ok := SpanFromEvent(e)
	if !ok {
		t.Fatal("SpanFromEvent rejected its own encoding")
	}
	if got.TraceID != s.TraceID || got.SpanID != s.SpanID || got.ParentID != s.ParentID ||
		got.Name != s.Name || got.Start != s.Start || got.End != s.End {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, s)
	}
	if v, _ := got.Attr("exec"); v != "2" {
		t.Fatalf("attr lost: %+v", got.Attrs)
	}
	if _, ok := SpanFromEvent(eventlog.Event{Kind: "phase"}); ok {
		t.Fatal("non-span event decoded as span")
	}
}

func TestLogExporterWritesSpans(t *testing.T) {
	var buf bytes.Buffer
	l := eventlog.New(&buf)
	tr := New(NewLogExporter(l))
	s := tr.StartRoot("op")
	s.End()
	l.Flush()

	events, err := eventlog.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for _, e := range events {
		if _, ok := SpanFromEvent(e); ok {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("log contains %d span records, want 1", n)
	}
}

func TestAsyncExporterDeliversAndCloses(t *testing.T) {
	mem := &MemExporter{}
	a := NewAsyncExporter(mem, 16)
	tr := New(a)
	const n = 50
	for i := 0; i < n; i++ {
		tr.StartRoot(fmt.Sprint("s", i)).End()
	}
	a.Close()
	if got := len(mem.Spans()) + int(a.Dropped()); got != n {
		t.Fatalf("delivered+dropped = %d, want %d", got, n)
	}
	// Post-close exports must neither panic nor deliver.
	before := len(mem.Spans())
	a.ExportSpan(Span{TraceID: 1, SpanID: 1, Name: "late"})
	if len(mem.Spans()) != before {
		t.Fatal("export after Close delivered a span")
	}
	a.Close() // idempotent
}

// TestAsyncExporterNoGoroutineLeak verifies Close tears the forwarding
// goroutine down — the exporter-shutdown leak check of the PR's test
// checklist.
func TestAsyncExporterNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		a := NewAsyncExporter(&MemExporter{}, 4)
		a.ExportSpan(Span{TraceID: 1, SpanID: 1})
		a.Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d after 20 exporter open/close cycles",
		base, runtime.NumGoroutine())
}

func TestAsyncExporterConcurrent(t *testing.T) {
	mem := &MemExporter{}
	a := NewAsyncExporter(mem, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				a.ExportSpan(Span{TraceID: uint64(g + 1), SpanID: uint64(i + 1)})
			}
		}(g)
	}
	wg.Wait()
	a.Close()
	if got := int64(len(mem.Spans())) + a.Dropped(); got != 800 {
		t.Fatalf("delivered+dropped = %d, want 800", got)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := New(&MemExporter{})
	exp := tr.exp.(*MemExporter)

	// driver: stage → two executor tasks → one ring-step each.
	stage := tr.StartSpan("stage", SpanContext{})
	for e := 0; e < 2; e++ {
		task := tr.StartSpan("task", stage.Context())
		task.SetInt("exec", int64(e))
		step := tr.StartSpan("ring-step", task.Context())
		step.SetInt("exec", int64(e))
		step.End()
		task.End()
	}
	stage.End()

	var events []eventlog.Event
	for _, s := range exp.Spans() {
		events = append(events, SpanToEvent(s))
	}
	var buf bytes.Buffer
	sum, err := WriteChromeTrace(&buf, events)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Spans != 5 {
		t.Errorf("Spans = %d, want 5", sum.Spans)
	}
	if sum.Traces != 1 {
		t.Errorf("Traces = %d, want 1", sum.Traces)
	}
	wantTracks := []string{"driver", "executor 0", "executor 1"}
	if len(sum.Tracks) != len(wantTracks) {
		t.Fatalf("Tracks = %v, want %v", sum.Tracks, wantTracks)
	}
	for i, w := range wantTracks {
		if sum.Tracks[i] != w {
			t.Fatalf("Tracks = %v, want %v", sum.Tracks, wantTracks)
		}
	}
	if sum.RingSteps != 2 {
		t.Errorf("RingSteps = %d, want 2", sum.RingSteps)
	}
	// The two tasks parent on the driver-track stage: 2 stitches.
	if sum.CrossTrackParents != 2 {
		t.Errorf("CrossTrackParents = %d, want 2", sum.CrossTrackParents)
	}
	if sum.Orphans != 0 {
		t.Errorf("Orphans = %d, want 0", sum.Orphans)
	}
	out := buf.String()
	for _, want := range []string{`"traceEvents"`, `"ph":"X"`, `"ph":"M"`, "ring-step"} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome JSON missing %s", want)
		}
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteChromeTrace(&buf, []eventlog.Event{{Kind: "phase"}}); err == nil {
		t.Fatal("expected an error for a span-free log")
	}
}
