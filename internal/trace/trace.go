// Package trace is Sparker's low-overhead distributed span tracer: the
// per-task / per-ring-step refinement of the coarse phase accounting in
// internal/metrics. The paper's methodology starts from history-log
// analysis (Section 2); spans extend that log from four phase sums to a
// causal timeline — driver job → stage → executor task → collective
// ring step — stitched across the transport by propagated span IDs
// (task envelopes carry the stage span, ring frames the sender's step
// span).
//
// Everything is nil-safe: a nil *Tracer and the nil *ActiveSpan it
// returns are true no-ops, so instrumented hot paths pay one pointer
// check when tracing is off (the PR 1 zero-allocation benchmarks gate
// this — see DESIGN.md §10).
package trace

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// SpanContext identifies a span inside a trace — the part of a span
// that crosses process and transport boundaries.
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether sc identifies a real span.
func (sc SpanContext) Valid() bool { return sc.TraceID != 0 && sc.SpanID != 0 }

// Attr is one key/value annotation on a span. Values are strings so
// spans serialize losslessly through the JSON-lines history log.
type Attr struct {
	Key string `json:"k"`
	Val string `json:"v"`
}

// Span is one finished timed operation.
type Span struct {
	TraceID  uint64
	SpanID   uint64
	ParentID uint64
	Name     string
	// Start and End are wall-clock UnixNano timestamps.
	Start int64
	End   int64
	Attrs []Attr
}

// Duration returns the span's elapsed time.
func (s *Span) Duration() time.Duration { return time.Duration(s.End - s.Start) }

// Attr returns the value of the named attribute.
func (s *Span) Attr(key string) (string, bool) {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}

// Context returns the span's SpanContext.
func (s *Span) Context() SpanContext { return SpanContext{TraceID: s.TraceID, SpanID: s.SpanID} }

// Exporter receives finished spans. Implementations must be safe for
// concurrent use: driver and every executor goroutine export through
// the same exporter.
type Exporter interface {
	ExportSpan(s Span)
}

// idCounter seeds span/trace IDs process-wide. The golden-ratio stride
// keeps successive IDs well spread without a lock or an RNG in the
// span-start path.
var idCounter atomic.Uint64

func init() { idCounter.Store(uint64(time.Now().UnixNano()) | 1) }

func nextID() uint64 {
	for {
		if id := idCounter.Add(0x9E3779B97F4A7C15); id != 0 {
			return id
		}
	}
}

// Tracer creates spans and hands finished ones to its exporter. A nil
// *Tracer is a valid disabled tracer: every method no-ops.
type Tracer struct {
	exp Exporter
}

// New returns a tracer exporting to exp. A nil exp yields a tracer
// whose spans are timed but dropped (useful for overhead measurement).
func New(exp Exporter) *Tracer { return &Tracer{exp: exp} }

// Exporter returns the tracer's exporter (nil on a nil or exporterless
// tracer) — used to tee an existing tracer into another sink.
func (t *Tracer) Exporter() Exporter {
	if t == nil {
		return nil
	}
	return t.exp
}

// MultiExporter fans each finished span out to every non-nil exporter,
// in order. Tee builds one, flattening nils and single elements.
type MultiExporter []Exporter

// ExportSpan implements Exporter.
func (m MultiExporter) ExportSpan(s Span) {
	for _, e := range m {
		if e != nil {
			e.ExportSpan(s)
		}
	}
}

// Tee combines exporters into one, dropping nils. Returns nil when
// none remain, and the exporter itself when exactly one does.
func Tee(exps ...Exporter) Exporter {
	var m MultiExporter
	for _, e := range exps {
		if e != nil {
			m = append(m, e)
		}
	}
	switch len(m) {
	case 0:
		return nil
	case 1:
		return m[0]
	}
	return m
}

// Enabled reports whether spans will actually be recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// StartRoot opens a span beginning a fresh trace.
func (t *Tracer) StartRoot(name string) *ActiveSpan {
	return t.StartSpan(name, SpanContext{})
}

// StartSpan opens a span. With a valid parent the span joins the
// parent's trace; otherwise it roots a new one. Returns nil (a no-op
// handle) when t is nil.
func (t *Tracer) StartSpan(name string, parent SpanContext) *ActiveSpan {
	if t == nil {
		return nil
	}
	a := &ActiveSpan{t: t}
	a.s.Name = name
	a.s.SpanID = nextID()
	if parent.Valid() {
		a.s.TraceID = parent.TraceID
		a.s.ParentID = parent.SpanID
	} else {
		a.s.TraceID = nextID()
	}
	a.s.Start = time.Now().UnixNano()
	return a
}

// ActiveSpan is an in-flight span. It is owned by the goroutine that
// started it; Context() may be shared (it is an immutable value), but
// SetAttr/End must stay on the owner. A nil *ActiveSpan no-ops.
type ActiveSpan struct {
	t     *Tracer
	s     Span
	ended atomic.Bool
}

// Context returns the span's identity for propagation.
func (a *ActiveSpan) Context() SpanContext {
	if a == nil {
		return SpanContext{}
	}
	return a.s.Context()
}

// ID returns the span's own ID (0 on a nil span) — the value embedded
// in ring frames.
func (a *ActiveSpan) ID() uint64 {
	if a == nil {
		return 0
	}
	return a.s.SpanID
}

// SetAttr annotates the span.
func (a *ActiveSpan) SetAttr(key, val string) {
	if a == nil {
		return
	}
	a.s.Attrs = append(a.s.Attrs, Attr{Key: key, Val: val})
}

// SetInt annotates the span with an integer value.
func (a *ActiveSpan) SetInt(key string, val int64) {
	if a == nil {
		return
	}
	a.SetAttr(key, fmt.Sprintf("%d", val))
}

// SetHex annotates the span with a 64-bit ID in the same hex form the
// history log uses for span IDs (so remote-span links grep cleanly).
func (a *ActiveSpan) SetHex(key string, val uint64) {
	if a == nil || val == 0 {
		return
	}
	a.SetAttr(key, FormatID(val))
}

// End closes the span and exports it. Idempotent; safe on nil.
func (a *ActiveSpan) End() {
	if a == nil || a.ended.Swap(true) {
		return
	}
	a.s.End = time.Now().UnixNano()
	if a.t.exp != nil {
		a.t.exp.ExportSpan(a.s)
	}
}

// EndErr records err (when non-nil) as the span's "error" attribute,
// then ends it.
func (a *ActiveSpan) EndErr(err error) {
	if a == nil {
		return
	}
	if err != nil {
		a.SetAttr("error", err.Error())
	}
	a.End()
}

// FormatID renders a span/trace ID the way the history log stores it.
func FormatID(id uint64) string { return fmt.Sprintf("%016x", id) }

// ParseID parses FormatID output; 0 means absent/invalid.
func ParseID(s string) uint64 {
	var id uint64
	if _, err := fmt.Sscanf(s, "%016x", &id); err != nil {
		return 0
	}
	return id
}

// --- context propagation ----------------------------------------------

type ctxKey struct{}

type carrier struct {
	t  *Tracer
	sc SpanContext
}

// NewContext returns ctx carrying tracer t and current span sc, the
// form instrumented layers (collectives, stages) read back with
// FromContext. With a nil tracer and invalid span, ctx is returned
// unchanged so the disabled path adds no context allocation.
func NewContext(ctx context.Context, t *Tracer, sc SpanContext) context.Context {
	if t == nil && !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, carrier{t: t, sc: sc})
}

// WithSpan rebinds the current span of a context that already carries a
// tracer (keeping that tracer), or installs a's own tracer.
func WithSpan(ctx context.Context, a *ActiveSpan) context.Context {
	if a == nil {
		return ctx
	}
	return NewContext(ctx, a.t, a.Context())
}

// FromContext extracts the tracer and current span from ctx. Both are
// zero when the context is uninstrumented.
func FromContext(ctx context.Context) (*Tracer, SpanContext) {
	c, _ := ctx.Value(ctxKey{}).(carrier)
	return c.t, c.sc
}
