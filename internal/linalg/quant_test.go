package linalg

// Property tests for the quantization kernels: exhaustive binary16
// round-trip over the full 16-bit space, directed rounding cases,
// MaxAbs against the naive scan, and ScatterAdd against the naive
// scatter loop.

import (
	"math"
	"math/rand"
	"testing"
)

// TestF16ExhaustiveRoundTrip expands every one of the 65536 half
// patterns to float64 and converts back: every non-NaN pattern must
// survive bit-exactly (each half value is exactly representable in
// binary64), and every NaN pattern must come back as some half NaN.
func TestF16ExhaustiveRoundTrip(t *testing.T) {
	for h := 0; h <= 0xFFFF; h++ {
		bits := uint16(h)
		f := F16ToF64(bits)
		back := F16FromF64(f)
		isNaN := bits&0x7C00 == 0x7C00 && bits&0x03FF != 0
		if isNaN {
			if !math.IsNaN(f) {
				t.Fatalf("half %#04x: expanded to %v, want NaN", bits, f)
			}
			if back&0x7C00 != 0x7C00 || back&0x03FF == 0 {
				t.Fatalf("half NaN %#04x round-tripped to non-NaN %#04x", bits, back)
			}
			continue
		}
		if back != bits {
			t.Fatalf("half %#04x (%v) round-tripped to %#04x", bits, f, back)
		}
	}
}

// TestF16FromF64Rounding pins the rounding and boundary behaviour:
// round-to-nearest-even ties, overflow to Inf, subnormal underflow.
func TestF16FromF64Rounding(t *testing.T) {
	cases := []struct {
		in   float64
		want uint16
	}{
		{0, 0x0000},
		{math.Copysign(0, -1), 0x8000},
		{1, 0x3C00},
		{-2, 0xC000},
		{65504, 0x7BFF}, // largest finite half
		{65520, 0x7C00}, // halfway to the next step: rounds to Inf
		{1e6, 0x7C00},   // overflow
		{math.Inf(1), 0x7C00},
		{math.Inf(-1), 0xFC00},
		{math.Pow(2, -24), 0x0001},       // smallest subnormal
		{math.Pow(2, -25), 0x0000},       // tie with zero: even mantissa wins
		{math.Pow(2, -25) * 3, 0x0002},   // tie between 1 and 2: even wins
		{1 + math.Pow(2, -11), 0x3C00},   // tie between 0x3C00/0x3C01: even wins
		{1 + 3*math.Pow(2, -11), 0x3C02}, // tie between 0x3C01/0x3C02: even wins
		{1 + math.Pow(2, -10), 0x3C01},   // exactly one half-ulp above the tie
	}
	for _, tc := range cases {
		if got := F16FromF64(tc.in); got != tc.want {
			t.Errorf("F16FromF64(%g) = %#04x, want %#04x", tc.in, got, tc.want)
		}
	}
	if got := F16FromF64(math.NaN()); got&0x7C00 != 0x7C00 || got&0x03FF == 0 {
		t.Errorf("F16FromF64(NaN) = %#04x, want a half NaN", got)
	}
}

// TestF16RelativeError bounds the conversion error on random in-range
// values: for normal halves the relative error of round-to-nearest is
// at most 2⁻¹¹ (half a ulp of the 11-bit significand).
func TestF16RelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100000; i++ {
		// Uniform in the normal half range [2^-14, 65504).
		v := math.Ldexp(1+rng.Float64(), rng.Intn(30)-14)
		if rng.Intn(2) == 0 {
			v = -v
		}
		got := F16ToF64(F16FromF64(v))
		if rel := math.Abs(got-v) / math.Abs(v); rel > math.Pow(2, -11) {
			t.Fatalf("F16 round-trip of %g gave %g: relative error %g > 2^-11", v, got, rel)
		}
	}
}

// TestMaxAbs checks the unrolled scan against the naive loop across
// lengths that exercise every tail case, plus NaN propagation-free
// behaviour on clean inputs.
func TestMaxAbs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 63, 64, 65, 1000} {
		x := make([]float64, n)
		want := 0.0
		for i := range x {
			x[i] = rng.NormFloat64() * 100
			want = math.Max(want, math.Abs(x[i]))
		}
		if got := MaxAbs(x); got != want {
			t.Errorf("MaxAbs(len %d) = %g, want %g", n, got, want)
		}
	}
	if got := MaxAbs([]float64{-7, 3}); got != 7 {
		t.Errorf("MaxAbs([-7,3]) = %g, want 7", got)
	}
}

// TestScatterAdd checks the kernel against the naive scatter loop and
// the length-mismatch panic.
func TestScatterAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const dim, nnz = 512, 64
	dst := make([]float64, dim)
	want := make([]float64, dim)
	for i := range dst {
		dst[i] = rng.NormFloat64()
		want[i] = dst[i]
	}
	idx := make([]int32, nnz)
	vals := make([]float64, nnz)
	for i := range idx {
		idx[i] = int32(rng.Intn(dim))
		vals[i] = rng.NormFloat64()
		want[idx[i]] += vals[i]
	}
	ScatterAdd(dst, idx, vals)
	for i := range dst {
		if math.Float64bits(dst[i]) != math.Float64bits(want[i]) {
			t.Fatalf("element %d: %v, want %v", i, dst[i], want[i])
		}
	}

	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	ScatterAdd(dst, idx[:2], vals[:3])
}
