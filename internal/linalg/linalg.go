// Package linalg provides the small dense/sparse vector kernel set
// MLlib's optimizers need: dot products, axpy updates and norms over
// dense weight vectors and sparse feature vectors.
package linalg

import (
	"fmt"
	"math"

	"sparker/internal/serde"
)

// SparseVector is a sparse feature vector: parallel index/value arrays
// over a fixed dimensionality. Indices must be strictly increasing.
type SparseVector struct {
	Dim     int
	Indices []int32
	Values  []float64
}

// NewSparse validates and builds a sparse vector.
func NewSparse(dim int, indices []int32, values []float64) (SparseVector, error) {
	if len(indices) != len(values) {
		return SparseVector{}, fmt.Errorf("linalg: %d indices but %d values", len(indices), len(values))
	}
	prev := int32(-1)
	for _, ix := range indices {
		if ix <= prev {
			return SparseVector{}, fmt.Errorf("linalg: indices not strictly increasing at %d", ix)
		}
		if int(ix) >= dim {
			return SparseVector{}, fmt.Errorf("linalg: index %d out of dim %d", ix, dim)
		}
		prev = ix
	}
	return SparseVector{Dim: dim, Indices: indices, Values: values}, nil
}

// NNZ returns the stored (structurally non-zero) entry count.
func (v SparseVector) NNZ() int { return len(v.Indices) }

// At returns element i (O(log nnz)).
func (v SparseVector) At(i int) float64 {
	lo, hi := 0, len(v.Indices)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case v.Indices[mid] == int32(i):
			return v.Values[mid]
		case v.Indices[mid] < int32(i):
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return 0
}

// Dense expands to a dense slice.
func (v SparseVector) Dense() []float64 {
	out := make([]float64, v.Dim)
	for i, ix := range v.Indices {
		out[ix] = v.Values[i]
	}
	return out
}

// Dot computes wᵀx for dense w and sparse x.
func Dot(w []float64, x SparseVector) float64 {
	var s float64
	for i, ix := range x.Indices {
		s += w[ix] * x.Values[i]
	}
	return s
}

// Axpy performs y += alpha * x for sparse x, dense y.
func Axpy(alpha float64, x SparseVector, y []float64) {
	for i, ix := range x.Indices {
		y[ix] += alpha * x.Values[i]
	}
}

// The dense BLAS-1 kernels below are unrolled 4-wide with a scalar
// tail — the pattern the gradient inner loop hits millions of times per
// pass. Reslicing y to len(x) after the length check lets the compiler
// drop the per-element bounds checks inside the unrolled body.

// AxpyDense performs y += alpha * x for dense x and y.
func AxpyDense(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AxpyDense length mismatch")
	}
	y = y[:len(x)]
	i := 0
	for ; i+4 <= len(x); i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

// AddAssign performs dst += src elementwise, in place — the reduction
// kernel of F64 aggregators and the collective layer's fused
// decode-reduce. Element adds are independent, so unrolling preserves
// bitwise results.
func AddAssign(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("linalg: AddAssign length mismatch %d vs %d", len(dst), len(src)))
	}
	src = src[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		dst[i] += src[i]
		dst[i+1] += src[i+1]
		dst[i+2] += src[i+2]
		dst[i+3] += src[i+3]
	}
	for ; i < len(dst); i++ {
		dst[i] += src[i]
	}
}

// Scal scales x in place.
func Scal(alpha float64, x []float64) {
	i := 0
	for ; i+4 <= len(x); i += 4 {
		x[i] *= alpha
		x[i+1] *= alpha
		x[i+2] *= alpha
		x[i+3] *= alpha
	}
	for ; i < len(x); i++ {
		x[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm of dense x. Four independent
// accumulators keep the multiply-add chains pipelined; the summation
// order therefore differs from a serial loop by normal float
// re-association.
func Norm2(x []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s0 += x[i] * x[i]
		s1 += x[i+1] * x[i+1]
		s2 += x[i+2] * x[i+2]
		s3 += x[i+3] * x[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < len(x); i++ {
		s += x[i] * x[i]
	}
	return math.Sqrt(s)
}

// DotDense computes xᵀy for dense vectors, with the same 4-accumulator
// unroll as Norm2.
func DotDense(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("linalg: DotDense length mismatch")
	}
	y = y[:len(x)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < len(x); i++ {
		s += x[i] * y[i]
	}
	return s
}

// --- serde integration --------------------------------------------------

// MarshalBinaryTo implements serde.Marshaler.
func (v SparseVector) MarshalBinaryTo(dst []byte) []byte {
	dst = serde.AppendInt(dst, v.Dim)
	dst = serde.AppendInt(dst, len(v.Indices))
	for _, ix := range v.Indices {
		dst = serde.AppendInt(dst, int(ix))
	}
	return serde.AppendFloat64s(dst, v.Values)
}

// UnmarshalBinaryFrom implements serde.Unmarshaler.
func (v *SparseVector) UnmarshalBinaryFrom(src []byte) (int, error) {
	if len(src) < 16 {
		return 0, fmt.Errorf("linalg: short SparseVector")
	}
	v.Dim = serde.IntAt(src, 0)
	n := serde.IntAt(src, 8)
	need := 16 + 16*n
	if n < 0 || len(src) < need {
		return 0, fmt.Errorf("linalg: truncated SparseVector (nnz=%d)", n)
	}
	v.Indices = make([]int32, n)
	v.Values = make([]float64, n)
	off := 16
	for i := 0; i < n; i++ {
		v.Indices[i] = int32(serde.IntAt(src, off))
		off += 8
	}
	for i := 0; i < n; i++ {
		v.Values[i] = serde.Float64At(src, off)
		off += 8
	}
	return off, nil
}

func init() {
	serde.RegisterSelf(SparseVector{}, func() serde.Unmarshaler { return new(SparseVector) })
}
