package linalg

// Quantization kernels for the collective layer's wire codecs: IEEE 754
// binary16 (half) conversion with round-to-nearest-even, the max-|x|
// scan that derives per-chunk scales, and the scatter-add that reduces
// sparse top-k frames without densifying them first.

import "math"

// F16FromF64 converts v to IEEE 754 binary16 bits, rounding to nearest
// even. Values beyond ±65504 (half's largest finite) become ±Inf; NaN
// stays NaN. The conversion narrows through binary32 first, which
// cannot change the result by more than one ulp of the half format and
// keeps the kernel branch-light.
func F16FromF64(v float64) uint16 {
	b := math.Float32bits(float32(v))
	sign := uint16((b >> 16) & 0x8000)
	exp := int((b >> 23) & 0xFF)
	mant := b & 0x007FFFFF

	if exp == 0xFF { // Inf / NaN
		if mant != 0 {
			return sign | 0x7E00
		}
		return sign | 0x7C00
	}
	e := exp - 127 + 15
	if e >= 0x1F {
		return sign | 0x7C00 // overflow → ±Inf
	}
	if e <= 0 {
		// Half subnormal (or underflow to signed zero).
		if e < -10 {
			return sign
		}
		mant |= 0x00800000 // make the implicit leading 1 explicit
		shift := uint(14 - e)
		half := uint16(mant >> shift)
		rem := mant & ((1 << shift) - 1)
		halfway := uint32(1) << (shift - 1)
		if rem > halfway || (rem == halfway && half&1 == 1) {
			half++
		}
		return sign | half
	}
	half := sign | uint16(e)<<10 | uint16(mant>>13)
	rem := mant & 0x1FFF
	// Round to nearest even; a mantissa carry rolls into the exponent,
	// which is exactly the right rounding (up to Inf at the top).
	if rem > 0x1000 || (rem == 0x1000 && half&1 == 1) {
		half++
	}
	return half
}

// F16ToF64 expands IEEE 754 binary16 bits to float64 (exact: every half
// value is representable in binary64).
func F16ToF64(h uint16) float64 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1F
	mant := uint32(h & 0x03FF)
	var b uint32
	switch {
	case exp == 0x1F: // Inf / NaN
		b = sign | 0x7F800000 | mant<<13
	case exp == 0:
		if mant == 0 {
			b = sign // ±0
		} else {
			// Normalize the subnormal: shift the mantissa up until its
			// leading bit reaches the implicit-1 position, adjusting the
			// binary32 exponent per shift.
			e := uint32(113) // -14 + 127
			for mant&0x0400 == 0 {
				mant <<= 1
				e--
			}
			b = sign | e<<23 | (mant&0x03FF)<<13
		}
	default:
		b = sign | (exp-15+127)<<23 | mant<<13
	}
	return float64(math.Float32frombits(b))
}

// MaxAbs returns the largest |x[i]|, 0 for an empty slice — the
// per-chunk scale scan of the quantizing codecs. Four independent
// accumulators keep the compare chains pipelined; max is associative,
// so the unroll is exact.
func MaxAbs(x []float64) float64 {
	var m0, m1, m2, m3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		m0 = math.Max(m0, math.Abs(x[i]))
		m1 = math.Max(m1, math.Abs(x[i+1]))
		m2 = math.Max(m2, math.Abs(x[i+2]))
		m3 = math.Max(m3, math.Abs(x[i+3]))
	}
	m := math.Max(math.Max(m0, m1), math.Max(m2, m3))
	for ; i < len(x); i++ {
		m = math.Max(m, math.Abs(x[i]))
	}
	return m
}

// ScatterAdd performs dst[indices[i]] += values[i] for parallel
// index/value arrays — the sparse-frame reduction kernel. With strictly
// increasing indices (the SparseVector layout the wire codec reuses),
// disjoint position ranges of the arrays touch disjoint dst elements,
// so sharding the *positions* across workers is race-free and bitwise
// identical to the sequential pass.
func ScatterAdd(dst []float64, indices []int32, values []float64) {
	if len(indices) != len(values) {
		panic("linalg: ScatterAdd index/value length mismatch")
	}
	for i, ix := range indices {
		dst[ix] += values[i]
	}
}
