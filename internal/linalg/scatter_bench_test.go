package linalg

import (
	"math"
	"math/rand"
	"testing"
)

type benchPoint struct {
	idx   []int32
	vals  []float64
	label float64
}

type benchGradIface interface {
	compute(idx []int32, vals []float64, label float64, w, cum []float64) float64
}

type benchLogistic struct{}

func (benchLogistic) compute(idx []int32, vals []float64, label float64, w, cum []float64) float64 {
	x := SparseVector{Dim: len(w), Indices: idx, Values: vals}
	margin := -Dot(w, x)
	mult := 1.0/(1.0+mathExp(margin)) - label
	Axpy(mult, x, cum)
	if label > 0 {
		return Log1pExp(margin)
	}
	return Log1pExp(margin) - margin
}

func mathExp(x float64) float64 { return math.Exp(x) }

func BenchmarkGradPerPointScattered(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	const rows, dim = 20000, 1000
	pts := make([]benchPoint, rows)
	for r := range pts {
		nnz := 15 + rng.Intn(6)
		stride := dim / nnz
		pts[r].idx = make([]int32, nnz)
		pts[r].vals = make([]float64, nnz)
		for j := 0; j < nnz; j++ {
			pts[r].idx[j] = int32(j*stride + rng.Intn(stride))
			pts[r].vals[j] = rng.NormFloat64()
		}
		pts[r].label = float64(rng.Intn(2))
	}
	w := make([]float64, dim)
	cum := make([]float64, dim)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	var g benchGradIface = benchLogistic{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var loss float64
		for _, p := range pts {
			loss += g.compute(p.idx, p.vals, p.label, w, cum)
		}
		_ = loss
	}
}
