package linalg

// CSRMatrix is the packed partition format of the compute plane: one
// contiguous arena per component (row offsets, column indices, values,
// labels) instead of a pointer-per-point []LabeledPoint. Packing turns
// the gradient map phase from a pointer chase over thousands of small
// heap objects into streaming passes over four flat slices, which is
// what lets the fused kernels in csrkernels.go run at memory speed and
// shard rows across cores deterministically.
//
// The wire encoding (AppendCSR / DecodeCSR) is a fixed little-endian
// header followed by the raw arenas, 8-byte aligned — no gob, no
// per-element framing — so a cached block decodes by aliasing the
// stored bytes (zero copy) on little-endian hosts. Executors cache
// packed partitions through the block manager in exactly this form.

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"unsafe"

	"sparker/internal/serde"
)

// hostLittleEndian reports whether the host stores multi-byte words
// little-endian — the precondition for aliasing wire arenas in place.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// CSRMatrix holds one partition's rows in compressed sparse row form.
// Row r's entries live at Indices[RowOffsets[r]:RowOffsets[r+1]] /
// Values[...], with column indices strictly increasing within a row.
// Labels is per-row supervision (nil for unlabeled data like KMeans
// points). Use pointer receivers only — the struct carries lazy
// histogram state.
type CSRMatrix struct {
	// Part is the partition index this matrix was packed from; minibatch
	// sampling keys its per-partition RNG stream off it.
	Part int
	// Dim is the column dimensionality.
	Dim int
	// RowOffsets has Rows()+1 entries; RowOffsets[0] == 0.
	RowOffsets []int64
	// Indices / Values are the concatenated row entries.
	Indices []int32
	Values  []float64
	// Labels has Rows() entries, or is nil.
	Labels []float64

	histOnce sync.Once
	hist     []int64 // column-occupancy histogram over csrColBuckets buckets

	// cached per-(worker, row) entry segment bounds for the
	// column-sharded scatter phase over sampled row subsets (see
	// colSegments).
	segMu      sync.Mutex
	segWorkers int
	segBounds  []int32

	// cached column-major (CSC) view for the full-batch scatter phase
	// (see cscView).
	cscOnce sync.Once
	cscOffs []int64
	cscRows []int32
	cscVals []float64
}

// Rows returns the row count.
func (m *CSRMatrix) Rows() int {
	if len(m.RowOffsets) == 0 {
		return 0
	}
	return len(m.RowOffsets) - 1
}

// NNZ returns the stored entry count.
func (m *CSRMatrix) NNZ() int { return len(m.Indices) }

// Row returns row r as a zero-copy SparseVector view into the arenas.
// The view must be treated as immutable.
func (m *CSRMatrix) Row(r int) SparseVector {
	s, e := m.RowOffsets[r], m.RowOffsets[r+1]
	return SparseVector{Dim: m.Dim, Indices: m.Indices[s:e:e], Values: m.Values[s:e:e]}
}

// Label returns row r's label (0 when the matrix is unlabeled).
func (m *CSRMatrix) Label(r int) float64 {
	if m.Labels == nil {
		return 0
	}
	return m.Labels[r]
}

// Validate checks the full CSR invariants: monotonic offsets covering
// the arenas, strictly increasing in-range indices per row, and label
// arity. O(nnz); decode paths run only the structural subset.
func (m *CSRMatrix) Validate() error {
	rows := m.Rows()
	if len(m.RowOffsets) > 0 && m.RowOffsets[0] != 0 {
		return fmt.Errorf("linalg: csr offsets start at %d, want 0", m.RowOffsets[0])
	}
	if len(m.Indices) != len(m.Values) {
		return fmt.Errorf("linalg: csr %d indices but %d values", len(m.Indices), len(m.Values))
	}
	if m.Labels != nil && len(m.Labels) != rows {
		return fmt.Errorf("linalg: csr %d labels for %d rows", len(m.Labels), rows)
	}
	for r := 0; r < rows; r++ {
		s, e := m.RowOffsets[r], m.RowOffsets[r+1]
		if s > e || e > int64(len(m.Indices)) {
			return fmt.Errorf("linalg: csr row %d offsets [%d,%d) out of bounds", r, s, e)
		}
		prev := int32(-1)
		for k := s; k < e; k++ {
			ix := m.Indices[k]
			if ix <= prev {
				return fmt.Errorf("linalg: csr row %d indices not strictly increasing at %d", r, ix)
			}
			if int(ix) >= m.Dim {
				return fmt.Errorf("linalg: csr row %d index %d out of dim %d", r, ix, m.Dim)
			}
			prev = ix
		}
	}
	if rows >= 0 && len(m.RowOffsets) > 0 && m.RowOffsets[rows] != int64(len(m.Indices)) {
		return fmt.Errorf("linalg: csr offsets end at %d, want %d", m.RowOffsets[rows], len(m.Indices))
	}
	return nil
}

// PackRows packs unlabeled sparse rows into a CSR matrix. Rows must
// already satisfy the SparseVector invariants against dim.
func PackRows(dim int, rows []SparseVector) (*CSRMatrix, error) {
	b := NewCSRBuilder(dim, len(rows), 0)
	for _, r := range rows {
		if err := b.AppendRow(0, r.Indices, r.Values); err != nil {
			return nil, err
		}
	}
	m, err := b.Build()
	if err != nil {
		return nil, err
	}
	m.Labels = nil
	return m, nil
}

// --- builder ----------------------------------------------------------

// CSRBuilder accumulates rows into the packed arenas. It supports both
// whole-row appends (AppendRow) and a streaming per-entry protocol
// (StartRow + AppendEntry) that lets parsers feed the arenas directly
// without materializing intermediate per-row slices. dim 0 defers the
// dimensionality to Build, inferring max(index)+1.
type CSRBuilder struct {
	dim     int // 0: infer at Build
	maxIdx  int32
	rowOpen bool
	prev    int32 // last index of the open row, -1 at row start

	offs   []int64
	idx    []int32
	vals   []float64
	labels []float64
}

// NewCSRBuilder sizes a builder. rowsHint/nnzHint pre-allocate the
// arenas (0 is fine).
func NewCSRBuilder(dim, rowsHint, nnzHint int) *CSRBuilder {
	b := &CSRBuilder{dim: dim, maxIdx: -1, prev: -1}
	b.offs = make([]int64, 1, rowsHint+1)
	if nnzHint > 0 {
		b.idx = make([]int32, 0, nnzHint)
		b.vals = make([]float64, 0, nnzHint)
	}
	if rowsHint > 0 {
		b.labels = make([]float64, 0, rowsHint)
	}
	return b
}

// StartRow opens a new row with the given label.
func (b *CSRBuilder) StartRow(label float64) {
	b.closeRow()
	b.rowOpen = true
	b.prev = -1
	b.labels = append(b.labels, label)
}

func (b *CSRBuilder) closeRow() {
	if b.rowOpen {
		b.offs = append(b.offs, int64(len(b.idx)))
		b.rowOpen = false
	}
}

// AppendEntry adds one (index, value) pair to the open row. Indices
// must arrive strictly increasing; with a fixed dim they must also be
// in range (inferred dims are checked at Build).
func (b *CSRBuilder) AppendEntry(ix int32, val float64) error {
	if !b.rowOpen {
		return fmt.Errorf("linalg: AppendEntry with no open row")
	}
	if ix <= b.prev {
		return fmt.Errorf("linalg: indices not strictly increasing at %d", ix)
	}
	if b.dim > 0 && int(ix) >= b.dim {
		return fmt.Errorf("linalg: index %d out of dim %d", ix, b.dim)
	}
	if ix > b.maxIdx {
		b.maxIdx = ix
	}
	b.prev = ix
	b.idx = append(b.idx, ix)
	b.vals = append(b.vals, val)
	return nil
}

// AppendRow adds one whole row.
func (b *CSRBuilder) AppendRow(label float64, indices []int32, values []float64) error {
	if len(indices) != len(values) {
		return fmt.Errorf("linalg: %d indices but %d values", len(indices), len(values))
	}
	b.StartRow(label)
	for i, ix := range indices {
		if err := b.AppendEntry(ix, values[i]); err != nil {
			return err
		}
	}
	return nil
}

// Rows returns the number of rows appended so far.
func (b *CSRBuilder) Rows() int { return len(b.labels) }

// Build finalizes the matrix. With dim 0 the dimensionality is
// inferred as max(index)+1 (minimum 1, matching the libsvm reader's
// convention for empty inputs).
func (b *CSRBuilder) Build() (*CSRMatrix, error) {
	b.closeRow()
	dim := b.dim
	if dim == 0 {
		dim = int(b.maxIdx) + 1
		if dim < 1 {
			dim = 1
		}
	}
	m := &CSRMatrix{
		Dim:        dim,
		RowOffsets: b.offs,
		Indices:    b.idx,
		Values:     b.vals,
		Labels:     b.labels,
	}
	// Reusing the builder after Build would mutate the matrix's arenas.
	b.offs, b.idx, b.vals, b.labels = nil, nil, nil, nil
	return m, nil
}

// --- column load balancing --------------------------------------------

// csrColBuckets is the histogram resolution used to pick nnz-balanced
// column cuts for the scatter phase. Power-law data concentrates mass
// in head columns; equal-width column shards would leave most workers
// idle there.
const csrColBuckets = 1024

func (m *CSRMatrix) colHist() []int64 {
	m.histOnce.Do(func() {
		h := make([]int64, csrColBuckets)
		dim := m.Dim
		if dim < 1 {
			dim = 1
		}
		for _, ix := range m.Indices {
			b := int(int64(ix) * csrColBuckets / int64(dim))
			if b >= csrColBuckets {
				b = csrColBuckets - 1
			}
			h[b]++
		}
		m.hist = h
	})
	return m.hist
}

// colCutsInto fills dst with workers+1 column boundaries whose spans
// carry roughly equal nnz mass (bucket-granular). dst is resized in
// place; cuts[0] == 0 and cuts[workers] == Dim. Deterministic given
// (m, workers), so shard ownership — and therefore which worker writes
// each accumulator element — never varies between runs.
func (m *CSRMatrix) colCutsInto(dst []int32, workers int) []int32 {
	dst = dst[:0]
	dst = append(dst, 0)
	h := m.colHist()
	total := int64(len(m.Indices))
	var cum int64
	b := 0
	for w := 1; w < workers; w++ {
		target := total * int64(w) / int64(workers)
		for b < csrColBuckets && cum < target {
			cum += h[b]
			b++
		}
		col := int64(b) * int64(m.Dim) / csrColBuckets
		dst = append(dst, int32(col))
	}
	dst = append(dst, int32(m.Dim))
	return dst
}

// colSegments returns the cached entry segment bounds for a
// workers-way column-sharded scatter: bounds[s*rows + r] is the first
// entry position of row r whose column is >= colCuts[s], so worker s
// streams row r's entries [bounds[s*rows+r], bounds[(s+1)*rows+r])
// with no per-row searching. Built once per (matrix, workers) pair —
// iterations 2..N reuse it — and deterministic, so scatter ownership
// never varies between runs. Callers must not mutate the result.
// Requires NNZ() <= MaxInt32 (the kernels fall back to the sequential
// path beyond that).
func (m *CSRMatrix) colSegments(workers int) []int32 {
	m.segMu.Lock()
	defer m.segMu.Unlock()
	if m.segWorkers == workers && m.segBounds != nil {
		return m.segBounds
	}
	rows := m.Rows()
	cuts := m.colCutsInto(nil, workers)
	bounds := make([]int32, (workers+1)*rows)
	for r := 0; r < rows; r++ {
		k, e := m.RowOffsets[r], m.RowOffsets[r+1]
		for s := 0; s <= workers; s++ {
			col := cuts[s]
			for k < e && m.Indices[k] < col {
				k++
			}
			bounds[s*rows+r] = int32(k)
		}
	}
	m.segWorkers = workers
	m.segBounds = bounds
	return bounds
}

// cscView returns the cached column-major view of the matrix:
// offs[j]..offs[j+1] bound column j's entries in rows/vals, with rows
// strictly ascending within each column. Because row order within a
// column IS the sequential fold order of cum[j]'s additions, a scatter
// worker that owns a column range and walks this view reproduces the
// sequential accumulation chain of every element it owns bit for bit —
// while touching only its own entries, instead of scanning every row
// for per-row segments. Built once per matrix (counting sort, O(nnz +
// dim)); iterations 2..N reuse it. Callers must not mutate the result.
func (m *CSRMatrix) cscView() (offs []int64, rows []int32, vals []float64) {
	m.cscOnce.Do(func() {
		dim := m.Dim
		if dim < 1 {
			dim = 1
		}
		co := make([]int64, dim+1)
		for _, ix := range m.Indices {
			co[ix+1]++
		}
		for j := 0; j < dim; j++ {
			co[j+1] += co[j]
		}
		cr := make([]int32, len(m.Indices))
		cv := make([]float64, len(m.Indices))
		next := append([]int64(nil), co[:dim]...)
		nr := m.Rows()
		for r := 0; r < nr; r++ {
			for k := m.RowOffsets[r]; k < m.RowOffsets[r+1]; k++ {
				j := m.Indices[k]
				p := next[j]
				next[j] = p + 1
				cr[p] = int32(r)
				cv[p] = m.Values[k]
			}
		}
		m.cscOffs, m.cscRows, m.cscVals = co, cr, cv
	})
	return m.cscOffs, m.cscRows, m.cscVals
}

// rowCutsInto fills dst with workers+1 row boundaries over row space
// [0, n) balanced by nnz mass (row-granular), for the margin phase.
// When rows is non-nil (a sampled row subset) the cuts are equal-count:
// sampling already spreads heavy rows uniformly.
func (m *CSRMatrix) rowCutsInto(dst []int, rows []int32, n, workers int) []int {
	dst = dst[:0]
	dst = append(dst, 0)
	if rows != nil || m.NNZ() == 0 {
		for w := 1; w < workers; w++ {
			dst = append(dst, w*n/workers)
		}
		dst = append(dst, n)
		return dst
	}
	offs := m.RowOffsets
	total := offs[n]
	r := 0
	for w := 1; w < workers; w++ {
		target := total * int64(w) / int64(workers)
		for r < n && offs[r+1] <= target {
			r++
		}
		dst = append(dst, r)
	}
	dst = append(dst, n)
	return dst
}

// --- wire format ------------------------------------------------------

// Layout (all little-endian):
//
//	[0:4)   magic "CSR1"
//	[4:8)   flags (bit 0: labels present)
//	[8:16)  part
//	[16:24) dim
//	[24:32) rows
//	[32:40) nnz
//	[40:)   rowOffsets  int64 × (rows+1)    (8-aligned)
//	        indices     int32 × nnz
//	        pad to 8
//	        values      float64 × nnz       (8-aligned)
//	        labels      float64 × rows      (if flagged; 8-aligned)
const (
	csrMagic      = 0x31525343 // "CSR1" little-endian
	csrHeaderSize = 40
	csrFlagLabels = 1
)

// EncodedSize returns the exact AppendCSR output size.
func (m *CSRMatrix) EncodedSize() int {
	sz := csrHeaderSize + 8*len(m.RowOffsets) + 4*len(m.Indices)
	sz = (sz + 7) &^ 7
	sz += 8 * len(m.Values)
	if m.Labels != nil {
		sz += 8 * len(m.Labels)
	}
	return sz
}

func int64Bytes(v []int64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 8*len(v))
}

func int32Bytes(v []int32) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 4*len(v))
}

func float64Bytes(v []float64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 8*len(v))
}

// AppendCSR appends m's wire form to dst and returns the extended
// slice. On little-endian hosts the arenas are bulk-copied; the
// big-endian fallback serializes element-wise.
func AppendCSR(dst []byte, m *CSRMatrix) []byte {
	base := len(dst)
	need := m.EncodedSize()
	dst = append(dst, make([]byte, need)...)
	buf := dst[base:]
	binary.LittleEndian.PutUint32(buf[0:], csrMagic)
	var flags uint32
	if m.Labels != nil {
		flags |= csrFlagLabels
	}
	binary.LittleEndian.PutUint32(buf[4:], flags)
	binary.LittleEndian.PutUint64(buf[8:], uint64(int64(m.Part)))
	binary.LittleEndian.PutUint64(buf[16:], uint64(int64(m.Dim)))
	binary.LittleEndian.PutUint64(buf[24:], uint64(int64(m.Rows())))
	binary.LittleEndian.PutUint64(buf[32:], uint64(int64(len(m.Indices))))
	off := csrHeaderSize
	if hostLittleEndian {
		off += copy(buf[off:], int64Bytes(m.RowOffsets))
		off += copy(buf[off:], int32Bytes(m.Indices))
		off = (off + 7) &^ 7
		off += copy(buf[off:], float64Bytes(m.Values))
		if m.Labels != nil {
			copy(buf[off:], float64Bytes(m.Labels))
		}
		return dst
	}
	for _, v := range m.RowOffsets {
		binary.LittleEndian.PutUint64(buf[off:], uint64(v))
		off += 8
	}
	for _, v := range m.Indices {
		binary.LittleEndian.PutUint32(buf[off:], uint32(v))
		off += 4
	}
	off = (off + 7) &^ 7
	for _, v := range m.Values {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
		off += 8
	}
	for _, v := range m.Labels {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
		off += 8
	}
	return dst
}

// DecodeCSR decodes a matrix from src. When the host is little-endian
// and src is 8-byte aligned, the returned matrix's arenas alias src
// directly — zero copy; the caller must treat src as immutable and may
// rely on the GC keeping it alive while the matrix is referenced.
// Otherwise the arenas are copied out. Returns the matrix and the
// bytes consumed.
func DecodeCSR(src []byte) (*CSRMatrix, int, error) {
	m := new(CSRMatrix)
	alias := hostLittleEndian && (len(src) == 0 || uintptr(unsafe.Pointer(&src[0]))%8 == 0)
	n, err := decodeCSRInto(m, src, !alias)
	if err != nil {
		return nil, 0, err
	}
	return m, n, nil
}

// decodeCSRInto reads the wire form into m. copyArenas forces copying
// (the safe mode for pooled or unaligned buffers).
func decodeCSRInto(m *CSRMatrix, src []byte, copyArenas bool) (int, error) {
	if len(src) < csrHeaderSize {
		return 0, fmt.Errorf("linalg: short CSR header (%d bytes)", len(src))
	}
	if binary.LittleEndian.Uint32(src[0:]) != csrMagic {
		return 0, fmt.Errorf("linalg: bad CSR magic")
	}
	flags := binary.LittleEndian.Uint32(src[4:])
	part := int64(binary.LittleEndian.Uint64(src[8:]))
	dim := int64(binary.LittleEndian.Uint64(src[16:]))
	rows := int64(binary.LittleEndian.Uint64(src[24:]))
	nnz := int64(binary.LittleEndian.Uint64(src[32:]))
	if dim < 0 || rows < 0 || nnz < 0 || rows > int64(len(src)) || nnz > int64(len(src)) {
		return 0, fmt.Errorf("linalg: corrupt CSR header (dim=%d rows=%d nnz=%d)", dim, rows, nnz)
	}
	offEnd := csrHeaderSize + 8*(rows+1)
	idxEnd := offEnd + 4*nnz
	valStart := (idxEnd + 7) &^ 7
	valEnd := valStart + 8*nnz
	labEnd := valEnd
	if flags&csrFlagLabels != 0 {
		labEnd += 8 * rows
	}
	if labEnd > int64(len(src)) {
		return 0, fmt.Errorf("linalg: truncated CSR body (need %d of %d bytes)", labEnd, len(src))
	}
	m.Part = int(part)
	m.Dim = int(dim)
	copyArenas = copyArenas || !hostLittleEndian ||
		(len(src) > 0 && uintptr(unsafe.Pointer(&src[0]))%8 != 0)
	if copyArenas {
		m.RowOffsets = make([]int64, rows+1)
		m.Indices = make([]int32, nnz)
		m.Values = make([]float64, nnz)
		for i := range m.RowOffsets {
			m.RowOffsets[i] = int64(binary.LittleEndian.Uint64(src[csrHeaderSize+8*i:]))
		}
		for i := range m.Indices {
			m.Indices[i] = int32(binary.LittleEndian.Uint32(src[offEnd+4*int64(i):]))
		}
		for i := range m.Values {
			m.Values[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[valStart+8*int64(i):]))
		}
		if flags&csrFlagLabels != 0 {
			m.Labels = make([]float64, rows)
			for i := range m.Labels {
				m.Labels[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[valEnd+8*int64(i):]))
			}
		}
	} else {
		m.RowOffsets = unsafe.Slice((*int64)(unsafe.Pointer(&src[csrHeaderSize])), rows+1)
		if nnz > 0 {
			m.Indices = unsafe.Slice((*int32)(unsafe.Pointer(&src[offEnd])), nnz)
			m.Values = unsafe.Slice((*float64)(unsafe.Pointer(&src[valStart])), nnz)
		} else {
			m.Indices, m.Values = nil, nil
		}
		if flags&csrFlagLabels != 0 {
			if rows > 0 {
				m.Labels = unsafe.Slice((*float64)(unsafe.Pointer(&src[valEnd])), rows)
			} else {
				m.Labels = []float64{}
			}
		} else {
			m.Labels = nil
		}
	}
	// Structural sanity so Row() and the kernels cannot slice out of
	// bounds on corrupt input; full index validation is Validate().
	if m.RowOffsets[0] != 0 || m.RowOffsets[rows] != nnz {
		return 0, fmt.Errorf("linalg: corrupt CSR offsets")
	}
	for r := int64(0); r < rows; r++ {
		if m.RowOffsets[r] > m.RowOffsets[r+1] {
			return 0, fmt.Errorf("linalg: corrupt CSR offsets at row %d", r)
		}
	}
	return int(labEnd), nil
}

// MarshalBinaryTo implements serde.Marshaler (pointer receiver: the
// serde citizen is *CSRMatrix).
func (m *CSRMatrix) MarshalBinaryTo(dst []byte) []byte { return AppendCSR(dst, m) }

// UnmarshalBinaryFrom implements serde.Unmarshaler. The serde path
// always copies the arenas — frames may live in pooled or transport
// buffers whose bytes are recycled; zero-copy decoding is reserved for
// DecodeCSR over block-manager-owned bytes.
func (m *CSRMatrix) UnmarshalBinaryFrom(src []byte) (int, error) {
	return decodeCSRInto(m, src, true)
}

func init() {
	serde.RegisterSelf(&CSRMatrix{}, func() serde.Unmarshaler { return new(CSRMatrix) })
}
