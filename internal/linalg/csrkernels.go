package linalg

// Fused batched kernels over packed CSR partitions. Each kernel
// replaces the per-point Gradient.Compute fold (interface call + Dot +
// Axpy per point) with streaming passes over the arenas, and its
// result is bitwise identical to that sequential fold for every worker
// count. Two properties make that possible:
//
//  1. Per-row work (the margin dot, the multiplier, the loss) uses the
//     exact accumulation order of the scalar path, and rows are
//     independent — so rows can be row-sharded across cores, and the
//     4-wide dot batching below only interleaves *independent* chains
//     for instruction-level parallelism without reassociating any sum.
//  2. Accumulator updates (cum[j] += mult·v, the loss fold, counts)
//     form one chain per element in row order. The multi-core scatter
//     shards by *column*: a worker owns a contiguous (nnz-balanced)
//     column range, so each cum[j] still receives its contributions in
//     exactly the sequential order — sharding decides only which core
//     executes a chain, never the order within it. Full-batch passes
//     walk the matrix's cached CSC view (entries grouped by column,
//     ascending row order within a column — the fold order), so phase
//     B is O(nnz + dim) total; sampled passes walk per-row segment
//     bounds instead.
//
// Per-core partial accumulators merged afterwards would NOT have this
// property (float addition is not associative across a shard
// boundary), which is why the scatter is column-sharded instead. The
// in-row scatter unrolling is safe for the same reason batched dots
// are: indices within a row are strictly increasing, so the four
// unrolled updates always hit distinct accumulator elements.
//
// Steady-state kernel calls are allocation-free: scratch (per-row
// multipliers, shard cuts) is pooled, the per-worker column segment
// bounds are cached on the matrix, and the ParallelFor shard bodies
// are prebuilt method values bound to the scratch, so dispatch reuses
// the same closures call after call (the `make overhead` packed gate).

import (
	"math"
)

// CSRGradKind selects the fused gradient family, mirroring
// mllib.{Logistic,LeastSquares,Hinge}Gradient.
type CSRGradKind int

// Fused gradient families.
const (
	CSRLogistic CSRGradKind = iota
	CSRLeastSquares
	CSRHinge
)

// Log1pExp computes log(1 + exp(m)) stably — shared with the scalar
// logistic path so both compute identical bits.
func Log1pExp(m float64) float64 {
	if m > 0 {
		return m + math.Log1p(math.Exp(-m))
	}
	return math.Log1p(math.Exp(m))
}

// csrParallelMinRows: below this many rows the two-phase parallel path
// costs more in pool dispatch than it saves; fall back to the fused
// single pass. Purely a performance cutoff — both paths are bitwise
// identical.
const csrParallelMinRows = 64

// CSRGrad folds one fused gradient pass over m against weights w,
// accumulating the gradient sum into cum (len >= m.Dim; must not alias
// w) and returning the loss sum and the sample count. rows selects a
// sampled row subset in fold order (nil: all rows). workers > 1 shards
// the margin phase by rows and the scatter phase by columns across the
// ParallelFor pool. The result — cum, loss sum, and count — is bitwise
// identical to folding grad.Compute over the same rows sequentially,
// for any workers value. m must be labeled (Labels non-nil) unless it
// has no rows.
func CSRGrad(kind CSRGradKind, m *CSRMatrix, rows []int32, w, cum []float64, workers int) (lossSum, count float64) {
	n := m.Rows()
	if rows != nil {
		n = len(rows)
	}
	if n == 0 {
		return 0, 0
	}
	if workers > maxParallelWorkers {
		workers = maxParallelWorkers
	}
	// Full-batch passes take the two-phase path even at one worker: the
	// CSC scatter streams its entries contiguously with the accumulator
	// in a register, which beats the fused pass's random cum[idx] writes
	// once the batch is large — and with workers == 1 ParallelFor is a
	// plain call, so there is no pool traffic to pay for. Sampled
	// subsets and small batches keep the fused single pass.
	if n < csrParallelMinRows || m.NNZ() > math.MaxInt32 || (workers <= 1 && rows != nil) {
		return csrGradSeq(kind, m, rows, w, cum), float64(n)
	}
	if workers < 1 {
		workers = 1
	}
	sc := getCSRScratch(n)
	sc.kind, sc.m, sc.rows, sc.w, sc.cum = kind, m, rows, w, cum
	sc.n = n
	if workers == 1 {
		// One worker covers the whole batch in row order, so the loss
		// can fold inline with the margin pass — same order as the
		// scalar fold's acc[dim] += loss per point — instead of taking
		// a round-trip through the loss array (an extra 2n×8 bytes of
		// traffic per pass).
		lossSum = sc.marginRangeFold(0, n)
	} else {
		sc.rowCuts = m.rowCutsInto(sc.rowCuts, rows, n, workers)
		// Phase A: per-row multiplier + loss, row-sharded. Every per-row
		// value is independent of the sharding.
		ParallelFor(workers, workers, sc.marginBody)
		// Loss and count fold sequentially in row order, matching
		// acc[dim] += loss; acc[dim+1]++ per point.
		loss := sc.loss[:n]
		for i := range loss {
			lossSum += loss[i]
		}
	}
	// Phase B: column-sharded scatter. Full-batch passes walk the
	// cached CSC view — each worker touches only the entries of its own
	// nnz-balanced column range; sampled passes fall back to the
	// per-row segment bounds (the CSC view has no cheap row filter).
	if rows == nil {
		m.cscView()
		sc.colCuts = m.colCutsInto(sc.colCuts, workers)
		ParallelFor(workers, workers, sc.cscScatterBody)
	} else {
		sc.segBounds = m.colSegments(workers)
		ParallelFor(workers, workers, sc.scatterBody)
	}
	putCSRScratch(sc)
	return lossSum, float64(n)
}

// CSRKMeans assigns every row of m to its nearest center and
// accumulates the per-center sums, counts and total cost into acc
// (layout [k*dim) sums, [k*dim,k*dim+k) counts, [k*dim+k] cost —
// TrainKMeans's aggregator). centers is the k×dim row-major flattened
// snapshot; cNorms[c] must equal the sequential self-dot of center c
// (CSRKMeansCenterNorms). Bitwise identical to folding the sequential
// nearest-center seqOp over the rows, for any workers value.
func CSRKMeans(m *CSRMatrix, centers, cNorms []float64, k, dim int, acc []float64, workers int) {
	n := m.Rows()
	if n == 0 || k == 0 {
		return
	}
	if workers > maxParallelWorkers {
		workers = maxParallelWorkers
	}
	if workers <= 1 || n < csrParallelMinRows || m.NNZ() > math.MaxInt32 {
		csrKMeansSeq(m, centers, cNorms, k, dim, acc)
		return
	}
	sc := getCSRScratch(n)
	sc.m, sc.centers, sc.cNorms = m, centers, cNorms
	sc.k, sc.dim, sc.acc = k, dim, acc
	sc.n = n
	sc.rowCuts = m.rowCutsInto(sc.rowCuts, nil, n, workers)
	// Phase A: per-row nearest center, row-sharded.
	ParallelFor(workers, workers, sc.assignBody)
	// Counts and cost fold sequentially in row order.
	best, dist := sc.best[:n], sc.dist[:n]
	for i := 0; i < n; i++ {
		acc[k*dim+int(best[i])]++
		acc[k*dim+k] += dist[i]
	}
	// Phase B: column-sharded sum scatter over the CSC view.
	m.cscView()
	sc.colCuts = m.colCutsInto(sc.colCuts, workers)
	ParallelFor(workers, workers, sc.cscKMScatterBody)
	putCSRScratch(sc)
}

// CSRKMeansCenterNorms fills norms[c] with center c's squared norm
// using the same accumulation order as the scalar sqDist, so the fused
// distances match it bitwise.
func CSRKMeansCenterNorms(centers []float64, k, dim int, norms []float64) {
	for c := 0; c < k; c++ {
		var s float64
		for _, v := range centers[c*dim : (c+1)*dim] {
			s += v * v
		}
		norms[c] = s
	}
}

// --- pooled scratch ---------------------------------------------------

// csrScratch carries the per-call state of one parallel kernel
// invocation. The shard bodies are method values created once per
// scratch and reused, keeping steady-state dispatch allocation-free.
type csrScratch struct {
	mult    []float64
	loss    []float64
	best    []int32
	dist    []float64
	rowCuts []int
	colCuts []int32

	// pinned call state read by the shard bodies
	kind      CSRGradKind
	m         *CSRMatrix
	rows      []int32
	w, cum    []float64
	centers   []float64
	cNorms    []float64
	acc       []float64
	k, dim    int
	n         int
	segBounds []int32

	marginBody       func(lo, hi int)
	scatterBody      func(lo, hi int)
	cscScatterBody   func(lo, hi int)
	assignBody       func(lo, hi int)
	cscKMScatterBody func(lo, hi int)
}

// csrScratchFree is a small GC-proof free list. A sync.Pool is wrong
// here: GC strips pools every cycle, and a training loop allocates
// enough per iteration (task closures, reduce buffers) to keep GC
// ticking — so the mult/loss arrays (hundreds of KB for a 100k-row
// partition) would be refaulted and rezeroed almost every call, an
// overhead the sequential path doesn't pay. The channel's capacity
// bounds retention to a handful of scratches, the same order as one
// cached packed partition.
var csrScratchFree = make(chan *csrScratch, 8)

func newCSRScratch() *csrScratch {
	sc := &csrScratch{}
	sc.marginBody = sc.runMargins
	sc.scatterBody = sc.runScatter
	sc.cscScatterBody = sc.runCSCScatter
	sc.assignBody = sc.runAssign
	sc.cscKMScatterBody = sc.runCSCKMScatter
	return sc
}

func getCSRScratch(n int) *csrScratch {
	var sc *csrScratch
	select {
	case sc = <-csrScratchFree:
	default:
		sc = newCSRScratch()
	}
	if cap(sc.mult) < n {
		sc.mult = make([]float64, n)
		sc.loss = make([]float64, n)
		sc.best = make([]int32, n)
		sc.dist = make([]float64, n)
	}
	return sc
}

func putCSRScratch(sc *csrScratch) {
	sc.clear()
	select {
	case csrScratchFree <- sc:
	default:
	}
}

// clear drops the pinned references so pooled scratch does not retain
// partitions or weight snapshots.
func (sc *csrScratch) clear() {
	sc.m, sc.rows, sc.w, sc.cum = nil, nil, nil, nil
	sc.centers, sc.cNorms, sc.acc = nil, nil, nil
	sc.segBounds = nil
}

// --- gradient margins (phase A) ---------------------------------------

// runMargins computes mult[i], loss[i] for the row shards [lo, hi)
// (shard ids; each covers fold positions rowCuts[s]:rowCuts[s+1]).
func (sc *csrScratch) runMargins(lo, hi int) {
	for s := lo; s < hi; s++ {
		sc.marginRange(sc.rowCuts[s], sc.rowCuts[s+1])
	}
}

// marginRange fills mult/loss for fold positions [lo, hi), batching
// dot products four rows at a time. Each row's dot keeps the scalar
// path's sequential order; batching only interleaves independent
// chains so the CPU pipelines them.
func (sc *csrScratch) marginRange(lo, hi int) {
	m, w := sc.m, sc.w
	offs, idx, vals, labs := m.RowOffsets, m.Indices, m.Values, m.Labels
	kind := sc.kind
	rows := sc.rows
	i := lo
	if rows == nil {
		for ; i+4 <= hi; i += 4 {
			d0, d1, d2, d3 := csrDots4(offs, idx, vals, w, i, i+1, i+2, i+3)
			sc.mult[i], sc.loss[i] = csrMargin(kind, labs[i], d0)
			sc.mult[i+1], sc.loss[i+1] = csrMargin(kind, labs[i+1], d1)
			sc.mult[i+2], sc.loss[i+2] = csrMargin(kind, labs[i+2], d2)
			sc.mult[i+3], sc.loss[i+3] = csrMargin(kind, labs[i+3], d3)
		}
		for ; i < hi; i++ {
			d := csrDot1(offs, idx, vals, w, i)
			sc.mult[i], sc.loss[i] = csrMargin(kind, labs[i], d)
		}
		return
	}
	for ; i+4 <= hi; i += 4 {
		r0, r1, r2, r3 := int(rows[i]), int(rows[i+1]), int(rows[i+2]), int(rows[i+3])
		d0, d1, d2, d3 := csrDots4(offs, idx, vals, w, r0, r1, r2, r3)
		sc.mult[i], sc.loss[i] = csrMargin(kind, labs[r0], d0)
		sc.mult[i+1], sc.loss[i+1] = csrMargin(kind, labs[r1], d1)
		sc.mult[i+2], sc.loss[i+2] = csrMargin(kind, labs[r2], d2)
		sc.mult[i+3], sc.loss[i+3] = csrMargin(kind, labs[r3], d3)
	}
	for ; i < hi; i++ {
		r := int(rows[i])
		d := csrDot1(offs, idx, vals, w, r)
		sc.mult[i], sc.loss[i] = csrMargin(kind, labs[r], d)
	}
}

// marginRangeFold is marginRange for a single worker owning the whole
// batch: it writes mult only and folds the loss inline, in row order —
// identical bits to writing loss[] and folding it afterwards, minus the
// array round-trip.
func (sc *csrScratch) marginRangeFold(lo, hi int) (lossSum float64) {
	m, w := sc.m, sc.w
	offs, idx, vals, labs := m.RowOffsets, m.Indices, m.Values, m.Labels
	kind := sc.kind
	rows := sc.rows
	i := lo
	for ; i+4 <= hi; i += 4 {
		r0, r1, r2, r3 := i, i+1, i+2, i+3
		if rows != nil {
			r0, r1, r2, r3 = int(rows[i]), int(rows[i+1]), int(rows[i+2]), int(rows[i+3])
		}
		d0, d1, d2, d3 := csrDots4(offs, idx, vals, w, r0, r1, r2, r3)
		var l0, l1, l2, l3 float64
		sc.mult[i], l0 = csrMargin(kind, labs[r0], d0)
		sc.mult[i+1], l1 = csrMargin(kind, labs[r1], d1)
		sc.mult[i+2], l2 = csrMargin(kind, labs[r2], d2)
		sc.mult[i+3], l3 = csrMargin(kind, labs[r3], d3)
		lossSum += l0
		lossSum += l1
		lossSum += l2
		lossSum += l3
	}
	for ; i < hi; i++ {
		r := i
		if rows != nil {
			r = int(rows[i])
		}
		d := csrDot1(offs, idx, vals, w, r)
		var l float64
		sc.mult[i], l = csrMargin(kind, labs[r], d)
		lossSum += l
	}
	return lossSum
}

// csrDot1 computes one row's margin dot in the scalar path's order.
func csrDot1(offs []int64, idx []int32, vals, w []float64, r int) float64 {
	s, e := offs[r], offs[r+1]
	ii, vv := idx[s:e], vals[s:e:e]
	var d float64
	for j, ix := range ii {
		d += w[ix] * vv[j]
	}
	return d
}

// csrDots4 computes four rows' dots with interleaved (independent)
// chains: a shared loop over the common prefix length, then per-row
// tails. Each chain's add order equals csrDot1's — the interleave only
// breaks the float-add latency serialization of a lone dot chain.
func csrDots4(offs []int64, idx []int32, vals, w []float64, r0, r1, r2, r3 int) (d0, d1, d2, d3 float64) {
	k0, e0 := offs[r0], offs[r0+1]
	k1, e1 := offs[r1], offs[r1+1]
	k2, e2 := offs[r2], offs[r2+1]
	k3, e3 := offs[r3], offs[r3+1]
	c := e0 - k0
	if l := e1 - k1; l < c {
		c = l
	}
	if l := e2 - k2; l < c {
		c = l
	}
	if l := e3 - k3; l < c {
		c = l
	}
	// Equal-length prefix subslices let the compiler drop the index
	// bounds checks in the shared loop.
	i0, v0 := idx[k0:k0+c], vals[k0:k0+c:k0+c]
	i1, v1 := idx[k1:k1+c], vals[k1:k1+c:k1+c]
	i2, v2 := idx[k2:k2+c], vals[k2:k2+c:k2+c]
	i3, v3 := idx[k3:k3+c], vals[k3:k3+c:k3+c]
	for j := range v0 {
		d0 += w[i0[j]] * v0[j]
		d1 += w[i1[j]] * v1[j]
		d2 += w[i2[j]] * v2[j]
		d3 += w[i3[j]] * v3[j]
	}
	for k := k0 + c; k < e0; k++ {
		d0 += w[idx[k]] * vals[k]
	}
	for k := k1 + c; k < e1; k++ {
		d1 += w[idx[k]] * vals[k]
	}
	for k := k2 + c; k < e2; k++ {
		d2 += w[idx[k]] * vals[k]
	}
	for k := k3 + c; k < e3; k++ {
		d3 += w[idx[k]] * vals[k]
	}
	return
}

// csrMargin turns one row's dot into (multiplier, loss), replicating
// the scalar Gradient.Compute arithmetic exactly.
func csrMargin(kind CSRGradKind, label, dot float64) (mult, loss float64) {
	switch kind {
	case CSRLogistic:
		margin := -dot
		mult = 1.0/(1.0+math.Exp(margin)) - label
		loss = Log1pExp(margin)
		if !(label > 0) {
			loss -= margin
		}
	case CSRLeastSquares:
		diff := dot - label
		mult = diff
		loss = diff * diff / 2
	case CSRHinge:
		scaled := 2*label - 1
		if 1-scaled*dot > 0 {
			// Active rows store -scaled (±1 for 0/1 labels — never +0,
			// which marks inactivity for the scatter skip).
			mult = -scaled
			loss = 1 - scaled*dot
		}
	}
	return
}

// hingeInactive reports whether a stored hinge multiplier marks an
// inactive row (exactly +0). The scalar path performs no Axpy at all
// for inactive rows, so the scatter must skip them rather than add
// zeros (0·v additions can flip -0 accumulator signs).
func hingeInactive(mult float64) bool {
	return mult == 0 && !math.Signbit(mult)
}

// csrScatterRow accumulates one row segment: cum[idx[k]] += mlt·vals[k]
// for k in [s, e). The 4-wide unroll is safe because indices within a
// row are strictly increasing — the four updates always hit distinct
// elements, so their store order is immaterial.
func csrScatterRow(idx []int32, vals, cum []float64, mlt float64, s, e int64) {
	ii, vv := idx[s:e], vals[s:e:e]
	j := 0
	for ; j+4 <= len(vv); j += 4 {
		j0, j1, j2, j3 := ii[j], ii[j+1], ii[j+2], ii[j+3]
		cum[j0] += mlt * vv[j]
		cum[j1] += mlt * vv[j+1]
		cum[j2] += mlt * vv[j+2]
		cum[j3] += mlt * vv[j+3]
	}
	for ; j < len(vv); j++ {
		cum[ii[j]] += mlt * vv[j]
	}
}

// csrSumRow accumulates one row segment without a multiplier:
// acc[base+idx[k]] += vals[k] (the KMeans center-sum scatter).
func csrSumRow(idx []int32, vals, acc []float64, base int, s, e int64) {
	ii, vv := idx[s:e], vals[s:e:e]
	j := 0
	for ; j+4 <= len(vv); j += 4 {
		j0, j1, j2, j3 := ii[j], ii[j+1], ii[j+2], ii[j+3]
		acc[base+int(j0)] += vv[j]
		acc[base+int(j1)] += vv[j+1]
		acc[base+int(j2)] += vv[j+2]
		acc[base+int(j3)] += vv[j+3]
	}
	for ; j < len(vv); j++ {
		acc[base+int(ii[j])] += vv[j]
	}
}

// --- gradient scatter (phase B) ---------------------------------------

// runCSCScatter accumulates cum[j] for the column shards [lo, hi) of a
// full-batch pass by walking the CSC view: each owned column's entries
// arrive in ascending row order — exactly the sequential fold order of
// that element's additions — and the worker reads nothing outside its
// own entry range, so phase B's total work is O(nnz + dim) across all
// workers instead of O(workers × rows) row scans.
func (sc *csrScratch) runCSCScatter(lo, hi int) {
	offs, rows, vals := sc.m.cscView()
	mult, cum := sc.mult, sc.cum
	hinge := sc.kind == CSRHinge
	for s := lo; s < hi; s++ {
		cscLaneScatter(offs, rows, vals, mult, cum, int(sc.colCuts[s]), int(sc.colCuts[s+1]), hinge)
	}
}

// cscLaneScatter folds the columns [j0, j1) into cum. A column's
// additions are one dependent FP-add chain (the price of exact
// sequential order), so a heavy column alone runs at add latency — and
// power-law heads stack several heavy columns of very unequal lengths
// next to each other. The shard's columns are split into four
// contiguous lanes of roughly equal nnz, and the lanes are
// round-robined in small blocks: four *independent* chains are in
// flight at all times, whatever the per-column length mix (a plain
// 4-adjacent-column unroll pipelines only the common prefix, which a
// 20k-entry head column next to a 5k neighbor reduces to a quarter).
// Each column is still folded by exactly one lane strictly in
// ascending row order, so the result stays bitwise identical to the
// sequential pass.
func cscLaneScatter(offs []int64, rows []int32, vals, mult, cum []float64, j0, j1 int, hinge bool) {
	const lanes = 4
	// Block size balances per-block loop overhead against keeping all
	// four chains inside the out-of-order window at once.
	const block = 16
	if j0 >= j1 || offs[j1] == offs[j0] {
		return
	}
	total := offs[j1] - offs[j0]
	var cut [lanes + 1]int
	cut[0], cut[lanes] = j0, j1
	j := j0
	for l := 1; l < lanes; l++ {
		target := offs[j0] + total*int64(l)/lanes
		for j < j1 && offs[j] < target {
			j++
		}
		cut[l] = j
	}
	var colJ [lanes]int
	var pos, end [lanes]int64
	var acc [lanes]float64
	live := 0
	for l := 0; l < lanes; l++ {
		colJ[l] = cut[l]
		if laneLoad(offs, cum, &colJ[l], cut[l+1], &pos[l], &end[l], &acc[l]) {
			live++
		}
	}
	for live > 0 {
		for l := 0; l < lanes; l++ {
			p, e := pos[l], end[l]
			if p >= e {
				continue
			}
			b := p + block
			if b > e {
				b = e
			}
			acc[l] = cscColFold(rows, vals, mult, acc[l], p, b, hinge)
			pos[l] = b
			if b == e {
				cum[colJ[l]] = acc[l]
				colJ[l]++
				if !laneLoad(offs, cum, &colJ[l], cut[l+1], &pos[l], &end[l], &acc[l]) {
					live--
				}
			}
		}
	}
}

// laneLoad advances *colJ to the lane's next non-empty column before
// endCol and loads its entry range and running accumulator. It reports
// whether the lane still has work; a drained lane parks with pos ==
// end so the round-robin skips it.
func laneLoad(offs []int64, cum []float64, colJ *int, endCol int, pos, end *int64, acc *float64) bool {
	for j := *colJ; j < endCol; j++ {
		if a, b := offs[j], offs[j+1]; a < b {
			*colJ, *pos, *end, *acc = j, a, b, cum[j]
			return true
		}
	}
	*colJ, *pos, *end = endCol, 0, 0
	return false
}

// cscColFold folds one column's entries [a, b) into acc in row order.
func cscColFold(rows []int32, vals, mult []float64, acc float64, a, b int64, hinge bool) float64 {
	rr, vv := rows[a:b], vals[a:b:b]
	if hinge {
		for t, r := range rr {
			if mlt := mult[r]; !hingeInactive(mlt) {
				acc += mlt * vv[t]
			}
		}
		return acc
	}
	for t, r := range rr {
		acc += mult[r] * vv[t]
	}
	return acc
}

// runScatter accumulates cum[j] for the column shards [lo, hi) of a
// sampled (minibatch) pass. Each shard walks the sampled rows in fold
// order and touches only its own entry segment (precomputed in m's
// segment-bound cache), so every accumulator element receives its
// additions in sequential row order.
func (sc *csrScratch) runScatter(lo, hi int) {
	m := sc.m
	idx, vals := m.Indices, m.Values
	cum := sc.cum
	hinge := sc.kind == CSRHinge
	nrows := m.Rows()
	for s := lo; s < hi; s++ {
		seg0 := sc.segBounds[s*nrows : (s+1)*nrows]
		seg1 := sc.segBounds[(s+1)*nrows : (s+2)*nrows]
		for i, n := 0, sc.n; i < n; i++ {
			mlt := sc.mult[i]
			if hinge && hingeInactive(mlt) {
				continue
			}
			r := sc.rows[i]
			csrScatterRow(idx, vals, cum, mlt, int64(seg0[r]), int64(seg1[r]))
		}
	}
}

// --- fused single pass (workers <= 1) ---------------------------------

// csrGradSeq is the fully fused single-core pass: batched margins, then
// the scatter of each row immediately after, while its entries are hot
// in cache. Scatters execute in row order, so the result matches the
// scalar fold bit for bit.
func csrGradSeq(kind CSRGradKind, m *CSRMatrix, rows []int32, w, cum []float64) (lossSum float64) {
	offs, idx, vals, labs := m.RowOffsets, m.Indices, m.Values, m.Labels
	hinge := kind == CSRHinge
	n := m.Rows()
	if rows != nil {
		n = len(rows)
	}
	i := 0
	for ; i+4 <= n; i += 4 {
		r0, r1, r2, r3 := i, i+1, i+2, i+3
		if rows != nil {
			r0, r1, r2, r3 = int(rows[i]), int(rows[i+1]), int(rows[i+2]), int(rows[i+3])
		}
		d0, d1, d2, d3 := csrDots4(offs, idx, vals, w, r0, r1, r2, r3)
		m0, l0 := csrMargin(kind, labs[r0], d0)
		m1, l1 := csrMargin(kind, labs[r1], d1)
		m2, l2 := csrMargin(kind, labs[r2], d2)
		m3, l3 := csrMargin(kind, labs[r3], d3)
		if !hinge || !hingeInactive(m0) {
			csrScatterRow(idx, vals, cum, m0, offs[r0], offs[r0+1])
		}
		lossSum += l0
		if !hinge || !hingeInactive(m1) {
			csrScatterRow(idx, vals, cum, m1, offs[r1], offs[r1+1])
		}
		lossSum += l1
		if !hinge || !hingeInactive(m2) {
			csrScatterRow(idx, vals, cum, m2, offs[r2], offs[r2+1])
		}
		lossSum += l2
		if !hinge || !hingeInactive(m3) {
			csrScatterRow(idx, vals, cum, m3, offs[r3], offs[r3+1])
		}
		lossSum += l3
	}
	for ; i < n; i++ {
		r := i
		if rows != nil {
			r = int(rows[i])
		}
		d := csrDot1(offs, idx, vals, w, r)
		mlt, l := csrMargin(kind, labs[r], d)
		if !hinge || !hingeInactive(mlt) {
			csrScatterRow(idx, vals, cum, mlt, offs[r], offs[r+1])
		}
		lossSum += l
	}
	return lossSum
}

// --- kmeans -----------------------------------------------------------

// runAssign computes best[i], dist[i] for the row shards [lo, hi).
func (sc *csrScratch) runAssign(lo, hi int) {
	for s := lo; s < hi; s++ {
		sc.assignRange(sc.rowCuts[s], sc.rowCuts[s+1])
	}
}

// assignRange finds each row's nearest center with sqDist's exact
// arithmetic: d = cNorm − 2·dot + xNorm, clamped at 0, strict less
// keeping the lowest index on ties.
func (sc *csrScratch) assignRange(lo, hi int) {
	m := sc.m
	offs, idx, vals := m.RowOffsets, m.Indices, m.Values
	centers, cNorms := sc.centers, sc.cNorms
	k, dim := sc.k, sc.dim
	for r := lo; r < hi; r++ {
		s, e := offs[r], offs[r+1]
		ii, vv := idx[s:e], vals[s:e:e]
		var xNorm float64
		for _, v := range vv {
			xNorm += v * v
		}
		best, bestDist := 0, math.Inf(1)
		for c := 0; c < k; c++ {
			row := centers[c*dim : (c+1)*dim]
			var dot float64
			for j, ix := range ii {
				dot += row[ix] * vv[j]
			}
			d := cNorms[c] - 2*dot + xNorm
			if d < 0 {
				d = 0
			}
			if d < bestDist {
				best, bestDist = c, d
			}
		}
		sc.best[r] = int32(best)
		sc.dist[r] = bestDist
	}
}

// runCSCKMScatter accumulates the per-center sums for the column
// shards [lo, hi) over the CSC view: acc[best[r]·dim + j] += v for
// owned columns j. Entries within a column arrive in ascending row
// order, so each accumulator cell — a (center, column) pair, written
// only by the worker owning that column — receives its additions as
// the row-order subsequence the sequential fold would produce.
func (sc *csrScratch) runCSCKMScatter(lo, hi int) {
	offs, rows, vals := sc.m.cscView()
	best := sc.best
	acc, dim := sc.acc, sc.dim
	for s := lo; s < hi; s++ {
		for j := int(sc.colCuts[s]); j < int(sc.colCuts[s+1]); j++ {
			a, b := offs[j], offs[j+1]
			rr, vv := rows[a:b], vals[a:b:b]
			for t, r := range rr {
				acc[int(best[r])*dim+j] += vv[t]
			}
		}
	}
}

// csrKMeansSeq is the fused single-core KMeans pass: assignment and
// accumulation per row, in row order.
func csrKMeansSeq(m *CSRMatrix, centers, cNorms []float64, k, dim int, acc []float64) {
	offs, idx, vals := m.RowOffsets, m.Indices, m.Values
	n := m.Rows()
	for r := 0; r < n; r++ {
		s, e := offs[r], offs[r+1]
		ii, vv := idx[s:e], vals[s:e:e]
		var xNorm float64
		for _, v := range vv {
			xNorm += v * v
		}
		best, bestDist := 0, math.Inf(1)
		for c := 0; c < k; c++ {
			row := centers[c*dim : (c+1)*dim]
			var dot float64
			for j, ix := range ii {
				dot += row[ix] * vv[j]
			}
			d := cNorms[c] - 2*dot + xNorm
			if d < 0 {
				d = 0
			}
			if d < bestDist {
				best, bestDist = c, d
			}
		}
		csrSumRow(idx, vals, acc, best*dim, s, e)
		acc[k*dim+best]++
		acc[k*dim+k] += bestDist
	}
}
